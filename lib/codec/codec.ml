exception Truncated

exception Malformed of string

module Slice = struct
  type t = { buf : Bytes.t; off : int; len : int }

  let make buf ~off ~len =
    if off < 0 || len < 0 || off > Bytes.length buf - len then
      invalid_arg "Codec.Slice.make: out of bounds";
    { buf; off; len }

  (* A reader never writes through the slice, so viewing an immutable
     string as bytes is sound. *)
  let of_string s = { buf = Bytes.unsafe_of_string s; off = 0; len = String.length s }

  let length t = t.len

  let sub t ~off ~len =
    if off < 0 || len < 0 || off > t.len - len then
      invalid_arg "Codec.Slice.sub: out of bounds";
    { buf = t.buf; off = t.off + off; len }

  let to_string t = Bytes.sub_string t.buf t.off t.len

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Codec.Slice.get: out of bounds";
    Bytes.get t.buf (t.off + i)

  let blit t dst dst_off =
    if dst_off < 0 || dst_off > Bytes.length dst - t.len then
      invalid_arg "Codec.Slice.blit: out of bounds";
    Bytes.blit t.buf t.off dst dst_off t.len
end

module Writer = struct
  type t = Buffer.t

  let create ?(initial_capacity = 64) () = Buffer.create initial_capacity

  let length = Buffer.length

  let contents = Buffer.contents

  let clear = Buffer.clear

  let blit_into t dst dst_off =
    if dst_off < 0 || dst_off > Bytes.length dst - Buffer.length t then
      invalid_arg "Codec.Writer.blit_into: out of bounds";
    Buffer.blit t 0 dst dst_off (Buffer.length t)

  let add_to_buffer t dst = Buffer.add_buffer dst t

  let uint8 t v =
    if v < 0 || v > 0xFF then invalid_arg "Codec.Writer.uint8: out of range";
    Buffer.add_char t (Char.chr v)

  let varint t v =
    if v < 0 then invalid_arg "Codec.Writer.varint: negative value";
    let rec go v =
      if v < 0x80 then Buffer.add_char t (Char.chr v)
      else begin
        Buffer.add_char t (Char.chr (0x80 lor (v land 0x7F)));
        go (v lsr 7)
      end
    in
    go v

  let zigzag t v =
    (* The zigzag image of extreme ints can set the top bit, which
       looks negative: emit it as a raw 63-bit pattern with logical
       shifts rather than through the non-negative [varint]. *)
    let u = (v lsl 1) lxor (v asr (Sys.int_size - 1)) in
    let rec go u =
      if u land lnot 0x7F = 0 then Buffer.add_char t (Char.chr (u land 0x7F))
      else begin
        Buffer.add_char t (Char.chr (0x80 lor (u land 0x7F)));
        go (u lsr 7)
      end
    in
    go u

  let float64 t v =
    let bits = Int64.bits_of_float v in
    for i = 0 to 7 do
      Buffer.add_char t
        (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
    done

  let bool t v = uint8 t (if v then 1 else 0)

  let bytes t s =
    varint t (String.length s);
    Buffer.add_string t s

  let raw t s = Buffer.add_string t s

  let list t f xs =
    varint t (List.length xs);
    List.iter (f t) xs

  let option t f = function
    | None -> bool t false
    | Some x ->
        bool t true;
        f t x
end

module Reader = struct
  (* The reader walks [buf] from [pos] (exclusive) to [limit]; the
     window is a borrowed view of the caller's bytes — nothing is
     copied until a field accessor ([take], [bytes]) materializes a
     value, and [slice] does not even then. *)
  type t = { buf : Bytes.t; mutable pos : int; limit : int }

  let of_slice (s : Slice.t) = { buf = s.Slice.buf; pos = s.Slice.off; limit = s.Slice.off + s.Slice.len }

  let of_string data = of_slice (Slice.of_string data)

  let of_bytes ?(off = 0) ?len data =
    let len = match len with Some l -> l | None -> Bytes.length data - off in
    of_slice (Slice.make data ~off ~len)

  let remaining t = t.limit - t.pos

  let eof t = remaining t = 0

  let take t n =
    if n < 0 || remaining t < n then raise Truncated;
    let s = Bytes.sub_string t.buf t.pos n in
    t.pos <- t.pos + n;
    s

  let slice t n =
    if n < 0 || remaining t < n then raise Truncated;
    let s = { Slice.buf = t.buf; off = t.pos; len = n } in
    t.pos <- t.pos + n;
    s

  let uint8 t =
    if remaining t < 1 then raise Truncated;
    let c = Char.code (Bytes.unsafe_get t.buf t.pos) in
    t.pos <- t.pos + 1;
    c

  let varint t =
    let rec go shift acc =
      if shift > Sys.int_size - 1 then raise (Malformed "varint too long");
      let b = uint8 t in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let zigzag t =
    let v = varint t in
    (v lsr 1) lxor (-(v land 1))

  let float64 t =
    if remaining t < 8 then raise Truncated;
    let bits = ref 0L in
    for i = 7 downto 0 do
      bits :=
        Int64.logor (Int64.shift_left !bits 8)
          (Int64.of_int (Char.code (Bytes.unsafe_get t.buf (t.pos + i))))
    done;
    t.pos <- t.pos + 8;
    Int64.float_of_bits !bits

  let bool t =
    match uint8 t with
    | 0 -> false
    | 1 -> true
    | n -> raise (Malformed (Printf.sprintf "bool byte %d" n))

  let bytes t =
    let n = varint t in
    take t n

  let raw t n = take t n

  let list t f =
    let n = varint t in
    if n < 0 then raise (Malformed "negative list length");
    (* Elements must be decoded left to right. *)
    let rec go i acc = if i = 0 then List.rev acc else go (i - 1) (f t :: acc) in
    go n []

  let option t f = if bool t then Some (f t) else None
end

let round_trip ~write ~read v =
  let w = Writer.create () in
  write w v;
  read (Reader.of_string (Writer.contents w))

let encoded_size ~write v =
  let w = Writer.create () in
  write w v;
  Writer.length w
