(** Binary wire codec primitives.

    A small, dependency-free serialization layer: little-endian fixed
    integers, LEB128 varints (with zigzag for signed values), floats,
    strings and byte blobs. Used by [Svs_core.Wire_codec] to give every
    protocol message a concrete wire size — which in turn drives the
    bandwidth-aware network model — and usable by applications for
    their payloads.

    The hot path is copy-free: a {!Slice} is a borrowed window into a
    caller-owned [Bytes.t] (e.g. a transport's reusable inbound
    buffer), {!Reader.of_slice} decodes straight out of it without
    materializing a [string] per frame, and {!Writer.blit_into} /
    {!Writer.add_to_buffer} hand a writer's bytes to an output buffer
    without the intermediate copy that {!Writer.contents} makes.

    Readers raise {!Truncated} on short input and {!Malformed} on
    invalid encodings; writers never fail. *)

exception Truncated

exception Malformed of string

(** A borrowed window [\[off, off+len)] into a [Bytes.t] the caller
    owns. Creating, narrowing ({!Slice.sub}) and reading a slice never
    copies; only {!Slice.to_string} does. A slice is valid for exactly
    as long as the underlying buffer is not mutated or reused — a
    transport that recycles its inbound buffer must finish decoding
    (or copy out) before the next read. *)
module Slice : sig
  type t = private { buf : Bytes.t; off : int; len : int }

  val make : Bytes.t -> off:int -> len:int -> t
  (** @raise Invalid_argument when the window overruns the buffer. *)

  val of_string : string -> t
  (** Zero-copy view of an immutable string. *)

  val length : t -> int

  val sub : t -> off:int -> len:int -> t
  (** Narrow (relative to the slice). @raise Invalid_argument when out
      of bounds. *)

  val get : t -> int -> char
  (** @raise Invalid_argument when out of bounds. *)

  val to_string : t -> string
  (** The one copying accessor. *)

  val blit : t -> Bytes.t -> int -> unit
  (** [blit t dst pos] copies the slice into [dst] at [pos]. *)
end

module Writer : sig
  type t

  val create : ?initial_capacity:int -> unit -> t

  val length : t -> int

  val contents : t -> string
  (** Copies; prefer {!blit_into} or {!add_to_buffer} on hot paths. *)

  val clear : t -> unit
  (** Empty the writer, keeping its storage — reuse one writer per
      connection/log instead of allocating per frame. *)

  val blit_into : t -> Bytes.t -> int -> unit
  (** [blit_into w dst pos] copies the written bytes into [dst] at
      [pos] without building an intermediate string.
      @raise Invalid_argument when [dst] is too small. *)

  val add_to_buffer : t -> Buffer.t -> unit
  (** Append the written bytes to a [Buffer.t] (no intermediate
      string). *)

  val uint8 : t -> int -> unit
  (** Must fit a byte. *)

  val varint : t -> int -> unit
  (** Unsigned LEB128; the value must be non-negative. *)

  val zigzag : t -> int -> unit
  (** Signed varint (zigzag). *)

  val float64 : t -> float -> unit
  (** IEEE-754 binary64, little endian. *)

  val bool : t -> bool -> unit

  val bytes : t -> string -> unit
  (** Length-prefixed blob. *)

  val raw : t -> string -> unit
  (** Unprefixed raw bytes (reader must know the length). *)

  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  (** Length-prefixed sequence. *)

  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
end

module Reader : sig
  type t

  val of_string : string -> t

  val of_slice : Slice.t -> t
  (** Decode out of a borrowed window — no copy. The reader is valid
      only while the slice is (see {!Slice}). *)

  val of_bytes : ?off:int -> ?len:int -> Bytes.t -> t
  (** [of_slice (Slice.make b ~off ~len)]. *)

  val remaining : t -> int

  val eof : t -> bool

  val uint8 : t -> int

  val varint : t -> int

  val zigzag : t -> int

  val float64 : t -> float

  val bool : t -> bool

  val bytes : t -> string

  val raw : t -> int -> string

  val slice : t -> int -> Slice.t
  (** Take the next [n] bytes as a sub-window without copying.
      @raise Truncated like every other accessor. *)

  val list : t -> (t -> 'a) -> 'a list

  val option : t -> (t -> 'a) -> 'a option
end

val round_trip : write:(Writer.t -> 'a -> unit) -> read:(Reader.t -> 'a) -> 'a -> 'a
(** Encode then decode (for tests). *)

val encoded_size : write:(Writer.t -> 'a -> unit) -> 'a -> int
(** Size in bytes of the encoding, without materialising consumers. *)
