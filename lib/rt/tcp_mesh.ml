module Metrics = Svs_telemetry.Metrics
module Trace = Svs_telemetry.Trace

let frame_header_bytes = 4

type dial_policy = {
  base_delay : float;
  max_delay : float;
  multiplier : float;
  jitter : float;
  max_attempts : int option;
}

let default_dial_policy =
  { base_delay = 0.05; max_delay = 2.0; multiplier = 2.0; jitter = 0.2; max_attempts = None }

type outgoing = {
  dst : int;
  addr : Unix.sockaddr;
  mutable fd : Unix.file_descr option;
  mutable broken : bool;
      (* An established connection that failed, or a peer past the dial
         cap. The paper's system model gives reliable FIFO channels
         between correct processes; once a stream breaks, bytes already
         handed to the kernel may be lost, so silently reconnecting
         would violate FIFO reliability. Crash-stop semantics apply
         instead: the peer is written off (heartbeats stop, suspicion
         and the view change machinery take over). *)
  mutable dial_failed : bool; (* at least one failed dial so far *)
  mutable attempts : int; (* consecutive failed dials *)
  mutable delay : float; (* current backoff delay *)
  mutable next_dial : float; (* wall-clock time before which we hold off *)
  out : Buffer.t; (* bytes not yet written to the kernel *)
}

type incoming = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable peer : int option; (* learned from the hello frame *)
}

type t = {
  loop : Loop.t;
  me : int;
  listen_fd : Unix.file_descr;
  outgoing : (int * outgoing) list;
  mutable incoming : incoming list;
  on_frame : src:int -> string -> unit;
  mutable closed : bool;
  tracer : Trace.t;
  dial : dial_policy;
  max_frame : int;
  mutable jitter_state : int64;
  c_bytes_out : Metrics.Counter.t;
  c_bytes_in : Metrics.Counter.t;
  c_reconnects : Metrics.Counter.t;
  c_frames_dropped : Metrics.Counter.t;
  c_frames_oversize : Metrics.Counter.t;
  c_writeoff_resets : Metrics.Counter.t;
}

let listener addr =
  let domain = Unix.domain_of_sockaddr addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd addr;
  Unix.listen fd 16;
  (fd, Unix.getsockname fd)

let encode_frame payload =
  let n = String.length payload in
  let header = Bytes.create frame_header_bytes in
  Bytes.set_uint8 header 0 ((n lsr 24) land 0xFF);
  Bytes.set_uint8 header 1 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 header 2 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 header 3 (n land 0xFF);
  Bytes.to_string header ^ payload

(* Deterministic jitter (xorshift64), seeded from the node id: dial
   retries across a mesh restart don't synchronise into thundering
   herds, yet a run is still reproducible. *)
let jitter_factor t =
  let s = t.jitter_state in
  let s = Int64.logxor s (Int64.shift_left s 13) in
  let s = Int64.logxor s (Int64.shift_right_logical s 7) in
  let s = Int64.logxor s (Int64.shift_left s 17) in
  t.jitter_state <- s;
  let unit =
    Int64.to_float (Int64.shift_right_logical s 11) /. 9007199254740992.0 (* 2^53 *)
  in
  1.0 +. (t.dial.jitter *. ((2.0 *. unit) -. 1.0))

let emit_drop t ~peer ~reason =
  Metrics.Counter.incr t.c_frames_dropped;
  if Trace.enabled t.tracer then
    Trace.emit t.tracer (Trace.TcpDrop { node = t.me; peer; reason })

(* Frames in a buffer of whole encoded frames (an unconnected peer's
   queue — nothing has been partially written yet). *)
let count_whole_frames data =
  let len = String.length data in
  let rec go off acc =
    if off + frame_header_bytes > len then acc
    else begin
      let n =
        (Char.code data.[off] lsl 24)
        lor (Char.code data.[off + 1] lsl 16)
        lor (Char.code data.[off + 2] lsl 8)
        lor Char.code data.[off + 3]
      in
      go (off + frame_header_bytes + n) (acc + 1)
    end
  in
  go 0 0

(* Give up on an unreachable peer: crash-stop semantics, queued frames
   are dropped (and counted — they were promised to no one). *)
let write_off_unreachable t (out : outgoing) =
  out.broken <- true;
  let dropped = count_whole_frames (Buffer.contents out.out) in
  Buffer.clear out.out;
  Metrics.Counter.add t.c_frames_dropped dropped;
  if Trace.enabled t.tracer then
    Trace.emit t.tracer (Trace.TcpDrop { node = t.me; peer = out.dst; reason = "dial-cap" })

(* Push as much of the pending output as the kernel will take. *)
let flush_outgoing t (out : outgoing) =
  match out.fd with
  | None -> ()
  | Some fd ->
      let data = Buffer.contents out.out in
      let len = String.length data in
      if len > 0 then begin
        match Unix.write_substring fd data 0 len with
        | written ->
            Metrics.Counter.add t.c_bytes_out written;
            Buffer.clear out.out;
            if written < len then Buffer.add_substring out.out data written (len - written)
        | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
        | exception Unix.Unix_error (_, _, _) ->
            (* Established connection lost: write the peer off. *)
            (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
            out.fd <- None;
            out.broken <- true;
            Buffer.clear out.out;
            if Trace.enabled t.tracer then
              Trace.emit t.tracer
                (Trace.TcpDrop { node = t.me; peer = out.dst; reason = "stream-broken" })
      end

let try_dial t (out : outgoing) =
  if
    (not t.closed) && out.fd = None && (not out.broken)
    && Loop.now t.loop >= out.next_dial
  then begin
    let domain = Unix.domain_of_sockaddr out.addr in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd out.addr with
    | () ->
        Unix.set_nonblock fd;
        out.fd <- Some fd;
        out.attempts <- 0;
        out.delay <- t.dial.base_delay;
        out.next_dial <- 0.0;
        (* A link that comes up after failed attempts: the peer was
           unreachable at first and is now connected. *)
        if out.dial_failed then begin
          out.dial_failed <- false;
          Metrics.Counter.incr t.c_reconnects;
          if Trace.enabled t.tracer then
            Trace.emit t.tracer (Trace.TcpReconnect { node = t.me; peer = out.dst })
        end;
        (* Hello frame first, then any queued traffic. *)
        let hello = encode_frame (string_of_int t.me) in
        let pending = Buffer.contents out.out in
        Buffer.clear out.out;
        Buffer.add_string out.out hello;
        Buffer.add_string out.out pending;
        flush_outgoing t out
    | exception Unix.Unix_error (_, _, _) ->
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        out.dial_failed <- true;
        out.attempts <- out.attempts + 1;
        (match t.dial.max_attempts with
        | Some cap when out.attempts >= cap -> write_off_unreachable t out
        | _ ->
            (* Exponential backoff with jitter before the next dial. *)
            out.next_dial <- Loop.now t.loop +. (out.delay *. jitter_factor t);
            out.delay <- Float.min t.dial.max_delay (out.delay *. t.dial.multiplier))
  end

(* Forgive a written-off peer and restore its full dial budget. The
   old stream's lost bytes belong to the previous incarnation of the
   link — by the time this is called the peer has either been excluded
   (and the view machinery accounted for the loss) or demonstrably
   restarted — so a fresh stream is sound again. *)
let forget_peer t ~dst =
  if not t.closed then
    match List.assoc_opt dst t.outgoing with
    | None -> ()
    | Some (out : outgoing) ->
        if out.broken then begin
          out.broken <- false;
          (* Queued frames were already dropped (and counted) at
             write-off time; the new stream starts clean. *)
          Buffer.clear out.out;
          Metrics.Counter.incr t.c_writeoff_resets
        end;
        out.dial_failed <- false;
        out.attempts <- 0;
        out.delay <- t.dial.base_delay;
        out.next_dial <- 0.0;
        if out.fd = None then try_dial t out

let drop_incoming t inc =
  Loop.remove_fd t.loop inc.fd;
  (try Unix.close inc.fd with Unix.Unix_error (_, _, _) -> ());
  t.incoming <- List.filter (fun other -> other != inc) t.incoming

(* Split complete frames out of an incoming byte buffer; resets the
   link (and stops) on an oversize frame or a malformed hello. *)
let rec drain_frames t inc =
  let data = Buffer.contents inc.buf in
  let available = String.length data in
  if available >= frame_header_bytes then begin
    let n =
      (Char.code data.[0] lsl 24)
      lor (Char.code data.[1] lsl 16)
      lor (Char.code data.[2] lsl 8)
      lor Char.code data.[3]
    in
    if n > t.max_frame then begin
      (* A frame we refuse to buffer: either a hostile/corrupt peer or
         a foreign protocol. Reset the link gracefully — the peer can
         reconnect with a fresh stream — rather than OOM on it. *)
      Metrics.Counter.incr t.c_frames_oversize;
      emit_drop t ~peer:(Option.value inc.peer ~default:(-1)) ~reason:"oversize";
      drop_incoming t inc
    end
    else if available >= frame_header_bytes + n then begin
      let payload = String.sub data frame_header_bytes n in
      Buffer.clear inc.buf;
      Buffer.add_substring inc.buf data (frame_header_bytes + n)
        (available - frame_header_bytes - n);
      match inc.peer with
      | None -> (
          match int_of_string_opt payload with
          | Some peer ->
              inc.peer <- Some peer;
              (* A fresh hello from a peer we had written off: it
                 demonstrably restarted, so dial its new incarnation
                 back instead of staying deaf forever. *)
              (match List.assoc_opt peer t.outgoing with
              | Some (out : outgoing) when out.broken -> forget_peer t ~dst:peer
              | _ -> ());
              drain_frames t inc
          | None ->
              (* First frame must be the dialer's id; anything else is
                 not this protocol. *)
              emit_drop t ~peer:(-1) ~reason:"bad-hello";
              drop_incoming t inc)
      | Some src ->
          if not t.closed then t.on_frame ~src payload;
          drain_frames t inc
    end
  end

let on_readable_incoming t inc () =
  let chunk = Bytes.create 65536 in
  match Unix.read inc.fd chunk 0 (Bytes.length chunk) with
  | 0 -> drop_incoming t inc
  | read ->
      Metrics.Counter.add t.c_bytes_in read;
      Buffer.add_subbytes inc.buf chunk 0 read;
      drain_frames t inc
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> drop_incoming t inc

let on_accept t () =
  match Unix.accept t.listen_fd with
  | fd, _ ->
      Unix.set_nonblock fd;
      let inc = { fd; buf = Buffer.create 4096; peer = None } in
      t.incoming <- inc :: t.incoming;
      Loop.on_readable t.loop fd (on_readable_incoming t inc)
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> ()

let create loop ~me ~listen_fd ~peers ~on_frame ?(tracer = Trace.nop) ?metrics
    ?(dial = default_dial_policy) ?(max_frame = 8 * 1024 * 1024) () =
  Unix.set_nonblock listen_fd;
  let outgoing =
    List.filter_map
      (fun (dst, addr) ->
        if dst = me then None
        else
          Some
            ( dst,
              {
                dst;
                addr;
                fd = None;
                broken = false;
                dial_failed = false;
                attempts = 0;
                delay = dial.base_delay;
                next_dial = 0.0;
                out = Buffer.create 4096;
              } ))
      peers
  in
  let labels = [ ("node", string_of_int me) ] in
  let counter name =
    match metrics with
    | None -> Metrics.Counter.detached ()
    | Some reg -> Metrics.counter reg ~labels name
  in
  let t =
    {
      loop;
      me;
      listen_fd;
      outgoing;
      incoming = [];
      on_frame;
      closed = false;
      tracer;
      dial;
      max_frame;
      jitter_state = Int64.of_int ((me * 2654435761) lor 1);
      c_bytes_out = counter "tcp_bytes_out_total";
      c_bytes_in = counter "tcp_bytes_in_total";
      c_reconnects = counter "tcp_reconnects_total";
      c_frames_dropped = counter "tcp_frames_dropped_total";
      c_frames_oversize = counter "tcp_frames_oversize_total";
      c_writeoff_resets = counter "tcp_writeoff_resets_total";
    }
  in
  Loop.on_readable loop listen_fd (on_accept t);
  List.iter (fun (_, out) -> try_dial t out) outgoing;
  ignore
    (Loop.every loop ~period:0.05 (fun () ->
         if not t.closed then
           List.iter
             (fun (_, (out : outgoing)) ->
               if out.fd = None then try_dial t out else flush_outgoing t out)
             t.outgoing;
         not t.closed)
      : Loop.timer);
  t

let send t ~dst payload =
  if not t.closed then
    match List.assoc_opt dst t.outgoing with
    | None -> emit_drop t ~peer:dst ~reason:"unknown-dst"
    | Some (out : outgoing) when out.broken ->
        (* Buffering towards a written-off peer would grow without
           bound; the frame can never be delivered on this stream. *)
        emit_drop t ~peer:dst ~reason:"written-off"
    | Some (out : outgoing) ->
        Buffer.add_string out.out (encode_frame payload);
        if out.fd = None then try_dial t out;
        flush_outgoing t out

let bytes_out t = Metrics.Counter.value t.c_bytes_out

let bytes_in t = Metrics.Counter.value t.c_bytes_in

let reconnects t = Metrics.Counter.value t.c_reconnects

let frames_dropped t = Metrics.Counter.value t.c_frames_dropped

let frames_oversize t = Metrics.Counter.value t.c_frames_oversize

let writeoff_resets t = Metrics.Counter.value t.c_writeoff_resets

let dial_attempts t ~dst =
  match List.assoc_opt dst t.outgoing with None -> 0 | Some out -> out.attempts

let written_off t ~dst =
  match List.assoc_opt dst t.outgoing with None -> false | Some out -> out.broken

let connected t =
  List.filter_map
    (fun (dst, (out : outgoing)) -> if out.fd <> None then Some dst else None)
    t.outgoing

let pending_bytes t ~dst =
  match List.assoc_opt dst t.outgoing with
  | None -> 0
  | Some out -> Buffer.length out.out

type peer_stat = {
  peer : int;
  up : bool;
  pending : int;
  attempts : int;
  written_off : bool;
}

let peer_stats t =
  List.map
    (fun (dst, (out : outgoing)) ->
      {
        peer = dst;
        up = out.fd <> None;
        pending = Buffer.length out.out;
        attempts = out.attempts;
        written_off = out.broken;
      })
    t.outgoing
  |> List.sort (fun a b -> compare a.peer b.peer)

let close t =
  if not t.closed then begin
    t.closed <- true;
    Loop.remove_fd t.loop t.listen_fd;
    (try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ());
    List.iter
      (fun (_, (out : outgoing)) ->
        match out.fd with
        | Some fd ->
            Loop.remove_fd t.loop fd;
            (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
            out.fd <- None
        | None -> ())
      t.outgoing;
    List.iter (fun inc -> drop_incoming t inc) t.incoming
  end
