module Metrics = Svs_telemetry.Metrics
module Trace = Svs_telemetry.Trace

let frame_header_bytes = 4

type outgoing = {
  dst : int;
  addr : Unix.sockaddr;
  mutable fd : Unix.file_descr option;
  mutable broken : bool;
      (* An established connection that failed. The paper's system
         model gives reliable FIFO channels between correct processes;
         once a stream breaks, bytes already handed to the kernel may
         be lost, so silently reconnecting would violate FIFO
         reliability. Crash-stop semantics apply instead: the peer is
         written off (heartbeats stop, suspicion and the view change
         machinery take over). *)
  mutable dial_failed : bool; (* at least one failed dial so far *)
  out : Buffer.t; (* bytes not yet written to the kernel *)
}

type incoming = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable peer : int option; (* learned from the hello frame *)
}

type t = {
  loop : Loop.t;
  me : int;
  listen_fd : Unix.file_descr;
  outgoing : (int * outgoing) list;
  mutable incoming : incoming list;
  on_frame : src:int -> string -> unit;
  mutable closed : bool;
  tracer : Trace.t;
  c_bytes_out : Metrics.Counter.t;
  c_bytes_in : Metrics.Counter.t;
  c_reconnects : Metrics.Counter.t;
}

let listener addr =
  let domain = Unix.domain_of_sockaddr addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd addr;
  Unix.listen fd 16;
  (fd, Unix.getsockname fd)

let encode_frame payload =
  let n = String.length payload in
  let header = Bytes.create frame_header_bytes in
  Bytes.set_uint8 header 0 ((n lsr 24) land 0xFF);
  Bytes.set_uint8 header 1 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 header 2 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 header 3 (n land 0xFF);
  Bytes.to_string header ^ payload

(* Push as much of the pending output as the kernel will take. *)
let flush_outgoing t (out : outgoing) =
  match out.fd with
  | None -> ()
  | Some fd ->
      let data = Buffer.contents out.out in
      let len = String.length data in
      if len > 0 then begin
        match Unix.write_substring fd data 0 len with
        | written ->
            Metrics.Counter.add t.c_bytes_out written;
            Buffer.clear out.out;
            if written < len then Buffer.add_substring out.out data written (len - written)
        | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
        | exception Unix.Unix_error (_, _, _) ->
            (* Established connection lost: write the peer off. *)
            (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
            out.fd <- None;
            out.broken <- true;
            Buffer.clear out.out
      end

let try_dial t (out : outgoing) =
  if (not t.closed) && out.fd = None && not out.broken then begin
    let domain = Unix.domain_of_sockaddr out.addr in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd out.addr with
    | () ->
        Unix.set_nonblock fd;
        out.fd <- Some fd;
        (* A link that comes up after failed attempts: the peer was
           unreachable at first and is now connected. *)
        if out.dial_failed then begin
          out.dial_failed <- false;
          Metrics.Counter.incr t.c_reconnects;
          if Trace.enabled t.tracer then
            Trace.emit t.tracer (Trace.TcpReconnect { node = t.me; peer = out.dst })
        end;
        (* Hello frame first, then any queued traffic. *)
        let hello = encode_frame (string_of_int t.me) in
        let pending = Buffer.contents out.out in
        Buffer.clear out.out;
        Buffer.add_string out.out hello;
        Buffer.add_string out.out pending;
        flush_outgoing t out
    | exception Unix.Unix_error (_, _, _) ->
        out.dial_failed <- true;
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
  end

(* Split complete frames out of an incoming byte buffer. *)
let rec drain_frames t inc =
  let data = Buffer.contents inc.buf in
  let available = String.length data in
  if available >= frame_header_bytes then begin
    let n =
      (Char.code data.[0] lsl 24)
      lor (Char.code data.[1] lsl 16)
      lor (Char.code data.[2] lsl 8)
      lor Char.code data.[3]
    in
    if available >= frame_header_bytes + n then begin
      let payload = String.sub data frame_header_bytes n in
      Buffer.clear inc.buf;
      Buffer.add_substring inc.buf data (frame_header_bytes + n)
        (available - frame_header_bytes - n);
      (match inc.peer with
      | None -> inc.peer <- int_of_string_opt payload
      | Some src -> if not t.closed then t.on_frame ~src payload);
      drain_frames t inc
    end
  end

let drop_incoming t inc =
  Loop.remove_fd t.loop inc.fd;
  (try Unix.close inc.fd with Unix.Unix_error (_, _, _) -> ());
  t.incoming <- List.filter (fun other -> other != inc) t.incoming

let on_readable_incoming t inc () =
  let chunk = Bytes.create 65536 in
  match Unix.read inc.fd chunk 0 (Bytes.length chunk) with
  | 0 -> drop_incoming t inc
  | read ->
      Metrics.Counter.add t.c_bytes_in read;
      Buffer.add_subbytes inc.buf chunk 0 read;
      drain_frames t inc
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> drop_incoming t inc

let on_accept t () =
  match Unix.accept t.listen_fd with
  | fd, _ ->
      Unix.set_nonblock fd;
      let inc = { fd; buf = Buffer.create 4096; peer = None } in
      t.incoming <- inc :: t.incoming;
      Loop.on_readable t.loop fd (on_readable_incoming t inc)
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> ()

let create loop ~me ~listen_fd ~peers ~on_frame ?(tracer = Trace.nop) ?metrics () =
  Unix.set_nonblock listen_fd;
  let outgoing =
    List.filter_map
      (fun (dst, addr) ->
        if dst = me then None
        else
          Some
            ( dst,
              { dst; addr; fd = None; broken = false; dial_failed = false; out = Buffer.create 4096 }
            ))
      peers
  in
  let labels = [ ("node", string_of_int me) ] in
  let counter name =
    match metrics with
    | None -> Metrics.Counter.detached ()
    | Some reg -> Metrics.counter reg ~labels name
  in
  let t =
    {
      loop;
      me;
      listen_fd;
      outgoing;
      incoming = [];
      on_frame;
      closed = false;
      tracer;
      c_bytes_out = counter "tcp_bytes_out_total";
      c_bytes_in = counter "tcp_bytes_in_total";
      c_reconnects = counter "tcp_reconnects_total";
    }
  in
  Loop.on_readable loop listen_fd (on_accept t);
  List.iter (fun (_, out) -> try_dial t out) outgoing;
  ignore
    (Loop.every loop ~period:0.05 (fun () ->
         if not t.closed then
           List.iter
             (fun (_, (out : outgoing)) ->
               if out.fd = None then try_dial t out else flush_outgoing t out)
             t.outgoing;
         not t.closed)
      : Loop.timer);
  t

let send t ~dst payload =
  if not t.closed then
    match List.assoc_opt dst t.outgoing with
    | None -> ()
    | Some (out : outgoing) ->
        Buffer.add_string out.out (encode_frame payload);
        if out.fd = None then try_dial t out;
        flush_outgoing t out

let bytes_out t = Metrics.Counter.value t.c_bytes_out

let bytes_in t = Metrics.Counter.value t.c_bytes_in

let reconnects t = Metrics.Counter.value t.c_reconnects

let connected t =
  List.filter_map
    (fun (dst, (out : outgoing)) -> if out.fd <> None then Some dst else None)
    t.outgoing

let pending_bytes t ~dst =
  match List.assoc_opt dst t.outgoing with
  | None -> 0
  | Some out -> Buffer.length out.out

let close t =
  if not t.closed then begin
    t.closed <- true;
    Loop.remove_fd t.loop t.listen_fd;
    (try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ());
    List.iter
      (fun (_, (out : outgoing)) ->
        match out.fd with
        | Some fd ->
            Loop.remove_fd t.loop fd;
            (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
            out.fd <- None
        | None -> ())
      t.outgoing;
    List.iter (fun inc -> drop_incoming t inc) t.incoming
  end
