module Metrics = Svs_telemetry.Metrics
module Trace = Svs_telemetry.Trace
module Codec = Svs_codec.Codec
module Shed = Svs_obs.Shed

let frame_header_bytes = 4

(* Inbound reassembly: splits a byte stream into outer frames without
   materializing a string per frame. Bytes accumulate in a reusable
   Iobuf; [next] hands out a borrowed slice over the backing buffer,
   valid until the next [feed]/[read_from_fd]. *)
module Assembler = struct
  type t = { buf : Iobuf.t; max_frame : int }

  type result = Frame of Codec.Slice.t | Await | Oversize of int

  let create ?(max_frame = max_int) () = { buf = Iobuf.create ~capacity:16384 (); max_frame }

  let feed t data = Iobuf.add_string t.buf data

  let read_from_fd t fd =
    let n = Iobuf.read_from_fd t.buf fd in
    n

  let buffered t = Iobuf.length t.buf

  let next t =
    let available = Iobuf.length t.buf in
    if available < frame_header_bytes then Await
    else begin
      let b = Iobuf.unsafe_bytes t.buf and s = Iobuf.start t.buf in
      let n =
        (Char.code (Bytes.get b s) lsl 24)
        lor (Char.code (Bytes.get b (s + 1)) lsl 16)
        lor (Char.code (Bytes.get b (s + 2)) lsl 8)
        lor Char.code (Bytes.get b (s + 3))
      in
      if n > t.max_frame then Oversize n
      else if available < frame_header_bytes + n then Await
      else begin
        let slice = Codec.Slice.make b ~off:(s + frame_header_bytes) ~len:n in
        (* Consuming only advances the head pointer; the bytes under
           the slice stay put until the next feed compacts. *)
        Iobuf.consume t.buf (frame_header_bytes + n);
        Frame slice
      end
    end
end

(* Inner frames of a batch payload: [varint length][bytes], packed
   back to back. Raises [Codec.Truncated]/[Codec.Malformed] on a
   payload that is not a well-formed batch. *)
let iter_batch slice f =
  let r = Codec.Reader.of_slice slice in
  while not (Codec.Reader.eof r) do
    let len = Codec.Reader.varint r in
    f (Codec.Reader.slice r len)
  done

type dial_policy = {
  base_delay : float;
  max_delay : float;
  multiplier : float;
  jitter : float;
  max_attempts : int option;
}

let default_dial_policy =
  { base_delay = 0.05; max_delay = 2.0; multiplier = 2.0; jitter = 0.2; max_attempts = None }

(* Hostile-input escalation: every decode failure attributed to a peer
   bumps a leaky-bucket score; crossing [reset_score] tears the peer's
   inbound links down (a fresh stream clears framing desync), crossing
   [quarantine_score] writes the peer off entirely until the cooldown
   expires. Honest peers on a flaky network produce isolated failures
   that the decay forgives; only a stream of garbage escalates. *)
type hostile_policy = {
  reset_score : float;
  quarantine_score : float;
  forgive_after : float;
  decay : float;
}

let default_hostile_policy =
  { reset_score = 3.0; quarantine_score = 8.0; forgive_after = 5.0; decay = 1.0 }

(* Flow control for the per-peer outbound queues. Below [soft] the
   zero-copy fast path runs untouched (frames coalesce straight into
   the open batch). Crossing [soft] switches the peer to an overflow
   queue of individually retained frames where semantic shedding can
   purge obsolete queued-but-unsent traffic (see {!Svs_obs.Shed} for
   the prefix-safe suffix rule). [hard] is the admission-control line:
   {!would_block} turns true and the slow-member escalation clock
   starts. [budget] bounds the whole mesh's pending bytes; [resume] is
   the drain level at which a peer leaves overflow mode (hysteresis so
   a queue hovering at [soft] doesn't flap). *)
type backpressure_policy = {
  soft : int;
  hard : int;
  resume : int;
  budget : int;
  shed : bool;
}

let default_backpressure =
  {
    soft = 256 * 1024;
    hard = 2 * 1024 * 1024;
    resume = 64 * 1024;
    budget = 32 * 1024 * 1024;
    shed = true;
  }

type offender = {
  mutable score : float;
  mutable last : float; (* when [score] last decayed *)
  mutable quarantined_until : float; (* 0. = not quarantined *)
}

(* One frame parked in the overflow queue: materialized (the batch
   fast path is zero-copy, but a frame that may sit — or be shed —
   needs its own bytes), with the shedding metadata the sender
   attached. [fshed] frames stay in place as tombstones so the cover
   relation can chain through them; [sent] frames have moved to the
   kernel-bound batch and are immutable from here on. *)
type oframe = {
  bytes : string;
  fmeta : Shed.key option;
  mutable fshed : bool;
  mutable sent : bool;
}

type outgoing = {
  dst : int;
  addr : Unix.sockaddr;
  mutable fd : Unix.file_descr option;
  mutable broken : bool;
      (* An established connection that failed, or a peer past the dial
         cap. The paper's system model gives reliable FIFO channels
         between correct processes; once a stream breaks, bytes already
         handed to the kernel may be lost, so silently reconnecting
         would violate FIFO reliability. Crash-stop semantics apply
         instead: the peer is written off (heartbeats stop, suspicion
         and the view change machinery take over). *)
  mutable dial_failed : bool; (* at least one failed dial so far *)
  mutable attempts : int; (* consecutive failed dials *)
  mutable delay : float; (* current backoff delay *)
  mutable next_dial : float; (* wall-clock time before which we hold off *)
  out : Iobuf.t; (* sealed outer frames not yet handed to the kernel *)
  batch : Buffer.t; (* inner frames of the open (unsealed) batch *)
  mutable batch_frames : int; (* inner frames in [batch] *)
  mutable queued_frames : int;
      (* Frames queued since the buffer was last known drained. Exact
         whenever nothing has been partially written — in particular on
         the dial-cap write-off path, where no byte ever reached the
         kernel — which is the only place it is read. *)
  mutable bp : bool; (* overflow (backpressure) mode *)
  overflow : oframe Queue.t; (* oldest-first; frames not yet batched *)
  mutable recent : oframe list;
      (* Newest-first mirror of the overflow's data frames, for the
         backward shed walk. Pruned of [sent] frames after each drain
         and capped, so the walk is amortized O(1) per enqueue. *)
  mutable recent_len : int;
  mutable overflow_bytes : int; (* live (unshed, unsent) payload bytes *)
  mutable shed_frames : int; (* total frames shed on this link *)
  mutable over_hard_since : float; (* 0. = currently under [hard] *)
}

type incoming = {
  fd : Unix.file_descr;
  asm : Assembler.t;
  mutable peer : int option; (* learned from the hello frame *)
}

type t = {
  loop : Loop.t;
  me : int;
  listen_fd : Unix.file_descr;
  outgoing : (int * outgoing) list;
  mutable incoming : incoming list;
  on_frame : src:int -> Codec.Slice.t -> unit;
  mutable closed : bool;
  tracer : Trace.t;
  dial : dial_policy;
  hostile : hostile_policy;
  offenders : (int, offender) Hashtbl.t;
  max_frame : int;
  flush_interval : float;
  watermark : int; (* seal the open batch at this many payload bytes *)
  bp_policy : backpressure_policy;
  scratch : Buffer.t; (* materializes one frame on the overflow path *)
  mutable reads_paused : bool;
  mutable over_budget : bool;
  mutable jitter_state : int64;
  c_bytes_out : Metrics.Counter.t;
  c_bytes_in : Metrics.Counter.t;
  c_reconnects : Metrics.Counter.t;
  c_frames_dropped : Metrics.Counter.t;
  c_frames_oversize : Metrics.Counter.t;
  c_writeoff_resets : Metrics.Counter.t;
  c_flushes : Metrics.Counter.t;
  c_writev_bytes : Metrics.Counter.t;
  c_quarantined : Metrics.Counter.t;
  c_bp_soft : Metrics.Counter.t;
  c_bp_hard : Metrics.Counter.t;
  c_bp_budget : Metrics.Counter.t;
  c_shed_frames : Metrics.Counter.t;
  c_shed_bytes : Metrics.Counter.t;
  h_batch_frames : Metrics.Histogram.t;
}

let listener addr =
  let domain = Unix.domain_of_sockaddr addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd addr;
  Unix.listen fd 16;
  (fd, Unix.getsockname fd)

(* The hello is the one frame that is not a batch: the first outer
   frame on a connection carries the dialer's id, raw. *)
let hello_frame me =
  let payload = string_of_int me in
  let n = String.length payload in
  let b = Bytes.create (frame_header_bytes + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xFF);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 b 3 (n land 0xFF);
  Bytes.blit_string payload 0 b frame_header_bytes n;
  Bytes.to_string b

let add_varint buf v =
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7F)));
      go (v lsr 7)
    end
  in
  go v

let varint_size v =
  let rec go v acc = if v < 0x80 then acc else go (v lsr 7) (acc + 1) in
  go v 1

(* Deterministic jitter (xorshift64), seeded from the node id: dial
   retries across a mesh restart don't synchronise into thundering
   herds, yet a run is still reproducible. *)
let jitter_factor t =
  let s = t.jitter_state in
  let s = Int64.logxor s (Int64.shift_left s 13) in
  let s = Int64.logxor s (Int64.shift_right_logical s 7) in
  let s = Int64.logxor s (Int64.shift_left s 17) in
  t.jitter_state <- s;
  let unit =
    Int64.to_float (Int64.shift_right_logical s 11) /. 9007199254740992.0 (* 2^53 *)
  in
  1.0 +. (t.dial.jitter *. ((2.0 *. unit) -. 1.0))

let emit_drop t ~peer ~reason =
  Metrics.Counter.incr t.c_frames_dropped;
  if Trace.enabled t.tracer then
    Trace.emit t.tracer (Trace.TcpDrop { node = t.me; peer; reason })

let peer_pending (out : outgoing) =
  Iobuf.length out.out
  + (if out.batch_frames > 0 then frame_header_bytes + Buffer.length out.batch else 0)
  + out.overflow_bytes

(* Frames that never reached the kernel: batched + live overflow. *)
let live_frames (out : outgoing) =
  out.queued_frames
  + Queue.fold (fun acc f -> if f.fshed || f.sent then acc else acc + 1) 0 out.overflow

let clear_queued (out : outgoing) =
  Iobuf.clear out.out;
  Buffer.clear out.batch;
  out.batch_frames <- 0;
  out.queued_frames <- 0;
  Queue.clear out.overflow;
  out.recent <- [];
  out.recent_len <- 0;
  out.overflow_bytes <- 0;
  out.bp <- false;
  out.over_hard_since <- 0.0

let emit_backpressure t (out : outgoing) ~stage =
  if Trace.enabled t.tracer then
    Trace.emit t.tracer
      (Trace.Backpressure
         { node = t.me; peer = out.dst; stage; pending = peer_pending out })

(* Track the hard-watermark boundary on every pending-size change:
   the slow-member escalation clock is "continuously over [hard]". *)
let update_hard t (out : outgoing) =
  let pending = peer_pending out in
  if pending >= t.bp_policy.hard then begin
    if out.over_hard_since = 0.0 then begin
      out.over_hard_since <- Loop.now t.loop;
      Metrics.Counter.incr t.c_bp_hard;
      emit_backpressure t out ~stage:"hard"
    end
  end
  else if out.over_hard_since > 0.0 then out.over_hard_since <- 0.0

(* Give up on an unreachable peer: crash-stop semantics, queued frames
   are dropped (and counted — they were promised to no one). *)
let write_off_unreachable t (out : outgoing) =
  out.broken <- true;
  let dropped = live_frames out in
  clear_queued out;
  Metrics.Counter.add t.c_frames_dropped dropped;
  if Trace.enabled t.tracer then
    Trace.emit t.tracer (Trace.TcpDrop { node = t.me; peer = out.dst; reason = "dial-cap" })

(* Close the open batch: prefix it with the outer length header and
   move it onto the kernel-bound queue. *)
let seal t (out : outgoing) =
  if out.batch_frames > 0 then begin
    Metrics.Histogram.observe t.h_batch_frames (float_of_int out.batch_frames);
    Iobuf.add_be32 out.out (Buffer.length out.batch);
    Iobuf.add_buffer out.out out.batch;
    Buffer.clear out.batch;
    out.batch_frames <- 0
  end

(* Seal, then push as much of the pending output as the kernel will
   take — one write syscall straight from the queue's backing bytes.
   In overflow mode, a fully drained kernel queue pulls the next
   batch's worth of live frames out of the overflow queue and goes
   again, until either the kernel pushes back or the overflow drains
   under the resume watermark. *)
let rec flush_outgoing t (out : outgoing) =
  seal t out;
  match out.fd with
  | None -> ()
  | Some fd ->
      (if not (Iobuf.is_empty out.out) then
         match Iobuf.write_to_fd out.out fd with
         | written ->
             Metrics.Counter.incr t.c_flushes;
             Metrics.Counter.add t.c_bytes_out written;
             Metrics.Counter.add t.c_writev_bytes written;
             if Iobuf.is_empty out.out then out.queued_frames <- 0
         | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
         | exception Unix.Unix_error (_, _, _) ->
             (* Established connection lost: write the peer off. *)
             (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
             out.fd <- None;
             out.broken <- true;
             clear_queued out;
             if Trace.enabled t.tracer then
               Trace.emit t.tracer
                 (Trace.TcpDrop { node = t.me; peer = out.dst; reason = "stream-broken" }));
      if out.bp then drain_overflow t out

and drain_overflow t (out : outgoing) =
  if out.fd <> None && Iobuf.is_empty out.out && not (Queue.is_empty out.overflow) then begin
    let moved = ref false in
    while
      (not (Queue.is_empty out.overflow)) && Buffer.length out.batch < t.watermark
    do
      let f = Queue.pop out.overflow in
      if not f.fshed then begin
        f.sent <- true;
        moved := true;
        out.overflow_bytes <- out.overflow_bytes - String.length f.bytes;
        add_varint out.batch (String.length f.bytes);
        Buffer.add_string out.batch f.bytes;
        out.batch_frames <- out.batch_frames + 1;
        out.queued_frames <- out.queued_frames + 1
      end
    done;
    (* Frames marked [sent] (and everything older — the drain is FIFO)
       can no longer be shed: drop them off the walk mirror. *)
    if !moved then begin
      let rec keep = function
        | f :: rest when not f.sent -> f :: keep rest
        | _ -> []
      in
      out.recent <- keep out.recent;
      out.recent_len <- List.length out.recent;
      flush_outgoing t out
    end
  end
  else if
    out.bp && Queue.is_empty out.overflow && peer_pending out <= t.bp_policy.resume
  then begin
    out.bp <- false;
    out.recent <- [];
    out.recent_len <- 0;
    out.over_hard_since <- 0.0;
    emit_backpressure t out ~stage:"resume"
  end

let try_dial t (out : outgoing) =
  if
    (not t.closed) && out.fd = None && (not out.broken)
    && Loop.now t.loop >= out.next_dial
  then begin
    let domain = Unix.domain_of_sockaddr out.addr in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd out.addr with
    | () ->
        Unix.set_nonblock fd;
        out.fd <- Some fd;
        out.attempts <- 0;
        out.delay <- t.dial.base_delay;
        out.next_dial <- 0.0;
        (* A link that comes up after failed attempts: the peer was
           unreachable at first and is now connected. *)
        if out.dial_failed then begin
          out.dial_failed <- false;
          Metrics.Counter.incr t.c_reconnects;
          if Trace.enabled t.tracer then
            Trace.emit t.tracer (Trace.TcpReconnect { node = t.me; peer = out.dst })
        end;
        (* Hello frame first, then any queued traffic. *)
        Iobuf.prepend_string out.out (hello_frame t.me);
        flush_outgoing t out
    | exception Unix.Unix_error (_, _, _) ->
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        out.dial_failed <- true;
        out.attempts <- out.attempts + 1;
        (match t.dial.max_attempts with
        | Some cap when out.attempts >= cap -> write_off_unreachable t out
        | _ ->
            (* Exponential backoff with jitter before the next dial. *)
            out.next_dial <- Loop.now t.loop +. (out.delay *. jitter_factor t);
            out.delay <- Float.min t.dial.max_delay (out.delay *. t.dial.multiplier))
  end

(* Forgive a written-off peer and restore its full dial budget. The
   old stream's lost bytes belong to the previous incarnation of the
   link — by the time this is called the peer has either been excluded
   (and the view machinery accounted for the loss) or demonstrably
   restarted — so a fresh stream is sound again. *)
let forget_peer t ~dst =
  if not t.closed then
    match List.assoc_opt dst t.outgoing with
    | None -> ()
    | Some (out : outgoing) ->
        if out.broken then begin
          out.broken <- false;
          (* Queued frames were already dropped (and counted) at
             write-off time; the new stream starts clean. *)
          clear_queued out;
          Metrics.Counter.incr t.c_writeoff_resets
        end;
        out.dial_failed <- false;
        out.attempts <- 0;
        out.delay <- t.dial.base_delay;
        out.next_dial <- 0.0;
        if out.fd = None then try_dial t out

let drop_incoming t inc =
  Loop.remove_fd t.loop inc.fd;
  (try Unix.close inc.fd with Unix.Unix_error (_, _, _) -> ());
  t.incoming <- List.filter (fun other -> other != inc) t.incoming

(* --- Hostile-peer scoring --- *)

let offender t ~peer =
  match Hashtbl.find_opt t.offenders peer with
  | Some o -> o
  | None ->
      let o = { score = 0.0; last = Loop.now t.loop; quarantined_until = 0.0 } in
      Hashtbl.add t.offenders peer o;
      o

let decay_score t (o : offender) =
  let now = Loop.now t.loop in
  if now > o.last then begin
    o.score <- Float.max 0.0 (o.score -. ((now -. o.last) *. t.hostile.decay));
    o.last <- now
  end

let quarantined t ~peer =
  match Hashtbl.find_opt t.offenders peer with
  | Some o -> o.quarantined_until > Loop.now t.loop
  | None -> false

(* Tear down every inbound link attributed to [peer]: a fresh stream
   is the only way out of framing desync, and a hostile peer loses its
   foothold. *)
let reset_links_from t ~peer =
  List.iter
    (fun inc -> if inc.peer = Some peer then drop_incoming t inc)
    (List.filter (fun inc -> inc.peer = Some peer) t.incoming)

let quarantine_peer t ~peer (o : offender) =
  o.quarantined_until <- Loop.now t.loop +. t.hostile.forgive_after;
  Metrics.Counter.incr t.c_quarantined;
  if Trace.enabled t.tracer then
    Trace.emit t.tracer
      (Trace.Quarantine { node = t.me; peer; score = int_of_float (Float.round o.score) });
  reset_links_from t ~peer;
  (* Write the outgoing side off too (when the peer is in the mesh):
     frames towards a quarantined peer can only feed it more state to
     corrupt. *)
  match List.assoc_opt peer t.outgoing with
  | Some (out : outgoing) when not out.broken ->
      (match out.fd with
      | Some fd ->
          Loop.remove_fd t.loop fd;
          (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
          out.fd <- None
      | None -> ());
      out.broken <- true;
      let dropped = live_frames out in
      clear_queued out;
      Metrics.Counter.add t.c_frames_dropped dropped
  | _ -> ()

let bump_misbehavior t ~peer =
  if peer >= 0 && peer <> t.me then begin
    let o = offender t ~peer in
    decay_score t o;
    o.score <- o.score +. 1.0;
    (* Already quarantined: the score keeps climbing but the sentence
       is already being served. *)
    if o.quarantined_until <= Loop.now t.loop then
      if o.score >= t.hostile.quarantine_score then quarantine_peer t ~peer o
      else if o.score >= t.hostile.reset_score then reset_links_from t ~peer
  end

let note_misbehavior t ~src ~reason =
  if not t.closed then begin
    emit_drop t ~peer:src ~reason;
    bump_misbehavior t ~peer:src
  end

(* Auto-forgiveness: a quarantined peer whose cooldown expired gets a
   clean slate (and, when it is a mesh peer, its link dialed back). *)
let forgive_expired t =
  let now = Loop.now t.loop in
  let expired =
    Hashtbl.fold
      (fun peer (o : offender) acc ->
        if o.quarantined_until > 0.0 && now >= o.quarantined_until then peer :: acc else acc)
      t.offenders []
  in
  List.iter
    (fun peer ->
      let o = Hashtbl.find t.offenders peer in
      o.quarantined_until <- 0.0;
      o.score <- 0.0;
      forget_peer t ~dst:peer)
    expired

(* Split complete outer frames out of an incoming stream and fan the
   inner frames to [on_frame]; resets the link (and stops) on an
   oversize frame, a malformed hello, or a payload that is not a
   well-formed batch. *)
let rec drain_frames t inc =
  match Assembler.next inc.asm with
  | Assembler.Await -> ()
  | Assembler.Oversize _ ->
      (* A frame we refuse to buffer: either a hostile/corrupt peer or
         a foreign protocol. Reset the link gracefully — the peer can
         reconnect with a fresh stream — rather than OOM on it. *)
      Metrics.Counter.incr t.c_frames_oversize;
      let peer = Option.value inc.peer ~default:(-1) in
      emit_drop t ~peer ~reason:"oversize";
      drop_incoming t inc;
      bump_misbehavior t ~peer
  | Assembler.Frame payload -> (
      match inc.peer with
      | None -> (
          match int_of_string_opt (Codec.Slice.to_string payload) with
          | Some peer when quarantined t ~peer ->
              (* Serving a sentence: reconnects are refused until the
                 cooldown expires and forgiveness dials back. *)
              emit_drop t ~peer ~reason:"quarantined";
              drop_incoming t inc
          | Some peer ->
              inc.peer <- Some peer;
              (* A fresh hello from a peer we had written off: it
                 demonstrably restarted, so dial its new incarnation
                 back instead of staying deaf forever. *)
              (match List.assoc_opt peer t.outgoing with
              | Some (out : outgoing) when out.broken -> forget_peer t ~dst:peer
              | _ -> ());
              drain_frames t inc
          | None ->
              (* First frame must be the dialer's id; anything else is
                 not this protocol. *)
              emit_drop t ~peer:(-1) ~reason:"bad-hello";
              drop_incoming t inc)
      | Some src -> (
          match
            iter_batch payload (fun inner -> if not t.closed then t.on_frame ~src inner)
          with
          | () -> drain_frames t inc
          | exception (Codec.Truncated | Codec.Malformed _) ->
              emit_drop t ~peer:src ~reason:"bad-batch";
              drop_incoming t inc;
              bump_misbehavior t ~peer:src))

let on_readable_incoming t inc () =
  match Assembler.read_from_fd inc.asm inc.fd with
  | 0 -> drop_incoming t inc
  | read ->
      Metrics.Counter.add t.c_bytes_in read;
      drain_frames t inc
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> drop_incoming t inc

let on_accept t () =
  match Unix.accept t.listen_fd with
  | fd, _ ->
      Unix.set_nonblock fd;
      (* Inner frames add at most a varint to the payload a peer was
         asked to carry, and sealed batches respect the (symmetric)
         watermark — so honest traffic stays within max_frame + 16. *)
      let asm = Assembler.create ~max_frame:(t.max_frame + 16) () in
      let inc = { fd; asm; peer = None } in
      t.incoming <- inc :: t.incoming;
      Loop.on_readable t.loop fd (on_readable_incoming t inc)
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> ()

let create loop ~me ~listen_fd ~peers ~on_frame ?(tracer = Trace.nop) ?metrics
    ?(dial = default_dial_policy) ?(hostile = default_hostile_policy)
    ?(backpressure = default_backpressure) ?(max_frame = 8 * 1024 * 1024)
    ?(flush_interval = 0.001) () =
  Unix.set_nonblock listen_fd;
  let outgoing =
    List.filter_map
      (fun (dst, addr) ->
        if dst = me then None
        else
          Some
            ( dst,
              {
                dst;
                addr;
                fd = None;
                broken = false;
                dial_failed = false;
                attempts = 0;
                delay = dial.base_delay;
                next_dial = 0.0;
                out = Iobuf.create ~capacity:4096 ();
                batch = Buffer.create 4096;
                batch_frames = 0;
                queued_frames = 0;
                bp = false;
                overflow = Queue.create ();
                recent = [];
                recent_len = 0;
                overflow_bytes = 0;
                shed_frames = 0;
                over_hard_since = 0.0;
              } ))
      peers
  in
  let labels = [ ("node", string_of_int me) ] in
  let counter name =
    match metrics with
    | None -> Metrics.Counter.detached ()
    | Some reg -> Metrics.counter reg ~labels name
  in
  let histogram name =
    match metrics with
    | None -> Metrics.Histogram.detached ()
    | Some reg -> Metrics.histogram reg ~labels name
  in
  let t =
    {
      loop;
      me;
      listen_fd;
      outgoing;
      incoming = [];
      on_frame;
      closed = false;
      tracer;
      dial;
      hostile;
      offenders = Hashtbl.create 16;
      max_frame;
      flush_interval;
      watermark = min 65536 max_frame;
      bp_policy = backpressure;
      scratch = Buffer.create 512;
      reads_paused = false;
      over_budget = false;
      jitter_state = Int64.of_int ((me * 2654435761) lor 1);
      c_bytes_out = counter "tcp_bytes_out_total";
      c_bytes_in = counter "tcp_bytes_in_total";
      c_reconnects = counter "tcp_reconnects_total";
      c_frames_dropped = counter "tcp_frames_dropped_total";
      c_frames_oversize = counter "tcp_frames_oversize_total";
      c_writeoff_resets = counter "tcp_writeoff_resets_total";
      c_flushes = counter "tcp_flushes_total";
      c_writev_bytes = counter "tcp_writev_bytes_total";
      c_quarantined = counter "tcp_peer_quarantined_total";
      c_bp_soft = counter "tcp_backpressure_soft_total";
      c_bp_hard = counter "tcp_backpressure_hard_total";
      c_bp_budget = counter "tcp_backpressure_budget_total";
      c_shed_frames = counter "tcp_shed_frames_total";
      c_shed_bytes = counter "tcp_shed_bytes_total";
      h_batch_frames = histogram "tcp_batch_frames";
    }
  in
  Loop.on_readable loop listen_fd (on_accept t);
  List.iter (fun (_, out) -> try_dial t out) outgoing;
  ignore
    (Loop.every loop ~period:0.05 (fun () ->
         if not t.closed then begin
           forgive_expired t;
           List.iter
             (fun (_, (out : outgoing)) ->
               if out.fd = None then try_dial t out else flush_outgoing t out)
             t.outgoing
         end;
         not t.closed)
      : Loop.timer);
  if flush_interval > 0.0 then
    ignore
      (Loop.every loop ~period:flush_interval (fun () ->
           if not t.closed then
             List.iter (fun (_, out) -> flush_outgoing t out) t.outgoing;
           not t.closed)
        : Loop.timer);
  t

(* Append one inner frame to [dst]'s open batch. [len] is the payload
   size; [add] writes exactly that many bytes to the batch buffer.
   Past the soft watermark the frame goes to the overflow queue
   instead, where the suffix-shed walk may purge the obsolete run of
   queued-but-unsent data frames the fresh one covers. *)
let enqueue t (out : outgoing) ?meta ~len add =
  if out.bp || peer_pending out + len > t.bp_policy.soft then begin
    if not out.bp then begin
      out.bp <- true;
      Metrics.Counter.incr t.c_bp_soft;
      emit_backpressure t out ~stage:"soft"
    end;
    (match meta with
    | Some fresh when t.bp_policy.shed ->
        let victims =
          Shed.walk ~meta:(fun f -> f.fmeta) ~shed:(fun f -> f.fshed) ~fresh out.recent
        in
        List.iter
          (fun (f : oframe) ->
            f.fshed <- true;
            out.overflow_bytes <- out.overflow_bytes - String.length f.bytes;
            out.shed_frames <- out.shed_frames + 1;
            Metrics.Counter.incr t.c_shed_frames;
            Metrics.Counter.add t.c_shed_bytes (String.length f.bytes);
            match f.fmeta with
            | Some k ->
                if Trace.enabled t.tracer then
                  Trace.emit t.tracer
                    (Trace.Shed
                       {
                         node = t.me;
                         peer = out.dst;
                         sender = k.Shed.id.Svs_obs.Msg_id.sender;
                         sn = k.Shed.id.Svs_obs.Msg_id.sn;
                       })
            | None -> ())
          victims
    | _ -> ());
    Buffer.clear t.scratch;
    add t.scratch;
    let f =
      { bytes = Buffer.contents t.scratch; fmeta = meta; fshed = false; sent = false }
    in
    Queue.add f out.overflow;
    out.overflow_bytes <- out.overflow_bytes + len;
    (match meta with
    | Some _ ->
        out.recent <- f :: out.recent;
        out.recent_len <- out.recent_len + 1;
        if out.recent_len > 2 * Shed.max_walk then begin
          (* Cap the walk mirror; frames that fall off just become
             unsheddable (less shedding, never unsafe). *)
          let rec take n = function
            | x :: rest when n > 0 -> x :: take (n - 1) rest
            | _ -> []
          in
          out.recent <- take Shed.max_walk out.recent;
          out.recent_len <- Shed.max_walk
        end
    | None -> ());
    update_hard t out;
    let total = List.fold_left (fun acc (_, o) -> acc + peer_pending o) 0 t.outgoing in
    if total > t.bp_policy.budget then begin
      if not t.over_budget then begin
        t.over_budget <- true;
        Metrics.Counter.incr t.c_bp_budget;
        emit_backpressure t out ~stage:"budget"
      end
    end
    else t.over_budget <- false;
    if out.fd = None then try_dial t out
    else if t.flush_interval <= 0.0 then flush_outgoing t out
  end
  else begin
    (* Seal before adding when the frame would push the batch past the
       watermark: a sealed batch is at most [watermark] bytes unless a
       single frame alone exceeds it. *)
    if
      out.batch_frames > 0
      && Buffer.length out.batch + varint_size len + len > t.watermark
    then flush_outgoing t out;
    add_varint out.batch len;
    add out.batch;
    out.batch_frames <- out.batch_frames + 1;
    out.queued_frames <- out.queued_frames + 1;
    if out.fd = None then try_dial t out;
    if t.flush_interval <= 0.0 || Buffer.length out.batch >= t.watermark then
      flush_outgoing t out
  end

let with_dst t ~dst f =
  if not t.closed then
    match List.assoc_opt dst t.outgoing with
    | None -> emit_drop t ~peer:dst ~reason:"unknown-dst"
    | Some (out : outgoing) when out.broken ->
        (* Buffering towards a written-off peer would grow without
           bound; the frame can never be delivered on this stream. *)
        emit_drop t ~peer:dst ~reason:"written-off"
    | Some (out : outgoing) -> f out

let send t ~dst ?meta payload =
  with_dst t ~dst (fun out ->
      enqueue t out ?meta ~len:(String.length payload) (fun batch ->
          Buffer.add_string batch payload))

let send_writer t ~dst ?meta w =
  with_dst t ~dst (fun out ->
      enqueue t out ?meta ~len:(Codec.Writer.length w) (fun batch ->
          Codec.Writer.add_to_buffer w batch))

let flush t = if not t.closed then List.iter (fun (_, out) -> flush_outgoing t out) t.outgoing

let bytes_out t = Metrics.Counter.value t.c_bytes_out

let bytes_in t = Metrics.Counter.value t.c_bytes_in

let reconnects t = Metrics.Counter.value t.c_reconnects

let frames_dropped t = Metrics.Counter.value t.c_frames_dropped

let frames_oversize t = Metrics.Counter.value t.c_frames_oversize

let writeoff_resets t = Metrics.Counter.value t.c_writeoff_resets

let flushes t = Metrics.Counter.value t.c_flushes

let dial_attempts t ~dst =
  match List.assoc_opt dst t.outgoing with None -> 0 | Some out -> out.attempts

let written_off t ~dst =
  match List.assoc_opt dst t.outgoing with None -> false | Some out -> out.broken

let connected t =
  List.filter_map
    (fun (dst, (out : outgoing)) -> if out.fd <> None then Some dst else None)
    t.outgoing

let pending_bytes t ~dst =
  match List.assoc_opt dst t.outgoing with None -> 0 | Some out -> peer_pending out

let total_pending t =
  List.fold_left (fun acc (_, out) -> acc + peer_pending out) 0 t.outgoing

(* Drop everything queued towards a peer the membership layer no
   longer counts — frames to a non-member are dead weight, and holding
   megabytes for a consumer that will never read again defeats the
   budget. The link itself stays configured (a future incarnation
   re-enters via JOIN/SYNC on a fresh stream). *)
let drop_pending t ~dst =
  match List.assoc_opt dst t.outgoing with
  | None -> 0
  | Some out ->
      let bytes = peer_pending out in
      if bytes > 0 then begin
        Metrics.Counter.add t.c_frames_dropped (live_frames out);
        if Trace.enabled t.tracer then
          Trace.emit t.tracer (Trace.TcpDrop { node = t.me; peer = dst; reason = "member-left" });
        clear_queued out
      end;
      bytes

(* Admission control: the application should stop multicasting when
   any live peer is over the hard watermark or the mesh is over its
   budget. Written-off peers don't count — their queues are already
   dropped and the view machinery is evicting them. *)
let would_block t =
  total_pending t >= t.bp_policy.budget
  || List.exists
       (fun (_, (out : outgoing)) ->
         (not out.broken) && peer_pending out >= t.bp_policy.hard)
       t.outgoing

let backpressure t = t.bp_policy

let shed_frames t = Metrics.Counter.value t.c_shed_frames

type bp_stage = Bp_normal | Bp_soft | Bp_hard

let stage_name = function Bp_normal -> "normal" | Bp_soft -> "soft" | Bp_hard -> "hard"

type peer_stat = {
  peer : int;
  up : bool;
  pending : int;
  attempts : int;
  written_off : bool;
  quarantined : bool;
  stage : bp_stage;
  shed : int;
  over_hard_s : float; (* continuously over [hard] for this long *)
}

let peer_stats t =
  let now = Loop.now t.loop in
  List.map
    (fun (dst, (out : outgoing)) ->
      {
        peer = dst;
        up = out.fd <> None;
        pending = peer_pending out;
        attempts = out.attempts;
        written_off = out.broken;
        quarantined = quarantined t ~peer:dst;
        stage =
          (if out.over_hard_since > 0.0 then Bp_hard
           else if out.bp then Bp_soft
           else Bp_normal);
        shed = out.shed_frames;
        over_hard_s = (if out.over_hard_since > 0.0 then now -. out.over_hard_since else 0.0);
      })
    t.outgoing
  |> List.sort (fun a b -> compare a.peer b.peer)

(* Receiver-side stall injection (benches and chaos tests): stop
   servicing inbound sockets — and the accept queue — so senders see a
   consumer that reads nothing, exactly like a wedged process. *)
let pause_reads t =
  if not (t.reads_paused || t.closed) then begin
    t.reads_paused <- true;
    Loop.remove_fd t.loop t.listen_fd;
    List.iter (fun inc -> Loop.remove_fd t.loop inc.fd) t.incoming
  end

let resume_reads t =
  if t.reads_paused && not t.closed then begin
    t.reads_paused <- false;
    Loop.on_readable t.loop t.listen_fd (fun () -> on_accept t ());
    List.iter (fun inc -> Loop.on_readable t.loop inc.fd (on_readable_incoming t inc)) t.incoming
  end

let quarantined_total t = Metrics.Counter.value t.c_quarantined

let close t =
  if not t.closed then begin
    (* Last chance for queued traffic before the sockets go away. *)
    List.iter (fun (_, out) -> flush_outgoing t out) t.outgoing;
    t.closed <- true;
    Loop.remove_fd t.loop t.listen_fd;
    (try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ());
    List.iter
      (fun (_, (out : outgoing)) ->
        match out.fd with
        | Some fd ->
            Loop.remove_fd t.loop fd;
            (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
            out.fd <- None
        | None -> ())
      t.outgoing;
    List.iter (fun inc -> drop_incoming t inc) t.incoming
  end
