module Slice = Svs_codec.Codec.Slice

type t = {
  mutable buf : Bytes.t;
  mutable start : int;
  mutable fill : int;
  initial : int;
  shrink : int;
}

let create ?(capacity = 4096) ?(shrink = 1 lsl 20) () =
  let initial = max 16 capacity in
  { buf = Bytes.create initial; start = 0; fill = 0; initial; shrink = max initial shrink }

let length t = t.fill - t.start

let is_empty t = t.fill = t.start

let capacity t = Bytes.length t.buf

(* Draining resets the region; a backing buffer blown up by a one-time
   burst is released here rather than pinned forever (borrowed slices
   keep the old bytes alive on their own). Growth is geometric, so a
   steady-state buffer under [shrink] never reallocates. *)
let clear t =
  t.start <- 0;
  t.fill <- 0;
  if Bytes.length t.buf > t.shrink then t.buf <- Bytes.create t.initial

(* Make room for [extra] more bytes at the tail: first slide the live
   region back to offset 0 (reclaiming consumed space), and only if
   that is not enough grow geometrically. Amortized O(1) per byte. *)
let reserve t extra =
  if t.fill + extra > Bytes.length t.buf then begin
    let live = length t in
    if live + extra <= Bytes.length t.buf then begin
      Bytes.blit t.buf t.start t.buf 0 live;
      t.start <- 0;
      t.fill <- live
    end
    else begin
      let target = live + extra in
      let cap = ref (max 16 (Bytes.length t.buf)) in
      while !cap < target do
        cap := !cap * 2
      done;
      let fresh = Bytes.create !cap in
      Bytes.blit t.buf t.start fresh 0 live;
      t.buf <- fresh;
      t.start <- 0;
      t.fill <- live
    end
  end

let unsafe_bytes t = t.buf

let start t = t.start

let contents_slice t = Slice.make t.buf ~off:t.start ~len:(length t)

let add_char t c =
  reserve t 1;
  Bytes.unsafe_set t.buf t.fill c;
  t.fill <- t.fill + 1

let add_string t s =
  let n = String.length s in
  reserve t n;
  Bytes.blit_string s 0 t.buf t.fill n;
  t.fill <- t.fill + n

let add_subbytes t b off len =
  reserve t len;
  Bytes.blit b off t.buf t.fill len;
  t.fill <- t.fill + len

let add_buffer t b =
  let n = Buffer.length b in
  reserve t n;
  Buffer.blit b 0 t.buf t.fill n;
  t.fill <- t.fill + n

let add_be32 t v =
  reserve t 4;
  Bytes.unsafe_set t.buf t.fill (Char.unsafe_chr ((v lsr 24) land 0xFF));
  Bytes.unsafe_set t.buf (t.fill + 1) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set t.buf (t.fill + 2) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set t.buf (t.fill + 3) (Char.unsafe_chr (v land 0xFF));
  t.fill <- t.fill + 4

let add_writer t w =
  let n = Svs_codec.Codec.Writer.length w in
  reserve t n;
  Svs_codec.Codec.Writer.blit_into w t.buf t.fill;
  t.fill <- t.fill + n

let prepend_string t s =
  let n = String.length s in
  if t.start >= n then begin
    (* Room before the live region: write the prefix in place. *)
    t.start <- t.start - n;
    Bytes.blit_string s 0 t.buf t.start n
  end
  else begin
    let live = length t in
    reserve t n;
    (* reserve may have compacted; shift the live region right. *)
    Bytes.blit t.buf t.start t.buf (t.start + n) live;
    Bytes.blit_string s 0 t.buf t.start n;
    t.fill <- t.fill + n
  end

let consume t n =
  if n < 0 || n > length t then invalid_arg "Iobuf.consume: out of bounds";
  t.start <- t.start + n;
  if t.start = t.fill then clear t

(* One write syscall straight from the backing bytes (no copy),
   advancing past whatever the kernel took. *)
let write_to_fd t fd =
  let n = length t in
  if n = 0 then 0
  else begin
    let written = Unix.write fd t.buf t.start n in
    consume t written;
    written
  end

(* One read syscall into the free tail, growing so at least
   [read_chunk] bytes can land. *)
let read_chunk = 65536

let read_from_fd t fd =
  reserve t read_chunk;
  let n = Unix.read fd t.buf t.fill (Bytes.length t.buf - t.fill) in
  if n > 0 then t.fill <- t.fill + n;
  n
