(** Dependency-free admin endpoint: a tiny HTTP/1.0 listener on the
    {!Loop} serving operator probes — conventionally [/metrics]
    (Prometheus text exposition via
    {!Svs_telemetry.Metrics.prometheus_string}), [/status] (a JSON
    snapshot, {!Node.status_json}), [/health], and [/dump] (flight
    recorder).

    One request per connection ([Connection: close]); GET and HEAD
    only. Handlers run inline on the loop thread, so they must be
    cheap reads of in-process state — which is all an SVS node has to
    report. A handler that raises answers 503 with the exception text
    instead of killing the node. *)

type t

(** What a route handler answers. *)
type response = { status : int; content_type : string; body : string }

val text : ?status:int -> string -> response
(** [text/plain] response (default status 200). *)

val json : ?status:int -> string -> response
(** [application/json] response (default status 200). *)

val prometheus : string -> response
(** [text/plain; version=0.0.4] response, status 200. *)

val create : Loop.t -> addr:Unix.sockaddr -> (string * (unit -> response)) list -> t
(** [create loop ~addr routes] binds and starts answering immediately.
    [routes] maps exact paths (["/metrics"]) to handlers, evaluated
    per request; query strings are stripped before matching. Unknown
    paths answer 404 listing the known ones. Port 0 binds an ephemeral
    port — see {!port}. *)

val port : t -> int
(** The actually bound TCP port. *)

val close : t -> unit
(** Stop listening and drop open connections. *)
