(** Durable write-ahead log for a runtime node's recoverable protocol
    state: identity, last installed view, per-sender delivery floors
    and a sequence-number lease.

    The log is a directory of append-only segment files. Every record
    is framed as [[u32 length][u32 crc32][payload]] (CRC32/IEEE,
    hand-rolled — no external dependency), so recovery can tell a torn
    tail from valid data.

    Recovery runs a {e salvage scan} by default: every frame with a
    valid checksum is replayed, corrupt regions (bit-flips, torn
    interior writes) are skipped by hunting forward for the next
    plausible frame header, and the damaged bytes are quarantined to a
    [<segment>.corrupt] sidecar for postmortem rather than silently
    destroyed. Replay is monotonic — views only move to higher ids,
    floors and the lease ceiling only ratchet up — so duplicated or
    reordered records resurrected by the scan cannot roll state
    backwards. A plain torn tail on the last segment (the ordinary
    crash leftover) is chopped exactly as before. When interior bytes
    were skipped, the surviving state is rewritten into a fresh
    segment so the log replays cleanly next time.

    The {!recovery.tainted} flag reports when the scan discarded bytes
    {e without} a later valid [Snapshot] proving the state suffix
    intact: a durable [Lease] or [Floor] may have been destroyed, so
    the caller must not trust the recovered lease ceiling (the runtime
    node responds by over-provisioning its lease and re-joining via
    state transfer instead of assuming "sn on wire ⇒ durable lease"
    still holds).

    Appends are group-committed: {!append} frames the record into an
    in-memory tail (one reusable buffer, no per-record allocation or
    syscall), the tail reaches the kernel at a watermark (256 KiB) or
    on {!sync}, and {!sync} flushes plus fsyncs — the caller picks the
    point on the latency/durability curve per record (a sequence-number
    {!record.Lease} must be durable {e before} any leased number is
    used, while delivery-floor updates can ride the periodic sync).
    A crash between an append and the next sync loses at most the tail,
    which recovery treats exactly like a torn write.

    When a segment outgrows its limit the log rotates: the next
    segment opens with an identity stamp and a [Snapshot] of the
    replayed state, is fsynced, and the older segments are deleted —
    the log's size stays proportional to live state, not history. *)

type t

type record =
  | Snapshot of {
      view : Svs_core.View.t option;
      floors : (int * int) list;
      next_sn : int;
    }
      (** Full recoverable state; written at rotation. On replay it
          merges monotonically (it dominates everything before it in a
          well-formed log). *)
  | Install of Svs_core.View.t  (** A view was installed. *)
  | Floor of { sender : int; sn : int }
      (** Delivery floor advanced: everything from [sender] up to and
          including [sn] has been delivered (or covered). *)
  | Lease of { next_sn : int }
      (** Sequence numbers below [next_sn] may have been used; a
          restarted incarnation must not reuse them. Make it durable
          before using any leased number. *)

type recovery = {
  view : Svs_core.View.t option;  (** Last installed view, if any. *)
  floors : (int * int) list;
  next_sn : int;  (** First safe sequence number (the lease ceiling). *)
  records : int;  (** Valid frames replayed. *)
  truncated : int;  (** Damaged bytes discarded (torn tail, bad CRC). *)
  skipped : int;
      (** Corrupt interior regions skipped by the salvage scan and
          quarantined to a [.corrupt] sidecar (0 = clean log or plain
          torn tail). *)
  tainted : bool;
      (** True when bytes were discarded with no later valid
          [Snapshot] proving the suffix intact — the lease ceiling in
          [next_sn] may be rolled back and must not be trusted. *)
  fresh : bool;  (** True when the directory held no log at all. *)
}

type open_error =
  | Foreign_log of { dir : string; owner : int; me : int }
      (** The directory's log was written by node [owner], not [me] —
          two nodes sharing a data dir is always a deployment error. *)

exception Open_error of open_error
(** Raised by {!open_exn} when {!open_} would return an error. *)

val open_error_message : open_error -> string
(** Human-readable one-line description of an open failure. *)

val open_ :
  dir:string ->
  me:int ->
  ?segment_limit:int ->
  ?salvage:bool ->
  ?metrics:Svs_telemetry.Metrics.t ->
  unit ->
  (t * recovery, open_error) result
(** Open (creating the directory if needed) and replay the log.
    [segment_limit] (default 4 MiB) triggers rotation. [salvage]
    (default [true]) enables the salvage scan; [false] restores the
    legacy truncate-at-first-bad-frame recovery (for the chaos
    inverted self-check). [metrics] registers [wal_appends_total],
    [wal_syncs_total], [wal_rotations_total] and
    [wal_corrupt_regions_total], labelled by node. *)

val open_exn :
  dir:string ->
  me:int ->
  ?segment_limit:int ->
  ?salvage:bool ->
  ?metrics:Svs_telemetry.Metrics.t ->
  unit ->
  t * recovery
(** {!open_}, raising {!Open_error} instead of returning it. *)

val append : t -> record -> unit
(** Queue a record in the group-commit tail; durable only after the
    next {!sync}. *)

val sync : t -> unit
(** Flush the tail and fsync outstanding appends (no-op when clean). *)

val append_durable : t -> record -> unit
(** {!append} then {!sync}. *)

val pending_bytes : t -> int
(** Bytes queued in the group-commit tail, not yet handed to the
    kernel. *)

val current_segment : t -> int
(** Index of the segment currently appended to. *)

val close : t -> unit
(** Sync and close. Further appends raise [Invalid_argument]. *)

val abandon : t -> unit
(** Simulate a crash: discard the in-memory tail and close the fd with
    {e no} flush or fsync — what a process death between an append and
    the commit tick leaves behind. For crash-recovery tests. *)
