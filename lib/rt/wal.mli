(** Durable write-ahead log for a runtime node's recoverable protocol
    state: identity, last installed view, per-sender delivery floors
    and a sequence-number lease.

    The log is a directory of append-only segment files. Every record
    is framed as [[u32 length][u32 crc32][payload]] (CRC32/IEEE,
    hand-rolled — no external dependency), so recovery can tell a torn
    tail from valid data: {!open_} replays each segment until the
    first frame whose length overruns the file or whose checksum
    fails, truncates the garbage tail, and discards any later
    segments (they are unreachable once bytes before them are
    untrusted).

    Appends are buffered in the kernel and made durable in batches:
    {!append} only writes, {!sync} fsyncs everything written since the
    last sync, {!append_durable} does both — the caller picks the
    point on the latency/durability curve per record (a sequence-number
    {!record.Lease} must be durable {e before} any leased number is
    used, while delivery-floor updates can ride the periodic sync).

    When a segment outgrows its limit the log rotates: the next
    segment opens with an identity stamp and a [Snapshot] of the
    replayed state, is fsynced, and the older segments are deleted —
    the log's size stays proportional to live state, not history. *)

type t

type record =
  | Snapshot of {
      view : Svs_core.View.t option;
      floors : (int * int) list;
      next_sn : int;
    }
      (** Full recoverable state; written at rotation, replaces
          everything replayed before it. *)
  | Install of Svs_core.View.t  (** A view was installed. *)
  | Floor of { sender : int; sn : int }
      (** Delivery floor advanced: everything from [sender] up to and
          including [sn] has been delivered (or covered). *)
  | Lease of { next_sn : int }
      (** Sequence numbers below [next_sn] may have been used; a
          restarted incarnation must not reuse them. Make it durable
          before using any leased number. *)

type recovery = {
  view : Svs_core.View.t option;  (** Last installed view, if any. *)
  floors : (int * int) list;
  next_sn : int;  (** First safe sequence number (the lease ceiling). *)
  records : int;  (** Valid frames replayed. *)
  truncated : int;  (** Garbage bytes chopped off (torn tail, bad CRC). *)
  fresh : bool;  (** True when the directory held no log at all. *)
}

val open_ :
  dir:string ->
  me:int ->
  ?segment_limit:int ->
  ?metrics:Svs_telemetry.Metrics.t ->
  unit ->
  t * recovery
(** Open (creating the directory if needed) and replay the log.
    [segment_limit] (default 4 MiB) triggers rotation. [metrics]
    registers [wal_appends_total], [wal_syncs_total] and
    [wal_rotations_total], labelled by node. Raises [Failure] if the
    directory's log was written by a different node id — two nodes
    sharing a data dir is always a deployment error. *)

val append : t -> record -> unit
(** Write a record; durable only after the next {!sync}. *)

val sync : t -> unit
(** Fsync outstanding appends (no-op when clean). *)

val append_durable : t -> record -> unit
(** {!append} then {!sync}. *)

val current_segment : t -> int
(** Index of the segment currently appended to. *)

val close : t -> unit
(** Sync and close. Further appends raise [Invalid_argument]. *)
