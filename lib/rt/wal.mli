(** Durable write-ahead log for a runtime node's recoverable protocol
    state: identity, last installed view, per-sender delivery floors
    and a sequence-number lease.

    The log is a directory of append-only segment files. Every record
    is framed as [[u32 length][u32 crc32][payload]] (CRC32/IEEE,
    hand-rolled — no external dependency), so recovery can tell a torn
    tail from valid data: {!open_} replays each segment until the
    first frame whose length overruns the file or whose checksum
    fails, truncates the garbage tail, and discards any later
    segments (they are unreachable once bytes before them are
    untrusted).

    Appends are group-committed: {!append} frames the record into an
    in-memory tail (one reusable buffer, no per-record allocation or
    syscall), the tail reaches the kernel at a watermark (256 KiB) or
    on {!sync}, and {!sync} flushes plus fsyncs — the caller picks the
    point on the latency/durability curve per record (a sequence-number
    {!record.Lease} must be durable {e before} any leased number is
    used, while delivery-floor updates can ride the periodic sync).
    A crash between an append and the next sync loses at most the tail,
    which recovery treats exactly like a torn write.

    When a segment outgrows its limit the log rotates: the next
    segment opens with an identity stamp and a [Snapshot] of the
    replayed state, is fsynced, and the older segments are deleted —
    the log's size stays proportional to live state, not history. *)

type t

type record =
  | Snapshot of {
      view : Svs_core.View.t option;
      floors : (int * int) list;
      next_sn : int;
    }
      (** Full recoverable state; written at rotation, replaces
          everything replayed before it. *)
  | Install of Svs_core.View.t  (** A view was installed. *)
  | Floor of { sender : int; sn : int }
      (** Delivery floor advanced: everything from [sender] up to and
          including [sn] has been delivered (or covered). *)
  | Lease of { next_sn : int }
      (** Sequence numbers below [next_sn] may have been used; a
          restarted incarnation must not reuse them. Make it durable
          before using any leased number. *)

type recovery = {
  view : Svs_core.View.t option;  (** Last installed view, if any. *)
  floors : (int * int) list;
  next_sn : int;  (** First safe sequence number (the lease ceiling). *)
  records : int;  (** Valid frames replayed. *)
  truncated : int;  (** Garbage bytes chopped off (torn tail, bad CRC). *)
  fresh : bool;  (** True when the directory held no log at all. *)
}

val open_ :
  dir:string ->
  me:int ->
  ?segment_limit:int ->
  ?metrics:Svs_telemetry.Metrics.t ->
  unit ->
  t * recovery
(** Open (creating the directory if needed) and replay the log.
    [segment_limit] (default 4 MiB) triggers rotation. [metrics]
    registers [wal_appends_total], [wal_syncs_total] and
    [wal_rotations_total], labelled by node. Raises [Failure] if the
    directory's log was written by a different node id — two nodes
    sharing a data dir is always a deployment error. *)

val append : t -> record -> unit
(** Queue a record in the group-commit tail; durable only after the
    next {!sync}. *)

val sync : t -> unit
(** Flush the tail and fsync outstanding appends (no-op when clean). *)

val append_durable : t -> record -> unit
(** {!append} then {!sync}. *)

val pending_bytes : t -> int
(** Bytes queued in the group-commit tail, not yet handed to the
    kernel. *)

val current_segment : t -> int
(** Index of the segment currently appended to. *)

val close : t -> unit
(** Sync and close. Further appends raise [Invalid_argument]. *)

val abandon : t -> unit
(** Simulate a crash: discard the in-memory tail and close the fd with
    {e no} flush or fsync — what a process death between an append and
    the commit tick leaves behind. For crash-recovery tests. *)
