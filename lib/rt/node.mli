(** A group member running for real: the SVS protocol + heartbeat
    failure detection + Chandra–Toueg consensus over a TCP mesh, driven
    by wall-clock time.

    The same automata that run under the simulator are reused verbatim
    (they are transport-agnostic); their timers live in a private
    {!Svs_sim.Engine} that the I/O loop advances to wall-clock time.

    Deliveries are pulled with {!deliver} — the paper's down-call
    interface (§3.2): messages the application has not consumed yet
    stay in the protocol buffers where they remain purgeable. Suspicion
    (missed heartbeats) triggers a view change automatically, like the
    simulated {!Svs_core.Group} stack. *)

type 'p t

(** Graceful escalation for a persistently slow member, staged on the
    time its link has spent continuously over the hard backpressure
    watermark. Stage 1 is the transport's own flow control (stall +
    semantic shedding); at [report_after] seconds the node reports the
    laggard ([rt_slow_member_reports_total], a [Backpressure] trace
    event with stage ["reported"], a warning log); at [evict_after]
    seconds it forces a suspicion, handing the peer to the ordinary
    suspicion → view-change path — the group agrees on a view without
    it instead of one node expelling it unilaterally. While the
    eviction is in flight the peer's heartbeats are muted (a slow
    consumer is alive and still beating; they would rescind the
    suspicion), un-muted as soon as its link drains. *)
type slow_member_policy = {
  report_after : float;
  evict_after : float option;  (** [None]: report but never suspect. *)
}

val default_slow_member : slow_member_policy
(** Report after 2 s over the hard watermark, evict after 15 s. *)

type config = {
  semantic : bool;
  heartbeat : Svs_detector.Heartbeat.config;
  stability_period : float option;
  park_timeout : float option;
      (** Primary-component survival. When set, a member still blocked
          in the same view change after this many wall-clock seconds
          has lost the majority of its view: it {e parks} (stops
          multicasting and delivering fresh messages, keeps its floors
          and WAL) and turns into a recovering joiner that probes
          every peer until the partition heals, then merges back
          through the ordinary JOIN/SYNC path with state transfer. A
          member that instead learns it was {e excluded} while cut off
          takes the same rejoin path rather than stopping. [None]
          (default) keeps the pre-partition behaviour: exclusion stops
          the node. *)
  tracer : Svs_telemetry.Trace.t;
      (** Receives the node's trace events stamped with wall-clock
          time (the node re-points the tracer's clock at the loop). *)
  metrics : Svs_telemetry.Metrics.t option;
      (** When set, registers the node's instruments: the protocol's
          purge/occupancy/blocked set, the mesh byte counters and
          batching instruments, [rt_suspicions_total] and
          [rt_delivery_latency_seconds] (wall-clock seconds from
          acceptance to application delivery), labelled by node. *)
  flush_interval : float;
      (** Mesh batching horizon in seconds (see
          {!Tcp_mesh.create}): outbound packets coalesce per peer for
          up to this long before one batched write. [0.] writes on
          every send. *)
  hostile : Tcp_mesh.hostile_policy;
      (** How decode failures (transport framing and packet envelopes
          alike) escalate to link resets and peer quarantine; see
          {!Tcp_mesh.hostile_policy}. *)
  divergence_period : float option;
      (** Divergence self-healing. Every heartbeat already carries the
          sender's replicated-state digest (installed view, merged
          floors, application digest via [state_digest]); when set, a
          timer at this period compares them. A quiescent member whose
          digest disagrees with a unanimous rest-of-view for several
          consecutive rounds concludes {e it} is the corrupt one:
          it self-demotes (asks the group to exclude it, counted in
          [svs_divergence_detected_total] and traced as [Divergence])
          and re-enters through JOIN/SYNC with state transfer. [None]
          (default) disables the check; the digests still ride the
          heartbeats. *)
  backpressure : Tcp_mesh.backpressure_policy;
      (** Outbound flow control: watermarks, the mesh-wide budget and
          the semantic-shedding switch (see
          {!Tcp_mesh.backpressure_policy}). *)
  slow_member : slow_member_policy;
      (** How a link stuck over the hard watermark escalates (see
          {!slow_member_policy}). *)
  max_frame : int;
      (** Largest single inbound frame the mesh will buffer (see
          {!Tcp_mesh.create}). The view change's PRED echoes every
          unstable message of the view as one frame, so a group with
          large payloads or a deep unstable backlog (e.g. one jammed
          member pinning stability) must raise this above its worst
          flush size, or the PRED exchange itself resets the link. *)
}

val default_config : config
(** Semantic purging on, 100 ms heartbeats (350 ms initial timeout),
    stability gossip every second, no park timeout, telemetry off,
    1 ms flush interval, default hostile policy, divergence healing
    off, default backpressure and slow-member policies, 8 MiB max
    frame. *)

val create :
  Loop.t ->
  me:int ->
  listen_fd:Unix.file_descr ->
  peers:(int * Unix.sockaddr) list ->
  payload_codec:'p Svs_core.Wire_codec.payload_codec ->
  ?config:config ->
  ?on_deliverable:(unit -> unit) ->
  ?data_dir:string ->
  ?state_transfer:(unit -> string option) ->
  ?state_digest:(unit -> int) ->
  ?on_synced:(Svs_core.View.t -> string option -> unit) ->
  unit ->
  'p t
(** [peers] must list every initial member (including [me], whose
    address entry is ignored for dialing). The initial view is the set
    of peer ids. [on_deliverable] is a hint fired when new messages
    became deliverable.

    [data_dir] makes the node durable: a {!Wal} in that directory
    records installed views, per-sender delivery floors, and a
    sequence-number lease. A node created over a directory that
    already holds a log is a {e restarted incarnation}: it comes up as
    a joiner (not a member — its previous streams died with it), nags
    the peers with JOIN requests until some member admits it into the
    next view, and resumes from its durable floors so nothing is
    delivered twice across the crash ({!Svs_core.Checker}'s Integrity
    contract under recovery). The recovery is traced as [WalRecovery];
    recovery salvages around corrupt log regions (see {!Wal.open_}),
    and when the salvage cannot prove the durable lease intact the
    node over-provisions its sequence lease and relies on the
    sponsor's floors to stay above anything it ever sent.

    @raise Wal.Open_error when [data_dir] holds another node's log —
    refuse the data dir rather than corrupt it.

    [state_transfer] is this node's application-snapshot callback,
    shipped when it sponsors a joiner; [state_digest] is a cheap hash
    of the same application state, folded into the divergence digest
    gossip (see [divergence_period]); [on_synced] fires with the
    re-entry view and the sponsor's snapshot when {e this} node joins. *)

val deliver : 'p t -> 'p Svs_core.Types.delivery option
(** Pull the next delivery (down-call interface). *)

val deliver_all : 'p t -> 'p Svs_core.Types.delivery list

val pending : 'p t -> int
(** Data messages waiting in the delivery queue. *)

val id : 'p t -> int

val view : 'p t -> Svs_core.View.t

val is_member : 'p t -> bool

val is_joining : 'p t -> bool
(** True while this (restarted or fresh-joining) node is still waiting
    for a sponsor's SYNC. *)

val parked : 'p t -> bool
(** True from the moment this node parked on quorum loss until its
    merge back into the primary component completes (the [Merge] trace
    event / [rt_merge_seconds] observation). Always false without
    [park_timeout]. *)

val multicast :
  'p t ->
  ?ann:Svs_obs.Annotation.t ->
  'p ->
  ('p Svs_core.Types.data, [ `Blocked | `Not_member ]) result
(** Never blocks the caller: a slow peer's frames queue (and, under
    backpressure, shed) in the mesh. An unchecked publisher can
    therefore outrun the mesh budget — see {!would_block} /
    {!try_multicast} / {!on_ready} for the admission-control surface. *)

val would_block : 'p t -> bool
(** True while the transport asks the application to stop admitting
    multicasts: some live peer is at or over the hard watermark, or
    the mesh is over its byte budget. *)

val try_multicast :
  'p t ->
  ?ann:Svs_obs.Annotation.t ->
  'p ->
  ('p Svs_core.Types.data, [ `Blocked | `Not_member | `Would_block ]) result
(** {!multicast} gated on {!would_block}: refuses with [`Would_block]
    instead of queueing into an overloaded mesh. *)

val on_ready : 'p t -> (unit -> unit) -> unit
(** Register a one-shot callback fired (from the escalation timer, so
    within ~¼ s) once {!would_block} has cleared — the resume half of
    the admission-control handshake. *)

val shed_frames : 'p t -> int
(** Frames purged from outbound queues by semantic shedding so far. *)

val slow_reports : 'p t -> int
(** Slow-member reports raised so far (the
    [rt_slow_member_reports_total] counter). *)

val pause_reads : 'p t -> unit
(** Stop reading from the network (accept queue included) while
    continuing to run timers and send — a live but wedged consumer.
    For benches and chaos tests; see {!Tcp_mesh.pause_reads}. *)

val resume_reads : 'p t -> unit

val purged : 'p t -> int

val purged_at : 'p t -> Svs_telemetry.Trace.site -> int
(** {!purged}, split by purge site. *)

val bytes_out : 'p t -> int
(** Bytes written to the TCP mesh so far. *)

val bytes_in : 'p t -> int
(** Bytes read from the TCP mesh so far. *)

val suspicions : 'p t -> int
(** Heartbeat-timeout suspicions raised so far. *)

val divergences : 'p t -> int
(** Divergence self-demotions triggered so far (the
    [svs_divergence_detected_total] counter). *)

val delivery_latency : 'p t -> Svs_telemetry.Metrics.Histogram.t
(** Wall-clock seconds from message acceptance to application
    delivery at this node. *)

val pending_to : 'p t -> dst:int -> int
(** Outbound bytes buffered towards a peer (sender-side buffer). *)

val status_label : 'p t -> string
(** One-word protocol condition: ["member"], ["blocked"], ["joining"],
    ["parked"], ["dead"] or ["stopped"]. *)

val wal_segment : 'p t -> int option
(** Index of the WAL segment currently appended to; [None] without
    [data_dir]. *)

val status_json : 'p t -> string
(** A JSON object describing this node right now: status label,
    uptime, current view, queue depth, purge/suspicion totals, next
    sequence number, per-sender delivery floors, WAL segment, byte
    totals and per-peer link condition. What an admin [/status]
    endpoint serves. *)

val shutdown : 'p t -> unit
(** Close all sockets and stop the node's timers (a crash, from the
    group's point of view). *)
