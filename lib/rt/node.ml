module Engine = Svs_sim.Engine
module Heartbeat = Svs_detector.Heartbeat
module Ct = Svs_consensus.Chandra_toueg
module Protocol = Svs_core.Protocol
module Types = Svs_core.Types
module View = Svs_core.View
module Wire_codec = Svs_core.Wire_codec
module Codec = Svs_codec.Codec
module Metrics = Svs_telemetry.Metrics
module Trace = Svs_telemetry.Trace
module Msg_id = Svs_obs.Msg_id
module Shed = Svs_obs.Shed
module Annotation = Svs_obs.Annotation

let src = Logs.Src.create "svs.rt" ~doc:"SVS real-time node"

module Log = (val Logs.src_log src : Logs.LOG)

(* Graceful escalation for a persistently slow member, staged on the
   time its link has spent continuously over the hard watermark:
   first the transport stalls the link and sheds obsolete frames (the
   backpressure policy), then the node reports it (log + trace +
   counter), and finally — if the operator allowed it — suspects it,
   which hands it to the ordinary suspicion → view-change path: the
   group agrees on a view without the laggard rather than one node
   unilaterally expelling it. *)
type slow_member_policy = {
  report_after : float;
  evict_after : float option;  (** [None]: never escalate to suspicion. *)
}

let default_slow_member = { report_after = 2.0; evict_after = Some 15.0 }

type config = {
  semantic : bool;
  heartbeat : Heartbeat.config;
  stability_period : float option;
  park_timeout : float option;
  tracer : Trace.t;
  metrics : Metrics.t option;
  flush_interval : float;
      (* Mesh batching horizon (seconds); 0. flushes on every send. *)
  hostile : Tcp_mesh.hostile_policy;
  divergence_period : float option;
      (* Check the digest gossip (piggybacked on heartbeats) at this
         period; None disables divergence self-healing. *)
  backpressure : Tcp_mesh.backpressure_policy;
  slow_member : slow_member_policy;
  max_frame : int;
      (* Largest single inbound frame the mesh will buffer. The view
         change's PRED echoes every unstable message as one frame, so
         groups with large payloads or deep unstable backlogs need
         this above the flush size or the exchange resets the link. *)
}

let default_config =
  {
    semantic = true;
    heartbeat = Heartbeat.default_config;
    stability_period = Some 1.0;
    park_timeout = None;
    tracer = Trace.nop;
    metrics = None;
    flush_interval = 0.001;
    hostile = Tcp_mesh.default_hostile_policy;
    divergence_period = None;
    backpressure = Tcp_mesh.default_backpressure;
    slow_member = default_slow_member;
    max_frame = 8 * 1024 * 1024;
  }

(* How many consecutive divergence checks must agree before a node
   self-demotes: one mismatched sample can be a legitimate in-flight
   difference, a persistent one is corruption. *)
let divergence_rounds = 3

(* Packets on the mesh: protocol wire messages, consensus messages for
   a view-change instance, heartbeats. A heartbeat carries the
   sender's replicated-state digest — the divergence gossip rides the
   liveness traffic for free. *)
type 'p packet =
  | Proto of 'p Types.wire
  | Cons of { view_id : int; msg : 'p Types.proposal Ct.msg }
  | Beat of { view_id : int; digest : int }

let write_packet pc w = function
  | Proto wire ->
      Codec.Writer.uint8 w 0;
      Wire_codec.write_wire pc w wire
  | Cons { view_id; msg } ->
      Codec.Writer.uint8 w 1;
      Codec.Writer.varint w view_id;
      Ct.write_msg (Wire_codec.write_proposal pc) w msg
  | Beat { view_id; digest } ->
      Codec.Writer.uint8 w 2;
      (* Zigzag: a joiner's placeholder view id is negative. *)
      Codec.Writer.zigzag w view_id;
      Codec.Writer.zigzag w digest

let read_packet pc r =
  match Codec.Reader.uint8 r with
  | 0 -> Proto (Wire_codec.read_wire pc r)
  | 1 ->
      let view_id = Codec.Reader.varint r in
      let msg = Ct.read_msg (Wire_codec.read_proposal pc) r in
      Cons { view_id; msg }
  | 2 ->
      let view_id = Codec.Reader.zigzag r in
      let digest = Codec.Reader.zigzag r in
      Beat { view_id; digest }
  | n -> raise (Codec.Malformed (Printf.sprintf "packet tag %d" n))

(* How many sequence numbers one Lease record covers. Leases are
   extended ahead of use: when the headroom above the current sn drops
   to [lease_low_water], the next ceiling is appended to the WAL and
   rides the periodic group-commit sync — so the multicast hot path
   almost never waits on an fsync. The blocking fallback (sn caught up
   with the durable ceiling) only fires when publishing outruns a whole
   commit interval's worth of headroom. *)
let lease_chunk = 8192

let lease_low_water = 2048

type 'p t = {
  loop : Loop.t;
  me : int;
  engine : Engine.t; (* timer wheel for the reused automata *)
  started_at : float;
  mutable proto : 'p Protocol.t;
  wal : Wal.t option;
  mutable leased : int; (* lease ceiling appended to the WAL *)
  mutable durable_leased : int; (* lease ceiling known fsynced *)
  pkt_writer : Codec.Writer.t; (* reused for every outbound packet *)
  on_synced : View.t -> string option -> unit;
  mesh : Tcp_mesh.t;
  payload_codec : 'p Wire_codec.payload_codec;
  hb : Heartbeat.t;
  instances : (int, 'p Types.proposal Ct.t) Hashtbl.t;
  cons_stash : (int, (int * 'p Types.proposal Ct.msg) list ref) Hashtbl.t;
  on_deliverable : unit -> unit;
  mutable stopped : bool;
  tracer : Trace.t;
  semantic : bool;
  metrics : Metrics.t option;
  state_transfer_fn : (unit -> string option) option;
  peers_ids : int list;
  park_timeout : float option;
  (* (view id, first seen blocked at) for the park watchdog. *)
  mutable blocked_obs : (int * float) option;
  mutable park_epoch : float option;
  (* Exclusion (or quorum loss) fires mid-drain; the protocol swap is
     deferred to the next engine tick. *)
  mutable want_rejoin : bool;
  (* Divergence self-healing: last digest reported by each peer (with
     the view it was computed in), the consecutive-mismatch streak, and
     whether a self-demotion is in flight. *)
  peer_digests : (int, int * int) Hashtbl.t;
  mutable div_streak : int;
  mutable div_last : (int * int) option;
  mutable heal_pending : bool;
  app_digest : (unit -> int) option;
  c_divergence : Metrics.Counter.t;
  suspicions : Metrics.Counter.t;
  c_slow_reports : Metrics.Counter.t;
  slow_member : slow_member_policy;
  (* Admission control: one-shot callbacks fired by the escalation
     timer once {!would_block} clears. *)
  mutable ready_callbacks : (unit -> unit) list;
  (* Peers currently flagged by the slow-member report stage (cleared
     when their link drops back under the hard watermark). *)
  reported_slow : (int, unit) Hashtbl.t;
  (* Peers the escalation is evicting. Their heartbeats are ignored —
     a slow consumer is alive and still beating, so without this the
     beat would rescind the forced suspicion before the view change
     completes. Cleared once the link drains (the peer recovered, or
     its backlog was dropped when a view without it installed). *)
  evicting : (int, unit) Hashtbl.t;
  delivery_latency : Metrics.Histogram.t;
  merge_spans : Metrics.Histogram.t;
  (* Wall-clock arrival time of each message accepted but not yet
     delivered, keyed by id; entries of view [v] are swept when the
     View_change for a later view is delivered (by then every view-[v]
     message that will ever be delivered has been). *)
  arrivals : (Msg_id.t, int * float) Hashtbl.t;
}

let id t = t.me

let view t = Protocol.current_view t.proto

let is_member t =
  (not t.stopped) && Protocol.alive t.proto && View.mem t.me (view t)

let is_joining t = (not t.stopped) && Protocol.joining t.proto

(* The incremental checksum the divergence gossip compares: installed
   view, merged floors, and the application snapshot digest. Cheap —
   the floors list is one entry per member. *)
let current_digest t =
  let v = view t in
  let app = match t.app_digest with Some f -> f () | None -> 0 in
  Hashtbl.hash (v.View.id, v.View.members, List.sort compare (Protocol.floors t.proto), app)

let divergences t = Metrics.Counter.value t.c_divergence

let purged t = Protocol.purged_count t.proto

let purged_at t site = Protocol.purged_at t.proto site

let bytes_out t = Tcp_mesh.bytes_out t.mesh

let bytes_in t = Tcp_mesh.bytes_in t.mesh

let suspicions t = Metrics.Counter.value t.suspicions

let delivery_latency t = t.delivery_latency

let pending_to t ~dst = Tcp_mesh.pending_bytes t.mesh ~dst

let note_arrival t (d : 'p Types.data) =
  if not (Hashtbl.mem t.arrivals d.Types.id) then
    Hashtbl.replace t.arrivals d.Types.id (d.Types.view_id, Loop.now t.loop)

let send_packet t ~dst packet =
  let w = t.pkt_writer in
  Codec.Writer.clear w;
  write_packet t.payload_codec w packet;
  (* Annotated data frames are the ones semantic shedding may purge
     from a congested link's queue (a newer queued frame obsoleting
     them); everything else — control traffic, unannotated data — is
     always retained. *)
  let meta =
    match packet with
    | Proto (Types.Wdata d) when d.Types.ann <> Annotation.Unrelated ->
        Some { Shed.id = d.Types.id; ann = d.Types.ann; view = d.Types.view_id }
    | _ -> None
  in
  (* The writer's bytes move straight into the mesh batch — no
     per-packet string, no per-packet syscall. *)
  Tcp_mesh.send_writer t.mesh ~dst ?meta w

let rec drain t =
  let outs = Protocol.take_outputs t.proto in
  List.iter (handle_output t) outs;
  if Protocol.to_deliver_length t.proto > 0 then t.on_deliverable ()

and handle_output t = function
  | Types.Send { dst; wire } ->
      (match wire with
      | Types.Wdata d ->
          if Trace.enabled t.tracer then
            Trace.emit t.tracer
              (Trace.Tx
                 {
                   node = t.me;
                   dst;
                   sender = d.Types.id.Msg_id.sender;
                   sn = d.Types.id.Msg_id.sn;
                   view_id = d.Types.view_id;
                 })
      | _ -> ());
      send_packet t ~dst (Proto wire)
  | Types.Installed v ->
      Log.info (fun m -> m "node %d installed %a" t.me View.pp v);
      (* The installed view is the recovery anchor: make it durable
         before acting in it. *)
      (match t.wal with Some w -> Wal.append_durable w (Wal.Install v) | None -> ());
      (* A member listed in the new view is alive by agreement, so a
         written-off stream towards it belongs to a dead incarnation:
         forgive it and open a fresh FIFO stream. *)
      List.iter
        (fun p ->
          if p <> t.me && Tcp_mesh.written_off t.mesh ~dst:p then
            Tcp_mesh.forget_peer t.mesh ~dst:p)
        v.View.members;
      (* Frames queued towards peers the group just agreed are out are
         dead weight against the mesh budget: drop them. (Their next
         incarnation re-enters via JOIN/SYNC on a fresh stream.) The
         flush first pushes whatever the kernel will still take — on a
         healthy link that includes the consensus DECIDE telling the
         excluded peer about this very view, which it needs to start
         rejoining; only the undeliverable backlog is dropped. *)
      if List.exists (fun p -> p <> t.me && not (List.mem p v.View.members)) t.peers_ids
      then begin
        Tcp_mesh.flush t.mesh;
        List.iter
          (fun p ->
            if p <> t.me && not (List.mem p v.View.members) then
              ignore (Tcp_mesh.drop_pending t.mesh ~dst:p : int))
          t.peers_ids
      end
  | Types.Excluded v ->
      Log.warn (fun m -> m "node %d excluded from %a" t.me View.pp v);
      (* Primary-component mode: exclusion learned after a cut (the
         majority moved on without us) is the same fate as parking —
         come back through the probing-joiner path instead of dying.
         A divergence self-demotion asked for this exclusion and
         always rejoins. *)
      if t.park_timeout <> None || t.heal_pending then t.want_rejoin <- true
      else t.stopped <- true
  | Types.Synced { view; app } ->
      Log.info (fun m -> m "node %d synced into %a" t.me View.pp view);
      (match t.park_epoch with
      | Some t0 ->
          (* Merge-on-heal completed: back in the primary component as
             a new incarnation. *)
          let dt = Loop.now t.loop -. t0 in
          t.park_epoch <- None;
          Metrics.Histogram.observe t.merge_spans dt;
          if Trace.enabled t.tracer then
            Trace.emit t.tracer
              (Trace.Merge
                 { node = t.me; view_id = view.View.id; parked_ms = int_of_float (dt *. 1000.0) })
      | None -> ());
      (* Re-synced state is authoritative: restart the divergence
         bookkeeping from scratch. *)
      t.heal_pending <- false;
      t.div_streak <- 0;
      t.div_last <- None;
      Hashtbl.reset t.peer_digests;
      t.on_synced view app
  | Types.Propose { view_id; proposal } -> start_instance t ~view_id proposal

and start_instance t ~view_id proposal =
  if not (Hashtbl.mem t.instances view_id) then begin
    let members = (view t).View.members in
    let inst =
      Ct.create t.engine ~me:t.me ~members
        ~suspects:(fun p -> Heartbeat.suspects t.hb p)
        ~send:(fun ~dst msg -> send_packet t ~dst (Cons { view_id; msg }))
        ~on_decide:(fun v ->
          Protocol.decided t.proto ~view_id v;
          drain t)
        proposal
    in
    Hashtbl.replace t.instances view_id inst;
    (match Hashtbl.find_opt t.cons_stash view_id with
    | None -> ()
    | Some stash ->
        let msgs = List.rev !stash in
        Hashtbl.remove t.cons_stash view_id;
        List.iter (fun (src, msg) -> Ct.on_message inst ~src msg) msgs);
    drain t
  end

let on_suspicion t =
  if is_member t then begin
    Protocol.notify_suspicion_change t.proto;
    let suspected = Heartbeat.suspected_set t.hb in
    if suspected <> [] then Protocol.trigger_view_change t.proto ~leave:suspected ();
    drain t
  end

let on_packet t ~src packet =
  if not t.stopped then
    match packet with
    | Beat { view_id; digest } ->
        if not (Hashtbl.mem t.evicting src) then begin
          Hashtbl.replace t.peer_digests src (view_id, digest);
          Heartbeat.on_heartbeat t.hb ~src
        end
    | Proto wire ->
        (match wire with
        | Types.Wdata d ->
            note_arrival t d;
            if Trace.enabled t.tracer then
              Trace.emit t.tracer
                (Trace.Rx
                   {
                     node = t.me;
                     src;
                     sender = d.Types.id.Msg_id.sender;
                     sn = d.Types.id.Msg_id.sn;
                     view_id = d.Types.view_id;
                   })
        | _ -> ());
        Protocol.receive t.proto ~src wire;
        drain t
    | Cons { view_id; msg } -> (
        match Hashtbl.find_opt t.instances view_id with
        | Some inst ->
            Ct.on_message inst ~src msg;
            drain t
        | None ->
            if view_id >= (view t).View.id then begin
              let stash =
                match Hashtbl.find_opt t.cons_stash view_id with
                | Some s -> s
                | None ->
                    let s = ref [] in
                    Hashtbl.replace t.cons_stash view_id s;
                    s
              in
              stash := (src, msg) :: !stash
            end)

(* A joiner nags the group — cycling contacts, since any single one may
   be blocked, excluded, or dead — until a sponsor's SYNC lands. *)
let start_join_nag t =
  let contacts = List.filter (fun p -> p <> t.me) t.peers_ids in
  let next = ref 0 in
  ignore
    (Loop.every t.loop ~period:0.25 (fun () ->
         if t.stopped || not (Protocol.joining t.proto) then false
         else begin
           (match contacts with
           | [] -> ()
           | _ ->
               let contact = List.nth contacts (!next mod List.length contacts) in
               incr next;
               Protocol.join_request t.proto ~contact;
               drain t);
           true
         end)
      : Loop.timer)

(* Fallen out of the primary component (parked on quorum loss, or
   excluded while cut off): swap the protocol for a recovering joiner
   of the same identity and probe every peer until a sponsor answers.
   The durable floors make re-entry duplicate-free; the sequence lease
   keeps the new incarnation's sns fresh. *)
let rejoin_via_probe t =
  let recovery =
    {
      Protocol.view_id = (Protocol.current_view t.proto).View.id;
      floors = Protocol.floors t.proto;
      next_sn = Stdlib.max t.leased (Protocol.next_sn t.proto);
    }
  in
  Hashtbl.iter (fun _ inst -> Ct.stop inst) t.instances;
  Hashtbl.reset t.instances;
  Hashtbl.reset t.cons_stash;
  t.blocked_obs <- None;
  t.leased <- recovery.Protocol.next_sn;
  let proto =
    Protocol.create_joiner ~me:t.me ~recovery ~semantic:t.semantic ~tracer:t.tracer
      ?metrics:t.metrics
      ~clock:(fun () -> Loop.now t.loop)
      ~suspects:(fun p -> Heartbeat.suspects t.hb p)
      ()
  in
  (match t.state_transfer_fn with Some f -> Protocol.set_state_transfer proto f | None -> ());
  t.proto <- proto;
  (* Written-off peers are alive on the far side of the cut: forgive
     them so the mesh keeps dialing across the partition. *)
  List.iter
    (fun p -> if p <> t.me && Tcp_mesh.written_off t.mesh ~dst:p then Tcp_mesh.forget_peer t.mesh ~dst:p)
    t.peers_ids;
  start_join_nag t

(* Quorum loss: the park deadline expired with this node still blocked
   in the same view change — it has lost the majority of its view. *)
let park t =
  if is_member t then begin
    Protocol.park t.proto;
    t.park_epoch <- Some (Loop.now t.loop);
    rejoin_via_probe t
  end

let parked t = t.park_epoch <> None

(* One round of the divergence check. Digests legitimately differ
   while traffic is in flight (floors advance at different times), so
   a node only counts a round against itself when it is quiescent and
   {e every} other member of its view reports one common digest that
   differs from its own — and only a streak of such rounds demotes.
   The demotion is self-exclusion (the group installs a view without
   us) followed by the ordinary probing-joiner re-entry, so the whole
   JOIN/SYNC + state-transfer machinery heals the divergent replica. *)
let check_divergence t =
  if t.heal_pending then begin
    (* The exclusion we asked for can be ignored while the protocol is
       blocked: keep nudging until it lands. *)
    if is_member t && not (Protocol.blocked t.proto) then begin
      Protocol.trigger_view_change t.proto ~leave:[ t.me ] ();
      drain t
    end
  end
  else if
    is_member t
    && (not (Protocol.blocked t.proto))
    && Protocol.to_deliver_length t.proto = 0
  then begin
    let v = view t in
    let mine = current_digest t in
    let others = List.filter (fun p -> p <> t.me) v.View.members in
    let reports =
      List.filter_map
        (fun p ->
          match Hashtbl.find_opt t.peer_digests p with
          | Some (vid, d) when vid = v.View.id -> Some d
          | _ -> None)
        others
    in
    let odd_one_out =
      others <> []
      && List.length reports = List.length others
      &&
      match reports with
      | d :: rest when d <> mine -> List.for_all (fun x -> x = d) rest
      | _ -> false
    in
    if odd_one_out then begin
      (* Only the *same* disagreement counts towards the streak:
         in-flight traffic makes floors (and so digests) drift between
         checks — a healthy node momentarily behind its peers sees a
         different disagreement each round, while a genuinely corrupt
         quiescent replica freezes on one. *)
      let theirs = match reports with d :: _ -> d | [] -> assert false in
      (match t.div_last with
      | Some (pm, pd) when pm = mine && pd = theirs -> t.div_streak <- t.div_streak + 1
      | Some _ | None ->
          t.div_streak <- 1;
          t.div_last <- Some (mine, theirs));
      if t.div_streak >= divergence_rounds then begin
        Log.warn (fun m ->
            m "node %d: state digest diverged from the rest of view %d — self-demoting" t.me
              v.View.id);
        Metrics.Counter.incr t.c_divergence;
        if Trace.enabled t.tracer then
          Trace.emit t.tracer (Trace.Divergence { node = t.me; view_id = v.View.id });
        t.div_streak <- 0;
        t.div_last <- None;
        t.heal_pending <- true;
        Protocol.trigger_view_change t.proto ~leave:[ t.me ] ();
        drain t
      end
    end
    else begin
      t.div_streak <- 0;
      t.div_last <- None
    end
  end
  else begin
    t.div_streak <- 0;
    t.div_last <- None
  end

let multicast t ?ann payload =
  if t.stopped then Error `Not_member
  else begin
    (* A sequence number must be covered by a {e durable} lease before
       it goes on the wire, or a restarted incarnation could reuse it.
       The lease is extended ahead of use so the extension normally
       rides the periodic group-commit sync; only a publisher that
       exhausts the durable headroom blocks on fsync here. *)
    (match t.wal with
    | Some w ->
        let sn = Protocol.next_sn t.proto in
        if sn >= t.durable_leased then begin
          if sn >= t.leased then begin
            t.leased <- sn + lease_chunk;
            Wal.append w (Wal.Lease { next_sn = t.leased })
          end;
          Wal.sync w;
          t.durable_leased <- t.leased
        end
        else if t.leased - sn <= lease_low_water then begin
          t.leased <- sn + lease_chunk;
          Wal.append w (Wal.Lease { next_sn = t.leased })
        end
    | None -> ());
    let result = Protocol.multicast t.proto ?ann payload in
    (match result with Ok d -> note_arrival t d | Error _ -> ());
    drain t;
    result
  end

(* Admission control. {!multicast} never blocks the caller — a slow
   peer's frames queue (and shed) in the mesh — so a publisher that
   outruns the group indefinitely would exhaust the mesh budget. A
   well-behaved application checks {!would_block} (or uses
   {!try_multicast}) and resumes on {!on_ready}. *)
let would_block t = Tcp_mesh.would_block t.mesh

let try_multicast t ?ann payload =
  if t.stopped then Error `Not_member
  else if would_block t then Error `Would_block
  else
    (multicast t ?ann payload
      : (_, [ `Blocked | `Not_member ]) result
      :> (_, [ `Blocked | `Not_member | `Would_block ]) result)

let on_ready t f = t.ready_callbacks <- f :: t.ready_callbacks

let shed_frames t = Tcp_mesh.shed_frames t.mesh

let slow_reports t = Metrics.Counter.value t.c_slow_reports

let pause_reads t = Tcp_mesh.pause_reads t.mesh

let resume_reads t = Tcp_mesh.resume_reads t.mesh

(* One tick of the slow-member escalation: stage transitions are
   driven by the time each link has spent continuously over the hard
   watermark (tracked by the mesh), and the admission-control ready
   callbacks fire here once the mesh drains back under its gates. *)
let check_slow_members t =
  if t.ready_callbacks <> [] && not (would_block t) then begin
    let cbs = List.rev t.ready_callbacks in
    t.ready_callbacks <- [];
    List.iter (fun f -> f ()) cbs
  end;
  let p = t.slow_member in
  List.iter
    (fun (st : Tcp_mesh.peer_stat) ->
      if st.Tcp_mesh.over_hard_s <= 0.0 then begin
        Hashtbl.remove t.reported_slow st.Tcp_mesh.peer;
        Hashtbl.remove t.evicting st.Tcp_mesh.peer
      end
      else begin
        if st.Tcp_mesh.over_hard_s >= p.report_after
           && not (Hashtbl.mem t.reported_slow st.Tcp_mesh.peer)
        then begin
          Hashtbl.replace t.reported_slow st.Tcp_mesh.peer ();
          Metrics.Counter.incr t.c_slow_reports;
          Log.warn (fun m ->
              m "node %d: peer %d over the hard watermark for %.1fs (%d bytes pending, %d shed)"
                t.me st.Tcp_mesh.peer st.Tcp_mesh.over_hard_s st.Tcp_mesh.pending
                st.Tcp_mesh.shed);
          if Trace.enabled t.tracer then
            Trace.emit t.tracer
              (Trace.Backpressure
                 {
                   node = t.me;
                   peer = st.Tcp_mesh.peer;
                   stage = "reported";
                   pending = st.Tcp_mesh.pending;
                 })
        end;
        match p.evict_after with
        | Some deadline when st.Tcp_mesh.over_hard_s >= deadline ->
            (* Hand the laggard to the ordinary suspicion machinery:
               the group agrees on a view without it, rather than one
               node unilaterally expelling it. Its heartbeats are
               muted while [evicting] so the (alive, just unreadable)
               peer cannot rescind the suspicion mid-view-change. *)
            if not (Hashtbl.mem t.evicting st.Tcp_mesh.peer) then
              Log.warn (fun m ->
                  m "node %d: escalating slow peer %d to suspicion after %.1fs over watermark"
                    t.me st.Tcp_mesh.peer st.Tcp_mesh.over_hard_s);
            Hashtbl.replace t.evicting st.Tcp_mesh.peer ();
            Heartbeat.force_suspect t.hb st.Tcp_mesh.peer
        | Some _ | None -> ()
      end)
    (Tcp_mesh.peer_stats t.mesh)

let deliver t =
  if t.stopped then None
  else
    match Protocol.deliver t.proto with
    | None -> None
    | Some (Types.Data d) as r ->
        (* Delivery-floor updates ride the periodic sync: losing the
           tail only re-widens the floor, never narrows it below a
           delivery that was made durable. *)
        (match t.wal with
        | Some w ->
            Wal.append w
              (Wal.Floor { sender = d.Types.id.Msg_id.sender; sn = d.Types.id.Msg_id.sn })
        | None -> ());
        (match Hashtbl.find_opt t.arrivals d.Types.id with
        | Some (_, at) ->
            Metrics.Histogram.observe t.delivery_latency (Loop.now t.loop -. at);
            Hashtbl.remove t.arrivals d.Types.id
        | None -> ());
        r
    | Some (Types.View_change v) as r ->
        (* Sweep timestamps of messages that can no longer be
           delivered (purged or stale entries of finished views). *)
        Hashtbl.filter_map_inplace
          (fun _ ((view_id, _) as entry) ->
            if view_id < v.View.id then None else Some entry)
          t.arrivals;
        r

let deliver_all t =
  let rec go acc = match deliver t with None -> List.rev acc | Some d -> go (d :: acc) in
  go []

let pending t = Protocol.to_deliver_length t.proto

let status_label t =
  if t.stopped then "stopped"
  else if Protocol.parked t.proto then "parked"
  else if Protocol.joining t.proto then "joining"
  else if Protocol.blocked t.proto then "blocked"
  else if Protocol.alive t.proto then "member"
  else "dead"

let wal_segment t = match t.wal with Some w -> Some (Wal.current_segment w) | None -> None

let status_json t =
  let b = Buffer.create 512 in
  let v = view t in
  Printf.bprintf b
    "{\"node\":%d,\"status\":\"%s\",\"uptime_s\":%.3f,\"view\":{\"id\":%d,\"members\":[%s]},"
    t.me (status_label t)
    (Loop.now t.loop -. t.started_at)
    v.View.id
    (String.concat "," (List.map string_of_int v.View.members));
  Printf.bprintf b "\"pending\":%d,\"purged\":%d,\"suspicions\":%d,\"next_sn\":%d,"
    (pending t) (purged t) (suspicions t)
    (Protocol.next_sn t.proto);
  Printf.bprintf b "\"floors\":{%s},"
    (String.concat ","
       (List.map
          (fun (sender, sn) -> Printf.sprintf "\"%d\":%d" sender sn)
          (List.sort compare (Protocol.floors t.proto))));
  (match wal_segment t with
  | Some seg -> Printf.bprintf b "\"wal\":{\"segment\":%d}," seg
  | None -> Printf.bprintf b "\"wal\":null,");
  let bp = Tcp_mesh.backpressure t.mesh in
  Printf.bprintf b
    "\"backpressure\":{\"soft\":%d,\"hard\":%d,\"budget\":%d,\"shed\":%b,\"total_pending\":%d,\"would_block\":%b,\"shed_frames\":%d,\"slow_reports\":%d},"
    bp.Tcp_mesh.soft bp.Tcp_mesh.hard bp.Tcp_mesh.budget bp.Tcp_mesh.shed
    (Tcp_mesh.total_pending t.mesh)
    (would_block t) (shed_frames t) (slow_reports t);
  Printf.bprintf b "\"bytes_out\":%d,\"bytes_in\":%d,\"peers\":[%s]}" (bytes_out t)
    (bytes_in t)
    (String.concat ","
       (List.map
          (fun (p : Tcp_mesh.peer_stat) ->
            (* The adaptive heartbeat timeout sits next to the flow
               state so an operator can tell a laggard (big pending,
               hard stage) from a lossy link (inflated timeout). *)
            let hb_timeout =
              try Heartbeat.timeout_of t.hb p.Tcp_mesh.peer with Invalid_argument _ -> 0.0
            in
            Printf.sprintf
              "{\"peer\":%d,\"up\":%b,\"pending\":%d,\"attempts\":%d,\"written_off\":%b,\"quarantined\":%b,\"hb_timeout_s\":%.3f,\"stage\":\"%s\",\"shed\":%d,\"over_hard_s\":%.3f,\"evicting\":%b}"
              p.Tcp_mesh.peer p.Tcp_mesh.up p.Tcp_mesh.pending p.Tcp_mesh.attempts
              p.Tcp_mesh.written_off p.Tcp_mesh.quarantined hb_timeout
              (Tcp_mesh.stage_name p.Tcp_mesh.stage)
              p.Tcp_mesh.shed p.Tcp_mesh.over_hard_s
              (Hashtbl.mem t.evicting p.Tcp_mesh.peer))
          (List.filter (fun (p : Tcp_mesh.peer_stat) -> p.Tcp_mesh.peer <> t.me)
             (Tcp_mesh.peer_stats t.mesh))));
  Buffer.contents b

let create loop ~me ~listen_fd ~peers ~payload_codec ?(config = default_config)
    ?(on_deliverable = fun () -> ()) ?data_dir ?state_transfer ?state_digest
    ?(on_synced = fun _ _ -> ()) () =
  let members = List.sort_uniq compare (List.map fst peers) in
  if not (List.mem me members) then invalid_arg "Node.create: me must be a peer";
  let engine = Engine.create ~seed:me () in
  let started_at = Loop.now loop in
  (* Trace events carry wall-clock timestamps in the runtime. *)
  Trace.set_clock config.tracer (fun () -> Loop.now loop);
  (match config.metrics with
  | None -> ()
  | Some reg -> Engine.attach_metrics engine reg);
  let wal, recovered =
    match data_dir with
    | None -> (None, None)
    | Some dir ->
        (* A foreign log is a deployment error the caller must surface
           (a clean refusal, not a stack trace from deep inside). *)
        let w, r = Wal.open_exn ~dir ~me ?metrics:config.metrics () in
        if Trace.enabled config.tracer then
          Trace.emit config.tracer
            (Trace.WalRecovery
               {
                 node = me;
                 records = r.Wal.records;
                 truncated = r.Wal.truncated;
                 skipped = r.Wal.skipped;
                 tainted = r.Wal.tainted;
               });
        Log.info (fun m ->
            m "node %d: wal in %s replayed %d records (%d bytes discarded, %d regions salvaged)%s%s"
              me dir r.Wal.records r.Wal.truncated r.Wal.skipped
              (if r.Wal.tainted then ", TAINTED" else "")
              (if r.Wal.fresh then ", fresh" else ""));
        (Some w, Some r)
  in
  (* A tainted salvage cannot prove the durable lease survived: some
     record past the last intact snapshot was destroyed, so an earlier
     incarnation may have put sequence numbers above the recovered
     ceiling on the wire. Over-provision by a full lease chunk (made
     durable immediately) and rely on the sponsor's floors at SYNC to
     push the counter above anything the group ever saw. *)
  let recovered_next_sn =
    match recovered with
    | Some r when r.Wal.tainted -> r.Wal.next_sn + lease_chunk
    | Some r -> r.Wal.next_sn
    | None -> 0
  in
  (match (wal, recovered) with
  | Some w, Some r when r.Wal.tainted ->
      Log.warn (fun m ->
          m "node %d: wal salvage could not prove the lease suffix intact; leasing %d..%d" me
            r.Wal.next_sn recovered_next_sn);
      Wal.append_durable w (Wal.Lease { next_sn = recovered_next_sn })
  | _ -> ());
  let node_label = [ ("node", string_of_int me) ] in
  let t_ref = ref None in
  let mesh =
    Tcp_mesh.create loop ~me ~listen_fd ~peers
      ~on_frame:(fun ~src frame ->
        match !t_ref with
        | None -> ()
        | Some t -> (
            (* [frame] is a borrowed slice into the mesh's inbound
               buffer; decoding happens entirely within the callback. *)
            match read_packet payload_codec (Codec.Reader.of_slice frame) with
            | packet -> on_packet t ~src packet
            | exception (Codec.Truncated | Codec.Malformed _) ->
                Log.warn (fun m -> m "node %d: malformed frame from %d" me src);
                (* Feed the transport's misbehavior score: repeated
                   garbage escalates to link reset and quarantine. *)
                Tcp_mesh.note_misbehavior t.mesh ~src ~reason:"bad-frame"))
      ~tracer:config.tracer ?metrics:config.metrics ~hostile:config.hostile
      ~backpressure:config.backpressure ~max_frame:config.max_frame
      ~flush_interval:config.flush_interval ()
  in
  let hb_ref = ref None in
  let suspects p =
    match !hb_ref with Some hb -> Heartbeat.suspects hb p | None -> false
  in
  let clock () = Loop.now loop in
  let proto =
    match recovered with
    | Some r when not r.Wal.fresh ->
        (* The previous incarnation's streams died with it, so it
           cannot silently resume membership: it restarts as a joiner
           carrying its durable floors and sequence lease, and re-enters
           through the JOIN/SYNC handshake. *)
        let recovery =
          {
            Protocol.view_id =
              (match r.Wal.view with Some v -> v.View.id | None -> -1);
            floors = r.Wal.floors;
            next_sn = recovered_next_sn;
          }
        in
        let p =
          Protocol.create_joiner ~me ~recovery ~semantic:config.semantic
            ~tracer:config.tracer ?metrics:config.metrics ~clock ~suspects ()
        in
        if r.Wal.tainted then Protocol.mark_lease_uncertain p;
        p
    | _ ->
        let initial_view = View.initial ~members in
        (* Anchor a brand-new log so even a crash before the first view
           change recovers a view. *)
        (match wal with
        | Some w -> Wal.append_durable w (Wal.Install initial_view)
        | None -> ());
        Protocol.create ~me ~initial_view ~semantic:config.semantic ~tracer:config.tracer
          ?metrics:config.metrics ~clock ~suspects ()
  in
  (match state_transfer with
  | Some f -> Protocol.set_state_transfer proto f
  | None -> ());
  let hb =
    Heartbeat.create engine config.heartbeat ~me ~peers:members
      ~send_heartbeat:(fun ~dst ->
        match !t_ref with
        | Some t ->
            send_packet t ~dst
              (Beat { view_id = (view t).View.id; digest = current_digest t })
        | None -> ())
  in
  hb_ref := Some hb;
  let t =
    {
      loop;
      me;
      engine;
      started_at;
      proto;
      wal;
      leased = recovered_next_sn;
      durable_leased = recovered_next_sn;
      pkt_writer = Codec.Writer.create ~initial_capacity:256 ();
      on_synced;
      mesh;
      payload_codec;
      hb;
      instances = Hashtbl.create 7;
      cons_stash = Hashtbl.create 7;
      on_deliverable;
      stopped = false;
      tracer = config.tracer;
      semantic = config.semantic;
      metrics = config.metrics;
      state_transfer_fn = state_transfer;
      peers_ids = members;
      park_timeout = config.park_timeout;
      blocked_obs = None;
      park_epoch = None;
      want_rejoin = false;
      peer_digests = Hashtbl.create 7;
      div_streak = 0;
      div_last = None;
      heal_pending = false;
      app_digest = state_digest;
      c_divergence =
        (match config.metrics with
        | None -> Metrics.Counter.detached ()
        | Some reg -> Metrics.counter reg ~labels:node_label "svs_divergence_detected_total");
      suspicions =
        (match config.metrics with
        | None -> Metrics.Counter.detached ()
        | Some reg -> Metrics.counter reg ~labels:node_label "rt_suspicions_total");
      c_slow_reports =
        (match config.metrics with
        | None -> Metrics.Counter.detached ()
        | Some reg -> Metrics.counter reg ~labels:node_label "rt_slow_member_reports_total");
      slow_member = config.slow_member;
      ready_callbacks = [];
      reported_slow = Hashtbl.create 7;
      evicting = Hashtbl.create 7;
      delivery_latency =
        (match config.metrics with
        | None -> Metrics.Histogram.detached ()
        | Some reg -> Metrics.histogram reg ~labels:node_label "rt_delivery_latency_seconds");
      merge_spans =
        (match config.metrics with
        | None -> Metrics.Histogram.detached ()
        | Some reg -> Metrics.histogram reg ~labels:node_label "rt_merge_seconds");
      arrivals = Hashtbl.create 64;
    }
  in
  t_ref := Some t;
  Heartbeat.on_suspect hb (fun p ->
      Metrics.Counter.incr t.suspicions;
      if Trace.enabled t.tracer then
        Trace.emit t.tracer (Trace.Suspect { node = t.me; suspect = p });
      on_suspicion t);
  Heartbeat.on_rescind hb (fun _ -> on_suspicion t);
  (* Advance the automata's virtual clock to wall time. *)
  ignore
    (Loop.every loop ~period:0.01 (fun () ->
         if not t.stopped then begin
           if t.want_rejoin then begin
             t.want_rejoin <- false;
             rejoin_via_probe t
           end;
           Engine.run ~until:(Loop.now loop -. t.started_at) t.engine;
           drain t
         end;
         not t.stopped)
      : Loop.timer);
  (* Primary-component survival: a member still blocked in the same
     view change when the deadline expires has lost the majority — it
     parks and probes its way back in. *)
  (match config.park_timeout with
  | None -> ()
  | Some deadline ->
      ignore
        (Loop.every loop ~period:(Float.max 0.05 (deadline /. 4.0)) (fun () ->
             if t.stopped then false
             else begin
               (if is_member t && Protocol.blocked t.proto then begin
                  let vid = (view t).View.id in
                  match t.blocked_obs with
                  | Some (v, t0) when v = vid ->
                      if Loop.now loop -. t0 >= deadline then park t
                  | Some _ | None -> t.blocked_obs <- Some (vid, Loop.now loop)
                end
                else t.blocked_obs <- None);
               true
             end)
          : Loop.timer));
  (match config.stability_period with
  | None -> ()
  | Some period ->
      ignore
        (Loop.every loop ~period (fun () ->
             if not t.stopped then begin
               Protocol.gossip_stability t.proto;
               drain t
             end;
             not t.stopped)
          : Loop.timer));
  (* Slow-member escalation and admission-control ready callbacks:
     stage transitions depend only on mesh state the tick reads, so a
     quarter-second cadence is plenty. *)
  ignore
    (Loop.every loop ~period:0.25 (fun () ->
         if not t.stopped then check_slow_members t;
         not t.stopped)
      : Loop.timer);
  (* Divergence self-healing: digests arrive on heartbeats; this timer
     only evaluates them (and drives a pending self-demotion home). *)
  (match config.divergence_period with
  | None -> ()
  | Some period ->
      ignore
        (Loop.every loop ~period (fun () ->
             if not t.stopped then check_divergence t;
             not t.stopped)
          : Loop.timer));
  if Protocol.joining proto then start_join_nag t;
  (match wal with
  | None -> ()
  | Some w ->
      (* Group-commit tick: one fsync covers every append since the
         last — floors and lease extensions ride it for free. *)
      ignore
        (Loop.every loop ~period:0.05 (fun () ->
             Wal.sync w;
             t.durable_leased <- t.leased;
             not t.stopped)
          : Loop.timer));
  t

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    Heartbeat.stop t.hb;
    Hashtbl.iter (fun _ inst -> Ct.stop inst) t.instances;
    Tcp_mesh.close t.mesh;
    match t.wal with Some w -> Wal.close w | None -> ()
  end
