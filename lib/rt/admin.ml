let src = Logs.Src.create "svs.admin" ~doc:"SVS admin endpoint"

module Log = (val Logs.src_log src : Logs.LOG)

type response = { status : int; content_type : string; body : string }

let text ?(status = 200) body = { status; content_type = "text/plain; charset=utf-8"; body }

let json ?(status = 200) body = { status; content_type = "application/json"; body }

let prometheus body =
  { status = 200; content_type = "text/plain; version=0.0.4; charset=utf-8"; body }

type t = {
  loop : Loop.t;
  fd : Unix.file_descr;
  port : int;
  routes : (string * (unit -> response)) list;
  mutable conns : Unix.file_descr list;
  mutable closed : bool;
}

let reason = function
  | 200 -> "OK"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Error"

let render { status; content_type; body } =
  Printf.sprintf
    "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status (reason status) content_type (String.length body) body

(* One request per connection (HTTP/1.0, Connection: close): read until
   the blank line that ends the headers, answer, close. The response
   write blocks at most [SO_SNDTIMEO]; an admin scrape is tiny and
   local, so this never stalls the loop in practice. *)
let handle_request t fd buf =
  let line = Buffer.contents buf in
  let request_line =
    match String.index_opt line '\r' with
    | Some i -> String.sub line 0 i
    | None -> ( match String.index_opt line '\n' with Some i -> String.sub line 0 i | None -> line)
  in
  let response =
    match String.split_on_char ' ' request_line with
    | meth :: target :: _ when meth = "GET" || meth = "HEAD" -> (
        let path =
          match String.index_opt target '?' with
          | Some i -> String.sub target 0 i
          | None -> target
        in
        match List.assoc_opt path t.routes with
        | Some handler -> (
            match handler () with
            | resp -> resp
            | exception exn ->
                Log.warn (fun m -> m "admin handler %s raised: %s" path (Printexc.to_string exn));
                text ~status:503 (Printexc.to_string exn ^ "\n"))
        | None ->
            let known = String.concat " " (List.map fst t.routes) in
            text ~status:404 (Printf.sprintf "unknown path (try: %s)\n" known))
    | _ -> text ~status:405 "admin endpoint speaks GET only\n"
  in
  (try
     let payload = render response in
     let n = String.length payload in
     let rec write_all off =
       if off < n then
         let w = Unix.write_substring fd payload off (n - off) in
         if w > 0 then write_all (off + w)
     in
     write_all 0
   with Unix.Unix_error (_, _, _) -> ());
  Loop.remove_fd t.loop fd;
  (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
  t.conns <- List.filter (fun c -> c <> fd) t.conns

let on_conn_readable t fd buf () =
  let chunk = Bytes.create 2048 in
  match Unix.read fd chunk 0 (Bytes.length chunk) with
  | 0 -> handle_request t fd buf
  | n ->
      Buffer.add_subbytes buf chunk 0 n;
      if Buffer.length buf > 16 * 1024 then handle_request t fd buf (* header bomb: answer what we have *)
      else
        let s = Buffer.contents buf in
        let done_ =
          let rec find i =
            if i + 1 >= String.length s then false
            else if s.[i] = '\n' && (s.[i + 1] = '\n' || (s.[i + 1] = '\r' && i + 2 < String.length s && s.[i + 2] = '\n'))
            then true
            else find (i + 1)
          in
          find 0
        in
        if done_ then handle_request t fd buf
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) ->
      Loop.remove_fd t.loop fd;
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      t.conns <- List.filter (fun c -> c <> fd) t.conns

let on_accept t () =
  match Unix.accept t.fd with
  | fd, _ ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0 with Unix.Unix_error (_, _, _) -> ());
      t.conns <- fd :: t.conns;
      Loop.on_readable t.loop fd (on_conn_readable t fd (Buffer.create 256))
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> ()

let create loop ~addr routes =
  let fd, bound = Tcp_mesh.listener addr in
  Unix.set_nonblock fd;
  let port = match bound with Unix.ADDR_INET (_, p) -> p | _ -> 0 in
  let t = { loop; fd; port; routes; conns = []; closed = false } in
  Loop.on_readable loop fd (fun () -> on_accept t ());
  Log.info (fun m -> m "admin endpoint on port %d (%s)" port (String.concat " " (List.map fst routes)));
  t

let port t = t.port

let close t =
  if not t.closed then begin
    t.closed <- true;
    Loop.remove_fd t.loop t.fd;
    (try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ());
    List.iter
      (fun fd ->
        Loop.remove_fd t.loop fd;
        try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
      t.conns;
    t.conns <- []
  end
