(** Growable byte queue for zero-copy I/O.

    An [Iobuf.t] owns a single backing [Bytes.t] with a consumed
    prefix, a live region, and free tail space. Producers append at
    the tail ({!add_string}, {!add_writer}, …); consumers drain from
    the head ({!consume}, {!write_to_fd}). Space is reclaimed by
    sliding the live region back to offset zero before growing, so
    steady-state traffic recycles one allocation.

    Used as the per-peer outbound queue in {!Tcp_mesh} and as the
    group-commit tail in {!Wal} — both write straight from the backing
    bytes with one [Unix.write], no [Buffer.contents] copy. *)

type t

val create : ?capacity:int -> ?shrink:int -> unit -> t
(** [shrink] (default 1 MiB, clamped to at least [capacity]) is the
    release threshold: when the buffer drains empty with a backing
    larger than this, the backing is replaced by a fresh
    [capacity]-sized one, so a one-time burst doesn't pin its peak
    memory forever. Borrowed slices keep the old backing alive. *)

val length : t -> int
(** Bytes currently queued (live region size). *)

val is_empty : t -> bool

val capacity : t -> int
(** Size of the backing buffer (diagnostic). *)

val clear : t -> unit

val reserve : t -> int -> unit
(** Ensure the free tail can hold [n] more bytes (compacts or grows). *)

val unsafe_bytes : t -> Bytes.t
(** The backing buffer; valid only until the next mutating call. *)

val start : t -> int
(** Offset of the live region inside {!unsafe_bytes}. *)

val contents_slice : t -> Svs_codec.Codec.Slice.t
(** Borrowed view of the live region; valid until the next mutation. *)

val add_char : t -> char -> unit

val add_string : t -> string -> unit

val add_subbytes : t -> Bytes.t -> int -> int -> unit
(** [add_subbytes t b off len]. *)

val add_buffer : t -> Buffer.t -> unit
(** Append a [Buffer.t]'s bytes without an intermediate string. *)

val add_be32 : t -> int -> unit
(** Append a big-endian u32 (frame length prefix). *)

val add_writer : t -> Svs_codec.Codec.Writer.t -> unit
(** Append a writer's bytes without an intermediate string. *)

val prepend_string : t -> string -> unit
(** Insert bytes {e before} the live region (e.g. a hello frame ahead
    of already-queued traffic). *)

val consume : t -> int -> unit
(** Drop [n] bytes from the head.
    @raise Invalid_argument when [n] exceeds {!length}. *)

val write_to_fd : t -> Unix.file_descr -> int
(** One [Unix.write] from the head of the live region; consumes and
    returns what the kernel accepted. Raises like [Unix.write]. *)

val read_from_fd : t -> Unix.file_descr -> int
(** One [Unix.read] into the free tail (reserving 64 KiB); returns the
    count read, 0 at EOF. Raises like [Unix.read]. *)
