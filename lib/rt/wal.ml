module Codec = Svs_codec.Codec
module W = Codec.Writer
module R = Codec.Reader
module View = Svs_core.View
module Wire_codec = Svs_core.Wire_codec
module Metrics = Svs_telemetry.Metrics

type record =
  | Snapshot of { view : View.t option; floors : (int * int) list; next_sn : int }
  | Install of View.t
  | Floor of { sender : int; sn : int }
  | Lease of { next_sn : int }

type recovery = {
  view : View.t option;
  floors : (int * int) list;
  next_sn : int;
  records : int;
  truncated : int;
  skipped : int;
  tainted : bool;
  fresh : bool;
}

type open_error = Foreign_log of { dir : string; owner : int; me : int }

exception Open_error of open_error

let open_error_message (Foreign_log { dir; owner; me }) =
  Printf.sprintf "Wal: log in %s belongs to node %d, not node %d" dir owner me

(* In-memory mirror of what a full replay of the log would yield; kept
   current on every append so a rotation can open the next segment
   with one Snapshot instead of re-reading the old one. *)
type state = {
  mutable view : View.t option;
  floors : (int, int) Hashtbl.t;
  mutable next_sn : int;
}

type t = {
  dir : string;
  me : int;
  segment_limit : int;
  state : state;
  mutable fd : Unix.file_descr;
  mutable seg_index : int;
  mutable seg_bytes : int;
  mutable dirty : bool;
  mutable closed : bool;
  tail : Iobuf.t; (* group-commit tail: framed records not yet written *)
  mutable scratch : Bytes.t; (* reusable encode buffer (grows to fit) *)
  scratch_w : W.t; (* reusable record writer *)
  c_appends : Metrics.Counter.t;
  c_syncs : Metrics.Counter.t;
  c_rotations : Metrics.Counter.t;
  c_corrupt : Metrics.Counter.t;
}

(* Once this much is queued in memory, hand it to the kernel (still
   without fsync) so the tail never grows unboundedly between syncs. *)
let tail_watermark = 256 * 1024

(* --- CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) --- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8)) s;
  !c lxor 0xFFFFFFFF

let crc32_sub b off len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* --- Framing: [u32 length][u32 crc32(payload)][payload], big endian --- *)

let frame_header_bytes = 8

let get_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

(* --- Record encoding --- *)

(* Tag 0 is the per-segment identity stamp (written on every segment
   open, checked on recovery), not part of the public record type. *)
let encode_meta w me =
  W.clear w;
  W.uint8 w 0;
  W.varint w me

let encode_record w r =
  W.clear w;
  (match r with
  | Snapshot { view; floors; next_sn } ->
      W.uint8 w 1;
      W.option w Wire_codec.write_view view;
      W.list w
        (fun w (sender, sn) ->
          W.varint w sender;
          W.varint w sn)
        floors;
      W.varint w next_sn
  | Install v ->
      W.uint8 w 2;
      Wire_codec.write_view w v
  | Floor { sender; sn } ->
      W.uint8 w 3;
      W.varint w sender;
      W.varint w sn
  | Lease { next_sn } ->
      W.uint8 w 4;
      W.varint w next_sn)

(* Every constructor is monotonic under [apply], so replaying
   duplicated or reordered records (a salvage scan can resurrect both)
   can never roll state backwards: views only move to higher ids,
   floors and the lease ceiling only ratchet up, and a Snapshot merges
   rather than resets. For a well-formed log this coincides with the
   plain replacement semantics, because rotation writes the Snapshot
   first into an otherwise-empty segment. *)
let apply state = function
  | Snapshot { view; floors; next_sn } ->
      (match (view, state.view) with
      | Some v, Some cur when v.View.id < cur.View.id -> ()
      | Some v, _ -> state.view <- Some v
      | None, _ -> ());
      List.iter
        (fun (sender, sn) ->
          let cur = Option.value ~default:(-1) (Hashtbl.find_opt state.floors sender) in
          if sn > cur then Hashtbl.replace state.floors sender sn)
        floors;
      if next_sn > state.next_sn then state.next_sn <- next_sn
  | Install v -> (
      match state.view with
      | Some cur when v.View.id < cur.View.id -> ()
      | _ -> state.view <- Some v)
  | Floor { sender; sn } ->
      let cur = Option.value ~default:(-1) (Hashtbl.find_opt state.floors sender) in
      if sn > cur then Hashtbl.replace state.floors sender sn
  | Lease { next_sn } -> if next_sn > state.next_sn then state.next_sn <- next_sn

(* Decode one frame payload into [state]. [owner] records the first
   identity stamp seen (checked against [me] once replay finishes).
   Returns whether the record was a [Snapshot] — a valid snapshot
   replayed after a corrupt region proves the state suffix intact. *)
let decode_and_apply ~owner state payload =
  let r = R.of_string payload in
  match R.uint8 r with
  | 0 ->
      let me' = R.varint r in
      if !owner = None then owner := Some me';
      false
  | 1 ->
      let view = R.option r Wire_codec.read_view in
      let floors =
        R.list r (fun r ->
            let sender = R.varint r in
            let sn = R.varint r in
            (sender, sn))
      in
      let next_sn = R.varint r in
      apply state (Snapshot { view; floors; next_sn });
      true
  | 2 ->
      apply state (Install (Wire_codec.read_view r));
      false
  | 3 ->
      let sender = R.varint r in
      let sn = R.varint r in
      apply state (Floor { sender; sn });
      false
  | 4 ->
      apply state (Lease { next_sn = R.varint r });
      false
  | n -> raise (Codec.Malformed (Printf.sprintf "wal record tag %d" n))

(* --- Segment files --- *)

let seg_name i = Printf.sprintf "wal-%06d.log" i

let seg_path dir i = Filename.concat dir (seg_name i)

let list_segments dir =
  Array.to_list (Sys.readdir dir)
  |> List.filter_map (fun name ->
         if
           String.length name = 14
           && String.sub name 0 4 = "wal-"
           && Filename.check_suffix name ".log"
         then int_of_string_opt (String.sub name 4 6)
         else None)
  |> List.sort compare

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let truncate_file path n =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () -> Unix.ftruncate fd n)

(* A frame is valid at [off] iff its header is plausible (length fits
   the remaining bytes) and the payload checksum matches. *)
let frame_at content off =
  let len = String.length content in
  if off + frame_header_bytes > len then None
  else
    let n = get_be32 content off in
    let crc = get_be32 content (off + 4) in
    if off + frame_header_bytes + n > len then None
    else
      let payload = String.sub content (off + frame_header_bytes) n in
      if crc32 payload <> crc then None else Some payload

(* Legacy replay (salvage off): apply every frame whose length fits and
   whose CRC matches, stop at the first that does not. Returns the
   number of frames applied and the byte offset of the valid prefix —
   everything past it is chopped off. *)
let replay content ~on_frame =
  let len = String.length content in
  let rec go off count =
    if off + frame_header_bytes > len then (count, off)
    else begin
      let n = get_be32 content off in
      let crc = get_be32 content (off + 4) in
      if off + frame_header_bytes + n > len then (count, off)
      else begin
        let payload = String.sub content (off + frame_header_bytes) n in
        if crc32 payload <> crc then (count, off)
        else
          match on_frame payload with
          | (_ : bool) -> go (off + frame_header_bytes + n) (count + 1)
          | exception (Codec.Truncated | Codec.Malformed _ | Invalid_argument _) ->
              (count, off)
      end
    end
  in
  go 0 0

(* Quarantine damaged byte ranges to the segment's [.corrupt] sidecar:
   the bytes stay available for postmortem, the log itself is healed. *)
let quarantine path content regions =
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 (path ^ ".corrupt") in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun (a, b) ->
          output_string oc (Printf.sprintf "== corrupt bytes [%d,%d) ==\n" a b);
          output_string oc (String.sub content a (b - a));
          output_char oc '\n')
        regions)

(* --- Lifecycle --- *)

(* Hand the in-memory tail to the kernel (no fsync). On a regular
   file a write takes everything in one call; loop for safety. *)
let flush t =
  while not (Iobuf.is_empty t.tail) do
    ignore (Iobuf.write_to_fd t.tail t.fd : int)
  done

(* Frame whatever is in [t.scratch_w] and append it to the tail:
   encode once into the reusable scratch bytes (for the CRC pass),
   then header + payload go straight into the tail queue. *)
let append_scratch t =
  let n = W.length t.scratch_w in
  if Bytes.length t.scratch < n then begin
    let cap = ref (max 256 (Bytes.length t.scratch)) in
    while !cap < n do
      cap := !cap * 2
    done;
    t.scratch <- Bytes.create !cap
  end;
  W.blit_into t.scratch_w t.scratch 0;
  Iobuf.add_be32 t.tail n;
  Iobuf.add_be32 t.tail (crc32_sub t.scratch 0 n);
  Iobuf.add_subbytes t.tail t.scratch 0 n;
  t.seg_bytes <- t.seg_bytes + frame_header_bytes + n;
  t.dirty <- true;
  if Iobuf.length t.tail >= tail_watermark then flush t

let pending_bytes t = Iobuf.length t.tail

let sync t =
  if t.dirty && not t.closed then begin
    flush t;
    Unix.fsync t.fd;
    t.dirty <- false;
    Metrics.Counter.incr t.c_syncs
  end

let snapshot_of_state state =
  Snapshot
    {
      view = state.view;
      floors = Hashtbl.fold (fun sender sn acc -> (sender, sn) :: acc) state.floors [];
      next_sn = state.next_sn;
    }

let open_ ~dir ~me ?(segment_limit = 4 * 1024 * 1024) ?(salvage = true) ?metrics () =
  mkdir_p dir;
  let state = { view = None; floors = Hashtbl.create 16; next_sn = 0 } in
  let owner = ref None in
  let segs = list_segments dir in
  let fresh = segs = [] in
  let records = ref 0 in
  let truncated = ref 0 in
  let skipped = ref 0 in
  (* Set at every discarded region, cleared by a later valid Snapshot:
     when still set at the end, a durable Lease (or floor) may have
     been destroyed with nothing after it to supersede it — the caller
     must not trust the recovered lease ceiling. A plain torn tail on
     the last segment does not taint: un-synced bytes were never
     relied upon (the group-commit contract). *)
  let unproven = ref false in
  let rewrite = ref false in
  let legacy_corrupt = ref false in
  let on_frame payload =
    let is_snapshot = decode_and_apply ~owner state payload in
    if is_snapshot then unproven := false;
    is_snapshot
  in
  let nsegs = List.length segs in
  List.iteri
    (fun k i ->
      let is_last = k = nsegs - 1 in
      let path = seg_path dir i in
      if not salvage then begin
        (* Legacy recovery: truncate at the first bad frame, discard
           every later segment (they order after untrusted bytes). *)
        if !legacy_corrupt then begin
          truncated := !truncated + (Unix.stat path).Unix.st_size;
          Sys.remove path
        end
        else begin
          let content = read_file path in
          let count, valid = replay content ~on_frame in
          records := !records + count;
          if valid < String.length content then begin
            truncated := !truncated + (String.length content - valid);
            legacy_corrupt := true;
            truncate_file path valid
          end
        end
      end
      else begin
        (* Salvage scan: apply every valid frame, resync past corrupt
           regions by hunting for the next plausible header, quarantine
           what was skipped. *)
        let content = read_file path in
        let len = String.length content in
        let regions = ref [] in
        (* First offset >= off holding a valid frame, if any. *)
        let rec next_valid off =
          if off + frame_header_bytes > len then None
          else if frame_at content off <> None then Some off
          else next_valid (off + 1)
        in
        let tail_garbage = ref None in
        let rec go off =
          if off < len then
            match frame_at content off with
            | Some payload ->
                let stop = off + frame_header_bytes + String.length payload in
                (match on_frame payload with
                | (_ : bool) -> incr records
                | exception (Codec.Truncated | Codec.Malformed _ | Invalid_argument _) ->
                    (* CRC-valid bytes that do not decode: skip the
                       whole frame, keep scanning after it. *)
                    regions := (off, stop) :: !regions;
                    unproven := true);
                go stop
            | None -> (
                match next_valid (off + 1) with
                | Some q ->
                    regions := (off, q) :: !regions;
                    unproven := true;
                    go q
                | None -> tail_garbage := Some off)
        in
        go 0;
        let regions = List.rev !regions in
        if regions <> [] then begin
          skipped := !skipped + List.length regions;
          truncated :=
            !truncated + List.fold_left (fun acc (a, b) -> acc + (b - a)) 0 regions;
          quarantine path content regions;
          rewrite := true
        end;
        match !tail_garbage with
        | None -> ()
        | Some a ->
            truncated := !truncated + (len - a);
            if is_last then begin
              (* A torn tail: the ordinary crash leftover. Chop it so
                 the segment stays appendable. *)
              if not !rewrite then truncate_file path a
            end
            else begin
              (* Garbage mid-log with later segments after it: discard
                 it like an interior region. *)
              incr skipped;
              unproven := true;
              quarantine path content [ (a, len) ];
              if not !rewrite then truncate_file path a
            end
      end)
    segs;
  match !owner with
  | Some o when o <> me -> Error (Foreign_log { dir; owner = o; me })
  | _ ->
      let labels = [ ("node", string_of_int me) ] in
      let counter name =
        match metrics with
        | None -> Metrics.Counter.detached ()
        | Some reg -> Metrics.counter reg ~labels name
      in
      let seg_index, seg_bytes, fd =
        if !rewrite then begin
          (* Interior corruption: the surviving bytes cannot be made
             replay-clean in place, so rewrite the log — a fresh
             segment seeded with the salvaged state, then the damaged
             segments go (their corrupt bytes live on in the
             sidecars). *)
          let next = match List.rev segs with last :: _ -> last + 1 | [] -> 0 in
          let fd =
            Unix.openfile (seg_path dir next)
              [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
              0o644
          in
          (next, 0, fd)
        end
        else
          (* Legacy recovery may have deleted segments past the first
             corrupt one — re-list to find the last survivor. *)
          match List.rev (if !legacy_corrupt then list_segments dir else segs) with
          | last :: _ ->
              let path = seg_path dir last in
              let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
              (last, (Unix.fstat fd).Unix.st_size, fd)
          | [] ->
              let path = seg_path dir 0 in
              let fd =
                Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
              in
              (0, 0, fd)
      in
      let t =
        {
          dir;
          me;
          segment_limit;
          state;
          fd;
          seg_index;
          seg_bytes;
          dirty = false;
          closed = false;
          tail = Iobuf.create ~capacity:4096 ();
          scratch = Bytes.create 256;
          scratch_w = W.create ();
          c_appends = counter "wal_appends_total";
          c_syncs = counter "wal_syncs_total";
          c_rotations = counter "wal_rotations_total";
          c_corrupt = counter "wal_corrupt_regions_total";
        }
      in
      if !skipped > 0 then Metrics.Counter.add t.c_corrupt !skipped;
      (* Stamp identity on a brand-new segment (an existing one already
         carries its stamp); a rewritten log also gets the salvaged
         state as its opening snapshot, then the damaged segments are
         removed. *)
      if seg_bytes = 0 then begin
        encode_meta t.scratch_w me;
        append_scratch t;
        if !rewrite then begin
          encode_record t.scratch_w (snapshot_of_state state);
          append_scratch t
        end;
        sync t
      end;
      if !rewrite then
        List.iter
          (fun i ->
            let path = seg_path dir i in
            if Sys.file_exists path then Sys.remove path)
          segs;
      let recovery =
        {
          view = state.view;
          floors = Hashtbl.fold (fun sender sn acc -> (sender, sn) :: acc) state.floors [];
          next_sn = state.next_sn;
          records = !records;
          truncated = !truncated;
          skipped = !skipped;
          tainted = !unproven;
          fresh;
        }
      in
      Ok (t, recovery)

let open_exn ~dir ~me ?segment_limit ?salvage ?metrics () =
  match open_ ~dir ~me ?segment_limit ?salvage ?metrics () with
  | Ok v -> v
  | Error e -> raise (Open_error e)

(* Open the next segment, seeded with the identity stamp and a
   snapshot of the current state; once the new segment is durable, the
   older ones are redundant and removed. *)
let rotate t =
  (* The tail belongs to the old segment: make it durable there before
     switching fds. *)
  sync t;
  (try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ());
  let old = t.seg_index in
  t.seg_index <- t.seg_index + 1;
  t.fd <-
    Unix.openfile (seg_path t.dir t.seg_index)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644;
  t.seg_bytes <- 0;
  encode_meta t.scratch_w t.me;
  append_scratch t;
  encode_record t.scratch_w (snapshot_of_state t.state);
  append_scratch t;
  sync t;
  for i = 0 to old do
    let path = seg_path t.dir i in
    if Sys.file_exists path then Sys.remove path
  done;
  Metrics.Counter.incr t.c_rotations

let append t record =
  if t.closed then invalid_arg "Wal.append: closed";
  apply t.state record;
  encode_record t.scratch_w record;
  append_scratch t;
  Metrics.Counter.incr t.c_appends;
  if t.seg_bytes >= t.segment_limit then rotate t

let append_durable t record =
  append t record;
  sync t

let current_segment t = t.seg_index

let close t =
  if not t.closed then begin
    sync t;
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
  end

(* Crash simulation for tests: drop the in-memory tail on the floor
   and close the fd without flushing or fsyncing — what a process
   death between an append and the commit tick leaves on disk. *)
let abandon t =
  if not t.closed then begin
    Iobuf.clear t.tail;
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
  end
