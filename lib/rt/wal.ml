module Codec = Svs_codec.Codec
module W = Codec.Writer
module R = Codec.Reader
module View = Svs_core.View
module Wire_codec = Svs_core.Wire_codec
module Metrics = Svs_telemetry.Metrics

type record =
  | Snapshot of { view : View.t option; floors : (int * int) list; next_sn : int }
  | Install of View.t
  | Floor of { sender : int; sn : int }
  | Lease of { next_sn : int }

type recovery = {
  view : View.t option;
  floors : (int * int) list;
  next_sn : int;
  records : int;
  truncated : int;
  fresh : bool;
}

(* In-memory mirror of what a full replay of the log would yield; kept
   current on every append so a rotation can open the next segment
   with one Snapshot instead of re-reading the old one. *)
type state = {
  mutable view : View.t option;
  floors : (int, int) Hashtbl.t;
  mutable next_sn : int;
}

type t = {
  dir : string;
  me : int;
  segment_limit : int;
  state : state;
  mutable fd : Unix.file_descr;
  mutable seg_index : int;
  mutable seg_bytes : int;
  mutable dirty : bool;
  mutable closed : bool;
  tail : Iobuf.t; (* group-commit tail: framed records not yet written *)
  mutable scratch : Bytes.t; (* reusable encode buffer (grows to fit) *)
  scratch_w : W.t; (* reusable record writer *)
  c_appends : Metrics.Counter.t;
  c_syncs : Metrics.Counter.t;
  c_rotations : Metrics.Counter.t;
}

(* Once this much is queued in memory, hand it to the kernel (still
   without fsync) so the tail never grows unboundedly between syncs. *)
let tail_watermark = 256 * 1024

(* --- CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) --- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8)) s;
  !c lxor 0xFFFFFFFF

let crc32_sub b off len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* --- Framing: [u32 length][u32 crc32(payload)][payload], big endian --- *)

let frame_header_bytes = 8

let get_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

(* --- Record encoding --- *)

(* Tag 0 is the per-segment identity stamp (written on every segment
   open, checked on recovery), not part of the public record type. *)
let encode_meta w me =
  W.clear w;
  W.uint8 w 0;
  W.varint w me

let encode_record w r =
  W.clear w;
  (match r with
  | Snapshot { view; floors; next_sn } ->
      W.uint8 w 1;
      W.option w Wire_codec.write_view view;
      W.list w
        (fun w (sender, sn) ->
          W.varint w sender;
          W.varint w sn)
        floors;
      W.varint w next_sn
  | Install v ->
      W.uint8 w 2;
      Wire_codec.write_view w v
  | Floor { sender; sn } ->
      W.uint8 w 3;
      W.varint w sender;
      W.varint w sn
  | Lease { next_sn } ->
      W.uint8 w 4;
      W.varint w next_sn)

let apply state = function
  | Snapshot { view; floors; next_sn } ->
      state.view <- view;
      Hashtbl.reset state.floors;
      List.iter (fun (sender, sn) -> Hashtbl.replace state.floors sender sn) floors;
      state.next_sn <- next_sn
  | Install v -> state.view <- Some v
  | Floor { sender; sn } ->
      let cur = Option.value ~default:(-1) (Hashtbl.find_opt state.floors sender) in
      if sn > cur then Hashtbl.replace state.floors sender sn
  | Lease { next_sn } -> if next_sn > state.next_sn then state.next_sn <- next_sn

let decode_and_apply ~dir ~me state payload =
  let r = R.of_string payload in
  match R.uint8 r with
  | 0 ->
      let me' = R.varint r in
      if me' <> me then
        failwith (Printf.sprintf "Wal: log in %s belongs to node %d, not node %d" dir me' me)
  | 1 ->
      let view = R.option r Wire_codec.read_view in
      let floors =
        R.list r (fun r ->
            let sender = R.varint r in
            let sn = R.varint r in
            (sender, sn))
      in
      let next_sn = R.varint r in
      apply state (Snapshot { view; floors; next_sn })
  | 2 -> apply state (Install (Wire_codec.read_view r))
  | 3 ->
      let sender = R.varint r in
      let sn = R.varint r in
      apply state (Floor { sender; sn })
  | 4 -> apply state (Lease { next_sn = R.varint r })
  | n -> raise (Codec.Malformed (Printf.sprintf "wal record tag %d" n))

(* --- Segment files --- *)

let seg_name i = Printf.sprintf "wal-%06d.log" i

let seg_path dir i = Filename.concat dir (seg_name i)

let list_segments dir =
  Array.to_list (Sys.readdir dir)
  |> List.filter_map (fun name ->
         if
           String.length name = 14
           && String.sub name 0 4 = "wal-"
           && Filename.check_suffix name ".log"
         then int_of_string_opt (String.sub name 4 6)
         else None)
  |> List.sort compare

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Replay one segment's bytes: apply every frame whose length fits and
   whose CRC matches, stop at the first that does not. Returns the
   number of frames applied and the byte offset of the valid prefix —
   everything past it is a torn write or corruption to chop off. *)
let replay content ~on_frame =
  let len = String.length content in
  let rec go off count =
    if off + frame_header_bytes > len then (count, off)
    else begin
      let n = get_be32 content off in
      let crc = get_be32 content (off + 4) in
      if off + frame_header_bytes + n > len then (count, off)
      else begin
        let payload = String.sub content (off + frame_header_bytes) n in
        if crc32 payload <> crc then (count, off)
        else
          match on_frame payload with
          | () -> go (off + frame_header_bytes + n) (count + 1)
          | exception (Codec.Truncated | Codec.Malformed _) -> (count, off)
      end
    end
  in
  go 0 0

(* --- Lifecycle --- *)

(* Hand the in-memory tail to the kernel (no fsync). On a regular
   file a write takes everything in one call; loop for safety. *)
let flush t =
  while not (Iobuf.is_empty t.tail) do
    ignore (Iobuf.write_to_fd t.tail t.fd : int)
  done

(* Frame whatever is in [t.scratch_w] and append it to the tail:
   encode once into the reusable scratch bytes (for the CRC pass),
   then header + payload go straight into the tail queue. *)
let append_scratch t =
  let n = W.length t.scratch_w in
  if Bytes.length t.scratch < n then begin
    let cap = ref (max 256 (Bytes.length t.scratch)) in
    while !cap < n do
      cap := !cap * 2
    done;
    t.scratch <- Bytes.create !cap
  end;
  W.blit_into t.scratch_w t.scratch 0;
  Iobuf.add_be32 t.tail n;
  Iobuf.add_be32 t.tail (crc32_sub t.scratch 0 n);
  Iobuf.add_subbytes t.tail t.scratch 0 n;
  t.seg_bytes <- t.seg_bytes + frame_header_bytes + n;
  t.dirty <- true;
  if Iobuf.length t.tail >= tail_watermark then flush t

let pending_bytes t = Iobuf.length t.tail

let sync t =
  if t.dirty && not t.closed then begin
    flush t;
    Unix.fsync t.fd;
    t.dirty <- false;
    Metrics.Counter.incr t.c_syncs
  end

let open_ ~dir ~me ?(segment_limit = 4 * 1024 * 1024) ?metrics () =
  mkdir_p dir;
  let state = { view = None; floors = Hashtbl.create 16; next_sn = 0 } in
  let segs = list_segments dir in
  let fresh = segs = [] in
  let records = ref 0 in
  let truncated = ref 0 in
  let corrupt = ref false in
  let survivors = ref [] in
  List.iter
    (fun i ->
      let path = seg_path dir i in
      if !corrupt then begin
        (* Segments past a corrupt point are unreachable garbage: a
           replay can never trust anything ordered after bytes it had
           to throw away. *)
        truncated := !truncated + (Unix.stat path).Unix.st_size;
        Sys.remove path
      end
      else begin
        let content = read_file path in
        let count, valid =
          replay content ~on_frame:(decode_and_apply ~dir ~me state)
        in
        records := !records + count;
        if valid < String.length content then begin
          truncated := !truncated + (String.length content - valid);
          corrupt := true;
          let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
            (fun () -> Unix.ftruncate fd valid)
        end;
        survivors := i :: !survivors
      end)
    segs;
  let seg_index, seg_bytes, fd =
    match !survivors with
    | last :: _ ->
        let path = seg_path dir last in
        let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
        (last, (Unix.fstat fd).Unix.st_size, fd)
    | [] ->
        let path = seg_path dir 0 in
        let fd =
          Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
        in
        (0, 0, fd)
  in
  let labels = [ ("node", string_of_int me) ] in
  let counter name =
    match metrics with
    | None -> Metrics.Counter.detached ()
    | Some reg -> Metrics.counter reg ~labels name
  in
  let t =
    {
      dir;
      me;
      segment_limit;
      state;
      fd;
      seg_index;
      seg_bytes;
      dirty = false;
      closed = false;
      tail = Iobuf.create ~capacity:4096 ();
      scratch = Bytes.create 256;
      scratch_w = W.create ();
      c_appends = counter "wal_appends_total";
      c_syncs = counter "wal_syncs_total";
      c_rotations = counter "wal_rotations_total";
    }
  in
  (* Stamp identity on a brand-new segment (an existing one already
     carries its stamp). *)
  if seg_bytes = 0 then begin
    encode_meta t.scratch_w me;
    append_scratch t;
    sync t
  end;
  let recovery =
    {
      view = state.view;
      floors = Hashtbl.fold (fun sender sn acc -> (sender, sn) :: acc) state.floors [];
      next_sn = state.next_sn;
      records = !records;
      truncated = !truncated;
      fresh;
    }
  in
  (t, recovery)

let snapshot_of_state state =
  Snapshot
    {
      view = state.view;
      floors = Hashtbl.fold (fun sender sn acc -> (sender, sn) :: acc) state.floors [];
      next_sn = state.next_sn;
    }

(* Open the next segment, seeded with the identity stamp and a
   snapshot of the current state; once the new segment is durable, the
   older ones are redundant and removed. *)
let rotate t =
  (* The tail belongs to the old segment: make it durable there before
     switching fds. *)
  sync t;
  (try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ());
  let old = t.seg_index in
  t.seg_index <- t.seg_index + 1;
  t.fd <-
    Unix.openfile (seg_path t.dir t.seg_index)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644;
  t.seg_bytes <- 0;
  encode_meta t.scratch_w t.me;
  append_scratch t;
  encode_record t.scratch_w (snapshot_of_state t.state);
  append_scratch t;
  sync t;
  for i = 0 to old do
    let path = seg_path t.dir i in
    if Sys.file_exists path then Sys.remove path
  done;
  Metrics.Counter.incr t.c_rotations

let append t record =
  if t.closed then invalid_arg "Wal.append: closed";
  apply t.state record;
  encode_record t.scratch_w record;
  append_scratch t;
  Metrics.Counter.incr t.c_appends;
  if t.seg_bytes >= t.segment_limit then rotate t

let append_durable t record =
  append t record;
  sync t

let current_segment t = t.seg_index

let close t =
  if not t.closed then begin
    sync t;
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
  end

(* Crash simulation for tests: drop the in-memory tail on the floor
   and close the fd without flushing or fsyncing — what a process
   death between an append and the commit tick leaves on disk. *)
let abandon t =
  if not t.closed then begin
    Iobuf.clear t.tail;
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
  end
