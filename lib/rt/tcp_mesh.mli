(** Full-mesh TCP transport for group members.

    Each member listens on one address and dials every peer; the
    connection a node dials carries its outbound traffic, so each
    ordered pair of members has a dedicated FIFO byte stream — the
    reliable FIFO channel of the paper's system model (§3.1), for as
    long as both endpoints are up.

    {b Wire framing.} The stream is a sequence of outer frames, each a
    big-endian u32 length followed by that many payload bytes. The
    first outer frame on a connection is the hello (the dialer's id in
    decimal); every later outer frame is a {e batch}: inner frames
    packed back to back, each a varint length followed by its bytes.
    Small multicasts sent within one flush interval coalesce into a
    single batch — one length prefix, one write syscall — instead of
    one syscall per message per peer. Inner frames are the unit the
    protocol sees; batching is invisible above this module.

    {b Zero-copy paths.} Outbound frames are built straight into the
    per-peer batch and flushed from an {!Iobuf} with a single
    [Unix.write] (no [Buffer.contents] copy); {!send_writer} moves a
    codec writer's bytes in without an intermediate string. Inbound
    frames are reassembled in a reusable buffer and handed to
    [on_frame] as borrowed {!Svs_codec.Codec.Slice} windows — valid
    only during the callback.

    Outbound data is buffered and flushed opportunistically, so a slow
    peer never blocks the caller — exactly the buffering behaviour the
    paper's flow-control story assumes. *)

type t

(** How dial retries back off. Delays grow geometrically from
    [base_delay] by [multiplier] up to [max_delay], each scaled by a
    deterministic jitter in [1 ± jitter] (seeded from the node id) so a
    mesh restarting together does not dial in lockstep. With
    [max_attempts = Some n], a peer that fails [n] consecutive dials is
    written off — crash-stop semantics — and its queued frames are
    dropped (and counted) instead of accumulating forever. *)
type dial_policy = {
  base_delay : float;
  max_delay : float;
  multiplier : float;
  jitter : float;
  max_attempts : int option;  (** [None]: retry forever. *)
}

val default_dial_policy : dial_policy
(** 50 ms base, 2 s cap, doubling, 20% jitter, no attempt cap. *)

(** How decode failures escalate. Every failure attributed to a peer
    bumps its misbehavior score by 1; the score leaks away at [decay]
    per second. At [reset_score] the peer's inbound links are torn
    down (a fresh stream clears framing desync); at [quarantine_score]
    the peer is quarantined — links down both ways, reconnects refused
    — until [forgive_after] seconds pass, when it is automatically
    forgiven (score cleared, link dialed back). Honest peers on flaky
    networks produce isolated failures the decay forgives; only a
    sustained stream of garbage escalates. *)
type hostile_policy = {
  reset_score : float;
  quarantine_score : float;
  forgive_after : float;  (** Quarantine duration, seconds. *)
  decay : float;  (** Score units forgiven per second. *)
}

val default_hostile_policy : hostile_policy
(** Reset at 3, quarantine at 8, 5 s cooldown, decay 1/s. *)

(** Flow control for outbound queues. Below [soft], sends take the
    zero-copy fast path. At [soft] the link enters backpressure:
    frames queue in an overflow stage where {e semantic shedding} may
    purge a queued-but-unsent frame once a newer queued frame makes it
    obsolete — under the prefix-safe suffix rule only (see
    {!Svs_obs.Shed}), so the FIFO stream the peer observes always
    carries a cover for anything shed. At [hard] the link is
    considered overloaded: {!would_block} turns true so the
    application can stop admitting new multicasts, and the time spent
    continuously over [hard] feeds the slow-member escalation policy
    upstairs. The link leaves backpressure when it drains back to
    [resume]. [budget] caps the whole mesh's buffered bytes (all
    peers): beyond it {!would_block} is true regardless of any single
    link. [shed = false] disables shedding (frames queue unboundedly —
    the pre-flow-control behaviour, for A/B runs). *)
type backpressure_policy = {
  soft : int;
  hard : int;
  resume : int;
  budget : int;
  shed : bool;
}

val default_backpressure : backpressure_policy
(** soft 256 KiB, hard 2 MiB, resume 64 KiB, budget 32 MiB, shedding
    on. *)

val listener : Unix.sockaddr -> Unix.file_descr * Unix.sockaddr
(** Bind + listen; returns the socket and its actual address (useful
    with port 0). *)

(** Outer-frame reassembly over a reusable buffer, exposed for tests
    (torn frames at arbitrary byte boundaries). [next] returns a
    borrowed slice valid until the next [feed]. *)
module Assembler : sig
  type t

  type result =
    | Frame of Svs_codec.Codec.Slice.t
    | Await  (** Need more bytes. *)
    | Oversize of int  (** Header announces more than [max_frame] bytes. *)

  val create : ?max_frame:int -> unit -> t

  val feed : t -> string -> unit

  val next : t -> result

  val buffered : t -> int
  (** Bytes held but not yet returned as frames. *)
end

val iter_batch : Svs_codec.Codec.Slice.t -> (Svs_codec.Codec.Slice.t -> unit) -> unit
(** Iterate the inner frames of a batch payload, in order, as borrowed
    sub-slices. @raise Svs_codec.Codec.Truncated (or [Malformed]) when
    the payload is not a well-formed batch. *)

val create :
  Loop.t ->
  me:int ->
  listen_fd:Unix.file_descr ->
  peers:(int * Unix.sockaddr) list ->
  on_frame:(src:int -> Svs_codec.Codec.Slice.t -> unit) ->
  ?tracer:Svs_telemetry.Trace.t ->
  ?metrics:Svs_telemetry.Metrics.t ->
  ?dial:dial_policy ->
  ?hostile:hostile_policy ->
  ?backpressure:backpressure_policy ->
  ?max_frame:int ->
  ?flush_interval:float ->
  unit ->
  t
(** Starts accepting and dialing immediately; dials are retried per
    [dial] (default {!default_dial_policy}). [max_frame] (default
    8 MiB) bounds the payload size this node will buffer for a single
    inbound outer frame (plus a small framing allowance): a larger
    header — a hostile peer, corruption, or a foreign protocol —
    resets that link gracefully instead of exhausting memory. A first
    frame that is not a well-formed hello resets the link too, as does
    a batch payload that does not parse.

    [on_frame] receives each inner frame as a borrowed slice into the
    connection's inbound buffer: decode (or copy) before returning,
    never retain the slice.

    [flush_interval] (seconds, default 1 ms) is the batching horizon:
    sends accumulate in a per-peer batch that is sealed and written on
    the next flush tick, when it reaches the watermark
    (min(64 KiB, max_frame)), or immediately when [flush_interval] is
    [0.] (one write per send — the pre-batching behaviour).

    [hostile] (default {!default_hostile_policy}) governs how decode
    failures escalate to link resets and quarantine; inbound framing
    failures (oversize, bad batch) feed it automatically, and the
    protocol layer reports its own decode failures via
    {!note_misbehavior}.

    [tracer] receives [TcpReconnect] whenever an outgoing link comes up
    after at least one failed dial, [TcpDrop] (with a reason:
    ["unknown-dst"], ["written-off"], ["dial-cap"], ["stream-broken"],
    ["oversize"], ["bad-hello"], ["bad-batch"], ["quarantined"], or
    the reason passed to {!note_misbehavior}) whenever traffic is
    discarded, and [Quarantine] when a peer crosses the quarantine
    threshold. [metrics] registers [tcp_bytes_out_total],
    [tcp_bytes_in_total], [tcp_reconnects_total],
    [tcp_frames_dropped_total], [tcp_frames_oversize_total],
    [tcp_writeoff_resets_total], [tcp_flushes_total],
    [tcp_writev_bytes_total], [tcp_peer_quarantined_total] and the
    [tcp_batch_frames] histogram (inner frames per sealed batch),
    labelled by node. *)

val send : t -> dst:int -> ?meta:Svs_obs.Shed.key -> string -> unit
(** Queue a frame for [dst]; buffered until the connection is up.
    [meta] identifies the frame as a sheddable data frame carrying
    that message: while the link is under backpressure, queueing a
    frame whose annotation obsoletes older queued frames purges those
    older frames (per the suffix rule — see {!backpressure_policy}).
    Frames without [meta] are never shed.
    Frames to unknown or written-off destinations are dropped — loudly:
    counted in [tcp_frames_dropped_total] and traced as [TcpDrop].

    Once an {e established} connection to a peer fails, the peer is
    written off and not redialed: bytes already in flight may have
    been lost, so silently resuming the stream would violate the
    reliable-FIFO channel assumption of the system model. The peer is
    handled as crashed (suspicion, view change) instead — until
    {!forget_peer} forgives it, or its restarted incarnation dials us
    with a fresh hello (which forgives it automatically). *)

val send_writer : t -> dst:int -> ?meta:Svs_obs.Shed.key -> Svs_codec.Codec.Writer.t -> unit
(** Like {!send}, but moves the writer's bytes into the batch without
    materializing a string (fast path; under backpressure the bytes
    are materialized once into the overflow stage). The writer is not
    cleared. *)

val flush : t -> unit
(** Seal and write every peer's pending output now, without waiting
    for the flush tick. *)

val note_misbehavior : t -> src:int -> reason:string -> unit
(** Report a decode failure attributed to [src] from a layer above the
    transport (e.g. a packet envelope or protocol message that did not
    parse). Counts and traces a [TcpDrop] with [reason], bumps [src]'s
    misbehavior score, and escalates per the [hostile] policy:
    repeated garbage tears the peer's links down and eventually
    quarantines it. *)

val quarantined : t -> peer:int -> bool
(** True while [peer] is serving a quarantine cooldown. *)

val quarantined_total : t -> int
(** Peers quarantined so far (the [tcp_peer_quarantined_total]
    counter). *)

val forget_peer : t -> dst:int -> unit
(** Restore [dst]'s full dial budget and, if it was written off, allow
    a fresh stream to it (counted in [tcp_writeoff_resets_total]).
    Call when the membership layer readmits a previously excluded or
    crashed peer: the lost bytes of the old stream belong to the dead
    incarnation, which the intervening view change accounted for, so a
    new FIFO stream to the new incarnation is sound. Also invoked
    internally when a written-off peer's new incarnation dials us. *)

val connected : t -> int list
(** Peers whose outbound connection is currently established. *)

val pending_bytes : t -> dst:int -> int
(** Outbound bytes not yet handed to the kernel — sealed frames, the
    open batch, plus the backpressure overflow stage (the sender-side
    buffer of the paper's model). *)

val total_pending : t -> int
(** Sum of {!pending_bytes} over every peer. *)

val drop_pending : t -> dst:int -> int
(** Discard everything queued towards [dst] (returning the byte
    count), leaving the link configured. For the membership layer:
    once a view without [dst] is installed, its queued frames are dead
    weight against the budget. Counted in [tcp_frames_dropped_total]
    and traced as [TcpDrop] with reason ["member-left"]. *)

val would_block : t -> bool
(** Admission-control signal: true while any live (non-written-off)
    peer is at or over the [hard] watermark, or the mesh as a whole is
    at or over [budget]. A well-behaved application stops multicasting
    until this clears. *)

val backpressure : t -> backpressure_policy
(** The policy this mesh was created with. *)

val shed_frames : t -> int
(** Frames purged by semantic shedding so far (the
    [tcp_shed_frames_total] counter). *)

(** A link's flow-control stage: [Bp_soft] once over the soft
    watermark (shedding engaged), [Bp_hard] while over the hard
    watermark (admission control engaged). *)
type bp_stage = Bp_normal | Bp_soft | Bp_hard

val stage_name : bp_stage -> string
(** ["normal"], ["soft"] or ["hard"] — for status JSON. *)

(** One outgoing link's condition, for status reporting. *)
type peer_stat = {
  peer : int;
  up : bool;  (** Outbound connection currently established. *)
  pending : int;  (** {!pending_bytes} towards this peer. *)
  attempts : int;  (** Consecutive failed dials (0 once connected). *)
  written_off : bool;
  quarantined : bool;  (** Currently serving a quarantine cooldown. *)
  stage : bp_stage;
  shed : int;  (** Frames shed from this link's queue so far. *)
  over_hard_s : float;
      (** Seconds spent continuously over the hard watermark (0 when
          under it) — the slow-member escalation clock. *)
}

val peer_stats : t -> peer_stat list
(** Every configured peer's {!peer_stat}, ordered by peer id. *)

val bytes_out : t -> int
(** Bytes actually written to the kernel so far (all peers). *)

val bytes_in : t -> int
(** Bytes read from all incoming connections so far. *)

val reconnects : t -> int
(** Outgoing links that came up after at least one failed dial. *)

val frames_dropped : t -> int
(** Frames discarded so far (unknown destination, written-off peer,
    dial cap, oversize, bad hello, bad batch). *)

val frames_oversize : t -> int
(** Inbound frames refused for exceeding [max_frame]. *)

val writeoff_resets : t -> int
(** Written-off peers forgiven so far (via {!forget_peer} or an
    inbound hello from a restarted incarnation). *)

val flushes : t -> int
(** Write syscalls issued so far (all peers). *)

val dial_attempts : t -> dst:int -> int
(** Consecutive failed dials towards [dst] (0 once connected). *)

val written_off : t -> dst:int -> bool
(** True once [dst] has been given up on (broken stream or dial cap). *)

val pause_reads : t -> unit
(** Stop servicing inbound sockets and the accept queue: the node
    keeps running but reads nothing, so peers' kernel buffers fill and
    their meshes see a slow consumer. For benches and chaos tests. *)

val resume_reads : t -> unit
(** Undo {!pause_reads}: resume accepting and reading. *)

val close : t -> unit
(** Flush what the kernel will take, then close every socket (the
    process "crashes" from the peers' point of view). *)
