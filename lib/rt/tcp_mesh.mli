(** Full-mesh TCP transport for group members.

    Each member listens on one address and dials every peer; the
    connection a node dials carries its outbound traffic, so each
    ordered pair of members has a dedicated FIFO byte stream — the
    reliable FIFO channel of the paper's system model (§3.1), for as
    long as both endpoints are up. Messages are length-prefixed frames
    opened by a hello frame carrying the dialer's id.

    Outbound data is buffered and flushed opportunistically, so a slow
    peer never blocks the caller — exactly the buffering behaviour the
    paper's flow-control story assumes. *)

type t

val listener : Unix.sockaddr -> Unix.file_descr * Unix.sockaddr
(** Bind + listen; returns the socket and its actual address (useful
    with port 0). *)

val create :
  Loop.t ->
  me:int ->
  listen_fd:Unix.file_descr ->
  peers:(int * Unix.sockaddr) list ->
  on_frame:(src:int -> string -> unit) ->
  ?tracer:Svs_telemetry.Trace.t ->
  ?metrics:Svs_telemetry.Metrics.t ->
  unit ->
  t
(** Starts accepting and dialing immediately; dials are retried in the
    background until they succeed. [tracer] receives a [TcpReconnect]
    event whenever an outgoing link comes up after at least one failed
    dial; [metrics] registers [tcp_bytes_out_total],
    [tcp_bytes_in_total] and [tcp_reconnects_total], labelled by
    node. *)

val send : t -> dst:int -> string -> unit
(** Queue a frame for [dst]; buffered until the connection is up.
    Frames to unknown destinations are dropped.

    Once an {e established} connection to a peer fails, the peer is
    written off and never redialed: bytes already in flight may have
    been lost, so resuming the stream would silently violate the
    reliable-FIFO channel assumption of the system model. The peer is
    handled as crashed (suspicion, view change) instead. *)

val connected : t -> int list
(** Peers whose outbound connection is currently established. *)

val pending_bytes : t -> dst:int -> int
(** Outbound bytes not yet handed to the kernel (the sender-side
    buffer of the paper's model). *)

val bytes_out : t -> int
(** Bytes actually written to the kernel so far (all peers). *)

val bytes_in : t -> int
(** Bytes read from all incoming connections so far. *)

val reconnects : t -> int
(** Outgoing links that came up after at least one failed dial. *)

val close : t -> unit
(** Close every socket (the process "crashes" from the peers' point of
    view). *)
