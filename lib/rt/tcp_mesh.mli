(** Full-mesh TCP transport for group members.

    Each member listens on one address and dials every peer; the
    connection a node dials carries its outbound traffic, so each
    ordered pair of members has a dedicated FIFO byte stream — the
    reliable FIFO channel of the paper's system model (§3.1), for as
    long as both endpoints are up. Messages are length-prefixed frames
    opened by a hello frame carrying the dialer's id.

    Outbound data is buffered and flushed opportunistically, so a slow
    peer never blocks the caller — exactly the buffering behaviour the
    paper's flow-control story assumes. *)

type t

(** How dial retries back off. Delays grow geometrically from
    [base_delay] by [multiplier] up to [max_delay], each scaled by a
    deterministic jitter in [1 ± jitter] (seeded from the node id) so a
    mesh restarting together does not dial in lockstep. With
    [max_attempts = Some n], a peer that fails [n] consecutive dials is
    written off — crash-stop semantics — and its queued frames are
    dropped (and counted) instead of accumulating forever. *)
type dial_policy = {
  base_delay : float;
  max_delay : float;
  multiplier : float;
  jitter : float;
  max_attempts : int option;  (** [None]: retry forever. *)
}

val default_dial_policy : dial_policy
(** 50 ms base, 2 s cap, doubling, 20% jitter, no attempt cap. *)

val listener : Unix.sockaddr -> Unix.file_descr * Unix.sockaddr
(** Bind + listen; returns the socket and its actual address (useful
    with port 0). *)

val create :
  Loop.t ->
  me:int ->
  listen_fd:Unix.file_descr ->
  peers:(int * Unix.sockaddr) list ->
  on_frame:(src:int -> string -> unit) ->
  ?tracer:Svs_telemetry.Trace.t ->
  ?metrics:Svs_telemetry.Metrics.t ->
  ?dial:dial_policy ->
  ?max_frame:int ->
  unit ->
  t
(** Starts accepting and dialing immediately; dials are retried per
    [dial] (default {!default_dial_policy}). [max_frame] (default
    8 MiB) bounds the payload size this node will buffer for a single
    inbound frame: a larger header — a hostile peer, corruption, or a
    foreign protocol — resets that link gracefully instead of
    exhausting memory. A first frame that is not a well-formed hello
    resets the link too.

    [tracer] receives [TcpReconnect] whenever an outgoing link comes up
    after at least one failed dial, and [TcpDrop] (with a reason:
    ["unknown-dst"], ["written-off"], ["dial-cap"], ["stream-broken"],
    ["oversize"], ["bad-hello"]) whenever traffic is discarded.
    [metrics] registers [tcp_bytes_out_total], [tcp_bytes_in_total],
    [tcp_reconnects_total], [tcp_frames_dropped_total],
    [tcp_frames_oversize_total] and [tcp_writeoff_resets_total],
    labelled by node. *)

val send : t -> dst:int -> string -> unit
(** Queue a frame for [dst]; buffered until the connection is up.
    Frames to unknown or written-off destinations are dropped — loudly:
    counted in [tcp_frames_dropped_total] and traced as [TcpDrop].

    Once an {e established} connection to a peer fails, the peer is
    written off and not redialed: bytes already in flight may have
    been lost, so silently resuming the stream would violate the
    reliable-FIFO channel assumption of the system model. The peer is
    handled as crashed (suspicion, view change) instead — until
    {!forget_peer} forgives it, or its restarted incarnation dials us
    with a fresh hello (which forgives it automatically). *)

val forget_peer : t -> dst:int -> unit
(** Restore [dst]'s full dial budget and, if it was written off, allow
    a fresh stream to it (counted in [tcp_writeoff_resets_total]).
    Call when the membership layer readmits a previously excluded or
    crashed peer: the lost bytes of the old stream belong to the dead
    incarnation, which the intervening view change accounted for, so a
    new FIFO stream to the new incarnation is sound. Also invoked
    internally when a written-off peer's new incarnation dials us. *)

val connected : t -> int list
(** Peers whose outbound connection is currently established. *)

val pending_bytes : t -> dst:int -> int
(** Outbound bytes not yet handed to the kernel (the sender-side
    buffer of the paper's model). *)

(** One outgoing link's condition, for status reporting. *)
type peer_stat = {
  peer : int;
  up : bool;  (** Outbound connection currently established. *)
  pending : int;  (** {!pending_bytes} towards this peer. *)
  attempts : int;  (** Consecutive failed dials (0 once connected). *)
  written_off : bool;
}

val peer_stats : t -> peer_stat list
(** Every configured peer's {!peer_stat}, ordered by peer id. *)

val bytes_out : t -> int
(** Bytes actually written to the kernel so far (all peers). *)

val bytes_in : t -> int
(** Bytes read from all incoming connections so far. *)

val reconnects : t -> int
(** Outgoing links that came up after at least one failed dial. *)

val frames_dropped : t -> int
(** Frames discarded so far (unknown destination, written-off peer,
    dial cap, oversize, bad hello). *)

val frames_oversize : t -> int
(** Inbound frames refused for exceeding [max_frame]. *)

val writeoff_resets : t -> int
(** Written-off peers forgiven so far (via {!forget_peer} or an
    inbound hello from a restarted incarnation). *)

val dial_attempts : t -> dst:int -> int
(** Consecutive failed dials towards [dst] (0 once connected). *)

val written_off : t -> dst:int -> bool
(** True once [dst] has been given up on (broken stream or dial cap). *)

val close : t -> unit
(** Close every socket (the process "crashes" from the peers' point of
    view). *)
