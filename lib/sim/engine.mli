(** Discrete-event simulation engine.

    A single-threaded event loop over virtual time. Events are closures
    scheduled at absolute or relative virtual times and executed in
    timestamp order (FIFO among equal timestamps). Closures may schedule
    further events. All randomness should come from {!rng} so a run is a
    pure function of the seed. *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] is a fresh engine at time [0.0]. Default seed 42. *)

val now : t -> float
(** Current virtual time, in seconds. *)

val clock : t -> unit -> float
(** [clock t] is a closure reading {!now} — the virtual-time hook to
    plug into telemetry ({!Svs_telemetry.Trace.set_clock}) so simulated
    runs stamp trace events with virtual time. *)

val attach_metrics : t -> Svs_telemetry.Metrics.t -> unit
(** Register the engine's instruments in [reg]: [sim_events_total]
    (events executed) and the [sim_queue_depth] gauge, both updated per
    executed event. *)

val rng : t -> Rng.t
(** The engine's root random stream. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay]. [delay] must be
    non-negative. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** [schedule_at t ~time f] runs [f] at absolute [time], which must not
    be in the past. *)

val cancel : handle -> unit
(** Cancels a scheduled event; cancelling an already-executed or
    already-cancelled event is a no-op. *)

val cancelled : handle -> bool

val pending : t -> int
(** Number of scheduled (non-cancelled) events. *)

val step : t -> bool
(** Executes the next event. [false] if the queue was empty.

    Determinism guarantee: the next event is the pending event minimal
    in (time, scheduling sequence number) — ties between
    equal-timestamp events always break towards the event scheduled
    first, never on heap or insertion order. A simulation driven only
    by [step] (or {!run}) is therefore a pure function of the schedule
    calls made so far, which is what lets a model checker reproduce a
    state from a choice trace alone. *)

val ready : t -> handle list
(** The group of pending events tied at the earliest pending
    timestamp, in scheduling order ([step] would execute the head).
    Exposed so an enumerator can explore the other interleavings of
    equal-timestamp events with {!step_ready}. *)

val step_ready : t -> handle -> unit
(** Execute one specific event of the current {!ready} group (not
    necessarily its head), leaving the rest pending. Raises
    [Invalid_argument] if the handle is cancelled, already executed,
    or not at the earliest pending timestamp — out-of-order execution
    across distinct timestamps would move the clock backwards later. *)

val handle_time : handle -> float

val handle_seq : handle -> int
(** The monotonic sequence number assigned at scheduling time — the
    tie-breaker among equal timestamps. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** [run t] executes events until the queue drains, virtual time would
    exceed [until], or [max_events] have run. After [run ~until], the
    clock reads [until] if the horizon was reached (or the queue drained
    earlier with events remaining beyond it); otherwise the time of the
    last event. *)

val every : t -> ?start:float -> period:float -> (unit -> bool) -> handle
(** [every t ~period f] runs [f] periodically starting at
    [now + start] (default [period]); rescheduling stops when [f]
    returns [false] or the returned handle is cancelled. The handle
    stays valid across periods. *)

val events_executed : t -> int
