type event = {
  time : float;
  seq : int;
  mutable cancelled : bool;
  mutable action : unit -> unit;
}

type handle = event

module Metrics = Svs_telemetry.Metrics

type probe = {
  events : Metrics.Counter.t;
  depth : Metrics.Gauge.t;
}

type t = {
  queue : event Heap.t;
  root_rng : Rng.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable executed : int;
  mutable probe : probe option;
}

let event_leq a b = a.time < b.time || (a.time = b.time && a.seq <= b.seq)

let create ?(seed = 42) () =
  {
    queue = Heap.create ~leq:event_leq ();
    root_rng = Rng.create ~seed;
    clock = 0.0;
    next_seq = 0;
    executed = 0;
    probe = None;
  }

let now t = t.clock

let clock t () = t.clock

let attach_metrics t reg =
  t.probe <-
    Some { events = Metrics.counter reg "sim_events_total"; depth = Metrics.gauge reg "sim_queue_depth" }

let rng t = t.root_rng

let schedule_at t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)" time t.clock);
  let ev = { time; seq = t.next_seq; cancelled = false; action = f } in
  t.next_seq <- t.next_seq + 1;
  Heap.add t.queue ev;
  ev

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let cancel ev =
  ev.cancelled <- true;
  ev.action <- (fun () -> ())

let cancelled ev = ev.cancelled

let pending t =
  Heap.fold (fun n ev -> if ev.cancelled then n else n + 1) 0 t.queue

let run_event t ev =
  t.clock <- ev.time;
  t.executed <- t.executed + 1;
  (match t.probe with
  | None -> ()
  | Some p ->
      Metrics.Counter.incr p.events;
      Metrics.Gauge.set p.depth (float_of_int (Heap.length t.queue)));
  ev.action ()

let step t =
  let rec next () =
    match Heap.pop t.queue with
    | None -> false
    | Some ev ->
        if ev.cancelled then next ()
        else begin
          run_event t ev;
          true
        end
  in
  next ()

(* --- Enumeration support (model checking) ---

   The heap's total order is (time, seq): among equal timestamps,
   events execute in scheduling order, never insertion/heap order, so
   a run is a deterministic function of the sequence of choices made
   by the driver. [ready]/[step_ready] expose the tie group at the
   head of the queue so an enumerator can explore the other
   permutations of equal-timestamp events too. *)

let drop_cancelled t =
  let rec go () =
    match Heap.peek t.queue with
    | Some ev when ev.cancelled ->
        ignore (Heap.pop t.queue : event option);
        go ()
    | Some _ | None -> ()
  in
  go ()

let ready t =
  drop_cancelled t;
  match Heap.peek t.queue with
  | None -> []
  | Some head ->
      let same =
        Heap.fold
          (fun acc ev -> if (not ev.cancelled) && ev.time = head.time then ev :: acc else acc)
          [] t.queue
      in
      List.sort (fun a b -> compare a.seq b.seq) same

let handle_time ev = ev.time

let handle_seq ev = ev.seq

let step_ready t ev =
  if ev.cancelled then invalid_arg "Engine.step_ready: cancelled event";
  drop_cancelled t;
  (match Heap.peek t.queue with
  | Some head when head.time = ev.time -> ()
  | Some _ | None -> invalid_arg "Engine.step_ready: event is not ready");
  (* Pop until we reach [ev]; everything popped first shares its
     timestamp (checked above), so re-adding preserves the order of
     the rest of the queue. *)
  let rec extract acc =
    match Heap.pop t.queue with
    | None -> invalid_arg "Engine.step_ready: event is not pending"
    | Some e when e == ev -> acc
    | Some e ->
        if e.time <> ev.time then invalid_arg "Engine.step_ready: event is not ready"
        else extract (e :: acc)
  in
  let ties = extract [] in
  List.iter (Heap.add t.queue) ties;
  run_event t ev

let run ?until ?max_events t =
  let horizon = match until with None -> infinity | Some u -> u in
  let budget = match max_events with None -> max_int | Some n -> n in
  let rec loop ran =
    if ran >= budget then ()
    else
      match Heap.peek t.queue with
      | None -> ()
      | Some ev when ev.cancelled ->
          ignore (Heap.pop t.queue);
          loop ran
      | Some ev when ev.time > horizon -> ()
      | Some _ ->
          if step t then loop (ran + 1) else ()
  in
  loop 0;
  (match until with
  | Some u when t.clock < u -> t.clock <- u
  | Some _ | None -> ())

let every t ?start ~period f =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  let first = match start with None -> period | Some s -> s in
  (* A stable outer handle: cancelling it marks [stopped]; the inner
     per-period events check the flag before firing. *)
  let outer = { time = t.clock +. first; seq = -1; cancelled = false; action = (fun () -> ()) } in
  let rec arm delay =
    ignore
      (schedule t ~delay (fun () ->
           if not outer.cancelled then
             if f () then arm period else outer.cancelled <- true)
        : handle)
  in
  arm first;
  outer

let events_executed t = t.executed
