module Dq = Svs_core.Dq
module Stream = Svs_workload.Stream
module Annotation = Svs_obs.Annotation
module Purge_index = Svs_obs.Purge_index
module Timeline = Svs_stats.Timeline
module Metrics = Svs_telemetry.Metrics

type mode = Reliable | Semantic

let mode_label = function Reliable -> "reliable" | Semantic -> "semantic"

type config = {
  buffer : int;
  consumer_rate : float;
  mode : mode;
}

type result = {
  duration : float;
  produced : int;
  delivered : int;
  purged : int;
  blocked_time : float;
  blocked_fraction : float;
  mean_occupancy : float;
  max_occupancy : int;
}

let msg_id (m : Stream.message) = Stream.id_of ~sender:0 m

(* The purging buffer of the model: the queue plus the purge indexes
   over it (single producer, one pseudo-view). *)
type buf = {
  q : Stream.message Dq.t;
  idx : Stream.message Dq.handle Purge_index.t;
  mode : mode;
}

let buf_create mode = { q = Dq.create (); idx = Purge_index.create (); mode }

(* Insert with purge: the incoming message removes the queued messages
   it obsoletes (Figure 1's purge, restricted to the single producer
   stream of this model — sequence numbers ascend, so the reverse
   direction never fires and the plan's drop flag is always false).
   The index turns the old full-buffer sweep into O(|predecessors|)
   probes. Returns how many were purged. *)
let insert b (m : Stream.message) =
  match b.mode with
  | Reliable ->
      Dq.push_back b.q m;
      0
  | Semantic ->
      let id = msg_id m in
      let h = Dq.push_back_h b.q m in
      let victims, _drop = Purge_index.plan b.idx ~view:0 ~id ~ann:m.Stream.ann in
      List.iter
        (fun (v : _ Purge_index.victim) ->
          ignore (Dq.remove b.q v.Purge_index.victim_handle : bool);
          Purge_index.remove b.idx ~view:0 ~id:v.Purge_index.victim_id
            ~ann:v.Purge_index.victim_ann)
        victims;
      Purge_index.add b.idx ~view:0 ~id ~ann:m.Stream.ann h ~seq:(Dq.handle_seq h);
      List.length victims

let pop b =
  match Dq.pop_front b.q with
  | None -> None
  | Some m ->
      if b.mode = Semantic then
        Purge_index.remove b.idx ~view:0 ~id:(msg_id m) ~ann:m.Stream.ann;
      Some m

let run ?metrics ~messages config =
  if config.buffer <= 0 then invalid_arg "Pipeline.run: buffer must be positive";
  if config.consumer_rate <= 0.0 then invalid_arg "Pipeline.run: consumer rate must be positive";
  let n = Array.length messages in
  let service = 1.0 /. config.consumer_rate in
  let buffer = buf_create config.mode in
  let occupancy = Timeline.create () in
  let lag = ref 0.0 in
  let blocked_time = ref 0.0 in
  (* The run's tallies are registry instruments; with no registry they
     are detached cells — same O(1) updates either way. Counters only
     grow, so the result record reports deltas from the baselines. *)
  let labels = [ ("mode", mode_label config.mode) ] in
  let c_purged, c_delivered, g_occupancy =
    match metrics with
    | None ->
        (Metrics.Counter.detached (), Metrics.Counter.detached (), Metrics.Gauge.detached ())
    | Some reg ->
        ( Metrics.counter reg ~labels "pipeline_purged_total",
          Metrics.counter reg ~labels "pipeline_delivered_total",
          Metrics.gauge reg ~labels "pipeline_buffer_occupancy" )
  in
  let purged0 = Metrics.Counter.value c_purged in
  let delivered0 = Metrics.Counter.value c_delivered in
  let consumer_free = ref 0.0 in
  let last_time = ref 0.0 in
  let note_occupancy time =
    let depth = float_of_int (Dq.length buffer.q) in
    Metrics.Gauge.set g_occupancy depth;
    Timeline.set occupancy ~time depth
  in
  let consume time =
    ignore (pop buffer : Stream.message option);
    Metrics.Counter.incr c_delivered;
    consumer_free := time +. service;
    note_occupancy time;
    last_time := time
  in
  let i = ref 0 in
  let running = ref true in
  while !running do
    let next_emit = if !i < n then messages.(!i).Stream.time +. !lag else infinity in
    let next_consume = if Dq.is_empty buffer.q then infinity else !consumer_free in
    if next_emit = infinity && next_consume = infinity then running := false
    else if next_consume <= next_emit then consume next_consume
    else begin
      let m = messages.(!i) in
      if Dq.length buffer.q >= config.buffer then begin
        (* Producer blocked by flow control until the consumer frees a
           slot. The consumer cannot be idle here (the buffer is
           non-empty), so it next pops at [consumer_free]. *)
        let resume = !consumer_free in
        assert (resume > next_emit);
        blocked_time := !blocked_time +. (resume -. next_emit);
        lag := !lag +. (resume -. next_emit);
        consume resume;
        Metrics.Counter.add c_purged (insert buffer m);
        note_occupancy resume;
        incr i
      end
      else begin
        Metrics.Counter.add c_purged (insert buffer m);
        (* An idle consumer starts on the new head immediately. *)
        if !consumer_free < next_emit then consumer_free := next_emit +. service;
        note_occupancy next_emit;
        last_time := Float.max !last_time next_emit;
        incr i
      end
    end
  done;
  let duration = !last_time in
  Timeline.finish occupancy ~time:duration;
  {
    duration;
    produced = n;
    delivered = Metrics.Counter.value c_delivered - delivered0;
    purged = Metrics.Counter.value c_purged - purged0;
    blocked_time = !blocked_time;
    blocked_fraction = (if duration > 0.0 then !blocked_time /. duration else 0.0);
    mean_occupancy = Timeline.mean occupancy;
    max_occupancy = int_of_float (Timeline.max_value occupancy);
  }

let threshold ~messages ~buffer ~mode ?(tolerance = 0.5) ?(max_blocked = 0.05) () =
  let blocked_at rate =
    (run ~messages { buffer; consumer_rate = rate; mode }).blocked_fraction
  in
  (* Blocked fraction decreases with consumer rate: bisect. *)
  let rec bisect lo hi =
    if hi -. lo <= tolerance then hi
    else
      let mid = (lo +. hi) /. 2.0 in
      if blocked_at mid <= max_blocked then bisect lo mid else bisect mid hi
  in
  let hi = 400.0 in
  if blocked_at hi > max_blocked then infinity else bisect 0.25 hi

let perturbation_tolerance ~messages ~buffer ~mode ?(samples = 200) () =
  let n = Array.length messages in
  if n = 0 then 0.0
  else begin
    let total = ref 0.0 in
    let count = ref 0 in
    let step = Stdlib.max 1 (n / samples) in
    let start = ref 0 in
    while !start < n do
      let s = !start in
      let buffer_q = buf_create mode in
      let t0 = messages.(s).Stream.time in
      let elapsed = ref None in
      let j = ref s in
      while !elapsed = None && !j < n do
        let m = messages.(!j) in
        if Dq.length buffer_q.q >= buffer then elapsed := Some (m.Stream.time -. t0)
        else begin
          ignore (insert buffer_q m : int);
          incr j
        end
      done;
      let tol =
        match !elapsed with
        | Some e -> e
        | None -> messages.(n - 1).Stream.time -. t0 (* censored: never filled *)
      in
      total := !total +. tol;
      incr count;
      start := !start + step
    done;
    !total /. float_of_int !count
  end
