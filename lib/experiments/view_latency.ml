module Engine = Svs_sim.Engine
module Group = Svs_core.Group
module Types = Svs_core.Types
module Checker = Svs_core.Checker
module Latency = Svs_net.Latency
module Stream = Svs_workload.Stream
module Series = Svs_stats.Series

type result = {
  mode : Pipeline.mode;
  pred_size : int;
  latency : float;
  slow_backlog : int;
  purged : int;
  violations : int;
}

let run ?(spec = Spec.default) ?(buffer = 15) ?(consumer_rate = 30.0) ?(trigger_at = 20.0)
    ~mode () =
  let messages = Spec.messages ~buffer spec in
  let engine = Engine.create ~seed:spec.Spec.seed () in
  let config =
    {
      Group.default_config with
      semantic = (mode = Pipeline.Semantic);
      buffer_capacity = Some buffer;
      stability_period = Some 0.25;
    }
  in
  (* A 10 Mbit/s network with real (codec) message sizes: the PRED
     flush and injected backlog cost wire time, so the latency column
     reflects what purging saves. *)
  let cluster =
    Group.create_cluster engine ~members:[ 0; 1; 2; 3 ] ~latency:(Latency.Constant 0.002)
      ~bandwidth:1_250_000.0 ~payload_codec:Svs_core.Wire_codec.int_codec ~config ()
  in
  let producer = Group.member cluster 0 in
  let fast = [ producer; Group.member cluster 1; Group.member cluster 2 ] in
  let slow = Group.member cluster 3 in
  let horizon = trigger_at +. 5.0 in
  (* Producer: replay the annotated stream at its own timestamps,
     retrying while the group is blocked so protocol sequence numbers
     stay aligned with the annotations. *)
  let i = ref 0 in
  let limit =
    let n = Array.length messages in
    let rec first_beyond ix =
      if ix >= n || messages.(ix).Stream.time > horizon then ix else first_beyond (ix + 1)
    in
    first_beyond 0
  in
  let rec emit_next () =
    if !i < limit then begin
      let m = messages.(!i) in
      let at = Float.max m.Stream.time (Engine.now engine) in
      ignore
        (Engine.schedule_at engine ~time:at (fun () -> attempt m) : Engine.handle)
    end
  and attempt m =
    match Group.multicast producer ~ann:m.Stream.ann m.Stream.sn with
    | Ok _ ->
        incr i;
        emit_next ()
    | Error `Blocked ->
        ignore (Engine.schedule engine ~delay:0.01 (fun () -> attempt m) : Engine.handle)
    | Error `Not_member -> ()
  in
  emit_next ();
  (* Fast members drain continuously; the slow one is rate-limited. *)
  List.iter
    (fun m ->
      ignore
        (Engine.every engine ~period:0.005 (fun () ->
             ignore (Group.deliver_all m);
             Engine.now engine < horizon)
          : Engine.handle))
    fast;
  ignore
    (Engine.every engine ~period:(1.0 /. consumer_rate) (fun () ->
         ignore (Group.deliver slow);
         Engine.now engine < horizon)
      : Engine.handle);
  (* Instrument the view change. *)
  let pred_size = ref 0 in
  let slow_backlog = ref 0 in
  let installs = ref [] in
  List.iter
    (fun m -> Group.on_installed m (fun _ -> installs := Engine.now engine :: !installs))
    (Group.members cluster);
  ignore
    (Engine.schedule_at engine ~time:trigger_at (fun () ->
         pred_size :=
           List.fold_left (fun acc m -> Stdlib.max acc (Group.pred_size m)) 0
             (Group.members cluster);
         slow_backlog := Group.inbox slow + Group.pending slow;
         Group.trigger_view_change producer ~leave:[] ())
      : Engine.handle);
  Engine.run ~until:horizon engine;
  List.iter (fun m -> ignore (Group.deliver_all m)) (Group.members cluster);
  let latency =
    match !installs with
    | [] -> infinity
    | ts -> List.fold_left Float.max 0.0 ts -. trigger_at
  in
  {
    mode;
    pred_size = !pred_size;
    latency;
    slow_backlog = !slow_backlog;
    purged = Group.purged slow;
    violations = List.length (Checker.verify (Group.checker cluster));
  }

let print ?(spec = Spec.default) ppf () =
  let rel = run ~spec ~mode:Pipeline.Reliable () in
  let sem = run ~spec ~mode:Pipeline.Semantic () in
  Format.fprintf ppf
    "V1: view-change cost under load (full stack, slow member at 30 msg/s, buffer 15)@.";
  let row (r : result) =
    [
      Pipeline.mode_label r.mode;
      string_of_int r.pred_size;
      Printf.sprintf "%.1f" (1000.0 *. r.latency);
      string_of_int r.slow_backlog;
      string_of_int r.purged;
      string_of_int r.violations;
    ]
  in
  Series.render_table ppf
    ~header:
      [ "mode"; "PRED flush (msgs)"; "latency (ms)"; "slow backlog"; "purged@slow"; "violations" ]
    ~rows:[ row rel; row sem ]
