module Dq = Svs_core.Dq
module Stream = Svs_workload.Stream
module Trace_stats = Svs_workload.Trace_stats
module Annotation = Svs_obs.Annotation
module Series = Svs_stats.Series
module Codec = Svs_codec.Codec
module Types = Svs_core.Types
module View = Svs_core.View
module Wire_codec = Svs_core.Wire_codec

type policy = Exclude | Big_buffers | Deadline | Svs

let policy_label = function
  | Exclude -> "exclude slow member"
  | Big_buffers -> "over-provisioned buffers"
  | Deadline -> "deadline drop (Δ-causal)"
  | Svs -> "semantic view synchrony"

type row = {
  policy : policy;
  reconfigurations : int;
  rejoins : int;
  state_transfer_bytes : int;
  peak_buffer : int;
  blocked_fraction : float;
  lost_live : int;
  purged_obsolete : int;
}

type config = {
  buffer : int;
  consumer_rate : float;
  freeze_every : float;
  freeze_for : float;
  grace : float;
  deadline : float;
}

let default_config =
  {
    buffer = 15;
    consumer_rate = 100.0;
    freeze_every = 30.0;
    freeze_for = 1.0;
    grace = 0.05;
    deadline = 0.3;
  }

type entry = { msg : Stream.message; mutable inserted : float }

let run ?(spec = Spec.default) ?(config = default_config) policy =
  let messages = Spec.messages ~buffer:config.buffer spec in
  let covers = Trace_stats.cover_distances messages in
  let n = Array.length messages in
  let cap = match policy with Big_buffers -> max_int | Exclude | Deadline | Svs -> config.buffer in
  let service = 1.0 /. config.consumer_rate in
  let buffer : entry Dq.t = Dq.create () in
  let lag = ref 0.0 in
  let blocked_time = ref 0.0 in
  let consumer_free = ref 0.0 in
  let excluded = ref false in
  let reconfigurations = ref 0 in
  let rejoins = ref 0 in
  let state_transfer_bytes = ref 0 in
  (* Current application state (latest write per live item), as a
     sponsor would snapshot it: the readmission SYNC ships exactly
     this, so the transfer is costed with the real wire encoding. *)
  let state : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let track (m : Stream.message) =
    match (m.Stream.kind, m.Stream.item) with
    | (Stream.Update | Stream.Commit | Stream.Create), Some item ->
        Hashtbl.replace state item m.Stream.sn
    | Stream.Destroy, Some item -> Hashtbl.remove state item
    | _, None -> ()
  in
  let sync_bytes ~floor =
    let app =
      let w = Codec.Writer.create () in
      Codec.Writer.list w
        (fun w (item, sn) ->
          Codec.Writer.varint w item;
          Codec.Writer.varint w sn)
        (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) state []));
      Some (Codec.Writer.contents w)
    in
    (* The SYNC of the join path: re-entry view (expulsion + rejoin are
       two view changes each), sponsor floors, application snapshot. *)
    Codec.encoded_size
      ~write:(Wire_codec.write_wire Wire_codec.int_codec)
      (Types.Wsync
         {
           view = View.make ~id:(2 * !reconfigurations) ~members:[ 0; 1 ];
           floors = [ (0, floor) ];
           app;
         })
  in
  let peak = ref 0 in
  let lost_live = ref 0 in
  let purged_obsolete = ref 0 in
  let last_time = ref 0.0 in

  let frozen t = t >= config.freeze_every && Float.rem t config.freeze_every < config.freeze_for in
  let end_of_freeze t =
    (Float.of_int (int_of_float (t /. config.freeze_every)) *. config.freeze_every)
    +. config.freeze_for
  in
  let next_healthy t = if frozen t then end_of_freeze t else t in

  let msg_id (m : Stream.message) = Stream.id_of ~sender:0 m in
  let obsoletes older newer =
    Annotation.obsoletes
      ~older:(msg_id older.msg, older.msg.Stream.ann)
      ~newer:(msg_id newer, newer.Stream.ann)
  in
  let insert now (m : Stream.message) =
    if policy = Svs then
      purged_obsolete :=
        !purged_obsolete
        + Dq.filter_in_place (fun e -> not (obsoletes e m)) buffer;
    Dq.push_back buffer { msg = m; inserted = now };
    peak := Stdlib.max !peak (Dq.length buffer)
  in
  (* Deadline policy: when full, shed expired messages from the head. *)
  let shed_expired now =
    let removed =
      Dq.filter_in_place
        (fun e ->
          let keep = now -. e.inserted <= config.deadline in
          if not keep then begin
            let ix = e.msg.Stream.sn in
            if ix >= 0 && ix < n && covers.(ix) = None then incr lost_live
            else incr purged_obsolete
          end;
          keep)
        buffer
    in
    removed > 0
  in
  let pop now =
    ignore (Dq.pop_front buffer);
    consumer_free := now +. service;
    last_time := now
  in
  let i = ref 0 in
  let running = ref true in
  while !running do
    let next_emit = if !i < n then messages.(!i).Stream.time +. !lag else infinity in
    let next_pop =
      if Dq.is_empty buffer || !excluded then infinity
      else next_healthy (Float.max !consumer_free (Float.min next_emit !consumer_free))
    in
    (* A frozen consumer's next pop happens when it thaws. *)
    let next_pop =
      if next_pop = infinity then infinity else next_healthy (Float.max next_pop !consumer_free)
    in
    if next_emit = infinity && (Dq.is_empty buffer || !excluded) then running := false
    else if next_pop <= next_emit then pop next_pop
    else begin
      let m = messages.(!i) in
      let te = next_emit in
      track m;
      (* Readmit a previously excluded member once it is healthy: the
         join path costs another view change plus the sponsor's SYNC
         carrying the whole current application state. *)
      if !excluded && not (frozen te) then begin
        excluded := false;
        incr rejoins;
        state_transfer_bytes :=
          !state_transfer_bytes + sync_bytes ~floor:(Stdlib.max 0 (!i - 1))
      end;
      if !excluded then begin
        (* The slow member is out of the group: nothing is buffered for
           it; the producer proceeds unimpeded. *)
        last_time := Float.max !last_time te;
        incr i
      end
      else if Dq.length buffer < cap then begin
        insert te m;
        if !consumer_free < te then consumer_free := te +. service;
        last_time := Float.max !last_time te;
        incr i
      end
      else if policy = Deadline && shed_expired te then begin
        insert te m;
        last_time := Float.max !last_time te;
        incr i
      end
      else begin
        (* Full: the producer is blocked until the consumer frees a
           slot (possibly not before the freeze ends). *)
        let resume = next_healthy (Float.max !consumer_free te) in
        if policy = Exclude && resume -. te > config.grace then begin
          (* Flow control exceeded the grace period: expel the member.
             Its buffered messages are dropped — the dead incarnation's
             loss — and the readmission SYNC above pays to rebuild its
             state when it rejoins. *)
          incr reconfigurations;
          excluded := true;
          blocked_time := !blocked_time +. config.grace;
          lag := !lag +. config.grace;
          Dq.clear buffer;
          last_time := Float.max !last_time (te +. config.grace);
          incr i
        end
        else begin
          blocked_time := !blocked_time +. (resume -. te);
          lag := !lag +. (resume -. te);
          pop resume;
          insert resume m;
          incr i
        end
      end
    end
  done;
  let duration = !last_time in
  {
    policy;
    reconfigurations = !reconfigurations;
    rejoins = !rejoins;
    state_transfer_bytes = !state_transfer_bytes;
    peak_buffer = !peak;
    blocked_fraction = (if duration > 0.0 then !blocked_time /. duration else 0.0);
    lost_live = !lost_live;
    purged_obsolete = !purged_obsolete;
  }

let print ?(spec = Spec.default) ?(config = default_config) ppf () =
  Format.fprintf ppf
    "A3/A4: design alternatives under periodic perturbations (receiver freezes %.1fs every \
     %.0fs; buffer %d; consumer %.0f msg/s)@."
    config.freeze_for config.freeze_every config.buffer config.consumer_rate;
  let rows = List.map (fun p -> run ~spec ~config p) [ Exclude; Big_buffers; Deadline; Svs ] in
  Series.render_table ppf
    ~header:
      [
        "policy";
        "reconfigs";
        "rejoins";
        "state xfer";
        "peak buffer";
        "producer blocked";
        "lost live msgs";
        "skipped obsolete";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             policy_label r.policy;
             string_of_int r.reconfigurations;
             string_of_int r.rejoins;
             Printf.sprintf "%dB" r.state_transfer_bytes;
             (if r.peak_buffer = max_int then "unbounded" else string_of_int r.peak_buffer);
             Printf.sprintf "%.2f%%" (100.0 *. r.blocked_fraction);
             string_of_int r.lost_live;
             string_of_int r.purged_obsolete;
           ])
         rows)
