(** A3/A4 — the design alternatives the paper argues against.

    §2.2 lists three ways to survive a perturbed member without SVS:
    expel it, over-provision buffers, or weaken reliability; §6 adds
    time-based (Δ-causal / deadline) message dropping. This experiment
    puts each policy through the same workload — a receiver that
    freezes periodically — and quantifies the cost the paper claims
    each one pays:

    - [Exclude]: bounded buffer, no purging; a member blocking the
      producer beyond a grace period is expelled and later re-joins
      (costing a reconfiguration + state transfer each time).
    - [Big_buffers]: no purging, buffers large enough to mask the
      perturbation — the cost is the peak memory.
    - [Deadline]: bounded buffer; when full, messages older than Δ are
      dropped regardless of content — the cost is losing messages that
      were never made obsolete (real information loss).
    - [Svs]: bounded buffer with semantic purging — drops only covered
      content, never blocks long, never reconfigures. *)

type policy = Exclude | Big_buffers | Deadline | Svs

val policy_label : policy -> string

type row = {
  policy : policy;
  reconfigurations : int;  (** Times the slow member was expelled. *)
  rejoins : int;  (** Times it was readmitted (another view change). *)
  state_transfer_bytes : int;
      (** Total bytes of the readmission SYNCs — each rejoin ships the
          sponsor's whole application snapshot, measured with the real
          join path's wire encoding. 0 for every other policy. *)
  peak_buffer : int;  (** Maximum messages buffered. *)
  blocked_fraction : float;  (** Producer flow-control stall. *)
  lost_live : int;
      (** Messages dropped that no later message made obsolete —
          the receiver's state is missing real content. 0 for
          Exclude/Big_buffers/Svs. *)
  purged_obsolete : int;  (** Covered messages skipped (harmless). *)
}

type config = {
  buffer : int;  (** Bound for Exclude/Deadline/Svs. *)
  consumer_rate : float;  (** While the receiver is healthy. *)
  freeze_every : float;  (** Perturbation period (s). *)
  freeze_for : float;  (** Perturbation length (s). *)
  grace : float;  (** Producer stall tolerated before expelling. *)
  deadline : float;  (** Δ for the Deadline policy (s). *)
}

val default_config : config

val run :
  ?spec:Spec.t -> ?config:config -> policy -> row

val print : ?spec:Spec.t -> ?config:config -> Format.formatter -> unit -> unit
