(** The paper's §5.3 simulation model: a producer replaying the game's
    message stream into a bounded protocol buffer drained by a consumer
    of configurable speed.

    The buffer stands for the protocol buffers on the path to the slow
    receiver. With [Semantic] mode, an inserted message purges the
    queued messages it obsoletes (the annotations carry k-enumeration
    bitmaps); with [Reliable] mode nothing is ever purged. A message
    can only be accepted while the buffer holds fewer than [buffer]
    messages — when full, the producer blocks (flow control) until the
    consumer frees space, and the blocked time is accounted. *)

type mode = Reliable | Semantic

val mode_label : mode -> string

type config = {
  buffer : int;
  consumer_rate : float;  (** Messages per second. *)
  mode : mode;
}

type result = {
  duration : float;  (** Virtual seconds simulated. *)
  produced : int;
  delivered : int;
  purged : int;
  blocked_time : float;
  blocked_fraction : float;  (** Fraction of the run the producer was blocked. *)
  mean_occupancy : float;  (** Time-weighted buffer occupancy. *)
  max_occupancy : int;
}

val run :
  ?metrics:Svs_telemetry.Metrics.t ->
  messages:Svs_workload.Stream.message array ->
  config ->
  result
(** Replay the whole stream (its embedded timestamps give the offered
    load and burstiness). When [metrics] is given, the run's tallies
    are registered instruments — [pipeline_purged_total],
    [pipeline_delivered_total] (counters, accumulated across runs on
    the same registry; the returned {!result} still reports this run
    alone) and [pipeline_buffer_occupancy] (gauge) — labelled by
    mode. *)

val threshold :
  messages:Svs_workload.Stream.message array ->
  buffer:int ->
  mode:mode ->
  ?tolerance:float ->
  ?max_blocked:float ->
  unit ->
  float
(** Figure 5(a): the lowest consumer rate (msg/s, within [tolerance],
    default 0.5) that keeps the producer blocked at most [max_blocked]
    (default 5%) of the time. *)

val perturbation_tolerance :
  messages:Svs_workload.Stream.message array ->
  buffer:int ->
  mode:mode ->
  ?samples:int ->
  unit ->
  float
(** Figure 5(b): how long (seconds) a receiver may stop consuming
    entirely before the producer blocks, averaged over [samples]
    (default 200) random perturbation start points. *)
