(** Differential harness for the indexed purge.

    Two engines insert/pop the same stream of annotated messages into a
    purging buffer: {!Reference} replays the pre-index pairwise purge
    (push, then two O(queue) sweeps — the executable specification) and
    {!Indexed} runs {!Dq} handles + {!Svs_obs.Purge_index} point
    probes. {!agree} drives both in lockstep and reports the first
    divergence in per-insert purge sets (including order, which fixes
    counter and trace-event equality), pop results, or final queue
    contents.

    Also the substrate for the old-vs-new purge benchmarks in
    [bench/main.ml]. *)

type item = { view : int; id : Svs_obs.Msg_id.t; ann : Svs_obs.Annotation.t }

type op = Insert of item | Pop

val pp_item : Format.formatter -> item -> unit

module type ENGINE = sig
  type t

  val create : unit -> t

  val insert : t -> item -> Svs_obs.Msg_id.t list
  (** Ids purged by this insert, in queue order, the dropped fresh
      message last if a queued entry obsoleted it. *)

  val pop : t -> item option

  val contents : t -> item list
end

module Reference : ENGINE

module Indexed : ENGINE

type divergence = { at_op : int; reason : string }

val agree : op list -> divergence option
(** [None] iff both engines purged the same ids in the same order at
    every insert, popped identically, and finished with identical
    queues. Streams must use unique message ids (the protocol's FIFO
    floors guarantee this; the index requires it). *)
