module Codec = Svs_codec.Codec
module W = Codec.Writer
module R = Codec.Reader
module Msg_id = Svs_obs.Msg_id
module Annotation = Svs_obs.Annotation
module Bitvec = Svs_obs.Bitvec
open Types

type 'p payload_codec = {
  write : W.t -> 'p -> unit;
  read : R.t -> 'p;
}

let unit_codec = { write = (fun _ () -> ()); read = (fun _ -> ()) }

let int_codec = { write = W.zigzag; read = R.zigzag }

let string_codec = { write = W.bytes; read = R.bytes }

let pair_codec a b =
  {
    write =
      (fun w (x, y) ->
        a.write w x;
        b.write w y);
    read =
      (fun r ->
        let x = a.read r in
        let y = b.read r in
        (x, y));
  }

let write_msg_id = Svs_obs.Obs_codec.write_msg_id

let read_msg_id = Svs_obs.Obs_codec.read_msg_id

let write_annotation = Svs_obs.Obs_codec.write_annotation

let read_annotation = Svs_obs.Obs_codec.read_annotation

let write_view w (v : View.t) =
  W.varint w v.View.id;
  W.list w (fun w p -> W.varint w p) v.View.members

let read_view r =
  let id = R.varint r in
  let members = R.list r R.varint in
  (* [View.make] validates (e.g. rejects empty membership) with
     [Invalid_argument]; on hostile bytes that must surface as the
     codec's own failure, not an unsanctioned escape. *)
  match View.make ~id ~members with
  | v -> v
  | exception Invalid_argument msg -> raise (Codec.Malformed msg)

let write_data pc w (d : 'p data) =
  write_msg_id w d.id;
  W.varint w d.view_id;
  write_annotation w d.ann;
  pc.write w d.payload

let read_data pc r =
  let id = read_msg_id r in
  let view_id = R.varint r in
  let ann = read_annotation r in
  let payload = pc.read r in
  { id; view_id; payload; ann }

let write_wire pc w = function
  | Wdata d ->
      W.uint8 w 0;
      write_data pc w d
  | Winit { view_id; leave; join } ->
      W.uint8 w 1;
      W.varint w view_id;
      W.list w (fun w p -> W.varint w p) leave;
      W.list w (fun w p -> W.varint w p) join
  | Wpred { view_id; msgs } ->
      W.uint8 w 2;
      W.varint w view_id;
      W.list w (write_data pc) msgs
  | Wstable { floors } ->
      W.uint8 w 3;
      W.list w
        (fun w (sender, sn) ->
          W.varint w sender;
          W.varint w sn)
        floors
  | Wjoin { joiner } ->
      W.uint8 w 4;
      W.varint w joiner
  | Wsync { view; floors; app } ->
      W.uint8 w 5;
      write_view w view;
      W.list w
        (fun w (sender, sn) ->
          W.varint w sender;
          W.varint w sn)
        floors;
      (match app with
      | None -> W.uint8 w 0
      | Some s ->
          W.uint8 w 1;
          W.bytes w s)

let read_wire pc r =
  match R.uint8 r with
  | 0 -> Wdata (read_data pc r)
  | 1 ->
      let view_id = R.varint r in
      let leave = R.list r R.varint in
      let join = R.list r R.varint in
      Winit { view_id; leave; join }
  | 2 ->
      let view_id = R.varint r in
      let msgs = R.list r (read_data pc) in
      Wpred { view_id; msgs }
  | 3 ->
      let floors =
        R.list r (fun r ->
            let sender = R.varint r in
            let sn = R.varint r in
            (sender, sn))
      in
      Wstable { floors }
  | 4 ->
      let joiner = R.varint r in
      Wjoin { joiner }
  | 5 ->
      let view = read_view r in
      let floors =
        R.list r (fun r ->
            let sender = R.varint r in
            let sn = R.varint r in
            (sender, sn))
      in
      let app =
        match R.uint8 r with
        | 0 -> None
        | 1 -> Some (R.bytes r)
        | n -> raise (Codec.Malformed (Printf.sprintf "sync app tag %d" n))
      in
      Wsync { view; floors; app }
  | n -> raise (Codec.Malformed (Printf.sprintf "wire tag %d" n))

let wire_to_string pc wire =
  let w = W.create () in
  write_wire pc w wire;
  W.contents w

let wire_of_string pc s = read_wire pc (R.of_string s)

let wire_size pc wire = Codec.encoded_size ~write:(write_wire pc) wire

let write_proposal pc w (p : 'p proposal) =
  write_view w p.next_view;
  W.list w (write_data pc) p.pred

let read_proposal pc r =
  let next_view = read_view r in
  let pred = R.list r (read_data pc) in
  { next_view; pred }

let proposal_size pc p = Codec.encoded_size ~write:(write_proposal pc) p
