module Msg_id = Svs_obs.Msg_id
module Annotation = Svs_obs.Annotation
module Purge_index = Svs_obs.Purge_index
module Metrics = Svs_telemetry.Metrics
module Trace = Svs_telemetry.Trace
open Types

let log_src = Logs.Src.create "svs.protocol" ~doc:"SVS protocol (Figure 1)"

module Log = (val Logs.src_log log_src : Logs.LOG)

type 'p entry = Edata of 'p data | Eview of View.t

(* Per-view-change bookkeeping (Figure 1's leave / global-pred /
   pred-received variables, instantiated for the current view only:
   older instances can never be consulted again because decisions for
   past views are discarded). *)
type 'p vc_state = {
  mutable leave : int list;
  mutable join : int list;
  mutable global_pred : 'p data Msg_id.Map.t;
  mutable pred_received : int list;
  mutable pred_sent : bool;
  mutable proposed : bool;
}

(* A process is a [Member] of its current view, [Joining] (waiting for
   a sponsor's SYNC after requesting admission), [Parked] (cut off from
   the primary component: it keeps its floors and durable state but
   neither multicasts, delivers, nor installs until the embedding
   rejoins it through JOIN/SYNC), or [Dead] (excluded, or created
   outside the initial view). *)
type status = Member | Joining | Parked | Dead

type recovery = { view_id : int; floors : (int * int) list; next_sn : int }

type 'p t = {
  me : int;
  semantic : bool;
  suspects : int -> bool;
  mutable cv : View.t;
  mutable blocked : bool;
  mutable status : status;
  mutable state_transfer : unit -> string option;
  mutable next_sn : int;
  (* Recovery could not prove the durable sequence lease intact (a
     salvaged WAL with damaged regions): on the next SYNC, bump
     [next_sn] above the group's floor for us as a second line of
     defence against reusing a number an earlier incarnation sent. *)
  mutable lease_uncertain : bool;
  to_deliver : 'p entry Dq.t;
  (* Purge indexes over the queued Edata entries (semantic mode only):
     inserting a message touches exactly the entries it can obsolete
     instead of sweeping the queue. *)
  pidx : 'p entry Dq.handle Purge_index.t;
  mutable delivered_this_view : 'p data list; (* reversed *)
  floors : (int, int) Hashtbl.t; (* sender -> highest accepted sn *)
  mutable vc : 'p vc_state option;
  stash : (int * 'p wire) Queue.t; (* future-view messages *)
  mutable outputs : 'p output list; (* reversed *)
  (* Stability tracking: the latest gossiped receive floors of every
     peer; messages at or below every member's floor are stable and can
     be dropped from the PRED bookkeeping. *)
  peer_floors : (int, (int, int) Hashtbl.t) Hashtbl.t;
  mutable trimmed : int;
  (* Telemetry. The purge counters split the old single total by the
     site of the purge (Figure 1's three shaded steps). [queued_data]
     mirrors the number of Edata entries in [to_deliver] so occupancy
     reads are O(1). *)
  tracer : Trace.t;
  clock : unit -> float;
  purged_multicast : Metrics.Counter.t;
  purged_receive : Metrics.Counter.t;
  purged_install : Metrics.Counter.t;
  occupancy : Metrics.Gauge.t;
  blocked_spans : Metrics.Histogram.t;
  parked_total : Metrics.Counter.t;
  mutable blocked_since : float;
  mutable queued_data : int;
}

let create ~me ~initial_view ?(semantic = true) ?(tracer = Trace.nop) ?metrics
    ?(clock = fun () -> 0.0) ~suspects () =
  let node_label = [ ("node", string_of_int me) ] in
  let counter site =
    match metrics with
    | None -> Metrics.Counter.detached ()
    | Some reg -> Metrics.counter reg ~labels:(("site", site) :: node_label) "svs_purged_total"
  in
  {
    me;
    semantic;
    suspects;
    cv = initial_view;
    blocked = false;
    status = (if View.mem me initial_view then Member else Dead);
    state_transfer = (fun () -> None);
    next_sn = 0;
    lease_uncertain = false;
    to_deliver = Dq.create ();
    pidx = Purge_index.create ();
    delivered_this_view = [];
    floors = Hashtbl.create 16;
    vc = None;
    stash = Queue.create ();
    outputs = [];
    peer_floors = Hashtbl.create 16;
    trimmed = 0;
    tracer;
    clock;
    purged_multicast = counter "multicast";
    purged_receive = counter "receive";
    purged_install = counter "install";
    occupancy =
      (match metrics with
      | None -> Metrics.Gauge.detached ()
      | Some reg -> Metrics.gauge reg ~labels:node_label "svs_buffer_occupancy");
    blocked_spans =
      (match metrics with
      | None -> Metrics.Histogram.detached ()
      | Some reg -> Metrics.histogram reg ~labels:node_label "svs_blocked_seconds");
    parked_total =
      (match metrics with
      | None -> Metrics.Counter.detached ()
      | Some reg -> Metrics.counter reg ~labels:node_label "svs_parked_total");
    blocked_since = 0.0;
    queued_data = 0;
  }

(* A joiner has no view yet: its placeholder current view holds only
   itself, with the last view it installed before crashing (so the
   stale-message guard still applies across restart) or [-1] for a
   fresh process. [recovery] restores the durable part of the state —
   delivery floors (dedup + FIFO across restart) and the next send
   sequence number (so no Msg_id is ever reused). *)
let create_joiner ~me ?recovery ?semantic ?tracer ?metrics ?clock ~suspects () =
  let view_id = match recovery with Some r -> r.view_id | None -> -1 in
  let t =
    create ~me
      ~initial_view:(View.make ~id:view_id ~members:[ me ])
      ?semantic ?tracer ?metrics ?clock ~suspects ()
  in
  t.status <- Joining;
  (match recovery with
  | None -> ()
  | Some r ->
      List.iter (fun (sender, sn) -> Hashtbl.replace t.floors sender sn) r.floors;
      t.next_sn <- r.next_sn);
  t

let me t = t.me

let current_view t = t.cv

let blocked t = t.blocked

let alive t = t.status = Member

let joining t = t.status = Joining

let parked t = t.status = Parked

(* Quorum loss: a view change could not assemble a majority of the
   previous view. The process freezes — no multicasts, no fresh
   deliveries, no installs — but keeps its floors, queue, and next_sn
   intact so the embedding can rejoin it through JOIN/SYNC as a new
   incarnation (the floors make re-entry duplicate-free). *)
let park t =
  if t.status = Member then begin
    if t.blocked then
      Metrics.Histogram.observe t.blocked_spans (t.clock () -. t.blocked_since);
    t.status <- Parked;
    t.vc <- None;
    Metrics.Counter.incr t.parked_total;
    Log.info (fun m -> m "p%d: parked (lost the primary component of %a)" t.me View.pp t.cv);
    if Trace.enabled t.tracer then
      Trace.emit t.tracer (Parked { node = t.me; view_id = t.cv.View.id })
  end

let set_state_transfer t f = t.state_transfer <- f

let mark_lease_uncertain t = t.lease_uncertain <- true

let floors t = Hashtbl.fold (fun sender sn acc -> (sender, sn) :: acc) t.floors []

let next_sn t = t.next_sn

let purge_counter t = function
  | Trace.At_multicast -> t.purged_multicast
  | Trace.At_receive -> t.purged_receive
  | Trace.At_install -> t.purged_install

let purged_at t site = Metrics.Counter.value (purge_counter t site)

let purged_count t =
  purged_at t Trace.At_multicast + purged_at t Trace.At_receive + purged_at t Trace.At_install

let blocked_spans t = t.blocked_spans

let to_deliver_length t = t.queued_data

let set_queued t n =
  t.queued_data <- n;
  Metrics.Gauge.set t.occupancy (float_of_int n)

(* Account one message dropped as obsolete at [site]. *)
let note_purged t ~site ~view_id (id : Msg_id.t) =
  Metrics.Counter.incr (purge_counter t site);
  if Trace.enabled t.tracer then
    Trace.emit t.tracer
      (Purge { node = t.me; view_id; at_step = site; sender = id.Msg_id.sender; sn = id.Msg_id.sn })

let emit t o = t.outputs <- o :: t.outputs

let take_outputs t =
  let outs = List.rev t.outputs in
  t.outputs <- [];
  outs

let floor_of t sender =
  match Hashtbl.find_opt t.floors sender with Some sn -> sn | None -> -1

let raise_floor t (id : Msg_id.t) =
  if id.sn > floor_of t id.sender then Hashtbl.replace t.floors id.sender id.sn

(* Incremental purge around a newly inserted message: with the queue
   already purged, only pairs involving [fresh] can newly match, and
   the indexes enumerate them directly — O(|predecessors|) probes
   instead of two queue sweeps. Both directions are checked because
   enumeration annotations can relate messages across senders in
   either queue order. *)
let purge_around t ~site (fresh : 'p data) fresh_handle =
  if t.semantic then begin
    let victims, drop_fresh =
      Purge_index.plan t.pidx ~view:fresh.view_id ~id:fresh.id ~ann:fresh.ann
    in
    let removed = ref 0 in
    List.iter
      (fun (v : _ Purge_index.victim) ->
        if Dq.remove t.to_deliver v.Purge_index.victim_handle then begin
          Purge_index.remove t.pidx ~view:fresh.view_id ~id:v.Purge_index.victim_id
            ~ann:v.Purge_index.victim_ann;
          incr removed;
          note_purged t ~site ~view_id:fresh.view_id v.Purge_index.victim_id
        end)
      victims;
    if drop_fresh then begin
      ignore (Dq.remove t.to_deliver fresh_handle : bool);
      incr removed;
      note_purged t ~site ~view_id:fresh.view_id fresh.id
    end
    else
      Purge_index.add t.pidx ~view:fresh.view_id ~id:fresh.id ~ann:fresh.ann fresh_handle
        ~seq:(Dq.handle_seq fresh_handle);
    if !removed > 0 then set_queued t (t.queued_data - !removed)
  end

(* Insert an accepted data message (t2 self-copy, t3 reception, or t7
   injection) and purge. *)
let accept t ~site (d : 'p data) =
  raise_floor t d.id;
  let h = Dq.push_back_h t.to_deliver (Edata d) in
  set_queued t (t.queued_data + 1);
  purge_around t ~site d h

let stable_floor t sender =
  List.fold_left
    (fun acc p ->
      let f =
        if p = t.me then floor_of t sender
        else
          match Hashtbl.find_opt t.peer_floors p with
          | None -> -1
          | Some tbl -> Option.value ~default:(-1) (Hashtbl.find_opt tbl sender)
      in
      Stdlib.min acc f)
    max_int t.cv.View.members

(* Single pass: count removals while filtering, and resolve each
   sender's stable floor (a fold over the membership) once instead of
   per message. *)
let trim_stable t =
  let floors : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let floor_for sender =
    match Hashtbl.find_opt floors sender with
    | Some f -> f
    | None ->
        let f = stable_floor t sender in
        Hashtbl.replace floors sender f;
        f
  in
  let removed = ref 0 in
  t.delivered_this_view <-
    List.filter
      (fun (d : 'p data) ->
        let keep = d.id.Msg_id.sn > floor_for d.id.Msg_id.sender in
        if not keep then begin
          incr removed;
          if Trace.enabled t.tracer then
            Trace.emit t.tracer
              (StableMsg { node = t.me; sender = d.id.Msg_id.sender; sn = d.id.Msg_id.sn })
        end;
        keep)
      t.delivered_this_view;
  t.trimmed <- t.trimmed + !removed

let stable_trimmed t = t.trimmed

let local_pred t =
  let from_queue =
    List.filter_map
      (function Edata d when d.view_id = t.cv.View.id -> Some d | Edata _ | Eview _ -> None)
      (Dq.to_list t.to_deliver)
  in
  List.rev_append t.delivered_this_view from_queue

let accepted_in_view = local_pred

let send_to_others t wire =
  List.iter (fun dst -> if dst <> t.me then emit t (Send { dst; wire })) t.cv.View.members

(* t7: once every unsuspected member's PRED arrived and they form a
   majority, propose ((pred-received \ leave) U join, global-pred).
   Members in the leave set are not awaited even when not locally
   suspected: the initiator is excluding them (crash suspicion or the
   slow-member escalation), and an alive-but-unresponsive laggard
   would otherwise stall the change at every member whose own link to
   it is healthy — its detector keeps seeing heartbeats, so it never
   suspects, never collects the laggard's PRED, and never proposes. *)
let try_propose t =
  match t.vc with
  | None -> ()
  | Some vc ->
      let have p = List.mem p vc.pred_received in
      let ready =
        vc.pred_sent && (not vc.proposed)
        && List.for_all
             (fun p -> t.suspects p || List.mem p vc.leave || have p)
             t.cv.View.members
        && List.length vc.pred_received >= View.majority t.cv
      in
      if ready then begin
        vc.proposed <- true;
        Log.debug (fun m ->
            m "p%d: t7 proposing view %d with %d members, %d pred msgs" t.me
              (t.cv.View.id + 1)
              (List.length vc.pred_received)
              (Msg_id.Map.cardinal vc.global_pred));
        let members = List.filter (fun p -> not (List.mem p vc.leave)) vc.pred_received in
        (* Joiners are admitted only if they are not current members:
           a member can never be excluded and readmitted in the same
           transition, so a rejoining process always shows a view-id
           gap in its install history (the checker keys on this). *)
        let joins =
          List.filter
            (fun p -> (not (View.mem p t.cv)) && not (List.mem p members))
            vc.join
        in
        let next_view = View.make ~id:(t.cv.View.id + 1) ~members:(members @ joins) in
        let pred =
          List.map snd (Msg_id.Map.bindings vc.global_pred)
          |> List.sort (fun a b -> Msg_id.compare a.id b.id)
        in
        emit t (Propose { view_id = t.cv.View.id; proposal = { next_view; pred } })
      end

let notify_suspicion_change t = if t.status = Member then try_propose t

let vc_state t =
  match t.vc with
  | Some vc -> vc
  | None ->
      let vc =
        {
          leave = [];
          join = [];
          global_pred = Msg_id.Map.empty;
          pred_received = [];
          pred_sent = false;
          proposed = false;
        }
      in
      t.vc <- Some vc;
      vc

let multicast t ?(ann = Annotation.Unrelated) payload =
  if t.status <> Member || not (View.mem t.me t.cv) then Error `Not_member
  else if t.blocked then Error `Blocked
  else begin
    let id = Msg_id.make ~sender:t.me ~sn:t.next_sn in
    t.next_sn <- t.next_sn + 1;
    let d = { id; view_id = t.cv.View.id; payload; ann } in
    if Trace.enabled t.tracer then
      Trace.emit t.tracer (Multicast { node = t.me; view_id = d.view_id; sn = id.Msg_id.sn });
    send_to_others t (Wdata d);
    accept t ~site:Trace.At_multicast d;
    Ok d
  end

(* t5: first INIT for the current view. *)
let handle_init t ~src ~leave ~join =
  if not t.blocked then begin
    Log.debug (fun m ->
        m "p%d: view change for %a started by %d (leave: %d, join: %d)" t.me View.pp t.cv src
          (List.length leave) (List.length join));
    if src <> t.me then send_to_others t (Winit { view_id = t.cv.View.id; leave; join });
    t.blocked <- true;
    t.blocked_since <- t.clock ();
    if Trace.enabled t.tracer then
      Trace.emit t.tracer (Block { node = t.me; view_id = t.cv.View.id });
    let vc = vc_state t in
    vc.leave <- List.filter (fun p -> View.mem p t.cv) leave;
    vc.join <- List.sort_uniq compare (List.filter (fun p -> not (View.mem p t.cv)) join);
    let pred = local_pred t in
    send_to_others t (Wpred { view_id = t.cv.View.id; msgs = pred });
    (* Self-delivery of our own PRED (the paper sends it to all,
       including self). *)
    vc.global_pred <-
      List.fold_left (fun acc d -> Msg_id.Map.add d.id d acc) vc.global_pred pred;
    if not (List.mem t.me vc.pred_received) then
      vc.pred_received <- t.me :: vc.pred_received;
    vc.pred_sent <- true;
    try_propose t
  end

let handle_stable t ~src ~floors =
  if src <> t.me then begin
    let tbl =
      match Hashtbl.find_opt t.peer_floors src with
      | Some tbl -> tbl
      | None ->
          let tbl = Hashtbl.create 8 in
          Hashtbl.replace t.peer_floors src tbl;
          tbl
    in
    List.iter
      (fun (sender, sn) ->
        match Hashtbl.find_opt tbl sender with
        | Some old when old >= sn -> ()
        | Some _ | None -> Hashtbl.replace tbl sender sn)
      floors;
    trim_stable t
  end

let gossip_stability t =
  if t.status = Member && not t.blocked then begin
    let floors = Hashtbl.fold (fun sender sn acc -> (sender, sn) :: acc) t.floors [] in
    if floors <> [] then send_to_others t (Wstable { floors })
  end

(* t6. *)
let handle_pred t ~src ~msgs =
  let vc = vc_state t in
  vc.global_pred <-
    List.fold_left (fun acc d -> Msg_id.Map.add d.id d acc) vc.global_pred msgs;
  if not (List.mem src vc.pred_received) then vc.pred_received <- src :: vc.pred_received;
  try_propose t

(* t3. *)
let handle_data t (d : 'p data) =
  if not t.blocked then
    if d.id.Msg_id.sn <= floor_of t d.id.Msg_id.sender then ()
      (* duplicate (already accepted once) *)
    else begin
      (* The reverse index answers the cover test without scanning the
         queue: is some queued entry of this view newer than [d]? *)
      let covered =
        t.semantic && Purge_index.obsoleted t.pidx ~view:d.view_id ~id:d.id ~ann:d.ann
      in
      if covered then begin
        (* Already obsolete on arrival: account it as accepted (for
           FIFO floors) but never enqueue it. *)
        raise_floor t d.id;
        note_purged t ~site:Trace.At_receive ~view_id:d.view_id d.id
      end
      else accept t ~site:Trace.At_receive d
    end

let trigger_view_change t ?(join = []) ~leave () =
  if t.status = Member && not t.blocked then begin
    let join = List.filter (fun p -> not (View.mem p t.cv)) join in
    send_to_others t (Winit { view_id = t.cv.View.id; leave; join });
    handle_init t ~src:t.me ~leave ~join
  end

(* A JOIN request reaches a member: start a view change admitting the
   joiner. Dropped while blocked or if the joiner is (still) a current
   member — the joiner keeps retrying, and a crashed incarnation that
   is still in the view gets excluded by suspicion first, so the
   readmitting transition is never the excluding one. *)
let handle_join t ~joiner =
  if t.status = Member && (not t.blocked) && not (View.mem joiner t.cv) then
    trigger_view_change t ~join:[ joiner ] ~leave:[] ()

let join_request t ~contact =
  if t.status = Joining then begin
    emit t (Send { dst = contact; wire = Wjoin { joiner = t.me } });
    if Trace.enabled t.tracer then Trace.emit t.tracer (Join { node = t.me; contact })
  end

let wire_view_id = function
  | Wdata d -> d.view_id
  | Winit { view_id; _ } | Wpred { view_id; _ } -> view_id
  | Wstable _ | Wjoin _ | Wsync _ -> assert false

let rec receive t ~src wire =
  match t.status with
  | Dead | Parked -> ()
  | Joining -> (
      match wire with
      | Wsync { view; floors; app } -> handle_sync t ~src ~view ~floors ~app
      | Wdata _ | Winit _ | Wpred _ ->
          (* INIT/PRED/DATA of the admitting view can arrive from other
             members before the sponsor's SYNC: stash and replay them
             once synced. Anything older than the last view installed
             before the crash is stale. *)
          if wire_view_id wire > t.cv.View.id then Queue.add (src, wire) t.stash
      | Wstable _ | Wjoin _ -> ())
  | Member -> (
      match wire with
      | Wstable { floors } -> handle_stable t ~src ~floors
      | Wjoin { joiner } -> handle_join t ~joiner
      | Wsync _ -> () (* only meaningful while joining *)
      | Wdata _ | Winit _ | Wpred _ ->
          let view_id = wire_view_id wire in
          if view_id < t.cv.View.id then () (* stale: superseded by the agreed pred set *)
          else if view_id > t.cv.View.id then Queue.add (src, wire) t.stash
          else (
            match wire with
            | Wdata d -> handle_data t d
            | Winit { leave; join; _ } -> handle_init t ~src ~leave ~join
            | Wpred { msgs; _ } -> handle_pred t ~src ~msgs
            | Wstable _ | Wjoin _ | Wsync _ -> assert false))

(* The sponsor's SYNC: adopt the new view and the sponsor's delivery
   floors (sequence numbers are never reused, so a floor can only
   suppress pre-view duplicates, never a message of the new view), and
   surface the transferred application state. *)
and handle_sync t ~src ~view ~floors ~app =
  if t.status = Joining && View.mem t.me view && view.View.id > t.cv.View.id then begin
    Log.info (fun m -> m "p%d: synced into %a by %d" t.me View.pp view src);
    List.iter
      (fun (sender, sn) -> if sn > floor_of t sender then Hashtbl.replace t.floors sender sn)
      floors;
    (* A joiner recovering from a damaged log may carry a rolled-back
       sequence counter; the group's floor for us bounds every number
       an earlier incarnation put on the wire that the group has fully
       delivered, so starting above it is a second line of defence for
       "never reuse a sequence number" when the durable lease could not
       be proven intact. Only applied when the embedding flagged the
       lease as uncertain — an unconditional bump would silently mask
       genuine amnesia (a node restarting without its log), which must
       stay detectable. *)
    if t.lease_uncertain then begin
      if floor_of t t.me + 1 > t.next_sn then t.next_sn <- floor_of t t.me + 1;
      t.lease_uncertain <- false
    end;
    Dq.push_back t.to_deliver (Eview view);
    t.cv <- view;
    t.status <- Member;
    t.blocked <- false;
    t.vc <- None;
    t.delivered_this_view <- [];
    if Trace.enabled t.tracer then begin
      Trace.emit t.tracer
        (StateTransfer
           {
             node = t.me;
             peer = src;
             bytes = (match app with None -> 0 | Some s -> String.length s);
           });
      Trace.emit t.tracer
        (ViewInstall { node = t.me; view_id = view.View.id; members = view.View.members })
    end;
    emit t (Installed view);
    emit t (Synced { view; app });
    replay_stash t
  end

and replay_stash t =
  let pending = Queue.create () in
  Queue.transfer t.stash pending;
  Queue.iter (fun (src, wire) -> receive t ~src wire) pending

and decided t ~view_id (p : 'p proposal) =
  if t.status = Member && view_id = t.cv.View.id then begin
    if Trace.enabled t.tracer then
      Trace.emit t.tracer (ConsensusDecide { node = t.me; view_id });
    if View.mem t.me p.next_view then begin
      (* Inject agreed predecessors this process never accepted. The
         floor check both deduplicates and preserves per-sender FIFO:
         anything at or below the floor was accepted before (then
         delivered or purged under a cover). *)
      List.iter
        (fun (d : 'p data) ->
          if d.view_id = t.cv.View.id && d.id.Msg_id.sn > floor_of t d.id.Msg_id.sender
          then accept t ~site:Trace.At_install d)
        p.pred;
      Log.info (fun m ->
          m "p%d: installing %a (injected pred, %d purged so far)" t.me View.pp p.next_view
            (purged_count t));
      (* Sponsor election for newcomers: the least-id member common to
         both views syncs each joiner. Computed before the install so
         the floors snapshot predates any message of the new view
         (stashed new-view traffic replays only below). *)
      let newcomers =
        List.filter (fun q -> not (View.mem q t.cv)) p.next_view.View.members
      in
      let is_sponsor =
        newcomers <> []
        && (match List.find_opt (fun q -> View.mem q t.cv) p.next_view.View.members with
           | Some q -> q = t.me
           | None -> false)
      in
      Dq.push_back t.to_deliver (Eview p.next_view);
      t.cv <- p.next_view;
      if t.blocked then begin
        Metrics.Histogram.observe t.blocked_spans (t.clock () -. t.blocked_since);
        if Trace.enabled t.tracer then
          Trace.emit t.tracer (Unblock { node = t.me; view_id = p.next_view.View.id })
      end;
      t.blocked <- false;
      t.vc <- None;
      t.delivered_this_view <- [];
      if Trace.enabled t.tracer then
        Trace.emit t.tracer
          (ViewInstall
             {
               node = t.me;
               view_id = p.next_view.View.id;
               members = p.next_view.View.members;
             });
      emit t (Installed p.next_view);
      if is_sponsor then begin
        let floors = Hashtbl.fold (fun sender sn acc -> (sender, sn) :: acc) t.floors [] in
        let app = t.state_transfer () in
        let bytes = match app with None -> 0 | Some s -> String.length s in
        List.iter
          (fun joiner ->
            Log.info (fun m -> m "p%d: syncing joiner %d into %a" t.me joiner View.pp t.cv);
            emit t (Send { dst = joiner; wire = Wsync { view = p.next_view; floors; app } });
            if Trace.enabled t.tracer then
              Trace.emit t.tracer (StateTransfer { node = t.me; peer = joiner; bytes }))
          newcomers
      end;
      replay_stash t
    end
    else begin
      Log.info (fun m -> m "p%d: excluded from %a" t.me View.pp p.next_view);
      t.status <- Dead;
      t.vc <- None;
      emit t (Excluded p.next_view)
    end
  end

let deliver t =
  if t.status = Parked then None
  else
  match Dq.pop_front t.to_deliver with
  | None -> None
  | Some (Eview v) -> Some (View_change v)
  | Some (Edata d) ->
      set_queued t (t.queued_data - 1);
      if t.semantic then Purge_index.remove t.pidx ~view:d.view_id ~id:d.id ~ann:d.ann;
      if d.view_id = t.cv.View.id then t.delivered_this_view <- d :: t.delivered_this_view;
      if Trace.enabled t.tracer then
        Trace.emit t.tracer
          (Deliver
             {
               node = t.me;
               view_id = d.view_id;
               sender = d.id.Msg_id.sender;
               sn = d.id.Msg_id.sn;
             });
      Some (Data d)

(* --- Model-checker support: canonical state digest (see MODELCHECK.md) ---

   A fingerprint of the behaviourally relevant protocol state: two
   processes with equal fingerprints react identically to every future
   input. Mutable containers are projected onto canonical pure shapes
   first — hashtables become sorted association lists, the deque
   becomes a front-to-back list — because their in-memory layout
   depends on insertion history, which differs between interleavings
   that reach the same logical state. Telemetry (counters, tracer,
   blocked spans, [trimmed]) is deliberately excluded: it never feeds
   back into a transition. *)

let buf_int b n =
  Buffer.add_string b (string_of_int n);
  Buffer.add_char b ';'

let buf_bool b v = Buffer.add_char b (if v then '1' else '0')

let buf_str b s =
  buf_int b (String.length s);
  Buffer.add_string b s

let buf_id b (id : Msg_id.t) =
  buf_int b id.sender;
  buf_int b id.sn

let buf_ann b = function
  | Annotation.Unrelated -> Buffer.add_char b 'U'
  | Annotation.Tag g ->
      Buffer.add_char b 'T';
      buf_int b g
  | Annotation.Enum ids ->
      Buffer.add_char b 'E';
      List.iter (buf_id b) ids
  | Annotation.Kenum bv ->
      Buffer.add_char b 'K';
      buf_int b (Svs_obs.Bitvec.k bv);
      buf_str b (Svs_obs.Bitvec.to_bytes bv)

let buf_view b (v : View.t) =
  buf_int b v.View.id;
  List.iter (buf_int b) v.View.members;
  Buffer.add_char b '|'

let buf_data ~payload b (d : _ data) =
  buf_id b d.id;
  buf_int b d.view_id;
  buf_str b (payload d.payload);
  buf_ann b d.ann

let buf_floors b floors =
  List.iter
    (fun (s, sn) ->
      buf_int b s;
      buf_int b sn)
    (List.sort compare floors)

let buf_wire ~payload b = function
  | Wdata d ->
      Buffer.add_char b 'D';
      buf_data ~payload b d
  | Winit { view_id; leave; join } ->
      Buffer.add_char b 'I';
      buf_int b view_id;
      List.iter (buf_int b) leave;
      Buffer.add_char b '|';
      List.iter (buf_int b) join
  | Wpred { view_id; msgs } ->
      Buffer.add_char b 'P';
      buf_int b view_id;
      List.iter (buf_data ~payload b) msgs
  | Wstable { floors } ->
      Buffer.add_char b 'S';
      buf_floors b floors
  | Wjoin { joiner } ->
      Buffer.add_char b 'J';
      buf_int b joiner
  | Wsync { view; floors; app } ->
      Buffer.add_char b 'Y';
      buf_view b view;
      buf_floors b floors;
      (match app with
      | None -> Buffer.add_char b '-'
      | Some s -> buf_str b s)

let mc_wire_digest ~payload wire =
  let b = Buffer.create 64 in
  buf_wire ~payload b wire;
  Digest.string (Buffer.contents b)

let mc_fingerprint ~payload t =
  let b = Buffer.create 256 in
  Buffer.add_char b
    (match t.status with Member -> 'M' | Joining -> 'J' | Parked -> 'P' | Dead -> 'X');
  buf_view b t.cv;
  buf_bool b t.blocked;
  buf_int b t.next_sn;
  buf_bool b t.lease_uncertain;
  Dq.iter
    (function
      | Edata d ->
          Buffer.add_char b 'd';
          buf_data ~payload b d
      | Eview v ->
          Buffer.add_char b 'v';
          buf_view b v)
    t.to_deliver;
  Buffer.add_char b '/';
  List.iter (buf_data ~payload b) t.delivered_this_view;
  Buffer.add_char b '/';
  buf_floors b (floors t);
  (match t.vc with
  | None -> Buffer.add_char b '-'
  | Some vc ->
      Buffer.add_char b 'C';
      List.iter (buf_int b) (List.sort compare vc.leave);
      Buffer.add_char b '|';
      List.iter (buf_int b) (List.sort compare vc.join);
      Buffer.add_char b '|';
      Msg_id.Map.iter
        (fun id d ->
          buf_id b id;
          buf_data ~payload b d)
        vc.global_pred;
      Buffer.add_char b '|';
      List.iter (buf_int b) (List.sort compare vc.pred_received);
      buf_bool b vc.pred_sent;
      buf_bool b vc.proposed);
  Buffer.add_char b '/';
  Queue.iter
    (fun (src, wire) ->
      buf_int b src;
      buf_wire ~payload b wire)
    t.stash;
  Buffer.add_char b '/';
  List.iter
    (fun (peer, tbl) ->
      buf_int b peer;
      buf_floors b (Hashtbl.fold (fun s sn acc -> (s, sn) :: acc) tbl []))
    (List.sort
       (fun (a, _) (b, _) -> compare (a : int) b)
       (Hashtbl.fold (fun p tbl acc -> (p, tbl) :: acc) t.peer_floors []));
  Buffer.add_char b '/';
  buf_int b (List.length t.outputs);
  Digest.string (Buffer.contents b)
