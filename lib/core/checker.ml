module Msg_id = Svs_obs.Msg_id
module Annotation = Svs_obs.Annotation

type meta = {
  id : Msg_id.t;
  ann : Annotation.t;
  view_id : int;
}

type pevent = Deliver of meta | Install of View.t

type t = {
  multicasts : (Msg_id.t, meta) Hashtbl.t;
  mutable multicast_order : meta list; (* reversed *)
  processes : (int, pevent list ref) Hashtbl.t; (* reversed logs *)
}

type violation =
  | Created of { p : int; id : Msg_id.t }
  | Duplicated of { p : int; id : Msg_id.t }
  | Fifo_order of { p : int; first : Msg_id.t; second : Msg_id.t }
  | Svs_hole of { p : int; q : int; view_id : int; missing : Msg_id.t }
  | Fifo_sr_hole of { p : int; view_id : int; missing : Msg_id.t; because : Msg_id.t }
  | View_disagreement of { p : int; q : int; view_id : int }
  | Vs_mismatch of { p : int; q : int; view_id : int; missing : Msg_id.t }
  | Split_brain of { p : int; view_id : int; prev_view_id : int }
  | Not_converged of { p : int; last_view_id : int; final_view_id : int }

let pp_violation ppf = function
  | Created { p; id } -> Format.fprintf ppf "process %d delivered never-multicast %a" p Msg_id.pp id
  | Duplicated { p; id } -> Format.fprintf ppf "process %d delivered %a twice" p Msg_id.pp id
  | Fifo_order { p; first; second } ->
      Format.fprintf ppf "process %d delivered %a before %a (FIFO violation)" p Msg_id.pp
        first Msg_id.pp second
  | Svs_hole { p; q; view_id; missing } ->
      Format.fprintf ppf
        "SVS: %a delivered by %d in view %d has no cover delivered by %d before its next \
         install"
        Msg_id.pp missing p view_id q
  | Fifo_sr_hole { p; view_id; missing; because } ->
      Format.fprintf ppf
        "FIFO-SR: process %d delivered %a in view %d but no cover of predecessor %a"
        p Msg_id.pp because view_id Msg_id.pp missing
  | View_disagreement { p; q; view_id } ->
      Format.fprintf ppf "processes %d and %d installed different memberships for view %d" p
        q view_id
  | Vs_mismatch { p; q; view_id; missing } ->
      Format.fprintf ppf
        "strict VS: %a delivered by %d in view %d but not by %d" Msg_id.pp missing p view_id
        q
  | Split_brain { p; view_id; prev_view_id } ->
      Format.fprintf ppf
        "split brain: view %d (installed by %d) shares no installer with the previous \
         primary view %d"
        view_id p prev_view_id
  | Not_converged { p; last_view_id; final_view_id } ->
      Format.fprintf ppf
        "not converged: process %d ended in view %d, not the final primary view %d" p
        last_view_id final_view_id

let violation_to_string v = Format.asprintf "%a" pp_violation v

let create () =
  { multicasts = Hashtbl.create 256; multicast_order = []; processes = Hashtbl.create 16 }

let record_multicast t meta =
  Hashtbl.replace t.multicasts meta.id meta;
  t.multicast_order <- meta :: t.multicast_order

let plog t p =
  match Hashtbl.find_opt t.processes p with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace t.processes p l;
      l

let record_delivery t ~p meta = plog t p := Deliver meta :: !(plog t p)

let record_install t ~p view = plog t p := Install view :: !(plog t p)

(* --- Obsolescence reachability over the transitive closure. --- *)

(* successors.(id) = messages that directly obsolete id. *)
let build_successors t =
  let succ : (Msg_id.t, Msg_id.t list ref) Hashtbl.t = Hashtbl.create 256 in
  let all = List.rev t.multicast_order in
  let note older newer =
    match Hashtbl.find_opt succ older.id with
    | Some l -> l := newer.id :: !l
    | None -> Hashtbl.replace succ older.id (ref [ newer.id ])
  in
  List.iter
    (fun older ->
      List.iter
        (fun newer ->
          if
            (not (Msg_id.equal older.id newer.id))
            && Annotation.obsoletes ~older:(older.id, older.ann) ~newer:(newer.id, newer.ann)
          then note older newer)
        all)
    all;
  fun id -> match Hashtbl.find_opt succ id with Some l -> !l | None -> []

(* [covered successors m targets]: does some m' with m ⊑* m' belong to
   [targets]? BFS over the closure. *)
let covered successors (id : Msg_id.t) targets =
  let visited = Hashtbl.create 16 in
  let rec bfs = function
    | [] -> false
    | x :: rest ->
        if Hashtbl.mem visited x then bfs rest
        else begin
          Hashtbl.replace visited x ();
          if Msg_id.Set.mem x targets then true else bfs (successors x @ rest)
        end
  in
  bfs [ id ]

(* --- Per-process view segmentation. --- *)

type segment = { view : View.t; deliveries : meta list (* in order *) }

(* Segments in order; a process's deliveries in segment i happen
   between installing segment i's view and the next install. *)
let segments_of events =
  let flush current acc =
    match current with
    | None -> acc
    | Some (view, ds) -> { view; deliveries = List.rev ds } :: acc
  in
  let rec split current acc = function
    | [] -> List.rev (flush current acc)
    | Install v :: rest -> split (Some (v, [])) (flush current acc) rest
    | Deliver _ :: _ when current = None ->
        invalid_arg "Checker: delivery recorded before the process's initial install"
    | Deliver m :: rest -> (
        match current with
        | None -> assert false
        | Some (view, ds) -> split (Some (view, m :: ds)) acc rest)
  in
  split None [] events

type recorded = Delivered of meta | Installed of View.t

let multicast_log t = List.rev t.multicast_order

let processes t =
  List.sort compare (Hashtbl.fold (fun p _ acc -> p :: acc) t.processes [])

let process_log t ~p =
  match Hashtbl.find_opt t.processes p with
  | None -> []
  | Some log ->
      List.rev_map (function Deliver m -> Delivered m | Install v -> Installed v) !log

let deliveries_in_view t ~p ~view_id =
  match Hashtbl.find_opt t.processes p with
  | None -> []
  | Some log ->
      let segs = segments_of (List.rev !log) in
      List.concat_map
        (fun s -> if s.view.View.id = view_id then s.deliveries else [])
        segs

(* --- Checks. --- *)

let check_integrity_and_fifo t violations =
  Hashtbl.iter
    (fun p log ->
      let seen = Hashtbl.create 64 in
      let last_sn = Hashtbl.create 16 in
      List.iter
        (function
          | Install _ -> ()
          | Deliver m ->
              if not (Hashtbl.mem t.multicasts m.id) then
                violations := Created { p; id = m.id } :: !violations;
              if Hashtbl.mem seen m.id then
                violations := Duplicated { p; id = m.id } :: !violations
              else Hashtbl.replace seen m.id ();
              (match Hashtbl.find_opt last_sn m.id.Msg_id.sender with
              | Some (prev_sn, prev_id) when m.id.Msg_id.sn <= prev_sn ->
                  violations :=
                    Fifo_order { p; first = prev_id; second = m.id } :: !violations
              | Some _ | None -> ());
              Hashtbl.replace last_sn m.id.Msg_id.sender (m.id.Msg_id.sn, m.id))
        (List.rev !log))
    t.processes

(* All (p, segments) pairs. *)
let all_segments t =
  Hashtbl.fold (fun p log acc -> (p, segments_of (List.rev !log)) :: acc) t.processes []

(* Deliveries of a process strictly before it installs the view with
   id [view_id] (i.e. everything in segments with a smaller view id). *)
let delivered_before segs ~view_id =
  List.fold_left
    (fun acc s ->
      if s.view.View.id < view_id then
        List.fold_left (fun acc m -> Msg_id.Set.add m.id acc) acc s.deliveries
      else acc)
    Msg_id.Set.empty segs

(* Only installs with consecutive view {e ids} form a pair: a
   rejoining process's log has a view-id gap at the crash (the
   readmitting view is at least two past the last one it installed),
   and the §4 contracts quantify over consecutive views of one
   incarnation, not across a crash. *)
let consecutive_pairs segs =
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        if b.view.View.id = a.view.View.id + 1 then (a, b) :: pairs rest
        else pairs rest
    | [ _ ] | [] -> []
  in
  pairs segs

(* Tag each segment with the view id at which its incarnation started:
   a view-id jump between consecutive installs marks a crash–rejoin
   boundary. *)
let incarnation_starts segs =
  let _, tagged =
    List.fold_left
      (fun (prev, acc) s ->
        let start =
          match prev with
          | Some (prev_id, start) when s.view.View.id = prev_id + 1 -> start
          | _ -> s.view.View.id
        in
        (Some (s.view.View.id, start), (s, start) :: acc))
      (None, []) segs
  in
  List.rev tagged

let check_view_agreement all violations =
  let by_id = Hashtbl.create 16 in
  List.iter
    (fun (p, segs) ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt by_id s.view.View.id with
          | None -> Hashtbl.replace by_id s.view.View.id (p, s.view)
          | Some (q, v) ->
              if not (View.equal v s.view) then
                violations := View_disagreement { p; q; view_id = s.view.View.id } :: !violations)
        segs)
    all

(* No split brain: every installed view of an execution belongs to one
   totally-ordered primary chain. With view agreement already enforced
   (one membership per id), the checkable residue is continuity:
   ordering the distinct installed views by id, every view must share
   at least one installer with its predecessor in the chain. A real
   transition always has such a witness — the surviving members install
   both views, and a SYNC-admitted joiner's view is also installed by
   its sponsor — whereas a minority that declares its own view after a
   partition has, by construction, installed none of the primary's
   views since the split. *)
let check_primary_chain all violations =
  let installers : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (p, segs) ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt installers s.view.View.id with
          | Some l -> if not (List.mem p !l) then l := p :: !l
          | None -> Hashtbl.replace installers s.view.View.id (ref [ p ]))
        segs)
    all;
  let ids = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) installers []) in
  let rec walk = function
    | u :: (v :: _ as rest) ->
        let iu = !(Hashtbl.find installers u) in
        let iv = !(Hashtbl.find installers v) in
        if not (List.exists (fun p -> List.mem p iu) iv) then
          violations :=
            Split_brain { p = List.hd iv; view_id = v; prev_view_id = u } :: !violations;
        walk rest
    | [ _ ] | [] -> ()
  in
  walk ids

let check_svs successors all violations =
  (* For p installing v_i and v_{i+1}: every m delivered by p in v_i
     must be covered at every q that installed both. *)
  List.iter
    (fun (p, psegs) ->
      List.iter
        (fun (si, sj) ->
          List.iter
            (fun (q, qsegs) ->
              if q <> p then
                let q_has_both =
                  List.exists (fun s -> s.view.View.id = si.view.View.id) qsegs
                  && List.exists (fun s -> s.view.View.id = sj.view.View.id) qsegs
                in
                if q_has_both then begin
                  let q_delivered = delivered_before qsegs ~view_id:sj.view.View.id in
                  List.iter
                    (fun m ->
                      if not (covered successors m.id q_delivered) then
                        violations :=
                          Svs_hole { p; q; view_id = si.view.View.id; missing = m.id }
                          :: !violations)
                    si.deliveries
                end)
            all)
        (consecutive_pairs psegs))
    all

let check_fifo_sr t successors all violations =
  (* Clause (ii): p installing v_i, v_{i+1} and delivering m' in v_i
     owes a cover for every same-sender predecessor m of m' — except
     predecessors multicast before p's current incarnation was
     readmitted (the sponsor's state transfer settles those: its
     delivery floors certify they were delivered or obsoleted on the
     group's behalf while p was down), and except predecessors
     multicast by an {e earlier incarnation of the sender} than m'.
     The clause quantifies over one sender incarnation: a message that
     died in flight when its sender was cut off — never delivered in
     any primary view before the sender rejoined as a fresh
     incarnation — carries no obligation (per-view agreement on
     anything actually delivered is enforced by {!check_svs}). *)
  let multicast_sns = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ (m : meta) ->
      let l =
        match Hashtbl.find_opt multicast_sns m.id.Msg_id.sender with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace multicast_sns m.id.Msg_id.sender l;
            l
      in
      l := m :: !l)
    t.multicasts;
  (* Greatest incarnation-start view id of [sender] at or below
     [view_id] — which incarnation of the sender a message multicast
     in [view_id] belongs to. *)
  let sender_starts = Hashtbl.create 16 in
  List.iter
    (fun (p, segs) ->
      Hashtbl.replace sender_starts p
        (List.sort_uniq compare (List.map snd (incarnation_starts segs))))
    all;
  let sender_incarnation sender view_id =
    match Hashtbl.find_opt sender_starts sender with
    | None -> 0
    | Some starts -> List.fold_left (fun acc s -> if s <= view_id then s else acc) 0 starts
  in
  List.iter
    (fun (p, psegs) ->
      let starts = Hashtbl.create 8 in
      List.iter
        (fun (s, start) -> Hashtbl.replace starts s.view.View.id start)
        (incarnation_starts psegs);
      List.iter
        (fun (si, sj) ->
          let incarnation_start =
            match Hashtbl.find_opt starts si.view.View.id with
            | Some s -> s
            | None -> assert false
          in
          let owed = delivered_before psegs ~view_id:sj.view.View.id in
          let owed =
            List.fold_left (fun acc m -> Msg_id.Set.add m.id acc) owed si.deliveries
          in
          (* Highest delivered sn per sender up to installing v_{i+1}. *)
          let max_sn = Hashtbl.create 8 in
          Msg_id.Set.iter
            (fun id ->
              let cur =
                match Hashtbl.find_opt max_sn id.Msg_id.sender with
                | Some sn -> sn
                | None -> -1
              in
              if id.Msg_id.sn > cur then Hashtbl.replace max_sn id.Msg_id.sender id.Msg_id.sn)
            owed;
          Hashtbl.iter
            (fun sender max ->
              match Hashtbl.find_opt multicast_sns sender with
              | None -> ()
              | Some metas ->
                  (* The incarnation of the witness (max-sn) message:
                     obligations reach back only within it. A delivered
                     message with no multicast record (a forged id from
                     a log mutation) pins the witness to the sender's
                     latest incarnation. *)
                  let witness_incarnation =
                    List.fold_left
                      (fun acc (m : meta) ->
                        if m.id.Msg_id.sn = max then sender_incarnation sender m.view_id
                        else acc)
                      (sender_incarnation sender max_int)
                      !metas
                  in
                  List.iter
                    (fun (m : meta) ->
                      if
                        m.view_id >= incarnation_start
                        && sender_incarnation sender m.view_id = witness_incarnation
                        && m.id.Msg_id.sn < max
                        && not (covered successors m.id owed)
                      then
                        violations :=
                          Fifo_sr_hole
                            {
                              p;
                              view_id = si.view.View.id;
                              missing = m.id;
                              because = Msg_id.make ~sender ~sn:max;
                            }
                          :: !violations)
                    !metas)
            max_sn)
        (consecutive_pairs psegs))
    all

let verify t =
  let violations = ref [] in
  check_integrity_and_fifo t violations;
  let all = all_segments t in
  check_view_agreement all violations;
  check_primary_chain all violations;
  let successors = build_successors t in
  check_svs successors all violations;
  check_fifo_sr t successors all violations;
  List.rev !violations

(* Liveness after heal: every given process must have ended the run in
   the final primary view. Which processes to demand this of is the
   caller's knowledge (everyone that was not crashed at the end), not
   the log's, so it is a separate check from {!verify}. *)
let check_converged t ~survivors =
  let all = all_segments t in
  let final =
    List.fold_left
      (fun acc (_, segs) ->
        List.fold_left
          (fun acc s ->
            match acc with
            | Some (v : View.t) when v.View.id >= s.view.View.id -> acc
            | Some _ | None -> Some s.view)
          acc segs)
      None all
  in
  match final with
  | None -> []
  | Some fv ->
      List.filter_map
        (fun p ->
          let last =
            match List.assoc_opt p all with
            | None | Some [] -> -1
            | Some segs -> (List.nth segs (List.length segs - 1)).view.View.id
          in
          if last <> fv.View.id || not (View.mem p fv) then
            Some (Not_converged { p; last_view_id = last; final_view_id = fv.View.id })
          else None)
        (List.sort compare survivors)

let check_strict_vs all violations =
  List.iter
    (fun (p, psegs) ->
      List.iter
        (fun (si, sj) ->
          List.iter
            (fun (q, qsegs) ->
              if q <> p then
                let q_has_next =
                  List.exists (fun s -> s.view.View.id = sj.view.View.id) qsegs
                in
                match
                  List.find_opt (fun s -> s.view.View.id = si.view.View.id) qsegs
                with
                | Some qseg when q_has_next ->
                    let q_set =
                      List.fold_left
                        (fun acc m -> Msg_id.Set.add m.id acc)
                        Msg_id.Set.empty qseg.deliveries
                    in
                    List.iter
                      (fun m ->
                        if not (Msg_id.Set.mem m.id q_set) then
                          violations :=
                            Vs_mismatch
                              { p; q; view_id = si.view.View.id; missing = m.id }
                            :: !violations)
                      si.deliveries
                | Some _ | None -> ())
            all)
        (consecutive_pairs psegs))
    all

let verify_strict_vs t =
  let base = verify t in
  let violations = ref [] in
  check_strict_vs (all_segments t) violations;
  base @ List.rev !violations
