module Engine = Svs_sim.Engine
module Network = Svs_net.Network
module Latency = Svs_net.Latency
module Oracle = Svs_detector.Oracle
module Heartbeat = Svs_detector.Heartbeat
module Arbiter = Svs_consensus.Arbiter
module Ct = Svs_consensus.Chandra_toueg
module Metrics = Svs_telemetry.Metrics
module Trace = Svs_telemetry.Trace
open Types

type detector_mode =
  | Oracle
  | Heartbeats of Heartbeat.config

type consensus_mode =
  | Arbiter
  | Chandra_toueg

type overflow = {
  backlog_limit : int;
  patience : float;
  check_period : float;
}

(* Replicated-state divergence self-healing: members gossip a cheap
   digest of their replicated state every [period]; a quiescent member
   whose digest disagrees with a unanimous rest-of-view for [rounds]
   consecutive evaluations concludes it is the corrupt one and — with
   [heal] — self-demotes and rejoins through JOIN/SYNC with state
   transfer. [heal = false] detects (and counts) without demoting, for
   the inverted chaos self-check. *)
type divergence = {
  div_period : float;
  div_rounds : int;
  div_heal : bool;
}

type config = {
  semantic : bool;
  buffer_capacity : int option;
  detector : detector_mode;
  consensus : consensus_mode;
  auto_view_change : bool;
  stability_period : float option;
  overflow_exclusion : overflow option;
  park_timeout : float option;
  merge : bool;
  divergence : divergence option;
  shed : int option;
      (* Semantic shedding of backlogged network queues (paused
         inboxes, held links) once they exceed this many data
         messages, under the prefix-safe suffix rule; None disables
         (the queues grow without bound, the pre-flow-control
         behaviour). *)
  tracer : Trace.t;
  metrics : Metrics.t option;
}

let default_config =
  {
    semantic = true;
    buffer_capacity = None;
    detector = Oracle;
    consensus = Arbiter;
    auto_view_change = true;
    stability_period = None;
    overflow_exclusion = None;
    park_timeout = None;
    merge = true;
    divergence = None;
    shed = None;
    tracer = Trace.nop;
    metrics = None;
  }

type 'p packet =
  | Proto of 'p wire
  | Cons of { view_id : int; msg : 'p proposal Ct.msg }
  | Beat
  | Digest of { view_id : int; digest : int }

type 'p t = {
  me : int;
  cluster : 'p cluster;
  mutable proto : 'p Protocol.t; (* swapped for a fresh joiner on restart *)
  inbox : (int * 'p data) Queue.t;
  mutable hb : Heartbeat.t option;
  instances : (int, 'p proposal Ct.t) Hashtbl.t;
  cons_stash : (int, (int * 'p proposal Ct.msg) list ref) Hashtbl.t;
  mutable installed_cbs : (View.t -> unit) list;
  mutable excluded_cbs : (View.t -> unit) list;
  mutable synced_cbs : (View.t -> string option -> unit) list;
  mutable state_transfer : (unit -> string option) option;
  mutable crashed : bool;
  (* Park bookkeeping: when the member first became blocked in its
     current view (the park deadline measures from here), and when it
     parked (the merge-duration histogram measures from here). *)
  mutable blocked_obs : (int * float) option;
  mutable park_epoch : float option;
  merge_spans : Metrics.Histogram.t;
  (* Divergence bookkeeping: the application-state digest callback,
     the last digest every peer reported (with the view it reported
     for), the consecutive-disagreement streak, and whether a
     self-demotion is in flight. *)
  mutable digest_fn : (unit -> int) option;
  peer_digests : (int, int * int) Hashtbl.t;
  mutable div_streak : int;
  mutable div_last : (int * int) option;
  mutable heal_pending : bool;
}

and 'p cluster = {
  engine : Engine.t;
  net : 'p packet Network.t;
  config : config;
  check : Checker.t;
  oracle : Oracle.t option;
  mutable arbiter : 'p proposal Arbiter.t option;
  mutable member_list : 'p t list;
  mutable parked_events : int;
  mutable divergence_events : int;
}

let engine c = c.engine

let members c = c.member_list

let member c p =
  match List.find_opt (fun m -> m.me = p) c.member_list with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Group.member: no member %d" p)

let checker c = c.check

let id m = m.me

let view m = Protocol.current_view m.proto

let is_blocked m = Protocol.blocked m.proto

let is_member m = (not m.crashed) && Protocol.alive m.proto && View.mem m.me (view m)

let pending m = Protocol.to_deliver_length m.proto

let inbox m = Queue.length m.inbox

let inflight_from m ~src =
  Queue.fold (fun n (s, _) -> if s = src then n + 1 else n) 0 m.inbox

let purged m = Protocol.purged_count m.proto

let purged_at m site = Protocol.purged_at m.proto site

let tracer c = c.config.tracer

let metrics c = c.config.metrics

let stable_trimmed m = Protocol.stable_trimmed m.proto

let pred_size m = List.length (Protocol.accepted_in_view m.proto)

let is_joining m = (not m.crashed) && Protocol.joining m.proto

let is_parked m = (not m.crashed) && (Protocol.parked m.proto || m.park_epoch <> None)

let parked_events c = c.parked_events

let divergence_events c = c.divergence_events

let set_state_digest m f = m.digest_fn <- Some f

(* The digest compared by divergence gossip: everything a correct
   member's replicated state is a function of — installed view, merged
   delivery floors, and the application's own digest. *)
let member_digest m =
  let v = view m in
  let app = match m.digest_fn with Some f -> f () | None -> 0 in
  Hashtbl.hash (v.View.id, v.View.members, List.sort compare (Protocol.floors m.proto), app)

let on_installed m f = m.installed_cbs <- f :: m.installed_cbs

let on_excluded m f = m.excluded_cbs <- f :: m.excluded_cbs

let on_synced m f = m.synced_cbs <- f :: m.synced_cbs

let set_state_transfer m f =
  m.state_transfer <- Some f;
  Protocol.set_state_transfer m.proto f

let suspects m p =
  match (m.cluster.oracle, m.hb) with
  | Some o, _ -> Svs_detector.Oracle.suspects o p
  | None, Some hb -> Heartbeat.suspects hb p
  | None, None -> false

let suspected_set m =
  match (m.cluster.oracle, m.hb) with
  | Some o, _ -> Svs_detector.Oracle.suspected_set o
  | None, Some hb -> Heartbeat.suspected_set hb
  | None, None -> []

(* Room left in the bounded delivery queue. *)
let has_room m =
  match m.cluster.config.buffer_capacity with
  | None -> true
  | Some cap -> Protocol.to_deliver_length m.proto < cap

let rec drain m =
  let outs = Protocol.take_outputs m.proto in
  List.iter (handle_output m) outs;
  if outs <> [] then pump m

(* Feed held-back data into the protocol while the delivery queue has
   room (the paper's backpressure: a full node "ceases to accept
   further messages from the network"). *)
and pump m =
  if (not m.crashed) && (not (Queue.is_empty m.inbox)) && has_room m then begin
    let src, d = Queue.pop m.inbox in
    Protocol.receive m.proto ~src (Wdata d);
    drain m;
    pump m
  end

and handle_output m out =
  match out with
  | Send { dst; wire } -> Network.send m.cluster.net ~src:m.me ~dst (Proto wire)
  | Installed v -> List.iter (fun f -> f v) m.installed_cbs
  | Synced { view; app } ->
      (* The group just readmitted this incarnation, so every exclusion
         of the old one has long completed: any stale oracle suspicion
         (e.g. a written-off minority member whose deferred
         [unsuspect_when_excluded] check was raced by another member of
         the same parked set) must be lifted now, or the next suspicion
         event would spuriously exclude a node the group just voted
         back in. *)
      (match m.cluster.oracle with
      | Some o -> Svs_detector.Oracle.mark_recovered o m.me
      | None -> ());
      (match m.park_epoch with
      | None -> ()
      | Some t0 ->
          (* Merge-on-heal completed: the parked member is back in the
             primary component as a new incarnation. *)
          let dt = Engine.now m.cluster.engine -. t0 in
          m.park_epoch <- None;
          Metrics.Histogram.observe m.merge_spans dt;
          if Trace.enabled m.cluster.config.tracer then
            Trace.emit m.cluster.config.tracer
              (Trace.Merge
                 {
                   node = m.me;
                   view_id = view.View.id;
                   parked_ms = int_of_float (dt *. 1000.0);
                 }));
      List.iter (fun f -> f view app) m.synced_cbs
  | Excluded v ->
      retire m;
      List.iter (fun f -> f v) m.excluded_cbs
  | Propose { view_id; proposal } -> (
      match m.cluster.config.consensus with
      | Arbiter -> (
          match m.cluster.arbiter with
          | Some a -> Svs_consensus.Arbiter.propose a ~instance:view_id ~from:m.me proposal
          | None -> assert false)
      | Chandra_toueg -> start_instance m ~view_id proposal)

and start_instance m ~view_id proposal =
  if not (Hashtbl.mem m.instances view_id) then begin
    let members = (Protocol.current_view m.proto).View.members in
    let inst =
      Ct.create m.cluster.engine ~me:m.me ~members
        ~suspects:(fun p -> suspects m p)
        ~send:(fun ~dst msg -> Network.send m.cluster.net ~src:m.me ~dst (Cons { view_id; msg }))
        ~on_decide:(fun v ->
          Protocol.decided m.proto ~view_id v;
          drain m)
        proposal
    in
    Hashtbl.replace m.instances view_id inst;
    (match Hashtbl.find_opt m.cons_stash view_id with
    | None -> ()
    | Some stash ->
        let msgs = List.rev !stash in
        Hashtbl.remove m.cons_stash view_id;
        List.iter (fun (src, msg) -> Ct.on_message inst ~src msg) msgs);
    drain m
  end

and retire m =
  m.crashed <- true;
  (match m.hb with Some hb -> Heartbeat.stop hb | None -> ());
  Hashtbl.iter (fun _ inst -> Ct.stop inst) m.instances;
  Queue.clear m.inbox

let on_packet m ~src packet =
  if not m.crashed then
    match packet with
    | Beat -> ( match m.hb with Some hb -> Heartbeat.on_heartbeat hb ~src | None -> ())
    | Digest { view_id; digest } -> Hashtbl.replace m.peer_digests src (view_id, digest)
    | Proto (Wdata d) ->
        (* Note: this held-back backlog is NOT purged by the protocol's
           purge indexes. Purging an {e arbitrary} queued message here
           could lose its cover before either is accepted (the cover
           may be dropped as stale at the next view installation
           without ever entering any member's PRED set), violating
           FIFO semantic reliability. The network-level shedding
           ([config.shed]) is sound precisely because it refuses that
           generality: it removes only a contiguous newest-end run
           whose every victim is covered by a retained (or co-shed)
           newer message on the same stream, so any prefix the member
           can observe still ends in a cover. Anywhere-in-queue purging
           remains safe only in the accepted sets — the delivery queue
           (Purge_index) and the agreed pred. *)
        Queue.add (src, d) m.inbox;
        pump m
    | Proto wire ->
        Protocol.receive m.proto ~src wire;
        drain m
    | Cons { view_id; msg } -> (
        match Hashtbl.find_opt m.instances view_id with
        | Some inst ->
            Ct.on_message inst ~src msg;
            drain m
        | None ->
            if view_id >= (Protocol.current_view m.proto).View.id then begin
              let stash =
                match Hashtbl.find_opt m.cons_stash view_id with
                | Some s -> s
                | None ->
                    let s = ref [] in
                    Hashtbl.replace m.cons_stash view_id s;
                    s
              in
              stash := (src, msg) :: !stash
            end)

let on_suspicion m =
  if (not m.crashed) && Protocol.alive m.proto then begin
    Protocol.notify_suspicion_change m.proto;
    if m.cluster.config.auto_view_change then begin
      let leave = suspected_set m in
      if leave <> [] then Protocol.trigger_view_change m.proto ~leave ()
    end;
    drain m
  end

let multicast m ?ann payload =
  if m.crashed then Error `Not_member
  else
    match Protocol.multicast m.proto ?ann payload with
    | Error _ as e -> e
    | Ok d ->
        Checker.record_multicast m.cluster.check
          { Checker.id = d.id; ann = d.ann; view_id = d.view_id };
        drain m;
        Ok d

let deliver m =
  if m.crashed then None
  else
    match Protocol.deliver m.proto with
    | None -> None
    | Some (Data d) as r ->
        Checker.record_delivery m.cluster.check ~p:m.me
          { Checker.id = d.id; ann = d.ann; view_id = d.view_id };
        pump m;
        r
    | Some (View_change v) as r ->
        Checker.record_install m.cluster.check ~p:m.me v;
        pump m;
        r

let deliver_all m =
  let rec go acc =
    match deliver m with None -> List.rev acc | Some d -> go (d :: acc)
  in
  go []

let trigger_view_change m ?join ~leave () =
  if not m.crashed then begin
    Protocol.trigger_view_change m.proto ?join ~leave ();
    drain m
  end

let request_join m ~contact =
  if not m.crashed then begin
    Protocol.join_request m.proto ~contact;
    drain m
  end

let bytes_sent c = Network.bytes_sent c.net

let shed_total c = Network.shed_count c.net

let backlog c p = Network.inbox_data_length c.net ~node:p

let partition c a b = Network.disconnect c.net a b

let heal c a b = Network.reconnect c.net a b

(* Cross-product of pairwise disconnects between distinct sets: a group
   split. Links inside each set stay up. *)
let partition_sets c sets =
  let rec cross = function
    | [] -> ()
    | s :: rest ->
        let others = List.concat rest in
        List.iter (fun a -> List.iter (fun b -> partition c a b) others) s;
        cross rest
  in
  cross sets

let heal_sets c sets =
  let rec cross = function
    | [] -> ()
    | s :: rest ->
        let others = List.concat rest in
        List.iter (fun a -> List.iter (fun b -> heal c a b) others) s;
        cross rest
  in
  cross sets

let pause_receive c p = Network.pause_receive c.net ~node:p

let resume_receive c p = Network.resume_receive c.net ~node:p

let receive_paused c p = Network.receive_paused c.net ~node:p

let set_latency c latency = Network.set_latency c.net latency

let latency c = Network.latency c.net

let crash c p =
  let m = member c p in
  retire m;
  Network.crash c.net ~node:p;
  match c.oracle with Some o -> Svs_detector.Oracle.mark_crashed o p | None -> ()

(* A partition is invisible to the shared oracle detector (it has no
   vantage point), so set-based splits write the unreachable side off
   explicitly: suspicion only, network state untouched. Nodes that are
   not current members are skipped — a still-joining node from an
   earlier split is already cut off by the partition itself, and
   re-suspecting it would wedge its eventual readmission. Suspicion is
   cleared on the usual path: the parked member restarts as a joiner
   and [unsuspect_when_excluded] lifts the mark once no surviving view
   lists it. *)
let write_off c ps =
  match c.oracle with
  | None -> ()
  | Some o ->
      List.iter (fun p -> if is_member (member c p) then Oracle.mark_crashed o p) ps

(* With the perfect detector, a restarted node must stop being
   suspected — but only once every surviving member has moved past the
   view that still lists it, otherwise an in-flight exclusion change
   would wait forever for a PRED the new (joining, hence silent)
   incarnation will never send. *)
let unsuspect_when_excluded c p =
  match c.oracle with
  | None -> ()
  | Some o ->
      let still_listed () =
        List.exists
          (fun q -> q.me <> p && (not q.crashed) && View.mem p (view q))
          c.member_list
      in
      if not (still_listed ()) then Svs_detector.Oracle.mark_recovered o p
      else begin
        let done_ = ref false in
        List.iter
          (fun q ->
            if q.me <> p then
              on_installed q (fun _ ->
                  if (not !done_) && not (still_listed ()) then begin
                    done_ := true;
                    Svs_detector.Oracle.mark_recovered o p
                  end))
          c.member_list
      end

(* Restart a crashed (or excluded) process as a new incarnation that
   must be readmitted through the JOIN/SYNC path. With [recover], the
   durable slice of the dead incarnation's state — last installed view
   id, delivery floors, next sequence number — seeds the new protocol,
   standing in for what {!Svs_rt.Wal} provides on the real stack;
   without it the process comes back amnesiac (which the safety oracle
   duly flags once it reuses a sequence number). *)
let restart c p ~recover =
  let m = member c p in
  if is_member m || is_joining m then
    invalid_arg (Printf.sprintf "Group.restart: %d is still active" p);
  let config = c.config in
  let recovery =
    if recover then
      Some
        {
          Protocol.view_id = (Protocol.current_view m.proto).View.id;
          floors = Protocol.floors m.proto;
          next_sn = Protocol.next_sn m.proto;
        }
    else None
  in
  let proto =
    Protocol.create_joiner ~me:p ?recovery ~semantic:config.semantic ~tracer:config.tracer
      ?metrics:config.metrics ~clock:(Engine.clock c.engine)
      ~suspects:(fun q -> suspects m q)
      ()
  in
  (match m.state_transfer with
  | Some f -> Protocol.set_state_transfer proto f
  | None -> ());
  m.proto <- proto;
  Queue.clear m.inbox;
  Hashtbl.reset m.instances;
  Hashtbl.reset m.cons_stash;
  Hashtbl.reset m.peer_digests;
  m.div_streak <- 0;
  m.div_last <- None;
  m.crashed <- false;
  Network.revive c.net ~node:p;
  (match config.detector with
  | Oracle -> unsuspect_when_excluded c p
  | Heartbeats hb_config ->
      let ids = List.map (fun q -> q.me) c.member_list in
      let hb =
        Heartbeat.create c.engine hb_config ~me:p ~peers:ids
          ~send_heartbeat:(fun ~dst -> Network.send c.net ~src:p ~dst Beat)
      in
      let note_suspect q =
        if Trace.enabled config.tracer then
          Trace.emit config.tracer (Trace.Suspect { node = p; suspect = q })
      in
      Heartbeat.on_suspect hb (fun q ->
          note_suspect q;
          on_suspicion m);
      Heartbeat.on_rescind hb (fun _ -> on_suspicion m);
      m.hb <- Some hb)

(* Turn a member that has fallen out of the primary component back into
   a recovering joiner that probes every peer in turn: JOIN requests
   towards unreachable peers are held by partitioned links and
   delivered at the heal, so the merge (through the ordinary JOIN/SYNC
   path, with state transfer) is automatic. *)
let rejoin_via_probe c p =
  let m = member c p in
  restart c p ~recover:true;
  let contacts =
    List.filter_map (fun q -> if q.me <> p then Some q.me else None) c.member_list
  in
  let k = ref 0 in
  ignore
    (Engine.every c.engine ~period:0.25 (fun () ->
         if is_joining m then begin
           let contact = List.nth contacts (!k mod List.length contacts) in
           incr k;
           request_join m ~contact;
           true
         end
         else false)
      : Engine.handle)

(* Quorum loss: the park deadline expired with [p] still blocked in the
   same view change. The member leaves the group — no multicasts, no
   fresh deliveries, no installs — and, when merging is enabled, turns
   into a recovering joiner that probes for the primary component. *)
let park_member c p =
  let m = member c p in
  if is_member m then begin
    (match m.hb with
    | Some hb ->
        Heartbeat.stop hb;
        m.hb <- None
    | None -> ());
    Protocol.park m.proto;
    Hashtbl.iter (fun _ inst -> Ct.stop inst) m.instances;
    Hashtbl.reset m.instances;
    Hashtbl.reset m.cons_stash;
    Queue.clear m.inbox;
    m.blocked_obs <- None;
    m.park_epoch <- Some (Engine.now c.engine);
    c.parked_events <- c.parked_events + 1;
    if c.config.merge then rejoin_via_probe c p
  end

let packet_size pc packet =
  match packet with
  | Beat -> 4
  | Digest _ -> 12
  | Proto wire -> 8 + Wire_codec.wire_size pc wire
  | Cons { msg; _ } ->
      12 + Ct.msg_size ~value_size:(fun p -> Wire_codec.proposal_size pc p) msg

let create_cluster eng ~members:member_ids ?(latency = Latency.Zero) ?bandwidth
    ?payload_codec ?(manual_net = false) ?(config = default_config) () =
  if member_ids = [] then invalid_arg "Group.create_cluster: empty membership";
  let ids = List.sort_uniq compare member_ids in
  let n_nodes = List.fold_left Stdlib.max 0 ids + 1 in
  let sizer = Option.map (fun pc packet -> packet_size pc packet) payload_codec in
  let net = Network.create eng ~nodes:n_nodes ~latency ?bandwidth ?sizer ~manual:manual_net () in
  (* Telemetry: stamp trace events with virtual time and hook the
     substrate instruments into the registry. *)
  Trace.set_clock config.tracer (Engine.clock eng);
  (match config.metrics with
  | None -> ()
  | Some reg ->
      Engine.attach_metrics eng reg;
      Network.attach_metrics net reg);
  (* Semantic shedding of backlogged queues: only annotated DATA
     packets are candidates, covers must come from the same view, and
     the network applies the prefix-safe suffix rule per FIFO stream
     (see Network.shed_policy). Wdata frames travel sender → receiver
     directly, so the victim's sender is the shedding node. *)
  (match config.shed with
  | None -> ()
  | Some shed_limit ->
      Network.set_shed_policy net
        {
          Network.shed_limit;
          sheddable =
            (function
            | Proto (Wdata d) -> d.ann <> Types.Annotation.Unrelated
            | Proto _ | Cons _ | Beat | Digest _ -> false);
          obsoletes =
            (fun ~older ~newer ->
              match (older, newer) with
              | Proto (Wdata o), Proto (Wdata n) ->
                  o.view_id = n.view_id && obsoletes o n
              | _ -> false);
          on_shed =
            (fun ~dst packet ->
              match packet with
              | Proto (Wdata d) ->
                  if Trace.enabled config.tracer then
                    Trace.emit config.tracer
                      (Trace.Shed
                         {
                           node = d.id.Msg_id.sender;
                           peer = dst;
                           sender = d.id.Msg_id.sender;
                           sn = d.id.Msg_id.sn;
                         })
              | _ -> ());
        });
  let initial_view = View.initial ~members:ids in
  let oracle =
    match config.detector with
    | Oracle -> Some (Svs_detector.Oracle.create ~nodes:n_nodes)
    | Heartbeats _ -> None
  in
  let cluster =
    {
      engine = eng;
      net;
      config;
      check = Checker.create ();
      oracle;
      arbiter = None;
      member_list = [];
      parked_events = 0;
      divergence_events = 0;
    }
  in
  (match config.consensus with
  | Chandra_toueg -> ()
  | Arbiter ->
      let deliver ~dst ~instance value =
        match List.find_opt (fun m -> m.me = dst) cluster.member_list with
        | Some m when not m.crashed ->
            Protocol.decided m.proto ~view_id:instance value;
            drain m
        | Some _ | None -> ()
      in
      (* Quorum 1: the arbiter is a trusted decision service, and any
         single SVS proposal is already safe to adopt (its construction
         guarantees the pred set covers every proposed member's PRED),
         so deciding on the first proposal maximises liveness. *)
      cluster.arbiter <-
        Some (Svs_consensus.Arbiter.create eng ~members:ids ~quorum:1 ~deliver ()));
  let mk_member me =
    (* The protocol's failure-detector query needs the member record,
       which needs the protocol: tie the knot through a reference. *)
    let m_ref = ref None in
    let suspects_fn p = match !m_ref with Some m -> suspects m p | None -> false in
    let m =
      {
        me;
        cluster;
        proto =
          Protocol.create ~me ~initial_view ~semantic:config.semantic ~tracer:config.tracer
            ?metrics:config.metrics ~clock:(Engine.clock eng) ~suspects:suspects_fn ();
        inbox = Queue.create ();
        hb = None;
        instances = Hashtbl.create 7;
        cons_stash = Hashtbl.create 7;
        installed_cbs = [];
        excluded_cbs = [];
        synced_cbs = [];
        state_transfer = None;
        crashed = false;
        blocked_obs = None;
        park_epoch = None;
        digest_fn = None;
        peer_digests = Hashtbl.create 7;
        div_streak = 0;
        div_last = None;
        heal_pending = false;
        merge_spans =
          (match config.metrics with
          | None -> Metrics.Histogram.detached ()
          | Some reg ->
              Metrics.histogram reg
                ~labels:[ ("node", string_of_int me) ]
                "svs_merge_seconds");
      }
    in
    m_ref := Some m;
    m
  in
  let ms = List.map mk_member ids in
  cluster.member_list <- ms;
  (* Reconfiguration as a last resort (§3.2: "the lack of available
     buffer space at one or more processes" triggers a view change):
     a member whose network backlog stays above the limit for the
     whole patience window is expelled by the first healthy member. *)
  (match config.overflow_exclusion with
  | None -> ()
  | Some { backlog_limit; patience; check_period } ->
      let over_since : (int, float) Hashtbl.t = Hashtbl.create 8 in
      ignore
        (Engine.every eng ~period:check_period (fun () ->
             let now = Engine.now eng in
             List.iter
               (fun m ->
                 if is_member m && Queue.length m.inbox > backlog_limit then begin
                   if not (Hashtbl.mem over_since m.me) then Hashtbl.replace over_since m.me now;
                   let since = Hashtbl.find over_since m.me in
                   if now -. since >= patience then begin
                     match
                       List.find_opt
                         (fun p -> p.me <> m.me && is_member p && not (is_blocked p))
                         cluster.member_list
                     with
                     | Some initiator ->
                         Hashtbl.remove over_since m.me;
                         trigger_view_change initiator ~leave:[ m.me ] ()
                     | None -> ()
                   end
                 end
                 else Hashtbl.remove over_since m.me)
               cluster.member_list;
             true)
          : Engine.handle));
  (* Primary-component survival: a member still blocked in the same
     view change when the deadline expires has lost the majority — it
     parks (and, with [merge] on, starts probing to rejoin). The
     deadline is detector-driven: it only starts once a view change is
     actually underway, which under [auto_view_change] means the
     detector suspected someone. (Periodic checker: run the engine
     with a horizon.) *)
  (match config.park_timeout with
  | None -> ()
  | Some deadline ->
      let period = Float.max 0.01 (deadline /. 4.0) in
      ignore
        (Engine.every eng ~period (fun () ->
             let now = Engine.now eng in
             List.iter
               (fun m ->
                 if is_member m && is_blocked m then begin
                   let vid = (view m).View.id in
                   match m.blocked_obs with
                   | Some (v, t0) when v = vid ->
                       if now -. t0 >= deadline then park_member cluster m.me
                   | Some _ | None -> m.blocked_obs <- Some (vid, now)
                 end
                 else m.blocked_obs <- None)
               cluster.member_list;
             true)
          : Engine.handle));
  (match config.stability_period with
  | None -> ()
  | Some period ->
      ignore
        (Engine.every eng ~period (fun () ->
             List.iter
               (fun m ->
                 if not m.crashed then begin
                   Protocol.gossip_stability m.proto;
                   drain m
                 end)
               cluster.member_list;
             true)
          : Engine.handle));
  (* Divergence self-healing: digests gossip on one cadence, and are
     compared half a period later (so every peer's latest report had
     time to arrive). Evaluation is deliberately conservative — only a
     quiescent member (nothing queued or undelivered) whose digest
     disagrees with a {e unanimous} rest-of-view for [div_rounds]
     straight evaluations concludes {e it} is the corrupt one. *)
  (match config.divergence with
  | None -> ()
  | Some { div_period; div_rounds; div_heal } ->
      let quiescent m =
        is_member m && (not (is_blocked m))
        && Queue.is_empty m.inbox
        && Protocol.to_deliver_length m.proto = 0
      in
      let evaluate m =
        if m.heal_pending then begin
          (* The self-exclusion can race a concurrent view change and
             be dropped: keep nudging until it lands. *)
          if is_member m && not (is_blocked m) then
            trigger_view_change m ~leave:[ m.me ] ()
        end
        else if quiescent m then begin
          let vid = (view m).View.id in
          let others = List.filter (fun q -> q <> m.me) (view m).View.members in
          let reports =
            List.filter_map
              (fun q ->
                match Hashtbl.find_opt m.peer_digests q with
                | Some (v, d) when v = vid -> Some d
                | _ -> None)
              others
          in
          let mine = member_digest m in
          match reports with
          | d0 :: rest
            when others <> []
                 && List.length reports = List.length others
                 && List.for_all (fun d -> d = d0) rest
                 && d0 <> mine ->
              (* Only the *same* disagreement counts towards the
                 streak: in-flight traffic makes floors (and so
                 digests) drift between evaluations — a healthy member
                 momentarily behind its peers sees a different
                 disagreement each round, while a genuinely corrupt
                 quiescent replica freezes on one. *)
              (match m.div_last with
              | Some (pm, pd) when pm = mine && pd = d0 ->
                  m.div_streak <- m.div_streak + 1
              | Some _ | None ->
                  m.div_streak <- 1;
                  m.div_last <- Some (mine, d0));
              if m.div_streak >= div_rounds then begin
                m.div_streak <- 0;
                m.div_last <- None;
                cluster.divergence_events <- cluster.divergence_events + 1;
                if Trace.enabled config.tracer then
                  Trace.emit config.tracer (Trace.Divergence { node = m.me; view_id = vid });
                if div_heal then begin
                  m.heal_pending <- true;
                  trigger_view_change m ~leave:[ m.me ] ()
                end
              end
          | _ ->
              m.div_streak <- 0;
              m.div_last <- None
        end
        else begin
          m.div_streak <- 0;
          m.div_last <- None
        end
      in
      ignore
        (Engine.every eng ~period:div_period (fun () ->
             List.iter
               (fun m ->
                 if is_member m && not (is_blocked m) then begin
                   let d = Digest { view_id = (view m).View.id; digest = member_digest m } in
                   List.iter
                     (fun q -> if q <> m.me then Network.send net ~src:m.me ~dst:q d)
                     (view m).View.members
                 end)
               cluster.member_list;
             true)
          : Engine.handle);
      ignore
        (Engine.every eng ~start:(div_period /. 2.0) ~period:div_period (fun () ->
             List.iter evaluate cluster.member_list;
             true)
          : Engine.handle));
  List.iter
    (fun m ->
      Checker.record_install cluster.check ~p:m.me initial_view;
      Network.set_handler net ~node:m.me (fun ~src packet -> on_packet m ~src packet);
      let note_suspect p =
        if Trace.enabled config.tracer then
          Trace.emit config.tracer (Trace.Suspect { node = m.me; suspect = p })
      in
      (match config.detector with
      | Oracle -> (
          match oracle with
          | Some o ->
              Svs_detector.Oracle.on_suspect o (fun p ->
                  note_suspect p;
                  on_suspicion m)
          | None -> assert false)
      | Heartbeats hb_config ->
          let hb =
            Heartbeat.create eng hb_config ~me:m.me ~peers:ids
              ~send_heartbeat:(fun ~dst -> Network.send net ~src:m.me ~dst Beat)
          in
          Heartbeat.on_suspect hb (fun p ->
              note_suspect p;
              on_suspicion m);
          Heartbeat.on_rescind hb (fun _ -> on_suspicion m);
          m.hb <- Some hb);
      (* Primary-component mode: the park deadline can lose the race
         against the heal — the held consensus traffic then tells the
         cut-off member it was {e excluded} before the watchdog parks
         it. Either way it has fallen out of the primary component, so
         with merging on it comes back through the same probing-joiner
         path. (Deferred: [Excluded] fires mid-drain, and [restart]
         must not swap the protocol out under it.) *)
      if config.park_timeout <> None && config.merge then
        on_excluded m (fun _ ->
            ignore
              (Engine.schedule eng ~delay:0.0 (fun () ->
                   if not (is_member m || is_joining m) then rejoin_via_probe cluster m.me)
                : Engine.handle));
      (* Divergence healing: the self-demoted member's exclusion turns
         it straight into a probing joiner, so it re-syncs from a
         sponsor's state transfer. (Deferred, like the park hook:
         [Excluded] fires mid-drain.) *)
      (match config.divergence with
      | Some { div_heal = true; _ } ->
          on_excluded m (fun _ ->
              if m.heal_pending then
                ignore
                  (Engine.schedule eng ~delay:0.0 (fun () ->
                       if not (is_member m || is_joining m) then begin
                         m.heal_pending <- false;
                         rejoin_via_probe cluster m.me
                       end)
                    : Engine.handle));
          on_synced m (fun _ _ ->
              m.div_streak <- 0;
              m.div_last <- None;
              Hashtbl.reset m.peer_digests)
      | Some _ | None -> ()))
    ms;
  cluster

(* --- Model-checker control surface (see MODELCHECK.md) ---

   The cluster's network and packet type are private to this module,
   so the explorer's hooks live here: explicit link delivery (the
   network must be created with [manual_net]), in-flight inspection,
   and the canonical per-node / per-link / global state fingerprints
   the checker deduplicates visited states with. *)

let is_down m = m.crashed

let mc_inflight c ~src ~dst = Network.inflight c.net ~src ~dst

let mc_partitioned c ~src ~dst = Network.partitioned c.net ~src ~dst

let mc_deliver c ~src ~dst = Network.manual_deliver c.net ~src ~dst

let mc_head_is_data c ~src ~dst =
  match Network.peek_inflight c.net ~src ~dst with
  | Some (Proto (Wdata _)) -> true
  | Some (Proto _ | Cons _ | Beat | Digest _) | None -> false

let packet_digest ~payload = function
  | Proto wire -> "P" ^ Protocol.mc_wire_digest ~payload wire
  | Cons { view_id; _ } -> Printf.sprintf "C%d" view_id
  | Beat -> "B"
  | Digest { view_id; digest } -> Printf.sprintf "D%d:%d" view_id digest

let proposal_digest ~payload (p : 'p proposal) =
  let b = Buffer.create 64 in
  Buffer.add_string b (string_of_int p.next_view.View.id);
  List.iter (fun q -> Buffer.add_string b (":" ^ string_of_int q)) p.next_view.View.members;
  List.iter
    (fun d -> Buffer.add_string b (Protocol.mc_wire_digest ~payload (Wdata d)))
    p.pred;
  Digest.string (Buffer.contents b)

type mc_state = {
  mc_nodes : (int * string) list;
  mc_links : ((int * int) * string) list;
  mc_global : string;
}

let mc_node_fingerprint c ~payload p =
  let m = member c p in
  let b = Buffer.create 64 in
  Buffer.add_char b (if m.crashed then 'x' else 'o');
  Buffer.add_char b (if m.park_epoch <> None then 'p' else '-');
  Queue.iter
    (fun (src, d) ->
      Buffer.add_string b (string_of_int src);
      Buffer.add_string b (Protocol.mc_wire_digest ~payload (Wdata d)))
    m.inbox;
  Buffer.add_string b (Protocol.mc_fingerprint ~payload m.proto);
  Digest.string (Buffer.contents b)

let mc_link_fingerprint c ~payload ~src ~dst =
  let b = Buffer.create 64 in
  Buffer.add_char b (if Network.partitioned c.net ~src ~dst then 'c' else '-');
  Network.iter_inflight c.net ~src ~dst (fun pkt ->
      Buffer.add_string b (packet_digest ~payload pkt));
  Digest.string (Buffer.contents b)

let mc_global_fingerprint c ~payload =
  let b = Buffer.create 64 in
  (match c.oracle with
  | None -> ()
  | Some o ->
      List.iter
        (fun p -> Buffer.add_string b (string_of_int p ^ ","))
        (List.sort compare (Svs_detector.Oracle.suspected_set o)));
  Buffer.add_char b '/';
  (match c.arbiter with
  | None -> ()
  | Some a -> Buffer.add_string b (Arbiter.mc_fingerprint (proposal_digest ~payload) a));
  Buffer.add_char b '/';
  Buffer.add_string b (string_of_int (Engine.pending c.engine));
  Digest.string (Buffer.contents b)

let mc_state c ~payload =
  let nodes = List.map (fun m -> (m.me, mc_node_fingerprint c ~payload m.me)) c.member_list in
  let n = Network.size c.net in
  let links = ref [] in
  for src = n - 1 downto 0 do
    for dst = n - 1 downto 0 do
      if Network.inflight c.net ~src ~dst > 0 || Network.partitioned c.net ~src ~dst then
        links := ((src, dst), mc_link_fingerprint c ~payload ~src ~dst) :: !links
    done
  done;
  { mc_nodes = nodes; mc_links = !links; mc_global = mc_global_fingerprint c ~payload }
