(** The user-facing group-communication stack: SVS protocol + simulated
    network + failure detector + consensus, assembled per process.

    A {!cluster} owns the shared pieces (network, optional oracle
    detector, optional consensus arbiter) and one {!t} per member.
    Applications multicast with an obsolescence annotation and pull
    deliveries; view changes appear in the delivery stream as
    {!Types.View_change} markers, exactly as in the paper's interface
    (§3.2: "view changes are signaled to the application by delivering
    a special control message").

    Every multicast, delivery, and application-level view installation
    is recorded in the cluster's {!Checker.t}, so any scenario built on
    this module can assert the SVS safety properties afterwards. *)

type 'p t

type 'p cluster

type detector_mode =
  | Oracle  (** Perfect detector driven by {!crash}. *)
  | Heartbeats of Svs_detector.Heartbeat.config

type consensus_mode =
  | Arbiter  (** Centralised decision service ({!Svs_consensus.Arbiter}). *)
  | Chandra_toueg  (** The real ◇S consensus over the same network. *)

type overflow = {
  backlog_limit : int;  (** Held-back messages tolerated at a member. *)
  patience : float;  (** Seconds above the limit before expulsion. *)
  check_period : float;
}

(** Replicated-state divergence self-healing; see the [divergence]
    config field. *)
type divergence = {
  div_period : float;  (** Digest gossip (and evaluation) period. *)
  div_rounds : int;
      (** Consecutive disagreeing evaluations before self-demotion.
          Only the {e same} disagreement (both digests unchanged)
          extends the streak, so floor lag under in-flight traffic
          never convicts a healthy member. *)
  div_heal : bool;
      (** [true]: the divergent member self-demotes and rejoins via
          JOIN/SYNC with state transfer. [false]: detect and count
          only — the inverted chaos self-check. *)
}

type config = {
  semantic : bool;  (** Purge obsolete messages (false = plain VS). *)
  buffer_capacity : int option;
      (** Bound on the delivery queue; when reached the member stops
          accepting data from the network (control traffic still
          flows), exerting backpressure. *)
  detector : detector_mode;
  consensus : consensus_mode;
  auto_view_change : bool;
      (** Trigger a view change (leave = suspected set) on suspicion. *)
  stability_period : float option;
      (** When set, members gossip receive floors at this period and
          garbage-collect stable messages from the PRED bookkeeping
          (keeps view changes cheap on long-running groups). Note:
          periodic gossip keeps the engine's event queue non-empty, so
          run the engine with a horizon. *)
  overflow_exclusion : overflow option;
      (** Reconfiguration as a last resort (§3.2): expel a member whose
          backlog exceeds the limit for the whole patience window.
          With purging on, this fires only when obsolescence cannot
          absorb the perturbation — the paper's "if purging is not
          enough ... reconfiguration can still happen". (Periodic
          checker: run the engine with a horizon.) *)
  park_timeout : float option;
      (** Primary-component survival: a member still blocked in the
          same view change after this many (virtual) seconds has lost
          the majority of its view — it parks: stops multicasting,
          delivering and installing, keeping its floors intact. See
          {!is_parked}. Default [None] (a minority member blocks
          forever, the pre-partition-survival behaviour). (Periodic
          checker: run the engine with a horizon.) *)
  merge : bool;
      (** When [true] (default) a parked member immediately re-enters
          as a recovering joiner and probes for the primary component
          with JOIN requests at cycling contacts; partitioned links
          hold the probes, so the merge happens automatically at the
          heal. [false] leaves parked members parked — used by the
          chaos no-merge self-check. *)
  divergence : divergence option;
      (** When set, members gossip a cheap digest of their replicated
          state (installed view, merged floors, application digest via
          {!set_state_digest}) every [div_period]; a quiescent member
          whose digest disagrees with a unanimous rest-of-view for
          [div_rounds] consecutive evaluations concludes {e it} is the
          corrupt one, traced as [Divergence] and counted in
          {!divergence_events}. Default [None]. (Periodic gossip:
          run the engine with a horizon.) *)
  shed : int option;
      (** Semantic shedding of backlogged network queues (a paused
          member's inbox, a partitioned or manual-mode link): once a
          queue holds this many data messages, each newly queued
          annotated message sheds the contiguous newest-end run of
          same-stream, same-view messages it (transitively) obsoletes
          — the prefix-safe suffix rule (see
          {!Svs_net.Network.shed_policy}), the simulated counterpart
          of the runtime transport's flow control. Victims are traced
          as [Shed] and counted in {!shed_total}. Default [None]: no
          shedding, queues grow without bound. *)
  tracer : Svs_telemetry.Trace.t;
      (** Receives every member's trace events, stamped with virtual
          time (the cluster re-points the tracer's clock at the
          engine). Default {!Svs_telemetry.Trace.nop}. *)
  metrics : Svs_telemetry.Metrics.t option;
      (** When set, every member registers its per-node instruments
          here and the engine/network register theirs. *)
}

val default_config : config
(** semantic, unbounded buffer, oracle detector, arbiter consensus,
    auto view change, telemetry off. *)

val create_cluster :
  Svs_sim.Engine.t ->
  members:int list ->
  ?latency:Svs_net.Latency.t ->
  ?bandwidth:float ->
  ?payload_codec:'p Wire_codec.payload_codec ->
  ?manual_net:bool ->
  ?config:config ->
  unit ->
  'p cluster
(** With [bandwidth] (bytes/s) and [payload_codec], links serialise
    messages at their real encoded size, so view-change flushes and
    PRED exchanges take time proportional to what purging saved.
    [manual_net] (default false) creates the network in manual-delivery
    mode for the model checker: packets queue on their links until an
    explicit {!mc_deliver} — see the model-checker section below. *)

val engine : 'p cluster -> Svs_sim.Engine.t

val members : 'p cluster -> 'p t list

val member : 'p cluster -> int -> 'p t

val checker : 'p cluster -> Checker.t

val tracer : 'p cluster -> Svs_telemetry.Trace.t
(** The tracer from the cluster's config. *)

val metrics : 'p cluster -> Svs_telemetry.Metrics.t option
(** The metrics registry from the cluster's config. *)

val bytes_sent : 'p cluster -> int
(** Total wire bytes (0 unless a payload codec was supplied). *)

val shed_total : 'p cluster -> int
(** Messages semantically shed from backlogged network queues so far
    (0 unless [config.shed] is set). *)

val backlog : 'p cluster -> int -> int
(** Data messages queued at a member's paused receive side (sheddable
    entries only when [config.shed] is set — control traffic is
    excluded so overload budgets measure what shedding can touch). *)

val crash : 'p cluster -> int -> unit
(** Crash-stop a member: silenced on the network, marked at the oracle
    detector (if any). *)

val restart : 'p cluster -> int -> recover:bool -> unit
(** Bring a crashed or excluded member back as a new incarnation in
    the joining state: it takes part in the group again only after the
    JOIN/SYNC handshake readmits it (drive it with {!request_join}).
    With [recover:true] the durable slice of the old incarnation's
    protocol state (last installed view id, delivery floors, next
    sequence number) seeds the new one — the simulator's stand-in for
    the real stack's write-ahead log; with [recover:false] the process
    returns amnesiac, modelling a node that lost its log (the safety
    checker flags the resulting duplicate deliveries). Any
    {!set_state_transfer} callback is re-installed on the new
    incarnation. With the oracle detector, the restarted node stops
    being suspected once no surviving member's view lists it (never
    mid-exclusion, which would stall that view change). Raises
    [Invalid_argument] if the member is still active. *)

val request_join : 'p t -> contact:int -> unit
(** Ask [contact] to admit this (joining) member into the next view.
    Safe to call repeatedly — requests are dropped until a member can
    act on them — so callers should retry until {!is_joining} turns
    false. No-op unless joining. *)

val is_joining : 'p t -> bool
(** True between {!restart} and the SYNC that readmits the member. *)

val partition : 'p cluster -> int -> int -> unit
(** Disconnect the pair of members; messages between them are held (not
    lost — the system model's channels are reliable) until {!heal}. *)

val heal : 'p cluster -> int -> int -> unit

val partition_sets : 'p cluster -> int list list -> unit
(** Split the group: disconnect every pair of nodes that lie in two
    different sets (links within a set stay up). A set-based wrapper
    over {!partition}, so {!heal}/{!heal_sets} undo it pair by pair. *)

val heal_sets : 'p cluster -> int list list -> unit
(** Reconnect every cross-set pair of the given split. *)

val write_off : 'p cluster -> int list -> unit
(** Mark the given nodes crashed at the oracle detector {e without}
    touching the network — what a real detector on the other side of a
    partition would conclude about an unreachable set. Skips nodes
    that are not current members (re-suspecting a joiner would wedge
    its readmission) and is a no-op under heartbeat detection, where
    the partition starves heartbeats for real. Suspicion is lifted by
    the ordinary restart path once the node is excluded from every
    surviving view. *)

val park_member : 'p cluster -> int -> unit
(** Force the quorum-loss transition on a member (the park watchdog
    calls this when [park_timeout] expires; exposed for tests): the
    member {!Protocol.park}s, and if the config's [merge] is on it
    restarts as a recovering joiner probing for the primary component.
    No-op unless the member is currently active. *)

val is_parked : 'p t -> bool
(** True from the quorum-loss transition until the member is merged
    back into the primary component (immediately false again after the
    sponsor's SYNC readmits it). *)

val parked_events : 'p cluster -> int
(** How many quorum-loss transitions happened in this cluster. *)

val set_state_digest : 'p t -> (unit -> int) -> unit
(** Application-state digest callback, folded into this member's
    divergence gossip (see the [divergence] config field). Survives
    {!restart}. *)

val divergence_events : 'p cluster -> int
(** How many divergence detections (self-demotions when healing is on)
    happened in this cluster. *)

val pause_receive : 'p cluster -> int -> unit
(** Freeze a member's receive side: inbound packets (data, control,
    heartbeats, consensus) queue at the network instead of being
    handled — the chaos model of a stalled process that is still
    running. {!resume_receive} drains the queue in order. *)

val resume_receive : 'p cluster -> int -> unit

val receive_paused : 'p cluster -> int -> bool

val set_latency : 'p cluster -> Svs_net.Latency.t -> unit
(** Swap the network's latency model (chaos latency spikes). *)

val latency : 'p cluster -> Svs_net.Latency.t

(** {1 Member operations} *)

val id : 'p t -> int

val view : 'p t -> View.t

val is_blocked : 'p t -> bool

val is_member : 'p t -> bool
(** False once excluded from the group or crashed. *)

val multicast :
  'p t ->
  ?ann:Svs_obs.Annotation.t ->
  'p ->
  ('p Types.data, [ `Blocked | `Not_member ]) result

val deliver : 'p t -> 'p Types.delivery option

val deliver_all : 'p t -> 'p Types.delivery list
(** Drain everything currently deliverable. *)

val pending : 'p t -> int
(** Data messages waiting in the delivery queue. *)

val inbox : 'p t -> int
(** Data messages held back by backpressure (network side). *)

val inflight_from : 'p t -> src:int -> int
(** Of {!inbox}, those sent by [src] — lets a producer model a bounded
    outgoing buffer towards a slow receiver. *)

val purged : 'p t -> int
(** Messages purged as obsolete at this member so far. *)

val purged_at : 'p t -> Svs_telemetry.Trace.site -> int
(** {!purged}, split by purge site (multicast / receive / install). *)

val stable_trimmed : 'p t -> int
(** Messages garbage-collected as stable at this member so far. *)

val pred_size : 'p t -> int
(** Size of the PRED set this member would currently send (unstable
    accepted messages of the view) — the view-change flush cost. *)

val trigger_view_change : 'p t -> ?join:int list -> leave:int list -> unit -> unit
(** The next view drops [leave] and admits [join] (default [[]]); see
    {!Protocol.trigger_view_change}. *)

val set_state_transfer : 'p t -> (unit -> string option) -> unit
(** Application-state snapshot callback, sent in the SYNC when this
    member sponsors a joiner; survives {!restart}. *)

val on_installed : 'p t -> (View.t -> unit) -> unit
(** Protocol-level installation (before the marker reaches the
    application); used to measure view-change latency. *)

val on_excluded : 'p t -> (View.t -> unit) -> unit

val on_synced : 'p t -> (View.t -> string option -> unit) -> unit
(** Fired when this member is readmitted by a sponsor's SYNC, with the
    installed view and the transferred application state (if any). *)

(** {1 Model-checker control surface}

    Used by {!Svs_mc} (see MODELCHECK.md). The cluster must have been
    created with [manual_net:true]: every packet then waits on its
    link until the explorer delivers it, so the interleaving is fully
    enumerable and in-flight traffic is part of the state
    fingerprint. *)

val is_down : 'p t -> bool
(** True between {!crash} (or exclusion) and {!restart}. *)

val mc_inflight : 'p cluster -> src:int -> dst:int -> int
(** Packets queued on the directed link. *)

val mc_partitioned : 'p cluster -> src:int -> dst:int -> bool

val mc_deliver : 'p cluster -> src:int -> dst:int -> bool
(** Deliver the head packet of the directed link (FIFO). [false] if
    the link is cut or empty. *)

val mc_head_is_data : 'p cluster -> src:int -> dst:int -> bool
(** Whether the packet {!mc_deliver} would hand over is an application
    DATA message — such deliveries to distinct destinations commute,
    which is what the explorer's partial-order reduction exploits;
    control traffic (view change, consensus, SYNC) does not. *)

type mc_state = {
  mc_nodes : (int * string) list;  (** member id, canonical digest *)
  mc_links : ((int * int) * string) list;
      (** (src, dst) for links that are cut or carry traffic *)
  mc_global : string;  (** detector + consensus + engine-queue digest *)
}

val mc_state : 'p cluster -> payload:('p -> string) -> mc_state
(** Canonical fingerprint of the whole cluster, split per node and per
    link so the explorer can diff consecutive states (the footprint of
    a transition) for its independence relation. [payload] must be an
    injective encoding of the payload type. *)
