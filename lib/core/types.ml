module Msg_id = Svs_obs.Msg_id
module Annotation = Svs_obs.Annotation

type 'p data = {
  id : Msg_id.t;
  view_id : int;
  payload : 'p;
  ann : Annotation.t;
}

let obsoletes older newer =
  Annotation.obsoletes ~older:(older.id, older.ann) ~newer:(newer.id, newer.ann)

let covers older newer =
  Annotation.covers ~older:(older.id, older.ann) ~newer:(newer.id, newer.ann)

type 'p delivery =
  | Data of 'p data
  | View_change of View.t

type 'p wire =
  | Wdata of 'p data
  | Winit of { view_id : int; leave : int list; join : int list }
  | Wpred of { view_id : int; msgs : 'p data list }
  | Wstable of { floors : (int * int) list }
  | Wjoin of { joiner : int }
  | Wsync of { view : View.t; floors : (int * int) list; app : string option }

type 'p proposal = {
  next_view : View.t;
  pred : 'p data list;
}

type 'p output =
  | Send of { dst : int; wire : 'p wire }
  | Propose of { view_id : int; proposal : 'p proposal }
  | Installed of View.t
  | Excluded of View.t
  | Synced of { view : View.t; app : string option }

let pp_data pp_payload ppf d =
  Format.fprintf ppf "[DATA %a v%d %a %a]" Msg_id.pp d.id d.view_id pp_payload d.payload
    Annotation.pp d.ann

let pp_wire pp_payload ppf = function
  | Wdata d -> pp_data pp_payload ppf d
  | Winit { view_id; leave; join } ->
      let pp_ids =
        Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
          Format.pp_print_int
      in
      Format.fprintf ppf "[INIT v%d leave={%a} join={%a}]" view_id pp_ids leave pp_ids join
  | Wpred { view_id; msgs } -> Format.fprintf ppf "[PRED v%d |%d msgs|]" view_id (List.length msgs)
  | Wstable { floors } -> Format.fprintf ppf "[STABLE |%d senders|]" (List.length floors)
  | Wjoin { joiner } -> Format.fprintf ppf "[JOIN %d]" joiner
  | Wsync { view; floors; app } ->
      Format.fprintf ppf "[SYNC %a |%d floors| app=%s]" View.pp view (List.length floors)
        (match app with None -> "-" | Some s -> string_of_int (String.length s) ^ "B")
