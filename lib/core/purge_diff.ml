module Msg_id = Svs_obs.Msg_id
module Annotation = Svs_obs.Annotation
module Purge_index = Svs_obs.Purge_index

type item = { view : int; id : Msg_id.t; ann : Annotation.t }

type op = Insert of item | Pop

let obsoletes a b = Annotation.obsoletes ~older:(a.id, a.ann) ~newer:(b.id, b.ann)

let pp_item ppf i = Format.fprintf ppf "%a@v%d:%a" Msg_id.pp i.id i.view Annotation.pp i.ann

module type ENGINE = sig
  type t

  val create : unit -> t

  val insert : t -> item -> Msg_id.t list
  (** Ids purged by this insert, in queue order, the dropped fresh
      message last if a queued entry obsoleted it. *)

  val pop : t -> item option

  val contents : t -> item list
end

(* The pre-index purge: push, then two full sweeps of the queue — the
   exact pairwise logic the protocol used, kept as the executable
   specification the indexed engine is checked against. *)
module Reference : ENGINE = struct
  type t = item Dq.t

  let create () : t = Dq.create ()

  let insert t fresh =
    Dq.push_back t fresh;
    let drop_fresh = ref false in
    Dq.iter
      (fun m ->
        if (not (Msg_id.equal m.id fresh.id)) && m.view = fresh.view && obsoletes fresh m then
          drop_fresh := true)
      t;
    let purged = ref [] in
    let keep m =
      let kept =
        if Msg_id.equal m.id fresh.id then not !drop_fresh
        else not (m.view = fresh.view && obsoletes m fresh)
      in
      if not kept then purged := m.id :: !purged;
      kept
    in
    ignore (Dq.filter_in_place keep t : int);
    List.rev !purged

  let pop t = Dq.pop_front t

  let contents t = Dq.to_list t
end

module Indexed : ENGINE = struct
  type t = { q : item Dq.t; idx : item Dq.handle Purge_index.t }

  let create () = { q = Dq.create (); idx = Purge_index.create () }

  let insert t fresh =
    let h = Dq.push_back_h t.q fresh in
    let victims, drop_fresh = Purge_index.plan t.idx ~view:fresh.view ~id:fresh.id ~ann:fresh.ann in
    let purged =
      List.map
        (fun (v : _ Purge_index.victim) ->
          ignore (Dq.remove t.q v.Purge_index.victim_handle : bool);
          Purge_index.remove t.idx ~view:fresh.view ~id:v.Purge_index.victim_id
            ~ann:v.Purge_index.victim_ann;
          v.Purge_index.victim_id)
        victims
    in
    if drop_fresh then begin
      ignore (Dq.remove t.q h : bool);
      purged @ [ fresh.id ]
    end
    else begin
      Purge_index.add t.idx ~view:fresh.view ~id:fresh.id ~ann:fresh.ann h
        ~seq:(Dq.handle_seq h);
      purged
    end

  let pop t =
    match Dq.pop_front t.q with
    | None -> None
    | Some m ->
        Purge_index.remove t.idx ~view:m.view ~id:m.id ~ann:m.ann;
        Some m

  let contents t = Dq.to_list t.q
end

type divergence = {
  at_op : int;
  reason : string;
}

let pp_ids ppf ids =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") Msg_id.pp)
    ids

let pp_items ppf items =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp_item)
    items

let agree ops =
  let r = Reference.create () and x = Indexed.create () in
  let fail at_op fmt = Format.kasprintf (fun reason -> Some { at_op; reason }) fmt in
  let rec step i = function
    | [] ->
        let rc = Reference.contents r and xc = Indexed.contents x in
        if rc <> xc then
          fail i "final queues differ: reference %a, indexed %a" pp_items rc pp_items xc
        else None
    | Insert it :: rest ->
        let rp = Reference.insert r it and xp = Indexed.insert x it in
        if rp <> xp then
          fail i "insert %a purged %a (reference) vs %a (indexed)" pp_item it pp_ids rp pp_ids
            xp
        else step (i + 1) rest
    | Pop :: rest ->
        let rv = Reference.pop r and xv = Indexed.pop x in
        if rv <> xv then
          fail i "pop returned %a (reference) vs %a (indexed)"
            (Format.pp_print_option pp_item) rv
            (Format.pp_print_option pp_item) xv
        else step (i + 1) rest
  in
  step 0 ops
