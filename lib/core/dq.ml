(* Ring buffer of boxed nodes. Boxing buys stable handles: an index
   (Purge_index) can retain a node and tombstone it in O(1) without
   shifting the ring, and compactions move node pointers, never nodes,
   so handles survive growth and rebuilds. *)

type 'a node = {
  mutable v : 'a option; (* None once removed (tombstone) *)
  seq : int;
}

type 'a handle = 'a node

type 'a t = {
  mutable data : 'a node option array;
  mutable head : int; (* index of front slot *)
  mutable slots : int; (* occupied slots: live nodes + tombstones *)
  mutable live : int;
  (* Queue order is ascending [seq]: front pushes count down from -1,
     back pushes count up from 0, so a front seq is always below every
     back seq and both sections stay sorted. *)
  mutable front_seq : int;
  mutable back_seq : int;
}

let create () =
  { data = Array.make 16 None; head = 0; slots = 0; live = 0; front_seq = -1; back_seq = 0 }

let length t = t.live

let is_empty t = t.live = 0

let capacity t = Array.length t.data

let index t i = (t.head + i) mod capacity t

let handle_seq (n : 'a handle) = n.seq

let handle_get (n : 'a handle) = n.v

(* Rebuild the ring into a fresh array of [ncap] slots, dropping every
   tombstone. Node records are reused, so handles stay valid. *)
let rebuild t ncap =
  let ndata = Array.make ncap None in
  let j = ref 0 in
  for i = 0 to t.slots - 1 do
    match t.data.(index t i) with
    | Some n when n.v <> None ->
        ndata.(!j) <- Some n;
        incr j
    | Some _ | None -> ()
  done;
  t.data <- ndata;
  t.head <- 0;
  t.slots <- !j

let grow t =
  if t.slots = capacity t then
    (* Full of live nodes: double. Half-dead: compacting in place frees
       enough slots, and the >= slots/2 tombstones paid for the pass. *)
    if 2 * t.live > capacity t then rebuild t (2 * capacity t) else rebuild t (capacity t)

let push_back_h t x =
  grow t;
  let n = { v = Some x; seq = t.back_seq } in
  t.back_seq <- t.back_seq + 1;
  t.data.(index t t.slots) <- Some n;
  t.slots <- t.slots + 1;
  t.live <- t.live + 1;
  n

let push_back t x = ignore (push_back_h t x : 'a handle)

let push_front_h t x =
  grow t;
  let n = { v = Some x; seq = t.front_seq } in
  t.front_seq <- t.front_seq - 1;
  t.head <- (t.head - 1 + capacity t) mod capacity t;
  t.data.(t.head) <- Some n;
  t.slots <- t.slots + 1;
  t.live <- t.live + 1;
  n

let push_front t x = ignore (push_front_h t x : 'a handle)

let remove t (n : 'a handle) =
  match n.v with
  | None -> false
  | Some _ ->
      n.v <- None;
      t.live <- t.live - 1;
      (* Keep tombstones a minority so traversals stay O(live). *)
      if t.slots >= 32 && t.slots > 2 * t.live then rebuild t (capacity t);
      true

let rec pop_front t =
  if t.slots = 0 then None
  else begin
    let slot = t.data.(t.head) in
    t.data.(t.head) <- None;
    t.head <- index t 1;
    t.slots <- t.slots - 1;
    match slot with
    | Some n -> (
        match n.v with
        | Some x ->
            n.v <- None;
            t.live <- t.live - 1;
            Some x
        | None -> pop_front t)
    | None -> assert false
  end

let rec peek_front t =
  if t.slots = 0 then None
  else
    match t.data.(t.head) with
    | Some n -> (
        match n.v with
        | Some _ as x -> x
        | None ->
            (* Shed the dead front slot; observably a no-op. *)
            t.data.(t.head) <- None;
            t.head <- index t 1;
            t.slots <- t.slots - 1;
            peek_front t)
    | None -> assert false

let get t i =
  if i < 0 || i >= t.live then invalid_arg "Dq.get: index out of bounds";
  let rec scan slot remaining =
    match t.data.(index t slot) with
    | Some n -> (
        match n.v with
        | Some x -> if remaining = 0 then x else scan (slot + 1) (remaining - 1)
        | None -> scan (slot + 1) remaining)
    | None -> assert false
  in
  scan 0 i

let iter f t =
  for i = 0 to t.slots - 1 do
    match t.data.(index t i) with
    | Some n -> ( match n.v with Some x -> f x | None -> ())
    | None -> assert false
  done

let exists p t =
  let rec scan i =
    i < t.slots
    &&
    match t.data.(index t i) with
    | Some n -> ( match n.v with Some x -> p x || scan (i + 1) | None -> scan (i + 1))
    | None -> assert false
  in
  scan 0

let filter_in_place p t =
  let removed = ref 0 in
  for i = 0 to t.slots - 1 do
    match t.data.(index t i) with
    | Some n -> (
        match n.v with
        | Some x ->
            if not (p x) then begin
              n.v <- None;
              incr removed
            end
        | None -> ())
    | None -> assert false
  done;
  t.live <- t.live - !removed;
  (* The pass was O(slots) anyway: compact all tombstones now. *)
  rebuild t (capacity t);
  !removed

let to_list t =
  let acc = ref [] in
  for i = t.slots - 1 downto 0 do
    match t.data.(index t i) with
    | Some n -> ( match n.v with Some x -> acc := x :: !acc | None -> ())
    | None -> assert false
  done;
  !acc

let clear t =
  (* Detach every node first so stale handles read as removed, then
     reuse the backing array — view changes must not throw away warmed
     capacity. *)
  for i = 0 to t.slots - 1 do
    match t.data.(index t i) with Some n -> n.v <- None | None -> ()
  done;
  Array.fill t.data 0 (Array.length t.data) None;
  t.head <- 0;
  t.slots <- 0;
  t.live <- 0
