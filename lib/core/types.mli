(** Shared message types of the SVS protocol (paper §3.2–3.3). *)

module Msg_id = Svs_obs.Msg_id
module Annotation = Svs_obs.Annotation

type 'p data = {
  id : Msg_id.t;
  view_id : int;  (** View in which the message was multicast. *)
  payload : 'p;
  ann : Annotation.t;  (** Obsolescence annotation (§4.2). *)
}

val obsoletes : 'p data -> 'p data -> bool
(** [obsoletes older newer] per the annotations. *)

val covers : 'p data -> 'p data -> bool

type 'p delivery =
  | Data of 'p data
  | View_change of View.t
      (** The paper's [VIEW] control message: everything delivered
          before it belongs to the previous view. *)

(** Wire messages: the paper's [DATA], [INIT] and [PRED], plus the
    [STABLE] gossip used for stability tracking (§2.1 notes that a
    message is kept "until it is known to be stable, i.e. received by
    all processes"; gossiping per-sender receive floors lets members
    garbage-collect stable messages from the PRED bookkeeping) and the
    [JOIN]/[SYNC] pair of the crash-recovery extension. *)
type 'p wire =
  | Wdata of 'p data
  | Winit of { view_id : int; leave : int list; join : int list }
  | Wpred of { view_id : int; msgs : 'p data list }
      (** The sender's accepted-to-deliver sequence for the view. *)
  | Wstable of { floors : (int * int) list }
      (** Per-sender highest contiguously received sequence number. *)
  | Wjoin of { joiner : int }
      (** A non-member asks the receiver to admit it to the next view. *)
  | Wsync of { view : View.t; floors : (int * int) list; app : string option }
      (** Sponsor-to-joiner state transfer: the newly installed view,
          the sponsor's per-sender delivery floors, and an opaque
          application-state snapshot. *)

type 'p proposal = {
  next_view : View.t;
  pred : 'p data list;
      (** Agreed messages to deliver before installing [next_view],
          sorted by (sender, sn). *)
}

type 'p output =
  | Send of { dst : int; wire : 'p wire }
  | Propose of { view_id : int; proposal : 'p proposal }
      (** Hand this proposal to the consensus service for the instance
          keyed by [view_id]. *)
  | Installed of View.t
  | Excluded of View.t
      (** Consensus removed this process from the group. *)
  | Synced of { view : View.t; app : string option }
      (** This (joining) process was readmitted by a sponsor's [SYNC];
          [app] is the transferred application state. Emitted right
          after the corresponding [Installed]. *)

val pp_data :
  (Format.formatter -> 'p -> unit) -> Format.formatter -> 'p data -> unit

val pp_wire :
  (Format.formatter -> 'p -> unit) -> Format.formatter -> 'p wire -> unit
