(** The Semantic View Synchrony protocol of the paper's Figure 1.

    One value of type ['p t] is a single process's protocol state. The
    module is transport- and consensus-agnostic: every transition that
    would send a message or start consensus instead pushes an
    {!Types.output} which the embedding (usually {!Group}) drains with
    {!take_outputs} and routes. Inputs are the paper's transitions:

    - t1 {!deliver} — the application pulls the next message;
    - t2 {!multicast} — the application sends, with an obsolescence
      annotation;
    - t3/t5/t6 {!receive} — a wire message ([DATA]/[INIT]/[PRED])
      arrives;
    - t4 {!trigger_view_change} — an external event requests removal
      of some members;
    - t7 completes through the consensus service: the [Propose] output
      carries the (next view, predecessor set) proposal and {!decided}
      feeds the decision back.

    Purging (the shaded steps of Figure 1) runs at multicast,
    reception, and view installation when [semantic] is on; with it off
    the protocol is the underlying conventional View Synchrony
    algorithm, which is also what an empty obsolescence relation
    yields. *)

type 'p t

type recovery = { view_id : int; floors : (int * int) list; next_sn : int }
(** The durable slice of a process's state, as recovered from a
    write-ahead log (or snapshotted by the simulator): the id of the
    last installed view, the per-sender delivery floors, and the next
    multicast sequence number. Restoring it across a restart is what
    keeps Integrity (no duplicate delivery, no Msg_id reuse) true
    under crash–recovery. *)

val create :
  me:int ->
  initial_view:View.t ->
  ?semantic:bool ->
  ?tracer:Svs_telemetry.Trace.t ->
  ?metrics:Svs_telemetry.Metrics.t ->
  ?clock:(unit -> float) ->
  suspects:(int -> bool) ->
  unit ->
  'p t
(** [semantic] defaults to [true]. [suspects] is the failure-detector
    query used by the t7 guard.

    Telemetry: [tracer] (default {!Svs_telemetry.Trace.nop}) receives
    the protocol's trace events — [Multicast], one [Purge] per purged
    message, [Block]/[Unblock], [ConsensusDecide], [ViewInstall]. When
    [metrics] is given, the process registers [svs_purged_total]
    (labelled [node] and [site] = [multicast]/[receive]/[install]), the
    [svs_buffer_occupancy] gauge, and the [svs_blocked_seconds] span
    histogram, all with O(1) hot-path updates; without it the same
    instruments exist detached, so instrumentation costs the same
    either way. [clock] (default constant [0.]) stamps blocked spans —
    pass virtual or wall time to match the embedding. *)

val create_joiner :
  me:int ->
  ?recovery:recovery ->
  ?semantic:bool ->
  ?tracer:Svs_telemetry.Trace.t ->
  ?metrics:Svs_telemetry.Metrics.t ->
  ?clock:(unit -> float) ->
  suspects:(int -> bool) ->
  unit ->
  'p t
(** A process outside the group that wants in: it starts {!joining}
    and becomes a member only when a sponsor's SYNC arrives (after some
    member admitted it via {!trigger_view_change}[ ~join] in response
    to its {!join_request}). Until then it holds a placeholder
    single-member view whose id is [recovery.view_id] (so pre-crash
    traffic is recognised as stale) or [-1] for a fresh process. *)

val joining : 'p t -> bool
(** True while waiting for a sponsor's SYNC. *)

val parked : 'p t -> bool
(** True after {!park}: the process lost the primary component. *)

val park : 'p t -> unit
(** Quorum loss: the embedding decided (on its detector-driven
    deadline) that the current view change cannot assemble a majority
    of the previous view. The process leaves the [Member] state and
    freezes — {!multicast} fails with [`Not_member], {!deliver} returns
    [None], {!receive} drops everything, and no view is ever installed
    — while its delivery floors, queue, and next sequence number stay
    intact. Re-entry goes through {!create_joiner} with a [recovery]
    built from this state (see {!floors}/{!next_sn}): the merge is a
    new incarnation over the JOIN/SYNC path, so Integrity holds across
    the partition. No-op unless currently a member. Traced as [Parked]
    and counted in [svs_parked_total]. *)

val join_request : 'p t -> contact:int -> unit
(** Ask [contact] (a presumed group member) to admit this process into
    the next view. Idempotent and retryable: requests that reach a
    blocked member, a non-member, or a view that still lists this
    process are dropped, so callers should retry (possibly cycling
    contacts) until no longer {!joining}. No-op unless {!joining}. *)

val set_state_transfer : 'p t -> (unit -> string option) -> unit
(** Install the application-state snapshot callback. When this process
    sponsors a joiner, the callback's result rides the SYNC message
    and surfaces at the joiner as {!Types.Synced}. Default: [None]. *)

val mark_lease_uncertain : 'p t -> unit
(** Tell a recovering joiner its durable sequence lease could not be
    proven intact (a salvaged WAL with damaged regions). On its next
    SYNC it additionally raises [next_sn] above the group's delivery
    floor for it, so no sequence number an earlier incarnation put on
    the wire — and the group fully delivered — can be reused. One-shot;
    cleared by the SYNC that consumes it. *)

val floors : 'p t -> (int * int) list
(** Per-sender delivery floors (highest accepted sequence number), the
    durable dedup state. Unordered. *)

val next_sn : 'p t -> int
(** The sequence number the next {!multicast} will use. *)

val me : 'p t -> int

val current_view : 'p t -> View.t

val blocked : 'p t -> bool
(** True while a view change is in progress (between the first [INIT]
    and the installation of the next view). *)

val alive : 'p t -> bool
(** False once the process has been excluded from the group, and while
    it is still {!joining} or {!parked}. *)

val to_deliver_length : 'p t -> int
(** Data messages queued for the application (excludes view markers). *)

val purged_count : 'p t -> int
(** Total messages purged as obsolete since creation (the sum of
    {!purged_at} over the three sites). *)

val purged_at : 'p t -> Svs_telemetry.Trace.site -> int
(** Messages purged at one of Figure 1's three purge sites: on local
    multicast, on reception, or on view installation. *)

val blocked_spans : 'p t -> Svs_telemetry.Metrics.Histogram.t
(** Durations (per {!create}'s [clock]) of completed blocked periods,
    from the first [INIT] to the next installation. *)

val multicast :
  'p t -> ?ann:Svs_obs.Annotation.t -> 'p -> ('p Types.data, [ `Blocked | `Not_member ]) result
(** t2. [ann] defaults to [Unrelated]. Fails while {!blocked} (the
    paper's guard: the application must retry after the view change)
    or when this process is not (or no longer) a group member. *)

val receive : 'p t -> src:int -> 'p Types.wire -> unit
(** t3/t5/t6 with the guard discipline of Figure 1: messages for past
    views are discarded, messages for future views are stashed and
    re-examined after the next installation. *)

val deliver : 'p t -> 'p Types.delivery option
(** t1. [None] when the queue is empty. *)

val trigger_view_change : 'p t -> ?join:int list -> leave:int list -> unit -> unit
(** t4, extended with admissions: the next view drops [leave] and adds
    [join] (default [[]]). Joiners that are already current members are
    ignored — exclusion and readmission can never share a transition,
    so a rejoining process always re-enters with a view-id gap. The
    least-id surviving member sponsors each admitted joiner with a
    SYNC (view, floors, application state) once the change decides.
    Ignored while already {!blocked}. *)

val notify_suspicion_change : 'p t -> unit
(** Re-evaluate the t7 guard after the failure detector changed. *)

val decided : 'p t -> view_id:int -> 'p Types.proposal -> unit
(** Consensus decision for the view-change instance [view_id]. *)

val take_outputs : 'p t -> 'p Types.output list
(** Drain pending outputs, oldest first. *)

val gossip_stability : 'p t -> unit
(** Broadcast this process's per-sender receive floors ([STABLE]).
    When every member's floor covers a delivered message, it is stable
    and dropped from the PRED bookkeeping, keeping view changes cheap.
    Call periodically; a no-op while blocked. *)

val stable_trimmed : 'p t -> int
(** Delivered messages garbage-collected as stable so far. *)

val accepted_in_view : 'p t -> 'p Types.data list
(** The local-pred sequence (messages of the current view accepted so
    far, in order) — what t5 would send; exposed for tests. *)

(** {1 Model-checker support} *)

val mc_fingerprint : payload:('p -> string) -> 'p t -> string
(** A canonical digest of the behaviourally relevant protocol state:
    two processes with equal fingerprints react identically to every
    future input. Mutable containers are projected onto sorted pure
    shapes first, so two interleavings reaching the same logical state
    fingerprint equal regardless of insertion history; telemetry is
    excluded. [payload] must be an injective encoding of the payload
    type. Used by {!Svs_mc} for visited-state deduplication (see
    MODELCHECK.md). *)

val mc_wire_digest : payload:('p -> string) -> 'p Types.wire -> string
(** Canonical digest of one wire message — the in-flight half of the
    model checker's state fingerprint. *)
