(** Resizable ring-buffer deque with stable entry handles.

    Backs the protocol's [to-deliver] queue: O(1) amortised push/pop at
    both ends, plus O(1) removal by handle, which is what the indexed
    purge needs. Removal tombstones the entry in place (no shifting);
    traversals skip tombstones and compactions reclaim them lazily, so
    every operation stays O(1) amortised and handles stay valid across
    growth and compaction. *)

type 'a t

type 'a handle
(** A stable reference to one pushed entry of one queue. Valid for
    {!remove} until the entry leaves the queue (by {!remove},
    {!pop_front}, {!filter_in_place} or {!clear}); after that the
    handle reads as removed. Never pass a handle to a queue other than
    the one that issued it. *)

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit

val push_front : 'a t -> 'a -> unit

val push_back_h : 'a t -> 'a -> 'a handle

val push_front_h : 'a t -> 'a -> 'a handle

val remove : 'a t -> 'a handle -> bool
(** O(1) amortised removal of the entry behind the handle, preserving
    the order of the others. Returns [false] (and does nothing) if the
    entry already left the queue. *)

val handle_seq : 'a handle -> int
(** Queue order is ascending [handle_seq] among entries alive at the
    same time, so callers can sort removal batches front-to-back. *)

val handle_get : 'a handle -> 'a option
(** The entry's value, or [None] once it left the queue. *)

val pop_front : 'a t -> 'a option

val peek_front : 'a t -> 'a option

val get : 'a t -> int -> 'a
(** [get t i] is the i-th element from the front (0-based). O(n): for
    tests and debugging, not the hot path. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Front to back. *)

val exists : ('a -> bool) -> 'a t -> bool

val filter_in_place : ('a -> bool) -> 'a t -> int
(** Keeps elements satisfying the predicate, preserving order; returns
    the number removed. *)

val to_list : 'a t -> 'a list

val clear : 'a t -> unit
(** Empties the queue, detaching outstanding handles. Reuses the
    backing array: capacity warmed by past traffic survives view
    changes. *)
