(** Execution-trace oracle for the paper's §3.2 safety properties.

    Tests record every multicast, delivery and view installation of an
    execution; {!verify} then checks:

    - {b Integrity}: no creation (every delivered message was
      multicast), no duplication (per process).
    - {b FIFO} (clause i of FIFO Semantic Reliability): per process and
      per sender, deliveries occur in strictly increasing sequence
      order.
    - {b Semantic View Synchrony}: if [p] installs consecutive views
      [v_i], [v_{i+1}] and delivers [m] in [v_i], every process [q]
      installing both views delivers some [m'] with [m ⊑ m'] before
      installing [v_{i+1}].
    - {b FIFO Semantic Reliability} (clause ii): if [p] installs both
      views and delivers [m'] in [v_i], then for every message [m]
      multicast before [m'] by the same sender, [p] delivers some
      [m''] with [m ⊑ m''] before installing [v_{i+1}].
    - {b View agreement}: processes installing the same view number
      agree on its membership.
    - {b No split brain}: the installed views form a single
      totally-ordered primary chain — every installed view shares at
      least one installer with the installed view of the next lower id.
      A minority side that installed its own view after a partition has
      no such witness (none of its members installed the primary's
      views since the split), so two concurrent primary components are
      flagged. A parked member (see {!Group.is_parked}) never installs
      a view nor delivers fresh messages, which is what keeps this
      property checkable from installation logs alone.

    Coverage [⊑] is checked against the {e transitive closure} of the
    relation encoded by the annotations: the encodings are
    under-approximations of the application's transitive relation, so
    the closure is the strongest relation the protocol may rely on.

    {!verify_strict_vs} additionally demands classical View Synchrony
    (identical delivery sets between views) — it must pass whenever
    purging is disabled or the relation is empty, demonstrating the
    paper's claim that SVS with an empty relation {e is} VS.

    {b Crash recovery.} A process's log may span several incarnations:
    a crash followed by JOIN/SYNC readmission shows up as a view-id
    {e gap} between consecutive installs (the readmitting view is at
    least two past the last one installed before the crash). The
    pairwise checks (SVS, FIFO-SR clause ii, strict VS) quantify only
    over genuinely consecutive view ids — never across a crash — and
    FIFO-SR does not owe a rejoined incarnation predecessors multicast
    before its readmission view (the sponsor's state transfer settles
    those). Integrity and per-sender FIFO order remain global across
    incarnations, so a process restarted {e without} its durable state
    that re-delivers or re-numbers messages is still flagged
    ([Duplicated] / [Fifo_order]). *)

type t

type meta = {
  id : Svs_obs.Msg_id.t;
  ann : Svs_obs.Annotation.t;
  view_id : int;
}

(** One broken safety clause. [view_id] always names the view [v_i] of
    the violated view pair [(v_i, v_{i+1})]; a chaos report can thus
    point at the exact transition that lost a message. *)
type violation =
  | Created of { p : int; id : Svs_obs.Msg_id.t }
  | Duplicated of { p : int; id : Svs_obs.Msg_id.t }
  | Fifo_order of { p : int; first : Svs_obs.Msg_id.t; second : Svs_obs.Msg_id.t }
  | Svs_hole of { p : int; q : int; view_id : int; missing : Svs_obs.Msg_id.t }
  | Fifo_sr_hole of {
      p : int;
      view_id : int;
      missing : Svs_obs.Msg_id.t;
      because : Svs_obs.Msg_id.t;
    }
  | View_disagreement of { p : int; q : int; view_id : int }
  | Vs_mismatch of { p : int; q : int; view_id : int; missing : Svs_obs.Msg_id.t }
  | Split_brain of { p : int; view_id : int; prev_view_id : int }
      (** [p] installed [view_id], but no process installed both it and
          [prev_view_id] (the next lower installed id): the execution
          has two concurrent primary components. *)
  | Not_converged of { p : int; last_view_id : int; final_view_id : int }
      (** From {!check_converged}: survivor [p] did not end the run in
          the final primary view. *)

val pp_violation : Format.formatter -> violation -> unit

val violation_to_string : violation -> string

val create : unit -> t

val record_multicast : t -> meta -> unit

val record_delivery : t -> p:int -> meta -> unit

val record_install : t -> p:int -> View.t -> unit
(** Must also be called once per process with its initial view, before
    any of its deliveries. *)

val verify : t -> violation list
(** Empty list = all SVS properties hold. *)

val verify_strict_vs : t -> violation list
(** {!verify} plus classical view synchrony (equal per-view delivery
    sets among processes installing the next view). *)

val check_converged : t -> survivors:int list -> violation list
(** Liveness after heal (opt-in, not part of {!verify} because only
    the scenario knows who should have made it back): every process in
    [survivors] must have ended the run in the final primary view —
    its last recorded install is the globally maximal view id and that
    view lists it as a member. Returns one [Not_converged] per
    straggler. *)

val deliveries_in_view : t -> p:int -> view_id:int -> meta list
(** For tests: what [p] delivered while in the given view. *)

(** {1 Trace export}

    Read access to the recorded execution, in recording order — enough
    to replay a (possibly mutated) copy of the trace into a fresh
    checker. The chaos oracle uses this to prove its own sensitivity:
    re-recording the run minus one safety-relevant delivery must flip
    the verdict. *)

type recorded = Delivered of meta | Installed of View.t

val multicast_log : t -> meta list
(** Every recorded multicast, oldest first. *)

val processes : t -> int list
(** Processes with at least one recorded event, ascending. *)

val process_log : t -> p:int -> recorded list
(** [p]'s deliveries and installs, oldest first. *)
