(** The bounded SVS system the model checker enumerates.

    A {!sys} wraps one {!Svs_core.Group.cluster} in manual-network mode
    (every packet waits on its link until explicitly delivered) plus
    the remaining fault/send budgets. {!enabled} lists the choices open
    in the current state in a deterministic order; {!apply} executes
    one; a state is therefore reproducible from the initial
    configuration and the list of choices taken — the choice trace that
    replaces the chaos harness's RNG seed. See MODELCHECK.md. *)

type config = {
  nodes : int;
  multicasts : int;  (** Total data multicasts (scripted, see below). *)
  crashes : int;
  restarts : int;  (** Crash–recovery rejoins ([recover:true]). *)
  probes : int;  (** JOIN-request budget shared by all joiners. *)
  partitions : (int * int) list;  (** Link pairs that may be cut (once each). *)
  heals : bool;  (** Whether cut links may heal. *)
  mode : Svs_chaos.Oracle.mode;
      (** [Svs]: purging on; [Vs]: plain VS, checked with the strict
          (empty-relation) contract. *)
  chain : bool;
      (** In [Svs] mode, each multicast obsoletes the sender's previous
          one (k-enumeration, direct distance 1). *)
  shed : int option;
      (** Semantic shedding threshold for the manual network's held
          links ([None]: off). With shedding on, the explorer proves
          the prefix-safe shed rule holds under every interleaving. *)
  max_depth : int;
}

val default : config
(** The acceptance configuration: 3 nodes, 2 multicasts, 1 crash. *)

(** One enumerated choice. [Tick k] runs the k-th event of the
    engine's ready group (arbiter decision upcalls are the only
    scheduled events here), so equal-timestamp ties are enumerated
    rather than fixed by scheduling order. The sender of [Multicast]
    is redundant with the state (smallest unblocked member) but kept
    in the descriptor so traces read on their own. *)
type transition =
  | Deliver of { src : int; dst : int }
  | Tick of int
  | Multicast of int
  | Crash of int
  | Restart of int
  | Probe of { node : int; contact : int }
  | Cut of int * int
  | Heal of int * int

val transition_to_string : transition -> string
(** One-line form used in trace files, e.g. ["deliver 0 2"]. *)

val transition_of_string : string -> transition option

val pp_transition : Format.formatter -> transition -> unit

type sys

val make : config -> sys
(** A fresh system in its initial state (all nodes members of view 0,
    nothing in flight). Deterministic: two [make]s of the same config
    behave identically under the same choices. *)

val enabled : sys -> transition list
(** The choices open in the current state, in a fixed deterministic
    order (environment, ticks, deliveries by link, multicast). Empty
    means the state is terminal: quiescent with all budgets consumed
    or unusable. *)

val apply : sys -> transition -> unit
(** Execute one choice and hand every deliverable message to the
    applications (eager delivery keeps the checker log complete at
    every cut). Raises [Invalid_argument] if the transition is not
    currently enabled (replays validate against {!enabled} first). *)

val fingerprint : sys -> string
(** Canonical digest of the full system state — per-node protocol
    state, in-flight traffic per link, detector/consensus/engine
    state, remaining budgets. Equal fingerprints mean identical
    behaviour under every future choice sequence. *)

val independent : sys -> transition -> transition -> bool
(** Whether the two transitions (both enabled in the current state)
    commute — the sleep-set reduction's independence relation. Only
    high-traffic commutations are claimed (DATA deliveries to distinct
    destinations, multicast vs. delivery elsewhere); everything else
    is conservatively dependent. *)

val checker : sys -> Svs_core.Checker.t

val survivors : sys -> int list
(** Current members — the processes the convergence contract binds. *)

val converged_checkable : sys -> bool
(** False while a cut is still active: an unhealed partition
    legitimately leaves members apart, so convergence is only checked
    on terminal states with all links up. *)

val payload : int -> string
(** The injective payload encoding used for fingerprints. *)
