module Engine = Svs_sim.Engine
module Group = Svs_core.Group
module View = Svs_core.View
module Checker = Svs_core.Checker
module Oracle = Svs_chaos.Oracle
module Annotation = Svs_obs.Annotation
module Kenum_stream = Svs_obs.Kenum_stream

(* A bounded configuration: the explorer enumerates every interleaving
   of the transitions these budgets allow. Node 0 is immortal (the
   chaos harness's liveness discipline: someone must survive to anchor
   the primary component). *)
type config = {
  nodes : int;
  multicasts : int;  (** Total data multicasts (scripted, see below). *)
  crashes : int;
  restarts : int;  (** Crash–recovery rejoins ([recover:true]). *)
  probes : int;  (** JOIN-request budget shared by all joiners. *)
  partitions : (int * int) list;  (** Link pairs that may be cut (once each). *)
  heals : bool;  (** Whether cut links may heal. *)
  mode : Oracle.mode;  (** [Svs]: purging on; [Vs]: plain VS, strict check. *)
  chain : bool;
      (** In [Svs] mode, each multicast obsoletes the sender's previous
          one (k-enumeration, direct distance 1) — the relation that
          makes SVS cover equivalence distinguishable from plain VS. *)
  shed : int option;
      (** Semantic shedding threshold handed to the group's network
          config: a manual-mode link holding at least this many
          sheddable frames purges the covered tail when a newer
          covering multicast is appended. The explorer then checks
          that shedding is safe under {e every} interleaving of
          sends, deliveries and faults. [None]: shedding off. *)
  max_depth : int;
}

let default =
  {
    nodes = 3;
    multicasts = 2;
    crashes = 1;
    restarts = 0;
    probes = 0;
    partitions = [];
    heals = false;
    mode = Oracle.Svs;
    chain = true;
    shed = None;
    max_depth = 80;
  }

(* One enumerated choice. [Tick k] runs the k-th event of the engine's
   ready group (arbiter decision upcalls are the only scheduled events
   in a model-checking cluster), so equal-timestamp ties are enumerated
   too, not fixed by scheduling order. *)
type transition =
  | Deliver of { src : int; dst : int }
  | Tick of int
  | Multicast of int
  | Crash of int
  | Restart of int
  | Probe of { node : int; contact : int }
  | Cut of int * int
  | Heal of int * int

let transition_to_string = function
  | Deliver { src; dst } -> Printf.sprintf "deliver %d %d" src dst
  | Tick k -> Printf.sprintf "tick %d" k
  | Multicast p -> Printf.sprintf "multicast %d" p
  | Crash p -> Printf.sprintf "crash %d" p
  | Restart p -> Printf.sprintf "restart %d" p
  | Probe { node; contact } -> Printf.sprintf "probe %d %d" node contact
  | Cut (a, b) -> Printf.sprintf "cut %d %d" a b
  | Heal (a, b) -> Printf.sprintf "heal %d %d" a b

let transition_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "deliver"; a; b ] -> Some (Deliver { src = int_of_string a; dst = int_of_string b })
  | [ "tick"; k ] -> Some (Tick (int_of_string k))
  | [ "multicast"; p ] -> Some (Multicast (int_of_string p))
  | [ "crash"; p ] -> Some (Crash (int_of_string p))
  | [ "restart"; p ] -> Some (Restart (int_of_string p))
  | [ "probe"; a; b ] -> Some (Probe { node = int_of_string a; contact = int_of_string b })
  | [ "cut"; a; b ] -> Some (Cut (int_of_string a, int_of_string b))
  | [ "heal"; a; b ] -> Some (Heal (int_of_string a, int_of_string b))
  | _ -> None
  | exception Failure _ -> None

let pp_transition ppf t = Format.pp_print_string ppf (transition_to_string t)

type sys = {
  cluster : int Group.cluster;
  cfg : config;
  mutable sent : int;
  mutable crashes_left : int;
  mutable restarts_left : int;
  mutable probes_left : int;
  mutable cut_avail : (int * int) list;
  mutable cut_active : (int * int) list;
  streams : (int, Kenum_stream.t) Hashtbl.t;
}

let payload = string_of_int

let make cfg =
  if cfg.nodes < 2 then invalid_arg "Svs_mc.Model.make: need at least two nodes";
  List.iter
    (fun (a, b) ->
      if a < 0 || b < 0 || a >= cfg.nodes || b >= cfg.nodes || a = b then
        invalid_arg "Svs_mc.Model.make: bad partition pair")
    cfg.partitions;
  let engine = Engine.create ~seed:0 () in
  let group_config =
    {
      Group.default_config with
      semantic = (cfg.mode = Oracle.Svs);
      shed = cfg.shed;
      merge = false (* parking/merge is periodic machinery; MC drives rejoins explicitly *);
    }
  in
  let members = List.init cfg.nodes (fun i -> i) in
  let cluster = Group.create_cluster engine ~members ~manual_net:true ~config:group_config () in
  {
    cluster;
    cfg;
    sent = 0;
    crashes_left = cfg.crashes;
    restarts_left = cfg.restarts;
    probes_left = cfg.probes;
    cut_avail = cfg.partitions;
    cut_active = [];
    streams = Hashtbl.create 4;
  }

let checker sys = Group.checker sys.cluster

let member sys p = Group.member sys.cluster p

let survivors sys =
  List.filter_map
    (fun m -> if Group.is_member m then Some (Group.id m) else None)
    (Group.members sys.cluster)

(* The convergence contract only holds when nothing keeps survivors
   apart: an unhealed cut legitimately leaves a blocked member. *)
let converged_checkable sys = sys.cut_active = []

(* The next multicast's sender: the smallest unblocked member — a
   deterministic function of the state, so the script needs no
   separate bookkeeping and every interleaving freedom is in *when*
   the send happens, which is what the contracts care about. *)
let next_sender sys =
  if sys.sent >= sys.cfg.multicasts then None
  else
    List.find_map
      (fun m ->
        if Group.is_member m && not (Group.is_blocked m) then Some (Group.id m) else None)
      (Group.members sys.cluster)

let enabled sys =
  let c = sys.cluster in
  let n = sys.cfg.nodes in
  let acc = ref [] in
  let push t = acc := t :: !acc in
  (* Environment choices first (they are rarer, so putting them early
     surfaces fault interleavings at shallow depth), then ticks, then
     deliveries in link order, then sends. *)
  (if sys.crashes_left > 0 then
     for p = 1 to n - 1 do
       let m = member sys p in
       if Group.is_member m then begin
         let rest =
           List.filter (fun q -> Group.is_member q && Group.id q <> p) (Group.members c)
         in
         if List.length rest >= View.majority (Group.view m) then push (Crash p)
       end
     done);
  (if sys.restarts_left > 0 then
     for p = 0 to n - 1 do
       let m = member sys p in
       if
         Group.is_down m
         && not
              (List.exists
                 (fun q -> (not (Group.is_down q)) && View.mem p (Group.view q))
                 (Group.members c))
       then push (Restart p)
     done);
  (if sys.probes_left > 0 then
     for p = 0 to n - 1 do
       if Group.is_joining (member sys p) then
         for q = 0 to n - 1 do
           if q <> p && Group.is_member (member sys q) then push (Probe { node = p; contact = q })
         done
     done);
  List.iter
    (fun (a, b) ->
      if (not (Group.is_down (member sys a))) && not (Group.is_down (member sys b)) then
        push (Cut (a, b)))
    sys.cut_avail;
  if sys.cfg.heals then List.iter (fun (a, b) -> push (Heal (a, b))) sys.cut_active;
  List.iteri (fun k _ -> push (Tick k)) (Engine.ready (Group.engine c));
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if
        Group.mc_inflight c ~src ~dst > 0
        && (not (Group.mc_partitioned c ~src ~dst))
        && not (Group.is_down (member sys dst))
      then push (Deliver { src; dst })
    done
  done;
  (match next_sender sys with None -> () | Some p -> push (Multicast p));
  List.rev !acc

(* Eagerly hand every deliverable message/view marker to the
   application after each transition. Sound because nothing in a
   model-checking configuration reacts to delivery *timing* (no
   bounded buffers, no periodic watchdogs), and it keeps the checker
   logs complete at every cut point. *)
let settle sys =
  List.iter
    (fun m -> ignore (Group.deliver_all m : int Svs_core.Types.delivery list))
    (Group.members sys.cluster)

let annotation sys sender =
  match sys.cfg.mode with
  | Oracle.Vs -> Annotation.Unrelated
  | Oracle.Svs when not sys.cfg.chain -> Annotation.Unrelated
  | Oracle.Svs ->
      let stream =
        match Hashtbl.find_opt sys.streams sender with
        | Some s -> s
        | None ->
            let s = Kenum_stream.create ~k:8 () in
            Hashtbl.replace sys.streams sender s;
            s
      in
      let direct = if Kenum_stream.next_sn stream > 0 then [ 1 ] else [] in
      Annotation.Kenum (Kenum_stream.push stream ~direct)

let apply sys tr =
  (match tr with
  | Deliver { src; dst } -> ignore (Group.mc_deliver sys.cluster ~src ~dst : bool)
  | Tick k -> (
      let eng = Group.engine sys.cluster in
      match List.nth_opt (Engine.ready eng) k with
      | Some ev -> Engine.step_ready eng ev
      | None -> invalid_arg "Svs_mc.Model.apply: tick index out of range")
  | Multicast p -> (
      let m = member sys p in
      let ann = annotation sys p in
      match Group.multicast m ~ann sys.sent with
      | Ok _ -> sys.sent <- sys.sent + 1
      | Error _ -> invalid_arg "Svs_mc.Model.apply: multicast not enabled")
  | Crash p ->
      Group.crash sys.cluster p;
      sys.crashes_left <- sys.crashes_left - 1
  | Restart p ->
      Group.restart sys.cluster p ~recover:true;
      sys.restarts_left <- sys.restarts_left - 1
  | Probe { node; contact } ->
      Group.request_join (member sys node) ~contact;
      sys.probes_left <- sys.probes_left - 1
  | Cut (a, b) ->
      Group.partition sys.cluster a b;
      sys.cut_avail <- List.filter (fun pr -> pr <> (a, b)) sys.cut_avail;
      sys.cut_active <- sys.cut_active @ [ (a, b) ]
  | Heal (a, b) ->
      Group.heal sys.cluster a b;
      sys.cut_active <- List.filter (fun pr -> pr <> (a, b)) sys.cut_active);
  settle sys

let fingerprint sys =
  let st = Group.mc_state sys.cluster ~payload in
  let b = Buffer.create 512 in
  List.iter
    (fun (p, d) ->
      Buffer.add_string b (string_of_int p);
      Buffer.add_string b d)
    st.Group.mc_nodes;
  Buffer.add_char b '/';
  List.iter
    (fun ((src, dst), d) ->
      Buffer.add_string b (Printf.sprintf "%d>%d" src dst);
      Buffer.add_string b d)
    st.Group.mc_links;
  Buffer.add_char b '/';
  Buffer.add_string b st.Group.mc_global;
  Buffer.add_string b
    (Printf.sprintf "/%d.%d.%d.%d" sys.sent sys.crashes_left sys.restarts_left sys.probes_left);
  List.iter (fun (a, b') -> Buffer.add_string b (Printf.sprintf "a%d:%d" a b')) sys.cut_avail;
  List.iter (fun (a, b') -> Buffer.add_string b (Printf.sprintf "c%d:%d" a b')) sys.cut_active;
  Digest.string (Buffer.contents b)

(* Independence for the sleep-set reduction, judged in the state where
   both transitions are enabled. Only the high-traffic commutations are
   claimed — everything else is conservatively dependent:

   - DATA deliveries to distinct destinations touch only their own
     destination node (reception never sends, proposes, or reads the
     detector), so they commute; popping one link's head commutes with
     appending to the tail of the same link.
   - A control delivery (view change / SYNC / consensus) writes its
     destination, that node's outgoing links, the arbiter and the
     engine queue — two control deliveries conflict on the shared
     consensus state even at distinct destinations (proposal order
     picks the decision under quorum 1), but control-vs-data at
     distinct destinations is disjoint.
   - A multicast writes the sender node and its outgoing links, so it
     commutes with any delivery to a different node.
   - Ticks (decision upcalls reach every member) and environment
     transitions are dependent with everything. *)
let independent sys a b =
  let data src dst = Group.mc_head_is_data sys.cluster ~src ~dst in
  match (a, b) with
  | Deliver d1, Deliver d2 ->
      d1.dst <> d2.dst && (data d1.src d1.dst || data d2.src d2.dst)
  | Multicast p, Deliver d | Deliver d, Multicast p -> p <> d.dst
  | _ -> false
