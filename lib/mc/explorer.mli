(** Explicit-state DFS explorer over {!Model} choice traces.

    Stateless search: states are reconstructed by re-executing choice
    prefixes from the initial configuration, so the explorer needs no
    snapshot support from the cluster.  Two reductions keep the state
    space tractable:

    - a visited set keyed on {!Model.fingerprint} (canonical full-state
      digest), pruned under the standard sleep-set soundness condition
      (revisits are cut only when a previous visit explored with a
      subset of the current sleep set);
    - sleep-set partial-order reduction over
      {!Model.independent} — interleavings that only permute commuting
      transitions are explored once.

    Every leaf of the search (terminal, depth cutoff, visited prune,
    sleep exhaustion) is checked against the SVS contracts; terminal
    states additionally against convergence and, when a self-test
    mutation is armed, against the chaos oracle's log corruption. *)

type stats = {
  mutable states : int;  (** Distinct states expanded. *)
  mutable transitions : int;  (** Transitions executed (prefix replays excluded). *)
  mutable interleavings : int;  (** Maximal executions: terminals + depth cutoffs. *)
  mutable visited_hits : int;
  mutable sleep_skips : int;  (** Enabled transitions pruned by sleep sets. *)
  mutable depth_cutoffs : int;
  mutable max_depth_seen : int;
}

val pp_stats : Format.formatter -> stats -> unit

type outcome =
  | Exhausted  (** Full bounded state space explored, no violation. *)
  | State_limit  (** [max_states] expanded without a verdict. *)
  | Counterexample of {
      trace : Model.transition list;
      violations : Svs_core.Checker.violation list;
    }

type run = { outcome : outcome; stats : stats }

val explore :
  ?reduce:bool ->
  ?dedup:bool ->
  ?max_states:int ->
  ?mutation:Svs_chaos.Oracle.mutation ->
  ?progress:(stats -> unit) ->
  Model.config ->
  run
(** Exhaust the bounded configuration.  [reduce] (default true)
    enables the sleep-set reduction; [dedup] (default true) the
    fingerprint visited set.  [reduce:false dedup:false] is the naive
    DFS enumerating every interleaving — the baseline the self-tests
    compare against to show the reduction preserves verdicts while
    shrinking interleaving counts.  [mutation] arms the inverted
    self-test: at every terminal state the recorded log is corrupted
    the way a broken implementation would corrupt it, and the explorer
    must catch the oracle's violation — so [Counterexample] is the
    expected outcome.  [progress] is called every 1024 expanded
    states. *)

type replay_result =
  | Reproduced of Svs_core.Checker.violation list
  | Clean  (** Trace replayed feasibly but no violation. *)
  | Infeasible of { index : int; transition : Model.transition }
      (** The [index]-th transition was not enabled at that point. *)

val replay :
  ?mutation:Svs_chaos.Oracle.mutation ->
  Model.config ->
  Model.transition list ->
  replay_result
(** Re-execute a choice trace, validating each step against
    {!Model.enabled}, then check the end state (terminal checks
    included iff the trace ends in a terminal state). *)

val minimize :
  ?mutation:Svs_chaos.Oracle.mutation ->
  Model.config ->
  Model.transition list ->
  Model.transition list * Svs_core.Checker.violation list option
(** Greedily shrink a violating trace: repeatedly drop any single
    transition whose removal leaves the trace feasible and still
    violating, until no single removal survives.  Returns the
    minimized trace and the violations of its final replay (None only
    if the input trace did not violate to begin with). *)

(** {1 Trace files}

    A trace file is the magic line [# svs_mc trace v1], a [config ...]
    line carrying the bounds (and armed mutation, if any), then one
    {!Model.transition_to_string} line per choice.  Blank lines and
    [#] comments are ignored on read. *)

val mutation_label : Svs_chaos.Oracle.mutation -> string
(** ["drop-cover"], ["dup-restart"], ["split-brain"]. *)

val mutation_of_label : string -> Svs_chaos.Oracle.mutation option

val write_trace :
  out_channel ->
  Model.config ->
  ?mutation:Svs_chaos.Oracle.mutation ->
  Model.transition list ->
  unit

val read_trace :
  in_channel ->
  ( Model.config * Svs_chaos.Oracle.mutation option * Model.transition list,
    string )
  result
