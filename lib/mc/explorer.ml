(* Explicit-state DFS over the choice traces of a bounded Model
   configuration.  Stateless exploration: there is no snapshot/undo —
   the first child of a state reuses the live system, and every later
   sibling re-executes the prefix from a fresh [Model.make].  Sleep-set
   partial-order reduction prunes interleavings that only permute
   independent transitions; a fingerprint-keyed visited set prunes
   states reached twice, with the standard sleep-set soundness
   condition (prune only when a previous visit explored at least as
   much, i.e. some stored sleep set is a subset of the current one). *)

module Checker = Svs_core.Checker
module Oracle = Svs_chaos.Oracle

type stats = {
  mutable states : int;
  mutable transitions : int;
  mutable interleavings : int;
  mutable visited_hits : int;
  mutable sleep_skips : int;
  mutable depth_cutoffs : int;
  mutable max_depth_seen : int;
}

let fresh_stats () =
  {
    states = 0;
    transitions = 0;
    interleavings = 0;
    visited_hits = 0;
    sleep_skips = 0;
    depth_cutoffs = 0;
    max_depth_seen = 0;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "states=%d transitions=%d interleavings=%d visited-hits=%d \
     sleep-skips=%d depth-cutoffs=%d max-depth=%d"
    s.states s.transitions s.interleavings s.visited_hits s.sleep_skips
    s.depth_cutoffs s.max_depth_seen

type outcome =
  | Exhausted
  | State_limit
  | Counterexample of {
      trace : Model.transition list;
      violations : Checker.violation list;
    }

type run = { outcome : outcome; stats : stats }

(* Mutation labels (trace files, CLI). *)

let mutation_label = function
  | Oracle.Drop_cover -> "drop-cover"
  | Oracle.Duplicate_after_restart -> "dup-restart"
  | Oracle.Split_brain -> "split-brain"

let mutation_of_label = function
  | "drop-cover" -> Some Oracle.Drop_cover
  | "dup-restart" -> Some Oracle.Duplicate_after_restart
  | "split-brain" -> Some Oracle.Split_brain
  | _ -> None

(* Violation check at a cut.  The base contracts are checked at every
   leaf — the checker log is monotone, so a violation anywhere along a
   path is still visible at its leaf.  Convergence binds only terminal
   states with no active cut; the self-test mutation (which corrupts a
   copy of the recorded log) is likewise only meaningful on a complete
   run, and is skipped when the run contains nothing to corrupt. *)
let check_cut cfg ~mutation ~terminal sys =
  let ck = Model.checker sys in
  let base =
    match cfg.Model.mode with
    | Oracle.Vs -> Checker.verify_strict_vs ck
    | Oracle.Svs -> Checker.verify ck
  in
  let base =
    if terminal && Model.converged_checkable sys then
      base @ Checker.check_converged ck ~survivors:(Model.survivors sys)
    else base
  in
  if base <> [] then Some base
  else
    match mutation with
    | Some mut when terminal -> (
        match
          Oracle.check ~mutation:mut ~mode:cfg.Model.mode ~seed:0
            ~scenario:"mc" ck
        with
        | r -> if Oracle.ok r then None else Some r.Oracle.violations
        | exception Failure _ -> None)
    | _ -> None

exception Found of Model.transition list * Checker.violation list
exception Limit

let replay_prefix cfg rev_trace =
  let sys = Model.make cfg in
  List.iter (fun t -> Model.apply sys t) (List.rev rev_trace);
  sys

let subset z sleep = List.for_all (fun t -> List.mem t sleep) z

(* Per fingerprint we remember up to [max_sleep_sets] sleep sets under
   which the state was fully explored; a revisit may be pruned iff one
   of them is contained in the current sleep set (it explored a
   superset of what we would). *)
let max_sleep_sets = 8

let explore ?(reduce = true) ?(dedup = true) ?(max_states = 2_000_000)
    ?mutation ?progress cfg =
  let stats = fresh_stats () in
  let visited : (string, Model.transition list list) Hashtbl.t =
    Hashtbl.create 4096
  in
  let leaf sys rev_trace depth ~terminal =
    if depth > stats.max_depth_seen then stats.max_depth_seen <- depth;
    match check_cut cfg ~mutation ~terminal sys with
    | Some v -> raise (Found (List.rev rev_trace, v))
    | None -> ()
  in
  let rec go sys rev_trace depth sleep =
    let enabled = Model.enabled sys in
    if enabled = [] then begin
      stats.interleavings <- stats.interleavings + 1;
      leaf sys rev_trace depth ~terminal:true
    end
    else if depth >= cfg.Model.max_depth then begin
      stats.depth_cutoffs <- stats.depth_cutoffs + 1;
      stats.interleavings <- stats.interleavings + 1;
      leaf sys rev_trace depth ~terminal:false
    end
    else begin
      let covered =
        if not dedup then false
        else begin
          let fp = Model.fingerprint sys in
          let zs =
            match Hashtbl.find_opt visited fp with Some l -> l | None -> []
          in
          if List.exists (fun z -> subset z sleep) zs then true
          else begin
            if List.length zs < max_sleep_sets then
              Hashtbl.replace visited fp (sleep :: zs);
            false
          end
        end
      in
      if covered then begin
        stats.visited_hits <- stats.visited_hits + 1;
        leaf sys rev_trace depth ~terminal:false
      end
      else begin
        stats.states <- stats.states + 1;
        if stats.states > max_states then raise Limit;
        (match progress with
        | Some f when stats.states mod 1024 = 0 -> f stats
        | _ -> ());
        let todo = List.filter (fun t -> not (List.mem t sleep)) enabled in
        stats.sleep_skips <-
          stats.sleep_skips + (List.length enabled - List.length todo);
        if todo = [] then leaf sys rev_trace depth ~terminal:false
        else
          (* First child runs on the live system; later siblings
             re-execute the prefix.  The child's sleep set is computed
             in the state BEFORE applying [t]: transitions already
             explored (or inherited asleep) that commute with [t]
             stay asleep below it. *)
          let rec siblings first done_ = function
            | [] -> ()
            | t :: rest ->
                let sys_t =
                  if first then sys else replay_prefix cfg rev_trace
                in
                let child_sleep =
                  if reduce then
                    List.filter
                      (fun u -> Model.independent sys_t u t)
                      (sleep @ done_)
                  else []
                in
                Model.apply sys_t t;
                stats.transitions <- stats.transitions + 1;
                go sys_t (t :: rev_trace) (depth + 1) child_sleep;
                siblings false (t :: done_) rest
          in
          siblings true [] todo
      end
    end
  in
  match go (Model.make cfg) [] 0 [] with
  | () -> { outcome = Exhausted; stats }
  | exception Limit -> { outcome = State_limit; stats }
  | exception Found (trace, violations) ->
      { outcome = Counterexample { trace; violations }; stats }

(* Replay: validate every transition against [enabled] before applying
   it, so a stale or hand-edited trace fails loudly instead of
   [Invalid_argument]-ing deep inside the cluster. *)

type replay_result =
  | Reproduced of Checker.violation list
  | Clean
  | Infeasible of { index : int; transition : Model.transition }

let replay ?mutation cfg trace =
  let sys = Model.make cfg in
  let rec run i = function
    | [] ->
        let terminal = Model.enabled sys = [] in
        (match check_cut cfg ~mutation ~terminal sys with
        | Some v -> Reproduced v
        | None -> Clean)
    | t :: rest ->
        if List.mem t (Model.enabled sys) then begin
          Model.apply sys t;
          run (i + 1) rest
        end
        else Infeasible { index = i; transition = t }
  in
  run 0 trace

(* Counterexample minimization: greedily drop transitions, scanning
   from the end (later transitions are cheaper to remove — nothing
   depends on them), until a fixpoint.  A removal is kept only if the
   shortened trace still replays feasibly AND still violates. *)

let still_violating ?mutation cfg trace =
  match replay ?mutation cfg trace with
  | Reproduced v -> Some v
  | Clean | Infeasible _ -> None

let minimize ?mutation cfg trace =
  let current = ref trace in
  let violations = ref (still_violating ?mutation cfg trace) in
  let changed = ref true in
  while !changed do
    changed := false;
    let n = List.length !current in
    for i = n - 1 downto 0 do
      let cand = List.filteri (fun j _ -> j <> i) !current in
      match still_violating ?mutation cfg cand with
      | Some v ->
          current := cand;
          violations := Some v;
          changed := true
      | None -> ()
    done
  done;
  (!current, !violations)

(* Trace files.  Line 1 is a magic comment, line 2 the configuration,
   then one transition per line.  The format deliberately matches what
   a human would type: the same strings [Model.transition_to_string]
   prints and [transition_of_string] parses. *)

let magic = "# svs_mc trace v1"

let config_line cfg mutation =
  let partitions =
    match cfg.Model.partitions with
    | [] -> "none"
    | l ->
        String.concat ","
          (List.map (fun (a, b) -> Printf.sprintf "%d:%d" a b) l)
  in
  Printf.sprintf
    "config nodes=%d multicasts=%d crashes=%d restarts=%d probes=%d \
     partitions=%s heals=%b mode=%s chain=%b shed=%s depth=%d mutation=%s"
    cfg.Model.nodes cfg.Model.multicasts cfg.Model.crashes cfg.Model.restarts
    cfg.Model.probes partitions cfg.Model.heals
    (Oracle.mode_label cfg.Model.mode)
    cfg.Model.chain
    (match cfg.Model.shed with Some l -> string_of_int l | None -> "none")
    cfg.Model.max_depth
    (match mutation with Some m -> mutation_label m | None -> "none")

let write_trace oc cfg ?mutation trace =
  output_string oc (magic ^ "\n");
  output_string oc (config_line cfg mutation ^ "\n");
  List.iter
    (fun t -> output_string oc (Model.transition_to_string t ^ "\n"))
    trace

let parse_config_line line =
  match String.split_on_char ' ' line with
  | "config" :: fields -> (
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun f ->
          match String.index_opt f '=' with
          | Some i ->
              Hashtbl.replace tbl
                (String.sub f 0 i)
                (String.sub f (i + 1) (String.length f - i - 1))
          | None -> ())
        fields;
      let int k d =
        match Hashtbl.find_opt tbl k with
        | Some v -> int_of_string v
        | None -> d
      in
      let bool k d =
        match Hashtbl.find_opt tbl k with
        | Some v -> bool_of_string v
        | None -> d
      in
      try
        let partitions =
          match Hashtbl.find_opt tbl "partitions" with
          | None | Some "none" | Some "" -> []
          | Some s ->
              List.map
                (fun pair ->
                  match String.split_on_char ':' pair with
                  | [ a; b ] -> (int_of_string a, int_of_string b)
                  | _ -> failwith "partition pair")
                (String.split_on_char ',' s)
        in
        let mode =
          match Hashtbl.find_opt tbl "mode" with
          | Some s -> (
              match Oracle.mode_of_label s with
              | Some m -> m
              | None -> failwith "mode")
          | None -> Oracle.Svs
        in
        let mutation =
          match Hashtbl.find_opt tbl "mutation" with
          | None | Some "none" -> None
          | Some s -> (
              match mutation_of_label s with
              | Some m -> Some m
              | None -> failwith "mutation")
        in
        let d = Model.default in
        Ok
          ( {
              Model.nodes = int "nodes" d.Model.nodes;
              multicasts = int "multicasts" d.Model.multicasts;
              crashes = int "crashes" d.Model.crashes;
              restarts = int "restarts" d.Model.restarts;
              probes = int "probes" d.Model.probes;
              partitions;
              heals = bool "heals" d.Model.heals;
              mode;
              chain = bool "chain" d.Model.chain;
              shed =
                (match Hashtbl.find_opt tbl "shed" with
                | None | Some "none" -> d.Model.shed
                | Some v -> Some (int_of_string v));
              max_depth = int "depth" d.Model.max_depth;
            },
            mutation )
      with Failure m -> Error (Printf.sprintf "bad config line (%s)" m))
  | _ -> Error "expected a config line"

let read_trace ic =
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  match List.rev !lines with
  | m :: cfg_line :: rest when String.trim m = magic -> (
      match parse_config_line (String.trim cfg_line) with
      | Error _ as e -> e
      | Ok (cfg, mutation) -> (
          let rest =
            List.filter
              (fun l ->
                let l = String.trim l in
                l <> "" && not (String.length l > 0 && l.[0] = '#'))
              rest
          in
          let parsed = List.map Model.transition_of_string rest in
          match
            List.find_index (fun t -> t = None) parsed
          with
          | Some i ->
              Error
                (Printf.sprintf "unparseable transition on line %d" (i + 3))
          | None ->
              Ok
                ( cfg,
                  mutation,
                  List.filter_map (fun t -> t) parsed )))
  | _ -> Error "not an svs_mc trace (missing magic header)"
