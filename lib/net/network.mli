(** Simulated fully-connected message-passing network (paper §3.1).

    Nodes [0 .. n-1] are pairwise connected by reliable FIFO channels
    (the paper's system-model assumption): every message sent over a
    live link is eventually delivered, in send order, after a delay
    drawn from the link's latency model.

    Supported deviations, for testing and experiments:
    - {!crash}: crash-stop a node — it stops sending and receiving.
    - {!pause_receive}/{!resume_receive}: receiver-side backpressure; a
      paused node queues inbound messages instead of handling them
      (models "ceases to accept further messages from the network").
    - {!disconnect}/{!reconnect}: a temporarily partitioned link holds
      messages and releases them in order on reconnection, preserving
      the reliable-channel contract.
    - {!set_shed_policy}: semantic shedding of backlogged queues (a
      paused receiver's inbox, a held link) under the prefix-safe
      suffix rule — the simulated counterpart of the runtime
      transport's flow control. *)

type 'msg t

(** Semantic shedding for backlogged queues. A queued message may be
    dropped only when a newer message on the {e same FIFO stream}
    obsoletes it (directly, or transitively through messages
    themselves shed), and only from the contiguous newest-end run of
    such messages — so every prefix a receiver can observe still
    carries a cover for anything shed, and the FIFO-SR/SVS contract
    survives arbitrary crash points. Injected as closures: this module
    knows nothing of the protocol's message type. *)
type 'msg shed_policy = {
  shed_limit : int;
      (** Walk a queue only once it holds at least this many sheddable
          entries. *)
  sheddable : 'msg -> bool;  (** Annotated data messages. *)
  obsoletes : older:'msg -> newer:'msg -> bool;
  on_shed : dst:int -> 'msg -> unit;
      (** Fired per victim, oldest first ([dst] is the receiver that
          will now never see it). *)
}

val create :
  Svs_sim.Engine.t ->
  nodes:int ->
  ?latency:Latency.t ->
  ?bandwidth:float ->
  ?sizer:('msg -> int) ->
  ?manual:bool ->
  unit ->
  'msg t
(** Default latency is {!Latency.Zero}. When both [bandwidth] (bytes
    per second) and [sizer] (message size in bytes) are given, each
    link serialises messages store-and-forward: a message occupies its
    link for [size/bandwidth] seconds before the propagation latency,
    so large messages (e.g. PRED flushes) visibly delay what follows
    them. Without them, transmission is instantaneous.

    [manual] (default false) puts the network in manual-delivery mode
    for model checking: {!send} queues the message on its link instead
    of scheduling an arrival, and nothing moves until the driver calls
    {!manual_deliver} — the enumerator owns the interleaving, and
    in-flight traffic is inspectable ({!inflight}, {!peek_inflight})
    instead of being captured in scheduled closures. Latency and
    bandwidth are ignored in this mode. *)

val engine : 'msg t -> Svs_sim.Engine.t

val set_latency : 'msg t -> Latency.t -> unit
(** Swap the latency model for subsequently sent messages (latency
    spikes under chaos testing). Already-scheduled arrivals keep their
    times; per-link FIFO still holds because arrivals are clamped to
    the link's previous arrival time. *)

val latency : 'msg t -> Latency.t
(** The current latency model. *)

val attach_metrics : 'msg t -> Svs_telemetry.Metrics.t -> unit
(** Register the network's instruments: [net_messages_sent_total],
    [net_messages_delivered_total], [net_bytes_sent_total] (the last
    counts sized bytes, like {!bytes_sent}). *)

val size : 'msg t -> int

val set_handler : 'msg t -> node:int -> (src:int -> 'msg -> unit) -> unit
(** Install the upcall invoked on delivery at [node]. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Self-sends are allowed and delivered through the same path. Sends
    from or to a crashed node are dropped. *)

val broadcast : 'msg t -> src:int -> ?include_self:bool -> 'msg -> unit
(** Send to every node (default: including [src] itself). *)

val crash : 'msg t -> node:int -> unit

val revive : 'msg t -> node:int -> unit
(** Bring a crashed node back (a restarted incarnation). Messages sent
    to it while it was down remain lost; traffic sent from now on is
    delivered normally. Also clears any receive-pause. *)

val alive : 'msg t -> node:int -> bool

val pause_receive : 'msg t -> node:int -> unit

val resume_receive : 'msg t -> node:int -> unit

val receive_paused : 'msg t -> node:int -> bool

val inbox_length : 'msg t -> node:int -> int
(** Messages held while the node's receive side is paused. *)

val inbox_data_length : 'msg t -> node:int -> int
(** Sheddable entries of the paused backlog only (per the installed
    {!shed_policy}'s [sheddable]) — what the overload scenarios
    budget, control traffic excluded. {!inbox_length} without a
    policy. *)

val set_shed_policy : 'msg t -> 'msg shed_policy -> unit
(** Install (or replace) the shedding policy. Applies to messages
    queued from now on — each enqueue onto a backlogged paused inbox
    or held link runs the suffix walk with the fresh message as the
    candidate cover. *)

val shed_count : 'msg t -> int
(** Messages shed so far. *)

val disconnect : 'msg t -> int -> int -> unit
(** Symmetrically partition the pair of nodes. *)

val reconnect : 'msg t -> int -> int -> unit

val messages_sent : 'msg t -> int

val messages_delivered : 'msg t -> int

val bytes_sent : 'msg t -> int
(** Total sized bytes accepted for transmission (0 without a sizer). *)

(** {1 Manual-delivery mode (model checking)} *)

val manual : 'msg t -> bool

val partitioned : 'msg t -> src:int -> dst:int -> bool
(** Whether the directed link is currently cut. *)

val inflight : 'msg t -> src:int -> dst:int -> int
(** Messages queued on the directed link: in-flight traffic in manual
    mode, held-while-partitioned traffic otherwise. *)

val peek_inflight : 'msg t -> src:int -> dst:int -> 'msg option
(** The message {!manual_deliver} would hand over next. *)

val iter_inflight : 'msg t -> src:int -> dst:int -> ('msg -> unit) -> unit
(** In delivery (FIFO) order — for state fingerprinting. *)

val manual_deliver : 'msg t -> src:int -> dst:int -> bool
(** Deliver the head of the directed link's queue to [dst]'s handler.
    [false] if the link is partitioned or has nothing in flight; a
    message popped for a crashed [dst] is dropped (it arrived while the
    process was down) and still counts as [true]. Raises
    [Invalid_argument] outside manual mode, where arrivals are
    engine-scheduled. *)
