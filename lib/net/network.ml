module Engine = Svs_sim.Engine
module Metrics = Svs_telemetry.Metrics

type probe = {
  m_sent : Metrics.Counter.t;
  m_delivered : Metrics.Counter.t;
  m_bytes : Metrics.Counter.t;
}

type 'msg link = {
  mutable last_arrival : float;
      (* Enforces FIFO under random latency: the next arrival is never
         scheduled before the previous one on the same link. *)
  mutable busy_until : float;
      (* Store-and-forward serialisation when bandwidth is finite. *)
  mutable partitioned : bool;
  held : 'msg Queue.t; (* Messages buffered while partitioned. *)
}

type 'msg node = {
  mutable alive : bool;
  mutable paused : bool;
  mutable handler : (src:int -> 'msg -> unit) option;
  inbox : (int * 'msg) Queue.t;
}

(* Semantic shedding for backlogged queues (a paused receiver's inbox,
   a partitioned or manual-mode link), under the same prefix-safe
   suffix rule as the runtime transport (see [Svs_obs.Shed]): a queued
   message may be dropped only when a newer message {e on the same
   FIFO stream} obsoletes it, directly or through messages themselves
   shed, and only from the contiguous newest-end run — so every
   prefix a receiver can observe still carries a cover for anything
   shed. The policy is injected as closures because this module knows
   nothing of the protocol's message type. *)
type 'msg shed_policy = {
  shed_limit : int;
      (* Walk only once a queue holds at least this many sheddable
         entries — small backlogs are not worth touching. *)
  sheddable : 'msg -> bool;
  obsoletes : older:'msg -> newer:'msg -> bool;
  on_shed : dst:int -> 'msg -> unit;
}

let shed_max_walk = 128

let shed_max_cover = 32

type 'msg t = {
  engine : Engine.t;
  mutable latency : Latency.t;
  bandwidth : float; (* bytes per second; infinity = unmodelled *)
  sizer : ('msg -> int) option;
  manual : bool;
      (* Model-checking mode: sends queue on the link (reusing [held])
         and are delivered only by explicit [manual_deliver] calls, so
         an enumerator controls the interleaving and can inspect
         in-flight traffic — scheduled-closure arrivals would hide
         both. *)
  nodes : 'msg node array;
  links : 'msg link array array; (* links.(src).(dst) *)
  mutable sent : int;
  mutable delivered : int;
  mutable bytes : int;
  mutable shed : int;
  mutable shed_policy : 'msg shed_policy option;
  mutable probe : probe option;
}

let create engine ~nodes ?(latency = Latency.Zero) ?(bandwidth = infinity) ?sizer
    ?(manual = false) () =
  if nodes <= 0 then invalid_arg "Network.create: need at least one node";
  if bandwidth <= 0.0 then invalid_arg "Network.create: bandwidth must be positive";
  let mk_node () = { alive = true; paused = false; handler = None; inbox = Queue.create () } in
  let mk_link () =
    { last_arrival = 0.0; busy_until = 0.0; partitioned = false; held = Queue.create () }
  in
  {
    engine;
    latency;
    bandwidth;
    sizer;
    manual;
    nodes = Array.init nodes (fun _ -> mk_node ());
    links = Array.init nodes (fun _ -> Array.init nodes (fun _ -> mk_link ()));
    sent = 0;
    delivered = 0;
    bytes = 0;
    shed = 0;
    shed_policy = None;
    probe = None;
  }

let set_shed_policy t p = t.shed_policy <- Some p

let shed_count t = t.shed

(* The suffix walk over one queue, generic in the entry shape.
   [entries] is the queue newest-first (excluding [fresh], the message
   about to be appended); [same_stream] selects the FIFO stream
   [fresh] extends (entries of other streams are skipped — their own
   order is untouched); returns the victims. A same-stream entry that
   is unsheddable or uncovered stops the walk: only the contiguous
   covered run at the newest end may go, which is what makes every
   observable prefix carry a cover. *)
let shed_walk p ~same_stream ~msg_of entries fresh =
  let rec go steps n_cover cover acc = function
    | [] -> acc
    | e :: rest ->
        if steps >= shed_max_walk then acc
        else if not (same_stream e) then go (steps + 1) n_cover cover acc rest
        else
          let m = msg_of e in
          if not (p.sheddable m) then acc
          else if List.exists (fun c -> p.obsoletes ~older:m ~newer:c) cover then
            let cover, n_cover =
              if n_cover < shed_max_cover then (m :: cover, n_cover + 1) else (cover, n_cover)
            in
            go (steps + 1) n_cover cover (e :: acc) rest
          else acc
  in
  go 0 1 [ fresh ] [] entries

(* Apply the walk to [q] before appending a fresh sheddable message:
   victims are removed in place (queue rebuild — sim scale, not a hot
   path) and reported oldest-first. *)
let shed_queue t p ~dst ~same_stream ~msg_of q fresh =
  let backlog = Queue.fold (fun n e -> if p.sheddable (msg_of e) then n + 1 else n) 0 q in
  if backlog >= p.shed_limit then begin
    let newest_first = List.rev (List.of_seq (Queue.to_seq q)) in
    match shed_walk p ~same_stream ~msg_of newest_first fresh with
    | [] -> ()
    | victims ->
        let keep = Queue.create () in
        Queue.iter (fun e -> if not (List.memq e victims) then Queue.add e keep) q;
        Queue.clear q;
        Queue.transfer keep q;
        t.shed <- t.shed + List.length victims;
        List.iter (fun e -> p.on_shed ~dst (msg_of e)) victims
  end

let engine t = t.engine

let set_latency t latency = t.latency <- latency

let latency t = t.latency

let attach_metrics t reg =
  t.probe <-
    Some
      {
        m_sent = Metrics.counter reg "net_messages_sent_total";
        m_delivered = Metrics.counter reg "net_messages_delivered_total";
        m_bytes = Metrics.counter reg "net_bytes_sent_total";
      }

let note_delivered t =
  t.delivered <- t.delivered + 1;
  match t.probe with None -> () | Some p -> Metrics.Counter.incr p.m_delivered

let size t = Array.length t.nodes

let check_node t node =
  if node < 0 || node >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Network: node %d out of range" node)

let set_handler t ~node f =
  check_node t node;
  t.nodes.(node).handler <- Some f

let handle t ~dst ~src msg =
  let n = t.nodes.(dst) in
  if n.alive then
    if n.paused then begin
      (* A paused receiver's backlog: the fresh arrival may obsolete
         queued arrivals from the same sender (the per-sender
         subsequence of the inbox is that sender's FIFO stream). *)
      (match t.shed_policy with
      | Some p when p.sheddable msg ->
          shed_queue t p ~dst ~same_stream:(fun (s, _) -> s = src) ~msg_of:snd n.inbox msg
      | Some _ | None -> ());
      Queue.add (src, msg) n.inbox
    end
    else begin
      note_delivered t;
      match n.handler with
      | Some f -> f ~src msg
      | None -> ()
    end

let schedule_arrival t ~src ~dst msg =
  let link = t.links.(src).(dst) in
  let now = Engine.now t.engine in
  (* Serialise onto the link first (when bandwidth is modelled), then
     propagate. *)
  let count_bytes bytes =
    t.bytes <- t.bytes + bytes;
    match t.probe with None -> () | Some p -> Metrics.Counter.add p.m_bytes bytes
  in
  let departure =
    match t.sizer with
    | Some size when t.bandwidth < infinity ->
        let bytes = size msg in
        count_bytes bytes;
        let d = Float.max now link.busy_until +. (float_of_int bytes /. t.bandwidth) in
        link.busy_until <- d;
        d
    | Some size ->
        count_bytes (size msg);
        now
    | None -> now
  in
  let arrival =
    Float.max (departure +. Latency.sample t.latency (Engine.rng t.engine)) link.last_arrival
  in
  link.last_arrival <- arrival;
  ignore
    (Engine.schedule_at t.engine ~time:arrival (fun () -> handle t ~dst ~src msg)
      : Engine.handle)

let send t ~src ~dst msg =
  check_node t src;
  check_node t dst;
  if t.nodes.(src).alive && t.nodes.(dst).alive then begin
    t.sent <- t.sent + 1;
    (match t.probe with None -> () | Some p -> Metrics.Counter.incr p.m_sent);
    let link = t.links.(src).(dst) in
    if t.manual || link.partitioned then begin
      (* A held link carries exactly one FIFO stream, so every entry
         is walk-eligible. *)
      (match t.shed_policy with
      | Some p when p.sheddable msg ->
          shed_queue t p ~dst ~same_stream:(fun _ -> true) ~msg_of:(fun m -> m) link.held msg
      | Some _ | None -> ());
      Queue.add msg link.held
    end
    else schedule_arrival t ~src ~dst msg
  end

let broadcast t ~src ?(include_self = true) msg =
  check_node t src;
  for dst = 0 to size t - 1 do
    if include_self || dst <> src then send t ~src ~dst msg
  done

let crash t ~node =
  check_node t node;
  let n = t.nodes.(node) in
  n.alive <- false;
  Queue.clear n.inbox;
  (* Manual mode models crash-stop as absorbing in-flight traffic to
     the node: it arrives while the process is down. (Scheduled-mode
     arrivals get the same treatment from the [alive] check in
     [handle].) *)
  if t.manual then
    Array.iter (fun row -> Queue.clear row.(node).held) t.links

let revive t ~node =
  check_node t node;
  let n = t.nodes.(node) in
  n.alive <- true;
  n.paused <- false;
  (* A restarted process is a new incarnation: in-flight traffic to the
     old one stays lost (it was cleared at crash time), and per-link
     FIFO clocks are untouched, so the reliable-channel contract holds
     for everything sent from now on. *)
  Queue.clear n.inbox

let alive t ~node =
  check_node t node;
  t.nodes.(node).alive

let pause_receive t ~node =
  check_node t node;
  t.nodes.(node).paused <- true

let resume_receive t ~node =
  check_node t node;
  let n = t.nodes.(node) in
  n.paused <- false;
  (* Drain in order; the handler may re-pause, which stops the drain. *)
  let rec drain () =
    if (not n.paused) && n.alive && not (Queue.is_empty n.inbox) then begin
      let src, msg = Queue.pop n.inbox in
      note_delivered t;
      (match n.handler with Some f -> f ~src msg | None -> ());
      drain ()
    end
  in
  drain ()

let receive_paused t ~node =
  check_node t node;
  t.nodes.(node).paused

let inbox_length t ~node =
  check_node t node;
  Queue.length t.nodes.(node).inbox

(* Sheddable (data) entries only — the number the overload scenarios
   budget, since control traffic is never shed and would otherwise
   drown the signal. Falls back to the full length without a policy. *)
let inbox_data_length t ~node =
  check_node t node;
  match t.shed_policy with
  | None -> Queue.length t.nodes.(node).inbox
  | Some p ->
      Queue.fold (fun n (_, m) -> if p.sheddable m then n + 1 else n) 0 t.nodes.(node).inbox

let disconnect t a b =
  check_node t a;
  check_node t b;
  t.links.(a).(b).partitioned <- true;
  t.links.(b).(a).partitioned <- true

let release t ~src ~dst =
  let link = t.links.(src).(dst) in
  link.partitioned <- false;
  (* Manual mode: healed traffic stays queued for explicit delivery. *)
  if not t.manual then
    while not (Queue.is_empty link.held) do
      schedule_arrival t ~src ~dst (Queue.pop link.held)
    done

let reconnect t a b =
  check_node t a;
  check_node t b;
  release t ~src:a ~dst:b;
  release t ~src:b ~dst:a

let messages_sent t = t.sent

let messages_delivered t = t.delivered

let bytes_sent t = t.bytes

(* --- Manual-delivery introspection and control (model checking) --- *)

let manual t = t.manual

let partitioned t ~src ~dst =
  check_node t src;
  check_node t dst;
  t.links.(src).(dst).partitioned

let inflight t ~src ~dst =
  check_node t src;
  check_node t dst;
  Queue.length t.links.(src).(dst).held

let peek_inflight t ~src ~dst =
  check_node t src;
  check_node t dst;
  Queue.peek_opt t.links.(src).(dst).held

let iter_inflight t ~src ~dst f =
  check_node t src;
  check_node t dst;
  Queue.iter f t.links.(src).(dst).held

let manual_deliver t ~src ~dst =
  if not t.manual then invalid_arg "Network.manual_deliver: not in manual mode";
  check_node t src;
  check_node t dst;
  let link = t.links.(src).(dst) in
  if link.partitioned || Queue.is_empty link.held then false
  else begin
    let msg = Queue.pop link.held in
    handle t ~dst ~src msg;
    true
  end
