(** Structured trace-event stream.

    A tracer stamps typed protocol events with a timestamp (from a
    pluggable clock: virtual time under the simulator, wall clock in
    the runtime) and a sequence number, and fans them out to a sink:

    - {!nop} — disabled; the shared default everywhere.
    - {!memory} — captured in order, for tests and the experiments
      pipeline ({!records}).
    - {!jsonl} — line-delimited JSON on an [out_channel], for offline
      analysis; {!record_of_json} parses it back.
    - {!ring} — a bounded ring buffer (the flight recorder): always
      cheap to leave on, holding the last N events for a postmortem
      dump when something goes wrong.
    - {!tee} — fan out to two sinks (e.g. a JSONL file {e and} a
      flight-recorder ring).

    The hot-path discipline is the {!Logs} one: guard every emission
    with {!enabled} so that a disabled tracer costs one load and a
    branch and never allocates the event:

    {[ if Trace.enabled tr then Trace.emit tr (Purge { ... }) ]} *)

type site = At_multicast | At_receive | At_install
(** Where a purge happened: on local multicast (t2), on reception
    (t3), or on view installation (injection of the agreed pred, t8). *)

type event =
  | Multicast of { node : int; view_id : int; sn : int }
      (** The message lifecycle's [submit] span: the application handed
          message [(node, sn)] to the protocol (t2). *)
  | Tx of { node : int; dst : int; sender : int; sn : int; view_id : int }
      (** [node] handed a DATA frame for message [(sender, sn)] to the
          transport towards [dst]. One event per destination. *)
  | Rx of { node : int; src : int; sender : int; sn : int; view_id : int }
      (** A DATA frame for message [(sender, sn)] arrived at [node]
          from [src] (before the duplicate/cover guards run). *)
  | Deliver of { node : int; view_id : int; sender : int; sn : int }
      (** The application pulled message [(sender, sn)] at [node] (t1).
          [Deliver.time - Multicast.time] is the end-to-end delivery
          latency when both nodes share a clock. *)
  | StableMsg of { node : int; sender : int; sn : int }
      (** Message [(sender, sn)] became stable at [node]: every
          member's gossiped receive floor covers it, so it was dropped
          from the PRED bookkeeping. *)
  | Purge of { node : int; view_id : int; at_step : site; sender : int; sn : int }
      (** One event per purged message: [sender]/[sn] identify the
          message dropped as obsolete. *)
  | ViewInstall of { node : int; view_id : int; members : int list }
  | ConsensusDecide of { node : int; view_id : int }
  | Suspect of { node : int; suspect : int }
  | Block of { node : int; view_id : int }
  | Unblock of { node : int; view_id : int }
  | TcpReconnect of { node : int; peer : int }
      (** An outgoing link came up after at least one failed dial. *)
  | TcpDrop of { node : int; peer : int; reason : string }
      (** The transport dropped traffic or reset a link: a frame to an
          unknown or written-off destination, an oversize inbound
          frame, a malformed hello, a broken stream, a peer written
          off after exhausting its dial budget, or a quarantined peer
          trying to reconnect before its cooldown expired. *)
  | Quarantine of { node : int; peer : int; score : int }
      (** [peer]'s misbehavior score (accumulated decode failures)
          crossed the quarantine threshold at [node]: its links are
          torn down and its reconnects refused until the cooldown
          expires. [score] is the rounded score at escalation. *)
  | Fault of { kind : string; node : int; peer : int }
      (** A chaos-injected fault ([kind] names the action: [crash],
          [pause], [partition], ...). [peer] is the second endpoint for
          link faults and [-1] when not applicable. *)
  | Join of { node : int; contact : int }
      (** A joining member sent a JOIN request to [contact]. *)
  | StateTransfer of { node : int; peer : int; bytes : int }
      (** A SYNC state transfer: at the sponsor, [peer] is the joiner
          it synced; at the joiner, [peer] is the sponsor. [bytes] is
          the application-state payload size (0 when none). *)
  | WalRecovery of {
      node : int;
      records : int;
      truncated : int;
      skipped : int;
      tainted : bool;
    }
      (** A node recovered durable state from its write-ahead log:
          [records] valid records replayed, [truncated] damaged bytes
          discarded, [skipped] corrupt interior regions salvaged
          around (quarantined to a [.corrupt] sidecar). [tainted]
          means the scan could not prove the durable-lease suffix
          intact, so the node must not trust the recovered lease
          ceiling. *)
  | Divergence of { node : int; view_id : int }
      (** [node]'s replicated-state digest disagreed with the rest of
          view [view_id] (see the digest gossip in the node/group
          layer): it is self-demoting to joiner and re-syncing. *)
  | Parked of { node : int; view_id : int }
      (** A member lost the primary component: a view change could not
          assemble a majority of view [view_id] within the park
          deadline, so the member stopped delivering and multicasting
          and started probing for the primary. *)
  | Merge of { node : int; view_id : int; parked_ms : int }
      (** A parked member rejoined the primary component via JOIN/SYNC,
          installing view [view_id] after [parked_ms] milliseconds out
          of the group. *)
  | Backpressure of { node : int; peer : int; stage : string; pending : int }
      (** [node]'s outbound queue towards [peer] crossed a flow-control
          boundary: [stage] is ["soft"] (shedding engaged), ["hard"]
          (admission control engaged), ["reported"] (persistently over
          the hard watermark — the slow-member policy flagged it), or
          ["resume"] (drained back under the resume watermark).
          [pending] is the queue size in bytes at the transition. *)
  | Shed of { node : int; peer : int; sender : int; sn : int }
      (** A queued-but-unsent frame carrying message [sender]:[sn] was
          purged from [node]'s outbound queue towards [peer] (or from a
          paused receiver's backlog) under the prefix-safe suffix rule
          — a newer queued frame covers it. *)

type record = { time : float; seq : int; event : event }

type t

val nop : t
(** The shared disabled tracer; {!enabled} is [false], {!emit} is a
    no-op, {!set_clock} is ignored. *)

val memory : ?clock:(unit -> float) -> unit -> t
(** Clock defaults to a constant [0.]. *)

val jsonl : ?clock:(unit -> float) -> out_channel -> t
(** Writes one JSON object per event, newline-terminated. The channel
    is flushed by {!flush}, not per event. *)

val ring : ?clock:(unit -> float) -> ?capacity:int -> unit -> t
(** Flight recorder: keeps the last [capacity] (default 4096) records,
    overwriting the oldest. {!records} returns the retained window
    oldest-first; {!clear} empties it. Cheap enough to leave always on
    — an emission is one record allocation and two queue operations. *)

val tee : t -> t -> t
(** [tee a b] forwards every {!emit} to both tracers (each stamps its
    own clock and sequence). {!enabled} when either side is;
    {!set_clock}, {!flush} and {!clear} apply to both; {!records}
    reads the first buffering branch (see {!records}). *)

val enabled : t -> bool

val emit : t -> event -> unit

val now : t -> float
(** The tracer's current clock reading (0. for {!nop}). *)

val set_clock : t -> (unit -> float) -> unit
(** Re-point the clock, e.g. at {!Svs_sim.Engine.now} so simulated
    runs stamp events with virtual time. *)

val records : t -> record list
(** Captured records, oldest first. Empty unless the sink is
    {!memory}, {!ring} (the retained window), or a {!tee} over one —
    for a tee, the first buffering branch's records (both branches saw
    the same stream, so reading both would duplicate it). *)

val clear : t -> unit
(** Drop captured records (memory and ring sinks only). *)

val flush : t -> unit

val record_to_json : record -> string
(** One-line JSON, no trailing newline. *)

val record_of_json : string -> record option
(** Parses exactly the objects {!record_to_json} produces. *)

val pp_event : Format.formatter -> event -> unit
