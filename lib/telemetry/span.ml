type timeline = {
  sender : int;
  sn : int;
  submit : float option;
  tx : (int * float) list;
  rx : (int * float) list;
  deliver : (int * float) list;
  stable : (int * float) list;
  purged : (int * float) list;
  shed : (int * float) list;
}

type stat = { count : int; mean : float; p50 : float; p99 : float; max : float }

type anomaly =
  | Never_stable of { messages : int }
  | Floor_regression of { node : int; sender : int; sn : int; prev : int }
  | Long_block of { node : int; view_id : int; span : float }

type report = {
  nodes : int list;
  events : int;
  messages : int;
  deliveries : int;
  purges : int;
  sheds : int;
  shed_effectiveness : float;
      (* Fraction of per-peer transmissions that semantic shedding
         saved: sheds / (sheds + tx). A tx with no deliver at a
         shedding peer is expected — the frame was obsolete and a
         cover reached the peer instead — so sheds are reported here,
         not flagged as anomalies. *)
  span : float;
  msgs_per_s : float;
  delivery_latency : stat option;
  remote_latency : stat option;
  stability_lag : stat option;
  purge_latency : stat option;
  purge_effectiveness : float;
  view_changes : int;
  view_spans : stat option;
  merge_spans : stat option;
  anomalies : anomaly list;
}

(* Flight dumps from crashed nodes routinely end mid-line; corrupt or
   truncated lines are skipped, and the count is reported so the
   analyzer can warn instead of silently under-reading. *)
let load_file_counted path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let out = ref [] in
      let bad = ref 0 in
      (try
         while true do
           let line = input_line ic in
           match Trace.record_of_json line with
           | Some r -> out := r :: !out
           | None -> if String.trim line <> "" then incr bad
         done
       with End_of_file -> ());
      (List.rev !out, !bad))

let load_file path = fst (load_file_counted path)

(* Merge the per-node streams on the (shared) trace clock; a stable
   sort keeps each stream's own emission order for equal stamps. *)
let merge streams =
  List.stable_sort
    (fun (a : Trace.record) b -> Float.compare a.Trace.time b.Trace.time)
    (List.concat streams)

let event_node : Trace.event -> int = function
  | Multicast { node; _ }
  | Tx { node; _ }
  | Rx { node; _ }
  | Deliver { node; _ }
  | StableMsg { node; _ }
  | Purge { node; _ }
  | ViewInstall { node; _ }
  | ConsensusDecide { node; _ }
  | Suspect { node; _ }
  | Block { node; _ }
  | Unblock { node; _ }
  | TcpReconnect { node; _ }
  | TcpDrop { node; _ }
  | Quarantine { node; _ }
  | Fault { node; _ }
  | Join { node; _ }
  | StateTransfer { node; _ }
  | WalRecovery { node; _ }
  | Divergence { node; _ }
  | Parked { node; _ }
  | Merge { node; _ }
  | Backpressure { node; _ }
  | Shed { node; _ } ->
      node

type cell = {
  mutable c_submit : float option;
  mutable c_tx : (int * float) list;
  mutable c_rx : (int * float) list;
  mutable c_deliver : (int * float) list;
  mutable c_stable : (int * float) list;
  mutable c_purged : (int * float) list;
  mutable c_shed : (int * float) list;
}

let cells records =
  let tbl : (int * int, cell) Hashtbl.t = Hashtbl.create 256 in
  let cell sender sn =
    let key = (sender, sn) in
    match Hashtbl.find_opt tbl key with
    | Some c -> c
    | None ->
        let c =
          {
            c_submit = None;
            c_tx = [];
            c_rx = [];
            c_deliver = [];
            c_stable = [];
            c_purged = [];
            c_shed = [];
          }
        in
        Hashtbl.replace tbl key c;
        c
  in
  List.iter
    (fun (r : Trace.record) ->
      let t = r.Trace.time in
      match r.Trace.event with
      | Multicast { node; sn; _ } ->
          let c = cell node sn in
          if c.c_submit = None then c.c_submit <- Some t
      | Tx { node = _; dst; sender; sn; _ } ->
          let c = cell sender sn in
          c.c_tx <- (dst, t) :: c.c_tx
      | Rx { node; sender; sn; _ } ->
          let c = cell sender sn in
          c.c_rx <- (node, t) :: c.c_rx
      | Deliver { node; sender; sn; _ } ->
          let c = cell sender sn in
          c.c_deliver <- (node, t) :: c.c_deliver
      | StableMsg { node; sender; sn } ->
          let c = cell sender sn in
          c.c_stable <- (node, t) :: c.c_stable
      | Purge { node; sender; sn; _ } ->
          let c = cell sender sn in
          c.c_purged <- (node, t) :: c.c_purged
      | Shed { peer; sender; sn; _ } ->
          let c = cell sender sn in
          c.c_shed <- (peer, t) :: c.c_shed
      | _ -> ())
    records;
  tbl

let timelines streams =
  let tbl = cells (merge streams) in
  Hashtbl.fold
    (fun (sender, sn) c acc ->
      {
        sender;
        sn;
        submit = c.c_submit;
        tx = List.rev c.c_tx;
        rx = List.rev c.c_rx;
        deliver = List.rev c.c_deliver;
        stable = List.rev c.c_stable;
        purged = List.rev c.c_purged;
        shed = List.rev c.c_shed;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare (a.sender, a.sn) (b.sender, b.sn))

(* Exact order statistics; p50/p99 by nearest rank so hand-written
   fixtures have predictable answers. *)
let stat_of = function
  | [] -> None
  | xs ->
      let arr = Array.of_list xs in
      Array.sort Float.compare arr;
      let n = Array.length arr in
      let rank q =
        let i = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
        arr.(Stdlib.max 0 (Stdlib.min (n - 1) i))
      in
      Some
        {
          count = n;
          mean = List.fold_left ( +. ) 0.0 xs /. float_of_int n;
          p50 = rank 0.5;
          p99 = rank 0.99;
          max = arr.(n - 1);
        }

let analyze ?(block_threshold = 5.0) streams =
  let records = merge streams in
  let tls = timelines [ records ] in
  let nodes =
    List.sort_uniq compare (List.map (fun (r : Trace.record) -> event_node r.Trace.event) records)
  in
  (* Span populations. *)
  let delivery = ref [] and remote = ref [] and stability = ref [] and purge_lat = ref [] in
  let deliveries = ref 0 and purges = ref 0 and messages = ref 0 in
  let sheds = ref 0 and txs = ref 0 in
  let first_submit = ref infinity and last_deliver = ref neg_infinity in
  List.iter
    (fun tl ->
      (match tl.submit with
      | None -> ()
      | Some s ->
          incr messages;
          if s < !first_submit then first_submit := s;
          List.iter
            (fun (node, t) ->
              delivery := (t -. s) :: !delivery;
              if node <> tl.sender then remote := (t -. s) :: !remote)
            tl.deliver;
          (match tl.stable with
          | [] -> ()
          | (_, t0) :: rest ->
              let earliest = List.fold_left (fun acc (_, t) -> Float.min acc t) t0 rest in
              stability := (earliest -. s) :: !stability);
          List.iter (fun (_, t) -> purge_lat := (t -. s) :: !purge_lat) tl.purged);
      deliveries := !deliveries + List.length tl.deliver;
      purges := !purges + List.length tl.purged;
      sheds := !sheds + List.length tl.shed;
      txs := !txs + List.length tl.tx;
      List.iter (fun (_, t) -> if t > !last_deliver then last_deliver := t) tl.deliver)
    tls;
  (* Event-order passes: FIFO floors per (node, sender), blocked spans,
     installed views. *)
  let anomalies = ref [] in
  let floors : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let open_blocks : (int, int * float) Hashtbl.t = Hashtbl.create 8 in
  let block_spans = ref [] in
  let merge_spans = ref [] in
  let views = ref [] in
  let stable_seen = ref false in
  let close_block node time =
    match Hashtbl.find_opt open_blocks node with
    | None -> ()
    | Some (view_id, t0) ->
        Hashtbl.remove open_blocks node;
        let span = time -. t0 in
        block_spans := span :: !block_spans;
        if span > block_threshold then
          anomalies := Long_block { node; view_id; span } :: !anomalies
  in
  List.iter
    (fun (r : Trace.record) ->
      match r.Trace.event with
      | Deliver { node; sender; sn; _ } -> (
          match Hashtbl.find_opt floors (node, sender) with
          | Some prev when prev >= sn ->
              anomalies := Floor_regression { node; sender; sn; prev } :: !anomalies
          | _ -> Hashtbl.replace floors (node, sender) sn)
      | Block { node; view_id } ->
          if not (Hashtbl.mem open_blocks node) then
            Hashtbl.replace open_blocks node (view_id, r.Trace.time)
      | Unblock { node; _ } -> close_block node r.Trace.time
      | ViewInstall { node; view_id; _ } ->
          close_block node r.Trace.time;
          if not (List.mem view_id !views) then views := view_id :: !views
      | Merge { parked_ms; _ } -> merge_spans := (float_of_int parked_ms /. 1000.0) :: !merge_spans
      | StableMsg _ -> stable_seen := true
      | _ -> ())
    records;
  if !stable_seen then begin
    let never =
      List.length (List.filter (fun tl -> tl.deliver <> [] && tl.stable = []) tls)
    in
    if never > 0 then anomalies := Never_stable { messages = never } :: !anomalies
  end;
  let span =
    if !last_deliver > !first_submit then !last_deliver -. !first_submit else 0.0
  in
  {
    nodes;
    events = List.length records;
    messages = !messages;
    deliveries = !deliveries;
    purges = !purges;
    sheds = !sheds;
    shed_effectiveness =
      (let total = !sheds + !txs in
       if total = 0 then 0.0 else float_of_int !sheds /. float_of_int total);
    span;
    msgs_per_s = (if span > 0.0 then float_of_int !deliveries /. span else 0.0);
    delivery_latency = stat_of !delivery;
    remote_latency = stat_of !remote;
    stability_lag = stat_of !stability;
    purge_latency = stat_of !purge_lat;
    purge_effectiveness =
      (let total = !purges + !deliveries in
       if total = 0 then 0.0 else float_of_int !purges /. float_of_int total);
    view_changes = List.length !views;
    view_spans = stat_of !block_spans;
    merge_spans = stat_of !merge_spans;
    anomalies = List.rev !anomalies;
  }

(* --- Rendering --- *)

let float_str f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let stat_json = function
  | None -> "null"
  | Some s ->
      Printf.sprintf "{\"count\":%d,\"mean\":%s,\"p50\":%s,\"p99\":%s,\"max\":%s}" s.count
        (float_str s.mean) (float_str s.p50) (float_str s.p99) (float_str s.max)

let report_to_json r =
  let anomaly_count pred = List.length (List.filter pred r.anomalies) in
  Printf.sprintf
    "{\"bench\":\"rt_throughput\",\"nodes\":%d,\"events\":%d,\"messages\":%d,\
     \"deliveries\":%d,\"purged\":%d,\"shed\":%d,\"shed_effectiveness\":%s,\
     \"span_s\":%s,\"msgs_per_s\":%s,\
     \"delivery_latency_s\":%s,\"remote_delivery_latency_s\":%s,\"stability_lag_s\":%s,\
     \"purge_latency_s\":%s,\"purge_effectiveness\":%s,\"view_changes\":%d,\
     \"view_span_s\":%s,\"merge_s\":%s,\"anomalies\":{\"never_stable\":%d,\
     \"floor_regressions\":%d,\"long_blocks\":%d}}"
    (List.length r.nodes) r.events r.messages r.deliveries r.purges r.sheds
    (float_str r.shed_effectiveness) (float_str r.span)
    (float_str r.msgs_per_s)
    (stat_json r.delivery_latency)
    (stat_json r.remote_latency)
    (stat_json r.stability_lag)
    (stat_json r.purge_latency)
    (float_str r.purge_effectiveness)
    r.view_changes
    (stat_json r.view_spans)
    (stat_json r.merge_spans)
    (anomaly_count (function Never_stable { messages } -> messages > 0 | _ -> false))
    (anomaly_count (function Floor_regression _ -> true | _ -> false))
    (anomaly_count (function Long_block _ -> true | _ -> false))

let pp_times ppf times =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
    (fun ppf (node, t) -> Format.fprintf ppf "%d@@%.6f" node t)
    ppf times

let pp_timeline ppf tl =
  Format.fprintf ppf "@[<h>msg %d:%d" tl.sender tl.sn;
  (match tl.submit with
  | Some t -> Format.fprintf ppf " submit@@%.6f" t
  | None -> Format.fprintf ppf " submit=?");
  if tl.rx <> [] then Format.fprintf ppf " rx[%a]" pp_times tl.rx;
  if tl.deliver <> [] then Format.fprintf ppf " deliver[%a]" pp_times tl.deliver;
  if tl.stable <> [] then Format.fprintf ppf " stable[%a]" pp_times tl.stable;
  if tl.purged <> [] then Format.fprintf ppf " purged[%a]" pp_times tl.purged;
  if tl.shed <> [] then Format.fprintf ppf " shed[%a]" pp_times tl.shed;
  Format.fprintf ppf "@]"

let pp_anomaly ppf = function
  | Never_stable { messages } ->
      Format.fprintf ppf "never-stable: %d delivered message(s) never declared stable" messages
  | Floor_regression { node; sender; sn; prev } ->
      Format.fprintf ppf
        "floor-regression: node %d delivered %d:%d after already delivering %d:%d" node sender
        sn sender prev
  | Long_block { node; view_id; span } ->
      Format.fprintf ppf "long-block: node %d blocked %.3fs leaving view %d" node span view_id

let pp_stat ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some s ->
      Format.fprintf ppf "n=%d mean=%.6fs p50=%.6fs p99=%.6fs max=%.6fs" s.count s.mean s.p50
        s.p99 s.max

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "nodes            %d (%a)@,"
    (List.length r.nodes)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    r.nodes;
  Format.fprintf ppf "events           %d@," r.events;
  Format.fprintf ppf "messages         %d@," r.messages;
  Format.fprintf ppf "deliveries       %d@," r.deliveries;
  Format.fprintf ppf "purged           %d (effectiveness %.3f)@," r.purges
    r.purge_effectiveness;
  Format.fprintf ppf "shed             %d (effectiveness %.3f; tx-without-deliver at a \
                      shedding peer is expected)@,"
    r.sheds r.shed_effectiveness;
  Format.fprintf ppf "span             %.3fs (%.1f msgs/s end-to-end)@," r.span r.msgs_per_s;
  Format.fprintf ppf "delivery latency %a@," pp_stat r.delivery_latency;
  Format.fprintf ppf "remote latency   %a@," pp_stat r.remote_latency;
  Format.fprintf ppf "stability lag    %a@," pp_stat r.stability_lag;
  Format.fprintf ppf "purge latency    %a@," pp_stat r.purge_latency;
  Format.fprintf ppf "view changes     %d@," r.view_changes;
  Format.fprintf ppf "blocked spans    %a@," pp_stat r.view_spans;
  Format.fprintf ppf "merge spans      %a@," pp_stat r.merge_spans;
  (match r.anomalies with
  | [] -> Format.fprintf ppf "anomalies        none@,"
  | list ->
      Format.fprintf ppf "anomalies        %d@," (List.length list);
      List.iter (fun a -> Format.fprintf ppf "  %a@," pp_anomaly a) list);
  Format.fprintf ppf "@]"
