(** Offline analysis of {!Trace} streams: merge per-node JSONL traces,
    reconstruct per-message lifecycle timelines, and summarise the
    numbers the paper's argument is about — end-to-end delivery
    latency, stability lag, purge latency and effectiveness, blocked
    and view-change spans.

    Every multicast already carries a stable identity (sender
    incarnation × sequence number), so records from different nodes
    correlate without any extra wire field: a [Multicast] at the
    sender is the [submit] instant, each [Deliver] elsewhere closes a
    latency span, [StableMsg] closes the stability span and [Purge]
    the obsolescence span. Timestamps are whatever clock stamped the
    traces — wall time in the runtime, so cross-node spans are
    meaningful on one machine (or NTP-close ones). *)

(** One message's reconstructed lifecycle. Node/time pairs are in
    trace order; absent phases are empty. *)
type timeline = {
  sender : int;
  sn : int;
  submit : float option;  (** [Multicast] time at the sender. *)
  tx : (int * float) list;  (** (destination, handed to transport). *)
  rx : (int * float) list;  (** (node, arrival). *)
  deliver : (int * float) list;  (** (node, delivered to app). *)
  stable : (int * float) list;  (** (node, declared stable). *)
  purged : (int * float) list;  (** (node, purged as obsolete). *)
  shed : (int * float) list;
      (** (peer, shed from a transport queue towards that peer). A
          [tx] with no [deliver] at a shedding peer is expected, not
          an anomaly: a cover reached the peer instead. *)
}

(** Exact order statistics over a span population (seconds). [p50] and
    [p99] use the nearest-rank method, so hand-computed fixtures match
    bit-for-bit. *)
type stat = { count : int; mean : float; p50 : float; p99 : float; max : float }

type anomaly =
  | Never_stable of { messages : int }
      (** Messages delivered somewhere but never declared stable
          anywhere, while the trace shows stability tracking was
          active. A small tail is normal in a finite run; a large
          count means floor gossip is not converging. *)
  | Floor_regression of { node : int; sender : int; sn : int; prev : int }
      (** [node] delivered [sn] from [sender] after already delivering
          [prev >= sn] — a FIFO/duplicate violation. *)
  | Long_block of { node : int; view_id : int; span : float }
      (** A blocked period (first INIT to installation) exceeded the
          analysis threshold. *)

type report = {
  nodes : int list;  (** Every node id seen in the traces. *)
  events : int;  (** Records analysed. *)
  messages : int;  (** Distinct submitted messages. *)
  deliveries : int;
  purges : int;
  sheds : int;  (** Frames shed from transport queues ([Shed] events). *)
  shed_effectiveness : float;
      (** Fraction of per-peer transmissions semantic shedding saved:
          [sheds /. (sheds + tx)]. *)
  span : float;  (** First submit to last delivery (seconds). *)
  msgs_per_s : float;  (** [deliveries /. span]. *)
  delivery_latency : stat option;  (** submit → deliver, every node. *)
  remote_latency : stat option;  (** submit → deliver, node ≠ sender. *)
  stability_lag : stat option;  (** submit → first stable. *)
  purge_latency : stat option;  (** submit → purge. *)
  purge_effectiveness : float;
      (** Fraction of accounted message outcomes that were purges:
          [purges /. (purges + deliveries)]. *)
  view_changes : int;  (** Distinct views installed. *)
  view_spans : stat option;  (** Block → next install, per node. *)
  merge_spans : stat option;  (** Parked durations from [Merge]. *)
  anomalies : anomaly list;
}

val load_file : string -> Trace.record list
(** Parse a JSONL trace file, skipping unparseable lines. Raises
    [Sys_error] if the file cannot be read. *)

val load_file_counted : string -> Trace.record list * int
(** Like {!load_file}, also returning how many non-empty lines failed
    to parse (truncated or corrupt — flight dumps from crashed nodes
    routinely end mid-line), so callers can warn instead of silently
    under-reading. *)

val timelines : Trace.record list list -> timeline list
(** Merge per-node record streams and reconstruct one timeline per
    distinct message, ordered by (sender, sn). *)

val analyze : ?block_threshold:float -> Trace.record list list -> report
(** Analyse the merged streams. [block_threshold] (default 5 s) is the
    [Long_block] anomaly cutoff. *)

val report_to_json : report -> string
(** The [BENCH_rt_throughput.json] payload: one flat JSON object. *)

val pp_timeline : Format.formatter -> timeline -> unit

val pp_anomaly : Format.formatter -> anomaly -> unit

val pp_report : Format.formatter -> report -> unit
