type labels = (string * string) list

module Counter = struct
  type t = { mutable v : int }

  let detached () = { v = 0 }

  let incr t = t.v <- t.v + 1

  let add t n =
    if n < 0 then invalid_arg "Metrics.Counter.add: negative increment";
    t.v <- t.v + n

  let value t = t.v
end

module Gauge = struct
  type t = { mutable v : float }

  let detached () = { v = 0.0 }

  let set t v = t.v <- v

  let add t d = t.v <- t.v +. d

  let value t = t.v
end

module Histogram = struct
  (* Four sub-buckets per power of two: a value m * 2^e (m in [0.5, 1))
     lands in bucket (e + exp_offset) * 4 + floor((2m - 1) * 4). The
     exponent is clamped to [-32, 31]; bucket 0 doubles as the
     underflow bucket for non-positive values. *)
  let exp_offset = 32

  let n_buckets = 4 * 2 * exp_offset

  type t = {
    buckets : int array;
    mutable total : int;
    mutable sum : float;
    mutable max : float;
  }

  let detached () =
    { buckets = Array.make n_buckets 0; total = 0; sum = 0.0; max = neg_infinity }

  let bucket_index v =
    if v <= 0.0 then 0
    else begin
      let m, e = Float.frexp v in
      if e < -exp_offset then 0 (* underflow *)
      else if e > exp_offset - 1 then n_buckets - 1 (* overflow *)
      else begin
        let sub = int_of_float ((m *. 2.0 -. 1.0) *. 4.0) in
        let sub = if sub < 0 then 0 else if sub > 3 then 3 else sub in
        ((e + exp_offset) * 4) + sub
      end
    end

  (* Upper edge of bucket [i]: 2^(e-1) * (1 + (sub+1)/4). *)
  let bucket_upper i =
    let e = (i / 4) - exp_offset in
    let sub = i mod 4 in
    Float.ldexp (1.0 +. (float_of_int (sub + 1) /. 4.0)) (e - 1)

  let observe t v =
    let i = bucket_index v in
    t.buckets.(i) <- t.buckets.(i) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. v;
    if v > t.max then t.max <- v

  let count t = t.total

  let sum t = t.sum

  let mean t = if t.total = 0 then nan else t.sum /. float_of_int t.total

  let max_value t = t.max

  let quantile t q =
    if t.total = 0 then invalid_arg "Metrics.Histogram.quantile: empty histogram";
    if q < 0.0 || q > 1.0 then invalid_arg "Metrics.Histogram.quantile: q out of range";
    let target = q *. float_of_int t.total in
    let rec scan i acc =
      if i >= n_buckets - 1 then t.max (* overflow bucket: edge is meaningless *)
      else
        let acc = acc + t.buckets.(i) in
        if float_of_int acc >= target && acc > 0 then Float.min (bucket_upper i) t.max
        else scan (i + 1) acc
    in
    scan 0 0

  let buckets t =
    let out = ref [] in
    for i = n_buckets - 1 downto 0 do
      if t.buckets.(i) > 0 then
        let upper = if i = n_buckets - 1 then infinity else bucket_upper i in
        out := (upper, t.buckets.(i)) :: !out
    done;
    !out
end

type value =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t

type instrument = { name : string; labels : labels; value : value }

type t = {
  index : (string * labels, instrument) Hashtbl.t;
  mutable order : instrument list; (* reversed *)
}

let create () = { index = Hashtbl.create 32; order = [] }

let normalise labels = List.sort compare labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register t ?(labels = []) name fresh =
  let labels = normalise labels in
  match Hashtbl.find_opt t.index (name, labels) with
  | Some inst -> inst
  | None ->
      let inst = { name; labels; value = fresh () } in
      Hashtbl.replace t.index (name, labels) inst;
      t.order <- inst :: t.order;
      inst

let mismatch name inst want =
  invalid_arg
    (Printf.sprintf "Metrics.%s: %s already registered as a %s" want name
       (kind_name inst.value))

let counter t ?labels name =
  match register t ?labels name (fun () -> Counter (Counter.detached ())) with
  | { value = Counter c; _ } -> c
  | inst -> mismatch name inst "counter"

let gauge t ?labels name =
  match register t ?labels name (fun () -> Gauge (Gauge.detached ())) with
  | { value = Gauge g; _ } -> g
  | inst -> mismatch name inst "gauge"

let histogram t ?labels name =
  match register t ?labels name (fun () -> Histogram (Histogram.detached ())) with
  | { value = Histogram h; _ } -> h
  | inst -> mismatch name inst "histogram"

let instruments t = List.rev t.order

let counter_value t ?(labels = []) name =
  match Hashtbl.find_opt t.index (name, normalise labels) with
  | Some { value = Counter c; _ } -> Counter.value c
  | Some _ | None -> 0

let sum_counters t name =
  Hashtbl.fold
    (fun (n, _) inst acc ->
      match inst.value with Counter c when n = name -> acc + Counter.value c | _ -> acc)
    t.index 0

let pp_labels ppf = function
  | [] -> ()
  | labels ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           (fun ppf (k, v) -> Format.fprintf ppf "%s=%s" k v))
        labels

(* --- Prometheus text exposition (version 0.0.4) --- *)

let prom_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

(* Render one sample's label set; [extra] appends e.g. an [le] pair. *)
let prom_labels ?extra labels =
  let pairs =
    List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) labels
    @ (match extra with None -> [] | Some (k, v) -> [ Printf.sprintf "%s=\"%s\"" k v ])
  in
  match pairs with [] -> "" | _ -> "{" ^ String.concat "," pairs ^ "}"

let pp_prometheus ppf t =
  let sorted =
    List.sort
      (fun a b ->
        match String.compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)
      (instruments t)
  in
  let last_name = ref "" in
  List.iter
    (fun inst ->
      if inst.name <> !last_name then begin
        last_name := inst.name;
        Format.fprintf ppf "# TYPE %s %s@\n" inst.name (kind_name inst.value)
      end;
      match inst.value with
      | Counter c ->
          Format.fprintf ppf "%s%s %d@\n" inst.name (prom_labels inst.labels) (Counter.value c)
      | Gauge g ->
          Format.fprintf ppf "%s%s %s@\n" inst.name (prom_labels inst.labels)
            (prom_float (Gauge.value g))
      | Histogram h ->
          let cumulative = ref 0 in
          List.iter
            (fun (upper, count) ->
              if upper <> infinity then begin
                cumulative := !cumulative + count;
                Format.fprintf ppf "%s_bucket%s %d@\n" inst.name
                  (prom_labels inst.labels ~extra:("le", prom_float upper))
                  !cumulative
              end)
            (Histogram.buckets h);
          Format.fprintf ppf "%s_bucket%s %d@\n" inst.name
            (prom_labels inst.labels ~extra:("le", "+Inf"))
            (Histogram.count h);
          Format.fprintf ppf "%s_sum%s %s@\n" inst.name (prom_labels inst.labels)
            (prom_float (Histogram.sum h));
          Format.fprintf ppf "%s_count%s %d@\n" inst.name (prom_labels inst.labels)
            (Histogram.count h))
    sorted

let prometheus_string t = Format.asprintf "%a" pp_prometheus t

let pp_line ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
    (fun ppf inst ->
      match inst.value with
      | Counter c -> Format.fprintf ppf "%s%a=%d" inst.name pp_labels inst.labels (Counter.value c)
      | Gauge g -> Format.fprintf ppf "%s%a=%g" inst.name pp_labels inst.labels (Gauge.value g)
      | Histogram h ->
          if Histogram.count h = 0 then
            Format.fprintf ppf "%s%a=0/-/-" inst.name pp_labels inst.labels
          else
            Format.fprintf ppf "%s%a=%d/%.3g/%.3g" inst.name pp_labels inst.labels
              (Histogram.count h) (Histogram.mean h)
              (Histogram.quantile h 0.99))
    ppf (instruments t)
