type site = At_multicast | At_receive | At_install

type event =
  | Multicast of { node : int; view_id : int; sn : int }
  | Tx of { node : int; dst : int; sender : int; sn : int; view_id : int }
  | Rx of { node : int; src : int; sender : int; sn : int; view_id : int }
  | Deliver of { node : int; view_id : int; sender : int; sn : int }
  | StableMsg of { node : int; sender : int; sn : int }
  | Purge of { node : int; view_id : int; at_step : site; sender : int; sn : int }
  | ViewInstall of { node : int; view_id : int; members : int list }
  | ConsensusDecide of { node : int; view_id : int }
  | Suspect of { node : int; suspect : int }
  | Block of { node : int; view_id : int }
  | Unblock of { node : int; view_id : int }
  | TcpReconnect of { node : int; peer : int }
  | TcpDrop of { node : int; peer : int; reason : string }
  | Quarantine of { node : int; peer : int; score : int }
  | Fault of { kind : string; node : int; peer : int }
  | Join of { node : int; contact : int }
  | StateTransfer of { node : int; peer : int; bytes : int }
  | WalRecovery of {
      node : int;
      records : int;
      truncated : int;
      skipped : int;
      tainted : bool;
    }
  | Divergence of { node : int; view_id : int }
  | Parked of { node : int; view_id : int }
  | Merge of { node : int; view_id : int; parked_ms : int }
  | Backpressure of { node : int; peer : int; stage : string; pending : int }
  | Shed of { node : int; peer : int; sender : int; sn : int }

type record = { time : float; seq : int; event : event }

type sink =
  | Nop
  | Memory of record Queue.t
  | Jsonl of out_channel
  | Ring of { q : record Queue.t; capacity : int }
  | Tee of t * t

and t = {
  sink : sink;
  mutable clock : unit -> float;
  mutable seq : int;
}

let zero_clock () = 0.0

let nop = { sink = Nop; clock = zero_clock; seq = 0 }

let memory ?(clock = zero_clock) () = { sink = Memory (Queue.create ()); clock; seq = 0 }

let jsonl ?(clock = zero_clock) oc = { sink = Jsonl oc; clock; seq = 0 }

let ring ?(clock = zero_clock) ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.ring: capacity must be positive";
  { sink = Ring { q = Queue.create (); capacity }; clock; seq = 0 }

let tee a b = { sink = Tee (a, b); clock = zero_clock; seq = 0 }

let rec enabled t =
  match t.sink with
  | Nop -> false
  | Memory _ | Jsonl _ | Ring _ -> true
  | Tee (a, b) -> enabled a || enabled b

let now t = t.clock ()

let rec set_clock t clock =
  match t.sink with
  | Nop -> ()
  | Memory _ | Jsonl _ | Ring _ -> t.clock <- clock
  | Tee (a, b) ->
      t.clock <- clock;
      set_clock a clock;
      set_clock b clock

let rec records t =
  match t.sink with
  | Memory q | Ring { q; _ } -> List.of_seq (Queue.to_seq q)
  | Nop | Jsonl _ -> []
  (* Both branches saw the same stream; concatenating would duplicate
     it. Prefer the first branch that actually buffers. *)
  | Tee (a, b) -> ( match records a with [] -> records b | rs -> rs)

let rec clear t =
  match t.sink with
  | Memory q | Ring { q; _ } -> Queue.clear q
  | Nop | Jsonl _ -> ()
  | Tee (a, b) ->
      clear a;
      clear b

let rec flush t =
  match t.sink with
  | Jsonl oc -> Stdlib.flush oc
  | Nop | Memory _ | Ring _ -> ()
  | Tee (a, b) ->
      flush a;
      flush b

let site_name = function
  | At_multicast -> "multicast"
  | At_receive -> "receive"
  | At_install -> "install"

let site_of_name = function
  | "multicast" -> Some At_multicast
  | "receive" -> Some At_receive
  | "install" -> Some At_install
  | _ -> None

(* Shortest representation that still round-trips. *)
let float_str f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let record_to_json { time; seq; event } =
  let b = Buffer.create 96 in
  Buffer.add_string b (Printf.sprintf "{\"t\":%s,\"seq\":%d,\"ev\":" (float_str time) seq);
  let field name v = Buffer.add_string b (Printf.sprintf ",\"%s\":%d" name v) in
  (match event with
  | Multicast { node; view_id; sn } ->
      Buffer.add_string b "\"multicast\"";
      field "node" node;
      field "view" view_id;
      field "sn" sn
  | Tx { node; dst; sender; sn; view_id } ->
      Buffer.add_string b "\"tx\"";
      field "node" node;
      field "dst" dst;
      field "sender" sender;
      field "sn" sn;
      field "view" view_id
  | Rx { node; src; sender; sn; view_id } ->
      Buffer.add_string b "\"rx\"";
      field "node" node;
      field "src" src;
      field "sender" sender;
      field "sn" sn;
      field "view" view_id
  | Deliver { node; view_id; sender; sn } ->
      Buffer.add_string b "\"deliver\"";
      field "node" node;
      field "view" view_id;
      field "sender" sender;
      field "sn" sn
  | StableMsg { node; sender; sn } ->
      Buffer.add_string b "\"stable\"";
      field "node" node;
      field "sender" sender;
      field "sn" sn
  | Purge { node; view_id; at_step; sender; sn } ->
      Buffer.add_string b "\"purge\"";
      field "node" node;
      field "view" view_id;
      Buffer.add_string b (Printf.sprintf ",\"site\":\"%s\"" (site_name at_step));
      field "sender" sender;
      field "sn" sn
  | ViewInstall { node; view_id; members } ->
      Buffer.add_string b "\"view_install\"";
      field "node" node;
      field "view" view_id;
      Buffer.add_string b ",\"members\":[";
      List.iteri
        (fun i p ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int p))
        members;
      Buffer.add_char b ']'
  | ConsensusDecide { node; view_id } ->
      Buffer.add_string b "\"consensus_decide\"";
      field "node" node;
      field "view" view_id
  | Suspect { node; suspect } ->
      Buffer.add_string b "\"suspect\"";
      field "node" node;
      field "suspect" suspect
  | Block { node; view_id } ->
      Buffer.add_string b "\"block\"";
      field "node" node;
      field "view" view_id
  | Unblock { node; view_id } ->
      Buffer.add_string b "\"unblock\"";
      field "node" node;
      field "view" view_id
  | TcpReconnect { node; peer } ->
      Buffer.add_string b "\"tcp_reconnect\"";
      field "node" node;
      field "peer" peer
  | TcpDrop { node; peer; reason } ->
      Buffer.add_string b "\"tcp_drop\"";
      field "node" node;
      field "peer" peer;
      Buffer.add_string b (Printf.sprintf ",\"reason\":\"%s\"" reason)
  | Quarantine { node; peer; score } ->
      Buffer.add_string b "\"quarantine\"";
      field "node" node;
      field "peer" peer;
      field "score" score
  | Fault { kind; node; peer } ->
      Buffer.add_string b "\"fault\"";
      Buffer.add_string b (Printf.sprintf ",\"kind\":\"%s\"" kind);
      field "node" node;
      field "peer" peer
  | Join { node; contact } ->
      Buffer.add_string b "\"join\"";
      field "node" node;
      field "contact" contact
  | StateTransfer { node; peer; bytes } ->
      Buffer.add_string b "\"state_transfer\"";
      field "node" node;
      field "peer" peer;
      field "bytes" bytes
  | WalRecovery { node; records; truncated; skipped; tainted } ->
      Buffer.add_string b "\"wal_recovery\"";
      field "node" node;
      field "records" records;
      field "truncated" truncated;
      field "skipped" skipped;
      field "tainted" (if tainted then 1 else 0)
  | Divergence { node; view_id } ->
      Buffer.add_string b "\"divergence\"";
      field "node" node;
      field "view" view_id
  | Parked { node; view_id } ->
      Buffer.add_string b "\"parked\"";
      field "node" node;
      field "view" view_id
  | Merge { node; view_id; parked_ms } ->
      Buffer.add_string b "\"merge\"";
      field "node" node;
      field "view" view_id;
      field "parked_ms" parked_ms
  | Backpressure { node; peer; stage; pending } ->
      Buffer.add_string b "\"backpressure\"";
      field "node" node;
      field "peer" peer;
      Buffer.add_string b (Printf.sprintf ",\"stage\":\"%s\"" stage);
      field "pending" pending
  | Shed { node; peer; sender; sn } ->
      Buffer.add_string b "\"shed\"";
      field "node" node;
      field "peer" peer;
      field "sender" sender;
      field "sn" sn);
  Buffer.add_char b '}';
  Buffer.contents b

let rec emit t event =
  match t.sink with
  | Nop -> ()
  | Memory q ->
      let r = { time = t.clock (); seq = t.seq; event } in
      t.seq <- t.seq + 1;
      Queue.add r q
  | Jsonl oc ->
      let r = { time = t.clock (); seq = t.seq; event } in
      t.seq <- t.seq + 1;
      output_string oc (record_to_json r);
      output_char oc '\n'
  | Ring { q; capacity } ->
      let r = { time = t.clock (); seq = t.seq; event } in
      t.seq <- t.seq + 1;
      if Queue.length q >= capacity then ignore (Queue.pop q : record);
      Queue.add r q
  | Tee (a, b) ->
      emit a event;
      emit b event

(* --- Minimal JSON parser for the flat objects emitted above --- *)

exception Bad

type jv = Num of float | Str of string | Arr of int list

let record_of_json line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos >= n then raise Bad else line.[!pos] in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then raise Bad;
    advance ()
  in
  let parse_string () =
    expect '"';
    let start = !pos in
    while peek () <> '"' do
      if peek () = '\\' then raise Bad (* never emitted *);
      advance ()
    done;
    let s = String.sub line start (!pos - start) in
    advance ();
    s
  in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      && match line.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      advance ()
    done;
    if !pos = start then raise Bad;
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> f
    | None -> raise Bad
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> Str (parse_string ())
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let continue = ref true in
          while !continue do
            items := int_of_float (parse_number ()) :: !items;
            skip_ws ();
            match peek () with
            | ',' -> advance ()
            | ']' ->
                advance ();
                continue := false
            | _ -> raise Bad
          done;
          Arr (List.rev !items)
        end
    | _ -> Num (parse_number ())
  in
  let parse_object () =
    expect '{';
    let fields = ref [] in
    skip_ws ();
    if peek () = '}' then advance ()
    else begin
      let continue = ref true in
      while !continue do
        skip_ws ();
        let key = parse_string () in
        expect ':';
        let v = parse_value () in
        fields := (key, v) :: !fields;
        skip_ws ();
        match peek () with
        | ',' -> advance ()
        | '}' ->
            advance ();
            continue := false
        | _ -> raise Bad
      done
    end;
    List.rev !fields
  in
  let build fields =
    let num k = match List.assoc_opt k fields with Some (Num f) -> f | _ -> raise Bad in
    let int k = int_of_float (num k) in
    (* For fields added after records were first written: old lines
       parse with the default. *)
    let int_or d k =
      match List.assoc_opt k fields with Some (Num f) -> int_of_float f | _ -> d
    in
    let str k = match List.assoc_opt k fields with Some (Str s) -> s | _ -> raise Bad in
    let arr k = match List.assoc_opt k fields with Some (Arr l) -> l | _ -> raise Bad in
    let event =
      match str "ev" with
      | "multicast" -> Multicast { node = int "node"; view_id = int "view"; sn = int "sn" }
      | "tx" ->
          Tx
            {
              node = int "node";
              dst = int "dst";
              sender = int "sender";
              sn = int "sn";
              view_id = int "view";
            }
      | "rx" ->
          Rx
            {
              node = int "node";
              src = int "src";
              sender = int "sender";
              sn = int "sn";
              view_id = int "view";
            }
      | "deliver" ->
          Deliver { node = int "node"; view_id = int "view"; sender = int "sender"; sn = int "sn" }
      | "stable" -> StableMsg { node = int "node"; sender = int "sender"; sn = int "sn" }
      | "purge" ->
          let at_step = match site_of_name (str "site") with Some s -> s | None -> raise Bad in
          Purge
            { node = int "node"; view_id = int "view"; at_step; sender = int "sender"; sn = int "sn" }
      | "view_install" ->
          ViewInstall { node = int "node"; view_id = int "view"; members = arr "members" }
      | "consensus_decide" -> ConsensusDecide { node = int "node"; view_id = int "view" }
      | "suspect" -> Suspect { node = int "node"; suspect = int "suspect" }
      | "block" -> Block { node = int "node"; view_id = int "view" }
      | "unblock" -> Unblock { node = int "node"; view_id = int "view" }
      | "tcp_reconnect" -> TcpReconnect { node = int "node"; peer = int "peer" }
      | "tcp_drop" -> TcpDrop { node = int "node"; peer = int "peer"; reason = str "reason" }
      | "quarantine" -> Quarantine { node = int "node"; peer = int "peer"; score = int "score" }
      | "fault" -> Fault { kind = str "kind"; node = int "node"; peer = int "peer" }
      | "join" -> Join { node = int "node"; contact = int "contact" }
      | "state_transfer" ->
          StateTransfer { node = int "node"; peer = int "peer"; bytes = int "bytes" }
      | "wal_recovery" ->
          WalRecovery
            {
              node = int "node";
              records = int "records";
              truncated = int "truncated";
              skipped = int_or 0 "skipped";
              tainted = int_or 0 "tainted" <> 0;
            }
      | "divergence" -> Divergence { node = int "node"; view_id = int "view" }
      | "parked" -> Parked { node = int "node"; view_id = int "view" }
      | "merge" ->
          Merge { node = int "node"; view_id = int "view"; parked_ms = int "parked_ms" }
      | "backpressure" ->
          Backpressure
            { node = int "node"; peer = int "peer"; stage = str "stage"; pending = int "pending" }
      | "shed" -> Shed { node = int "node"; peer = int "peer"; sender = int "sender"; sn = int "sn" }
      | _ -> raise Bad
    in
    { time = num "t"; seq = int "seq"; event }
  in
  match build (parse_object ()) with r -> Some r | exception Bad -> None

let pp_event ppf = function
  | Multicast { node; view_id; sn } ->
      Format.fprintf ppf "multicast(node=%d view=%d sn=%d)" node view_id sn
  | Tx { node; dst; sender; sn; view_id } ->
      Format.fprintf ppf "tx(node=%d dst=%d msg=%d:%d view=%d)" node dst sender sn view_id
  | Rx { node; src; sender; sn; view_id } ->
      Format.fprintf ppf "rx(node=%d src=%d msg=%d:%d view=%d)" node src sender sn view_id
  | Deliver { node; view_id; sender; sn } ->
      Format.fprintf ppf "deliver(node=%d view=%d msg=%d:%d)" node view_id sender sn
  | StableMsg { node; sender; sn } ->
      Format.fprintf ppf "stable(node=%d msg=%d:%d)" node sender sn
  | Purge { node; view_id; at_step; sender; sn } ->
      Format.fprintf ppf "purge(node=%d view=%d site=%s msg=%d:%d)" node view_id
        (site_name at_step) sender sn
  | ViewInstall { node; view_id; members } ->
      Format.fprintf ppf "view_install(node=%d view=%d members={%a})" node view_id
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        members
  | ConsensusDecide { node; view_id } ->
      Format.fprintf ppf "consensus_decide(node=%d view=%d)" node view_id
  | Suspect { node; suspect } -> Format.fprintf ppf "suspect(node=%d suspect=%d)" node suspect
  | Block { node; view_id } -> Format.fprintf ppf "block(node=%d view=%d)" node view_id
  | Unblock { node; view_id } -> Format.fprintf ppf "unblock(node=%d view=%d)" node view_id
  | TcpReconnect { node; peer } ->
      Format.fprintf ppf "tcp_reconnect(node=%d peer=%d)" node peer
  | TcpDrop { node; peer; reason } ->
      Format.fprintf ppf "tcp_drop(node=%d peer=%d reason=%s)" node peer reason
  | Quarantine { node; peer; score } ->
      Format.fprintf ppf "quarantine(node=%d peer=%d score=%d)" node peer score
  | Fault { kind; node; peer } -> Format.fprintf ppf "fault(kind=%s node=%d peer=%d)" kind node peer
  | Join { node; contact } -> Format.fprintf ppf "join(node=%d contact=%d)" node contact
  | StateTransfer { node; peer; bytes } ->
      Format.fprintf ppf "state_transfer(node=%d peer=%d bytes=%d)" node peer bytes
  | WalRecovery { node; records; truncated; skipped; tainted } ->
      Format.fprintf ppf "wal_recovery(node=%d records=%d truncated=%d skipped=%d tainted=%b)"
        node records truncated skipped tainted
  | Divergence { node; view_id } ->
      Format.fprintf ppf "divergence(node=%d view=%d)" node view_id
  | Parked { node; view_id } -> Format.fprintf ppf "parked(node=%d view=%d)" node view_id
  | Merge { node; view_id; parked_ms } ->
      Format.fprintf ppf "merge(node=%d view=%d parked_ms=%d)" node view_id parked_ms
  | Backpressure { node; peer; stage; pending } ->
      Format.fprintf ppf "backpressure(node=%d peer=%d stage=%s pending=%d)" node peer stage
        pending
  | Shed { node; peer; sender; sn } ->
      Format.fprintf ppf "shed(node=%d peer=%d msg=%d:%d)" node peer sender sn
