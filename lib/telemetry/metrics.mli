(** Metrics registry: named counters, gauges, and log-scale histograms
    with labelled instances.

    Instruments are cheap mutable cells: the hot path holds the
    instance directly and updates are O(1) stores (no hashing, no
    allocation). The registry is only consulted at creation time — the
    same (name, labels) pair always yields the same instance — and at
    reporting time, when {!instruments} or {!pp_line} walk everything
    registered.

    Code that is instrumented unconditionally but not always monitored
    uses {e detached} instruments: same type, same O(1) updates, not
    listed by any registry. *)

type labels = (string * string) list
(** Label pairs, e.g. [[("node", "3"); ("site", "receive")]]. Order is
    irrelevant: labels are sorted on registration. *)

(** Monotonically increasing integer counter. *)
module Counter : sig
  type t

  val detached : unit -> t
  (** A counter not attached to any registry. *)

  val incr : t -> unit

  val add : t -> int -> unit
  (** @raise Invalid_argument on a negative increment. *)

  val value : t -> int
end

(** Instantaneous float value (buffer occupancy, queue depth, ...). *)
module Gauge : sig
  type t

  val detached : unit -> t

  val set : t -> float -> unit

  val add : t -> float -> unit
  (** [add g d] is [set g (value g +. d)]; [d] may be negative. *)

  val value : t -> float
end

(** Log-scale histogram of non-negative float observations.

    Buckets cover each power of two in four sub-buckets (at most 25%
    relative resolution), so {!observe} is O(1) and quantile estimates
    are within one sub-bucket of the truth. Values below 2{^-33} (or
    non-positive) land in an underflow bucket; values of 2{^31} and
    above land in an overflow bucket, for which {!quantile} reports
    {!max_value}. *)
module Histogram : sig
  type t

  val detached : unit -> t

  val observe : t -> float -> unit

  val count : t -> int

  val sum : t -> float

  val mean : t -> float
  (** [nan] when empty. *)

  val max_value : t -> float
  (** Largest value observed ([neg_infinity] when empty). *)

  val quantile : t -> float -> float
  (** [quantile h q] for [q] in [0..1]: an upper bound on the [q]-th
      quantile (the upper edge of the bucket holding it, clamped to
      {!max_value}). @raise Invalid_argument when empty or [q] is out
      of range. *)

  val buckets : t -> (float * int) list
  (** Non-empty buckets as [(upper_bound, count)], ascending by upper
      bound; the overflow bucket reports [infinity]. Empty for an
      empty histogram. *)
end

type value =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t

type instrument = { name : string; labels : labels; value : value }

type t
(** A registry. *)

val create : unit -> t

val counter : t -> ?labels:labels -> string -> Counter.t
(** Find-or-create: the first call registers the instrument, later
    calls with the same name and labels return the same instance.
    @raise Invalid_argument if the name+labels is already registered
    with a different instrument kind. *)

val gauge : t -> ?labels:labels -> string -> Gauge.t

val histogram : t -> ?labels:labels -> string -> Histogram.t

val instruments : t -> instrument list
(** Everything registered, in registration order. *)

val counter_value : t -> ?labels:labels -> string -> int
(** Convenience read; 0 when the instrument does not exist. *)

val sum_counters : t -> string -> int
(** Sum of every registered counter with this name, across all label
    sets (e.g. a per-site total). *)

val pp_line : Format.formatter -> t -> unit
(** One-line report: [name{k=v,...}=value] for every instrument, space
    separated; histograms print [count/mean/p99]. *)

val pp_prometheus : Format.formatter -> t -> unit
(** Prometheus text exposition (format version 0.0.4) of every
    registered instrument, sorted by name then labels so the output is
    stable across registration orders. Counters and gauges render as
    single samples; histograms render cumulative [_bucket] samples
    with [le] edges at the registry's non-empty log-scale buckets,
    plus [_sum] and [_count]. Label values are escaped per the
    exposition rules (backslash, double quote, newline). *)

val prometheus_string : t -> string
(** {!pp_prometheus} to a string (what an HTTP [/metrics] endpoint
    serves). *)
