(** Centralised consensus arbiter for simulations where consensus is
    not the component under study.

    The arbiter is an omniscient simulation object (not a distributed
    protocol): members hand it proposals; once a quorum (majority by
    default) of proposals for an instance has arrived it decides the
    proposal of the lowest-numbered proposer and delivers the decision
    to every member after a configurable delay. It trivially satisfies
    validity, agreement and (given a live quorum) termination, so
    experiments that embed it measure only the view-change protocol
    above it. *)

type 'v t

val create :
  Svs_sim.Engine.t ->
  members:int list ->
  ?quorum:int ->
  ?decision_delay:float ->
  deliver:(dst:int -> instance:int -> 'v -> unit) ->
  unit ->
  'v t
(** [quorum] defaults to a majority of [members]; [decision_delay]
    (default 0) is the virtual time between quorum and delivery. *)

val propose : 'v t -> instance:int -> from:int -> 'v -> unit
(** Duplicate proposals from the same member are ignored. *)

val remove_member : 'v t -> int -> unit
(** Crashed members no longer receive decisions (already-counted
    proposals remain). *)

val decided : 'v t -> instance:int -> bool

val mc_fingerprint : ('v -> string) -> 'v t -> string
(** Canonical digest of the arbiter state (per instance: proposals
    sorted by proposer, the decision, and whether the decision upcall
    already fired), keyed by the given injective value encoding — the
    consensus slice of the model checker's state fingerprint. *)
