module Engine = Svs_sim.Engine

type 'v instance_state = {
  mutable proposals : (int * 'v) list;
  mutable decision : 'v option;
  mutable notified : bool;
      (* The decision upcall ran (the scheduled notify fired) — part of
         the model checker's state fingerprint: a decided-but-unnotified
         instance still has an engine event in flight. *)
}

type 'v t = {
  engine : Engine.t;
  mutable members : int list;
  quorum : int;
  decision_delay : float;
  deliver : dst:int -> instance:int -> 'v -> unit;
  instances : (int, 'v instance_state) Hashtbl.t;
}

let create engine ~members ?quorum ?(decision_delay = 0.0) ~deliver () =
  if members = [] then invalid_arg "Arbiter.create: empty membership";
  let quorum =
    match quorum with
    | Some q ->
        if q <= 0 || q > List.length members then invalid_arg "Arbiter.create: bad quorum";
        q
    | None -> (List.length members / 2) + 1
  in
  { engine; members; quorum; decision_delay; deliver; instances = Hashtbl.create 7 }

let state t instance =
  match Hashtbl.find_opt t.instances instance with
  | Some st -> st
  | None ->
      let st = { proposals = []; decision = None; notified = false } in
      Hashtbl.replace t.instances instance st;
      st

let propose t ~instance ~from v =
  let st = state t instance in
  if st.decision = None && not (List.mem_assoc from st.proposals) then begin
    st.proposals <- (from, v) :: st.proposals;
    if List.length st.proposals >= t.quorum then begin
      let from_min, value =
        List.fold_left
          (fun (best_p, best_v) (p, v) -> if p < best_p then (p, v) else (best_p, best_v))
          (List.hd st.proposals) (List.tl st.proposals)
      in
      ignore from_min;
      st.decision <- Some value;
      let notify () =
        st.notified <- true;
        List.iter (fun dst -> t.deliver ~dst ~instance value) t.members
      in
      ignore (Engine.schedule t.engine ~delay:t.decision_delay notify : Engine.handle)
    end
  end

let remove_member t p = t.members <- List.filter (fun q -> q <> p) t.members

let decided t ~instance =
  match Hashtbl.find_opt t.instances instance with
  | None -> false
  | Some st -> st.decision <> None

(* Canonical digest of the arbiter's state for the model checker:
   per instance the proposals seen (sorted by proposer), the decision,
   and whether the decision upcall already fired. *)
let mc_fingerprint value_digest t =
  let b = Buffer.create 128 in
  let instances =
    List.sort compare (Hashtbl.fold (fun i _ acc -> i :: acc) t.instances [])
  in
  List.iter
    (fun i ->
      let st = Hashtbl.find t.instances i in
      Buffer.add_string b (string_of_int i);
      Buffer.add_char b ':';
      List.iter
        (fun (p, v) ->
          Buffer.add_string b (string_of_int p);
          Buffer.add_char b '=';
          Buffer.add_string b (value_digest v);
          Buffer.add_char b ',')
        (List.sort (fun (a, _) (b, _) -> compare (a : int) b) st.proposals);
      (match st.decision with
      | None -> Buffer.add_char b '-'
      | Some v ->
          Buffer.add_char b '!';
          Buffer.add_string b (value_digest v));
      Buffer.add_char b (if st.notified then 'n' else 'w');
      Buffer.add_char b ';')
    instances;
  List.iter
    (fun m ->
      Buffer.add_string b (string_of_int m);
      Buffer.add_char b ' ')
    t.members;
  Digest.string (Buffer.contents b)
