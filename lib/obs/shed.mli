(** Prefix-safe semantic shedding of queued-but-unsent frames.

    Extends the obsolescence relation (paper §4.2) to transport
    queues: frames sitting unsent in a FIFO stream may be dropped
    when a newer queued frame covers them, under the {e suffix rule}
    — a data frame is shed only if the next retained data frame
    behind it covers it, directly or transitively through frames
    that were themselves shed. This keeps every prefix of the stream
    cover-closed, so a receiver that advances past a victim always
    holds a delivered cover, even if the sender crashes mid-queue.
    See the module implementation and PROTOCOL.md ("Flow control and
    semantic shedding") for the safety argument. *)

type key = { id : Msg_id.t; ann : Annotation.t; view : int }

val max_walk : int
(** Upper bound on frames examined per walk (policy, not safety). *)

val max_cover : int
(** Upper bound on the accumulated cover set (policy, not safety). *)

val covered_by : cover:key list -> key -> bool
(** Whether any element of [cover] obsoletes the frame (same view). *)

val walk :
  meta:('a -> key option) ->
  shed:('a -> bool) ->
  fresh:key ->
  'a list ->
  'a list
(** [walk ~meta ~shed ~fresh frames] — [frames] newest-first (the
    reverse of FIFO order), [fresh] the data frame about to be
    enqueued behind them all. Returns the frames the suffix rule
    allows shedding now: the contiguous newest run of live data
    frames each covered by the set {[fresh]} ∪ already-shed frames ∪
    frames shed earlier in this walk. Control frames ([meta] =
    [None]) are skipped and retained; the walk stops at the first
    live data frame not covered. *)
