(** Indexes that drive purging in O(|predecessors|) per insert.

    The naive purge re-scans the whole delivery queue on every insert,
    making the paper's "cheap" operation O(queue). All three encodings
    of §4.2 have bounded fan-in — a tag names one lineage, an
    enumeration a finite predecessor list, a k-enumeration a k-wide
    window — so the pairs a fresh message can participate in are
    reachable by point lookups:

    - a (sender, tag) map holding the one queued entry per tag lineage
      ([Tag] both directions);
    - a (sender, sn) map over all queued entries ([Enum] and [Kenum]
      forward probes);
    - a reverse map from every enumerated predecessor id to the queued
      [Enum] entries naming it (the cross-sender reverse direction);
    - per-sender high-water marks bounding the [Kenum] reverse window
      probe (it short-circuits whenever nothing is queued above the
      fresh sequence number — always, for in-order senders).

    The structure is parametric in ['h], the queue handle type (e.g.
    [Dq.handle]), so it composes with any buffer that supports O(1)
    removal by handle.

    Invariants the caller maintains: queued ids are unique per view
    (the protocol's FIFO floors guarantee it); every insert runs
    {!plan} and removes the victims before {!add}ing the fresh entry,
    keeping the queue purge-closed; every entry leaving the queue for
    any reason is {!remove}d. *)

type 'h t

type 'h victim = { victim_id : Msg_id.t; victim_ann : Annotation.t; victim_handle : 'h }

val create : unit -> 'h t

val add : 'h t -> view:int -> id:Msg_id.t -> ann:Annotation.t -> 'h -> seq:int -> unit
(** Register a queued entry. [seq] is its queue position stamp
    ({!Dq.handle_seq}): {!plan} sorts victims by it so purge effects
    (counters, trace events) come out in queue order. *)

val remove : 'h t -> view:int -> id:Msg_id.t -> ann:Annotation.t -> unit
(** Unregister an entry that left the queue (delivered or purged).
    A no-op for ids that were never added. *)

val plan : 'h t -> view:int -> id:Msg_id.t -> ann:Annotation.t -> 'h victim list * bool
(** For a fresh message about to join [view]'s queue: the queued
    entries it obsoletes (front-to-back) and whether a queued entry
    obsoletes {e it} (in which case the fresh message must be dropped
    after its victims are purged — exactly the pairwise semantics).
    The fresh message must not be {!add}ed yet. *)

val obsoleted : 'h t -> view:int -> id:Msg_id.t -> ann:Annotation.t -> bool
(** The reverse direction alone: would some queued entry of [view]
    obsolete this message? This is the receive-path cover test. *)

val cardinal : 'h t -> view:int -> int
(** Indexed entries of one view (for tests). *)
