(* Per-relation indexes over the queued messages of each view. The
   queue is purge-closed between inserts (every incremental purge ran
   to completion), which is what makes the per-key structures small:
   two queued messages of one view can never obsolete one another, so
   e.g. at most one entry per (sender, tag) key can be queued. *)

type 'h entry = {
  id : Msg_id.t;
  ann : Annotation.t;
  seq : int;
  handle : 'h;
}

type 'h victim = { victim_id : Msg_id.t; victim_ann : Annotation.t; victim_handle : 'h }

(* One view's indexes. Dropped wholesale when its last entry leaves, so
   the conservative high-water marks reset on queue drain and nothing
   leaks across the view's lifetime. *)
type 'h vstate = {
  by_tag : (int * int, 'h entry) Hashtbl.t; (* (sender, tag) -> queued entry *)
  by_id : (int * int, 'h entry) Hashtbl.t; (* (sender, sn) -> queued entry *)
  by_pred : (int * int, 'h entry list ref) Hashtbl.t; (* named pred -> Enum entries *)
  hwm : (int, int) Hashtbl.t; (* sender -> highest sn ever queued *)
  kwin : (int, int) Hashtbl.t; (* sender -> widest Kenum window queued *)
  mutable live : int;
}

type 'h t = (int, 'h vstate) Hashtbl.t

let create () : 'h t = Hashtbl.create 4

let vstate (t : 'h t) view =
  match Hashtbl.find_opt t view with
  | Some vs -> vs
  | None ->
      let vs =
        {
          by_tag = Hashtbl.create 32;
          by_id = Hashtbl.create 64;
          by_pred = Hashtbl.create 16;
          hwm = Hashtbl.create 8;
          kwin = Hashtbl.create 8;
          live = 0;
        }
      in
      Hashtbl.replace t view vs;
      vs

let cardinal (t : 'h t) ~view =
  match Hashtbl.find_opt t view with None -> 0 | Some vs -> vs.live

let raise_to tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some old when old >= v -> ()
  | Some _ | None -> Hashtbl.replace tbl key v

let add (t : 'h t) ~view ~(id : Msg_id.t) ~ann handle ~seq =
  let vs = vstate t view in
  let e = { id; ann; seq; handle } in
  Hashtbl.replace vs.by_id (id.Msg_id.sender, id.Msg_id.sn) e;
  (match ann with
  | Annotation.Unrelated -> ()
  | Annotation.Tag g -> Hashtbl.replace vs.by_tag (id.Msg_id.sender, g) e
  | Annotation.Enum preds ->
      List.iter
        (fun (p : Msg_id.t) ->
          let key = (p.Msg_id.sender, p.Msg_id.sn) in
          match Hashtbl.find_opt vs.by_pred key with
          | Some bucket ->
              if not (List.exists (fun e' -> Msg_id.equal e'.id id) !bucket) then
                bucket := e :: !bucket
          | None -> Hashtbl.replace vs.by_pred key (ref [ e ]))
        preds
  | Annotation.Kenum bm -> raise_to vs.kwin id.Msg_id.sender (Bitvec.k bm));
  raise_to vs.hwm id.Msg_id.sender id.Msg_id.sn;
  vs.live <- vs.live + 1

let remove (t : 'h t) ~view ~(id : Msg_id.t) ~ann =
  match Hashtbl.find_opt t view with
  | None -> ()
  | Some vs -> (
      let key = (id.Msg_id.sender, id.Msg_id.sn) in
      match Hashtbl.find_opt vs.by_id key with
      | None -> () (* never indexed (e.g. semantic purging off) *)
      | Some _ ->
          Hashtbl.remove vs.by_id key;
          (match ann with
          | Annotation.Unrelated | Annotation.Kenum _ -> ()
          | Annotation.Tag g -> (
              match Hashtbl.find_opt vs.by_tag (id.Msg_id.sender, g) with
              | Some e when Msg_id.equal e.id id ->
                  Hashtbl.remove vs.by_tag (id.Msg_id.sender, g)
              | Some _ | None -> ())
          | Annotation.Enum preds ->
              List.iter
                (fun (p : Msg_id.t) ->
                  let pkey = (p.Msg_id.sender, p.Msg_id.sn) in
                  match Hashtbl.find_opt vs.by_pred pkey with
                  | None -> ()
                  | Some bucket -> (
                      match List.filter (fun e -> not (Msg_id.equal e.id id)) !bucket with
                      | [] -> Hashtbl.remove vs.by_pred pkey
                      | rest -> bucket := rest))
                preds);
          vs.live <- vs.live - 1;
          if vs.live = 0 then Hashtbl.remove t view)

(* Reverse-direction probes: would some queued entry of the view
   obsolete a fresh (id, ann)? Only bounded-fan-in lookups.
   - Tag: the (sender, tag) slot, if held by a higher sn.
   - Enum: the entries that enumerate [id] as a predecessor.
   - Kenum: same-sender entries within the widest queued window above
     [id.sn] — skipped entirely when the high-water mark shows nothing
     queued above [id.sn]. The Enum and Kenum checks do not depend on
     the fresh message's own annotation. *)

let obsoleted_by_enum vs ~(id : Msg_id.t) =
  match Hashtbl.find_opt vs.by_pred (id.Msg_id.sender, id.Msg_id.sn) with
  | Some bucket ->
      List.exists
        (fun e ->
          (not (Msg_id.equal e.id id))
          && (e.id.Msg_id.sender <> id.Msg_id.sender || id.Msg_id.sn < e.id.Msg_id.sn))
        !bucket
  | None -> false

let obsoleted_by_kenum vs ~(id : Msg_id.t) =
  match Hashtbl.find_opt vs.hwm id.Msg_id.sender with
  | Some hw when hw > id.Msg_id.sn ->
      let kw =
        match Hashtbl.find_opt vs.kwin id.Msg_id.sender with Some k -> k | None -> 0
      in
      let lim = Stdlib.min kw (hw - id.Msg_id.sn) in
      let rec probe d =
        d <= lim
        && ((match Hashtbl.find_opt vs.by_id (id.Msg_id.sender, id.Msg_id.sn + d) with
            | Some { ann = Annotation.Kenum bm; _ } -> Bitvec.get bm d
            | Some _ | None -> false)
           || probe (d + 1))
      in
      probe 1
  | Some _ | None -> false

let obsoleted (t : 'h t) ~view ~(id : Msg_id.t) ~ann =
  match Hashtbl.find_opt t view with
  | None -> false
  | Some vs ->
      (match ann with
      | Annotation.Tag g -> (
          match Hashtbl.find_opt vs.by_tag (id.Msg_id.sender, g) with
          | Some e -> e.id.Msg_id.sn > id.Msg_id.sn
          | None -> false)
      | Annotation.Unrelated | Annotation.Enum _ | Annotation.Kenum _ -> false)
      || obsoleted_by_enum vs ~id || obsoleted_by_kenum vs ~id

let plan (t : 'h t) ~view ~(id : Msg_id.t) ~ann =
  match Hashtbl.find_opt t view with
  | None -> ([], false)
  | Some vs ->
      let victims = ref [] in
      let drop = ref false in
      let take (e : 'h entry) =
        victims := e :: !victims
      in
      (* Forward: queued entries the fresh message obsoletes. Probes
         mirror Annotation.obsoletes with the fresh message as newer.
         The Tag probe doubles as the reverse Tag check: one lookup
         decides victim (lower sn) or drop (higher sn). *)
      (match ann with
      | Annotation.Unrelated -> ()
      | Annotation.Tag g -> (
          match Hashtbl.find_opt vs.by_tag (id.Msg_id.sender, g) with
          | Some e ->
              if e.id.Msg_id.sn < id.Msg_id.sn then take e
              else if e.id.Msg_id.sn > id.Msg_id.sn then drop := true
          | None -> ())
      | Annotation.Enum preds ->
          List.iter
            (fun (p : Msg_id.t) ->
              if not (Msg_id.equal p id) then
                match Hashtbl.find_opt vs.by_id (p.Msg_id.sender, p.Msg_id.sn) with
                | Some e
                  when e.id.Msg_id.sender <> id.Msg_id.sender
                       || e.id.Msg_id.sn < id.Msg_id.sn ->
                    take e
                | Some _ | None -> ())
            (List.sort_uniq Msg_id.compare preds)
      | Annotation.Kenum bm ->
          List.iter
            (fun d ->
              match Hashtbl.find_opt vs.by_id (id.Msg_id.sender, id.Msg_id.sn - d) with
              | Some e -> take e
              | None -> ())
            (Bitvec.distances bm));
      let victims =
        List.sort (fun a b -> Int.compare a.seq b.seq) !victims
        |> List.map (fun e ->
               { victim_id = e.id; victim_ann = e.ann; victim_handle = e.handle })
      in
      let drop = !drop || obsoleted_by_enum vs ~id || obsoleted_by_kenum vs ~id in
      (victims, drop)
