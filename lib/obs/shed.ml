(* Prefix-safe semantic shedding of queued-but-unsent frames.

   The protocol purges obsolete messages from its delivery queue
   (paper §4); this module extends the same relation to *transport*
   queues — a peer's outbound send buffer, or a paused receiver's
   inbox — where frames wait in FIFO order and have not yet been
   handed to anyone.

   Soundness is subtler than in the delivery queue, because a frame
   shed from the middle of a FIFO stream can strand its receiver: if
   the queue towards p is [m; x; m'] where m' covers m but x does
   not, shedding m and then crashing after x reaches p (but before
   m' reaches anyone) leaves p past m with no cover of m delivered
   anywhere — a FIFO-SR / SVS-cover hole the unshed run never has.

   The rule that is safe is the SUFFIX rule: shed a data frame only
   when the next *retained* data frame behind it in the queue covers
   it — directly, or transitively through frames that were themselves
   shed (every shed frame is still in the multicast log, so the
   cover relation chains through it). Then every prefix of the FIFO
   stream that contains any data frame newer than a victim also
   contains a cover of that victim; a receiver either never advances
   past the victim (no obligation — the view-change PRED exchange
   supplies it or its cover) or holds a delivered cover. Control
   frames interleaved between victims carry no sequence obligations
   and are always retained.

   Operationally the walk runs at enqueue time: the freshly queued
   frame is the candidate cover, and we scan backward from the tail
   shedding the contiguous run of covered data frames, stopping at
   the first data frame the accumulated cover set does not reach.
   Stopping early is always safe — caps only reduce shedding. *)

type key = { id : Msg_id.t; ann : Annotation.t; view : int }

(* Caps keep the walk amortised O(1) per enqueue: the cover set is
   bounded, and so is the number of frames examined. Both are policy,
   not safety: a truncated walk sheds less, never more. *)
let max_walk = 128

let max_cover = 32

let covered_by ~cover (k : key) =
  List.exists
    (fun (c : key) ->
      c.view = k.view
      && Annotation.obsoletes ~older:(k.id, k.ann) ~newer:(c.id, c.ann))
    cover

(* [walk ~meta ~shed ~fresh frames] scans [frames] (newest first:
   the reverse of FIFO order) and returns the elements that the
   suffix rule allows shedding, given that [fresh] is about to be
   enqueued behind them. [meta] is [None] for control frames (always
   retained, transparently skipped); [shed] marks frames already
   shed by an earlier walk (retained in place, but their annotations
   chain the cover relation). The walk stops at the first live data
   frame the cover set does not reach — everything older keeps its
   cover ahead of it in the stream. *)
let walk ~meta ~shed ~fresh frames =
  let rec go cover n_cover steps victims = function
    | [] -> victims
    | _ when steps >= max_walk -> victims
    | f :: rest -> (
        match meta f with
        | None -> go cover n_cover (steps + 1) victims rest
        | Some k ->
            let extend () =
              if n_cover < max_cover then (k :: cover, n_cover + 1)
              else (cover, n_cover)
            in
            if shed f then
              let cover, n_cover = extend () in
              go cover n_cover (steps + 1) victims rest
            else if covered_by ~cover k then
              let cover, n_cover = extend () in
              go cover n_cover (steps + 1) (f :: victims) rest
            else victims)
  in
  go [ fresh ] 1 0 [] frames
