module Engine = Svs_sim.Engine

type config = {
  period : float;
  initial_timeout : float;
  timeout_increment : float;
  max_timeout : float;
}

let default_config =
  { period = 0.1; initial_timeout = 0.35; timeout_increment = 0.2; max_timeout = 2.0 }

type peer_state = {
  peer : int;
  mutable last_heard : float;
  mutable timeout : float;
  mutable suspected : bool;
}

type t = {
  engine : Engine.t;
  config : config;
  me : int;
  peers : peer_state list;
  send_heartbeat : dst:int -> unit;
  mutable suspect_callbacks : (int -> unit) list;
  mutable rescind_callbacks : (int -> unit) list;
  mutable tasks : Engine.handle list;
  mutable stopped : bool;
}

let find_peer t p = List.find_opt (fun st -> st.peer = p) t.peers

let check t =
  let now = Engine.now t.engine in
  let check_peer st =
    if (not st.suspected) && now -. st.last_heard > st.timeout then begin
      st.suspected <- true;
      List.iter (fun f -> f st.peer) t.suspect_callbacks
    end
  in
  List.iter check_peer t.peers

let beat t =
  List.iter (fun st -> t.send_heartbeat ~dst:st.peer) t.peers

let create engine config ~me ~peers ~send_heartbeat =
  if config.period <= 0.0 then invalid_arg "Heartbeat.create: period must be positive";
  if config.max_timeout < config.initial_timeout then
    invalid_arg "Heartbeat.create: max_timeout below initial_timeout";
  let now = Engine.now engine in
  let mk peer =
    { peer; last_heard = now; timeout = config.initial_timeout; suspected = false }
  in
  let t =
    {
      engine;
      config;
      me;
      peers = List.map mk (List.filter (fun p -> p <> me) peers);
      send_heartbeat;
      suspect_callbacks = [];
      rescind_callbacks = [];
      tasks = [];
      stopped = false;
    }
  in
  (* Send a first round immediately so peers hear from us at startup. *)
  beat t;
  let beat_task =
    Engine.every engine ~period:config.period (fun () ->
        if not t.stopped then beat t;
        not t.stopped)
  in
  let check_task =
    Engine.every engine ~start:(config.period /. 2.0) ~period:(config.period /. 2.0)
      (fun () ->
        if not t.stopped then check t;
        not t.stopped)
  in
  t.tasks <- [ beat_task; check_task ];
  t

let on_heartbeat t ~src =
  match find_peer t src with
  | None -> ()
  | Some st ->
      st.last_heard <- Engine.now t.engine;
      if st.suspected then begin
        (* False suspicion: rescind and adapt the timeout upward. *)
        st.suspected <- false;
        st.timeout <-
          Float.min t.config.max_timeout (st.timeout +. t.config.timeout_increment);
        List.iter (fun f -> f st.peer) t.rescind_callbacks
      end

let suspects t p =
  match find_peer t p with None -> false | Some st -> st.suspected

let suspected_set t =
  List.filter_map (fun st -> if st.suspected then Some st.peer else None) t.peers

let on_suspect t f = t.suspect_callbacks <- f :: t.suspect_callbacks

let on_rescind t f = t.rescind_callbacks <- f :: t.rescind_callbacks

(* Out-of-band suspicion: a layer with better evidence than silence —
   e.g. the slow-member escalation, whose peer has been over the hard
   backpressure watermark past its eviction deadline — forces the
   suspicion through the normal callback path, so the view-change
   machinery downstream cannot tell it apart from a timeout. A later
   heartbeat from the peer rescinds it as usual (and adapts the
   timeout upward, which is harmless). *)
let force_suspect t p =
  match find_peer t p with
  | None -> ()
  | Some st ->
      if not st.suspected then begin
        st.suspected <- true;
        List.iter (fun f -> f st.peer) t.suspect_callbacks
      end

let timeout_of t p =
  match find_peer t p with
  | None -> invalid_arg "Heartbeat.timeout_of: unknown peer"
  | Some st -> st.timeout

let stop t =
  t.stopped <- true;
  List.iter Engine.cancel t.tasks
