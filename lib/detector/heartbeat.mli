(** Heartbeat-based eventually-perfect failure detector (one monitor
    per process).

    The monitor is transport-agnostic: it is given a [send_heartbeat]
    function and must be fed inbound heartbeats via {!on_heartbeat}.
    Peers are suspected when no heartbeat arrived within their current
    timeout; a heartbeat from a suspected peer rescinds the suspicion
    and increases that peer's timeout, so in runs where message delays
    stabilise, suspicions are eventually accurate (◊P). *)

type t

type config = {
  period : float;  (** Interval between heartbeats sent to each peer. *)
  initial_timeout : float;
  timeout_increment : float;
      (** Added to a peer's timeout on each false suspicion. *)
  max_timeout : float;
      (** Ceiling for the adaptive timeout: without it a single long
          latency spike (many false suspicions in a row) would
          desensitize the detector permanently. Must be at least
          [initial_timeout]. *)
}

val default_config : config

val create :
  Svs_sim.Engine.t ->
  config ->
  me:int ->
  peers:int list ->
  send_heartbeat:(dst:int -> unit) ->
  t
(** Starts the periodic heartbeat and monitoring tasks immediately. *)

val on_heartbeat : t -> src:int -> unit
(** Feed a received heartbeat from [src]. *)

val suspects : t -> int -> bool

val suspected_set : t -> int list

val on_suspect : t -> (int -> unit) -> unit
(** Called each time a peer becomes (newly) suspected. *)

val on_rescind : t -> (int -> unit) -> unit
(** Called when a suspicion is rescinded by a late heartbeat. *)

val force_suspect : t -> int -> unit
(** Suspect a peer now, out of band, firing the {!on_suspect}
    callbacks — for layers with better evidence than silence (e.g. a
    slow-member policy whose peer sat over the hard backpressure
    watermark past its eviction deadline). No-op for unknown or
    already-suspected peers; a later heartbeat rescinds it normally. *)

val timeout_of : t -> int -> float
(** Current adaptive timeout for a peer (for tests/inspection). *)

val stop : t -> unit
(** Cancel the periodic tasks (e.g. when the process crashes). *)
