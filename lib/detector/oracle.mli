(** Perfect failure detector driven directly by simulation crash events.

    The test/experiment harness notifies the oracle when it crashes a
    node; every process then suspects exactly the crashed nodes. Used
    where the evaluation needs consensus/view changes that are not
    themselves under study. *)

type t

val create : nodes:int -> t

val mark_crashed : t -> int -> unit

val mark_recovered : t -> int -> unit
(** Clear a node's crashed mark (the harness restarted it). No
    callbacks fire; a later {!mark_crashed} fires them again. *)

val suspects : t -> int -> bool
(** [suspects t p] is true iff [p] has been marked crashed. *)

val suspected_set : t -> int list

val on_suspect : t -> (int -> unit) -> unit
(** Register a callback fired (once per node) when a node is marked
    crashed. *)
