type t = {
  crashed : bool array;
  mutable callbacks : (int -> unit) list;
}

let create ~nodes =
  if nodes <= 0 then invalid_arg "Oracle.create: need at least one node";
  { crashed = Array.make nodes false; callbacks = [] }

let mark_crashed t p =
  if p < 0 || p >= Array.length t.crashed then invalid_arg "Oracle.mark_crashed: bad node";
  if not t.crashed.(p) then begin
    t.crashed.(p) <- true;
    List.iter (fun f -> f p) t.callbacks
  end

let mark_recovered t p =
  if p < 0 || p >= Array.length t.crashed then invalid_arg "Oracle.mark_recovered: bad node";
  t.crashed.(p) <- false

let suspects t p = p >= 0 && p < Array.length t.crashed && t.crashed.(p)

let suspected_set t =
  let acc = ref [] in
  for p = Array.length t.crashed - 1 downto 0 do
    if t.crashed.(p) then acc := p :: !acc
  done;
  !acc

let on_suspect t f = t.callbacks <- f :: t.callbacks
