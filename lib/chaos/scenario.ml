module Rng = Svs_sim.Rng
module Latency = Svs_net.Latency

type action =
  | Crash of int
  | Pause of int
  | Resume of int
  | Partition of int * int
  | Heal of int * int
  | Split of int list list
  | Heal_split
  | Leave of { initiator : int; node : int }
  | Rejoin of int
  | Set_latency of Latency.t
  | Restore_latency

type timed = { at : float; action : action }

type t = {
  name : string;
  doc : string;
  plan : rng:Rng.t -> n:int -> horizon:float -> timed list;
  heal_at_settle : bool;
  park_timeout : float option;
  expect_reconverge : bool;
  shed_limit : int option;
      (* Network-level semantic shedding for this scenario's runs (the
         Group config [shed] value); None leaves queues unbounded. *)
  backlog_budget : int option;
      (* Overload acceptance: the peak paused-inbox data backlog (any
         node) a run is allowed with shedding on — and must EXCEED
         with shedding off, the inverted --no-shed self-check. *)
}

let action_kind = function
  | Crash _ -> "crash"
  | Pause _ -> "pause"
  | Resume _ -> "resume"
  | Partition _ -> "partition"
  | Heal _ -> "heal"
  | Split _ -> "split"
  | Heal_split -> "split-heal"
  | Leave _ -> "leave"
  | Rejoin _ -> "rejoin"
  | Set_latency _ -> "latency"
  | Restore_latency -> "latency-restore"

let pp_sets ppf sets =
  Format.fprintf ppf "%s"
    (String.concat "|"
       (List.map (fun s -> String.concat "," (List.map string_of_int s)) sets))

let pp_action ppf = function
  | Crash p -> Format.fprintf ppf "crash(%d)" p
  | Pause p -> Format.fprintf ppf "pause(%d)" p
  | Resume p -> Format.fprintf ppf "resume(%d)" p
  | Partition (a, b) -> Format.fprintf ppf "partition(%d,%d)" a b
  | Heal (a, b) -> Format.fprintf ppf "heal(%d,%d)" a b
  | Split sets -> Format.fprintf ppf "split(%a)" pp_sets sets
  | Heal_split -> Format.fprintf ppf "split-heal"
  | Leave { initiator; node } -> Format.fprintf ppf "leave(%d by %d)" node initiator
  | Rejoin p -> Format.fprintf ppf "rejoin(%d)" p
  | Set_latency l -> Format.fprintf ppf "latency(%a)" Latency.pp l
  | Restore_latency -> Format.fprintf ppf "latency(restore)"

let pp_timed ppf { at; action } = Format.fprintf ppf "@%.3fs %a" at pp_action action

let by_time plan = List.stable_sort (fun a b -> Float.compare a.at b.at) plan

(* Random distinct victims among 1..n-1 (node 0 is the anchor). *)
let victims rng ~n ~k =
  let pool = Array.init (n - 1) (fun i -> i + 1) in
  Rng.shuffle rng pool;
  Array.to_list (Array.sub pool 0 (min k (Array.length pool)))

let scenario ?(heal_at_settle = true) ?park_timeout ?(expect_reconverge = false)
    ?shed_limit ?backlog_budget name doc plan =
  {
    name;
    doc;
    plan;
    heal_at_settle;
    park_timeout;
    expect_reconverge;
    shed_limit;
    backlog_budget;
  }

let calm =
  scenario "calm" "no faults (baseline)" (fun ~rng:_ ~n:_ ~horizon:_ -> [])

(* Crash-stop: between 1 and n-2 victims, so at least two members
   (including the anchor) survive. *)
let crash_plan ~rng ~n ~horizon =
  if n < 3 then []
  else begin
    let k = 1 + Rng.int rng (n - 2) in
    by_time
      (List.map
         (fun v -> { at = Rng.uniform rng ~lo:(0.1 *. horizon) ~hi:(0.7 *. horizon); action = Crash v })
         (victims rng ~n ~k))
  end

let crash = scenario "crash" "crash-stop a random subset" crash_plan

let partition_heal_plan ~rng ~n ~horizon =
  if n < 2 then []
  else begin
    let windows = 1 + Rng.int rng 3 in
    let rec mk acc i =
      if i = 0 then acc
      else begin
        let a = Rng.int rng n in
        let b = (a + 1 + Rng.int rng (n - 1)) mod n in
        let start = Rng.uniform rng ~lo:(0.05 *. horizon) ~hi:(0.6 *. horizon) in
        let stop =
          Float.min (0.9 *. horizon)
            (start +. Rng.uniform rng ~lo:(0.05 *. horizon) ~hi:(0.3 *. horizon))
        in
        mk
          ({ at = start; action = Partition (a, b) }
          :: { at = stop; action = Heal (a, b) }
          :: acc)
          (i - 1)
      end
    in
    by_time (mk [] windows)
  end

let partition_heal =
  scenario "partition-heal" "link partitions, healed before the horizon" partition_heal_plan

let slow_receiver_plan ~rng ~n ~horizon =
  if n < 2 then []
  else begin
    let k = if n > 3 && Rng.bool rng then 2 else 1 in
    let mk v =
      let start = Rng.uniform rng ~lo:(0.05 *. horizon) ~hi:(0.3 *. horizon) in
      let stop =
        Float.min (0.9 *. horizon)
          (start +. Rng.uniform rng ~lo:(0.2 *. horizon) ~hi:(0.5 *. horizon))
      in
      [ { at = start; action = Pause v }; { at = stop; action = Resume v } ]
    in
    by_time (List.concat_map mk (victims rng ~n ~k))
  end

let slow_receiver =
  scenario "slow-receiver" "long receive pauses on one or two nodes" slow_receiver_plan

let churn_plan ~rng ~n ~horizon =
  if n < 3 then []
  else begin
    let k = 1 + Rng.int rng (n - 2) in
    by_time
      (List.map
         (fun v ->
           {
             at = Rng.uniform rng ~lo:(0.1 *. horizon) ~hi:(0.7 *. horizon);
             action = Leave { initiator = 0; node = v };
           })
         (victims rng ~n ~k))
  end

let churn = scenario "churn" "voluntary membership removals spread over the run" churn_plan

(* Crash a subset, then bring each victim back through the JOIN/SYNC
   path: the rejoin is scheduled well after the crash (so the group
   completes the exclusion first) and well before the horizon (so the
   handshake and the rejoined member's post-sync traffic are part of
   the checked run). *)
let crash_restart_plan ~rng ~n ~horizon =
  if n < 3 then []
  else begin
    let k = 1 + Rng.int rng (n - 2) in
    by_time
      (List.concat_map
         (fun v ->
           let crash_at = Rng.uniform rng ~lo:(0.1 *. horizon) ~hi:(0.45 *. horizon) in
           let rejoin_at =
             Float.min (0.75 *. horizon)
               (crash_at +. Rng.uniform rng ~lo:(0.15 *. horizon) ~hi:(0.3 *. horizon))
           in
           [
             { at = crash_at; action = Crash v };
             { at = rejoin_at; action = Rejoin v };
           ])
         (victims rng ~n ~k))
  end

let crash_restart =
  scenario "crash-restart" "crash a subset, restart each from its log and rejoin"
    crash_restart_plan

(* Voluntary exclusion followed by readmission of the same process —
   the pure membership round trip, with no crash involved. *)
let exclude_rejoin_plan ~rng ~n ~horizon =
  if n < 3 then []
  else begin
    let k = 1 + Rng.int rng (n - 2) in
    by_time
      (List.concat_map
         (fun v ->
           let leave_at = Rng.uniform rng ~lo:(0.1 *. horizon) ~hi:(0.4 *. horizon) in
           let rejoin_at =
             Float.min (0.75 *. horizon)
               (leave_at +. Rng.uniform rng ~lo:(0.15 *. horizon) ~hi:(0.3 *. horizon))
           in
           [
             { at = leave_at; action = Leave { initiator = 0; node = v } };
             { at = rejoin_at; action = Rejoin v };
           ])
         (victims rng ~n ~k))
  end

let exclude_rejoin =
  scenario "exclude-rejoin" "exclude a subset via view changes, then readmit each"
    exclude_rejoin_plan

(* A majority/minority split: the minority is a random strict minority
   of the group drawn from 1..n-1, so node 0 — the anchor producer —
   is always on the primary side and keeps the run observable. *)
let split_sets rng ~n =
  let cap = (n - 1) / 2 in
  let k = 1 + Rng.int rng cap in
  let minority = List.sort compare (victims rng ~n ~k) in
  let majority = List.filter (fun p -> not (List.mem p minority)) (List.init n Fun.id) in
  [ majority; minority ]

(* The split scenarios run with a park deadline of 1 s: a member still
   blocked in the same view change after 1 (virtual) second has lost
   the primary component and parks. Small against the 12 s default
   horizon, large against the ~2 ms simulated link latency. *)
let split_park_timeout = 1.0

(* One majority/minority split that is never healed: the majority must
   keep delivering, the minority must park — and stay parked, its JOIN
   probes held on the dead links. Opts out of the injector's settle
   heal so the partition outlives the run. *)
let group_split_plan ~rng ~n ~horizon =
  if n < 3 then []
  else
    [
      {
        at = Rng.uniform rng ~lo:(0.2 *. horizon) ~hi:(0.4 *. horizon);
        action = Split (split_sets rng ~n);
      };
    ]

let group_split =
  scenario ~heal_at_settle:false ~park_timeout:split_park_timeout "group-split"
    "majority/minority split, never healed: majority keeps going, minority parks"
    group_split_plan

(* Split, give the minority time to park and turn into probing
   joiners, then heal: the held JOIN probes deliver and the group must
   re-converge to a single view before the end of the run. *)
let split_heal_merge_plan ~rng ~n ~horizon =
  if n < 3 then []
  else
    [
      {
        at = Rng.uniform rng ~lo:(0.15 *. horizon) ~hi:(0.3 *. horizon);
        action = Split (split_sets rng ~n);
      };
      { at = Rng.uniform rng ~lo:(0.55 *. horizon) ~hi:(0.65 *. horizon); action = Heal_split };
    ]

let split_heal_merge =
  scenario ~park_timeout:split_park_timeout ~expect_reconverge:true "split-heal-merge"
    "split long enough to park the minority, heal, then demand re-convergence"
    split_heal_merge_plan

(* Repeated split/heal cycles with fresh random sets each time. Cycles
   are short enough that a heal sometimes lands before the park
   deadline, so both the parked-then-merged and the healed-in-place
   paths get exercised; after the last heal the group must still
   re-converge. *)
let flapping_split_plan ~rng ~n ~horizon =
  if n < 3 then []
  else begin
    let cycles = 2 + Rng.int rng 2 in
    let slot = 0.7 *. horizon /. float_of_int cycles in
    List.concat
      (List.init cycles (fun i ->
           let base = (0.05 *. horizon) +. (float_of_int i *. slot) in
           [
             {
               at = base +. Rng.uniform rng ~lo:0.0 ~hi:(0.3 *. slot);
               action = Split (split_sets rng ~n);
             };
             {
               at = base +. Rng.uniform rng ~lo:(0.6 *. slot) ~hi:(0.9 *. slot);
               action = Heal_split;
             };
           ]))
  end

let flapping_split =
  scenario ~park_timeout:split_park_timeout ~expect_reconverge:true "flapping-split"
    "repeated split/heal cycles with fresh random sets, converged at the end"
    flapping_split_plan

(* Overload: one victim stops reading early and stays wedged for most
   of the run while every member keeps publishing — the slow-consumer
   survival test. With shedding on ([shed_limit]), the victim's
   backlog must stay under [backlog_budget] (newer annotated messages
   purge the obsolete tail of the queue) while the healthy members
   keep delivering; with shedding off (--no-shed) the same plan must
   blow through the budget — the inverted self-check proving the
   budget verdict measures shedding, not a gentle workload. The pause
   window is only lightly jittered so the offered load, and hence the
   budget, is comparable across seeds. *)
let overload_plan ~rng ~n ~horizon =
  if n < 2 then []
  else begin
    let v = List.hd (victims rng ~n ~k:1) in
    let start = Rng.uniform rng ~lo:(0.08 *. horizon) ~hi:(0.12 *. horizon) in
    let stop = Float.min (0.85 *. horizon) (start +. (0.6 *. horizon)) in
    by_time [ { at = start; action = Pause v }; { at = stop; action = Resume v } ]
  end

let overload =
  scenario ~shed_limit:32 ~backlog_budget:250 "overload"
    "one member stops reading for most of the run under full load; shedding must keep \
     its backlog bounded"
    overload_plan

let spike_models =
  [|
    Latency.Uniform { lo = 0.02; hi = 0.08 };
    Latency.Constant 0.05;
    Latency.Shifted_exponential { base = 0.02; mean = 0.03 };
  |]

let latency_spikes_plan ~rng ~n:_ ~horizon =
  let windows = 1 + Rng.int rng 3 in
  let rec mk acc last i =
    if i = 0 then acc
    else begin
      let start = Rng.uniform rng ~lo:last ~hi:(Float.min (0.8 *. horizon) (last +. 0.3 *. horizon)) in
      let stop =
        Float.min (0.9 *. horizon)
          (start +. Rng.uniform rng ~lo:(0.05 *. horizon) ~hi:(0.2 *. horizon))
      in
      mk
        ({ at = start; action = Set_latency (Rng.pick rng spike_models) }
        :: { at = stop; action = Restore_latency }
        :: acc)
        stop (i - 1)
    end
  in
  by_time (mk [] (0.05 *. horizon) windows)

let latency_spikes =
  scenario "latency-spikes" "windows of much slower network, then restored" latency_spikes_plan

(* The same wedged consumer with everything else still going wrong
   around it: shedding has to stay safe (the oracle checks every run)
   while partitions and latency spikes reorder the pressure. No budget
   — the point is safety under composition, not the bound. *)
let overload_mayhem_plan ~rng ~n ~horizon =
  let sub plan = plan ~rng:(Rng.split rng) ~n ~horizon in
  by_time (List.concat [ sub overload_plan; sub partition_heal_plan; sub latency_spikes_plan ])

let overload_mayhem =
  scenario ~shed_limit:32 "overload-mayhem"
    "the wedged consumer composed with partitions and latency spikes, shedding on"
    overload_mayhem_plan

(* Everything at once, each sub-plan on its own split stream. Crashes
   and churn share one removal budget of n-2 victims so the anchor
   plus at least one peer always stay in the group; partitions and
   pauses may hit removed nodes — the injector tolerates that. *)
let mayhem_plan ~rng ~n ~horizon =
  let sub plan = plan ~rng:(Rng.split rng) ~n ~horizon in
  let removals =
    if n < 3 then []
    else begin
      let r = Rng.split rng in
      let k = 1 + Rng.int r (n - 2) in
      List.map
        (fun v ->
          let at = Rng.uniform r ~lo:(0.1 *. horizon) ~hi:(0.7 *. horizon) in
          if Rng.bool r then { at; action = Crash v }
          else { at; action = Leave { initiator = 0; node = v } })
        (victims r ~n ~k)
    end
  in
  by_time
    (List.concat
       [ removals; sub partition_heal_plan; sub slow_receiver_plan; sub latency_spikes_plan ])

let mayhem = scenario "mayhem" "crashes + partitions + pauses + churn + spikes" mayhem_plan

let all =
  [
    calm;
    crash;
    partition_heal;
    slow_receiver;
    churn;
    crash_restart;
    exclude_rejoin;
    group_split;
    split_heal_merge;
    flapping_split;
    latency_spikes;
    overload;
    overload_mayhem;
    mayhem;
  ]

let find name = List.find_opt (fun s -> s.name = name) all
