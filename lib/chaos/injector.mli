(** Applies a {!Scenario} plan to a live {!Svs_core.Group.cluster}.

    Actions are scheduled on the cluster's engine at their planned
    virtual times and applied through the Group fault surface; each
    applied action is emitted as a [Fault] trace event on the cluster's
    tracer, so a JSONL trace of a chaos run contains the faults
    interleaved with the protocol events they provoked.

    The plan's random choices are drawn from a stream split off the
    engine's root RNG at {!inject} time, so the whole run remains a
    pure function of the engine seed. *)

type t

val inject :
  ?recover:bool ->
  'p Svs_core.Group.cluster ->
  scenario:Scenario.t ->
  horizon:float ->
  t
(** Compute the plan and schedule it. [horizon] is the fault window:
    deferred actions (e.g. a [Leave] whose initiator is blocked, or a
    [Rejoin] whose exclusion is still in progress) are retried only up
    to it. [recover] (default [true]) is passed to
    {!Svs_core.Group.restart} for every [Rejoin]: [false] restarts
    victims amnesiac, which the safety oracle must then catch. *)

val plan : t -> Scenario.timed list
(** The concrete plan this injection drew, in time order. *)

val faults_injected : t -> int
(** Actions actually applied so far (a [Leave] whose target already
    left is skipped, not counted). *)

val restarts_applied : t -> int
(** [Rejoin] actions actually applied — how many crash–restart
    incarnation boundaries this run really contains (a planned rejoin
    whose exclusion never completed in time does not count). *)

val settle : t -> unit
(** Defensively restore a quiescent network: heal partitions still
    open, resume receivers still paused, restore the latency model.
    Call at the horizon before draining — the built-in scenarios
    schedule their own heals/resumes, so this is normally a no-op, but
    a custom plan (or a [mayhem] overlap) may leave state behind.
    Scenarios with [heal_at_settle = false] (e.g. [group-split]) keep
    their partitions and splits standing through the drain, proving
    the minority stays parked; paused receivers and the latency model
    are restored regardless. *)
