module Engine = Svs_sim.Engine
module Rng = Svs_sim.Rng
module Group = Svs_core.Group
module Trace = Svs_telemetry.Trace

type applier = {
  apply : Scenario.action -> bool;
      (* [true] if the action was applied (vs skipped). *)
  quiesce : unit -> unit;
}

type t = {
  engine : Engine.t;
  plan : Scenario.timed list;
  applier : applier;
  tracer : Trace.t;
  horizon : float;
  mutable applied : int;
  mutable restarts : int;
}

let plan t = t.plan

let faults_injected t = t.applied

let restarts_applied t = t.restarts

let emit_fault t action =
  if Trace.enabled t.tracer then begin
    let node, peer =
      match (action : Scenario.action) with
      | Crash p | Pause p | Resume p -> (p, -1)
      | Partition (a, b) | Heal (a, b) -> (a, b)
      | Leave { initiator; node } -> (node, initiator)
      | Rejoin p -> (p, -1)
      | Split _ | Heal_split | Set_latency _ | Restore_latency -> (-1, -1)
    in
    Trace.emit t.tracer (Trace.Fault { kind = Scenario.action_kind action; node; peer })
  end

exception Retry

let rec fire t action =
  match t.applier.apply action with
  | true ->
      t.applied <- t.applied + 1;
      (match action with Rejoin _ -> t.restarts <- t.restarts + 1 | _ -> ());
      emit_fault t action
  | false -> ()
  | exception Retry ->
      (* The group cannot take this action yet (e.g. every member
         blocked mid view change); retry shortly, within the window. *)
      if Engine.now t.engine < t.horizon then
        ignore (Engine.schedule t.engine ~delay:0.05 (fun () -> fire t action) : Engine.handle)

(* --- Group-backed applier --- *)

let group_applier (cluster : 'p Group.cluster) ~horizon ~recover ~heal_at_settle =
  let engine = Group.engine cluster in
  (* Track what needs undoing at settle time. *)
  let partitions : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let split : int list list ref = ref [] in
  let paused : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let base_latency = Group.latency cluster in
  let latency_dirty = ref false in
  let norm a b = if a <= b then (a, b) else (b, a) in
  let is_member p =
    match List.find_opt (fun m -> Group.id m = p) (Group.members cluster) with
    | Some m -> Group.is_member m
    | None -> false
  in
  let is_joining p =
    match List.find_opt (fun m -> Group.id m = p) (Group.members cluster) with
    | Some m -> Group.is_joining m
    | None -> false
  in
  (* Drive JOIN requests for a restarted node until some member admits
     it: the request is dropped whenever the contact is blocked mid
     view change, so keep asking (any unblocked member will do) until
     the handshake lands or the fault window closes. *)
  let rec nag p () =
    let m = Group.member cluster p in
    if Group.is_joining m then begin
      (match
         List.find_opt
           (fun q -> Group.id q <> p && Group.is_member q && not (Group.is_blocked q))
           (Group.members cluster)
       with
      | Some contact -> Group.request_join m ~contact:(Group.id contact)
      | None -> ());
      if Engine.now engine < horizon then
        ignore (Engine.schedule engine ~delay:0.1 (nag p) : Engine.handle)
    end
  in
  let apply (action : Scenario.action) =
    match action with
    | Crash p ->
        if is_member p then begin
          Group.crash cluster p;
          Hashtbl.remove paused p;
          true
        end
        else false
    | Pause p ->
        Group.pause_receive cluster p;
        Hashtbl.replace paused p ();
        true
    | Resume p ->
        Group.resume_receive cluster p;
        Hashtbl.remove paused p;
        true
    | Partition (a, b) ->
        Group.partition cluster a b;
        Hashtbl.replace partitions (norm a b) ();
        true
    | Heal (a, b) ->
        Group.heal cluster a b;
        Hashtbl.remove partitions (norm a b);
        true
    | Split sets ->
        (* A new split while one stands heals the old one first, so
           flapping plans never stack stale cross-set partitions. *)
        if !split <> [] then Group.heal_sets cluster !split;
        Group.partition_sets cluster sets;
        split := sets;
        (* The oracle detector cannot see the partition: write the
           non-primary sets (those without node 0) off, as a majority-
           side detector would. *)
        Group.write_off cluster
          (List.concat (List.filter (fun s -> not (List.mem 0 s)) sets));
        true
    | Heal_split ->
        if !split = [] then false
        else begin
          Group.heal_sets cluster !split;
          split := [];
          true
        end
    | Leave { initiator; node } ->
        if not (is_member node) then false
        else begin
          (* Prefer the planned initiator; fall back to any unblocked
             member; defer if the whole group is blocked. *)
          let can_initiate m =
            Group.is_member m && (not (Group.is_blocked m)) && Group.id m <> node
          in
          let chosen =
            match List.find_opt (fun m -> Group.id m = initiator) (Group.members cluster) with
            | Some m when can_initiate m -> Some m
            | _ -> List.find_opt can_initiate (Group.members cluster)
          in
          match chosen with
          | Some m ->
              Group.trigger_view_change m ~leave:[ node ] ();
              true
          | None -> raise Retry
        end
    | Rejoin p ->
        if is_member p then
          (* Still listed: its exclusion (a planned Leave or the
             suspicion-triggered view change after a crash) has not
             completed yet — come back shortly. *)
          raise Retry
        else if is_joining p then false
        else begin
          Group.restart cluster p ~recover;
          Hashtbl.remove paused p;
          nag p ();
          true
        end
    | Set_latency l ->
        Group.set_latency cluster l;
        latency_dirty := true;
        true
    | Restore_latency ->
        if !latency_dirty then begin
          Group.set_latency cluster base_latency;
          latency_dirty := false;
          true
        end
        else false
  in
  let quiesce () =
    (* Scenarios that must prove a partition outlives the run opt out
       of the heal sweep; pauses and latency are settled regardless
       (a paused receiver would starve the post-horizon drain). *)
    if heal_at_settle then begin
      Hashtbl.iter (fun (a, b) () -> Group.heal cluster a b) partitions;
      Hashtbl.reset partitions;
      if !split <> [] then begin
        Group.heal_sets cluster !split;
        split := []
      end
    end;
    Hashtbl.iter (fun p () -> Group.resume_receive cluster p) paused;
    Hashtbl.reset paused;
    if !latency_dirty then begin
      Group.set_latency cluster base_latency;
      latency_dirty := false
    end
  in
  { apply; quiesce }

let inject ?(recover = true) cluster ~scenario ~horizon =
  let engine = Group.engine cluster in
  let rng = Rng.split (Engine.rng engine) in
  let n =
    1 + List.fold_left (fun acc m -> Stdlib.max acc (Group.id m)) 0 (Group.members cluster)
  in
  let plan = scenario.Scenario.plan ~rng ~n ~horizon in
  let t =
    {
      engine;
      plan;
      applier =
        group_applier cluster ~horizon ~recover
          ~heal_at_settle:scenario.Scenario.heal_at_settle;
      tracer = Group.tracer cluster;
      horizon;
      applied = 0;
      restarts = 0;
    }
  in
  List.iter
    (fun { Scenario.at; action } ->
      let at = Float.max at (Engine.now engine) in
      ignore (Engine.schedule_at engine ~time:at (fun () -> fire t action) : Engine.handle))
    plan;
  t

let settle t = t.applier.quiesce ()
