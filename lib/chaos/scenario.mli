(** Declarative, seeded fault schedules.

    A scenario is a named generator: given a random stream, a node
    count and a virtual-time horizon, it produces a timed list of fault
    actions. All randomness comes from the supplied {!Svs_sim.Rng.t},
    so a plan — and hence a whole chaos run — is a pure function of the
    seed: any failure the oracle reports is replayable bit-for-bit from
    the printed seed.

    Plans obey the liveness discipline the safety oracle needs to make
    progress through the run:
    - node 0 (the anchor producer) is never crashed, paused, isolated
      or removed;
    - at least two members survive every plan;
    - every [Pause] has a matching [Resume], every [Partition] a
      matching [Heal], and every latency spike a restore, all strictly
      before the horizon (the injector's settle pass re-enforces this
      defensively). *)

type action =
  | Crash of int  (** Crash-stop: silenced for the rest of the run. *)
  | Pause of int
      (** Freeze the node's receive side (a stalled-but-running
          process); inbound traffic queues at the network. *)
  | Resume of int
  | Partition of int * int  (** Symmetric link partition; messages held. *)
  | Heal of int * int
  | Leave of { initiator : int; node : int }
      (** Membership churn: [initiator] asks the group to reconfigure
          [node] out. *)
  | Rejoin of int
      (** Restart a crashed or excluded node as a new incarnation and
          drive JOIN requests until the group readmits it. Skipped if
          the node is still a member; deferred (retried) while its
          exclusion is still in progress. *)
  | Set_latency of Svs_net.Latency.t
      (** Network-wide latency change (a spike). *)
  | Restore_latency
      (** Put back the latency model the network had when injection
          started. *)

type timed = { at : float; action : action }

type t = {
  name : string;
  doc : string;
  plan : rng:Svs_sim.Rng.t -> n:int -> horizon:float -> timed list;
}

val action_kind : action -> string
(** Short identifier ([crash], [pause], [partition], ...) used for the
    [Fault] trace event and reports. *)

val pp_action : Format.formatter -> action -> unit

val pp_timed : Format.formatter -> timed -> unit

(** {1 Built-in scenarios} *)

val calm : t
(** No faults — the baseline the others are measured against. *)

val crash : t
(** Crash-stop a random subset (≥ 1, always leaving ≥ 2 survivors) at
    random times. *)

val partition_heal : t
(** One to three link partitions, each healed before the horizon;
    windows may overlap. *)

val slow_receiver : t
(** Long receive pauses (comparable to the horizon) on one or two
    nodes — the paper's perturbed-receiver story. *)

val churn : t
(** A sequence of voluntary membership removals spread over the run. *)

val crash_restart : t
(** Crash a random subset, then restart each victim from its durable
    state and readmit it via the JOIN/SYNC path, all before the
    horizon. The checked run therefore contains crash, exclusion,
    rejoin and post-rejoin traffic for every victim. *)

val exclude_rejoin : t
(** Voluntarily exclude a random subset via view changes, then readmit
    each — the membership round trip without any crash. *)

val latency_spikes : t
(** Repeated windows in which the base latency is replaced by a much
    slower distribution, then restored. *)

val mayhem : t
(** The union of all of the above drawn from one stream: crashes,
    partitions, pauses, churn and spikes in a single run. *)

val all : t list
(** Every built-in scenario, [calm] first. *)

val find : string -> t option
(** Look up a built-in by name ([crash], [partition-heal], ...). *)
