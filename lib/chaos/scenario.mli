(** Declarative, seeded fault schedules.

    A scenario is a named generator: given a random stream, a node
    count and a virtual-time horizon, it produces a timed list of fault
    actions. All randomness comes from the supplied {!Svs_sim.Rng.t},
    so a plan — and hence a whole chaos run — is a pure function of the
    seed: any failure the oracle reports is replayable bit-for-bit from
    the printed seed.

    Plans obey the liveness discipline the safety oracle needs to make
    progress through the run:
    - node 0 (the anchor producer) is never crashed, paused, isolated
      or removed — in a [Split] it is always in the majority set;
    - at least two members survive every plan;
    - every [Pause] has a matching [Resume], every [Partition] a
      matching [Heal], and every latency spike a restore, all strictly
      before the horizon (the injector's settle pass re-enforces this
      defensively) — {e except} in scenarios that opt out with
      [heal_at_settle = false], whose group splits deliberately outlive
      the run to prove the minority stays parked. *)

type action =
  | Crash of int  (** Crash-stop: silenced for the rest of the run. *)
  | Pause of int
      (** Freeze the node's receive side (a stalled-but-running
          process); inbound traffic queues at the network. *)
  | Resume of int
  | Partition of int * int  (** Symmetric link partition; messages held. *)
  | Heal of int * int
  | Split of int list list
      (** Set-based group split: every cross-set link partitions, and
          (because the runner's oracle detector is otherwise oblivious
          to partitions) all nodes outside the primary set — the one
          containing node 0 — are marked crashed at it, the way a real
          detector on the majority side would write off an unreachable
          minority. A [Split] while one is standing heals the previous
          one first. *)
  | Heal_split
      (** Reconnect every pair the standing [Split] disconnected. The
          detector is {e not} touched: readmission of parked members
          goes through the JOIN/SYNC path, which clears suspicion once
          the minority member is excluded from every surviving view. *)
  | Leave of { initiator : int; node : int }
      (** Membership churn: [initiator] asks the group to reconfigure
          [node] out. *)
  | Rejoin of int
      (** Restart a crashed or excluded node as a new incarnation and
          drive JOIN requests until the group readmits it. Skipped if
          the node is still a member; deferred (retried) while its
          exclusion is still in progress. *)
  | Set_latency of Svs_net.Latency.t
      (** Network-wide latency change (a spike). *)
  | Restore_latency
      (** Put back the latency model the network had when injection
          started. *)

type timed = { at : float; action : action }

type t = {
  name : string;
  doc : string;
  plan : rng:Svs_sim.Rng.t -> n:int -> horizon:float -> timed list;
  heal_at_settle : bool;
      (** Whether the injector's settle pass may heal partitions left
          standing at the horizon (the default, [true]). Split
          scenarios that must prove a minority {e stays} parked opt
          out. Pauses, latency spikes and the paused-receive drain are
          always settled regardless. *)
  park_timeout : float option;
      (** Park deadline handed to {!Svs_core.Group}'s config for runs
          of this scenario ([None] = parking off, the default). *)
  expect_reconverge : bool;
      (** When [true], the oracle additionally demands that every node
          alive at the end of the run ends it in the final primary
          view ({!Svs_core.Checker.check_converged}) — the
          liveness-after-heal contract of the merge path. *)
  shed_limit : int option;
      (** Network-level semantic shedding for this scenario's runs:
          handed to {!Svs_core.Group}'s config as [shed] (unless the
          runner disables shedding). [None] (the default) leaves
          backlogged queues unbounded. *)
  backlog_budget : int option;
      (** Overload acceptance bound: the peak paused-inbox data
          backlog (over all nodes, sampled by the runner) a run may
          reach with shedding on — and must {e exceed} with shedding
          off, which is the inverted [--no-shed] self-check. [None]:
          no budget verdict. *)
}

val action_kind : action -> string
(** Short identifier ([crash], [pause], [partition], ...) used for the
    [Fault] trace event and reports. *)

val pp_action : Format.formatter -> action -> unit

val pp_timed : Format.formatter -> timed -> unit

(** {1 Built-in scenarios} *)

val calm : t
(** No faults — the baseline the others are measured against. *)

val crash : t
(** Crash-stop a random subset (≥ 1, always leaving ≥ 2 survivors) at
    random times. *)

val partition_heal : t
(** One to three link partitions, each healed before the horizon;
    windows may overlap. *)

val slow_receiver : t
(** Long receive pauses (comparable to the horizon) on one or two
    nodes — the paper's perturbed-receiver story. *)

val churn : t
(** A sequence of voluntary membership removals spread over the run. *)

val crash_restart : t
(** Crash a random subset, then restart each victim from its durable
    state and readmit it via the JOIN/SYNC path, all before the
    horizon. The checked run therefore contains crash, exclusion,
    rejoin and post-rejoin traffic for every victim. *)

val exclude_rejoin : t
(** Voluntarily exclude a random subset via view changes, then readmit
    each — the membership round trip without any crash. *)

val group_split : t
(** One majority/minority split (node 0 on the majority side), never
    healed: the majority must keep delivering while the minority parks
    and stays parked, its JOIN probes held on the dead links. Runs
    with a 1 s park deadline and [heal_at_settle = false]. *)

val split_heal_merge : t
(** Split long enough for the minority to park and turn into probing
    joiners, then heal well before the horizon: the held JOIN probes
    deliver at the heal and the whole group must re-converge to a
    single primary view ([expect_reconverge]). *)

val flapping_split : t
(** Two to three split/heal cycles with fresh random sets each time,
    short enough that heals sometimes land before the park deadline —
    exercising both the parked-then-merged and healed-in-place paths —
    with re-convergence demanded after the final heal. *)

val latency_spikes : t
(** Repeated windows in which the base latency is replaced by a much
    slower distribution, then restored. *)

val overload : t
(** One member stops reading early and stays wedged for ~60% of the
    run while every member keeps publishing. Runs with semantic
    shedding on ([shed_limit]) and a [backlog_budget] the victim's
    data backlog must stay under — and must blow through when the
    runner disables shedding ([--no-shed]), proving the verdict
    measures shedding. *)

val overload_mayhem : t
(** The wedged consumer composed with link partitions and latency
    spikes, shedding on but no budget: safety (the oracle's contracts)
    under composition is the point, not the bound. *)

val mayhem : t
(** The union of all of the above drawn from one stream: crashes,
    partitions, pauses, churn and spikes in a single run. *)

val all : t list
(** Every built-in scenario, [calm] first. *)

val find : string -> t option
(** Look up a built-in by name ([crash], [partition-heal], ...). *)
