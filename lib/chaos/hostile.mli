(** Hostile-input chaos harnesses: corrupt bytes on the wire, in the
    write-ahead log, and in a replica's memory, and check that the
    corresponding defense (peer quarantine, WAL salvage, divergence
    self-healing) contains the damage.

    Unlike the {!Scenario} catalogue these runs do not go through the
    {!Runner} (two of them leave the simulator — real sockets, real
    files), so they carry their own report type. Each harness takes a
    flag that disables its defense; the inverted run {e must} come back
    flagged — the chaos self-check proving the checks bite. *)

type check = { name : string; ok : bool; detail : string }

type report = { scenario : string; checks : check list }

val ok : report -> bool
(** Every check passed. *)

val pp_report : Format.formatter -> report -> unit

val names : string list
(** [["frame-corruption"; "wal-corruption"; "state-divergence"]]. *)

val run_frame_corruption : ?quarantine:bool -> unit -> report
(** A hostile process completes the mesh hello as a known peer, then
    streams unparseable batches at a node over real loopback TCP while
    an honest peer keeps talking. Checks: the attacker is quarantined
    (counted and traced), the garbage is dropped, and honest traffic
    keeps flowing. [quarantine:false] raises the quarantine threshold
    out of reach — the inverted self-check. Wall-clock: ~1 s. *)

val run_wal_corruption : ?salvage:bool -> unit -> report
(** Builds a healthy log in a fresh temp directory, flips one byte in
    an interior record, and recovers. Checks: records after the damage
    survive, the damaged bytes are skipped and quarantined to a
    [.corrupt] sidecar, recovery reports [tainted], and the rewritten
    log replays clean. [salvage:false] restores legacy
    truncate-at-first-bad-frame recovery — the inverted self-check. *)

val run_state_divergence : ?heal:bool -> ?seed:int -> unit -> report
(** A simulated 3-node group replicates an item store; once traffic
    quiesces, one backup's store is scribbled over behind the
    protocol's back. Checks: digest gossip convicts the divergent node
    (counted and traced), the replicas reconverge after its demote +
    state-transfer rejoin, and the {!Oracle} finds the run safe.
    [heal:false] detects and counts but never demotes — the inverted
    self-check. *)

val run : name:string -> invert:bool -> report
(** Dispatch by scenario name, [invert] disabling that scenario's
    defense. @raise Invalid_argument on an unknown name. *)
