(** Drives seeded chaos runs end to end: build a simulated cluster,
    run a multicast workload under a {!Scenario}'s fault plan, then
    hand the recorded trace to the {!Oracle}.

    Every run is a pure function of [(config, mode, scenario, seed)]:
    the engine seed feeds the workload stream, the fault plan and the
    network, so a failing seed printed by the oracle replays the exact
    execution. *)

type config = {
  nodes : int;  (** Group size (members [0 .. nodes-1]). *)
  horizon : float;  (** Fault + workload window (virtual seconds). *)
  settle : float;  (** Quiet drain period after the horizon. *)
  send_period : float;  (** Per-producer multicast period. *)
  k : int;  (** k-enumeration window for SVS-mode annotations. *)
  obsolete_bias : float;
      (** Probability an SVS-mode message directly obsoletes its
          sender's previous message. *)
  reconfigure : float option;
      (** When set, trigger one benign (no-leave) view change at this
          fraction of the horizon, so scenarios whose faults never
          force a membership change still exercise the view-pair
          contracts (with one everlasting view they hold vacuously). *)
  recover : bool;
      (** Whether a [Rejoin] restarts its victim from durable state
          (default) or amnesiac — [false] models a node that lost its
          write-ahead log, whose duplicate deliveries the oracle must
          flag. *)
  merge : bool;
      (** Whether a parked member turns into a probing joiner and
          merges back at the heal (default). [false] leaves parked
          members parked forever — the no-merge self-check: every
          scenario that expects re-convergence must then fail with
          [Not_converged]. *)
  shed : bool;
      (** Whether to honor the scenario's [shed_limit] (default). With
          [false] the same plans run with semantic shedding disabled —
          the inverted [--no-shed] self-check: overload scenarios with
          a [backlog_budget] must then exceed it. *)
}

val default_config : config
(** 5 nodes, 12 s horizon, 6 s settle, 50 ms sends, k = 8, bias 0.7,
    benign reconfiguration at 45% of the horizon, recovery and merge
    on. *)

type outcome = {
  report : Oracle.report;
  faults : int;  (** Fault actions actually applied. *)
  restarts : int;  (** Crash–restart rejoins actually applied. *)
  parked : int;  (** Quorum-loss park transitions during the run. *)
  sent : int;  (** Messages multicast by the workload. *)
  purged : int;  (** Deliveries saved by obsolescence (sum over nodes). *)
  shed : int;
      (** Queued-but-undelivered data messages the network shed as
          semantically obsolete (whole cluster). *)
  peak_backlog : int;
      (** Largest paused-inbox data backlog observed at any single
          node, sampled at half the send period. *)
  over_budget : bool option;
      (** [Some true] when [peak_backlog] exceeded the scenario's
          [backlog_budget]; [None] when the scenario sets no budget. *)
  events : int;  (** Engine events executed. *)
  flight : Svs_telemetry.Trace.record list;
      (** Flight recorder: the run's last protocol events (up to 2048,
          virtual-time stamps), kept by a ring behind the caller's
          tracer. Populated only when the oracle flagged the run — a
          passing run's postmortem is nobody's business — so failures
          ship a replayable seed {e and} what the cluster was doing
          just before the violation. *)
}

val run_one :
  ?mutation:Oracle.mutation ->
  ?tracer:Svs_telemetry.Trace.t ->
  ?config:config ->
  mode:Oracle.mode ->
  scenario:Scenario.t ->
  seed:int ->
  unit ->
  outcome
(** One seeded chaos run. In {!Oracle.Vs} mode the workload sends
    [Unrelated] annotations and the oracle demands classical View
    Synchrony; in {!Oracle.Svs} mode senders build k-enumeration
    annotations with a {!Svs_obs.Kenum_stream}. *)

val sweep :
  ?mutation:Oracle.mutation ->
  ?config:config ->
  modes:Oracle.mode list ->
  scenarios:Scenario.t list ->
  seeds:int list ->
  unit ->
  outcome list
(** The full grid, in [scenario * mode * seed] order. *)

val failures : outcome list -> outcome list

val pp_table : Format.formatter -> outcome list -> unit
(** One row per [scenario * mode]: seeds run, pass/fail, faults,
    messages, deliveries, purged. *)

val pp_failures : Format.formatter -> outcome list -> unit
(** Every failing {!Oracle.report} in full, one block per seed. *)
