module Engine = Svs_sim.Engine
module Rng = Svs_sim.Rng
module Group = Svs_core.Group
module Latency = Svs_net.Latency
module Annotation = Svs_obs.Annotation
module Kenum_stream = Svs_obs.Kenum_stream
module Trace = Svs_telemetry.Trace

type config = {
  nodes : int;
  horizon : float;
  settle : float;
  send_period : float;
  k : int;
  obsolete_bias : float;
  reconfigure : float option;
  recover : bool;
  merge : bool;
  shed : bool;
      (* Honor the scenario's shed_limit (default). false runs the
         same plans with shedding disabled — the inverted --no-shed
         self-check, which must blow the overload budget. *)
}

let default_config =
  {
    nodes = 5;
    horizon = 12.0;
    settle = 6.0;
    send_period = 0.05;
    k = 8;
    obsolete_bias = 0.7;
    reconfigure = Some 0.45;
    recover = true;
    merge = true;
    shed = true;
  }

type outcome = {
  report : Oracle.report;
  faults : int;
  restarts : int;
  parked : int;
  sent : int;
  purged : int;
  shed : int;
  peak_backlog : int;
  over_budget : bool option;
      (* Some true: the sampled peak paused backlog exceeded the
         scenario's budget; None when the scenario sets no budget. *)
  events : int;
  flight : Trace.record list;
}

(* Last-N protocol events of the run, kept by a ring teed behind the
   caller's tracer. Only a failing run pays to materialise them. *)
let flight_capacity = 2048

let run_one ?mutation ?(tracer = Trace.nop) ?(config = default_config) ~mode ~scenario ~seed
    () =
  let engine = Engine.create ~seed () in
  let flight_ring = Trace.ring ~capacity:flight_capacity () in
  let tracer = Trace.tee tracer flight_ring in
  let members = List.init config.nodes Fun.id in
  let gconfig =
    {
      Group.default_config with
      tracer;
      park_timeout = scenario.Scenario.park_timeout;
      merge = config.merge;
      shed = (if config.shed then scenario.Scenario.shed_limit else None);
      (* Park semantics only exist under partition-sensitive consensus:
         the centralised arbiter decides out-of-band, so a split
         minority would learn the majority's decision and exclude
         itself instead of blocking. Scenarios that park therefore run
         the real ◇S consensus over the same (splittable) network. *)
      consensus =
        (if scenario.Scenario.park_timeout <> None then Group.Chandra_toueg
         else Group.default_config.consensus);
    }
  in
  let cluster =
    Group.create_cluster engine ~members ~latency:(Latency.Constant 0.002) ~config:gconfig ()
  in
  (* Workload randomness on its own split stream, so workload and fault
     plan draws cannot perturb each other. *)
  let wrng = Rng.split (Engine.rng engine) in
  let sent = ref 0 in
  let streams : (int, Kenum_stream.t) Hashtbl.t = Hashtbl.create config.nodes in
  let annotation p =
    match (mode : Oracle.mode) with
    | Vs -> Annotation.Unrelated
    | Svs ->
        let st =
          match Hashtbl.find_opt streams p with
          | Some st -> st
          | None ->
              let st = Kenum_stream.create ~k:config.k () in
              Hashtbl.replace streams p st;
              st
        in
        let direct =
          if Kenum_stream.next_sn st > 0 && Rng.chance wrng config.obsolete_bias then [ 1 ]
          else []
        in
        Annotation.Kenum (Kenum_stream.push st ~direct)
  in
  (* Producers: skip a tick while blocked or gone, so the Kenum stream's
     sequence numbers stay aligned with the protocol's (the annotation
     is only built once the multicast is known to go through). *)
  let try_send m =
    if Group.is_member m && not (Group.is_blocked m) then begin
      let p = Group.id m in
      match Group.multicast m ~ann:(annotation p) !sent with
      | Ok _ -> incr sent
      | Error _ -> ()
    end
  in
  let drain_until = config.horizon +. config.settle in
  List.iter
    (fun m ->
      let start = Rng.uniform wrng ~lo:0.0 ~hi:config.send_period in
      ignore
        (Engine.every engine ~start ~period:config.send_period (fun () ->
             try_send m;
             Engine.now engine < config.horizon)
          : Engine.handle);
      ignore
        (Engine.every engine ~start:(start +. 0.001) ~period:(config.send_period /. 2.0)
           (fun () ->
             ignore (Group.deliver_all m);
             Engine.now engine < drain_until)
          : Engine.handle))
    (Group.members cluster);
  (* A benign reconfiguration mid-run, so even fault plans that never
     force a membership change exercise the view-pair contracts (with a
     single everlasting view, SVS and strict VS hold vacuously). *)
  Option.iter
    (fun frac ->
      let rec attempt () =
        let anchor = Group.member cluster 0 in
        if Group.is_member anchor && not (Group.is_blocked anchor) then
          Group.trigger_view_change anchor ~leave:[] ()
        else if Engine.now engine < config.horizon then
          ignore (Engine.schedule engine ~delay:0.05 attempt : Engine.handle)
      in
      ignore
        (Engine.schedule_at engine ~time:(frac *. config.horizon) attempt : Engine.handle))
    config.reconfigure;
  (* Peak paused-inbox data backlog, sampled between sends: the
     quantity the overload budget bounds (and --no-shed must blow). *)
  let peak_backlog = ref 0 in
  ignore
    (Engine.every engine ~start:(config.send_period /. 2.0) ~period:(config.send_period /. 2.0)
       (fun () ->
         List.iter
           (fun p ->
             let b = Group.backlog cluster p in
             if b > !peak_backlog then peak_backlog := b)
           members;
         Engine.now engine < drain_until)
      : Engine.handle);
  let injection =
    Injector.inject ~recover:config.recover cluster ~scenario ~horizon:config.horizon
  in
  Engine.run ~until:config.horizon engine;
  Injector.settle injection;
  Engine.run ~until:drain_until engine;
  (* Whatever the periodic drains missed (e.g. a flush completing at the
     very end): pull synchronously before judging. *)
  List.iter (fun m -> ignore (Group.deliver_all m)) (Group.members cluster);
  (* Split scenarios never remove anyone for good, so the convergence
     contract quantifies over the whole group. *)
  let expect_converged = if scenario.Scenario.expect_reconverge then Some members else None in
  let report =
    Oracle.check ?mutation ?expect_converged ~mode ~seed ~scenario:scenario.Scenario.name
      (Group.checker cluster)
  in
  {
    report;
    faults = Injector.faults_injected injection;
    restarts = Injector.restarts_applied injection;
    parked = Group.parked_events cluster;
    sent = !sent;
    purged = List.fold_left (fun acc m -> acc + Group.purged m) 0 (Group.members cluster);
    shed = Group.shed_total cluster;
    peak_backlog = !peak_backlog;
    over_budget =
      (* The budget bounds what shedding can keep bounded, and shedding
         needs semantic information: VS-mode runs send [Unrelated]
         annotations (nothing is sheddable), so no bound is claimable
         there and the verdict only applies to SVS-mode runs. *)
      (match mode with
      | Oracle.Vs -> None
      | Oracle.Svs ->
          Option.map (fun budget -> !peak_backlog > budget) scenario.Scenario.backlog_budget);
    events = Engine.events_executed engine;
    flight = (if Oracle.ok report then [] else Trace.records flight_ring);
  }

let sweep ?mutation ?config ~modes ~scenarios ~seeds () =
  List.concat_map
    (fun scenario ->
      List.concat_map
        (fun mode ->
          List.map (fun seed -> run_one ?mutation ?config ~mode ~scenario ~seed ()) seeds)
        modes)
    scenarios

let failures outcomes = List.filter (fun o -> not (Oracle.ok o.report)) outcomes

(* --- Reporting --- *)

let pp_table ppf outcomes =
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun o ->
      let key = (o.report.Oracle.scenario, o.report.Oracle.mode) in
      if not (Hashtbl.mem groups key) then begin
        order := key :: !order;
        Hashtbl.replace groups key []
      end;
      Hashtbl.replace groups key (o :: Hashtbl.find groups key))
    outcomes;
  let header =
    [
      "scenario"; "mode"; "seeds"; "pass"; "fail"; "faults"; "parked"; "sent"; "delivered";
      "purged"; "shed";
    ]
  in
  let rows =
    List.rev_map
      (fun ((scenario, mode) as key) ->
        let os = Hashtbl.find groups key in
        let n = List.length os in
        let fails = List.length (failures os) in
        let sum f = List.fold_left (fun acc o -> acc + f o) 0 os in
        [
          scenario;
          Oracle.mode_label mode;
          string_of_int n;
          string_of_int (n - fails);
          string_of_int fails;
          string_of_int (sum (fun o -> o.faults));
          string_of_int (sum (fun o -> o.parked));
          string_of_int (sum (fun o -> o.sent));
          string_of_int (sum (fun o -> o.report.Oracle.deliveries));
          string_of_int (sum (fun o -> o.purged));
          string_of_int (sum (fun o -> o.shed));
        ])
      !order
  in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w cell -> Stdlib.max w (String.length cell)) ws row)
      (List.map String.length header)
      rows
  in
  let line row =
    Format.fprintf ppf "%s@,"
      (String.concat "  "
         (List.map2 (fun w cell -> cell ^ String.make (w - String.length cell) ' ') widths row))
  in
  Format.fprintf ppf "@[<v>";
  line header;
  line (List.map (fun w -> String.make w '-') widths);
  List.iter line rows;
  Format.fprintf ppf "@]"

let pp_failures ppf outcomes =
  List.iter
    (fun o -> Format.fprintf ppf "%a@." Oracle.pp_report o.report)
    (failures outcomes)
