(* Hostile-input chaos harnesses: feed the stack deliberately corrupt
   bytes — on the wire, in the write-ahead log, in a replica's memory —
   and check that the corresponding defense (quarantine, salvage,
   divergence self-healing) contains the damage. Each harness also runs
   inverted (defense disabled) as a self-check: the run MUST then be
   flagged, proving the checks actually bite.

   These scenarios do not fit the Runner/Injector pipeline (two of them
   leave the simulator entirely — real sockets, real files), so they
   carry their own minimal report type. *)

module Loop = Svs_rt.Loop
module Tcp_mesh = Svs_rt.Tcp_mesh
module Wal = Svs_rt.Wal
module Engine = Svs_sim.Engine
module Latency = Svs_net.Latency
module Group = Svs_core.Group
module View = Svs_core.View
module Store = Svs_replication.Replicated_store
module Codec = Svs_codec.Codec
module Trace = Svs_telemetry.Trace

type check = { name : string; ok : bool; detail : string }

type report = { scenario : string; checks : check list }

let ok r = List.for_all (fun c -> c.ok) r.checks

let names = [ "frame-corruption"; "wal-corruption"; "state-divergence" ]

let pp_report ppf r =
  Format.fprintf ppf "@[<v>hostile scenario %-16s %s" r.scenario
    (if ok r then "ok" else "FLAGGED");
  List.iter
    (fun c ->
      Format.fprintf ppf "@,  [%s] %s%s"
        (if c.ok then " ok " else "FAIL")
        c.name
        (if c.detail = "" then "" else ": " ^ c.detail))
    r.checks;
  Format.fprintf ppf "@]"

let has_event tracer pred =
  List.exists (fun r -> pred r.Trace.event) (Trace.records tracer)

(* ------------------------------------------------------------------ *)
(* frame-corruption: a hostile process completes the mesh handshake as
   peer 2, then streams garbage batches at node 0 while honest node 1
   keeps talking. Expected: node 0 escalates drop -> reset -> quarantine
   on peer 2 and honest traffic keeps flowing. Inverted
   ([quarantine:false], threshold unreachable): the garbage is dropped
   but the peer is never quarantined, and the harness flags it. *)

let frame s =
  let n = String.length s in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string s 0 b 4 n;
  Bytes.to_string b

let run_frame_corruption ?(quarantine = true) () =
  let loop = Loop.create () in
  let fd0, addr0 = Tcp_mesh.listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) in
  let fd1, addr1 = Tcp_mesh.listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) in
  (* Peer 2 is the attacker: grab a real (but closed) address so the
     honest meshes' dials towards it fail fast and back off. *)
  let fd2, addr2 = Tcp_mesh.listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) in
  Unix.close fd2;
  let peers = [ (0, addr0); (1, addr1); (2, addr2) ] in
  let hostile =
    {
      Tcp_mesh.reset_score = 2.0;
      quarantine_score = (if quarantine then 4.0 else infinity);
      forgive_after = 60.0;
      decay = 0.0;
    }
  in
  let tracer = Trace.memory () in
  let honest_at_0 = ref 0 and honest_at_1 = ref 0 in
  let mesh0 =
    Tcp_mesh.create loop ~me:0 ~listen_fd:fd0 ~peers
      ~on_frame:(fun ~src _ -> if src = 1 then incr honest_at_0)
      ~tracer ~hostile ()
  in
  let mesh1 =
    Tcp_mesh.create loop ~me:1 ~listen_fd:fd1 ~peers
      ~on_frame:(fun ~src _ -> if src = 0 then incr honest_at_1)
      ~hostile ()
  in
  (* Honest chatter both ways. *)
  ignore
    (Loop.every loop ~period:0.005 (fun () ->
         Tcp_mesh.send mesh0 ~dst:1 "ping";
         Tcp_mesh.send mesh1 ~dst:0 "pong";
         true));
  (* The attacker: a raw TCP client that says hello as peer 2, then
     writes batches that cannot parse (overlong varint inner length).
     Every torn connection is re-dialed, like a determined adversary. *)
  let garbage = frame "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff" in
  let hello = frame "2" in
  let sock = ref None in
  let drop_sock () =
    (match !sock with
    | Some s -> ( try Unix.close s with Unix.Unix_error _ -> ())
    | None -> ());
    sock := None
  in
  let attack () =
    (match !sock with
    | None -> (
        try
          let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.setsockopt s Unix.TCP_NODELAY true;
          Unix.connect s addr0;
          ignore (Unix.write_substring s hello 0 (String.length hello));
          Unix.set_nonblock s;
          sock := Some s
        with Unix.Unix_error _ -> ())
    | Some s -> (
        (* A zero-byte read means node 0 tore the link down. *)
        (match Unix.recv s (Bytes.create 1) 0 1 [] with
        | 0 -> drop_sock ()
        | _ -> ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
        | exception Unix.Unix_error _ -> drop_sock ());
        match !sock with
        | None -> ()
        | Some s -> (
            try ignore (Unix.write_substring s garbage 0 (String.length garbage))
            with Unix.Unix_error _ -> drop_sock ())));
    true
  in
  ignore (Loop.every loop ~period:0.004 attack);
  let t0 = Unix.gettimeofday () in
  let done_ () =
    Unix.gettimeofday () -. t0 > 2.0
    || (Tcp_mesh.quarantined_total mesh0 >= 1 && !honest_at_0 >= 5 && !honest_at_1 >= 5)
  in
  Loop.run ~until:done_ ~timeout:3.0 loop;
  let quarantined_now = Tcp_mesh.quarantined mesh0 ~peer:2 in
  let quarantine_count = Tcp_mesh.quarantined_total mesh0 in
  let dropped = Tcp_mesh.frames_dropped mesh0 in
  drop_sock ();
  Tcp_mesh.close mesh0;
  Tcp_mesh.close mesh1;
  {
    scenario = "frame-corruption";
    checks =
      [
        {
          name = "hostile peer quarantined";
          ok = quarantine_count >= 1 && quarantined_now;
          detail =
            Printf.sprintf "tcp_peer_quarantined_total=%d quarantined(2)=%b"
              quarantine_count quarantined_now;
        };
        {
          name = "quarantine traced";
          ok =
            has_event tracer (function
              | Trace.Quarantine { node = 0; peer = 2; _ } -> true
              | _ -> false);
          detail = "";
        };
        {
          name = "garbage dropped, not delivered";
          ok = dropped >= 1;
          detail = Printf.sprintf "frames_dropped=%d" dropped;
        };
        {
          name = "honest traffic kept flowing";
          ok = !honest_at_0 >= 5 && !honest_at_1 >= 5;
          detail =
            Printf.sprintf "node0 received %d, node1 received %d" !honest_at_0
              !honest_at_1;
        };
      ];
  }

(* ------------------------------------------------------------------ *)
(* wal-corruption: build a healthy log (view, two floors, a lease),
   flip one byte in an interior record, and recover. Expected: salvage
   skips exactly the damaged record, quarantines its bytes to a
   .corrupt sidecar, keeps everything after it, reports tainted, and
   rewrites the log so the next recovery is clean. Inverted
   ([salvage:false], legacy truncate-at-first-bad-frame): everything
   after the flipped byte is lost and the harness flags it. *)

let temp_dir prefix =
  let f = Filename.temp_file prefix "" in
  Unix.unlink f;
  Unix.mkdir f 0o700;
  f

let rm_rf dir =
  Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let segment_files dir =
  List.filter
    (fun f -> not (Filename.check_suffix f ".corrupt"))
    (Array.to_list (Sys.readdir dir))

let sidecar_files dir =
  List.filter (fun f -> Filename.check_suffix f ".corrupt") (Array.to_list (Sys.readdir dir))

(* Flip one payload byte of the [n]th frame (0-based) of the segment. *)
let corrupt_frame path ~index =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  let off = ref 0 and i = ref 0 in
  while !i < index do
    let flen = Int32.to_int (Bytes.get_int32_be b !off) in
    off := !off + 8 + flen;
    incr i
  done;
  let target = !off + 8 in
  Bytes.set b target (Char.chr (Char.code (Bytes.get b target) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let run_wal_corruption ?(salvage = true) () =
  let dir = temp_dir "svs-hostile-wal" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let w, _ = Wal.open_exn ~dir ~me:7 () in
      Wal.append w (Wal.Install (View.make ~id:4 ~members:[ 0; 7 ]));
      Wal.append w (Wal.Floor { sender = 0; sn = 5 });
      Wal.append w (Wal.Floor { sender = 7; sn = 9 });
      Wal.append_durable w (Wal.Lease { next_sn = 50 });
      Wal.close w;
      (* Frame 0 is the identity stamp, frame 1 the Install; frame 2 is
         the first Floor — interior damage with live records after it. *)
      (match segment_files dir with
      | [ seg ] -> corrupt_frame (Filename.concat dir seg) ~index:2
      | files ->
          invalid_arg
            (Printf.sprintf "expected one segment, found %d" (List.length files)));
      let w, r = Wal.open_exn ~dir ~me:7 ~salvage () in
      Wal.close w;
      let view_ok = match r.Wal.view with Some v -> v.View.id = 4 | None -> false in
      let floors_ok =
        List.mem_assoc 7 r.Wal.floors
        && List.assoc 7 r.Wal.floors = 9
        && not (List.mem_assoc 0 r.Wal.floors)
      in
      let sidecars = sidecar_files dir in
      (* Recover once more: the rewrite must leave a log that replays
         clean (damage quarantined, not carried forward). *)
      let w2, r2 = Wal.open_exn ~dir ~me:7 ~salvage () in
      Wal.close w2;
      {
        scenario = "wal-corruption";
        checks =
          [
            {
              name = "view survives the damage";
              ok = view_ok;
              detail =
                (match r.Wal.view with
                | Some v -> Printf.sprintf "view id %d" v.View.id
                | None -> "no view recovered");
            };
            {
              name = "records beyond the damage salvaged";
              ok = floors_ok && r.Wal.next_sn = 50;
              detail =
                Printf.sprintf "floors=[%s] next_sn=%d"
                  (String.concat "; "
                     (List.map (fun (s, n) -> Printf.sprintf "%d:%d" s n) r.Wal.floors))
                  r.Wal.next_sn;
            };
            {
              name = "damaged record skipped and quarantined";
              ok = r.Wal.skipped >= 1 && sidecars <> [];
              detail =
                Printf.sprintf "skipped=%d sidecars=%d" r.Wal.skipped
                  (List.length sidecars);
            };
            {
              name = "recovery reported tainted";
              ok = r.Wal.tainted;
              detail = Printf.sprintf "tainted=%b" r.Wal.tainted;
            };
            {
              name = "rewritten log replays clean";
              ok =
                r2.Wal.skipped = 0 && r2.Wal.truncated = 0 && r2.Wal.next_sn = r.Wal.next_sn
                && r2.Wal.floors = r.Wal.floors;
              detail =
                Printf.sprintf "second recovery: skipped=%d truncated=%d next_sn=%d"
                  r2.Wal.skipped r2.Wal.truncated r2.Wal.next_sn;
            };
          ];
      })

(* ------------------------------------------------------------------ *)
(* state-divergence: a 3-node simulated group replicates an item store;
   after traffic quiesces, one backup's store is scribbled over behind
   the protocol's back. Expected: digest gossip convicts the divergent
   node, it self-demotes and rejoins with state transfer, and all
   replicas converge again. Inverted ([heal:false], detect-only): the
   divergence is counted but the stores stay split and the harness
   flags it. *)

let run_state_divergence ?(heal = true) ?(seed = 11) () =
  let engine = Engine.create ~seed () in
  let tracer = Trace.memory () in
  let config =
    {
      Group.default_config with
      divergence = Some { Group.div_period = 0.2; div_rounds = 3; div_heal = heal };
      tracer;
    }
  in
  let cluster =
    Group.create_cluster engine ~members:[ 0; 1; 2 ] ~latency:(Latency.Constant 0.002)
      ~config ()
  in
  let snapshot = ((fun w v -> Codec.Writer.zigzag w v), fun r -> Codec.Reader.zigzag r) in
  let stores = List.map (fun m -> Store.attach ~snapshot m) (Group.members cluster) in
  List.iter
    (fun st -> Group.set_state_digest (Store.member st) (fun () -> Store.digest st))
    stores;
  let store n = List.nth stores n in
  let counter = ref 0 in
  ignore
    (Engine.every engine ~period:0.05 (fun () ->
         incr counter;
         ignore (Store.submit (store 0) [ Store.Set (!counter mod 8, !counter) ]);
         Engine.now engine < 2.0));
  ignore
    (Engine.every engine ~period:0.02 (fun () ->
         List.iter Store.process stores;
         Engine.now engine < 11.9));
  ignore
    (Engine.schedule_at engine ~time:3.0 (fun () -> Store.corrupt (store 2) ~item:1 (-999)));
  Engine.run ~until:12.0 engine;
  List.iter Store.process stores;
  let detections = Group.divergence_events cluster in
  let converged = Store.store_equal (store 0) (store 2) && Store.store_equal (store 0) (store 1) in
  let oracle =
    Oracle.check ~expect_converged:[ 0; 1; 2 ] ~mode:Oracle.Svs ~seed
      ~scenario:"state-divergence" (Group.checker cluster)
  in
  {
    scenario = "state-divergence";
    checks =
      [
        {
          name = "divergence detected";
          ok = detections >= 1;
          detail = Printf.sprintf "svs_divergence_detected_total=%d" detections;
        };
        {
          name = "divergence traced at the corrupt node";
          ok =
            has_event tracer (function
              | Trace.Divergence { node = 2; _ } -> true
              | _ -> false);
          detail = "";
        };
        {
          name = "replicas reconverged";
          ok = converged;
          detail =
            Printf.sprintf "store(2) item 1 = %s, store(0) item 1 = %s"
              (match Store.get (store 2) 1 with Some v -> string_of_int v | None -> "-")
              (match Store.get (store 0) 1 with Some v -> string_of_int v | None -> "-");
        };
        {
          name = "safety contracts hold through the heal";
          ok = Oracle.ok oracle;
          detail = Format.asprintf "%a" Oracle.pp_report oracle;
        };
      ];
  }

let run ~name ~invert =
  match name with
  | "frame-corruption" -> run_frame_corruption ~quarantine:(not invert) ()
  | "wal-corruption" -> run_wal_corruption ~salvage:(not invert) ()
  | "state-divergence" -> run_state_divergence ~heal:(not invert) ()
  | _ -> invalid_arg ("Hostile.run: unknown scenario " ^ name)
