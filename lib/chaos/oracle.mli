(** The SVS safety oracle: machine-checks the paper's §4 contracts over
    a recorded chaos run and reports failures replayably.

    The three contracts (checked via {!Svs_core.Checker} against the
    transitive closure of the annotation-encoded relation):

    - {b Semantic View Synchrony} (§4.1): if [p] installs consecutive
      views [v_i], [v_{i+1}] and delivers [m] in [v_i], every process
      [q] installing both views delivers some [m'] with [m ⊑ m']
      before installing [v_{i+1}] — surviving installers end each view
      with obsolescence-equivalent delivery sets.
    - {b FIFO Semantic Reliability} (§4.1): per-sender FIFO order, and
      omissions only of obsolete messages — if [p] delivers [m'] in
      [v_i], then for every [m] multicast earlier by the same sender,
      [p] delivers some [m''] with [m ⊑ m''] before installing
      [v_{i+1}].
    - {b Integrity}: no creation, no duplication (per process).

    In {!Vs} mode (empty relation — every annotation [Unrelated]) the
    oracle additionally demands classical View Synchrony: identical
    per-view delivery sets, demonstrating the paper's claim that SVS
    with an empty relation {e is} VS.

    A failing report carries the seed, the scenario name, the violating
    view pair(s) and the offending message ids — everything needed to
    replay the exact run. *)

type mode =
  | Vs  (** Empty relation: strict View Synchrony must hold. *)
  | Svs  (** Annotated run: the three SVS contracts must hold. *)

val mode_label : mode -> string
(** ["vs"] / ["svs"]. *)

val mode_of_label : string -> mode option

(** Self-test mutations: corrupt the recorded run the way a broken
    implementation would, to prove the oracle actually bites. *)
type mutation =
  | Drop_cover
      (** Simulate an over-eager purge: remove one delivery whose
          absence provably breaks the view-pair equivalence (a message
          another surviving installer delivered, with no other cover in
          the mutated log). *)
  | Duplicate_after_restart
      (** Simulate a lost write-ahead log: re-deliver, right after a
          process's crash–rejoin readmission, a message its previous
          incarnation had already delivered. Integrity (no duplication)
          must flag it. Requires a run with an actual rejoin (e.g. the
          [crash-restart] scenario). *)
  | Split_brain
      (** Simulate a minority that elects itself: append to one
          process's log the install of a forged view — id one past the
          global maximum, membership just that process — that shares no
          installer with the real primary chain. Prefers a process that
          never installed the final view (the parked minority of an
          unhealed split); if all processes converged, a log is first
          truncated at a crash–rejoin incarnation boundary. The no-
          split-brain check must flag it. In the report's [mutated]
          field the message id stands in for [(process, forged view
          id)]. *)

type report = {
  mode : mode;
  seed : int;
  scenario : string;
  violations : Svs_core.Checker.violation list;
  deliveries : int;  (** Data deliveries checked. *)
  installs : int;  (** View installations checked. *)
  mutated : (int * Svs_obs.Msg_id.t) option;
      (** The (process, message id) removed by a {!mutation}. *)
}

val check :
  ?mutation:mutation ->
  ?expect_converged:int list ->
  mode:mode ->
  seed:int ->
  scenario:string ->
  Svs_core.Checker.t ->
  report
(** Verify the recorded run. With [expect_converged] the liveness-
    after-heal check runs too: every listed process must have ended the
    run in the final primary view ({!Svs_core.Checker.check_converged}).
    Raises [Failure] if a [mutation] was requested but the run contains
    nothing to corrupt (no safety-relevant delivery for [Drop_cover];
    no incarnation boundary for [Duplicate_after_restart]; no process
    log at all for [Split_brain]). *)

val ok : report -> bool

val view_pair : Svs_core.Checker.violation -> (int * int) option
(** The violated view transition [(v_i, v_{i+1})], when the clause is
    about one. *)

val pp_report : Format.formatter -> report -> unit
(** One line for a pass; seed + scenario + every violation with its
    view pair for a failure. *)
