module Checker = Svs_core.Checker
module View = Svs_core.View
module Msg_id = Svs_obs.Msg_id
module Annotation = Svs_obs.Annotation

type mode = Vs | Svs

let mode_label = function Vs -> "vs" | Svs -> "svs"

let mode_of_label = function "vs" -> Some Vs | "svs" -> Some Svs | _ -> None

type mutation = Drop_cover | Duplicate_after_restart | Split_brain

type report = {
  mode : mode;
  seed : int;
  scenario : string;
  violations : Checker.violation list;
  deliveries : int;
  installs : int;
  mutated : (int * Msg_id.t) option;
}

let ok r = r.violations = []

let view_pair = function
  | Checker.Svs_hole { view_id; _ }
  | Checker.Fifo_sr_hole { view_id; _ }
  | Checker.Vs_mismatch { view_id; _ } ->
      Some (view_id, view_id + 1)
  | Checker.View_disagreement { view_id; _ } -> Some (view_id, view_id)
  | Checker.Split_brain { prev_view_id; view_id; _ } -> Some (prev_view_id, view_id)
  | Checker.Created _ | Checker.Duplicated _ | Checker.Fifo_order _
  | Checker.Not_converged _ ->
      None

(* --- Mutation: pick a delivery whose removal must break safety. --- *)

(* Per-process view segments, mirroring the checker's segmentation. *)
let segments log =
  let rec go cur acc = function
    | [] -> List.rev (match cur with None -> acc | Some s -> s :: acc)
    | Checker.Installed v :: rest ->
        go (Some (v, [])) (match cur with None -> acc | Some s -> s :: acc) rest
    | Checker.Delivered m :: rest -> (
        match cur with
        | None -> go None acc rest (* ignore pre-install noise; checker would reject *)
        | Some (v, ds) -> go (Some (v, m :: ds)) acc rest)
  in
  List.map (fun (v, ds) -> (v, List.rev ds)) (go None [] log)

(* Reachability in the transitive closure of the encoded relation:
   does some delivered message other than [m] itself cover [m]? *)
let covered_excluding ~successors ~except (id : Msg_id.t) targets =
  let visited = Hashtbl.create 16 in
  let rec bfs = function
    | [] -> false
    | x :: rest ->
        if Hashtbl.mem visited x then bfs rest
        else begin
          Hashtbl.replace visited x ();
          if (not (Msg_id.equal x except)) && Msg_id.Set.mem x targets then true
          else bfs (successors x @ rest)
        end
  in
  bfs [ id ]

let build_successors multicasts =
  let succ : (Msg_id.t, Msg_id.t list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (older : Checker.meta) ->
      List.iter
        (fun (newer : Checker.meta) ->
          if
            (not (Msg_id.equal older.id newer.id))
            && Annotation.obsoletes ~older:(older.id, older.ann) ~newer:(newer.id, newer.ann)
          then
            Hashtbl.replace succ older.id
              (newer.id :: Option.value ~default:[] (Hashtbl.find_opt succ older.id)))
        multicasts)
    multicasts;
  fun id -> Option.value ~default:[] (Hashtbl.find_opt succ id)

(* A candidate is (q, m): q delivered m in a segment followed by
   another install, some other process p delivered m and installed the
   same view pair, and nothing else q delivered before that next
   install covers m. Removing m from q's log then necessarily opens an
   SVS hole (and, with an empty relation, a strict-VS mismatch). *)
let find_droppable check =
  let successors = build_successors (Checker.multicast_log check) in
  let procs = Checker.processes check in
  let segs = List.map (fun p -> (p, segments (Checker.process_log check ~p))) procs in
  let installed_pair q vi vj =
    match List.assoc_opt q segs with
    | None -> false
    | Some ss ->
        List.exists (fun (v, _) -> v.View.id = vi) ss
        && List.exists (fun (v, _) -> v.View.id = vj) ss
  in
  let delivered_pair p vi vj (m : Checker.meta) =
    match List.assoc_opt p segs with
    | None -> false
    | Some ss ->
        installed_pair p vi vj
        && List.exists
             (fun (v, ds) ->
               v.View.id = vi
               && List.exists (fun (d : Checker.meta) -> Msg_id.equal d.id m.id) ds)
             ss
  in
  let candidate =
    List.find_map
      (fun (q, qsegs) ->
        let rec pairs = function
          (* Only genuinely consecutive view ids form a checked pair —
             mirror the checker, which skips the view-id gap a
             crash–rejoin leaves in a process's log. *)
          | (vi, _) :: ((vj, _) :: _ as rest)
            when vj.View.id <> vi.View.id + 1 ->
              pairs rest
          | (vi, ds) :: ((vj, _) :: _ as rest) -> (
              let before_next =
                List.fold_left
                  (fun acc (v, ds) ->
                    if v.View.id < vj.View.id then
                      List.fold_left
                        (fun acc (d : Checker.meta) -> Msg_id.Set.add d.id acc)
                        acc ds
                    else acc)
                  Msg_id.Set.empty qsegs
              in
              let found =
                List.find_map
                  (fun (m : Checker.meta) ->
                    let witnessed =
                      List.exists
                        (fun p -> p <> q && delivered_pair p vi.View.id vj.View.id m)
                        procs
                    in
                    if
                      witnessed
                      && not
                           (covered_excluding ~successors ~except:m.id m.id before_next)
                    then Some (q, m.id)
                    else None)
                  ds
              in
              match found with Some _ as r -> r | None -> pairs rest)
          | [ _ ] | [] -> None
        in
        pairs qsegs)
      segs
  in
  candidate

(* A candidate for the recovery mutation: a process whose log has an
   incarnation boundary (view-id gap between consecutive installs) and
   at least one delivery before it. Returns the last such pre-crash
   delivery plus the readmitting view's id. *)
let find_restart_dup check =
  List.find_map
    (fun q ->
      let segs = segments (Checker.process_log check ~p:q) in
      let rec scan last_delivered = function
        | (vi, ds) :: (((vj, _) :: _) as rest) -> (
            let last_delivered =
              match List.rev ds with d :: _ -> Some d | [] -> last_delivered
            in
            match last_delivered with
            | Some (m : Checker.meta) when vj.View.id > vi.View.id + 1 ->
                Some (q, m, vj.View.id)
            | _ -> scan last_delivered rest)
        | [ _ ] | [] -> None
      in
      scan None segs)
    (Checker.processes check)

(* Replay the recorded run with [m] re-delivered by [q] right after it
   installs the view [after_view] — an amnesiac restart re-delivering
   a message its lost log had already delivered. *)
let replay_with_duplicate check ~q ~(m : Checker.meta) ~after_view =
  let mutated = Checker.create () in
  List.iter (Checker.record_multicast mutated) (Checker.multicast_log check);
  List.iter
    (fun p ->
      List.iter
        (function
          | Checker.Installed v ->
              Checker.record_install mutated ~p v;
              if p = q && v.View.id = after_view then Checker.record_delivery mutated ~p m
          | Checker.Delivered d -> Checker.record_delivery mutated ~p d)
        (Checker.process_log check ~p))
    (Checker.processes check);
  mutated

(* Replay the recorded run into a fresh checker, skipping [q]'s first
   delivery of [id]. *)
let replay_without check ~q ~id =
  let mutated = Checker.create () in
  List.iter (Checker.record_multicast mutated) (Checker.multicast_log check);
  List.iter
    (fun p ->
      let skipped = ref false in
      List.iter
        (function
          | Checker.Installed v -> Checker.record_install mutated ~p v
          | Checker.Delivered (m : Checker.meta) ->
              if p = q && (not !skipped) && Msg_id.equal m.id id then skipped := true
              else Checker.record_delivery mutated ~p m)
        (Checker.process_log check ~p))
    (Checker.processes check);
  mutated

(* Forge a secondary primary component: replay the run with one
   process recording the install of a view (id one past the global
   maximum, membership just itself) that no member of the real primary
   chain ever installed — exactly the log a minority that elected
   itself would leave behind. Prefer a process that missed the final
   view (the minority side of an unhealed split); when every process
   installed it, cut a log at a crash–rejoin incarnation boundary
   first so the forged view has no co-installer. *)
let find_split_brain_target check =
  let procs = Checker.processes check in
  let max_id =
    List.fold_left
      (fun acc p ->
        List.fold_left
          (fun acc -> function
            | Checker.Installed v -> max acc v.View.id
            | Checker.Delivered _ -> acc)
          acc (Checker.process_log check ~p))
      (-1) procs
  in
  match
    List.find_opt
      (fun p ->
        not
          (List.exists
             (function
               | Checker.Installed v -> v.View.id = max_id
               | Checker.Delivered _ -> false)
             (Checker.process_log check ~p)))
      procs
  with
  | Some p -> Some (p, max_id, `Append)
  | None -> (
      match
        List.find_map
          (fun p ->
            let rec scan idx last = function
              | Checker.Installed v :: rest -> (
                  match last with
                  | Some last_id when v.View.id > last_id + 1 ->
                      Some (p, max_id, `Truncate idx)
                  | Some _ | None -> scan (idx + 1) (Some v.View.id) rest)
              | Checker.Delivered _ :: rest -> scan (idx + 1) last rest
              | [] -> None
            in
            scan 0 None (Checker.process_log check ~p))
          procs
      with
      | Some t -> Some t
      | None -> (
          (* Every process installed the final view and no log has a
             crash boundary: erase one victim's record of the final
             view (everyone else still anchors it in the chain) and
             let it claim its own singleton successor instead. *)
          match procs with
          | p :: _ :: _ ->
              let rec find_idx idx = function
                | Checker.Installed v :: _ when v.View.id = max_id ->
                    Some (p, max_id, `Truncate idx)
                | _ :: rest -> find_idx (idx + 1) rest
                | [] -> None
              in
              find_idx 0 (Checker.process_log check ~p)
          | _ -> None))

let replay_with_split_brain check ~target ~max_id ~cut =
  let mutated = Checker.create () in
  List.iter (Checker.record_multicast mutated) (Checker.multicast_log check);
  List.iter
    (fun p ->
      let log = Checker.process_log check ~p in
      let log =
        match cut with
        | `Truncate idx when p = target -> List.filteri (fun i _ -> i < idx) log
        | _ -> log
      in
      List.iter
        (function
          | Checker.Installed v -> Checker.record_install mutated ~p v
          | Checker.Delivered m -> Checker.record_delivery mutated ~p m)
        log;
      if p = target then
        Checker.record_install mutated ~p (View.make ~id:(max_id + 1) ~members:[ p ]))
    (Checker.processes check);
  mutated

let counts check =
  List.fold_left
    (fun (d, i) p ->
      List.fold_left
        (fun (d, i) -> function
          | Checker.Delivered _ -> (d + 1, i)
          | Checker.Installed _ -> (d, i + 1))
        (d, i)
        (Checker.process_log check ~p))
    (0, 0) (Checker.processes check)

let check ?mutation ?expect_converged ~mode ~seed ~scenario check_t =
  let check_t, mutated =
    match mutation with
    | None -> (check_t, None)
    | Some Drop_cover -> (
        match find_droppable check_t with
        | Some (q, id) -> (replay_without check_t ~q ~id, Some (q, id))
        | None ->
            failwith
              "Oracle.check: run too short to self-test (no safety-relevant delivery to \
               drop)")
    | Some Duplicate_after_restart -> (
        match find_restart_dup check_t with
        | Some (q, m, after_view) ->
            (replay_with_duplicate check_t ~q ~m ~after_view, Some (q, m.Checker.id))
        | None ->
            failwith
              "Oracle.check: no crash-rejoin incarnation boundary to duplicate across")
    | Some Split_brain -> (
        match find_split_brain_target check_t with
        | Some (target, max_id, cut) ->
            ( replay_with_split_brain check_t ~target ~max_id ~cut,
              Some (target, Msg_id.make ~sender:target ~sn:(max_id + 1)) )
        | None -> failwith "Oracle.check: no process log to forge a minority view into")
  in
  let violations =
    match mode with
    | Vs -> Checker.verify_strict_vs check_t
    | Svs -> Checker.verify check_t
  in
  let violations =
    match expect_converged with
    | None -> violations
    | Some survivors -> violations @ Checker.check_converged check_t ~survivors
  in
  let deliveries, installs = counts check_t in
  { mode; seed; scenario; violations; deliveries; installs; mutated }

let pp_report ppf r =
  if ok r then
    Format.fprintf ppf "ok: seed=%d scenario=%s mode=%s (%d deliveries, %d installs)" r.seed
      r.scenario (mode_label r.mode) r.deliveries r.installs
  else begin
    Format.fprintf ppf
      "@[<v>CHAOS SAFETY VIOLATION seed=%d scenario=%s mode=%s (%d violation%s)%s@,\
       replay: svs_chaos --scenarios %s --modes %s --seeds 1 --seed-base %d" r.seed
      r.scenario (mode_label r.mode)
      (List.length r.violations)
      (if List.length r.violations = 1 then "" else "s")
      (match r.mutated with
      | Some (q, id) -> Format.asprintf " [mutated: %a at process %d]" Msg_id.pp id q
      | None -> "")
      r.scenario (mode_label r.mode) r.seed;
    List.iter
      (fun v ->
        match view_pair v with
        | Some (vi, vj) when vi <> vj ->
            Format.fprintf ppf "@,  view pair (%d -> %d): %a" vi vj Checker.pp_violation v
        | Some (vi, _) -> Format.fprintf ppf "@,  view %d: %a" vi Checker.pp_violation v
        | None -> Format.fprintf ppf "@,  %a" Checker.pp_violation v)
      r.violations;
    Format.fprintf ppf "@]"
  end
