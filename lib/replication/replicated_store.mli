(** Primary-backup replication of an item store over SVS (§4).

    Each group member materialises the same collection of data items.
    The {e primary} (lowest id in the current view) executes client
    requests — atomic batches of item writes and removals — and
    multicasts them with k-enumeration obsolescence annotations built
    by {!Svs_obs.Batch_encoder}; backups apply delivered batches.

    Guarantees (inherited from SVS):
    - Batches are applied atomically at commit delivery (§4.1).
    - A slow backup may skip obsolete intermediate writes, but any two
      replicas installing the same next view have identical stores at
      that point — which is exactly what makes fail-over safe: any
      survivor can take over as primary.
    - Removals and any update marked reliable are never skipped. *)

type 'v op =
  | Set of int * 'v
  | Remove of int

type 'v payload
(** What actually travels in group messages: one op plus its position
    in the batch framing. *)

type 'v t

val attach :
  ?k:int ->
  ?snapshot:
    (Svs_codec.Codec.Writer.t -> 'v -> unit) * (Svs_codec.Codec.Reader.t -> 'v) ->
  'v payload Svs_core.Group.t ->
  'v t
(** Wrap a group member into a replica. [k] (default 64) is the
    k-enumeration window; the paper recommends twice the buffer size.

    [snapshot] — a value writer/reader pair — enables state transfer:
    when this replica sponsors a joiner (a new member, or a crashed one
    readmitted after {!Svs_core.Group.restart}), the serialised item
    store rides the SYNC message, and when this replica {e is} the
    joiner, its store is replaced by the sponsor's snapshot on re-entry
    before any new-view batches apply. Without it a rejoining replica
    starts from an empty store and only sees post-rejoin writes. *)

val submit : 'v t -> 'v op list -> (unit, [ `Not_primary | `Blocked | `Empty ]) result
(** Execute a client request (an atomic batch). Only the primary
    accepts requests; during a view change the group is blocked and
    the client must retry. *)

val process : 'v t -> unit
(** Drain and apply everything currently deliverable. Call from the
    replica's consumption loop. *)

val process_one : 'v t -> bool
(** Apply at most one delivery; [false] when nothing was pending. *)

val role : 'v t -> [ `Primary | `Backup ]

val is_member : 'v t -> bool

val view : 'v t -> Svs_core.View.t

val get : 'v t -> int -> 'v option

val items : 'v t -> (int * 'v) list
(** Sorted by item id. *)

val applied_batches : 'v t -> int

val store_equal : 'v t -> 'v t -> bool

val digest : 'v t -> int
(** A cheap structural hash of {!items} — what a replica should feed
    into {!Svs_core.Group.set_state_digest} for divergence gossip. *)

val corrupt : 'v t -> item:int -> 'v -> unit
(** Fault injection for chaos tests: overwrite one item directly in
    the local replica, bypassing the protocol — the model of bit rot,
    a buggy apply path, or a partial restore. Only divergence
    detection can notice. *)

val member : 'v t -> 'v payload Svs_core.Group.t
(** The underlying group member (for crash/instrumentation). *)
