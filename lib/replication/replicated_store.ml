module Group = Svs_core.Group
module Types = Svs_core.Types
module View = Svs_core.View
module Batch_encoder = Svs_obs.Batch_encoder
module Codec = Svs_codec.Codec

type 'v op =
  | Set of int * 'v
  | Remove of int

type 'v payload = { op : 'v op; commit : bool }

type 'v t = {
  member : 'v payload Group.t;
  encoder : Batch_encoder.t;
  store : (int, 'v) Hashtbl.t;
  mutable pending : 'v op list; (* current batch, reversed *)
  mutable next_pseudo : int; (* ids for reliable (never-purged) slots *)
  mutable applied : int;
}

let attach ?(k = 64) ?snapshot member =
  let t =
    {
      member;
      encoder = Batch_encoder.create ~k ();
      store = Hashtbl.create 64;
      pending = [];
      next_pseudo = -1;
      applied = 0;
    }
  in
  (* State transfer: when this replica sponsors a joiner, ship the
     whole item store; when this replica is the joiner, replace the
     store with the sponsor's snapshot — the joiner then converges by
     applying post-sync batches like any backup. *)
  (match snapshot with
  | None -> ()
  | Some (write_v, read_v) ->
      Group.set_state_transfer member (fun () ->
          let w = Codec.Writer.create () in
          Codec.Writer.list w
            (fun w (item, v) ->
              Codec.Writer.varint w item;
              write_v w v)
            (List.sort (fun (a, _) (b, _) -> compare a b)
               (Hashtbl.fold (fun id v acc -> (id, v) :: acc) t.store []));
          Some (Codec.Writer.contents w));
      Group.on_synced member (fun _view app ->
          match app with
          | None -> ()
          | Some s ->
              let r = Codec.Reader.of_string s in
              let items =
                Codec.Reader.list r (fun r ->
                    let item = Codec.Reader.varint r in
                    let v = read_v r in
                    (item, v))
              in
              Hashtbl.reset t.store;
              List.iter (fun (item, v) -> Hashtbl.replace t.store item v) items;
              t.pending <- []));
  t

let member t = t.member

let view t = Group.view t.member

let is_member t = Group.is_member t.member

let role t =
  let v = view t in
  match v.View.members with
  | p :: _ when p = Group.id t.member -> `Primary
  | _ :: _ | [] -> `Backup

let get t item = Hashtbl.find_opt t.store item

let items t =
  List.sort (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun id v acc -> (id, v) :: acc) t.store [])

let applied_batches t = t.applied

let store_equal a b = items a = items b

let digest t = Hashtbl.hash (items t)

(* Fault injection for chaos tests: scribble directly over the local
   replica, bypassing the protocol — the model of bit rot, a buggy
   apply path, or a partial restore. The group-visible state is
   untouched; only divergence detection can notice. *)
let corrupt t ~item v = Hashtbl.replace t.store item v

let apply_op t = function
  | Set (item, v) -> Hashtbl.replace t.store item v
  | Remove item -> Hashtbl.remove t.store item

(* Replica-side delivery: buffer ops until the batch's commit, then
   apply atomically; an uncommitted tail at a view boundary is dropped
   (its commit was not in the agreed set for anyone, so all replicas
   drop the same tail). *)
let handle_delivery t = function
  | Types.Data d ->
      let { op; commit } = d.Types.payload in
      t.pending <- op :: t.pending;
      if commit then begin
        List.iter (apply_op t) (List.rev t.pending);
        t.pending <- [];
        t.applied <- t.applied + 1
      end
  | Types.View_change _ -> t.pending <- []

let process_one t =
  match Group.deliver t.member with
  | None -> false
  | Some d ->
      handle_delivery t d;
      true

let rec process t = if process_one t then process t

let submit t ops =
  if ops = [] then Error `Empty
  else if role t <> `Primary || not (is_member t) then Error `Not_primary
  else if Group.is_blocked t.member then Error `Blocked
  else begin
    (* Build the batch: writable items are purgeable; removals ride
       never-reused pseudo-items so they stay reliable. *)
    let slot_of_op op =
      match op with
      | Set (item, _) -> (item, op)
      | Remove _ ->
          let p = t.next_pseudo in
          t.next_pseudo <- t.next_pseudo - 1;
          (p, op)
    in
    (* Deduplicate Set items (last write wins inside a batch). *)
    let dedup =
      List.fold_left
        (fun acc op ->
          match op with
          | Set (item, _) -> List.filter (function Set (i, _) -> i <> item | Remove _ -> true) acc @ [ op ]
          | Remove _ -> acc @ [ op ])
        [] ops
    in
    let slots = List.map slot_of_op dedup in
    let emitted = Batch_encoder.encode t.encoder ~items:(List.map fst slots) in
    (* Pair each emitted message with its op (encoder preserves the
       item order we passed; a separate-commit message cannot occur
       because we use piggybacked commits). *)
    let results =
      List.map
        (fun e ->
          match e.Batch_encoder.item with
          | None -> assert false
          | Some slot ->
              let op = List.assoc slot slots in
              (e, { op; commit = e.Batch_encoder.commit }))
        emitted
    in
    (* The simulation is single-threaded, so no view change can begin
       between the blocked check above and the last send: the whole
       batch goes out in one view. The assertion pins the invariant
       that the encoder's sequence numbers stay in lockstep with the
       protocol's per-sender numbering (annotations reference
       distances in that shared space). *)
    List.iter
      (fun (e, payload) ->
        match Group.multicast t.member ~ann:(Batch_encoder.annotation e) payload with
        | Ok d -> assert (d.Types.id.Svs_obs.Msg_id.sn = e.Batch_encoder.sn)
        | Error (`Blocked | `Not_member) ->
            invalid_arg "Replicated_store.submit: view change during a batch")
      results;
    Ok ()
  end
