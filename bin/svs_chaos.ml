(* Chaos sweep driver: N seeds x M fault scenarios through the full
   simulated stack, every run machine-checked by the SVS safety oracle.
   Exits non-zero if any run violates the paper's §4 contracts. *)

open Cmdliner
module C = Svs_chaos
module Trace = Svs_telemetry.Trace

let ppf = Format.std_formatter

let scenario_conv =
  let parse s =
    match C.Scenario.find s with
    | Some sc -> Ok sc
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown scenario %S (%s)" s
               (String.concat "|" (List.map (fun sc -> sc.C.Scenario.name) C.Scenario.all))))
  in
  Arg.conv (parse, fun ppf sc -> Format.pp_print_string ppf sc.C.Scenario.name)

let mode_conv =
  let parse s =
    match C.Oracle.mode_of_label s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown mode %S (vs|svs)" s))
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (C.Oracle.mode_label m))

let default_scenarios =
  List.filter (fun sc -> sc.C.Scenario.name <> "calm") C.Scenario.all

let scenarios_term =
  Arg.(
    value
    & opt (list scenario_conv) default_scenarios
    & info [ "scenarios" ] ~docv:"NAMES"
        ~doc:
          "Comma-separated scenarios to sweep (default: every built-in except \
           $(b,calm)).")

let modes_term =
  Arg.(
    value
    & opt (list mode_conv) [ C.Oracle.Vs; C.Oracle.Svs ]
    & info [ "modes" ] ~docv:"MODES"
        ~doc:
          "Comma-separated oracle modes: $(b,vs) (empty relation, strict view synchrony) \
           and/or $(b,svs) (k-enumeration annotations).")

let seeds_term =
  Arg.(
    value & opt int 20
    & info [ "seeds" ] ~docv:"N" ~doc:"Seeds per scenario and mode.")

let seed_base_term =
  Arg.(
    value & opt int 1
    & info [ "seed-base" ] ~docv:"SEED" ~doc:"First seed of the sweep.")

let nodes_term =
  Arg.(value & opt int C.Runner.default_config.nodes & info [ "nodes" ] ~docv:"N" ~doc:"Group size.")

let horizon_term =
  Arg.(
    value
    & opt float C.Runner.default_config.horizon
    & info [ "horizon" ] ~docv:"SECONDS" ~doc:"Fault and workload window (virtual time).")

let settle_term =
  Arg.(
    value
    & opt float C.Runner.default_config.settle
    & info [ "settle" ] ~docv:"SECONDS" ~doc:"Drain period after the horizon.")

let trace_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a JSONL telemetry trace of every run (faults interleaved) to $(docv).")

let flight_term =
  Arg.(
    value
    & opt string "chaos-flight"
    & info [ "flight" ] ~docv:"DIR"
        ~doc:
          "Directory for flight-recorder dumps. Each failing run writes its last \
           protocol events (virtual-time JSONL) to \
           $(docv)/flight-<scenario>-<mode>-<seed>.jsonl next to the replay line, so a \
           red sweep ships a postmortem, not just a seed.")

let mutate_term =
  Arg.(
    value & flag
    & info [ "mutate" ]
        ~doc:
          "Self-test: drop one safety-relevant delivery from each recorded run before \
           checking. Every run must then FAIL; the sweep exits zero only if the oracle \
           catches all mutants.")

let mutate_split_brain_term =
  Arg.(
    value & flag
    & info [ "mutate-split-brain" ]
        ~doc:
          "Self-test: forge a divergent minority view onto each recorded run before \
           checking — a process that missed the final view (or whose log is truncated at \
           a crash boundary) pretends it installed its own singleton view. Every run must \
           then FAIL; the sweep exits zero only if the oracle's primary-chain check \
           catches all mutants.")

let no_merge_term =
  Arg.(
    value & flag
    & info [ "no-merge" ]
        ~doc:
          "Leave parked members parked forever instead of probing back in. Scenarios that \
           expect re-convergence (e.g. $(b,split-heal-merge)) must then FAIL with a \
           convergence violation, and all other runs must stay clean: the inverted \
           self-check proving the merge path is what re-forms the group after a heal.")

let no_recovery_term =
  Arg.(
    value & flag
    & info [ "no-recovery" ]
        ~doc:
          "Restart crashed members amnesiac (without their durable state). Rejoin \
           scenarios must then FAIL: the sweep exits zero only if the oracle flags every \
           run that actually restarted someone — the inverted self-check proving the \
           recovery path is what keeps Integrity true.")

let no_shed_term =
  Arg.(
    value & flag
    & info [ "no-shed" ]
        ~doc:
          "Disable semantic shedding everywhere. Scenarios with a backlog budget (e.g. \
           $(b,overload)) must then EXCEED it — the wedged consumer's queue grows without \
           the obsolete tail being purged — while every run still satisfies the safety \
           oracle: the inverted self-check proving the budget verdict measures shedding, \
           not a gentle workload.")

let hostile_term =
  Arg.(
    value & flag
    & info [ "hostile" ]
        ~doc:
          "Run the hostile-input suite instead of the sweep: a garbage-spewing peer over \
           real TCP ($(b,frame-corruption)), a bit-flipped write-ahead log \
           ($(b,wal-corruption)) and a scribbled-over replica in the simulator \
           ($(b,state-divergence)). Exits zero only if every defense (quarantine, \
           salvage, divergence self-healing) contained the damage.")

let no_quarantine_term =
  Arg.(
    value & flag
    & info [ "no-quarantine" ]
        ~doc:
          "Hostile self-test: raise the quarantine threshold out of reach. \
           $(b,frame-corruption) must then FAIL (the attacker is never quarantined) while \
           the other hostile scenarios stay clean. Implies $(b,--hostile).")

let no_salvage_term =
  Arg.(
    value & flag
    & info [ "no-salvage" ]
        ~doc:
          "Hostile self-test: recover the WAL with the legacy truncate-at-first-bad-frame \
           scan. $(b,wal-corruption) must then FAIL (records beyond the damage are lost) \
           while the other hostile scenarios stay clean. Implies $(b,--hostile).")

let no_heal_term =
  Arg.(
    value & flag
    & info [ "no-heal" ]
        ~doc:
          "Hostile self-test: detect state divergence but never self-demote. \
           $(b,state-divergence) must then FAIL (the replicas stay split) while the other \
           hostile scenarios stay clean. Implies $(b,--hostile).")

let json_term =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit a machine-readable JSON summary (one object: totals plus one entry per \
           run) instead of the human table.")

let verbose_term =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every run, not just the table.")

let plan_term =
  Arg.(
    value
    & opt (some scenario_conv) None
    & info [ "plan" ] ~docv:"NAME"
        ~doc:"Just print the concrete fault plan a scenario draws for $(b,--seed-base).")

let print_plan scenario ~seed ~nodes ~horizon =
  let rng = Svs_sim.Rng.split (Svs_sim.Rng.create ~seed) in
  let plan = scenario.C.Scenario.plan ~rng ~n:nodes ~horizon in
  Format.fprintf ppf "@[<v>%s (seed %d, %d nodes, horizon %gs):@," scenario.C.Scenario.name
    seed nodes horizon;
  if plan = [] then Format.fprintf ppf "  (no faults)@,"
  else List.iter (fun t -> Format.fprintf ppf "  %a@," C.Scenario.pp_timed t) plan;
  Format.fprintf ppf "@]"

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let print_json ~mutate ~recover ~exit_code outcomes =
  let run_json (o : C.Runner.outcome) =
    let r = o.C.Runner.report in
    Printf.sprintf
      "{\"scenario\":\"%s\",\"mode\":\"%s\",\"seed\":%d,\"ok\":%b,\"violations\":%d,\
       \"deliveries\":%d,\"installs\":%d,\"faults\":%d,\"restarts\":%d,\"parked\":%d,\
       \"sent\":%d,\"purged\":%d,\"shed\":%d,\"peak_backlog\":%d,\"over_budget\":%s}"
      (json_escape r.C.Oracle.scenario)
      (C.Oracle.mode_label r.C.Oracle.mode)
      r.C.Oracle.seed (C.Oracle.ok r)
      (List.length r.C.Oracle.violations)
      r.C.Oracle.deliveries r.C.Oracle.installs o.C.Runner.faults o.C.Runner.restarts
      o.C.Runner.parked o.C.Runner.sent o.C.Runner.purged o.C.Runner.shed
      o.C.Runner.peak_backlog
      (match o.C.Runner.over_budget with
      | None -> "null"
      | Some b -> string_of_bool b)
  in
  let failed = List.length (C.Runner.failures outcomes) in
  Printf.printf
    "{\"runs\":%d,\"failed\":%d,\"mutate\":%b,\"recover\":%b,\"ok\":%b,\"results\":[%s]}\n"
    (List.length outcomes) failed mutate recover (exit_code = 0)
    (String.concat "," (List.map run_json outcomes))

(* Write each failing run's flight-recorder ring as one JSONL file; the
   name replays the run: scenario, mode, seed. *)
let dump_flights ~dir outcomes =
  let failing =
    List.filter (fun (o : C.Runner.outcome) -> o.C.Runner.flight <> []) outcomes
  in
  if failing <> [] then begin
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    List.iter
      (fun (o : C.Runner.outcome) ->
        let r = o.C.Runner.report in
        let file =
          Filename.concat dir
            (Printf.sprintf "flight-%s-%s-%d.jsonl" r.C.Oracle.scenario
               (C.Oracle.mode_label r.C.Oracle.mode)
               r.C.Oracle.seed)
        in
        let oc = open_out file in
        List.iter
          (fun rec_ ->
            output_string oc (Trace.record_to_json rec_);
            output_char oc '\n')
          o.C.Runner.flight;
        close_out oc;
        Format.fprintf ppf "flight recorder: %d event(s) -> %s@."
          (List.length o.C.Runner.flight) file)
      failing
  end

(* The hostile suite with inverted acceptance: with every defense on,
   all three scenarios must be contained; with a defense disabled via
   its --no-* flag, that scenario (and only that one) must come back
   flagged — proving the harness checks actually bite. *)
let run_hostile ~no_quarantine ~no_salvage ~no_heal =
  let invert = function
    | "frame-corruption" -> no_quarantine
    | "wal-corruption" -> no_salvage
    | "state-divergence" -> no_heal
    | _ -> false
  in
  let reports =
    List.map
      (fun name ->
        let r = C.Hostile.run ~name ~invert:(invert name) in
        Format.fprintf ppf "%a@." C.Hostile.pp_report r;
        (name, invert name, r))
      C.Hostile.names
  in
  let wrong =
    List.filter
      (fun (_, inverted, r) -> if inverted then C.Hostile.ok r else not (C.Hostile.ok r))
      reports
  in
  let self_test = List.exists (fun (_, inverted, _) -> inverted) reports in
  if wrong = [] then begin
    if self_test then
      Format.fprintf ppf
        "hostile self-test passed: disabled defense(s) flagged, the rest contained@."
    else
      Format.fprintf ppf "all %d hostile scenarios contained@." (List.length reports);
    0
  end
  else begin
    List.iter
      (fun (name, inverted, _) ->
        if inverted then
          Format.fprintf ppf
            "HOSTILE SELF-TEST FAILED: %s passed with its defense disabled@." name
        else Format.fprintf ppf "hostile scenario %s was NOT contained@." name)
      wrong;
    1
  end

let run scenarios modes seeds seed_base nodes horizon settle trace flight_dir mutate
    mutate_split_brain no_merge no_recovery no_shed hostile no_quarantine no_salvage
    no_heal json verbose plan =
  match plan with
  | Some scenario ->
      print_plan scenario ~seed:seed_base ~nodes ~horizon;
      0
  | None when hostile || no_quarantine || no_salvage || no_heal ->
      run_hostile ~no_quarantine ~no_salvage ~no_heal
  | None ->
      let config =
        {
          C.Runner.default_config with
          nodes;
          horizon;
          settle;
          recover = not no_recovery;
          merge = not no_merge;
          shed = not no_shed;
        }
      in
      let seed_list = List.init seeds (fun i -> seed_base + i) in
      let mutation =
        if mutate then Some C.Oracle.Drop_cover
        else if mutate_split_brain then Some C.Oracle.Split_brain
        else None
      in
      let oc = Option.map open_out trace in
      let tracer =
        match oc with
        | None -> Trace.nop
        | Some oc -> Trace.jsonl oc
      in
      let outcomes =
        List.concat_map
          (fun scenario ->
            List.concat_map
              (fun mode ->
                List.map
                  (fun seed ->
                    let o =
                      try C.Runner.run_one ?mutation ~tracer ~config ~mode ~scenario ~seed ()
                      with Failure msg ->
                        Format.fprintf ppf "seed=%d scenario=%s mode=%s: %s@." seed
                          scenario.C.Scenario.name (C.Oracle.mode_label mode) msg;
                        exit 2
                    in
                    if verbose && not json then
                      Format.fprintf ppf
                        "%a  (faults=%d restarts=%d sent=%d purged=%d shed=%d \
                         peak_backlog=%d)@."
                        C.Oracle.pp_report o.C.Runner.report o.C.Runner.faults
                        o.C.Runner.restarts o.C.Runner.sent o.C.Runner.purged
                        o.C.Runner.shed o.C.Runner.peak_backlog;
                    o)
                  seed_list)
              modes)
          scenarios
      in
      Option.iter close_out oc;
      dump_flights ~dir:flight_dir outcomes;
      let failed = C.Runner.failures outcomes in
      let say fmt =
        Format.(if json then ifprintf ppf fmt else fprintf ppf fmt)
      in
      say "%a@." (fun ppf () -> C.Runner.pp_table ppf outcomes) ();
      let exit_code =
        if mutation <> None then begin
          (* Inverted acceptance: every mutated run must be caught. *)
          let missed = List.length outcomes - List.length failed in
          if missed = 0 then begin
            say "mutation self-test passed: oracle caught all %d mutated runs@."
              (List.length outcomes);
            0
          end
          else begin
            say "MUTATION SELF-TEST FAILED: %d mutated run(s) slipped past the oracle@."
              missed;
            1
          end
        end
        else if no_merge then begin
          (* Inverted acceptance: every scenario that expects
             re-convergence must fail once parked members never merge,
             and merge-free runs must still be clean. *)
          let reconverge o =
            match C.Scenario.find o.C.Runner.report.C.Oracle.scenario with
            | Some sc -> sc.C.Scenario.expect_reconverge
            | None -> false
          in
          let eligible = List.filter reconverge outcomes in
          let uncaught = List.filter (fun o -> C.Oracle.ok o.C.Runner.report) eligible in
          let broken_clean = List.filter (fun o -> not (reconverge o)) failed in
          if eligible = [] then begin
            say "NO-MERGE SELF-TEST FAILED: no run expected re-convergence@.";
            1
          end
          else if uncaught = [] && broken_clean = [] then begin
            say
              "no-merge self-test passed: oracle flagged all %d merge-less heals@."
              (List.length eligible);
            0
          end
          else begin
            say
              "NO-MERGE SELF-TEST FAILED: %d merge-less heal(s) slipped past the oracle, \
               %d merge-free run(s) failed@."
              (List.length uncaught) (List.length broken_clean);
            1
          end
        end
        else if no_recovery then begin
          (* Inverted acceptance: every run that really restarted a
             member amnesiac must be flagged, and runs without a
             restart must still be clean. *)
          let restarted = List.filter (fun o -> o.C.Runner.restarts > 0) outcomes in
          let uncaught = List.filter (fun o -> C.Oracle.ok o.C.Runner.report) restarted in
          let broken_clean =
            List.filter (fun o -> o.C.Runner.restarts = 0) failed
          in
          if restarted = [] then begin
            say "NO-RECOVERY SELF-TEST FAILED: no run actually restarted a member@.";
            1
          end
          else if uncaught = [] && broken_clean = [] then begin
            say
              "no-recovery self-test passed: oracle flagged all %d amnesiac restarts@."
              (List.length restarted);
            0
          end
          else begin
            say
              "NO-RECOVERY SELF-TEST FAILED: %d amnesiac restart(s) slipped past the \
               oracle, %d restart-free run(s) failed@."
              (List.length uncaught) (List.length broken_clean);
            1
          end
        end
        else if no_shed then begin
          (* Inverted acceptance: with shedding disabled, every
             budgeted run must blow its backlog budget (proving the
             budget verdict measures shedding) while the safety oracle
             still passes everywhere — shedding off is just plain
             VS/SVS. *)
          let budgeted =
            List.filter (fun o -> o.C.Runner.over_budget <> None) outcomes
          in
          let under =
            List.filter (fun o -> o.C.Runner.over_budget = Some false) budgeted
          in
          if budgeted = [] then begin
            say "NO-SHED SELF-TEST FAILED: no run carried a backlog budget@.";
            1
          end
          else if under = [] && failed = [] then begin
            say
              "no-shed self-test passed: all %d budgeted runs exceeded their backlog \
               budget, safety intact@."
              (List.length budgeted);
            0
          end
          else begin
            say
              "NO-SHED SELF-TEST FAILED: %d budgeted run(s) stayed under budget without \
               shedding, %d run(s) violated safety@."
              (List.length under) (List.length failed);
            say "%a" (fun ppf () -> C.Runner.pp_failures ppf outcomes) ();
            1
          end
        end
        else begin
          (* Budget verdicts count: a run whose backlog blew its
             scenario budget fails the sweep even if safety held. *)
          let blown =
            List.filter (fun o -> o.C.Runner.over_budget = Some true) outcomes
          in
          if failed = [] && blown = [] then begin
            say "all %d runs satisfied the SVS safety contracts@." (List.length outcomes);
            0
          end
          else begin
            List.iter
              (fun (o : C.Runner.outcome) ->
                let r = o.C.Runner.report in
                say
                  "OVER BUDGET: scenario=%s mode=%s seed=%d peak_backlog=%d shed=%d@."
                  r.C.Oracle.scenario
                  (C.Oracle.mode_label r.C.Oracle.mode)
                  r.C.Oracle.seed o.C.Runner.peak_backlog o.C.Runner.shed)
              blown;
            say "%a" (fun ppf () -> C.Runner.pp_failures ppf outcomes) ();
            1
          end
        end
      in
      if json then
        print_json ~mutate:(mutation <> None) ~recover:(not no_recovery) ~exit_code outcomes;
      exit_code

let main =
  let doc = "Deterministic chaos sweeps checked by the SVS safety oracle" in
  let info = Cmd.info "svs_chaos" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      const run $ scenarios_term $ modes_term $ seeds_term $ seed_base_term $ nodes_term
      $ horizon_term $ settle_term $ trace_term $ flight_term $ mutate_term
      $ mutate_split_brain_term $ no_merge_term $ no_recovery_term $ no_shed_term
      $ hostile_term $ no_quarantine_term $ no_salvage_term $ no_heal_term $ json_term
      $ verbose_term $ plan_term)

let () = exit (Cmd.eval' main)
