(* Run a live SVS group member over TCP.

   Start one process per member, e.g. in three terminals:

     svs_node --me 0 --peer 0:127.0.0.1:7100 --peer 1:127.0.0.1:7101 \
              --peer 2:127.0.0.1:7102 --publish 4 --rate 50
     svs_node --me 1 --peer 0:127.0.0.1:7100 --peer 1:127.0.0.1:7101 \
              --peer 2:127.0.0.1:7102
     svs_node --me 2 --peer 0:127.0.0.1:7100 --peer 1:127.0.0.1:7101 \
              --peer 2:127.0.0.1:7102 --consume-rate 10

   The publisher multicasts tagged item updates; every member prints
   what it delivers and each view change. Kill a member and watch the
   survivors agree on the next view; slow a member down (low
   --consume-rate) and watch obsolete updates being purged instead of
   stalling the group. *)

open Cmdliner
module Loop = Svs_rt.Loop
module Node = Svs_rt.Node
module Tcp_mesh = Svs_rt.Tcp_mesh
module Admin = Svs_rt.Admin
module Types = Svs_core.Types
module View = Svs_core.View
module Wire_codec = Svs_core.Wire_codec
module Annotation = Svs_obs.Annotation
module Metrics = Svs_telemetry.Metrics
module Trace = Svs_telemetry.Trace

let payload_codec = Wire_codec.pair_codec Wire_codec.int_codec Wire_codec.int_codec

let parse_peer s =
  match String.split_on_char ':' s with
  | [ id; host; port ] -> (
      match (int_of_string_opt id, int_of_string_opt port) with
      | Some id, Some port -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } -> Error (`Msg ("no address for " ^ host))
          | { Unix.h_addr_list; _ } -> Ok (id, Unix.ADDR_INET (h_addr_list.(0), port))
          | exception Not_found -> Error (`Msg ("unknown host " ^ host)))
      | _ -> Error (`Msg ("bad peer spec: " ^ s)))
  | _ -> Error (`Msg ("peer spec must be id:host:port, got " ^ s))

let peer_conv =
  Arg.conv
    ( parse_peer,
      fun ppf (id, addr) ->
        match addr with
        | Unix.ADDR_INET (a, p) ->
            Format.fprintf ppf "%d:%s:%d" id (Unix.string_of_inet_addr a) p
        | Unix.ADDR_UNIX path -> Format.fprintf ppf "%d:unix:%s" id path )

let run me peers publish rate consume_rate duration reliable park_timeout flush_interval
    data_dir divergence_period trace_file admin_port flight_file stats_period verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  if peers = [] then `Error (false, "at least one --peer required")
  else if not (List.mem_assoc me peers) then
    `Error (false, Printf.sprintf "--me %d has no --peer entry" me)
  else
    match Option.map open_out trace_file with
    | exception Sys_error e -> `Error (false, "cannot open trace file: " ^ e)
    | trace_oc ->
    let loop = Loop.create () in
    let listen_addr = List.assoc me peers in
    let listen_fd, _ = Tcp_mesh.listener listen_addr in
    let metrics = Metrics.create () in
    (* Flight recorder: a bounded ring of the last protocol events,
       always on. Dumped as JSONL on park, crash, or GET /dump — the
       postmortem for "what was this node doing just before". *)
    let flight = Trace.ring ~capacity:4096 () in
    let tracer =
      match trace_oc with None -> flight | Some oc -> Trace.tee (Trace.jsonl oc) flight
    in
    let flight_path =
      match flight_file with Some f -> f | None -> Printf.sprintf "svs-flight-%d.jsonl" me
    in
    let flight_jsonl () =
      let b = Buffer.create 4096 in
      List.iter
        (fun r ->
          Buffer.add_string b (Trace.record_to_json r);
          Buffer.add_char b '\n')
        (Trace.records flight);
      Buffer.contents b
    in
    let dump_flight reason =
      match open_out flight_path with
      | oc ->
          let events = List.length (Trace.records flight) in
          output_string oc (flight_jsonl ());
          close_out oc;
          Format.printf "[%d] flight recorder: %d event(s) -> %s (%s)@." me events flight_path
            reason
      | exception Sys_error e -> Format.printf "[%d] flight recorder: cannot write: %s@." me e
    in
    let config =
      {
        Node.default_config with
        semantic = not reliable;
        park_timeout;
        tracer;
        metrics = Some metrics;
        flush_interval;
        divergence_period;
      }
    in
    let delivered = ref 0 in
    match
      Node.create loop ~me ~listen_fd ~peers ~payload_codec ~config ?data_dir
        ~on_synced:(fun v _app -> Format.printf "[%d] *** rejoined in %a ***@." me View.pp v)
        ()
    with
    | exception Svs_rt.Wal.Open_error e ->
        (* Refuse the data dir rather than scribble over another
           node's log; non-zero exit so supervisors notice. *)
        Option.iter close_out trace_oc;
        `Error (false, Svs_rt.Wal.open_error_message e)
    | node ->
    if Node.is_joining node then
      Format.printf "[%d] restarting from %s; asking the group to readmit me@." me
        (Option.value ~default:"?" data_dir);
    let admin =
      match admin_port with
      | None -> None
      | Some port ->
          let addr = Unix.ADDR_INET (Unix.inet_addr_any, port) in
          let a =
            Admin.create loop ~addr
              [
                ("/metrics", fun () -> Admin.prometheus (Metrics.prometheus_string metrics));
                ("/status", fun () -> Admin.json (Node.status_json node));
                ( "/health",
                  fun () ->
                    match Node.status_label node with
                    | ("member" | "blocked") as s -> Admin.text ("ok " ^ s ^ "\n")
                    | s -> Admin.text ~status:503 (s ^ "\n") );
                ("/dump", fun () -> Admin.text (flight_jsonl ()));
              ]
          in
          Format.printf "[%d] admin endpoint on port %d@." me (Admin.port a);
          Some a
    in
    (* One idempotent teardown shared by the normal exit path, the
       SIGINT/SIGTERM path (the signal stops the loop; at_exit covers a
       handler racing straight into exit), and the crash path. *)
    let cleaned = ref false in
    let cleanup () =
      if not !cleaned then begin
        cleaned := true;
        Option.iter Admin.close admin;
        Node.shutdown node;
        Trace.flush tracer;
        Option.iter close_out trace_oc
      end
    in
    at_exit cleanup;
    let on_signal _ = Loop.stop loop in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    (* Deliveries are pulled at the consumption rate (a slow consumer
       is simulated by a low --consume-rate); unconsumed messages stay
       in the protocol buffers where they remain purgeable. *)
    let consume () =
      match Node.deliver node with
      | None -> ()
      | Some (Types.Data d) ->
          incr delivered;
          let item, v = d.Types.payload in
          Format.printf "[%d] item %d = %d@." me item v
      | Some (Types.View_change v) -> Format.printf "[%d] *** new view %a ***@." me View.pp v
    in
    (match consume_rate with
    | None ->
        ignore
          (Loop.every loop ~period:0.01 (fun () ->
               while Node.pending node > 0 do
                 consume ()
               done;
               true)
            : Loop.timer)
    | Some r ->
        ignore
          (Loop.every loop ~period:(1.0 /. float_of_int r) (fun () ->
               consume ();
               true)
            : Loop.timer));
    (match publish with
    | None -> ()
    | Some items ->
        let counter = ref 0 in
        ignore
          (Loop.every loop ~period:(1.0 /. float_of_int rate) (fun () ->
               incr counter;
               let item = !counter mod items in
               (match Node.multicast node ~ann:(Annotation.Tag item) (item, !counter) with
               | Ok _ -> ()
               | Error `Blocked -> ()
               | Error `Not_member -> Format.printf "[%d] no longer a member@." me);
               true)
            : Loop.timer));
    (* Periodic one-line stats: the handful of numbers that matter,
       straight from the node's accessors, then every registered
       instrument when --verbose. *)
    let site s = Node.purged_at node s in
    let stats_line () =
      Format.printf
        "[%d] stats: status=%s view=%d delivered=%d pending=%d purged=%d(m:%d/r:%d/i:%d) \
         bytes_out=%d bytes_in=%d suspicions=%d%s%s@."
        me (Node.status_label node) (Node.view node).View.id !delivered (Node.pending node)
        (Node.purged node) (site Trace.At_multicast) (site Trace.At_receive)
        (site Trace.At_install) (Node.bytes_out node) (Node.bytes_in node)
        (Node.suspicions node)
        (match Node.wal_segment node with
        | Some seg -> Printf.sprintf " wal_seg=%d" seg
        | None -> "")
        (if Node.parked node then " PARKED" else "");
      if verbose then Format.printf "[%d] metrics: %a@." me Metrics.pp_line metrics
    in
    (* Parking is the "what just happened?" moment: snapshot the flight
       recorder the first time we observe it. *)
    let park_dumped = ref false in
    ignore
      (Loop.every loop ~period:0.25 (fun () ->
           if Node.parked node && not !park_dumped then begin
             park_dumped := true;
             dump_flight "parked"
           end;
           true)
        : Loop.timer);
    (match stats_period with
    | None -> ()
    | Some period when period <= 0.0 -> ()
    | Some period ->
        ignore
          (Loop.every loop ~period (fun () ->
               stats_line ();
               Trace.flush tracer;
               true)
            : Loop.timer));
    (match duration with
    | None -> ()
    | Some seconds -> ignore (Loop.after loop ~delay:seconds (fun () -> Loop.stop loop)));
    Format.printf "[%d] up; initial view %a@." me View.pp (Node.view node);
    (try Loop.run loop
     with exn ->
       dump_flight (Printf.sprintf "crash: %s" (Printexc.to_string exn));
       cleanup ();
       raise exn);
    Format.printf "[%d] done: delivered=%d purged=%d final view %a@." me !delivered
      (Node.purged node) View.pp (Node.view node);
    Format.printf "[%d] final metrics: %a@." me Metrics.pp_line metrics;
    cleanup ();
    `Ok ()

let cmd =
  let me =
    Arg.(required & opt (some int) None & info [ "me" ] ~docv:"ID" ~doc:"This member's id.")
  in
  let peers =
    Arg.(
      value & opt_all peer_conv []
      & info [ "peer" ] ~docv:"ID:HOST:PORT" ~doc:"A group member (repeat for each).")
  in
  let publish =
    Arg.(
      value & opt (some int) None
      & info [ "publish" ] ~docv:"ITEMS" ~doc:"Publish tagged updates over this many items.")
  in
  let rate =
    Arg.(value & opt int 20 & info [ "rate" ] ~docv:"MSG/S" ~doc:"Publish rate.")
  in
  let consume_rate =
    Arg.(
      value & opt (some int) None
      & info [ "consume-rate" ] ~docv:"MSG/S"
          ~doc:"Throttle local delivery (simulates a slow member).")
  in
  let duration =
    Arg.(
      value & opt (some float) None
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Exit after this long (default: run forever).")
  in
  let reliable =
    Arg.(value & flag & info [ "reliable" ] ~doc:"Disable purging (plain view synchrony).")
  in
  let park_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "park-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Primary-component survival: a member still blocked in the same view change \
             after $(docv) seconds parks (stops multicasting and delivering) and probes \
             its way back in, merging automatically when the partition heals. Best \
             combined with $(b,--data-dir) so the merge resumes from durable floors.")
  in
  let flush_interval =
    Arg.(
      value
      & opt float Svs_rt.Node.default_config.Svs_rt.Node.flush_interval
      & info [ "flush-interval" ] ~docv:"SECONDS"
          ~doc:
            "Outbound batching horizon: multicasts within this window coalesce per peer \
             into one batched write (default 0.001). 0 flushes on every send — lowest \
             latency, one syscall per message per peer.")
  in
  let data_dir =
    Arg.(
      value & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:
            "Durable state (write-ahead log) in $(docv). A restart over an existing \
             $(docv) recovers identity, last view, delivery floors and the sequence \
             lease, then rejoins the group through the JOIN/SYNC handshake.")
  in
  let divergence_period =
    Arg.(
      value
      & opt (some float) None
      & info [ "divergence-period" ] ~docv:"SECONDS"
          ~doc:
            "Replicated-state divergence self-healing: compare the state digests that \
             ride every heartbeat at this period. A quiescent member whose digest \
             disagrees with a unanimous rest-of-view for several consecutive rounds \
             self-demotes and re-enters through JOIN/SYNC with state transfer \
             (counted in $(b,svs_divergence_detected_total)).")
  in
  let trace_file =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a structured trace (one JSON object per protocol event: multicasts, \
             purges, blocks, view installs, suspicions, reconnects) to $(docv).")
  in
  let admin_port =
    Arg.(
      value & opt (some int) None
      & info [ "admin-port" ] ~docv:"PORT"
          ~doc:
            "Serve a live admin endpoint on $(docv): $(b,/metrics) (Prometheus text \
             exposition), $(b,/status) (JSON node snapshot), $(b,/health), and \
             $(b,/dump) (flight-recorder contents as JSONL). Port 0 picks an ephemeral \
             port (printed at startup).")
  in
  let flight_file =
    Arg.(
      value & opt (some string) None
      & info [ "flight-dump" ] ~docv:"FILE"
          ~doc:
            "Where the flight recorder (a ring of the last 4096 protocol events, always \
             on) dumps JSONL when the node parks or crashes. Default \
             $(b,svs-flight-<id>.jsonl).")
  in
  let stats_period =
    Arg.(
      value & opt (some float) (Some 5.0)
      & info [ "stats-period" ] ~docv:"SECONDS"
          ~doc:"Period of the one-line stats report (0 disables).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Protocol debug logging.")
  in
  Cmd.v
    (Cmd.info "svs_node" ~version:"1.0.0" ~doc:"Run a live SVS group member over TCP")
    Term.(
      ret
        (const run $ me $ peers $ publish $ rate $ consume_rate $ duration $ reliable
       $ park_timeout $ flush_interval $ data_dir $ divergence_period $ trace_file
       $ admin_port $ flight_file $ stats_period $ verbose))

let () = exit (Cmd.eval cmd)
