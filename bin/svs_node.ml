(* Run a live SVS group member over TCP.

   Start one process per member, e.g. in three terminals:

     svs_node --me 0 --peer 0:127.0.0.1:7100 --peer 1:127.0.0.1:7101 \
              --peer 2:127.0.0.1:7102 --publish 4 --rate 50
     svs_node --me 1 --peer 0:127.0.0.1:7100 --peer 1:127.0.0.1:7101 \
              --peer 2:127.0.0.1:7102
     svs_node --me 2 --peer 0:127.0.0.1:7100 --peer 1:127.0.0.1:7101 \
              --peer 2:127.0.0.1:7102 --consume-rate 10

   The publisher multicasts tagged item updates; every member prints
   what it delivers and each view change. Kill a member and watch the
   survivors agree on the next view; slow a member down (low
   --consume-rate) and watch obsolete updates being purged instead of
   stalling the group. *)

open Cmdliner
module Loop = Svs_rt.Loop
module Node = Svs_rt.Node
module Tcp_mesh = Svs_rt.Tcp_mesh
module Types = Svs_core.Types
module View = Svs_core.View
module Wire_codec = Svs_core.Wire_codec
module Annotation = Svs_obs.Annotation
module Metrics = Svs_telemetry.Metrics
module Trace = Svs_telemetry.Trace

let payload_codec = Wire_codec.pair_codec Wire_codec.int_codec Wire_codec.int_codec

let parse_peer s =
  match String.split_on_char ':' s with
  | [ id; host; port ] -> (
      match (int_of_string_opt id, int_of_string_opt port) with
      | Some id, Some port -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } -> Error (`Msg ("no address for " ^ host))
          | { Unix.h_addr_list; _ } -> Ok (id, Unix.ADDR_INET (h_addr_list.(0), port))
          | exception Not_found -> Error (`Msg ("unknown host " ^ host)))
      | _ -> Error (`Msg ("bad peer spec: " ^ s)))
  | _ -> Error (`Msg ("peer spec must be id:host:port, got " ^ s))

let peer_conv =
  Arg.conv
    ( parse_peer,
      fun ppf (id, addr) ->
        match addr with
        | Unix.ADDR_INET (a, p) ->
            Format.fprintf ppf "%d:%s:%d" id (Unix.string_of_inet_addr a) p
        | Unix.ADDR_UNIX path -> Format.fprintf ppf "%d:unix:%s" id path )

let run me peers publish rate consume_rate duration reliable park_timeout data_dir trace_file
    stats_period verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  if peers = [] then `Error (false, "at least one --peer required")
  else if not (List.mem_assoc me peers) then
    `Error (false, Printf.sprintf "--me %d has no --peer entry" me)
  else
    match Option.map open_out trace_file with
    | exception Sys_error e -> `Error (false, "cannot open trace file: " ^ e)
    | trace_oc ->
    let loop = Loop.create () in
    let listen_addr = List.assoc me peers in
    let listen_fd, _ = Tcp_mesh.listener listen_addr in
    let metrics = Metrics.create () in
    let tracer =
      match trace_oc with None -> Trace.nop | Some oc -> Trace.jsonl oc
    in
    let config =
      {
        Node.default_config with
        semantic = not reliable;
        park_timeout;
        tracer;
        metrics = Some metrics;
      }
    in
    let delivered = ref 0 in
    let node =
      Node.create loop ~me ~listen_fd ~peers ~payload_codec ~config ?data_dir
        ~on_synced:(fun v _app -> Format.printf "[%d] *** rejoined in %a ***@." me View.pp v)
        ()
    in
    if Node.is_joining node then
      Format.printf "[%d] restarting from %s; asking the group to readmit me@." me
        (Option.value ~default:"?" data_dir);
    (* Deliveries are pulled at the consumption rate (a slow consumer
       is simulated by a low --consume-rate); unconsumed messages stay
       in the protocol buffers where they remain purgeable. *)
    let consume () =
      match Node.deliver node with
      | None -> ()
      | Some (Types.Data d) ->
          incr delivered;
          let item, v = d.Types.payload in
          Format.printf "[%d] item %d = %d@." me item v
      | Some (Types.View_change v) -> Format.printf "[%d] *** new view %a ***@." me View.pp v
    in
    (match consume_rate with
    | None ->
        ignore
          (Loop.every loop ~period:0.01 (fun () ->
               while Node.pending node > 0 do
                 consume ()
               done;
               true)
            : Loop.timer)
    | Some r ->
        ignore
          (Loop.every loop ~period:(1.0 /. float_of_int r) (fun () ->
               consume ();
               true)
            : Loop.timer));
    (match publish with
    | None -> ()
    | Some items ->
        let counter = ref 0 in
        ignore
          (Loop.every loop ~period:(1.0 /. float_of_int rate) (fun () ->
               incr counter;
               let item = !counter mod items in
               (match Node.multicast node ~ann:(Annotation.Tag item) (item, !counter) with
               | Ok _ -> ()
               | Error `Blocked -> ()
               | Error `Not_member -> Format.printf "[%d] no longer a member@." me);
               true)
            : Loop.timer));
    (* Periodic one-line stats: the handful of numbers that matter,
       straight from the node's accessors, then every registered
       instrument when --verbose. *)
    let site s = Node.purged_at node s in
    let stats_line () =
      Format.printf
        "[%d] stats: delivered=%d pending=%d purged=%d(m:%d/r:%d/i:%d) bytes_out=%d bytes_in=%d suspicions=%d%s@."
        me !delivered (Node.pending node) (Node.purged node) (site Trace.At_multicast)
        (site Trace.At_receive) (site Trace.At_install) (Node.bytes_out node)
        (Node.bytes_in node) (Node.suspicions node)
        (if Node.parked node then " PARKED" else "");
      if verbose then Format.printf "[%d] metrics: %a@." me Metrics.pp_line metrics
    in
    (match stats_period with
    | None -> ()
    | Some period when period <= 0.0 -> ()
    | Some period ->
        ignore
          (Loop.every loop ~period (fun () ->
               stats_line ();
               Trace.flush tracer;
               true)
            : Loop.timer));
    (match duration with
    | None -> ()
    | Some seconds -> ignore (Loop.after loop ~delay:seconds (fun () -> Loop.stop loop)));
    Format.printf "[%d] up; initial view %a@." me View.pp (Node.view node);
    Loop.run loop;
    Format.printf "[%d] done: delivered=%d purged=%d final view %a@." me !delivered
      (Node.purged node) View.pp (Node.view node);
    Format.printf "[%d] final metrics: %a@." me Metrics.pp_line metrics;
    Node.shutdown node;
    Trace.flush tracer;
    Option.iter close_out trace_oc;
    `Ok ()

let cmd =
  let me =
    Arg.(required & opt (some int) None & info [ "me" ] ~docv:"ID" ~doc:"This member's id.")
  in
  let peers =
    Arg.(
      value & opt_all peer_conv []
      & info [ "peer" ] ~docv:"ID:HOST:PORT" ~doc:"A group member (repeat for each).")
  in
  let publish =
    Arg.(
      value & opt (some int) None
      & info [ "publish" ] ~docv:"ITEMS" ~doc:"Publish tagged updates over this many items.")
  in
  let rate =
    Arg.(value & opt int 20 & info [ "rate" ] ~docv:"MSG/S" ~doc:"Publish rate.")
  in
  let consume_rate =
    Arg.(
      value & opt (some int) None
      & info [ "consume-rate" ] ~docv:"MSG/S"
          ~doc:"Throttle local delivery (simulates a slow member).")
  in
  let duration =
    Arg.(
      value & opt (some float) None
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Exit after this long (default: run forever).")
  in
  let reliable =
    Arg.(value & flag & info [ "reliable" ] ~doc:"Disable purging (plain view synchrony).")
  in
  let park_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "park-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Primary-component survival: a member still blocked in the same view change \
             after $(docv) seconds parks (stops multicasting and delivering) and probes \
             its way back in, merging automatically when the partition heals. Best \
             combined with $(b,--data-dir) so the merge resumes from durable floors.")
  in
  let data_dir =
    Arg.(
      value & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:
            "Durable state (write-ahead log) in $(docv). A restart over an existing \
             $(docv) recovers identity, last view, delivery floors and the sequence \
             lease, then rejoins the group through the JOIN/SYNC handshake.")
  in
  let trace_file =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a structured trace (one JSON object per protocol event: multicasts, \
             purges, blocks, view installs, suspicions, reconnects) to $(docv).")
  in
  let stats_period =
    Arg.(
      value & opt (some float) (Some 5.0)
      & info [ "stats-period" ] ~docv:"SECONDS"
          ~doc:"Period of the one-line stats report (0 disables).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Protocol debug logging.")
  in
  Cmd.v
    (Cmd.info "svs_node" ~version:"1.0.0" ~doc:"Run a live SVS group member over TCP")
    Term.(
      ret
        (const run $ me $ peers $ publish $ rate $ consume_rate $ duration $ reliable
       $ park_timeout $ data_dir $ trace_file $ stats_period $ verbose))

let () = exit (Cmd.eval cmd)
