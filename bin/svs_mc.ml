(* Exhaustive small-scope model checker for the SVS automaton.

   Explores EVERY interleaving of a bounded configuration (nodes,
   multicast/crash/restart/partition budgets) through the deterministic
   simulator, checking the paper's §4 contracts at every cut.  A
   violation is minimized and written as a replayable trace file;
   --replay re-executes one deterministically.  --mutate arms the
   inverted self-test: the explorer must CATCH the seeded log
   corruption, proving the checker bites.  See MODELCHECK.md. *)

open Cmdliner
module Model = Svs_mc.Model
module Explorer = Svs_mc.Explorer
module Oracle = Svs_chaos.Oracle

let ppf = Format.std_formatter
let say fmt = Format.fprintf ppf fmt

(* Argument converters *)

let mode_conv =
  let parse s =
    match Oracle.mode_of_label s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown mode %S (vs|svs)" s))
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Oracle.mode_label m))

let pair_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some a, Some b -> Ok (a, b)
        | _ -> Error (`Msg (Printf.sprintf "bad link %S (want A:B)" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad link %S (want A:B)" s))
  in
  Arg.conv (parse, fun ppf (a, b) -> Format.fprintf ppf "%d:%d" a b)

let mutation_conv =
  let parse s =
    match Explorer.mutation_of_label s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown mutation %S (drop-cover|dup-restart|split-brain)" s))
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Explorer.mutation_label m))

(* Presets: named bounded configurations sized for CI. *)

let presets =
  [
    ("smoke", Model.default);
    (* The acceptance configuration: 3 nodes / 2 multicasts / 1 crash. *)
    ( "restart",
      {
        Model.default with
        multicasts = 1;
        crashes = 1;
        restarts = 1;
        probes = 1;
        max_depth = 60;
      } );
    ( "partition",
      {
        Model.default with
        multicasts = 1;
        crashes = 0;
        partitions = [ (0, 1) ];
        heals = true;
        max_depth = 60;
      } );
    ("vs", { Model.default with mode = Oracle.Vs; chain = false });
    ( "shed",
      (* Semantic shedding at its most aggressive (threshold 1): every
         held link purges its covered tail the moment a newer covering
         multicast is appended, across every interleaving of sends,
         deliveries and the crash — the exhaustive version of the chaos
         overload scenario's safety claim. *)
      { Model.default with multicasts = 3; crashes = 1; shed = Some 1; max_depth = 80 } );
  ]

let preset_conv =
  let parse s =
    match List.assoc_opt s presets with
    | Some c -> Ok (Some (s, c))
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown preset %S (%s)" s
               (String.concat "|" (List.map fst presets))))
  in
  Arg.conv
    ( parse,
      fun ppf -> function
        | Some (name, _) -> Format.pp_print_string ppf name
        | None -> Format.pp_print_string ppf "none" )

(* Terms *)

let nodes_t =
  Arg.(value & opt int Model.default.Model.nodes
       & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size (2-4 is tractable).")

let multicasts_t =
  Arg.(value & opt int Model.default.Model.multicasts
       & info [ "multicasts" ] ~docv:"N" ~doc:"Total data multicast budget.")

let crashes_t =
  Arg.(value & opt int Model.default.Model.crashes
       & info [ "crashes" ] ~docv:"N" ~doc:"Crash budget (node 0 is immortal).")

let restarts_t =
  Arg.(value & opt int Model.default.Model.restarts
       & info [ "restarts" ] ~docv:"N" ~doc:"Crash-recovery rejoin budget.")

let probes_t =
  Arg.(value & opt int Model.default.Model.probes
       & info [ "probes" ] ~docv:"N" ~doc:"JOIN-request budget for rejoining nodes.")

let partitions_t =
  Arg.(value & opt_all pair_conv []
       & info [ "partition" ] ~docv:"A:B"
           ~doc:"Link that may be cut (repeatable, each at most once).")

let heal_t =
  Arg.(value & flag & info [ "heal" ] ~doc:"Allow cut links to heal.")

let mode_t =
  Arg.(value & opt mode_conv Model.default.Model.mode
       & info [ "mode" ] ~docv:"MODE"
           ~doc:"$(b,svs) (k-enumeration annotations) or $(b,vs) (empty relation, \
                 strict view synchrony).")

let no_chain_t =
  Arg.(value & flag
       & info [ "no-chain" ]
           ~doc:"Multicasts unrelated even in svs mode (no obsolescence chain).")

let shed_t =
  Arg.(value & opt (some int) None
       & info [ "shed" ] ~docv:"N"
           ~doc:"Semantic shedding threshold for held links (default: off). A link \
                 holding at least N sheddable frames purges its covered tail when a \
                 newer covering multicast is appended.")

let depth_t =
  Arg.(value & opt int Model.default.Model.max_depth
       & info [ "depth" ] ~docv:"N" ~doc:"Maximum trace length before cutoff.")

let max_states_t =
  Arg.(value & opt int 2_000_000
       & info [ "max-states" ] ~docv:"N" ~doc:"Abort after expanding N states.")

let no_reduce_t =
  Arg.(value & flag
       & info [ "no-reduce" ]
           ~doc:"Disable the sleep-set partial-order reduction.")

let no_dedup_t =
  Arg.(value & flag
       & info [ "no-dedup" ]
           ~doc:"Disable the fingerprint visited set (with $(b,--no-reduce): \
                 naive DFS enumerating every interleaving).")

let mutate_t =
  Arg.(value & opt (some mutation_conv) None
       & info [ "mutate" ] ~docv:"KIND"
           ~doc:"Inverted self-test: corrupt every terminal run's log with KIND \
                 ($(b,drop-cover)|$(b,dup-restart)|$(b,split-brain)); finding the \
                 violation is the PASS.")

let preset_t =
  Arg.(value & opt preset_conv None
       & info [ "preset" ] ~docv:"NAME"
           ~doc:"Named configuration (smoke|restart|partition|vs|shed); explicit bound \
                 flags are ignored when set.")

let trace_out_t =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Where to write the minimized counterexample trace (default \
                 svs_mc_counterexample.trace).")

let replay_t =
  Arg.(value & opt (some string) None
       & info [ "replay" ] ~docv:"FILE"
           ~doc:"Replay a trace file instead of exploring; exits 0 iff the \
                 violation reproduces.")

let json_t = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable summary on stdout.")

let progress_t =
  Arg.(value & flag & info [ "progress" ] ~doc:"Report state counts while exploring.")

(* Output helpers *)

let pp_trace ppf trace =
  List.iteri (fun i t -> Format.fprintf ppf "  %3d  %a@." i Model.pp_transition t) trace

let print_json ~outcome_label ~exit_code ~reduce ~mutation cfg
    (stats : Explorer.stats) trace_file =
  let b = Buffer.create 512 in
  Buffer.add_string b "{";
  Printf.bprintf b "\"outcome\": %S, " outcome_label;
  Printf.bprintf b "\"exit_code\": %d, " exit_code;
  Printf.bprintf b
    "\"config\": {\"nodes\": %d, \"multicasts\": %d, \"crashes\": %d, \
     \"restarts\": %d, \"probes\": %d, \"partitions\": %d, \"heals\": %b, \
     \"mode\": %S, \"chain\": %b, \"shed\": %s, \"depth\": %d}, "
    cfg.Model.nodes cfg.Model.multicasts cfg.Model.crashes cfg.Model.restarts
    cfg.Model.probes
    (List.length cfg.Model.partitions)
    cfg.Model.heals
    (Oracle.mode_label cfg.Model.mode)
    cfg.Model.chain
    (match cfg.Model.shed with Some l -> string_of_int l | None -> "null")
    cfg.Model.max_depth;
  Printf.bprintf b "\"reduce\": %b, " reduce;
  Printf.bprintf b "\"mutation\": %S, "
    (match mutation with Some m -> Explorer.mutation_label m | None -> "none");
  Printf.bprintf b
    "\"states\": %d, \"transitions\": %d, \"interleavings\": %d, \
     \"visited_hits\": %d, \"sleep_skips\": %d, \"depth_cutoffs\": %d, \
     \"max_depth_seen\": %d"
    stats.Explorer.states stats.Explorer.transitions stats.Explorer.interleavings
    stats.Explorer.visited_hits stats.Explorer.sleep_skips
    stats.Explorer.depth_cutoffs stats.Explorer.max_depth_seen;
  (match trace_file with
  | Some f -> Printf.bprintf b ", \"trace\": %S" f
  | None -> ());
  Buffer.add_string b "}";
  print_endline (Buffer.contents b)

(* Replay mode *)

let run_replay file json =
  let ic = open_in file in
  let parsed = Explorer.read_trace ic in
  close_in ic;
  match parsed with
  | Error msg ->
      say "cannot read %s: %s@." file msg;
      2
  | Ok (cfg, mutation, trace) -> (
      say "replaying %d transition(s) from %s (%s)@." (List.length trace) file
        (match mutation with
        | Some m -> "mutation " ^ Explorer.mutation_label m
        | None -> "no mutation");
      match Explorer.replay ?mutation cfg trace with
      | Explorer.Reproduced violations ->
          say "violation reproduced:@.";
          List.iter
            (fun v -> say "  %a@." Svs_core.Checker.pp_violation v)
            violations;
          if json then
            Printf.printf
              "{\"outcome\": \"reproduced\", \"violations\": %d, \"trace_len\": %d}\n"
              (List.length violations) (List.length trace);
          0
      | Explorer.Clean ->
          say "trace replayed cleanly — violation NOT reproduced@.";
          if json then
            Printf.printf "{\"outcome\": \"clean\", \"trace_len\": %d}\n"
              (List.length trace);
          1
      | Explorer.Infeasible { index; transition } ->
          say "trace infeasible at step %d: %a not enabled@." index
            Model.pp_transition transition;
          if json then
            Printf.printf "{\"outcome\": \"infeasible\", \"at\": %d}\n" index;
          2)

(* Explore mode *)

let run nodes multicasts crashes restarts probes partitions heal mode no_chain shed
    depth max_states no_reduce no_dedup mutate preset trace_out replay json
    progress =
  match replay with
  | Some file -> run_replay file json
  | None ->
      let cfg =
        match preset with
        | Some (_, c) -> c
        | None ->
            {
              Model.nodes;
              multicasts;
              crashes;
              restarts;
              probes;
              partitions;
              heals = heal;
              mode;
              chain = not no_chain;
              shed;
              max_depth = depth;
            }
      in
      let reduce = not no_reduce in
      let dedup = not no_dedup in
      let progress_cb =
        if progress then
          Some
            (fun (s : Explorer.stats) ->
              Format.eprintf "  ... %d states, %d interleavings@." s.Explorer.states
                s.Explorer.interleavings)
        else None
      in
      say "exploring: %d nodes, %d multicasts, %d crashes, %d restarts, %d \
           probes, %d cuttable links%s, mode %s%s%s, depth %d%s%s%s@."
        cfg.Model.nodes cfg.Model.multicasts cfg.Model.crashes cfg.Model.restarts
        cfg.Model.probes
        (List.length cfg.Model.partitions)
        (if cfg.Model.heals then " (healable)" else "")
        (Oracle.mode_label cfg.Model.mode)
        (if cfg.Model.chain then "" else " (no chain)")
        (match cfg.Model.shed with
        | Some l -> Printf.sprintf ", shed>=%d" l
        | None -> "")
        cfg.Model.max_depth
        (if reduce then "" else ", reduction OFF")
        (if dedup then "" else ", dedup OFF")
        (match mutate with
        | Some m -> Printf.sprintf ", mutation %s" (Explorer.mutation_label m)
        | None -> "");
      let { Explorer.outcome; stats } =
        Explorer.explore ~reduce ~dedup ~max_states ?mutation:mutate
          ?progress:progress_cb cfg
      in
      let finish ~outcome_label ~exit_code trace_file =
        say "%a@." Explorer.pp_stats stats;
        if json then
          print_json ~outcome_label ~exit_code ~reduce ~mutation:mutate cfg stats
            trace_file;
        exit_code
      in
      match outcome with
      | Explorer.Exhausted ->
          let label, code =
            match mutate with
            | Some m ->
                say
                  "SELF-TEST FAILED: explored everything but never caught \
                   mutation %s@."
                  (Explorer.mutation_label m);
                ("mutation-missed", 1)
            | None ->
                say "exhausted: every interleaving satisfies the contracts@.";
                ("exhausted", 0)
          in
          finish ~outcome_label:label ~exit_code:code None
      | Explorer.State_limit ->
          say "state limit (%d) hit before exhausting the space@." max_states;
          finish ~outcome_label:"state-limit" ~exit_code:2 None
      | Explorer.Counterexample { trace; violations } ->
          let minimized, min_violations =
            Explorer.minimize ?mutation:mutate cfg trace
          in
          let violations =
            match min_violations with Some v -> v | None -> violations
          in
          let file =
            match trace_out with
            | Some f -> f
            | None -> "svs_mc_counterexample.trace"
          in
          let oc = open_out file in
          Explorer.write_trace oc cfg ?mutation:mutate minimized;
          close_out oc;
          let label, code =
            match mutate with
            | Some m ->
                say "self-test passed: mutation %s caught@."
                  (Explorer.mutation_label m);
                ("mutation-caught", 0)
            | None ->
                say "VIOLATION found@.";
                ("violation", 1)
          in
          say "counterexample (%d transitions, minimized from %d):@."
            (List.length minimized) (List.length trace);
          pp_trace ppf minimized;
          List.iter
            (fun v -> say "  violates: %a@." Svs_core.Checker.pp_violation v)
            violations;
          say "written to %s@." file;
          say "replay: dune exec bin/svs_mc.exe -- --replay %s@." file;
          finish ~outcome_label:label ~exit_code:code (Some file)

let main =
  let doc = "Exhaustive small-scope model checking of the SVS automaton" in
  let info = Cmd.info "svs_mc" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      const run $ nodes_t $ multicasts_t $ crashes_t $ restarts_t $ probes_t
      $ partitions_t $ heal_t $ mode_t $ no_chain_t $ shed_t $ depth_t $ max_states_t
      $ no_reduce_t $ no_dedup_t $ mutate_t $ preset_t $ trace_out_t $ replay_t $ json_t
      $ progress_t)

let () = exit (Cmd.eval' main)
