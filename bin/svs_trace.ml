(* Offline trace analyzer: merge per-node JSONL traces, reconstruct
   per-message lifecycle timelines, and report delivery latency,
   stability lag, purge effectiveness, view-change spans and anomalies.
   Optionally writes the summary as BENCH_rt_throughput.json. *)

open Cmdliner
module Span = Svs_telemetry.Span

let ppf = Format.std_formatter

let files_term =
  Arg.(
    non_empty
    & pos_all file []
    & info [] ~docv:"TRACE.jsonl"
        ~doc:"Per-node JSONL trace files (as written by $(b,svs_node --trace)).")

let timelines_term =
  Arg.(
    value & flag
    & info [ "timelines" ]
        ~doc:"Print one reconstructed lifecycle line per message before the summary.")

let json_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write the summary as a flat JSON object to $(docv) (the \
           $(b,BENCH_rt_throughput.json) payload). $(b,-) writes to stdout instead of \
           the human-readable report.")

let block_threshold_term =
  Arg.(
    value & opt float 5.0
    & info [ "block-threshold" ] ~docv:"SECONDS"
        ~doc:"Blocked spans longer than this are flagged as anomalies.")

let strict_term =
  Arg.(
    value & flag
    & info [ "strict" ] ~doc:"Exit non-zero if the analysis finds any anomaly.")

let run files show_timelines json_out block_threshold strict =
  (* Trace files from crashed or killed nodes routinely end in a torn
     line (and bit rot happens): skip what does not parse, loudly, and
     analyze the rest. *)
  let streams =
    List.map
      (fun file ->
        let records, bad = Span.load_file_counted file in
        if bad > 0 then
          Format.fprintf ppf "svs_trace: warning: %s: skipped %d corrupt line(s)@." file bad;
        (records, bad))
      files
  in
  let skipped = List.fold_left (fun acc (_, bad) -> acc + bad) 0 streams in
  let streams = List.map fst streams in
  if skipped > 0 then
    Format.fprintf ppf "svs_trace: warning: %d corrupt line(s) skipped in total@." skipped;
  let total = List.fold_left (fun acc s -> acc + List.length s) 0 streams in
  if total = 0 then begin
    Format.fprintf ppf "svs_trace: no trace records in %d file(s)@." (List.length files);
    exit 2
  end;
  if show_timelines then
    List.iter (fun tl -> Format.fprintf ppf "%a@." Span.pp_timeline tl) (Span.timelines streams);
  let report = Span.analyze ~block_threshold streams in
  (match json_out with
  | Some "-" -> print_endline (Span.report_to_json report)
  | Some file ->
      let oc = open_out file in
      output_string oc (Span.report_to_json report);
      output_char oc '\n';
      close_out oc;
      Format.fprintf ppf "%a@." Span.pp_report report;
      Format.fprintf ppf "wrote %s@." file
  | None -> Format.fprintf ppf "%a@." Span.pp_report report);
  if strict && report.Span.anomalies <> [] then exit 1

let cmd =
  let doc = "analyze SVS runtime traces into per-message timelines and latency stats" in
  Cmd.v
    (Cmd.info "svs_trace" ~doc)
    Term.(const run $ files_term $ timelines_term $ json_term $ block_threshold_term
          $ strict_term)

let () = exit (Cmd.eval cmd)
