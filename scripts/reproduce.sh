#!/bin/sh
# Regenerate every artifact: tests, the full evaluation, the examples,
# and CSV data files for external plotting.
set -e
cd "$(dirname "$0")/.."

echo "== build =="
dune build @all

echo "== tests =="
dune runtest --force --no-buffer 2>&1 | tee test_output.txt

echo "== evaluation (every table & figure + micro-benchmarks) =="
dune exec bench/main.exe 2>&1 | tee bench_output.txt

echo "== CSV series for plotting =="
mkdir -p results
dune exec bin/svs_cli.exe -- fig3a --csv results/fig3a.csv > /dev/null
dune exec bin/svs_cli.exe -- fig3b --csv results/fig3b.csv > /dev/null
dune exec bin/svs_cli.exe -- fig4 --csv results/fig4 > /dev/null
dune exec bin/svs_cli.exe -- fig5 --csv results/fig5 > /dev/null

echo "== examples =="
for e in quickstart monitoring game_replication view_flush stock_ticker; do
  echo "--- $e"
  dune exec "examples/$e.exe"
done

echo "all artifacts regenerated"
