#!/bin/sh
# Tier-1 CI entry point: build + full test suite, plus repo hygiene
# guards. Run from the repository root.
#
#   scripts/ci.sh        build + tests
#   scripts/ci.sh smoke  also exercise the micro-benchmarks once
#                        (liveness only — no timing gates) and emit
#                        BENCH_purge.json
set -eu

cd "$(dirname "$0")/.."

# Guard: build artifacts must never be committed (they were, once).
if git ls-files | grep -q '^_build/'; then
  echo "ci: _build/ is tracked by git — run 'git rm -r --cached _build'" >&2
  exit 1
fi

dune build
dune runtest

if [ "${1:-}" = "smoke" ]; then
  dune exec bench/main.exe -- --smoke
fi

echo "ci: OK"
