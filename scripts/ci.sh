#!/bin/sh
# Tier-1 CI entry point: build + full test suite + chaos smoke sweep,
# plus repo hygiene guards. Run from the repository root.
#
#   scripts/ci.sh        build + tests + chaos smoke
#   scripts/ci.sh smoke  also exercise the micro-benchmarks once
#                        (liveness only — no timing gates), emit
#                        BENCH_purge.json, and smoke the live
#                        observability surface (admin endpoint +
#                        svs_trace analyzer)
#   scripts/ci.sh bench-smoke
#                        run the runtime throughput bench once in
#                        --smoke mode (1s series — liveness plus a
#                        JSON shape check, no timing gates)
#   scripts/ci.sh fuzz-smoke
#                        run the byte-level fuzz suite with a bigger
#                        iteration budget (FUZZ_ITERS, default 2000)
#   scripts/ci.sh overload
#                        overload-survival smoke: the wedged-consumer
#                        chaos scenario under its backlog budget, the
#                        inverted --no-shed self-check, the svs_mc
#                        shed preset, and one bench/overload --smoke
#                        run gated on its two acceptance booleans
#                        (BENCH_overload.json)
#   scripts/ci.sh chaos  the full chaos sweep (20 seeds x every
#                        scenario x both oracle modes) plus the
#                        oracle mutation self-test
#   scripts/ci.sh mc     the full model-checking sweep: every svs_mc
#                        preset explored exhaustively, the DPOR
#                        reduction compared against naive DFS for
#                        soundness, and all three seeded mutations
#                        caught with replay-verified counterexamples
#                        (the quick mc smoke below runs on every tier)
set -eu

cd "$(dirname "$0")/.."

# Guard: build artifacts must never be committed (they were, once).
if git ls-files | grep -q '^_build/'; then
  echo "ci: _build/ is tracked by git — run 'git rm -r --cached _build'" >&2
  exit 1
fi

dune build
dune runtest

# Run a chaos sweep through its machine-readable gate: --json makes
# the verdict scriptable, and a violation fails loudly here with the
# exact replay line (seed + scenario + mode) for each failing run.
chaos_json() {
  if out=$(dune exec bin/svs_chaos.exe -- --json "$@"); then
    printf '%s\n' "$out"
  else
    printf '%s\n' "$out"
    echo "ci: chaos sweep FAILED; replay each failing run with:" >&2
    printf '%s' "$out" | tr '{' '\n' | grep '"ok":false' | sed -n \
      's/.*"scenario":"\([^"]*\)","mode":"\([^"]*\)","seed":\([0-9]*\).*/  dune exec bin\/svs_chaos.exe -- --scenarios \1 --modes \2 --seeds 1 --seed-base \3/p' >&2
    exit 1
  fi
}

# Chaos smoke: a small deterministic seed sweep through the fault
# scenarios — including the partition-survival splits, which must
# park the minority and merge it back — machine-checked by the SVS
# safety oracle (see CHAOS.md).
chaos_json --seeds 3 \
  --scenarios crash,partition-heal,slow-receiver,churn,crash-restart,exclude-rejoin
chaos_json --seeds 3 --scenarios group-split,split-heal-merge,flapping-split
chaos_json --seeds 3 --scenarios overload

# Recovery inverted self-check: restarting members amnesiac (no WAL)
# must be caught by the oracle — proves the recovery path is what
# keeps Integrity true across crash-rejoin, not oracle blindness.
# (Expected-red runs dump flight recordings; keep them out of the tree.)
dune exec bin/svs_chaos.exe -- --seeds 2 --flight _build/ci-flight \
  --scenarios crash-restart --modes svs --no-recovery > /dev/null

# Merge inverted self-check: with merge-on-heal disabled, parked
# members stay parked and every split scenario must fail the
# re-convergence contract — proves the probe/merge path is load-bearing.
dune exec bin/svs_chaos.exe -- --seeds 2 --flight _build/ci-flight \
  --scenarios split-heal-merge --modes svs --no-merge > /dev/null

# Hostile-input containment: the three hostile-input scenarios (wire
# garbage over real sockets, WAL interior bit rot, replicated-state
# divergence) must be contained with every defense on ...
dune exec bin/svs_chaos.exe -- --hostile

# ... and each inverted self-check must flag the run when its defense
# is disabled — proving quarantine, salvage, and self-healing are what
# contain the scenario, not harness blindness.
dune exec bin/svs_chaos.exe -- --no-quarantine
dune exec bin/svs_chaos.exe -- --no-salvage
dune exec bin/svs_chaos.exe -- --no-heal

# Flight-recorder acceptance: a failing (mutated) run must leave a
# postmortem JSONL dump named after its replay line.
rm -rf _build/ci-flight
dune exec bin/svs_chaos.exe -- --seeds 1 --scenarios crash --modes svs \
  --mutate --flight _build/ci-flight > /dev/null
ls _build/ci-flight/flight-crash-svs-1.jsonl > /dev/null || {
  echo "ci: mutated chaos run left no flight-recorder dump" >&2; exit 1; }

# Model-checker smoke: exhaust the acceptance configuration (3 nodes,
# 2 multicasts, 1 crash — every interleaving) and gate on the verdict
# AND a nonzero state count, so an accidentally-empty exploration
# can't pass as green.  See MODELCHECK.md.
mc_out=$(dune exec bin/svs_mc.exe -- --preset smoke --json 2>/dev/null | tail -1)
printf '%s\n' "$mc_out" | grep -q '"outcome": "exhausted"' || {
  echo "ci: model-checker smoke did not exhaust cleanly: $mc_out" >&2; exit 1; }
printf '%s\n' "$mc_out" | grep -q '"states": 0' && {
  echo "ci: model-checker smoke explored zero states" >&2; exit 1; }
echo "ci: model-check smoke OK ($(printf '%s' "$mc_out" | sed -n 's/.*\("states": [0-9]*\).*\("interleavings": [0-9]*\).*/\1, \2/p'))"

if [ "${1:-}" = "smoke" ]; then
  dune exec bench/main.exe -- --smoke

  # Observability smoke: boot a real node with the admin endpoint on,
  # scrape /metrics + /status + /health while it runs, then feed its
  # trace to the offline analyzer.
  obs_dir=$(mktemp -d)
  trap 'rm -rf "$obs_dir"' EXIT
  aport=7491
  dune exec bin/svs_node.exe -- --me 0 --peer 0:127.0.0.1:7391 \
    --publish 8 --rate 50 --duration 4 --admin-port "$aport" \
    --trace "$obs_dir/node0.jsonl" --flight-dump "$obs_dir/flight0.jsonl" \
    --stats-period 0 > "$obs_dir/node0.log" 2>&1 &
  node_pid=$!
  sleep 2
  curl -sf "http://127.0.0.1:$aport/health" | grep -q '^ok'
  curl -sf "http://127.0.0.1:$aport/status" | grep -q '"status":"member"'
  curl -sf "http://127.0.0.1:$aport/metrics" > "$obs_dir/metrics.txt"
  grep -q '^# TYPE rt_delivery_latency_seconds histogram' "$obs_dir/metrics.txt"
  grep -q 'le="+Inf"' "$obs_dir/metrics.txt"
  grep -q '^# TYPE tcp_flushes_total counter' "$obs_dir/metrics.txt"
  grep -q '^# TYPE tcp_writev_bytes_total counter' "$obs_dir/metrics.txt"
  grep -q '^# TYPE tcp_batch_frames histogram' "$obs_dir/metrics.txt"
  curl -sf "http://127.0.0.1:$aport/dump" | grep -q '"ev":'
  wait "$node_pid"
  dune exec bin/svs_trace.exe -- "$obs_dir/node0.jsonl" \
    --json "$obs_dir/trace_summary.json" > /dev/null
  grep -q '"msgs_per_s":' "$obs_dir/trace_summary.json"
  echo "ci: observability smoke OK"
fi

if [ "${1:-}" = "bench-smoke" ] || [ "${1:-}" = "smoke" ]; then
  # Throughput bench liveness: one short closed-loop run, then check
  # the emitted JSON has the shape the perf trajectory relies on.
  bench_json=$(mktemp)
  dune exec bench/rt_throughput.exe -- --smoke --json "$bench_json"
  for key in '"benchmark": "rt_throughput"' '"seed-baseline"' \
             '"flush-per-send"' '"batched"' '"msgs_per_s"' '"p50_ms"' \
             '"p99_ms"' '"minor_words_per_msg"' '"speedup"'; do
    grep -q "$key" "$bench_json" || {
      echo "ci: bench JSON missing $key" >&2; rm -f "$bench_json"; exit 1; }
  done
  rm -f "$bench_json"
  echo "ci: bench smoke OK"
fi

if [ "${1:-}" = "fuzz-smoke" ]; then
  # Byte-level fuzzing with a bigger budget than the default runtest
  # pass: codec round-trips, mutated/garbage decodes, mesh reassembly
  # at arbitrary chunk boundaries, and WAL bit-flip recovery must
  # never escape the typed error surface (Truncated/Malformed or a
  # clean salvage — anything else is a crash bug).
  FUZZ_ITERS="${FUZZ_ITERS:-2000}" dune exec test/test_fuzz.exe
  echo "ci: fuzz smoke OK"
fi

if [ "${1:-}" = "overload" ]; then
  # Overload survival: the wedged-consumer scenario must stay within
  # its backlog budget with semantic shedding on, and the inverted
  # --no-shed run must EXCEED the budget — proving the verdict
  # measures shedding, not a generous budget (see CHAOS.md).
  chaos_json --seeds 3 --scenarios overload
  dune exec bin/svs_chaos.exe -- --seeds 2 --scenarios overload \
    --modes svs --no-shed

  # Model-check the shedding rule at small scope: every interleaving
  # of the shed preset (threshold 1 — shed at every opportunity) must
  # keep the SVS contracts.
  dune exec bin/svs_mc.exe -- --preset shed | grep -q '^exhausted' || {
    echo "ci: mc shed preset did not exhaust cleanly" >&2; exit 1; }

  # Bench liveness + the two acceptance booleans the overload claim
  # rests on (no timing gates — booleans only).
  ov_json=$(mktemp)
  dune exec bench/overload.exe -- --smoke --json "$ov_json"
  grep -q '"shed_under_budget": true' "$ov_json" || {
    echo "ci: overload bench: shedding did not hold the backlog under budget" >&2
    rm -f "$ov_json"; exit 1; }
  grep -q '"noshed_over_budget": true' "$ov_json" || {
    echo "ci: overload bench: no-shed run stayed under budget (budget too lax?)" >&2
    rm -f "$ov_json"; exit 1; }
  rm -f "$ov_json"
  echo "ci: overload smoke OK"
fi

if [ "${1:-}" = "chaos" ]; then
  chaos_json --seeds 20
  dune exec bin/svs_chaos.exe -- --seeds 5 --mutate
  dune exec bin/svs_chaos.exe -- --seeds 5 --mutate-split-brain
fi

if [ "${1:-}" = "mc" ]; then
  # Every preset must exhaust its bounded state space cleanly.
  for preset in smoke restart partition vs; do
    dune exec bin/svs_mc.exe -- --preset "$preset" | grep -q '^exhausted' || {
      echo "ci: mc preset $preset did not exhaust cleanly" >&2; exit 1; }
  done

  # Reduction soundness: the sleep-set DPOR must reach the same verdict
  # as the naive DFS while exploring strictly fewer interleavings.
  naive=$(dune exec bin/svs_mc.exe -- --preset smoke --no-reduce --no-dedup --json | tail -1)
  dpor=$(dune exec bin/svs_mc.exe -- --preset smoke --no-dedup --json | tail -1)
  n_il=$(printf '%s' "$naive" | sed -n 's/.*"interleavings": \([0-9]*\).*/\1/p')
  d_il=$(printf '%s' "$dpor" | sed -n 's/.*"interleavings": \([0-9]*\).*/\1/p')
  printf '%s\n' "$naive" | grep -q '"outcome": "exhausted"' || {
    echo "ci: naive DFS did not exhaust" >&2; exit 1; }
  printf '%s\n' "$dpor" | grep -q '"outcome": "exhausted"' || {
    echo "ci: DPOR did not exhaust" >&2; exit 1; }
  [ "$d_il" -lt "$n_il" ] || {
    echo "ci: DPOR did not reduce interleavings ($d_il vs $n_il)" >&2; exit 1; }
  echo "ci: mc reduction OK ($n_il interleavings naive -> $d_il with sleep sets)"

  # Mutation self-tests (inverted): the explorer must find a violation
  # for every seeded log corruption, and the minimized counterexample
  # must replay deterministically.
  mc_dir=$(mktemp -d)
  trap 'rm -rf "$mc_dir"' EXIT
  for mut in drop-cover:smoke dup-restart:restart split-brain:smoke; do
    kind=${mut%%:*}; preset=${mut##*:}
    dune exec bin/svs_mc.exe -- --preset "$preset" --mutate "$kind" \
      --trace-out "$mc_dir/$kind.trace" > /dev/null || {
      echo "ci: mc self-test missed mutation $kind" >&2; exit 1; }
    dune exec bin/svs_mc.exe -- --replay "$mc_dir/$kind.trace" > /dev/null || {
      echo "ci: mc counterexample for $kind did not replay" >&2; exit 1; }
  done
  echo "ci: mc mutation self-tests OK"
fi

echo "ci: OK"
