#!/bin/sh
# Tier-1 CI entry point: build + full test suite + chaos smoke sweep,
# plus repo hygiene guards. Run from the repository root.
#
#   scripts/ci.sh        build + tests + chaos smoke
#   scripts/ci.sh smoke  also exercise the micro-benchmarks once
#                        (liveness only — no timing gates) and emit
#                        BENCH_purge.json
#   scripts/ci.sh chaos  the full chaos sweep (20 seeds x every
#                        scenario x both oracle modes) plus the
#                        oracle mutation self-test
set -eu

cd "$(dirname "$0")/.."

# Guard: build artifacts must never be committed (they were, once).
if git ls-files | grep -q '^_build/'; then
  echo "ci: _build/ is tracked by git — run 'git rm -r --cached _build'" >&2
  exit 1
fi

dune build
dune runtest

# Chaos smoke: a small deterministic seed sweep through the fault
# scenarios, machine-checked by the SVS safety oracle (see CHAOS.md).
dune exec bin/svs_chaos.exe -- --seeds 3 \
  --scenarios crash,partition-heal,slow-receiver,churn,crash-restart,exclude-rejoin

# Recovery inverted self-check: restarting members amnesiac (no WAL)
# must be caught by the oracle — proves the recovery path is what
# keeps Integrity true across crash-rejoin, not oracle blindness.
dune exec bin/svs_chaos.exe -- --seeds 2 \
  --scenarios crash-restart --modes svs --no-recovery > /dev/null

if [ "${1:-}" = "smoke" ]; then
  dune exec bench/main.exe -- --smoke
fi

if [ "${1:-}" = "chaos" ]; then
  dune exec bin/svs_chaos.exe -- --seeds 20
  dune exec bin/svs_chaos.exe -- --seeds 5 --mutate
fi

echo "ci: OK"
