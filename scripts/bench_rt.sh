#!/bin/sh
# Runtime throughput bench: run a real 3-node SVS cluster over local
# TCP for DURATION seconds with one publisher, record a per-node JSONL
# trace, then merge the traces with svs_trace into a single
# BENCH_rt_throughput.json (throughput, delivery latency percentiles,
# stability lag, purge effectiveness, anomaly counts).
#
#   DURATION=10 RATE=200 scripts/bench_rt.sh
#
# Environment knobs:
#   DURATION    run length in seconds            (default 10)
#   RATE        publish rate, msg/s              (default 200)
#   ITEMS       distinct data items published    (default 16)
#   PORT_BASE   first TCP port; nodes use +0..+2 (default 7200)
#   ADMIN_BASE  first admin port, 0 = disabled   (default 0)
#   OUT         output JSON path                 (default BENCH_rt_throughput.json)
set -eu

cd "$(dirname "$0")/.."

DURATION="${DURATION:-10}"
RATE="${RATE:-200}"
ITEMS="${ITEMS:-16}"
PORT_BASE="${PORT_BASE:-7200}"
ADMIN_BASE="${ADMIN_BASE:-0}"
OUT="${OUT:-BENCH_rt_throughput.json}"

dune build bin/svs_node.exe bin/svs_trace.exe

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

peers="--peer 0:127.0.0.1:$PORT_BASE \
  --peer 1:127.0.0.1:$((PORT_BASE + 1)) \
  --peer 2:127.0.0.1:$((PORT_BASE + 2))"

pids=""
for i in 0 1 2; do
  workload=""
  [ "$i" = 0 ] && workload="--publish $ITEMS --rate $RATE"
  admin=""
  [ "$ADMIN_BASE" != 0 ] && admin="--admin-port $((ADMIN_BASE + i))"
  # shellcheck disable=SC2086  # deliberate word splitting of flag lists
  ./_build/default/bin/svs_node.exe --me "$i" $peers $workload $admin \
    --duration "$DURATION" --trace "$dir/node$i.jsonl" \
    --flight-dump "$dir/flight-$i.jsonl" --stats-period 0 \
    > "$dir/node$i.log" 2>&1 &
  pids="$pids $!"
done

for pid in $pids; do
  wait "$pid" || { echo "bench_rt: a node exited non-zero; logs:" >&2
                   cat "$dir"/node*.log >&2; exit 1; }
done

./_build/default/bin/svs_trace.exe "$dir"/node0.jsonl "$dir"/node1.jsonl \
  "$dir"/node2.jsonl --json "$OUT"
echo "bench_rt: wrote $OUT"
