#!/bin/sh
# Runtime performance bench, two modes:
#
# default (MODE=throughput) — the perf-trajectory bench: run
#   bench/rt_throughput.exe, a closed-loop 3-node in-process cluster
#   over loopback TCP, and write the root-level
#   BENCH_rt_throughput.json with the before/after series
#   (seed-baseline / flush-per-send / batched: msgs/s, p50/p99
#   delivery latency, minor words allocated per message).
#
#     scripts/bench_rt.sh
#     DURATION=8 WINDOW=2048 scripts/bench_rt.sh
#
# MODE=trace — the observability pipeline: boot a real 3-node cluster
#   as separate svs_node processes, record per-node JSONL traces, and
#   merge them with svs_trace into one analysis JSON (throughput,
#   latency percentiles, stability lag, purge effectiveness, anomaly
#   counts).
#
#     MODE=trace DURATION=10 RATE=200 scripts/bench_rt.sh
#
# Environment knobs:
#   MODE        throughput | trace               (default throughput)
#   DURATION    run length in seconds            (default: 6 / 10)
#   OUT         output JSON path                 (default:
#               BENCH_rt_throughput.json / BENCH_rt_trace.json)
# throughput mode:
#   WINDOW      closed-loop publisher window     (default 1024)
# trace mode:
#   RATE        publish rate, msg/s              (default 200)
#   ITEMS       distinct data items published    (default 16)
#   PORT_BASE   first TCP port; nodes use +0..+2 (default 7200)
#   ADMIN_BASE  first admin port, 0 = disabled   (default 0)
set -eu

cd "$(dirname "$0")/.."

MODE="${MODE:-throughput}"

if [ "$MODE" = "throughput" ]; then
  DURATION="${DURATION:-6}"
  WINDOW="${WINDOW:-1024}"
  OUT="${OUT:-BENCH_rt_throughput.json}"
  dune build bench/rt_throughput.exe
  ./_build/default/bench/rt_throughput.exe \
    --duration "$DURATION" --window "$WINDOW" --json "$OUT"
  exit 0
fi

DURATION="${DURATION:-10}"
RATE="${RATE:-200}"
ITEMS="${ITEMS:-16}"
PORT_BASE="${PORT_BASE:-7200}"
ADMIN_BASE="${ADMIN_BASE:-0}"
OUT="${OUT:-BENCH_rt_trace.json}"

dune build bin/svs_node.exe bin/svs_trace.exe

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

peers="--peer 0:127.0.0.1:$PORT_BASE \
  --peer 1:127.0.0.1:$((PORT_BASE + 1)) \
  --peer 2:127.0.0.1:$((PORT_BASE + 2))"

pids=""
for i in 0 1 2; do
  workload=""
  [ "$i" = 0 ] && workload="--publish $ITEMS --rate $RATE"
  admin=""
  [ "$ADMIN_BASE" != 0 ] && admin="--admin-port $((ADMIN_BASE + i))"
  # shellcheck disable=SC2086  # deliberate word splitting of flag lists
  ./_build/default/bin/svs_node.exe --me "$i" $peers $workload $admin \
    --duration "$DURATION" --trace "$dir/node$i.jsonl" \
    --flight-dump "$dir/flight-$i.jsonl" --stats-period 0 \
    > "$dir/node$i.log" 2>&1 &
  pids="$pids $!"
done

for pid in $pids; do
  wait "$pid" || { echo "bench_rt: a node exited non-zero; logs:" >&2
                   cat "$dir"/node*.log >&2; exit 1; }
done

./_build/default/bin/svs_trace.exe "$dir"/node0.jsonl "$dir"/node1.jsonl \
  "$dir"/node2.jsonl --json "$OUT"
echo "bench_rt: wrote $OUT"
