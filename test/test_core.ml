(* Tests for svs_core: the deque, the Figure 1 protocol automaton, the
   trace checker and the assembled Group stack. *)

module Dq = Svs_core.Dq
module View = Svs_core.View
module Types = Svs_core.Types
module Protocol = Svs_core.Protocol
module Checker = Svs_core.Checker
module Group = Svs_core.Group
module Msg_id = Svs_obs.Msg_id
module Annotation = Svs_obs.Annotation
module Bitvec = Svs_obs.Bitvec
module Engine = Svs_sim.Engine
module Latency = Svs_net.Latency
module Rng = Svs_sim.Rng

(* ------------------------------------------------------------------ *)
(* Dq                                                                  *)
(* ------------------------------------------------------------------ *)

let test_dq_fifo () =
  let d = Dq.create () in
  for i = 1 to 100 do
    Dq.push_back d i
  done;
  Alcotest.(check int) "length" 100 (Dq.length d);
  Alcotest.(check (option int)) "peek" (Some 1) (Dq.peek_front d);
  let drained = List.init 100 (fun _ -> Option.get (Dq.pop_front d)) in
  Alcotest.(check (list int)) "FIFO" (List.init 100 (fun i -> i + 1)) drained

let test_dq_push_front () =
  let d = Dq.create () in
  Dq.push_back d 2;
  Dq.push_front d 1;
  Dq.push_back d 3;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (Dq.to_list d)

let test_dq_filter_in_place () =
  let d = Dq.create () in
  for i = 1 to 10 do
    Dq.push_back d i
  done;
  let removed = Dq.filter_in_place (fun x -> x mod 2 = 0) d in
  Alcotest.(check int) "removed" 5 removed;
  Alcotest.(check (list int)) "kept order" [ 2; 4; 6; 8; 10 ] (Dq.to_list d)

let test_dq_wraparound () =
  let d = Dq.create () in
  (* Force head to wrap: push/pop repeatedly beyond initial capacity. *)
  for round = 0 to 20 do
    for i = 0 to 9 do
      Dq.push_back d ((round * 10) + i)
    done;
    for _ = 0 to 7 do
      ignore (Dq.pop_front d)
    done
  done;
  let l = Dq.to_list d in
  Alcotest.(check int) "kept 2 per round" (2 * 21) (List.length l);
  Alcotest.(check bool) "still sorted" true (List.sort compare l = l)

let dq_matches_list_model =
  QCheck.Test.make ~name:"dq behaves like a list queue" ~count:300
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let d = Dq.create () in
      let model = ref [] in
      List.for_all
        (fun (push, x) ->
          if push then begin
            Dq.push_back d x;
            model := !model @ [ x ];
            true
          end
          else
            let got = Dq.pop_front d in
            let expect =
              match !model with
              | [] -> None
              | y :: rest ->
                  model := rest;
                  Some y
            in
            got = expect)
        ops
      && Dq.to_list d = !model)

let test_dq_handle_remove () =
  let d = Dq.create () in
  let hs = List.init 5 (fun i -> Dq.push_back_h d (i + 1)) in
  let h3 = List.nth hs 2 in
  Alcotest.(check bool) "removed" true (Dq.remove d h3);
  Alcotest.(check (list int)) "order kept" [ 1; 2; 4; 5 ] (Dq.to_list d);
  Alcotest.(check bool) "second remove is a no-op" false (Dq.remove d h3);
  Alcotest.(check int) "length" 4 (Dq.length d);
  Alcotest.(check (option int)) "removed handle reads None" None (Dq.handle_get h3);
  Alcotest.(check (option int)) "live handle reads value" (Some 4)
    (Dq.handle_get (List.nth hs 3));
  ignore (Dq.remove d (List.nth hs 0) : bool);
  Alcotest.(check (option int)) "pop skips tombstones" (Some 2) (Dq.pop_front d)

let test_dq_handle_survives_churn () =
  (* Handles must stay valid across growth, wraparound and the lazy
     compactions triggered by accumulated tombstones. *)
  let d = Dq.create () in
  let handles = Hashtbl.create 64 in
  for i = 0 to 199 do
    Hashtbl.replace handles i (Dq.push_back_h d i);
    if i mod 3 = 2 then ignore (Dq.pop_front d : int option)
  done;
  let survivors = Dq.to_list d in
  let evens, odds = List.partition (fun x -> x mod 2 = 0) survivors in
  List.iter
    (fun x ->
      Alcotest.(check bool) "live remove succeeds" true
        (Dq.remove d (Hashtbl.find handles x)))
    evens;
  Alcotest.(check (list int)) "odd survivors in order" odds (Dq.to_list d);
  Alcotest.(check int) "length tracks removals" (List.length odds) (Dq.length d);
  Alcotest.(check bool) "popped entry's handle is inert" false
    (Dq.remove d (Hashtbl.find handles 0))

let test_dq_clear_detaches_handles () =
  let d = Dq.create () in
  let h = Dq.push_back_h d 1 in
  Dq.push_back d 2;
  Dq.clear d;
  Alcotest.(check int) "empty" 0 (Dq.length d);
  Alcotest.(check bool) "stale handle inert" false (Dq.remove d h);
  Alcotest.(check (option int)) "stale handle reads None" None (Dq.handle_get h);
  Dq.push_back d 3;
  Alcotest.(check (list int)) "queue reusable after clear" [ 3 ] (Dq.to_list d)

(* ------------------------------------------------------------------ *)
(* Protocol unit tests (manual synchronous router)                      *)
(* ------------------------------------------------------------------ *)

type proc = { pid : int; p : int Protocol.t }

(* Route all pending Send outputs synchronously until quiescence;
   returns the non-Send outputs in occurrence order. *)
let route (procs : proc list) =
  let acc = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun { pid; p } ->
        List.iter
          (fun o ->
            progress := true;
            match o with
            | Types.Send { dst; wire } -> (
                match List.find_opt (fun pr -> pr.pid = dst) procs with
                | Some target -> Protocol.receive target.p ~src:pid wire
                | None -> ())
            | other -> acc := (pid, other) :: !acc)
          (Protocol.take_outputs p))
      procs
  done;
  List.rev !acc

let make_procs ?(semantic = true) ?(suspected = fun _ -> false) n =
  let members = List.init n Fun.id in
  let view = View.initial ~members in
  List.map
    (fun pid ->
      { pid; p = Protocol.create ~me:pid ~initial_view:view ~semantic ~suspects:suspected () })
    members

let drain_data p =
  let rec go acc =
    match Protocol.deliver p with
    | None -> List.rev acc
    | Some (Types.Data d) -> go (d.Types.payload :: acc)
    | Some (Types.View_change _) -> go acc
  in
  go []

let tag_ann item = Annotation.Tag item

let test_proto_multicast_reaches_all () =
  let procs = make_procs 3 in
  let p0 = (List.hd procs).p in
  (match Protocol.multicast p0 41 with Ok _ -> () | Error _ -> Alcotest.fail "multicast");
  (match Protocol.multicast p0 42 with Ok _ -> () | Error _ -> Alcotest.fail "multicast");
  ignore (route procs);
  List.iter
    (fun { pid; p } ->
      Alcotest.(check (list int)) (Printf.sprintf "proc %d FIFO delivery" pid) [ 41; 42 ]
        (drain_data p))
    procs

let test_proto_purge_in_queue () =
  let procs = make_procs 2 in
  let p0 = (List.hd procs).p in
  (* Three updates of the same item: only the last survives in queues
     that have not been consumed. *)
  List.iter (fun v -> ignore (Protocol.multicast p0 ~ann:(tag_ann 7) v)) [ 1; 2; 3 ];
  ignore (route procs);
  List.iter
    (fun { pid; p } ->
      Alcotest.(check (list int)) (Printf.sprintf "proc %d purged to last" pid) [ 3 ]
        (drain_data p);
      Alcotest.(check int) (Printf.sprintf "proc %d purge count" pid) 2 (Protocol.purged_count p))
    procs

let test_proto_fast_consumer_sees_all () =
  let procs = make_procs 2 in
  let p0 = (List.hd procs).p
  and p1 = (List.nth procs 1).p in
  ignore (Protocol.multicast p0 ~ann:(tag_ann 7) 1);
  ignore (route procs);
  Alcotest.(check (list int)) "fast consumer got first" [ 1 ] (drain_data p1);
  ignore (Protocol.multicast p0 ~ann:(tag_ann 7) 2);
  ignore (route procs);
  Alcotest.(check (list int)) "and the second" [ 2 ] (drain_data p1)

let test_proto_no_purge_when_vs () =
  let procs = make_procs ~semantic:false 2 in
  let p0 = (List.hd procs).p in
  List.iter (fun v -> ignore (Protocol.multicast p0 ~ann:(tag_ann 7) v)) [ 1; 2; 3 ];
  ignore (route procs);
  let p1 = (List.nth procs 1).p in
  Alcotest.(check (list int)) "plain VS keeps everything" [ 1; 2; 3 ] (drain_data p1);
  Alcotest.(check int) "no purging" 0 (Protocol.purged_count p1)

let decide_first procs outs =
  (* Feed the first Propose decision to every process. *)
  match
    List.find_map
      (function _, Types.Propose { view_id; proposal } -> Some (view_id, proposal) | _ -> None)
      outs
  with
  | None -> Alcotest.fail "no proposal emitted"
  | Some (view_id, proposal) ->
      List.iter (fun { p; _ } -> Protocol.decided p ~view_id proposal) procs;
      route procs

let test_proto_view_change_basic () =
  let procs = make_procs 3 in
  let p0 = (List.hd procs).p in
  ignore (Protocol.multicast p0 10);
  ignore (route procs);
  Protocol.trigger_view_change p0 ~leave:[ 2 ] ();
  let outs = route procs in
  (* All three (unsuspected) must have sent PREDs, then proposals. *)
  let installs = decide_first procs outs in
  let installed =
    List.filter_map (function pid, Types.Installed v -> Some (pid, v) | _ -> None) installs
  in
  Alcotest.(check int) "two survivors installed" 2 (List.length installed);
  List.iter
    (fun (_, v) -> Alcotest.(check (list int)) "membership without 2" [ 0; 1 ] v.View.members)
    installed;
  let excluded =
    List.filter_map (function pid, Types.Excluded _ -> Some pid | _ -> None) installs
  in
  Alcotest.(check (list int)) "process 2 excluded" [ 2 ] excluded;
  (* Survivors see the data then the view marker. *)
  let p1 = (List.nth procs 1).p in
  (match Protocol.deliver p1 with
  | Some (Types.Data d) -> Alcotest.(check int) "data first" 10 d.Types.payload
  | _ -> Alcotest.fail "expected data");
  (match Protocol.deliver p1 with
  | Some (Types.View_change v) -> Alcotest.(check int) "then view 1" 1 v.View.id
  | _ -> Alcotest.fail "expected view marker")

let test_proto_multicast_blocked_during_view_change () =
  let procs = make_procs 3 in
  let p0 = (List.hd procs).p in
  Protocol.trigger_view_change p0 ~leave:[] ();
  (* Do not route: p0 is blocked now. *)
  (match Protocol.multicast p0 99 with
  | Error `Blocked -> ()
  | Ok _ | Error `Not_member -> Alcotest.fail "expected Blocked");
  Alcotest.(check bool) "blocked flag" true (Protocol.blocked p0)

let test_proto_view_change_flushes_unconsumed () =
  (* A slow process that consumed nothing must still deliver the agreed
     messages before the view marker. *)
  let procs = make_procs 2 in
  let p0 = (List.hd procs).p
  and p1 = (List.nth procs 1).p in
  List.iter (fun v -> ignore (Protocol.multicast p0 v)) [ 1; 2; 3 ];
  ignore (route procs);
  Protocol.trigger_view_change p0 ~leave:[] ();
  let outs = route procs in
  ignore (decide_first procs outs);
  Alcotest.(check (list int)) "all flushed before marker" [ 1; 2; 3 ] (drain_data p1)

let test_proto_svs_pred_injection () =
  (* p1 never received m (we bypass routing selectively): after the view
     change, the agreed pred set must inject it. *)
  let procs = make_procs 2 in
  let p0 = (List.hd procs).p
  and p1 = (List.nth procs 1).p in
  (* Multicast but deliberately drop the Send to p1. *)
  (match Protocol.multicast p0 77 with Ok _ -> () | Error _ -> Alcotest.fail "mc");
  let outs0 = Protocol.take_outputs p0 in
  Alcotest.(check int) "one send" 1
    (List.length (List.filter (function Types.Send _ -> true | _ -> false) outs0));
  (* Now run a view change; p0's PRED contains 77. *)
  Protocol.trigger_view_change p0 ~leave:[] ();
  let outs = route procs in
  ignore (decide_first procs outs);
  Alcotest.(check (list int)) "injected from pred set" [ 77 ] (drain_data p1)

let test_proto_stale_data_dropped_after_view () =
  let procs = make_procs 2 in
  let p0 = (List.hd procs).p
  and p1 = (List.nth procs 1).p in
  (* Craft a data message tagged with view 0 and deliver it after the
     group moved to view 1: it must be ignored (its fate was settled by
     the agreed pred set). *)
  Protocol.trigger_view_change p0 ~leave:[] ();
  let outs = route procs in
  ignore (decide_first procs outs);
  Alcotest.(check int) "now in view 1" 1 (Protocol.current_view p1).View.id;
  let stale =
    Types.Wdata
      {
        Types.id = Msg_id.make ~sender:0 ~sn:999;
        view_id = 0;
        payload = 5;
        ann = Annotation.Unrelated;
      }
  in
  Protocol.receive p1 ~src:0 stale;
  ignore (route procs);
  Alcotest.(check (list int)) "stale dropped"
    [] (drain_data p1 |> List.filter (fun v -> v = 5))

let test_proto_future_view_data_stashed () =
  let procs = make_procs 2 in
  let p1 = (List.nth procs 1).p in
  (* A message from the future view arrives before p1 has installed it:
     it must be stashed, then delivered after installation. *)
  let future =
    Types.Wdata
      {
        Types.id = Msg_id.make ~sender:0 ~sn:50;
        view_id = 1;
        payload = 123;
        ann = Annotation.Unrelated;
      }
  in
  Protocol.receive p1 ~src:0 future;
  Alcotest.(check (list int)) "not delivered yet" [] (drain_data p1);
  let p0 = (List.hd procs).p in
  Protocol.trigger_view_change p0 ~leave:[] ();
  let outs = route procs in
  ignore (decide_first procs outs);
  Alcotest.(check (list int)) "stash replayed after install" [ 123 ] (drain_data p1)

let test_proto_not_member_multicast () =
  let members = [ 0; 1 ] in
  let view = View.initial ~members in
  let outsider =
    Protocol.create ~me:7 ~initial_view:view ~semantic:true ~suspects:(fun _ -> false) ()
  in
  match Protocol.multicast outsider 1 with
  | Error `Not_member -> ()
  | Ok _ | Error `Blocked -> Alcotest.fail "expected Not_member"

let test_proto_suspected_member_skipped_in_t7 () =
  (* With process 2 suspected and silent, the others can still complete
     the view change (t7 waits only for unsuspected members). *)
  let suspected = ref (fun _ -> false) in
  let procs = make_procs ~suspected:(fun p -> !suspected p) 3 in
  let alive = List.filter (fun pr -> pr.pid <> 2) procs in
  suspected := (fun p -> p = 2);
  let p0 = (List.hd procs).p in
  ignore (Protocol.multicast p0 5);
  ignore (route alive);
  Protocol.trigger_view_change p0 ~leave:[ 2 ] ();
  let outs = route alive in
  let installs = decide_first alive outs in
  let installed = List.filter (function _, Types.Installed _ -> true | _ -> false) installs in
  Alcotest.(check int) "both survivors installed" 2 (List.length installed)

let test_proto_local_pred_tracking () =
  (* accepted_in_view = delivered ++ queued, both restricted to the
     current view — exactly what t5 would put in the PRED message. *)
  let procs = make_procs 2 in
  let p0 = (List.hd procs).p
  and p1 = (List.nth procs 1).p in
  List.iter (fun v -> ignore (Protocol.multicast p0 v)) [ 1; 2; 3 ];
  ignore (route procs);
  (* p1 consumes one message; the other two stay queued. *)
  (match Protocol.deliver p1 with
  | Some (Types.Data d) -> Alcotest.(check int) "consumed first" 1 d.Types.payload
  | _ -> Alcotest.fail "expected data");
  let pred = List.map (fun d -> d.Types.payload) (Protocol.accepted_in_view p1) in
  Alcotest.(check (list int)) "delivered ++ queued" [ 1; 2; 3 ] pred

let test_proto_voluntary_leave () =
  (* A member can ask to leave (§3.2: "processes that voluntarily want
     to leave"): it initiates a view change naming itself. *)
  let procs = make_procs 3 in
  let p2 = (List.nth procs 2).p in
  Protocol.trigger_view_change p2 ~leave:[ 2 ] ();
  let outs = route procs in
  let installs = decide_first procs outs in
  Alcotest.(check (list int)) "self excluded"
    [ 2 ]
    (List.filter_map (function pid, Types.Excluded _ -> Some pid | _ -> None) installs);
  Alcotest.(check (list int)) "survivors" [ 0; 1 ]
    (Protocol.current_view (List.hd procs).p).View.members

let test_proto_deterministic () =
  (* Identical input sequences produce identical output sequences. *)
  let run () =
    let procs = make_procs 3 in
    let p0 = (List.hd procs).p in
    List.iter (fun v -> ignore (Protocol.multicast p0 ~ann:(tag_ann (v mod 2)) v)) [ 1; 2; 3; 4 ];
    ignore (route procs);
    Protocol.trigger_view_change p0 ~leave:[ 2 ] ();
    let outs = route procs in
    ignore (decide_first procs outs);
    List.map (fun { p; _ } -> drain_data p) procs
  in
  Alcotest.(check bool) "two runs agree" true (run () = run ())

(* Differential test: the protocol's incremental purge must leave the
   same queue contents as a naive fixpoint purge over the full set. *)
let purge_matches_fixpoint_model =
  QCheck.Test.make ~name:"incremental purge matches fixpoint model" ~count:200
    QCheck.(pair small_int (list_of_size Gen.(int_range 1 40) (pair (int_bound 4) (int_bound 2))))
    (fun (seed, sends) ->
      ignore seed;
      (* Single sender (0) multicasts tagged messages; receiver 1 never
         consumes, so its queue purges incrementally. *)
      let procs = make_procs 2 in
      let p0 = (List.hd procs).p in
      let annotated =
        List.mapi (fun i (tag, _) -> (i, tag)) sends
      in
      List.iter (fun (i, tag) -> ignore (Protocol.multicast p0 ~ann:(tag_ann tag) i)) annotated;
      ignore (route procs);
      let p1 = (List.nth procs 1).p in
      let queue = drain_data p1 in
      (* Model: keep message i iff no later message with the same tag. *)
      let expected =
        List.filter
          (fun (i, tag) ->
            not (List.exists (fun (j, tag') -> j > i && tag' = tag) annotated))
          annotated
        |> List.map fst
      in
      queue = expected)

(* Cross-sender obsolescence through enumeration annotations: member 1
   acknowledges member 0's readings with messages that obsolete them. *)
let test_proto_cross_sender_enum () =
  let procs = make_procs 2 in
  let p0 = (List.hd procs).p
  and p1 = (List.nth procs 1).p in
  let d0 =
    match Protocol.multicast p0 100 with Ok d -> d | Error _ -> Alcotest.fail "mc"
  in
  ignore (route procs);
  (* p1 consumed p0's message and replies with a digest that makes the
     original obsolete. *)
  Alcotest.(check (list int)) "p1 got it" [ 100 ] (drain_data p1);
  ignore (Protocol.multicast p1 ~ann:(Annotation.Enum [ d0.Types.id ]) 200);
  ignore (route procs);
  (* p0 never consumed its own copy of 100: the digest purged it. *)
  Alcotest.(check (list int)) "original purged at p0 by the digest" [ 200 ] (drain_data p0)

(* ------------------------------------------------------------------ *)
(* Protocol hardening                                                   *)
(* ------------------------------------------------------------------ *)

let test_proto_duplicate_decision_ignored () =
  let procs = make_procs 2 in
  let p0 = (List.hd procs).p in
  Protocol.trigger_view_change p0 ~leave:[] ();
  let outs = route procs in
  ignore (decide_first procs outs);
  let view_after = Protocol.current_view p0 in
  (* Replay the stale decision: it must be ignored. *)
  (match
     List.find_map
       (function _, Types.Propose { view_id; proposal } -> Some (view_id, proposal) | _ -> None)
       outs
   with
  | Some (view_id, proposal) -> Protocol.decided p0 ~view_id proposal
  | None -> Alcotest.fail "no proposal");
  ignore (route procs);
  Alcotest.(check bool) "view unchanged" true (View.equal view_after (Protocol.current_view p0))

let test_proto_receive_when_dead () =
  let procs = make_procs 2 in
  let p0 = (List.hd procs).p in
  Protocol.trigger_view_change p0 ~leave:[ 1 ] ();
  let outs = route procs in
  (match
     List.find_map
       (function _, Types.Propose { view_id; proposal } -> Some (view_id, proposal) | _ -> None)
       outs
   with
  | Some (view_id, proposal) -> List.iter (fun { p; _ } -> Protocol.decided p ~view_id proposal) procs
  | None -> Alcotest.fail "no proposal");
  let p1 = (List.nth procs 1).p in
  Alcotest.(check bool) "p1 excluded" false (Protocol.alive p1);
  (* Feeding traffic to a dead protocol must be inert. *)
  Protocol.receive p1 ~src:0
    (Types.Wdata
       { Types.id = Msg_id.make ~sender:0 ~sn:99; view_id = 1; payload = 1; ann = Annotation.Unrelated });
  Alcotest.(check (list int)) "no deliveries" [] (drain_data p1);
  match Protocol.multicast p1 5 with
  | Error `Not_member -> ()
  | Ok _ | Error `Blocked -> Alcotest.fail "dead protocol accepted a multicast"

let test_proto_trigger_while_blocked_ignored () =
  let procs = make_procs 3 in
  let p0 = (List.hd procs).p in
  Protocol.trigger_view_change p0 ~leave:[ 2 ] ();
  (* A second trigger while blocked must not restart the exchange. *)
  Protocol.trigger_view_change p0 ~leave:[ 1 ] ();
  let outs = route procs in
  ignore (decide_first procs outs);
  (* The first leave list won: member 1 is still in. *)
  Alcotest.(check (list int)) "membership from first trigger" [ 0; 1 ]
    (Protocol.current_view p0).View.members

(* ------------------------------------------------------------------ *)
(* Checker unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let meta ?(ann = Annotation.Unrelated) ?(view = 0) sender sn =
  { Checker.id = Msg_id.make ~sender ~sn; ann; view_id = view }

let test_checker_accepts_clean_trace () =
  let c = Checker.create () in
  let v0 = View.initial ~members:[ 0; 1 ] in
  Checker.record_install c ~p:0 v0;
  Checker.record_install c ~p:1 v0;
  let m = meta 0 0 in
  Checker.record_multicast c m;
  Checker.record_delivery c ~p:0 m;
  Checker.record_delivery c ~p:1 m;
  Alcotest.(check int) "no violations" 0 (List.length (Checker.verify c))

let test_checker_detects_creation () =
  let c = Checker.create () in
  Checker.record_install c ~p:0 (View.initial ~members:[ 0 ]);
  Checker.record_delivery c ~p:0 (meta 0 0);
  Alcotest.(check bool) "creation detected" true (Checker.verify c <> [])

let test_checker_detects_duplication () =
  let c = Checker.create () in
  Checker.record_install c ~p:0 (View.initial ~members:[ 0 ]);
  let m = meta 0 0 in
  Checker.record_multicast c m;
  Checker.record_delivery c ~p:0 m;
  Checker.record_delivery c ~p:0 m;
  Alcotest.(check bool) "duplication detected" true (Checker.verify c <> [])

let test_checker_detects_fifo_violation () =
  let c = Checker.create () in
  Checker.record_install c ~p:0 (View.initial ~members:[ 0 ]);
  let m0 = meta 0 0 and m1 = meta 0 1 in
  Checker.record_multicast c m0;
  Checker.record_multicast c m1;
  Checker.record_delivery c ~p:0 m1;
  Checker.record_delivery c ~p:0 m0;
  Alcotest.(check bool) "fifo violation detected" true (Checker.verify c <> [])

let test_checker_detects_svs_hole () =
  (* p delivers m in view 0 and both install view 1, but q never covers
     m: SVS violation. *)
  let c = Checker.create () in
  let v0 = View.initial ~members:[ 0; 1 ] in
  let v1 = View.make ~id:1 ~members:[ 0; 1 ] in
  List.iter (fun p -> Checker.record_install c ~p v0) [ 0; 1 ];
  let m = meta 0 0 in
  Checker.record_multicast c m;
  Checker.record_delivery c ~p:0 m;
  List.iter (fun p -> Checker.record_install c ~p v1) [ 0; 1 ];
  Alcotest.(check bool) "hole detected" true (Checker.verify c <> [])

let test_checker_accepts_cover_instead () =
  (* q skips m but delivers a message that obsoletes it: legal SVS. *)
  let c = Checker.create () in
  let v0 = View.initial ~members:[ 0; 1 ] in
  let v1 = View.make ~id:1 ~members:[ 0; 1 ] in
  List.iter (fun p -> Checker.record_install c ~p v0) [ 0; 1 ];
  let m0 = meta ~ann:(Annotation.Tag 3) 0 0 in
  let m1 = meta ~ann:(Annotation.Tag 3) 0 1 in
  Checker.record_multicast c m0;
  Checker.record_multicast c m1;
  (* p delivers both; q only the cover. *)
  Checker.record_delivery c ~p:0 m0;
  Checker.record_delivery c ~p:0 m1;
  Checker.record_delivery c ~p:1 m1;
  List.iter (fun p -> Checker.record_install c ~p v1) [ 0; 1 ];
  Alcotest.(check (list string)) "cover satisfies SVS" []
    (List.map Checker.violation_to_string (Checker.verify c))

let test_checker_transitive_cover () =
  (* q delivers only the end of a chain m0 ≺ m1 ≺ m2: still legal. *)
  let c = Checker.create () in
  let v0 = View.initial ~members:[ 0; 1 ] in
  let v1 = View.make ~id:1 ~members:[ 0; 1 ] in
  List.iter (fun p -> Checker.record_install c ~p v0) [ 0; 1 ];
  let bm1 = Bitvec.create ~k:4 in
  Bitvec.set bm1 1;
  (* m2's bitmap only names m1 (distance 1) — NOT m0: the closure must
     still accept m2 as a cover of m0. *)
  let m0 = meta 0 0 in
  let m1 = { (meta 0 1) with Checker.ann = Annotation.Kenum bm1 } in
  let bm2 = Bitvec.create ~k:4 in
  Bitvec.set bm2 1;
  let m2 = { (meta 0 2) with Checker.ann = Annotation.Kenum bm2 } in
  List.iter (Checker.record_multicast c) [ m0; m1; m2 ];
  List.iter (Checker.record_delivery c ~p:0) [ m0; m1; m2 ];
  Checker.record_delivery c ~p:1 m2;
  List.iter (fun p -> Checker.record_install c ~p v1) [ 0; 1 ];
  Alcotest.(check (list string)) "closure covers" []
    (List.map Checker.violation_to_string (Checker.verify c))

let test_checker_strict_vs_flags_purge () =
  let c = Checker.create () in
  let v0 = View.initial ~members:[ 0; 1 ] in
  let v1 = View.make ~id:1 ~members:[ 0; 1 ] in
  List.iter (fun p -> Checker.record_install c ~p v0) [ 0; 1 ];
  let m0 = meta ~ann:(Annotation.Tag 3) 0 0 in
  let m1 = meta ~ann:(Annotation.Tag 3) 0 1 in
  Checker.record_multicast c m0;
  Checker.record_multicast c m1;
  Checker.record_delivery c ~p:0 m0;
  Checker.record_delivery c ~p:0 m1;
  Checker.record_delivery c ~p:1 m1;
  List.iter (fun p -> Checker.record_install c ~p v1) [ 0; 1 ];
  Alcotest.(check bool) "SVS ok" true (Checker.verify c = []);
  Alcotest.(check bool) "strict VS flags the omission" true (Checker.verify_strict_vs c <> [])

(* A crash-rejoin shows up as a view-id gap in the rejoiner's log.  The
   pairwise clauses (SVS, FIFO-SR ii, strict VS) must not quantify
   across the gap: the survivor's deliveries in the views the rejoiner
   missed are not owed to the dead incarnation. *)
let test_checker_incarnation_gap () =
  let c = Checker.create () in
  let v0 = View.initial ~members:[ 0; 1 ] in
  let v1 = View.make ~id:1 ~members:[ 0 ] in
  let v2 = View.make ~id:2 ~members:[ 0; 1 ] in
  List.iter (fun p -> Checker.record_install c ~p v0) [ 0; 1 ];
  (* 1 crashes; 0 excludes it and delivers m alone in v1. *)
  Checker.record_install c ~p:0 v1;
  let m = meta ~view:1 0 0 in
  Checker.record_multicast c m;
  Checker.record_delivery c ~p:0 m;
  (* 1 rejoins at v2: its log jumps v0 -> v2 (incarnation gap). *)
  Checker.record_install c ~p:0 v2;
  Checker.record_install c ~p:1 v2;
  Alcotest.(check (list string)) "gap not quantified across" []
    (List.map Checker.violation_to_string (Checker.verify c));
  (* Same execution in strict-VS terms must also hold: the missed
     delivery sits between non-consecutive ids of 1's log. *)
  Alcotest.(check (list string)) "strict VS also skips the gap" []
    (List.map Checker.violation_to_string (Checker.verify_strict_vs c))

(* Park -> merge convergence: check_converged binds every survivor to
   the final primary view.  A parked minority member that never caught
   up is flagged; once it installs the final view the complaint goes
   away. *)
let test_checker_park_merge_convergence () =
  let c = Checker.create () in
  let v0 = View.initial ~members:[ 0; 1; 2 ] in
  let v1 = View.make ~id:1 ~members:[ 0; 1 ] in
  List.iter (fun p -> Checker.record_install c ~p v0) [ 0; 1; 2 ];
  (* Partition: majority {0,1} moves on, 2 parks (installs nothing). *)
  List.iter (fun p -> Checker.record_install c ~p v1) [ 0; 1 ];
  Alcotest.(check bool) "no safety violation while parked" true
    (Checker.verify c = []);
  (match Checker.check_converged c ~survivors:[ 0; 1; 2 ] with
  | [ Checker.Not_converged { p = 2; last_view_id = 0; final_view_id = 1 } ] ->
      ()
  | other ->
      Alcotest.failf "expected parked 2 flagged, got [%s]"
        (String.concat "; " (List.map Checker.violation_to_string other)));
  (* Heal: 2 merges back by installing the final primary view. *)
  let v2 = View.make ~id:2 ~members:[ 0; 1; 2 ] in
  List.iter (fun p -> Checker.record_install c ~p v2) [ 0; 1; 2 ];
  Alcotest.(check (list string)) "merge converges everyone" []
    (List.map Checker.violation_to_string
       (Checker.check_converged c ~survivors:[ 0; 1; 2 ]))

(* With an empty relation (every annotation Unrelated) SVS *is* VS:
   verify and verify_strict_vs must agree, on clean and broken logs
   alike (the paper's reduction claim, checked at the oracle level). *)
let test_checker_strict_vs_equals_verify_on_empty_relation () =
  let clean = Checker.create () in
  let v0 = View.initial ~members:[ 0; 1 ] in
  let v1 = View.make ~id:1 ~members:[ 0; 1 ] in
  List.iter (fun p -> Checker.record_install clean ~p v0) [ 0; 1 ];
  let m0 = meta 0 0 in
  Checker.record_multicast clean m0;
  Checker.record_delivery clean ~p:0 m0;
  Checker.record_delivery clean ~p:1 m0;
  List.iter (fun p -> Checker.record_install clean ~p v1) [ 0; 1 ];
  Alcotest.(check (list string)) "clean: both empty" []
    (List.map Checker.violation_to_string (Checker.verify_strict_vs clean));
  let broken = Checker.create () in
  List.iter (fun p -> Checker.record_install broken ~p v0) [ 0; 1 ];
  let m1 = meta 0 1 in
  Checker.record_multicast broken m1;
  Checker.record_delivery broken ~p:0 m1;
  (* 1 never delivers m1 yet installs v1: a hole with no possible
     cover, so the SVS clause itself must fire — not just strict VS. *)
  List.iter (fun p -> Checker.record_install broken ~p v1) [ 0; 1 ];
  Alcotest.(check bool) "broken: SVS clause fires" true
    (Checker.verify broken <> []);
  Alcotest.(check bool) "broken: strict VS fires too" true
    (Checker.verify_strict_vs broken <> [])

(* ------------------------------------------------------------------ *)
(* Group integration                                                    *)
(* ------------------------------------------------------------------ *)

let drain_everyone cluster =
  List.iter (fun m -> ignore (Group.deliver_all m)) (Group.members cluster)

let check_no_violations ?(strict = false) cluster =
  let c = Group.checker cluster in
  let violations = if strict then Checker.verify_strict_vs c else Checker.verify c in
  Alcotest.(check (list string)) "checker clean" []
    (List.map Checker.violation_to_string violations)

let test_group_basic_multicast () =
  let e = Engine.create ~seed:1 () in
  let cluster =
    Group.create_cluster e ~members:[ 0; 1; 2; 3 ]
      ~latency:(Latency.Uniform { lo = 0.001; hi = 0.01 })
      ()
  in
  let m0 = Group.member cluster 0 in
  for i = 1 to 20 do
    match Group.multicast m0 i with Ok _ -> () | Error _ -> Alcotest.fail "multicast failed"
  done;
  Engine.run e;
  List.iter
    (fun m ->
      let data =
        List.filter_map
          (function Types.Data d -> Some d.Types.payload | Types.View_change _ -> None)
          (Group.deliver_all m)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "member %d got all in order" (Group.id m))
        (List.init 20 (fun i -> i + 1))
        data)
    (Group.members cluster);
  check_no_violations ~strict:true cluster

let test_group_crash_triggers_view_change () =
  let e = Engine.create ~seed:2 () in
  let cluster =
    Group.create_cluster e ~members:[ 0; 1; 2; 3 ]
      ~latency:(Latency.Uniform { lo = 0.001; hi = 0.01 })
      ()
  in
  let m0 = Group.member cluster 0 in
  for i = 1 to 10 do
    ignore (Group.multicast m0 i)
  done;
  ignore (Engine.schedule e ~delay:0.5 (fun () -> Group.crash cluster 3));
  Engine.run e;
  drain_everyone cluster;
  List.iter
    (fun m ->
      if Group.id m <> 3 then begin
        let v = Group.view m in
        Alcotest.(check int) (Printf.sprintf "member %d in view 1" (Group.id m)) 1 v.View.id;
        Alcotest.(check (list int)) "membership excludes 3" [ 0; 1; 2 ] v.View.members
      end)
    (Group.members cluster);
  check_no_violations cluster

let test_group_purging_under_slow_consumer () =
  let e = Engine.create ~seed:3 () in
  let config = { Group.default_config with buffer_capacity = Some 8 } in
  let cluster =
    Group.create_cluster e ~members:[ 0; 1 ] ~latency:(Latency.Constant 0.001) ~config ()
  in
  let producer = Group.member cluster 0 in
  let slow = Group.member cluster 1 in
  (* Producer: 200 updates of a handful of hot items; slow consumer
     never consumes during the run. *)
  let rng = Rng.create ~seed:7 in
  let sent = ref 0 in
  ignore
    (Engine.every e ~period:0.01 (fun () ->
         let item = Rng.int rng 3 in
         (match Group.multicast producer ~ann:(Annotation.Tag item) !sent with
         | Ok _ -> incr sent
         | Error _ -> ());
         !sent < 200));
  Engine.run e;
  Alcotest.(check bool) "messages were purged" true (Group.purged slow > 0);
  Alcotest.(check bool) "queue bounded" true (Group.pending slow <= 8);
  drain_everyone cluster;
  check_no_violations cluster

let test_group_vs_mode_no_purging () =
  let e = Engine.create ~seed:4 () in
  let config = { Group.default_config with semantic = false } in
  let cluster =
    Group.create_cluster e ~members:[ 0; 1; 2 ] ~latency:(Latency.Constant 0.001) ~config ()
  in
  let m0 = Group.member cluster 0 in
  for i = 1 to 30 do
    ignore (Group.multicast m0 ~ann:(Annotation.Tag 1) i)
  done;
  ignore (Engine.schedule e ~delay:0.5 (fun () -> Group.crash cluster 2));
  Engine.run e;
  drain_everyone cluster;
  List.iter (fun m -> Alcotest.(check int) "nothing purged" 0 (Group.purged m))
    (Group.members cluster);
  check_no_violations ~strict:true cluster

let test_group_chandra_toueg_heartbeats () =
  let e = Engine.create ~seed:5 () in
  let config =
    {
      Group.default_config with
      detector = Group.Heartbeats Svs_detector.Heartbeat.default_config;
      consensus = Group.Chandra_toueg;
    }
  in
  let cluster =
    Group.create_cluster e ~members:[ 0; 1; 2; 3 ]
      ~latency:(Latency.Uniform { lo = 0.001; hi = 0.005 })
      ~config ()
  in
  let m0 = Group.member cluster 0 in
  for i = 1 to 10 do
    ignore (Group.multicast m0 i)
  done;
  ignore (Engine.schedule e ~delay:0.5 (fun () -> Group.crash cluster 2));
  Engine.run ~until:30.0 e;
  drain_everyone cluster;
  List.iter
    (fun m ->
      if Group.id m <> 2 then begin
        Alcotest.(check bool)
          (Printf.sprintf "member %d moved past view 0" (Group.id m))
          true
          ((Group.view m).View.id >= 1);
        Alcotest.(check bool) "membership excludes 2" false (View.mem 2 (Group.view m))
      end)
    (Group.members cluster);
  check_no_violations cluster

let test_group_two_successive_view_changes () =
  let e = Engine.create ~seed:6 () in
  let cluster =
    Group.create_cluster e ~members:[ 0; 1; 2; 3; 4 ] ~latency:(Latency.Constant 0.002) ()
  in
  let m0 = Group.member cluster 0 in
  ignore
    (Engine.every e ~period:0.05 (fun () ->
         ignore (Group.multicast m0 ~ann:(Annotation.Tag 1) 0);
         Engine.now e < 3.0));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> Group.crash cluster 4));
  ignore (Engine.schedule e ~delay:2.0 (fun () -> Group.crash cluster 3));
  Engine.run ~until:5.0 e;
  drain_everyone cluster;
  List.iter
    (fun m ->
      if Group.id m <= 2 then begin
        Alcotest.(check int) (Printf.sprintf "member %d view" (Group.id m)) 2
          (Group.view m).View.id;
        Alcotest.(check (list int)) "final membership" [ 0; 1; 2 ] (Group.view m).View.members
      end)
    (Group.members cluster);
  check_no_violations cluster

let test_group_stability_gc () =
  (* With stability gossip on, delivered messages that everyone has
     received are trimmed from the PRED bookkeeping, so the potential
     view-change flush stays small on a long-running group. *)
  let e = Engine.create ~seed:8 () in
  let config = { Group.default_config with stability_period = Some 0.1 } in
  let cluster =
    Group.create_cluster e ~members:[ 0; 1; 2 ] ~latency:(Latency.Constant 0.001) ~config ()
  in
  let m0 = Group.member cluster 0 in
  ignore
    (Engine.every e ~period:0.01 (fun () ->
         ignore (Group.multicast m0 !(ref 0));
         List.iter (fun m -> ignore (Group.deliver_all m)) (Group.members cluster);
         Engine.now e < 5.0));
  Engine.run ~until:6.0 e;
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "member %d trimmed stable messages (%d)" (Group.id m)
           (Group.stable_trimmed m))
        true
        (Group.stable_trimmed m > 300);
      Alcotest.(check bool)
        (Printf.sprintf "member %d PRED stays small (%d)" (Group.id m) (Group.pred_size m))
        true
        (Group.pred_size m < 100))
    (Group.members cluster);
  check_no_violations cluster

let test_group_overflow_exclusion () =
  (* A member that stops consuming long enough gets expelled once its
     backlog exceeds the configured bound (§3.2's buffer-space
     trigger); the group survives and stays safe. *)
  let e = Engine.create ~seed:9 () in
  let config =
    {
      Group.default_config with
      buffer_capacity = Some 5;
      overflow_exclusion =
        Some { Group.backlog_limit = 20; patience = 0.1; check_period = 0.02 };
    }
  in
  let cluster =
    Group.create_cluster e ~members:[ 0; 1; 2 ] ~latency:(Latency.Constant 0.001) ~config ()
  in
  let m0 = Group.member cluster 0 in
  (* Members 0 and 1 consume; member 2 never does. *)
  ignore
    (Engine.every e ~period:0.005 (fun () ->
         ignore (Group.multicast m0 0);
         ignore (Group.deliver_all m0);
         ignore (Group.deliver_all (Group.member cluster 1));
         Engine.now e < 3.0));
  Engine.run ~until:4.0 e;
  List.iter (fun m -> ignore (Group.deliver_all m)) (Group.members cluster);
  Alcotest.(check (list int)) "member 2 expelled" [ 0; 1 ] (Group.view m0).View.members;
  Alcotest.(check bool) "survivors moved on" true ((Group.view m0).View.id >= 1);
  check_no_violations cluster

let test_group_partition_heals () =
  (* A transient partition delays messages but loses nothing (reliable
     channels); after healing, everything is delivered and safe. *)
  let e = Engine.create ~seed:10 () in
  let cluster =
    Group.create_cluster e ~members:[ 0; 1; 2 ] ~latency:(Latency.Constant 0.001) ()
  in
  let m0 = Group.member cluster 0 in
  for i = 1 to 5 do
    ignore (Group.multicast m0 i)
  done;
  Group.partition cluster 0 2;
  ignore
    (Engine.schedule e ~delay:0.1 (fun () ->
         for i = 6 to 10 do
           ignore (Group.multicast m0 i)
         done));
  ignore (Engine.schedule e ~delay:0.5 (fun () -> Group.heal cluster 0 2));
  Engine.run e;
  List.iter
    (fun m ->
      let data =
        List.filter_map
          (function Types.Data d -> Some d.Types.payload | Types.View_change _ -> None)
          (Group.deliver_all m)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "member %d got everything in order" (Group.id m))
        (List.init 10 (fun i -> i + 1))
        data)
    (Group.members cluster);
  check_no_violations ~strict:true cluster

let test_group_partition_during_view_change () =
  (* The view-change initiator is partitioned from one member right as
     the change starts; reliable channels hold the INIT/PRED traffic
     until the heal, after which the change completes. *)
  let e = Engine.create ~seed:11 () in
  let config = { Group.default_config with consensus = Group.Chandra_toueg } in
  let cluster =
    Group.create_cluster e ~members:[ 0; 1; 2; 3 ] ~latency:(Latency.Constant 0.002)
      ~config ()
  in
  let m0 = Group.member cluster 0 in
  ignore (Group.multicast m0 1);
  ignore
    (Engine.schedule e ~delay:0.1 (fun () ->
         Group.partition cluster 0 3;
         Group.crash cluster 2));
  ignore (Engine.schedule e ~delay:1.5 (fun () -> Group.heal cluster 0 3));
  Engine.run ~until:20.0 e;
  List.iter (fun m -> ignore (Group.deliver_all m)) (Group.members cluster);
  List.iter
    (fun m ->
      if List.mem (Group.id m) [ 0; 1; 3 ] then begin
        Alcotest.(check bool)
          (Printf.sprintf "member %d reconfigured" (Group.id m))
          true
          ((Group.view m).View.id >= 1);
        Alcotest.(check bool) "crashed member gone" false (View.mem 2 (Group.view m))
      end)
    (Group.members cluster);
  check_no_violations cluster

let test_view_majority_edges () =
  (* A strict majority must be unattainable by two disjoint subgroups:
     in a singleton view one vote decides, and in a two-member view
     BOTH are needed — 1 of 2 is not a majority, or two halves could
     each believe they are the primary component. *)
  let maj members = View.majority (View.initial ~members) in
  Alcotest.(check int) "singleton" 1 (maj [ 7 ]);
  Alcotest.(check int) "two members" 2 (maj [ 0; 1 ]);
  Alcotest.(check int) "three members" 2 (maj [ 0; 1; 2 ]);
  Alcotest.(check int) "four members" 3 (maj [ 0; 1; 2; 3 ]);
  Alcotest.(check int) "five members" 3 (maj [ 0; 1; 2; 3; 4 ])

let test_group_minority_never_installs () =
  (* Primary-component contract: after a 3/2 split the minority side
     parks — it never installs a view of its own and delivers nothing
     fresh — while the majority moves on without it. [merge] is off so
     the parked state is observable at the end of the run. *)
  let e = Engine.create ~seed:13 () in
  let config =
    {
      Group.default_config with
      consensus = Group.Chandra_toueg;
      park_timeout = Some 0.5;
      merge = false;
    }
  in
  let cluster =
    Group.create_cluster e ~members:[ 0; 1; 2; 3; 4 ] ~latency:(Latency.Constant 0.002)
      ~config ()
  in
  let m0 = Group.member cluster 0 in
  for i = 1 to 5 do
    ignore (Group.multicast m0 i)
  done;
  ignore
    (Engine.schedule e ~delay:0.1 (fun () ->
         Group.partition_sets cluster [ [ 0; 1; 2 ]; [ 3; 4 ] ];
         Group.write_off cluster [ 3; 4 ]));
  (* Fresh traffic well after the split: it must never reach the
     parked side. *)
  ignore
    (Engine.schedule e ~delay:1.5 (fun () ->
         for i = 6 to 10 do
           ignore (Group.multicast m0 i)
         done));
  Engine.run ~until:3.0 e;
  let v0 = Group.view m0 in
  Alcotest.(check (list int)) "majority view excludes minority" [ 0; 1; 2 ] v0.View.members;
  Alcotest.(check bool) "majority moved on" true (v0.View.id >= 1);
  List.iter
    (fun m ->
      if List.mem (Group.id m) [ 0; 1; 2 ] then
        Alcotest.(check (list int))
          (Printf.sprintf "member %d delivered everything" (Group.id m))
          (List.init 10 (fun i -> i + 1))
          (List.filter_map
             (function Types.Data d -> Some d.Types.payload | Types.View_change _ -> None)
             (Group.deliver_all m)))
    (Group.members cluster);
  List.iter
    (fun p ->
      let m = Group.member cluster p in
      Alcotest.(check bool) (Printf.sprintf "member %d parked" p) true (Group.is_parked m);
      Alcotest.(check int)
        (Printf.sprintf "member %d never installed a view while partitioned" p)
        0
        (Group.view m).View.id;
      Alcotest.(check (list int))
        (Printf.sprintf "member %d delivers nothing fresh" p)
        []
        (List.filter_map
           (function Types.Data d -> Some d.Types.payload | Types.View_change _ -> None)
           (Group.deliver_all m)))
    [ 3; 4 ];
  Alcotest.(check int) "two park transitions" 2 (Group.parked_events cluster);
  check_no_violations ~strict:true cluster

let test_group_bandwidth_codec () =
  (* With a payload codec and finite bandwidth, the cluster still
     behaves identically (just slower) and accounts real wire bytes. *)
  let e = Engine.create ~seed:12 () in
  let cluster =
    Group.create_cluster e ~members:[ 0; 1; 2 ] ~latency:(Latency.Constant 0.001)
      ~bandwidth:100_000.0 ~payload_codec:Svs_core.Wire_codec.int_codec ()
  in
  let m0 = Group.member cluster 0 in
  for i = 1 to 20 do
    ignore (Group.multicast m0 i)
  done;
  ignore (Engine.schedule e ~delay:0.5 (fun () -> Group.crash cluster 2));
  Engine.run e;
  drain_everyone cluster;
  Alcotest.(check bool) "bytes accounted" true (Group.bytes_sent cluster > 500);
  List.iter
    (fun m ->
      if Group.id m <> 2 then
        Alcotest.(check (list int)) "view without 2" [ 0; 1 ] (Group.view m).View.members)
    (Group.members cluster);
  check_no_violations ~strict:true cluster

let test_group_rejoin_with_state_transfer () =
  (* A member crashes, is excluded, restarts from its durable slice and
     walks the JOIN/SYNC handshake back in: the view grows again, the
     sponsor's application snapshot arrives, its pre-crash delivery
     floors survive, and the checker stays green across the growing
     views (Integrity under recovery). *)
  let e = Engine.create ~seed:11 () in
  let cluster =
    Group.create_cluster e ~members:[ 0; 1; 2 ]
      ~latency:(Latency.Uniform { lo = 0.001; hi = 0.01 })
      ()
  in
  let m0 = Group.member cluster 0 in
  let m2 = Group.member cluster 2 in
  List.iter
    (fun m ->
      let id = Group.id m in
      Group.set_state_transfer m (fun () -> Some (Printf.sprintf "snapshot-from-%d" id)))
    (Group.members cluster);
  let synced_app = ref None in
  Group.on_synced m2 (fun _view app -> synced_app := Some app);
  for i = 1 to 20 do
    ignore (Group.multicast m0 i)
  done;
  (* Record the first incarnation's deliveries, then crash it. *)
  let pre = ref [] in
  ignore
    (Engine.schedule e ~delay:0.4 (fun () ->
         pre :=
           List.filter_map
             (function Types.Data d -> Some d.Types.payload | Types.View_change _ -> None)
             (Group.deliver_all m2)));
  ignore (Engine.schedule e ~delay:0.5 (fun () -> Group.crash cluster 2));
  ignore (Engine.schedule e ~delay:1.5 (fun () -> Group.restart cluster 2 ~recover:true));
  let rec nag tries () =
    if Group.is_joining m2 && tries < 200 then begin
      (match
         List.find_opt
           (fun q -> Group.id q <> 2 && Group.is_member q && not (Group.is_blocked q))
           (Group.members cluster)
       with
      | Some contact -> Group.request_join m2 ~contact:(Group.id contact)
      | None -> ());
      ignore (Engine.schedule e ~delay:0.1 (nag (tries + 1)) : Engine.handle)
    end
  in
  ignore (Engine.schedule e ~delay:1.6 (nag 0));
  Engine.run e;
  Alcotest.(check bool) "member again" true (Group.is_member m2);
  List.iter
    (fun m ->
      if Group.is_member m then
        Alcotest.(check (list int))
          (Printf.sprintf "member %d sees the re-grown view" (Group.id m))
          [ 0; 1; 2 ] (Group.view m).View.members)
    (Group.members cluster);
  (match !synced_app with
  | Some (Some s) ->
      Alcotest.(check string) "sponsor's snapshot arrived" "snapshot-from-0" s
  | Some None -> Alcotest.fail "SYNC carried no application state"
  | None -> Alcotest.fail "on_synced never fired");
  (* New traffic flows to the rejoined incarnation, and nothing the
     first incarnation delivered comes back. *)
  for i = 21 to 30 do
    ignore (Group.multicast m0 i)
  done;
  Engine.run e;
  let post =
    List.filter_map
      (function Types.Data d -> Some d.Types.payload | Types.View_change _ -> None)
      (Group.deliver_all m2)
  in
  List.iter
    (fun i ->
      Alcotest.(check bool) (Printf.sprintf "rejoined member got %d" i) true
        (List.mem i post))
    [ 21; 22; 23; 24; 25; 26; 27; 28; 29; 30 ];
  List.iter
    (fun p ->
      if List.mem p !pre then
        Alcotest.fail (Printf.sprintf "payload %d delivered twice across the restart" p))
    post;
  drain_everyone cluster;
  check_no_violations cluster

(* Random end-to-end scenarios, verified by the checker. *)
let group_random_scenarios ~semantic ~name =
  QCheck.Test.make ~name ~count:25
    QCheck.(triple small_int (int_range 2 5) (int_range 0 1))
    (fun (seed, n, crashes) ->
      let e = Engine.create ~seed () in
      let config =
        { Group.default_config with semantic; buffer_capacity = Some 10 }
      in
      let cluster =
        Group.create_cluster e
          ~members:(List.init n Fun.id)
          ~latency:(Latency.Exponential { mean = 0.004 })
          ~config ()
      in
      let rng = Rng.create ~seed:(seed * 31) in
      (* Every member multicasts tagged updates at its own pace. *)
      List.iter
        (fun m ->
          let period = 0.01 +. Rng.float rng 0.02 in
          ignore
            (Engine.every e ~period (fun () ->
                 ignore (Group.multicast m ~ann:(Annotation.Tag (Rng.int rng 4)) (Group.id m));
                 Engine.now e < 2.0)))
        (Group.members cluster);
      (* Some members consume slowly during the run. *)
      List.iter
        (fun m ->
          let period = 0.005 +. Rng.float rng 0.05 in
          ignore
            (Engine.every e ~period (fun () ->
                 ignore (Group.deliver m);
                 Engine.now e < 5.0)))
        (Group.members cluster);
      (* Random crash schedule: fewer than half the members. *)
      let max_crashes = Stdlib.min crashes ((n - 1) / 2) in
      let victims = ref [] in
      for _ = 1 to max_crashes do
        let v = Rng.int rng n in
        if not (List.mem v !victims) then begin
          victims := v :: !victims;
          let at = 0.2 +. Rng.float rng 1.5 in
          ignore (Engine.schedule e ~delay:at (fun () -> Group.crash cluster v))
        end
      done;
      Engine.run ~until:6.0 e;
      drain_everyone cluster;
      let violations =
        if semantic then Checker.verify (Group.checker cluster)
        else Checker.verify_strict_vs (Group.checker cluster)
      in
      if violations <> [] then
        QCheck.Test.fail_reportf "violations:@.%s"
          (String.concat "\n" (List.map Checker.violation_to_string violations))
      else true)

(* ------------------------------------------------------------------ *)
(* Purge_diff: indexed purge vs the pairwise reference                  *)
(* ------------------------------------------------------------------ *)

module Purge_diff = Svs_core.Purge_diff

type diff_kind = Dtag | Denum | Dkenum | Dmixed

(* Random op streams with globally unique ids: each sender hands out
   its sequence numbers from a shuffled pool, so ids never repeat but
   arrive out of order — which is what makes the reverse (drop-fresh)
   direction of every relation fire. Enum predecessors mix queued,
   departed, future, cross-sender and self ids. *)
let gen_diff_ops ~kind ~seed ~n =
  let st = Random.State.make [| 0x9e3779b9; seed |] in
  let nsenders = 3 in
  let pools =
    Array.init nsenders (fun _ ->
        let a = Array.init n (fun i -> i) in
        for i = n - 1 downto 1 do
          let j = Random.State.int st (i + 1) in
          let t = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- t
        done;
        (a, ref 0))
  in
  let emitted = ref [] in
  let pick_pred id =
    let r = Random.State.int st 100 in
    if r < 55 && !emitted <> [] then
      List.nth !emitted (Random.State.int st (min 8 (List.length !emitted)))
    else if r < 70 then begin
      (* future: an sn its sender has not handed out yet *)
      let s = Random.State.int st nsenders in
      let a, k = pools.(s) in
      if !k < n then Msg_id.make ~sender:s ~sn:a.(!k + Random.State.int st (n - !k))
      else id
    end
    else if r < 80 then id (* self-reference: must never purge *)
    else Msg_id.make ~sender:(Random.State.int st nsenders) ~sn:(Random.State.int st n)
  in
  let ann_for id =
    let tag () = Annotation.Tag (Random.State.int st 4) in
    let enum () =
      Annotation.Enum (List.init (Random.State.int st 4) (fun _ -> pick_pred id))
    in
    let kenum () =
      let bm = Bitvec.create ~k:8 in
      for _ = 1 to 1 + Random.State.int st 3 do
        Bitvec.set bm (1 + Random.State.int st 8)
      done;
      Annotation.Kenum bm
    in
    match kind with
    | Dtag -> tag ()
    | Denum -> enum ()
    | Dkenum -> kenum ()
    | Dmixed -> (
        match Random.State.int st 4 with
        | 0 -> tag ()
        | 1 -> enum ()
        | 2 -> kenum ()
        | _ -> Annotation.Unrelated)
  in
  List.init n (fun _ ->
      if Random.State.int st 100 < 18 then Purge_diff.Pop
      else begin
        let sender = Random.State.int st nsenders in
        let a, k = pools.(sender) in
        let sn = a.(!k) in
        incr k;
        let id = Msg_id.make ~sender ~sn in
        let view = if Random.State.int st 100 < 10 then 1 else 0 in
        let it = { Purge_diff.view; id; ann = ann_for id } in
        emitted := id :: !emitted;
        Purge_diff.Insert it
      end)

(* 250 cases x ~410 inserts each: > 1e5 randomized inserts per kind. *)
let purge_diff_agrees ~name ~kind =
  QCheck.Test.make ~name ~count:250 QCheck.small_nat (fun seed ->
      let ops = gen_diff_ops ~kind ~seed ~n:500 in
      match Purge_diff.agree ops with
      | None -> true
      | Some d -> QCheck.Test.fail_reportf "op %d: %s" d.Purge_diff.at_op d.Purge_diff.reason)

(* Regression: an Enum naming a not-yet-queued predecessor must not
   purge it retroactively once the enum itself has left the queue —
   stale reverse-index state would do exactly that. *)
let test_purge_enum_no_retroactive () =
  let open Purge_diff in
  let e_id = Msg_id.make ~sender:0 ~sn:1 in
  let p_id = Msg_id.make ~sender:1 ~sn:0 in
  let x = Indexed.create () in
  Alcotest.(check int) "enum insert purges nothing" 0
    (List.length (Indexed.insert x { view = 0; id = e_id; ann = Annotation.Enum [ p_id ] }));
  (match Indexed.pop x with
  | Some it -> Alcotest.(check bool) "popped the enum" true (Msg_id.equal it.id e_id)
  | None -> Alcotest.fail "expected the enum at the front");
  Alcotest.(check int) "late predecessor is not retro-purged" 0
    (List.length (Indexed.insert x { view = 0; id = p_id; ann = Annotation.Unrelated }));
  match Indexed.contents x with
  | [ it ] -> Alcotest.(check bool) "predecessor queued" true (Msg_id.equal it.id p_id)
  | l -> Alcotest.failf "queue holds %d items, expected 1" (List.length l)

(* While the enum IS still queued, the late predecessor is dropped on
   arrival — in both engines. *)
let test_purge_enum_drops_late_predecessor () =
  let check_engine name (module En : Purge_diff.ENGINE) =
    let e_id = Msg_id.make ~sender:0 ~sn:1 in
    let p_id = Msg_id.make ~sender:1 ~sn:0 in
    let t = En.create () in
    ignore
      (En.insert t { Purge_diff.view = 0; id = e_id; ann = Annotation.Enum [ p_id ] }
        : Msg_id.t list);
    let purged = En.insert t { Purge_diff.view = 0; id = p_id; ann = Annotation.Unrelated } in
    Alcotest.(check bool) (name ^ ": fresh predecessor dropped") true (purged = [ p_id ]);
    Alcotest.(check int) (name ^ ": only the enum remains") 1 (List.length (En.contents t))
  in
  check_engine "reference" (module Purge_diff.Reference);
  check_engine "indexed" (module Purge_diff.Indexed)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "svs_core"
    [
      ( "dq",
        [
          Alcotest.test_case "fifo" `Quick test_dq_fifo;
          Alcotest.test_case "push_front" `Quick test_dq_push_front;
          Alcotest.test_case "filter_in_place" `Quick test_dq_filter_in_place;
          Alcotest.test_case "wraparound" `Quick test_dq_wraparound;
          Alcotest.test_case "handle remove" `Quick test_dq_handle_remove;
          Alcotest.test_case "handles survive churn" `Quick test_dq_handle_survives_churn;
          Alcotest.test_case "clear detaches handles" `Quick test_dq_clear_detaches_handles;
          q dq_matches_list_model;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "multicast reaches all" `Quick test_proto_multicast_reaches_all;
          Alcotest.test_case "purge in queue" `Quick test_proto_purge_in_queue;
          Alcotest.test_case "fast consumer sees all" `Quick test_proto_fast_consumer_sees_all;
          Alcotest.test_case "plain VS keeps all" `Quick test_proto_no_purge_when_vs;
          Alcotest.test_case "view change basic" `Quick test_proto_view_change_basic;
          Alcotest.test_case "multicast blocked" `Quick test_proto_multicast_blocked_during_view_change;
          Alcotest.test_case "flush before marker" `Quick test_proto_view_change_flushes_unconsumed;
          Alcotest.test_case "pred injection" `Quick test_proto_svs_pred_injection;
          Alcotest.test_case "stale data dropped" `Quick test_proto_stale_data_dropped_after_view;
          Alcotest.test_case "future data stashed" `Quick test_proto_future_view_data_stashed;
          Alcotest.test_case "outsider multicast" `Quick test_proto_not_member_multicast;
          Alcotest.test_case "t7 skips suspected" `Quick test_proto_suspected_member_skipped_in_t7;
          Alcotest.test_case "cross-sender enum" `Quick test_proto_cross_sender_enum;
          Alcotest.test_case "duplicate decision" `Quick test_proto_duplicate_decision_ignored;
          Alcotest.test_case "dead protocol inert" `Quick test_proto_receive_when_dead;
          Alcotest.test_case "trigger while blocked" `Quick test_proto_trigger_while_blocked_ignored;
          Alcotest.test_case "local-pred tracking" `Quick test_proto_local_pred_tracking;
          Alcotest.test_case "voluntary leave" `Quick test_proto_voluntary_leave;
          Alcotest.test_case "deterministic" `Quick test_proto_deterministic;
          q purge_matches_fixpoint_model;
        ] );
      ( "checker",
        [
          Alcotest.test_case "clean trace" `Quick test_checker_accepts_clean_trace;
          Alcotest.test_case "creation" `Quick test_checker_detects_creation;
          Alcotest.test_case "duplication" `Quick test_checker_detects_duplication;
          Alcotest.test_case "fifo" `Quick test_checker_detects_fifo_violation;
          Alcotest.test_case "svs hole" `Quick test_checker_detects_svs_hole;
          Alcotest.test_case "cover accepted" `Quick test_checker_accepts_cover_instead;
          Alcotest.test_case "transitive cover" `Quick test_checker_transitive_cover;
          Alcotest.test_case "strict VS flags purge" `Quick test_checker_strict_vs_flags_purge;
          Alcotest.test_case "incarnation gap" `Quick test_checker_incarnation_gap;
          Alcotest.test_case "park-merge convergence" `Quick
            test_checker_park_merge_convergence;
          Alcotest.test_case "strict VS = verify on empty relation" `Quick
            test_checker_strict_vs_equals_verify_on_empty_relation;
        ] );
      ( "group",
        [
          Alcotest.test_case "basic multicast" `Quick test_group_basic_multicast;
          Alcotest.test_case "crash → view change" `Quick test_group_crash_triggers_view_change;
          Alcotest.test_case "slow consumer purging" `Quick test_group_purging_under_slow_consumer;
          Alcotest.test_case "VS mode" `Quick test_group_vs_mode_no_purging;
          Alcotest.test_case "CT + heartbeats" `Quick test_group_chandra_toueg_heartbeats;
          Alcotest.test_case "two view changes" `Quick test_group_two_successive_view_changes;
          Alcotest.test_case "stability GC" `Quick test_group_stability_gc;
          Alcotest.test_case "overflow exclusion" `Quick test_group_overflow_exclusion;
          Alcotest.test_case "partition heals" `Quick test_group_partition_heals;
          Alcotest.test_case "partition during view change" `Quick
            test_group_partition_during_view_change;
          Alcotest.test_case "majority edge sizes" `Quick test_view_majority_edges;
          Alcotest.test_case "minority parks, never installs" `Quick
            test_group_minority_never_installs;
          Alcotest.test_case "bandwidth + codec" `Quick test_group_bandwidth_codec;
          Alcotest.test_case "rejoin + state transfer" `Quick
            test_group_rejoin_with_state_transfer;
          q (group_random_scenarios ~semantic:true ~name:"random scenarios (semantic)");
          q (group_random_scenarios ~semantic:false ~name:"random scenarios (strict VS)");
        ] );
      ( "purge-diff",
        [
          Alcotest.test_case "enum: no retroactive purge" `Quick
            test_purge_enum_no_retroactive;
          Alcotest.test_case "enum: late predecessor dropped" `Quick
            test_purge_enum_drops_late_predecessor;
          q (purge_diff_agrees ~name:"indexed = pairwise (tag)" ~kind:Dtag);
          q (purge_diff_agrees ~name:"indexed = pairwise (enum)" ~kind:Denum);
          q (purge_diff_agrees ~name:"indexed = pairwise (kenum)" ~kind:Dkenum);
          q (purge_diff_agrees ~name:"indexed = pairwise (mixed)" ~kind:Dmixed);
        ] );
    ]
