(* Tests for the simulation substrate: heap, RNG, engine. *)

module Heap = Svs_sim.Heap
module Rng = Svs_sim.Rng
module Engine = Svs_sim.Engine

(* --- Heap --- *)

let test_heap_order () =
  let h = Heap.create ~leq:(fun a b -> a <= b) () in
  List.iter (Heap.add h) [ 5; 3; 8; 1; 9; 2; 7; 4; 6; 0 ];
  Alcotest.(check int) "length" 10 (Heap.length h);
  let drained = List.init 10 (fun _ -> Heap.pop_exn h) in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] drained;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_peek_pop () =
  let h = Heap.create ~leq:(fun a b -> a <= b) () in
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Heap.add h 42;
  Alcotest.(check (option int)) "peek" (Some 42) (Heap.peek h);
  Alcotest.(check int) "peek does not remove" 1 (Heap.length h)

let test_heap_to_sorted_list () =
  let h = Heap.create ~leq:(fun a b -> a <= b) () in
  List.iter (Heap.add h) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "sorted list" [ 1; 2; 3 ] (Heap.to_sorted_list h);
  Alcotest.(check int) "unchanged" 3 (Heap.length h)

let test_heap_duplicates () =
  let h = Heap.create ~leq:(fun a b -> a <= b) () in
  List.iter (Heap.add h) [ 2; 2; 1; 1; 2 ];
  Alcotest.(check (list int)) "dups kept" [ 1; 1; 2; 2; 2 ] (Heap.to_sorted_list h)

let heap_property_sorted =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~leq:(fun a b -> a <= b) () in
      List.iter (Heap.add h) xs;
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort compare xs)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 in
  let b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 in
  let b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    Alcotest.(check bool) "in [0,10)" true (x >= 0 && x < 10)
  done

let test_rng_int_in () =
  let r = Rng.create ~seed:4 in
  for _ = 1 to 1000 do
    let x = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (x >= -5 && x <= 5)
  done

let test_rng_float_bounds () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:6 in
  let n = 20000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Rng.exponential r ~mean:3.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "exp mean ~3 (got %g)" mean)
    true
    (mean > 2.8 && mean < 3.2)

let test_rng_normal_moments () =
  let r = Rng.create ~seed:8 in
  let n = 20000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.normal r ~mu:5.0 ~sigma:2.0 in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) (Printf.sprintf "mu (got %g)" mean) true (Float.abs (mean -. 5.0) < 0.1);
  Alcotest.(check bool) (Printf.sprintf "sigma^2 (got %g)" var) true (Float.abs (var -. 4.0) < 0.3)

let test_rng_geometric () =
  let r = Rng.create ~seed:9 in
  let n = 20000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Rng.geometric r ~p:0.5
  done;
  (* mean of failures-before-success = (1-p)/p = 1 *)
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "geom mean ~1 (got %g)" mean) true (mean > 0.9 && mean < 1.1)

let test_rng_poisson () =
  let r = Rng.create ~seed:10 in
  let n = 20000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Rng.poisson r ~lambda:4.0
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "poisson mean ~4 (got %g)" mean) true (mean > 3.8 && mean < 4.2)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:11 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_zipf_support_and_skew () =
  let r = Rng.create ~seed:12 in
  let z = Rng.Zipf.create ~n:20 ~s:1.0 in
  let counts = Array.make 21 0 in
  for _ = 1 to 20000 do
    let k = Rng.Zipf.sample z r in
    Alcotest.(check bool) "rank in [1,20]" true (k >= 1 && k <= 20);
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 1 most frequent" true (counts.(1) > counts.(2));
  Alcotest.(check bool) "rank 2 beats rank 10" true (counts.(2) > counts.(10))

let test_zipf_probability_sums_to_one () =
  let z = Rng.Zipf.create ~n:50 ~s:1.2 in
  let total = ref 0.0 in
  for k = 1 to 50 do
    total := !total +. Rng.Zipf.probability z k
  done;
  Alcotest.(check bool) "sums to 1" true (Float.abs (!total -. 1.0) < 1e-9)

(* --- Engine --- *)

let test_engine_runs_in_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:3.0 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:2.0 (fun () -> log := 2 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.0 (Engine.now e)

let test_engine_fifo_at_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "insertion order at ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         log := "a" :: !log;
         ignore (Engine.schedule e ~delay:0.5 (fun () -> log := "b" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "a"; "b" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 1.5 (Engine.now e)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  Alcotest.(check bool) "cancelled event did not fire" false !fired;
  Alcotest.(check bool) "cancelled flag" true (Engine.cancelled h)

let test_engine_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count))
  done;
  Engine.run ~until:5.5 e;
  Alcotest.(check int) "events before horizon" 5 !count;
  Alcotest.(check (float 1e-9)) "clock at horizon" 5.5 (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "remaining events" 10 !count

let test_engine_past_scheduling_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "schedule_at in past" (Invalid_argument
    "Engine.schedule_at: time 0.5 is in the past (now 1)") (fun () ->
      ignore (Engine.schedule_at e ~time:0.5 (fun () -> ())))

let test_engine_every () =
  let e = Engine.create () in
  let count = ref 0 in
  ignore
    (Engine.every e ~period:1.0 (fun () ->
         incr count;
         !count < 4));
  Engine.run e;
  Alcotest.(check int) "periodic stops when f returns false" 4 !count;
  Alcotest.(check (float 1e-9)) "clock" 4.0 (Engine.now e)

let test_engine_every_cancel () =
  let e = Engine.create () in
  let count = ref 0 in
  let h =
    Engine.every e ~period:1.0 (fun () ->
        incr count;
        true)
  in
  ignore (Engine.schedule e ~delay:3.5 (fun () -> Engine.cancel h));
  Engine.run ~until:10.0 e;
  Alcotest.(check int) "stopped by cancel" 3 !count

let test_engine_max_events () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec reschedule () =
    incr count;
    ignore (Engine.schedule e ~delay:1.0 reschedule)
  in
  ignore (Engine.schedule e ~delay:1.0 reschedule);
  Engine.run ~max_events:7 e;
  Alcotest.(check int) "bounded" 7 !count

let test_engine_pending () =
  let e = Engine.create () in
  let h1 = Engine.schedule e ~delay:1.0 (fun () -> ()) in
  ignore (Engine.schedule e ~delay:2.0 (fun () -> ()));
  Alcotest.(check int) "two pending" 2 (Engine.pending e);
  Engine.cancel h1;
  Alcotest.(check int) "one pending after cancel" 1 (Engine.pending e)

(* Enumeration API: ready lists the same-time group in scheduling
   order; step_ready executes an arbitrary member while keeping the
   rest pending; distinct timestamps are rejected. *)

let test_engine_ready_group () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:2.0 (fun () -> ()));
  let a = Engine.schedule e ~delay:1.0 (fun () -> ()) in
  let b = Engine.schedule e ~delay:1.0 (fun () -> ()) in
  let c = Engine.schedule e ~delay:1.0 (fun () -> ()) in
  Engine.cancel b;
  let ready = Engine.ready e in
  Alcotest.(check int) "two ready (cancelled excluded)" 2 (List.length ready);
  Alcotest.(check bool) "scheduling order" true
    (List.map Engine.handle_seq ready
    = List.sort compare (List.map Engine.handle_seq [ a; c ]))

let test_engine_step_ready_out_of_order () =
  let e = Engine.create () in
  let log = ref [] in
  let tag name () = log := name :: !log in
  ignore (Engine.schedule e ~delay:1.0 (tag "a"));
  ignore (Engine.schedule e ~delay:1.0 (tag "b"));
  ignore (Engine.schedule e ~delay:1.0 (tag "c"));
  (match Engine.ready e with
  | [ _; h2; _ ] -> Engine.step_ready e h2
  | _ -> Alcotest.fail "expected a 3-event ready group");
  Alcotest.(check (list string)) "picked the middle one" [ "b" ] (List.rev !log);
  Alcotest.(check int) "others still pending" 2 (Engine.pending e);
  (* The rest of the group is still enumerable, in order. *)
  List.iter (Engine.step_ready e) (Engine.ready e);
  List.iter (Engine.step_ready e) (Engine.ready e);
  Alcotest.(check (list string)) "rest in order" [ "b"; "a"; "c" ] (List.rev !log)

let test_engine_step_ready_rejects_future () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> ()));
  let later = Engine.schedule e ~delay:2.0 (fun () -> ()) in
  Alcotest.check_raises "future event rejected"
    (Invalid_argument "Engine.step_ready: event is not ready") (fun () ->
      Engine.step_ready e later)

let test_engine_step_is_ready_head () =
  (* step must agree with the enumeration API: it always executes the
     head of [ready], whatever order events were inserted in. *)
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:3.0 (fun () -> ()));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> ()));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> ()));
  for _ = 1 to 3 do
    let head = List.hd (Engine.ready e) in
    let seq = Engine.handle_seq head in
    ignore (Engine.step e);
    Alcotest.(check bool) "executed the ready head" true
      (List.for_all (fun h -> Engine.handle_seq h <> seq) (Engine.ready e))
  done

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "svs_sim"
    [
      ( "heap",
        [
          Alcotest.test_case "drains sorted" `Quick test_heap_order;
          Alcotest.test_case "peek/pop on empty" `Quick test_heap_peek_pop;
          Alcotest.test_case "to_sorted_list" `Quick test_heap_to_sorted_list;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          q heap_property_sorted;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
          Alcotest.test_case "geometric mean" `Quick test_rng_geometric;
          Alcotest.test_case "poisson mean" `Quick test_rng_poisson;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "zipf support and skew" `Quick test_zipf_support_and_skew;
          Alcotest.test_case "zipf probabilities" `Quick test_zipf_probability_sums_to_one;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_runs_in_time_order;
          Alcotest.test_case "FIFO ties" `Quick test_engine_fifo_at_same_time;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          Alcotest.test_case "past rejected" `Quick test_engine_past_scheduling_rejected;
          Alcotest.test_case "every" `Quick test_engine_every;
          Alcotest.test_case "every cancel" `Quick test_engine_every_cancel;
          Alcotest.test_case "max events" `Quick test_engine_max_events;
          Alcotest.test_case "pending" `Quick test_engine_pending;
          Alcotest.test_case "ready group" `Quick test_engine_ready_group;
          Alcotest.test_case "step_ready out of order" `Quick
            test_engine_step_ready_out_of_order;
          Alcotest.test_case "step_ready rejects future" `Quick
            test_engine_step_ready_rejects_future;
          Alcotest.test_case "step is ready head" `Quick
            test_engine_step_is_ready_head;
        ] );
    ]
