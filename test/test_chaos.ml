(* Tests for the chaos harness: scenario plans (determinism and
   well-formedness), seeded end-to-end runs under the safety oracle,
   replayability, and the oracle's mutation self-test. *)

module Rng = Svs_sim.Rng
module Scenario = Svs_chaos.Scenario
module Oracle = Svs_chaos.Oracle
module Runner = Svs_chaos.Runner
module Trace = Svs_telemetry.Trace

(* A quick config so the whole suite stays fast: the CI chaos sweep
   (scripts/ci.sh) exercises the default scale. *)
let quick =
  { Runner.default_config with nodes = 4; horizon = 5.0; settle = 3.0; send_period = 0.05 }

(* --- Scenario plans --- *)

let plan_of scenario ~seed ~n ~horizon =
  scenario.Scenario.plan ~rng:(Rng.create ~seed) ~n ~horizon

let test_plans_deterministic () =
  List.iter
    (fun sc ->
      let p1 = plan_of sc ~seed:7 ~n:5 ~horizon:10.0 in
      let p2 = plan_of sc ~seed:7 ~n:5 ~horizon:10.0 in
      Alcotest.(check bool)
        (sc.Scenario.name ^ ": same seed, same plan")
        true (p1 = p2))
    Scenario.all;
  (* And the seed actually matters for the fault-injecting scenarios. *)
  let differs sc =
    plan_of sc ~seed:1 ~n:5 ~horizon:10.0 <> plan_of sc ~seed:2 ~n:5 ~horizon:10.0
  in
  Alcotest.(check bool) "some seed-sensitivity" true
    (List.exists differs (List.filter (fun s -> s.Scenario.name <> "calm") Scenario.all))

(* Replay a plan's effect on abstract state and check the documented
   invariants: the anchor (node 0) is never crashed/paused/removed, at
   least two members survive, and every disturbance is undone before
   the horizon. *)
let check_plan_invariants sc ~seed ~n ~horizon =
  let plan = plan_of sc ~seed ~n ~horizon in
  let name fmt = Printf.ksprintf (fun s -> sc.Scenario.name ^ ": " ^ s) fmt in
  let removed = ref [] in
  let paused = ref [] in
  let partitions = ref [] in
  let split = ref [] in
  let spiked = ref false in
  List.iter
    (fun { Scenario.at; action } ->
      Alcotest.(check bool) (name "time in window") true (at >= 0.0 && at <= horizon);
      match action with
      | Scenario.Crash p ->
          Alcotest.(check bool) (name "anchor never crashed") true (p <> 0);
          removed := p :: !removed
      | Scenario.Leave { node; _ } ->
          Alcotest.(check bool) (name "anchor never removed") true (node <> 0);
          removed := node :: !removed
      | Scenario.Rejoin p ->
          Alcotest.(check bool) (name "rejoin follows a removal") true (List.mem p !removed);
          removed := List.filter (fun q -> q <> p) !removed
      | Scenario.Pause p ->
          Alcotest.(check bool) (name "anchor never paused") true (p <> 0);
          paused := p :: !paused
      | Scenario.Resume p -> paused := List.filter (fun q -> q <> p) !paused
      | Scenario.Partition (a, b) -> partitions := (min a b, max a b) :: !partitions
      | Scenario.Heal (a, b) ->
          partitions := List.filter (fun w -> w <> (min a b, max a b)) !partitions
      | Scenario.Split sets ->
          (match List.find_opt (List.mem 0) sets with
          | None -> Alcotest.fail (name "anchor in some split set")
          | Some anchor_set ->
              Alcotest.(check bool)
                (name "anchor side is a strict majority")
                true
                (2 * List.length anchor_set > n));
          Alcotest.(check (list int)) (name "split covers the group") (List.init n Fun.id)
            (List.sort compare (List.concat sets));
          split := sets
      | Scenario.Heal_split -> split := []
      | Scenario.Set_latency _ -> spiked := true
      | Scenario.Restore_latency -> spiked := false)
    plan;
  Alcotest.(check bool) (name "two survivors") true
    (n - List.length (List.sort_uniq compare !removed) >= 2);
  Alcotest.(check (list int)) (name "every pause resumed") [] !paused;
  Alcotest.(check (list (pair int int))) (name "every partition healed") [] !partitions;
  (* Split scenarios with [heal_at_settle = false] deliberately leave
     the group split at the horizon; everyone else must heal. *)
  if sc.Scenario.heal_at_settle then
    Alcotest.(check bool) (name "every split healed") true (!split = []);
  Alcotest.(check bool) (name "latency restored") false !spiked

let test_plan_invariants () =
  List.iter
    (fun sc ->
      for seed = 1 to 25 do
        check_plan_invariants sc ~seed ~n:5 ~horizon:10.0;
        check_plan_invariants sc ~seed ~n:3 ~horizon:8.0
      done)
    Scenario.all

let test_plans_sorted () =
  List.iter
    (fun sc ->
      let plan = plan_of sc ~seed:11 ~n:6 ~horizon:10.0 in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a.Scenario.at <= b.Scenario.at && sorted rest
        | _ -> true
      in
      Alcotest.(check bool) (sc.Scenario.name ^ ": time-ordered") true (sorted plan))
    Scenario.all

(* --- End-to-end runs under the oracle --- *)

let core_scenarios =
  List.filter_map Scenario.find
    [ "crash"; "partition-heal"; "slow-receiver"; "churn"; "crash-restart"; "exclude-rejoin" ]

let test_sweep_passes_both_modes () =
  Alcotest.(check int) "6 scenarios found" 6 (List.length core_scenarios);
  let outcomes =
    Runner.sweep ~config:quick ~modes:[ Oracle.Vs; Oracle.Svs ] ~scenarios:core_scenarios
      ~seeds:[ 1; 2; 3 ] ()
  in
  Alcotest.(check int) "grid size" (6 * 2 * 3) (List.length outcomes);
  List.iter
    (fun (o : Runner.outcome) ->
      if not (Oracle.ok o.report) then
        Alcotest.fail (Format.asprintf "chaos violation: %a" Oracle.pp_report o.report))
    outcomes;
  (* The runs actually did something. *)
  List.iter
    (fun (o : Runner.outcome) ->
      Alcotest.(check bool) "messages flowed" true (o.sent > 0);
      Alcotest.(check bool) "views installed" true (o.report.Oracle.installs > 0))
    outcomes

let test_calm_run_has_no_faults () =
  let calm = Option.get (Scenario.find "calm") in
  let o = Runner.run_one ~config:quick ~mode:Oracle.Svs ~scenario:calm ~seed:5 () in
  Alcotest.(check int) "no faults injected" 0 o.Runner.faults;
  Alcotest.(check bool) "passes" true (Oracle.ok o.Runner.report)

let test_replayable () =
  let scenario = Option.get (Scenario.find "mayhem") in
  let a = Runner.run_one ~config:quick ~mode:Oracle.Svs ~scenario ~seed:9 () in
  let b = Runner.run_one ~config:quick ~mode:Oracle.Svs ~scenario ~seed:9 () in
  Alcotest.(check int) "same deliveries" a.Runner.report.Oracle.deliveries
    b.Runner.report.Oracle.deliveries;
  Alcotest.(check int) "same installs" a.Runner.report.Oracle.installs
    b.Runner.report.Oracle.installs;
  Alcotest.(check int) "same faults" a.Runner.faults b.Runner.faults;
  Alcotest.(check int) "same sends" a.Runner.sent b.Runner.sent;
  Alcotest.(check int) "same engine schedule" a.Runner.events b.Runner.events

let test_fault_events_traced () =
  let scenario = Option.get (Scenario.find "partition-heal") in
  let tracer = Trace.memory () in
  let o = Runner.run_one ~tracer ~config:quick ~mode:Oracle.Vs ~scenario ~seed:3 () in
  let traced =
    List.length
      (List.filter
         (function { Trace.event = Trace.Fault _; _ } -> true | _ -> false)
         (Trace.records tracer))
  in
  Alcotest.(check bool) "faults happened" true (o.Runner.faults > 0);
  Alcotest.(check int) "every applied fault traced" o.Runner.faults traced

(* --- The oracle bites: mutation self-test --- *)

let test_mutation_caught () =
  (* A deliberately broken purge (one safety-relevant delivery dropped
     from the record) must be caught and reported with the seed and the
     violating view pair. *)
  List.iter
    (fun (mode, scenario_name) ->
      let scenario = Option.get (Scenario.find scenario_name) in
      let o =
        Runner.run_one ~mutation:Oracle.Drop_cover ~config:quick ~mode ~scenario ~seed:4 ()
      in
      let r = o.Runner.report in
      Alcotest.(check bool) (scenario_name ^ ": caught") false (Oracle.ok r);
      Alcotest.(check bool) (scenario_name ^ ": mutation recorded") true (r.Oracle.mutated <> None);
      Alcotest.(check int) (scenario_name ^ ": seed reported") 4 r.Oracle.seed;
      Alcotest.(check string) (scenario_name ^ ": scenario reported") scenario_name
        r.Oracle.scenario;
      Alcotest.(check bool) (scenario_name ^ ": violating view pair named") true
        (List.exists (fun v -> Oracle.view_pair v <> None) r.Oracle.violations))
    [ (Oracle.Vs, "crash"); (Oracle.Svs, "crash"); (Oracle.Svs, "slow-receiver") ]

let test_unmutated_is_clean () =
  (* Control for the mutation test: the same runs pass untouched. *)
  let scenario = Option.get (Scenario.find "crash") in
  let o = Runner.run_one ~config:quick ~mode:Oracle.Svs ~scenario ~seed:4 () in
  Alcotest.(check bool) "clean without mutation" true (Oracle.ok o.Runner.report)

let test_flight_recorder_on_failure () =
  let scenario = Option.get (Scenario.find "crash") in
  (* A passing run carries no flight records (postmortems are for
     failures); the same run mutated red must ship them, virtual-time
     stamped and in order, even when the caller traced nothing. *)
  let clean = Runner.run_one ~config:quick ~mode:Oracle.Svs ~scenario ~seed:4 () in
  Alcotest.(check int) "clean run: empty flight" 0 (List.length clean.Runner.flight);
  let red =
    Runner.run_one ~mutation:Oracle.Drop_cover ~config:quick ~mode:Oracle.Svs ~scenario
      ~seed:4 ()
  in
  Alcotest.(check bool) "red run" false (Oracle.ok red.Runner.report);
  let flight = red.Runner.flight in
  Alcotest.(check bool) "flight recorded" true (flight <> []);
  Alcotest.(check bool) "bounded" true (List.length flight <= 2048);
  let rec chronological = function
    | a :: (b :: _ as rest) -> a.Trace.time <= b.Trace.time && chronological rest
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (chronological flight);
  (* The ring kept the END of the run: its last record is late in
     virtual time, and every record is JSONL-serialisable. *)
  (match List.rev flight with
  | last :: _ ->
      Alcotest.(check bool) "kept the tail" true (last.Trace.time > quick.Runner.horizon /. 2.0)
  | [] -> ());
  List.iter
    (fun r ->
      match Trace.record_of_json (Trace.record_to_json r) with
      | Some r' -> Alcotest.(check bool) "round-trips" true (r = r')
      | None -> Alcotest.fail "flight record does not serialise")
    flight;
  (* An outer tracer still sees the stream alongside the ring. *)
  let tracer = Trace.memory () in
  let o = Runner.run_one ~tracer ~config:quick ~mode:Oracle.Svs ~scenario ~seed:4 () in
  Alcotest.(check bool) "outer tracer still fed" true (Trace.records tracer <> []);
  Alcotest.(check bool) "outer run clean" true (Oracle.ok o.Runner.report)

(* --- Crash recovery under the oracle --- *)

(* Find a seed whose crash-restart plan actually completes a rejoin in
   the quick config (the planned rejoin can land while the group is
   still excluding the victim, in which case the retry may run out of
   window). *)
let rejoining_seed ~recover =
  let scenario = Option.get (Scenario.find "crash-restart") in
  let config = { quick with recover } in
  let rec hunt seed =
    if seed > 30 then Alcotest.fail "no seed produced a completed rejoin"
    else begin
      let tracer = Trace.memory () in
      let o = Runner.run_one ~tracer ~config ~mode:Oracle.Svs ~scenario ~seed () in
      let synced =
        List.exists
          (function { Trace.event = Trace.StateTransfer _; _ } -> true | _ -> false)
          (Trace.records tracer)
      in
      if synced then (seed, o) else hunt (seed + 1)
    end
  in
  hunt 1

let test_recovered_rejoin_is_safe () =
  (* A member crashes, restarts from its durable state and rejoins via
     JOIN/SYNC: the full §4 oracle must stay green. *)
  let _seed, o = rejoining_seed ~recover:true in
  if not (Oracle.ok o.Runner.report) then
    Alcotest.fail (Format.asprintf "recovered rejoin violated: %a" Oracle.pp_report o.Runner.report)

let test_amnesiac_rejoin_is_caught () =
  (* The same path with recovery disabled: the restarted member reuses
     sequence numbers and re-delivers its own messages, which must show
     up as Integrity/FIFO violations. *)
  let seed, o = rejoining_seed ~recover:false in
  Alcotest.(check bool)
    (Printf.sprintf "amnesiac restart caught (seed %d)" seed)
    false
    (Oracle.ok o.Runner.report);
  Alcotest.(check bool) "flagged as duplication or FIFO breakage" true
    (List.exists
       (function
         | Svs_core.Checker.Duplicated _ | Svs_core.Checker.Fifo_order _ -> true
         | _ -> false)
       o.Runner.report.Oracle.violations)

let test_restart_duplicate_mutation_caught () =
  (* Self-test for the recovery clause of the oracle: duplicating a
     pre-crash delivery after the rejoin must flip the verdict. *)
  let scenario = Option.get (Scenario.find "crash-restart") in
  let seed, _ = rejoining_seed ~recover:true in
  let o =
    Runner.run_one ~mutation:Oracle.Duplicate_after_restart ~config:quick ~mode:Oracle.Svs
      ~scenario ~seed ()
  in
  let r = o.Runner.report in
  Alcotest.(check bool) "caught" false (Oracle.ok r);
  Alcotest.(check bool) "mutation recorded" true (r.Oracle.mutated <> None);
  Alcotest.(check bool) "flagged as duplication" true
    (List.exists
       (function Svs_core.Checker.Duplicated _ -> true | _ -> false)
       r.Oracle.violations)

(* --- Partition survival: park, merge, and the primary chain --- *)

let split_scenarios =
  List.filter_map Scenario.find [ "group-split"; "split-heal-merge"; "flapping-split" ]

let test_split_sweep_passes () =
  Alcotest.(check int) "3 split scenarios" 3 (List.length split_scenarios);
  let outcomes =
    Runner.sweep ~config:quick ~modes:[ Oracle.Vs; Oracle.Svs ] ~scenarios:split_scenarios
      ~seeds:[ 1; 2; 3 ] ()
  in
  List.iter
    (fun (o : Runner.outcome) ->
      if not (Oracle.ok o.report) then
        Alcotest.fail (Format.asprintf "split violation: %a" Oracle.pp_report o.report))
    outcomes;
  Alcotest.(check bool) "someone parked across the sweep" true
    (List.exists (fun (o : Runner.outcome) -> o.parked > 0) outcomes)

let test_split_heal_merges_back () =
  (* A split-heal-merge run that actually parked someone must re-admit
     the parked member: a Merge trace event closes the Parked one, and
     the runner's re-convergence contract holds. *)
  let scenario = Option.get (Scenario.find "split-heal-merge") in
  let rec hunt seed =
    if seed > 30 then Alcotest.fail "no seed parked anyone"
    else begin
      let tracer = Trace.memory () in
      let o = Runner.run_one ~tracer ~config:quick ~mode:Oracle.Svs ~scenario ~seed () in
      if o.Runner.parked = 0 then hunt (seed + 1) else (seed, o, Trace.records tracer)
    end
  in
  let seed, o, records = hunt 1 in
  Alcotest.(check bool)
    (Printf.sprintf "run safe (seed %d)" seed)
    true
    (Oracle.ok o.Runner.report);
  Alcotest.(check bool) "Parked traced" true
    (List.exists (function { Trace.event = Trace.Parked _; _ } -> true | _ -> false) records);
  Alcotest.(check bool) "Merge traced" true
    (List.exists (function { Trace.event = Trace.Merge _; _ } -> true | _ -> false) records)

let test_no_merge_caught () =
  (* The inverted self-check behind svs_chaos --no-merge: members that
     fall out of the primary component and never probe back in must
     break the re-convergence contract. *)
  let scenario = Option.get (Scenario.find "split-heal-merge") in
  let config = { quick with Runner.merge = false } in
  let o = Runner.run_one ~config ~mode:Oracle.Svs ~scenario ~seed:1 () in
  Alcotest.(check bool) "flagged" false (Oracle.ok o.Runner.report);
  Alcotest.(check bool) "as a convergence violation" true
    (List.exists
       (function Svs_core.Checker.Not_converged _ -> true | _ -> false)
       o.Runner.report.Oracle.violations)

let test_split_brain_mutation_caught () =
  (* Self-test for the primary-chain contract: forging a divergent
     minority view into the record must flip the verdict, whether the
     run had a real partition or not. *)
  List.iter
    (fun scenario_name ->
      let scenario = Option.get (Scenario.find scenario_name) in
      let o =
        Runner.run_one ~mutation:Oracle.Split_brain ~config:quick ~mode:Oracle.Svs ~scenario
          ~seed:2 ()
      in
      let r = o.Runner.report in
      Alcotest.(check bool) (scenario_name ^ ": caught") false (Oracle.ok r);
      Alcotest.(check bool)
        (scenario_name ^ ": mutation recorded")
        true
        (r.Oracle.mutated <> None);
      Alcotest.(check bool)
        (scenario_name ^ ": flagged as split brain")
        true
        (List.exists
           (function Svs_core.Checker.Split_brain _ -> true | _ -> false)
           r.Oracle.violations))
    [ "group-split"; "calm" ]

let test_mode_labels () =
  Alcotest.(check string) "vs" "vs" (Oracle.mode_label Oracle.Vs);
  Alcotest.(check string) "svs" "svs" (Oracle.mode_label Oracle.Svs);
  Alcotest.(check bool) "roundtrip vs" true (Oracle.mode_of_label "vs" = Some Oracle.Vs);
  Alcotest.(check bool) "roundtrip svs" true (Oracle.mode_of_label "svs" = Some Oracle.Svs);
  Alcotest.(check bool) "unknown" true (Oracle.mode_of_label "nope" = None)

(* --- Overload: semantic shedding under a paused reader --- *)

(* The overload scenario runs at the default scale: the shed budget
   and the backlog budget in the scenario are calibrated against it
   (the pause length scales with the horizon). *)

let test_overload_sheds_within_budget () =
  let scenario = Option.get (Scenario.find "overload") in
  let o =
    Runner.run_one ~config:Runner.default_config ~mode:Oracle.Svs ~scenario ~seed:1 ()
  in
  Alcotest.(check bool) "oracle passes with shedding on" true (Oracle.ok o.Runner.report);
  Alcotest.(check bool) "shedding fired" true (o.Runner.shed > 0);
  Alcotest.(check (option bool)) "peak backlog within the declared budget" (Some false)
    o.Runner.over_budget;
  (* VS mode carries no semantic information — nothing is sheddable
     and the budget verdict does not apply. *)
  let vs =
    Runner.run_one ~config:Runner.default_config ~mode:Oracle.Vs ~scenario ~seed:1 ()
  in
  Alcotest.(check bool) "vs mode passes" true (Oracle.ok vs.Runner.report);
  Alcotest.(check int) "vs mode sheds nothing" 0 vs.Runner.shed;
  Alcotest.(check (option bool)) "no budget verdict in vs mode" None vs.Runner.over_budget

let test_overload_no_shed_blows_budget () =
  (* The inverted self-check: with shedding disabled the same run
     must pile the paused member's backlog past the budget — proof
     the budget is tight enough that the shed-on result means
     something. Correctness is unaffected either way. *)
  let scenario = Option.get (Scenario.find "overload") in
  let config = { Runner.default_config with shed = false } in
  let o = Runner.run_one ~config ~mode:Oracle.Svs ~scenario ~seed:1 () in
  Alcotest.(check bool) "still safe without shedding" true (Oracle.ok o.Runner.report);
  Alcotest.(check int) "nothing shed" 0 o.Runner.shed;
  Alcotest.(check (option bool)) "backlog exceeds the budget" (Some true)
    o.Runner.over_budget;
  let shed_on =
    Runner.run_one ~config:Runner.default_config ~mode:Oracle.Svs ~scenario ~seed:1 ()
  in
  Alcotest.(check bool) "shedding keeps the peak strictly lower" true
    (shed_on.Runner.peak_backlog < o.Runner.peak_backlog)

let () =
  Alcotest.run "svs_chaos"
    [
      ( "scenario",
        [
          Alcotest.test_case "plans deterministic" `Quick test_plans_deterministic;
          Alcotest.test_case "plan invariants" `Quick test_plan_invariants;
          Alcotest.test_case "plans time-ordered" `Quick test_plans_sorted;
        ] );
      ( "runner",
        [
          Alcotest.test_case "sweep passes, both modes" `Slow test_sweep_passes_both_modes;
          Alcotest.test_case "calm baseline" `Quick test_calm_run_has_no_faults;
          Alcotest.test_case "replayable from seed" `Slow test_replayable;
          Alcotest.test_case "fault events traced" `Quick test_fault_events_traced;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "mutation caught" `Slow test_mutation_caught;
          Alcotest.test_case "unmutated control" `Quick test_unmutated_is_clean;
          Alcotest.test_case "flight recorder on failure" `Slow test_flight_recorder_on_failure;
          Alcotest.test_case "mode labels" `Quick test_mode_labels;
        ] );
      ( "overload",
        [
          Alcotest.test_case "sheds within budget" `Slow test_overload_sheds_within_budget;
          Alcotest.test_case "no-shed blows budget" `Slow test_overload_no_shed_blows_budget;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "recovered rejoin safe" `Slow test_recovered_rejoin_is_safe;
          Alcotest.test_case "amnesiac rejoin caught" `Slow test_amnesiac_rejoin_is_caught;
          Alcotest.test_case "restart-dup mutation caught" `Slow
            test_restart_duplicate_mutation_caught;
        ] );
      ( "partition",
        [
          Alcotest.test_case "split sweep passes" `Slow test_split_sweep_passes;
          Alcotest.test_case "split heals and merges" `Slow test_split_heal_merges_back;
          Alcotest.test_case "no-merge caught" `Slow test_no_merge_caught;
          Alcotest.test_case "split-brain mutation caught" `Slow
            test_split_brain_mutation_caught;
        ] );
    ]
