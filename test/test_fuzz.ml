(* Byte-level fuzz over the decode surfaces that face the network and
   the disk. The contract under test is uniform: arbitrary garbage is
   rejected with the codec's typed errors ([Codec.Truncated] /
   [Codec.Malformed]) or, for the WAL, salvaged into a clean log —
   never an uncaught exception, never fabricated state.

   FUZZ_ITERS scales every property's budget (default 500): CI's
   fuzz-smoke tier runs a bounded pass, local runs can turn it up. *)

module Codec = Svs_codec.Codec
module Wire_codec = Svs_core.Wire_codec
module Types = Svs_core.Types
module View = Svs_core.View
module Msg_id = Svs_obs.Msg_id
module Annotation = Svs_obs.Annotation
module Bitvec = Svs_obs.Bitvec
module Tcp_mesh = Svs_rt.Tcp_mesh
module Wal = Svs_rt.Wal

let iters =
  match Sys.getenv_opt "FUZZ_ITERS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 500)
  | None -> 500

let pc = Wire_codec.int_codec

(* ------------------------------------------------------------------ *)
(* Generators for every wire constructor, Wjoin and Wsync included.   *)

let gen_msg_id =
  QCheck.Gen.(map2 (fun s sn -> Msg_id.make ~sender:s ~sn) (int_bound 40) (int_bound 5000))

let gen_annotation =
  QCheck.Gen.(
    frequency
      [
        (2, return Annotation.Unrelated);
        (2, map (fun n -> Annotation.Tag n) (int_bound 1000));
        (2, map (fun ids -> Annotation.Enum ids) (list_size (int_bound 5) gen_msg_id));
        ( 3,
          map2
            (fun k ds ->
              let bm = Bitvec.create ~k in
              List.iter (fun d -> Bitvec.set bm (1 + (d mod k))) ds;
              Annotation.Kenum bm)
            (int_range 1 128)
            (list_size (int_bound 8) (int_bound 1000)) );
      ])

let gen_view =
  QCheck.Gen.(
    map2
      (fun id members -> View.make ~id ~members:(List.sort_uniq compare members))
      (int_bound 1000)
      (list_size (int_range 1 8) (int_bound 40)))

let gen_data =
  QCheck.Gen.(
    map2
      (fun (id, view_id) (payload, ann) -> { Types.id; view_id; payload; ann })
      (pair gen_msg_id (int_bound 1000))
      (pair int gen_annotation))

let gen_floors = QCheck.Gen.(list_size (int_bound 6) (pair (int_bound 40) (int_bound 5000)))

let gen_wire =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun d -> Types.Wdata d) gen_data);
        ( 2,
          map2
            (fun view_id (leave, join) -> Types.Winit { view_id; leave; join })
            (int_bound 1000)
            (pair (list_size (int_bound 4) (int_bound 40)) (list_size (int_bound 4) (int_bound 40)))
        );
        ( 2,
          map2
            (fun view_id msgs -> Types.Wpred { view_id; msgs })
            (int_bound 1000)
            (list_size (int_bound 5) gen_data) );
        (2, map (fun floors -> Types.Wstable { floors }) gen_floors);
        (1, map (fun joiner -> Types.Wjoin { joiner }) (int_bound 40));
        ( 2,
          map2
            (fun (view, floors) app -> Types.Wsync { view; floors; app })
            (pair gen_view gen_floors)
            (option (string_size (int_bound 64))) );
      ])

let arb_wire = QCheck.make ~print:(Format.asprintf "%a" (Types.pp_wire Format.pp_print_int)) gen_wire

(* Decoding must either produce a value or raise one of the two typed
   codec errors; anything else is a fuzz finding. *)
let decodes_cleanly decode =
  match decode () with
  | _ -> true
  | exception Codec.Truncated -> true
  | exception Codec.Malformed _ -> true
  | exception _ -> false

(* ------------------------------------------------------------------ *)
(* 1. Round-trip: every well-formed message survives encode/decode.   *)

let wire_round_trip =
  QCheck.Test.make ~name:"every wire constructor round-trips" ~count:iters arb_wire
    (fun w -> Wire_codec.wire_of_string pc (Wire_codec.wire_to_string pc w) = w)

(* 2. Mutation fuzz: flip bytes in / truncate a valid encoding; decode
   must recover a value or raise only the typed errors. *)

let wire_mutation =
  QCheck.Test.make ~name:"bit-flipped wires raise only Truncated/Malformed" ~count:iters
    QCheck.(
      make
        Gen.(triple gen_wire (list_size (int_range 1 4) (pair small_nat (int_bound 255))) small_nat))
    (fun (w, flips, cut) ->
      let s = Wire_codec.wire_to_string pc w in
      let b = Bytes.of_string s in
      List.iter
        (fun (pos, v) ->
          if Bytes.length b > 0 then
            let pos = pos mod Bytes.length b in
            Bytes.set b pos (Char.chr ((Char.code (Bytes.get b pos) lxor (1 + v)) land 0xff)))
        flips;
      let mutated = Bytes.to_string b in
      let truncated = String.sub mutated 0 (cut mod (String.length mutated + 1)) in
      decodes_cleanly (fun () -> Wire_codec.wire_of_string pc mutated)
      && decodes_cleanly (fun () -> Wire_codec.wire_of_string pc truncated))

(* 3. Pure garbage: random byte strings through the whole-message and
   component decoders. *)

let wire_garbage =
  QCheck.Test.make ~name:"random bytes raise only Truncated/Malformed" ~count:iters
    QCheck.(string_gen Gen.(char_range '\x00' '\xff'))
    (fun s ->
      decodes_cleanly (fun () -> Wire_codec.wire_of_string pc s)
      && decodes_cleanly (fun () -> Wire_codec.read_view (Codec.Reader.of_string s))
      && decodes_cleanly (fun () -> Wire_codec.read_annotation (Codec.Reader.of_string s))
      && decodes_cleanly (fun () ->
             Wire_codec.read_proposal pc (Codec.Reader.of_string s)))

(* ------------------------------------------------------------------ *)
(* 4. The inbound pipeline: outer-frame reassembly -> batch iteration
   -> wire decode, fed at arbitrary chunk boundaries.                 *)

let outer_frame payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.to_string b

let batch_of_wires wires =
  let w = Codec.Writer.create () in
  List.iter
    (fun wire ->
      let inner = Wire_codec.wire_to_string pc wire in
      Codec.Writer.varint w (String.length inner);
      Codec.Writer.raw w inner)
    wires;
  Codec.Writer.contents w

(* Split [s] into chunks at the given cut points. *)
let chunks_of s cuts =
  let n = String.length s in
  let cuts = List.sort_uniq compare (List.map (fun c -> c mod (n + 1)) cuts) in
  let cuts = List.filter (fun c -> c > 0 && c < n) cuts @ [ n ] in
  let rec go start = function
    | [] -> []
    | c :: rest -> String.sub s start (c - start) :: go c rest
  in
  go 0 cuts

let pipeline_reassembly =
  QCheck.Test.make
    ~name:"assembler + iter_batch recover wires across any chunking" ~count:iters
    QCheck.(
      make Gen.(pair (list_size (int_range 1 6) gen_wire) (list_size (int_bound 12) small_nat)))
    (fun (wires, cuts) ->
      let stream = outer_frame (batch_of_wires wires) in
      let asm = Tcp_mesh.Assembler.create () in
      let decoded = ref [] in
      List.iter
        (fun chunk ->
          Tcp_mesh.Assembler.feed asm chunk;
          let rec drain () =
            match Tcp_mesh.Assembler.next asm with
            | Tcp_mesh.Assembler.Frame slice ->
                Tcp_mesh.iter_batch slice (fun inner ->
                    decoded :=
                      Wire_codec.read_wire pc (Codec.Reader.of_slice inner) :: !decoded);
                drain ()
            | Tcp_mesh.Assembler.Await -> ()
            | Tcp_mesh.Assembler.Oversize _ -> ()
          in
          drain ())
        (chunks_of stream cuts);
      List.rev !decoded = wires)

let pipeline_garbage =
  QCheck.Test.make ~name:"garbage batches raise only Truncated/Malformed" ~count:iters
    QCheck.(string_gen Gen.(char_range '\x00' '\xff'))
    (fun payload ->
      (* A syntactically valid outer frame around arbitrary batch bytes:
         exactly what a hostile dialer can make a node's assembler
         produce. *)
      let asm = Tcp_mesh.Assembler.create () in
      Tcp_mesh.Assembler.feed asm (outer_frame payload);
      match Tcp_mesh.Assembler.next asm with
      | Tcp_mesh.Assembler.Frame slice ->
          decodes_cleanly (fun () ->
              Tcp_mesh.iter_batch slice (fun inner ->
                  ignore (Wire_codec.read_wire pc (Codec.Reader.of_slice inner))))
      | Tcp_mesh.Assembler.Await | Tcp_mesh.Assembler.Oversize _ -> true)

(* ------------------------------------------------------------------ *)
(* 5. WAL recovery fuzz: flip random bytes in a real log; recovery
   must never throw (beyond the typed open error), never fabricate a
   lease above what was written, and always leave a log whose next
   recovery is clean.                                                 *)

let with_temp_dir f =
  let dir = Filename.temp_file "svs-fuzz-wal" "" in
  Unix.unlink dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file -> try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let wal_fuzz =
  QCheck.Test.make ~name:"WAL recovery survives arbitrary byte flips" ~count:(max 1 (iters / 5))
    QCheck.(
      make
        Gen.(
          triple (int_range 1 30)
            (list_size (int_range 1 6) (pair small_nat (int_bound 255)))
            (int_bound 3)))
    (fun (records, flips, me) ->
      with_temp_dir (fun dir ->
          let lease = 1000 * (records + 1) in
          (let w, _ = Wal.open_exn ~dir ~me () in
           for i = 1 to records do
             Wal.append w
               (if i mod 3 = 0 then Wal.Install (View.make ~id:i ~members:[ 0; me ])
                else Wal.Floor { sender = i mod 5; sn = i })
           done;
           Wal.append_durable w (Wal.Lease { next_sn = lease });
           Wal.close w);
          let seg =
            match
              List.filter
                (fun f -> not (Filename.check_suffix f ".corrupt"))
                (Array.to_list (Sys.readdir dir))
            with
            | [ s ] -> Filename.concat dir s
            | _ -> QCheck.Test.fail_report "expected a single segment"
          in
          let ic = open_in_bin seg in
          let len = in_channel_length ic in
          let b = Bytes.create len in
          really_input ic b 0 len;
          close_in ic;
          List.iter
            (fun (pos, v) ->
              let pos = pos mod len in
              Bytes.set b pos (Char.chr ((Char.code (Bytes.get b pos) lxor (1 + v)) land 0xff)))
            flips;
          let oc = open_out_bin seg in
          output_bytes oc b;
          close_out oc;
          match Wal.open_ ~dir ~me () with
          | Error (Wal.Foreign_log _) ->
              (* A flip can land in the identity stamp; the typed error
                 is an acceptable rejection, not a crash. *)
              true
          | Ok (w, r) ->
              Wal.close w;
              (* No fabricated lease, and the salvaged log replays clean. *)
              r.Wal.next_sn <= lease
              &&
              (match Wal.open_ ~dir ~me () with
              | Error _ -> false
              | Ok (w2, r2) ->
                  Wal.close w2;
                  r2.Wal.skipped = 0 && r2.Wal.truncated = 0
                  && r2.Wal.next_sn = r.Wal.next_sn)))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "svs_fuzz"
    [
      ( "wire",
        [ q wire_round_trip; q wire_mutation; q wire_garbage ] );
      ("pipeline", [ q pipeline_reassembly; q pipeline_garbage ]);
      ("wal", [ q wal_fuzz ]);
    ]
