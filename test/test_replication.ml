(* Tests for primary-backup replication over SVS. *)

module Engine = Svs_sim.Engine
module Group = Svs_core.Group
module View = Svs_core.View
module Checker = Svs_core.Checker
module Latency = Svs_net.Latency
module Store = Svs_replication.Replicated_store
module Rng = Svs_sim.Rng
module Codec = Svs_codec.Codec

type rig = {
  engine : Engine.t;
  cluster : int Store.payload Group.cluster;
  stores : (int * int Store.t) list;
}

let make_rig ?(members = [ 0; 1; 2 ]) ?(config = Group.default_config) () =
  let engine = Engine.create ~seed:23 () in
  let cluster =
    Group.create_cluster engine ~members ~latency:(Latency.Constant 0.001) ~config ()
  in
  let stores = List.map (fun m -> (Group.id m, Store.attach ~k:32 m)) (Group.members cluster) in
  { engine; cluster; stores }

let store rig i = List.assoc i rig.stores

let settle rig =
  Engine.run rig.engine;
  List.iter (fun (_, s) -> Store.process s) rig.stores

let check_clean rig =
  Alcotest.(check (list string)) "checker clean" []
    (List.map Checker.violation_to_string (Checker.verify (Group.checker rig.cluster)))

let test_roles () =
  let rig = make_rig () in
  Alcotest.(check bool) "lowest id is primary" true (Store.role (store rig 0) = `Primary);
  Alcotest.(check bool) "others are backups" true
    (Store.role (store rig 1) = `Backup && Store.role (store rig 2) = `Backup)

let test_submit_requires_primary () =
  let rig = make_rig () in
  match Store.submit (store rig 1) [ Store.Set (1, 1) ] with
  | Error `Not_primary -> ()
  | Ok () | Error _ -> Alcotest.fail "backup accepted a request"

let test_submit_empty () =
  let rig = make_rig () in
  match Store.submit (store rig 0) [] with
  | Error `Empty -> ()
  | Ok () | Error _ -> Alcotest.fail "empty batch accepted"

let test_basic_replication () =
  let rig = make_rig () in
  let primary = store rig 0 in
  (match Store.submit primary [ Store.Set (1, 10); Store.Set (2, 20) ] with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "submit failed");
  settle rig;
  List.iter
    (fun (i, s) ->
      Alcotest.(check (option int)) (Printf.sprintf "replica %d item 1" i) (Some 10)
        (Store.get s 1);
      Alcotest.(check (option int)) (Printf.sprintf "replica %d item 2" i) (Some 20)
        (Store.get s 2);
      Alcotest.(check int) "one batch applied" 1 (Store.applied_batches s))
    rig.stores;
  check_clean rig

let test_batch_atomicity_at_replicas () =
  (* A batch is applied all-or-nothing: a replica that processes the
     first message of a batch but has not seen the commit yet must not
     expose the partial write. *)
  let rig = make_rig () in
  let primary = store rig 0 in
  (match Store.submit primary [ Store.Set (1, 1); Store.Set (2, 2) ] with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "submit");
  Engine.run rig.engine;
  let backup = store rig 1 in
  (* Process exactly one delivery: the pure update, not yet the commit. *)
  ignore (Store.process_one backup);
  Alcotest.(check (option int)) "no partial application" None (Store.get backup 1);
  ignore (Store.process_one backup);
  Alcotest.(check (option int)) "applied at commit" (Some 1) (Store.get backup 1);
  Alcotest.(check (option int)) "whole batch visible" (Some 2) (Store.get backup 2)

let test_remove () =
  let rig = make_rig () in
  let primary = store rig 0 in
  ignore (Store.submit primary [ Store.Set (1, 10) ]);
  ignore (Store.submit primary [ Store.Remove 1 ]);
  settle rig;
  List.iter
    (fun (i, s) ->
      Alcotest.(check (option int)) (Printf.sprintf "replica %d removed" i) None (Store.get s 1))
    rig.stores;
  check_clean rig

let test_last_write_wins_within_batch () =
  let rig = make_rig () in
  ignore (Store.submit (store rig 0) [ Store.Set (1, 1); Store.Set (1, 99) ]);
  settle rig;
  Alcotest.(check (option int)) "last write wins" (Some 99) (Store.get (store rig 1) 1)

let test_failover_consistency () =
  (* Heavy update traffic with a slow backup; the primary crashes; the
     survivors must end in identical states and the new primary must be
     the lowest surviving id. *)
  let config = { Group.default_config with buffer_capacity = Some 12 } in
  let rig = make_rig ~config () in
  let rng = Rng.create ~seed:5 in
  let submitted = ref 0 in
  ignore
    (Engine.every rig.engine ~period:0.004 (fun () ->
         (match
            List.find_opt
              (fun (_, s) -> Store.is_member s && Store.role s = `Primary)
              rig.stores
          with
         | Some (_, primary) -> (
             let item = Rng.int rng 6 in
             match Store.submit primary [ Store.Set (item, !submitted) ] with
             | Ok () -> incr submitted
             | Error _ -> ())
         | None -> ());
         Engine.now rig.engine < 2.0));
  (* Backup 1 is prompt, backup 2 lags. *)
  ignore
    (Engine.every rig.engine ~period:0.002 (fun () ->
         Store.process (store rig 0);
         Store.process (store rig 1);
         Engine.now rig.engine < 2.5));
  ignore
    (Engine.every rig.engine ~period:0.05 (fun () ->
         ignore (Store.process_one (store rig 2));
         Engine.now rig.engine < 2.5));
  ignore (Engine.schedule rig.engine ~delay:1.0 (fun () -> Group.crash rig.cluster 0));
  Engine.run ~until:3.0 rig.engine;
  Engine.run ~until:3.5 rig.engine;
  List.iter (fun (_, s) -> Store.process s) rig.stores;
  Alcotest.(check bool) "many updates flowed" true (!submitted > 100);
  let s1 = store rig 1 and s2 = store rig 2 in
  Alcotest.(check bool) "new primary is lowest survivor" true (Store.role s1 = `Primary);
  Alcotest.(check bool) "survivor views agree" true
    (View.equal (Store.view s1) (Store.view s2));
  Alcotest.(check bool) "survivor stores identical" true (Store.store_equal s1 s2);
  Alcotest.(check bool) "slow backup purged something" true
    (Group.purged (Store.member s2) > 0);
  check_clean rig

let failover_property =
  QCheck.Test.make ~name:"random traffic + crash keeps survivors identical" ~count:15
    QCheck.(pair small_int (int_range 3 5))
    (fun (seed, n) ->
      let engine = Engine.create ~seed () in
      let config = { Group.default_config with buffer_capacity = Some 10 } in
      let cluster =
        Group.create_cluster engine
          ~members:(List.init n Fun.id)
          ~latency:(Latency.Exponential { mean = 0.002 })
          ~config ()
      in
      let stores =
        List.map (fun m -> (Group.id m, Store.attach ~k:24 m)) (Group.members cluster)
      in
      let rng = Rng.create ~seed:(seed + 77) in
      ignore
        (Engine.every engine ~period:0.005 (fun () ->
             (match
                List.find_opt
                  (fun (_, s) -> Store.is_member s && Store.role s = `Primary)
                  stores
              with
             | Some (_, primary) ->
                 let size = 1 + Rng.int rng 3 in
                 let ops =
                   List.init size (fun j -> Store.Set (Rng.int rng 5, (j * 1000) + Rng.int rng 100))
                 in
                 ignore (Store.submit primary ops)
             | None -> ());
             Engine.now engine < 1.5));
      List.iter
        (fun (_, s) ->
          let period = 0.002 +. Rng.float rng 0.04 in
          ignore
            (Engine.every engine ~period (fun () ->
                 ignore (Store.process_one s);
                 ignore (Store.process_one s);
                 Engine.now engine < 2.0)))
        stores;
      let victim = Rng.int rng n in
      ignore
        (Engine.schedule engine ~delay:(0.3 +. Rng.float rng 1.0) (fun () ->
             Group.crash cluster victim));
      Engine.run ~until:3.0 engine;
      Engine.run ~until:4.0 engine;
      List.iter (fun (_, s) -> Store.process s) stores;
      let survivors = List.filter (fun (i, _) -> i <> victim) stores in
      let states = List.map (fun (_, s) -> Store.items s) survivors in
      let all_equal =
        match states with [] -> true | first :: rest -> List.for_all (( = ) first) rest
      in
      let clean = Checker.verify (Group.checker cluster) = [] in
      if not (all_equal && clean) then
        QCheck.Test.fail_reportf "equal=%b clean=%b" all_equal clean
      else true)

let test_rejoin_seeds_store () =
  (* A replica crashes and is excluded; while it is gone the primary
     keeps writing. When it restarts and rejoins, the sponsor's SYNC
     snapshot must seed its store with everything it missed — including
     items it can never receive as messages (they were sent in views it
     was not part of). *)
  let engine = Engine.create ~seed:29 () in
  let cluster =
    Group.create_cluster engine ~members:[ 0; 1; 2 ] ~latency:(Latency.Constant 0.001) ()
  in
  let snapshot = ((fun w v -> Codec.Writer.zigzag w v), fun r -> Codec.Reader.zigzag r) in
  let stores =
    List.map
      (fun m -> (Group.id m, Store.attach ~k:32 ~snapshot m))
      (Group.members cluster)
  in
  let store i = List.assoc i stores in
  let settle () =
    Engine.run engine;
    List.iter (fun (_, s) -> Store.process s) stores
  in
  (match Store.submit (store 0) [ Store.Set (1, 10); Store.Set (2, 20) ] with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "first submit failed");
  settle ();
  Group.crash cluster 2;
  settle ();
  Alcotest.(check bool) "replica 2 excluded" false (Store.is_member (store 2));
  (* Written while replica 2 is down: only the snapshot can carry it. *)
  (match Store.submit (store 0) [ Store.Set (3, 30); Store.Set (1, 11) ] with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "submit while 2 down failed");
  settle ();
  let m2 = Group.member cluster 2 in
  Group.restart cluster 2 ~recover:true;
  let rec nag tries () =
    if Group.is_joining m2 && tries < 200 then begin
      (match
         List.find_opt
           (fun q -> Group.id q <> 2 && Group.is_member q && not (Group.is_blocked q))
           (Group.members cluster)
       with
      | Some contact -> Group.request_join m2 ~contact:(Group.id contact)
      | None -> ());
      ignore (Engine.schedule engine ~delay:0.1 (nag (tries + 1)) : Engine.handle)
    end
  in
  nag 0 ();
  settle ();
  Alcotest.(check bool) "replica 2 readmitted" true (Store.is_member (store 2));
  Alcotest.(check (option int)) "missed write arrived via the snapshot" (Some 30)
    (Store.get (store 2) 3);
  Alcotest.(check (option int)) "overwrite arrived via the snapshot" (Some 11)
    (Store.get (store 2) 1);
  (* And it keeps converging as an ordinary backup afterwards. *)
  (match Store.submit (store 0) [ Store.Set (4, 40) ] with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "post-rejoin submit failed");
  settle ();
  Alcotest.(check bool) "stores equal after rejoin" true
    (Store.store_equal (store 0) (store 2));
  Alcotest.(check (list string)) "checker clean" []
    (List.map Checker.violation_to_string (Checker.verify (Group.checker cluster)))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "svs_replication"
    [
      ( "replicated-store",
        [
          Alcotest.test_case "roles" `Quick test_roles;
          Alcotest.test_case "submit requires primary" `Quick test_submit_requires_primary;
          Alcotest.test_case "empty batch" `Quick test_submit_empty;
          Alcotest.test_case "basic replication" `Quick test_basic_replication;
          Alcotest.test_case "batch atomicity" `Quick test_batch_atomicity_at_replicas;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "last write wins" `Quick test_last_write_wins_within_batch;
          Alcotest.test_case "fail-over consistency" `Quick test_failover_consistency;
          Alcotest.test_case "rejoin seeds store" `Quick test_rejoin_seeds_store;
          q failover_property;
        ] );
    ]
