(* Tests for svs_mc: the bounded model of the SVS stack, the DFS/DPOR
   explorer, counterexample minimization/replay, and the inverted
   mutation self-tests (the explorer must CATCH every seeded log
   corruption — an exhaustive pass over a broken log is a failure). *)

module Model = Svs_mc.Model
module Explorer = Svs_mc.Explorer
module Oracle = Svs_chaos.Oracle

let stats_tuple (s : Explorer.stats) =
  ( s.Explorer.states,
    s.Explorer.transitions,
    s.Explorer.interleavings,
    s.Explorer.visited_hits,
    s.Explorer.sleep_skips )

let explore_exhausted ?reduce ?dedup cfg =
  let { Explorer.outcome; stats } = Explorer.explore ?reduce ?dedup cfg in
  (match outcome with
  | Explorer.Exhausted -> ()
  | Explorer.State_limit -> Alcotest.fail "hit the state limit"
  | Explorer.Counterexample { trace; violations } ->
      Alcotest.failf "unexpected violation after %d transitions: %a"
        (List.length trace)
        (Fmt.list ~sep:Fmt.comma Svs_core.Checker.pp_violation)
        violations);
  stats

(* ------------------------------------------------------------------ *)
(* Transition descriptors                                              *)
(* ------------------------------------------------------------------ *)

let test_transition_roundtrip () =
  let all =
    [
      Model.Deliver { src = 0; dst = 2 };
      Model.Tick 1;
      Model.Multicast 0;
      Model.Crash 2;
      Model.Restart 1;
      Model.Probe { node = 1; contact = 0 };
      Model.Cut (0, 1);
      Model.Heal (0, 1);
    ]
  in
  List.iter
    (fun t ->
      let s = Model.transition_to_string t in
      match Model.transition_of_string s with
      | Some t' when t' = t -> ()
      | Some _ -> Alcotest.failf "%S parsed to a different transition" s
      | None -> Alcotest.failf "%S did not parse" s)
    all;
  Alcotest.(check (option reject)) "garbage rejected" None
    (Model.transition_of_string "fnord 1 2")

(* ------------------------------------------------------------------ *)
(* Exhaustive exploration of clean configurations                      *)
(* ------------------------------------------------------------------ *)

(* The acceptance configuration: 3 nodes, 2 multicasts, 1 crash. *)
let test_exhaustive_default () =
  let stats = explore_exhausted Model.default in
  Alcotest.(check bool) "states explored" true (stats.Explorer.states > 100);
  Alcotest.(check bool)
    "interleavings counted" true
    (stats.Explorer.interleavings > 10);
  Alcotest.(check bool) "no depth cutoff" true (stats.Explorer.depth_cutoffs = 0)

let test_exhaustive_vs_mode () =
  let stats =
    explore_exhausted
      { Model.default with mode = Oracle.Vs; chain = false }
  in
  Alcotest.(check bool) "states explored" true (stats.Explorer.states > 100)

let test_exhaustive_partition_heal () =
  let stats =
    explore_exhausted
      {
        Model.default with
        multicasts = 1;
        crashes = 0;
        partitions = [ (0, 1) ];
        heals = true;
      }
  in
  Alcotest.(check bool) "states explored" true (stats.Explorer.states > 5)

let test_exhaustive_restart () =
  let stats =
    explore_exhausted
      {
        Model.default with
        multicasts = 1;
        crashes = 1;
        restarts = 1;
        probes = 1;
        max_depth = 60;
      }
  in
  (* A full crash-rejoin cycle needs view changes both ways. *)
  Alcotest.(check bool) "deep traces" true (stats.Explorer.max_depth_seen > 12)

(* ------------------------------------------------------------------ *)
(* Determinism: exploration is a pure function of the configuration    *)
(* ------------------------------------------------------------------ *)

let test_exploration_deterministic () =
  let a = explore_exhausted Model.default in
  let b = explore_exhausted Model.default in
  Alcotest.(check (pair (pair int int) (pair int int)))
    "identical stats"
    ( (a.Explorer.states, a.Explorer.transitions),
      (a.Explorer.interleavings, a.Explorer.visited_hits) )
    ( (b.Explorer.states, b.Explorer.transitions),
      (b.Explorer.interleavings, b.Explorer.visited_hits) )

(* ------------------------------------------------------------------ *)
(* The sleep-set reduction: same verdict, fewer interleavings          *)
(* ------------------------------------------------------------------ *)

let test_reduction_sound_and_effective () =
  let naive = explore_exhausted ~reduce:false ~dedup:false Model.default in
  let dpor = explore_exhausted ~reduce:true ~dedup:false Model.default in
  let full = explore_exhausted Model.default in
  let _, _, naive_il, _, _ = stats_tuple naive in
  let _, _, dpor_il, _, dpor_skips = stats_tuple dpor in
  Alcotest.(check bool)
    "sleep sets cut interleavings" true (dpor_il < naive_il);
  Alcotest.(check bool) "sleep sets actually fired" true (dpor_skips > 0);
  Alcotest.(check bool)
    "dedup cuts further" true
    (full.Explorer.transitions < dpor.Explorer.transitions)

(* ------------------------------------------------------------------ *)
(* Mutation self-tests: the explorer must catch seeded corruption      *)
(* ------------------------------------------------------------------ *)

let restart_cfg =
  {
    Model.default with
    multicasts = 1;
    crashes = 1;
    restarts = 1;
    probes = 1;
    max_depth = 60;
  }

let find_and_replay name mutation cfg =
  match Explorer.explore ~mutation cfg with
  | { Explorer.outcome = Explorer.Counterexample { trace; _ }; _ } -> (
      let minimized, violations = Explorer.minimize ~mutation cfg trace in
      Alcotest.(check bool)
        (name ^ ": minimization keeps the violation")
        true (violations <> None);
      Alcotest.(check bool)
        (name ^ ": minimized no longer than original")
        true
        (List.length minimized <= List.length trace);
      (* The counterexample replays deterministically. *)
      match Explorer.replay ~mutation cfg minimized with
      | Explorer.Reproduced _ -> ()
      | Explorer.Clean -> Alcotest.failf "%s: replay lost the violation" name
      | Explorer.Infeasible { index; _ } ->
          Alcotest.failf "%s: replay infeasible at %d" name index)
  | { Explorer.outcome = Explorer.Exhausted; _ } ->
      Alcotest.failf "%s: mutation survived exhaustive exploration" name
  | { Explorer.outcome = Explorer.State_limit; _ } ->
      Alcotest.failf "%s: state limit before a verdict" name

let test_mutation_drop_cover () =
  find_and_replay "drop-cover" Oracle.Drop_cover Model.default

let test_mutation_split_brain () =
  find_and_replay "split-brain" Oracle.Split_brain Model.default

let test_mutation_dup_restart () =
  find_and_replay "dup-restart" Oracle.Duplicate_after_restart restart_cfg

(* ------------------------------------------------------------------ *)
(* Trace files                                                         *)
(* ------------------------------------------------------------------ *)

let test_trace_file_roundtrip () =
  let cfg = restart_cfg in
  let trace =
    [
      Model.Multicast 0;
      Model.Deliver { src = 0; dst = 1 };
      Model.Crash 1;
      Model.Restart 1;
      Model.Probe { node = 1; contact = 0 };
      Model.Tick 0;
    ]
  in
  let file = Filename.temp_file "svs_mc_test" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      Explorer.write_trace oc cfg ~mutation:Oracle.Duplicate_after_restart trace;
      close_out oc;
      let ic = open_in file in
      let parsed = Explorer.read_trace ic in
      close_in ic;
      match parsed with
      | Error msg -> Alcotest.failf "trace did not parse: %s" msg
      | Ok (cfg', mutation, trace') ->
          Alcotest.(check bool) "config round-trips" true (cfg' = cfg);
          Alcotest.(check bool)
            "mutation round-trips" true
            (mutation = Some Oracle.Duplicate_after_restart);
          Alcotest.(check bool) "transitions round-trip" true (trace' = trace))

let test_replay_rejects_infeasible () =
  match
    Explorer.replay Model.default
      [ Model.Deliver { src = 0; dst = 1 } (* nothing in flight yet *) ]
  with
  | Explorer.Infeasible { index = 0; _ } -> ()
  | Explorer.Infeasible { index; _ } ->
      Alcotest.failf "wrong index %d" index
  | Explorer.Reproduced _ | Explorer.Clean ->
      Alcotest.fail "empty-network delivery accepted"

let test_replay_clean_prefix () =
  (* A feasible but violation-free trace replays Clean. *)
  match Explorer.replay Model.default [ Model.Multicast 0 ] with
  | Explorer.Clean -> ()
  | Explorer.Reproduced _ -> Alcotest.fail "clean prefix flagged"
  | Explorer.Infeasible _ -> Alcotest.fail "multicast should be enabled"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "svs_mc"
    [
      ( "model",
        [
          Alcotest.test_case "transition round-trip" `Quick
            test_transition_roundtrip;
        ] );
      ( "explore",
        [
          Alcotest.test_case "default config exhausts clean" `Quick
            test_exhaustive_default;
          Alcotest.test_case "vs mode exhausts clean" `Quick
            test_exhaustive_vs_mode;
          Alcotest.test_case "partition+heal exhausts clean" `Quick
            test_exhaustive_partition_heal;
          Alcotest.test_case "crash-restart exhausts clean" `Quick
            test_exhaustive_restart;
          Alcotest.test_case "deterministic" `Quick
            test_exploration_deterministic;
          Alcotest.test_case "reduction sound and effective" `Quick
            test_reduction_sound_and_effective;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "drop-cover caught" `Quick
            test_mutation_drop_cover;
          Alcotest.test_case "split-brain caught" `Quick
            test_mutation_split_brain;
          Alcotest.test_case "dup-restart caught" `Quick
            test_mutation_dup_restart;
        ] );
      ( "traces",
        [
          Alcotest.test_case "file round-trip" `Quick
            test_trace_file_roundtrip;
          Alcotest.test_case "replay rejects infeasible" `Quick
            test_replay_rejects_infeasible;
          Alcotest.test_case "clean prefix replays clean" `Quick
            test_replay_clean_prefix;
        ] );
    ]
