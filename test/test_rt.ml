(* Tests for the real-time runtime: event loop, TCP mesh, and a live
   three-node SVS group over loopback TCP. These run in real time, so
   they use short heartbeat settings and generous wall-clock guards. *)

module Loop = Svs_rt.Loop
module Tcp_mesh = Svs_rt.Tcp_mesh
module Node = Svs_rt.Node
module Types = Svs_core.Types
module View = Svs_core.View
module Wire_codec = Svs_core.Wire_codec
module Annotation = Svs_obs.Annotation

(* --- Loop --- *)

let test_loop_after_ordering () =
  let loop = Loop.create () in
  let log = ref [] in
  ignore (Loop.after loop ~delay:0.03 (fun () -> log := 2 :: !log));
  ignore (Loop.after loop ~delay:0.01 (fun () -> log := 1 :: !log));
  Loop.run ~timeout:0.2 loop;
  Alcotest.(check (list int)) "timers in order" [ 1; 2 ] (List.rev !log)

let test_loop_every_and_cancel () =
  let loop = Loop.create () in
  let count = ref 0 in
  let timer =
    Loop.every loop ~period:0.005 (fun () ->
        incr count;
        true)
  in
  ignore (Loop.after loop ~delay:0.05 (fun () -> Loop.cancel timer));
  Loop.run ~timeout:0.3 loop;
  Alcotest.(check bool) (Printf.sprintf "ran a few times (%d)" !count) true
    (!count >= 3 && !count <= 20)

let test_loop_every_stops_on_false () =
  let loop = Loop.create () in
  let count = ref 0 in
  ignore
    (Loop.every loop ~period:0.005 (fun () ->
         incr count;
         !count < 3));
  Loop.run ~timeout:0.3 loop;
  Alcotest.(check int) "stopped at 3" 3 !count

let test_loop_readable_fd () =
  let loop = Loop.create () in
  let r, w = Unix.pipe () in
  let got = ref "" in
  Loop.on_readable loop r (fun () ->
      let buf = Bytes.create 16 in
      let n = Unix.read r buf 0 16 in
      got := Bytes.sub_string buf 0 n;
      Loop.stop loop);
  ignore
    (Loop.after loop ~delay:0.01 (fun () ->
         ignore (Unix.write_substring w "ping" 0 4)));
  Loop.run ~timeout:0.5 loop;
  Unix.close r;
  Unix.close w;
  Alcotest.(check string) "read the bytes" "ping" !got

let test_loop_until_predicate () =
  let loop = Loop.create () in
  let count = ref 0 in
  ignore
    (Loop.every loop ~period:0.002 (fun () ->
         incr count;
         true));
  Loop.run ~until:(fun () -> !count >= 5) ~timeout:0.5 loop;
  Alcotest.(check bool) "stopped at predicate" true (!count >= 5 && !count < 20)

(* --- Tcp_mesh --- *)

(* on_frame hands out borrowed slices; tests that retain frames copy
   them out. *)
let str = Svs_codec.Codec.Slice.to_string

let loopback = Unix.inet_addr_loopback

let test_mesh_exchange () =
  let loop = Loop.create () in
  let fd0, addr0 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  let fd1, addr1 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  let peers = [ (0, addr0); (1, addr1) ] in
  let got0 = ref [] and got1 = ref [] in
  let mesh0 =
    Tcp_mesh.create loop ~me:0 ~listen_fd:fd0 ~peers
      ~on_frame:(fun ~src frame -> got0 := (src, str frame) :: !got0)
      ()
  in
  let mesh1 =
    Tcp_mesh.create loop ~me:1 ~listen_fd:fd1 ~peers
      ~on_frame:(fun ~src frame -> got1 := (src, str frame) :: !got1)
      ()
  in
  Tcp_mesh.send mesh0 ~dst:1 "hello";
  Tcp_mesh.send mesh0 ~dst:1 "world";
  Tcp_mesh.send mesh1 ~dst:0 "back";
  Loop.run ~until:(fun () -> List.length !got1 >= 2 && List.length !got0 >= 1) ~timeout:5.0 loop;
  Alcotest.(check (list (pair int string))) "mesh1 got both in order" [ (0, "hello"); (0, "world") ]
    (List.rev !got1);
  Alcotest.(check (list (pair int string))) "mesh0 got reply" [ (1, "back") ] (List.rev !got0);
  Tcp_mesh.close mesh0;
  Tcp_mesh.close mesh1

let test_mesh_large_frame () =
  let loop = Loop.create () in
  let fd0, addr0 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  let fd1, addr1 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  let peers = [ (0, addr0); (1, addr1) ] in
  let got = ref None in
  let mesh0 =
    Tcp_mesh.create loop ~me:0 ~listen_fd:fd0 ~peers ~on_frame:(fun ~src:_ _ -> ()) ()
  in
  let mesh1 =
    Tcp_mesh.create loop ~me:1 ~listen_fd:fd1 ~peers
      ~on_frame:(fun ~src:_ frame -> got := Some (str frame))
      ()
  in
  let big = String.init 300_000 (fun i -> Char.chr (i mod 251)) in
  Tcp_mesh.send mesh0 ~dst:1 big;
  Loop.run ~until:(fun () -> !got <> None) ~timeout:5.0 loop;
  (match !got with
  | Some frame ->
      Alcotest.(check int) "length survives" (String.length big) (String.length frame);
      Alcotest.(check bool) "content survives" true (String.equal big frame)
  | None -> Alcotest.fail "large frame not delivered");
  Tcp_mesh.close mesh0;
  Tcp_mesh.close mesh1

let test_mesh_queues_until_connected () =
  (* Send before the peer's listener even exists: frames are buffered
     and flushed once the dial-retry loop connects. *)
  let loop = Loop.create () in
  let fd0, addr0 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  (* Reserve an address for peer 1 without accepting yet. *)
  let fd1_tmp, addr1 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  Unix.close fd1_tmp;
  let peers = [ (0, addr0); (1, addr1) ] in
  let got = ref [] in
  let mesh0 =
    Tcp_mesh.create loop ~me:0 ~listen_fd:fd0 ~peers ~on_frame:(fun ~src:_ _ -> ()) ()
  in
  Tcp_mesh.send mesh0 ~dst:1 "early";
  Alcotest.(check bool) "buffered while disconnected" true
    (Tcp_mesh.pending_bytes mesh0 ~dst:1 > 0);
  (* Bring peer 1 up at the promised address. *)
  let fd1, _ = Tcp_mesh.listener addr1 in
  let mesh1 =
    Tcp_mesh.create loop ~me:1 ~listen_fd:fd1 ~peers
      ~on_frame:(fun ~src frame -> got := (src, str frame) :: !got)
      ()
  in
  Loop.run ~until:(fun () -> !got <> []) ~timeout:5.0 loop;
  Alcotest.(check (list (pair int string))) "early frame arrived" [ (0, "early") ] !got;
  Tcp_mesh.close mesh0;
  Tcp_mesh.close mesh1

module Trace = Svs_telemetry.Trace

let drop_reasons tracer =
  List.filter_map
    (function
      | { Trace.event = Trace.TcpDrop { reason; _ }; _ } -> Some reason | _ -> None)
    (Trace.records tracer)

let test_mesh_unknown_dst_drop () =
  let loop = Loop.create () in
  let fd0, addr0 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  let tracer = Trace.memory () in
  let mesh0 =
    Tcp_mesh.create loop ~me:0 ~listen_fd:fd0 ~peers:[ (0, addr0) ]
      ~on_frame:(fun ~src:_ _ -> ())
      ~tracer ()
  in
  Tcp_mesh.send mesh0 ~dst:99 "lost";
  Alcotest.(check int) "counted" 1 (Tcp_mesh.frames_dropped mesh0);
  Alcotest.(check (list string)) "traced with reason" [ "unknown-dst" ] (drop_reasons tracer);
  Tcp_mesh.close mesh0

let test_mesh_oversize_resets_link () =
  (* A frame above the receiver's limit must reset that link instead of
     being buffered; frames that arrived before it are unaffected. *)
  let loop = Loop.create () in
  let fd0, addr0 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  let fd1, addr1 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  let peers = [ (0, addr0); (1, addr1) ] in
  let got = ref [] in
  let tracer = Trace.memory () in
  let mesh0 =
    Tcp_mesh.create loop ~me:0 ~listen_fd:fd0 ~peers ~on_frame:(fun ~src:_ _ -> ()) ()
  in
  let mesh1 =
    Tcp_mesh.create loop ~me:1 ~listen_fd:fd1 ~peers
      ~on_frame:(fun ~src:_ frame -> got := str frame :: !got)
      ~tracer ~max_frame:1024 ()
  in
  Tcp_mesh.send mesh0 ~dst:1 "small";
  Loop.run ~until:(fun () -> !got <> []) ~timeout:5.0 loop;
  Tcp_mesh.send mesh0 ~dst:1 (String.make 4096 'x');
  Tcp_mesh.send mesh0 ~dst:1 "small-after";
  Loop.run ~timeout:0.5 loop;
  Alcotest.(check (list string)) "only the pre-oversize frame" [ "small" ] (List.rev !got);
  Alcotest.(check int) "oversize counted" 1 (Tcp_mesh.frames_oversize mesh1);
  Alcotest.(check bool) "traced as oversize" true
    (List.mem "oversize" (drop_reasons tracer));
  Tcp_mesh.close mesh0;
  Tcp_mesh.close mesh1

let test_mesh_dial_backoff () =
  (* An unreachable peer: retries must back off exponentially, not
     hammer once per poll tick. *)
  let loop = Loop.create () in
  let fd0, addr0 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  let fd1_tmp, addr1 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  Unix.close fd1_tmp;
  let dial =
    { Tcp_mesh.default_dial_policy with base_delay = 0.1; max_delay = 1.0 }
  in
  let mesh0 =
    Tcp_mesh.create loop ~me:0 ~listen_fd:fd0 ~peers:[ (0, addr0); (1, addr1) ]
      ~on_frame:(fun ~src:_ _ -> ())
      ~dial ()
  in
  Loop.run ~timeout:0.6 loop;
  let attempts = Tcp_mesh.dial_attempts mesh0 ~dst:1 in
  Alcotest.(check bool)
    (Printf.sprintf "backed off (%d attempts in 0.6s)" attempts)
    true
    (attempts >= 2 && attempts <= 5);
  Alcotest.(check bool) "still willing to dial" false (Tcp_mesh.written_off mesh0 ~dst:1);
  Tcp_mesh.close mesh0

let test_mesh_dial_cap_writes_off () =
  let loop = Loop.create () in
  let fd0, addr0 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  let fd1_tmp, addr1 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  Unix.close fd1_tmp;
  let tracer = Trace.memory () in
  let dial =
    {
      Tcp_mesh.base_delay = 0.01;
      max_delay = 0.05;
      multiplier = 2.0;
      jitter = 0.2;
      max_attempts = Some 3;
    }
  in
  let mesh0 =
    Tcp_mesh.create loop ~me:0 ~listen_fd:fd0 ~peers:[ (0, addr0); (1, addr1) ]
      ~on_frame:(fun ~src:_ _ -> ())
      ~tracer ~dial ()
  in
  Tcp_mesh.send mesh0 ~dst:1 "doomed";
  Loop.run ~timeout:0.5 loop;
  Alcotest.(check bool) "written off after the cap" true (Tcp_mesh.written_off mesh0 ~dst:1);
  Alcotest.(check int) "queue flushed, nothing pending" 0 (Tcp_mesh.pending_bytes mesh0 ~dst:1);
  Alcotest.(check bool) "queued frame counted as dropped" true
    (Tcp_mesh.frames_dropped mesh0 >= 1);
  Alcotest.(check bool) "traced as dial-cap" true (List.mem "dial-cap" (drop_reasons tracer));
  (* Further sends are refused loudly, not buffered forever. *)
  let before = Tcp_mesh.frames_dropped mesh0 in
  Tcp_mesh.send mesh0 ~dst:1 "late";
  Alcotest.(check int) "late frame dropped" (before + 1) (Tcp_mesh.frames_dropped mesh0);
  Alcotest.(check bool) "traced as written-off" true
    (List.mem "written-off" (drop_reasons tracer));
  Tcp_mesh.close mesh0

(* Torn-batch reassembly: arbitrary inner frames grouped into arbitrary
   batches, the byte stream delivered in arbitrary chunk splits
   (including cuts inside the 4-byte header and inside varints) — the
   assembler plus the batch iterator must yield exactly the original
   inner frames, in order, with nothing left buffered at the end. *)

let rec take k = function
  | x :: rest when k > 0 ->
      let a, b = take (k - 1) rest in
      (x :: a, b)
  | rest -> ([], rest)

let add_varint buf v =
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

let add_be32 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff))

let batch_stream inner batch_sizes =
  let stream = Buffer.create 256 in
  let payload = Buffer.create 256 in
  let rec build inner sizes =
    match inner with
    | [] -> ()
    | _ ->
        let k, sizes =
          match sizes with [] -> (3, []) | s :: rest -> (s, rest)
        in
        let batch, rest = take k inner in
        Buffer.clear payload;
        List.iter
          (fun s ->
            add_varint payload (String.length s);
            Buffer.add_string payload s)
          batch;
        add_be32 stream (Buffer.length payload);
        Buffer.add_buffer stream payload;
        build rest sizes
  in
  build inner batch_sizes;
  Buffer.contents stream

let torn_batch_property =
  QCheck.Test.make ~name:"torn-batch reassembly yields the exact inner frames" ~count:300
    (QCheck.make
       ~print:(fun (inner, sizes, cuts) ->
         Printf.sprintf "%d frames, %d batch sizes, %d cuts" (List.length inner)
           (List.length sizes) (List.length cuts))
       QCheck.Gen.(
         triple
           (list_size (int_range 0 25) (string_size (int_range 0 200)))
           (list_size (int_range 0 10) (int_range 1 4))
           (list_size (int_range 0 30) (int_range 1 97))))
    (fun (inner, batch_sizes, cuts) ->
      let stream = batch_stream inner batch_sizes in
      let asm = Tcp_mesh.Assembler.create () in
      let out = ref [] in
      let bad = ref false in
      let rec drain () =
        match Tcp_mesh.Assembler.next asm with
        | Tcp_mesh.Assembler.Frame slice ->
            (* Copy out: the slice dies at the next feed. *)
            Tcp_mesh.iter_batch slice (fun s ->
                out := Svs_codec.Codec.Slice.to_string s :: !out);
            drain ()
        | Tcp_mesh.Assembler.Await -> ()
        | Tcp_mesh.Assembler.Oversize _ -> bad := true
      in
      let cuts = if cuts = [] then [ 1 ] else cuts in
      let ncuts = List.length cuts in
      let pos = ref 0 and i = ref 0 in
      while !pos < String.length stream do
        let k = min (List.nth cuts (!i mod ncuts)) (String.length stream - !pos) in
        Tcp_mesh.Assembler.feed asm (String.sub stream !pos k);
        pos := !pos + k;
        incr i;
        drain ()
      done;
      (not !bad) && List.rev !out = inner && Tcp_mesh.Assembler.buffered asm = 0)

(* --- Iobuf: burst shrink --- *)

module Iobuf = Svs_rt.Iobuf

let test_iobuf_shrink () =
  let buf = Iobuf.create ~capacity:64 ~shrink:1024 () in
  let initial = Iobuf.capacity buf in
  (* A burst well past the shrink threshold grows the backing. *)
  Iobuf.add_string buf (String.make 4096 'a');
  Alcotest.(check bool) "backing grew past shrink" true (Iobuf.capacity buf > 1024);
  (* Draining the burst releases the oversized backing. *)
  Iobuf.consume buf (Iobuf.length buf);
  Alcotest.(check int) "empty after drain" 0 (Iobuf.length buf);
  Alcotest.(check int) "backing released to initial size" initial (Iobuf.capacity buf);
  (* Steady-state traffic below the threshold keeps its backing. *)
  Iobuf.add_string buf (String.make 512 'b');
  let steady = Iobuf.capacity buf in
  Iobuf.consume buf (Iobuf.length buf);
  Alcotest.(check int) "small backing survives drain" steady (Iobuf.capacity buf);
  (* Partial drains never shrink: live bytes stay addressable. *)
  Iobuf.add_string buf (String.make 4096 'c');
  Iobuf.consume buf 4000;
  Alcotest.(check bool) "partial drain keeps backing" true (Iobuf.capacity buf > 1024);
  Alcotest.(check int) "tail intact" 96 (Iobuf.length buf)

(* --- Tcp_mesh: backpressure + semantic shedding --- *)

module Shed = Svs_obs.Shed
module Msg_id = Svs_obs.Msg_id

(* Deterministic shed scenario: queue a chain of mutually-obsoleting
   frames faster than the link can drain them (here: before the loop
   runs at all, so nothing drains). The first frame fills the open
   batch past the soft watermark; every later frame lands in the
   overflow stage where the newest Tag covers all its predecessors,
   so only the head of the committed batch and the newest queued
   frame should ever reach the wire. *)
let test_mesh_shed_obsolete_frames () =
  let loop = Loop.create () in
  let fd0, addr0 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  let fd1, addr1 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  let peers = [ (0, addr0); (1, addr1) ] in
  let got = ref [] in
  let bp =
    { Tcp_mesh.default_backpressure with soft = 4096; hard = 1 lsl 20; resume = 1024 }
  in
  let mesh0 =
    Tcp_mesh.create loop ~me:0 ~listen_fd:fd0 ~peers
      ~on_frame:(fun ~src:_ _ -> ())
      ~backpressure:bp ()
  in
  let mesh1 =
    Tcp_mesh.create loop ~me:1 ~listen_fd:fd1 ~peers
      ~on_frame:(fun ~src:_ frame -> got := str frame :: !got)
      ()
  in
  let n = 30 in
  let payload i = Printf.sprintf "%06d|" i ^ String.make 8185 'x' in
  let sn_of s = int_of_string (String.sub s 0 6) in
  for i = 0 to n - 1 do
    let meta =
      { Shed.id = Msg_id.make ~sender:0 ~sn:i; ann = Annotation.Tag 7; view = 0 }
    in
    Tcp_mesh.send mesh0 ~dst:1 ~meta (payload i)
  done;
  let shed = Tcp_mesh.shed_frames mesh0 in
  Alcotest.(check bool) "most of the chain was shed" true (shed >= n - 4);
  (* Now let the loop connect and drain what survived. *)
  Loop.run
    ~until:(fun () -> List.exists (fun s -> sn_of s = n - 1) !got)
    ~timeout:5.0 loop;
  let sns = List.rev_map sn_of !got in
  Alcotest.(check bool) "newest frame delivered" true (List.mem (n - 1) sns);
  Alcotest.(check int) "survivors + shed = sent" n (List.length sns + shed);
  (* FIFO survives shedding: the survivors arrive in send order. *)
  Alcotest.(check (list int)) "survivors in order" (List.sort compare sns) sns;
  Tcp_mesh.close mesh0;
  Tcp_mesh.close mesh1

(* Without shedding the same chain must be retained bit-for-bit. *)
let test_mesh_no_shed_keeps_chain () =
  let loop = Loop.create () in
  let fd0, addr0 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  let fd1, addr1 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  let peers = [ (0, addr0); (1, addr1) ] in
  let got = ref 0 in
  let bp =
    { Tcp_mesh.default_backpressure with soft = 4096; hard = 1 lsl 20; resume = 1024;
      shed = false }
  in
  let mesh0 =
    Tcp_mesh.create loop ~me:0 ~listen_fd:fd0 ~peers
      ~on_frame:(fun ~src:_ _ -> ())
      ~backpressure:bp ()
  in
  let mesh1 =
    Tcp_mesh.create loop ~me:1 ~listen_fd:fd1 ~peers
      ~on_frame:(fun ~src:_ _ -> incr got)
      ()
  in
  let n = 30 in
  for i = 0 to n - 1 do
    let meta =
      { Shed.id = Msg_id.make ~sender:0 ~sn:i; ann = Annotation.Tag 7; view = 0 }
    in
    Tcp_mesh.send mesh0 ~dst:1 ~meta (Printf.sprintf "%06d|" i ^ String.make 8185 'x')
  done;
  Alcotest.(check int) "nothing shed" 0 (Tcp_mesh.shed_frames mesh0);
  Loop.run ~until:(fun () -> !got >= n) ~timeout:5.0 loop;
  Alcotest.(check int) "every frame delivered" n !got;
  Tcp_mesh.close mesh0;
  Tcp_mesh.close mesh1

(* --- Wal: durable node state --- *)

module Wal = Svs_rt.Wal

let temp_dir () =
  let path = Filename.temp_file "svs-wal" "" in
  Sys.remove path;
  path

let last_segment dir =
  match
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".log")
    |> List.sort compare |> List.rev
  with
  | [] -> Alcotest.fail "no WAL segment on disk"
  | f :: _ -> Filename.concat dir f

let segment_count dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".log")
  |> List.length

(* Unwrap [Wal.open_] for the tests that expect it to succeed. *)
let wal_open ?segment_limit ?salvage ~dir ~me () =
  match Wal.open_ ~dir ~me ?segment_limit ?salvage () with
  | Ok wr -> wr
  | Error e -> Alcotest.fail (Wal.open_error_message e)

let test_wal_round_trip () =
  let dir = temp_dir () in
  let w, r0 = wal_open ~dir ~me:7 () in
  Alcotest.(check bool) "fresh on first open" true r0.Wal.fresh;
  Wal.append w (Wal.Install (View.make ~id:3 ~members:[ 0; 1; 7 ]));
  Wal.append w (Wal.Floor { sender = 0; sn = 4 });
  Wal.append w (Wal.Floor { sender = 0; sn = 9 });
  Wal.append w (Wal.Floor { sender = 1; sn = 2 });
  Wal.append_durable w (Wal.Lease { next_sn = 64 });
  Wal.close w;
  let w2, r = wal_open ~dir ~me:7 () in
  Wal.close w2;
  Alcotest.(check bool) "not fresh on reopen" false r.Wal.fresh;
  (match r.Wal.view with
  | Some v ->
      Alcotest.(check int) "view id survives" 3 v.View.id;
      Alcotest.(check (list int)) "view members survive" [ 0; 1; 7 ] v.View.members
  | None -> Alcotest.fail "installed view lost");
  Alcotest.(check (list (pair int int)))
    "floors keep the max per sender"
    [ (0, 9); (1, 2) ]
    (List.sort compare r.Wal.floors);
  Alcotest.(check int) "lease ceiling survives" 64 r.Wal.next_sn;
  Alcotest.(check int) "nothing truncated" 0 r.Wal.truncated

let test_wal_torn_tail () =
  (* A crash mid-write leaves a partial frame at the tail: recovery
     must keep the valid prefix, chop the garbage, and leave the log
     appendable. *)
  let dir = temp_dir () in
  let w, _ = wal_open ~dir ~me:2 () in
  Wal.append_durable w (Wal.Floor { sender = 1; sn = 7 });
  Wal.close w;
  (* A torn write: a header promising 100 bytes, followed by 3. *)
  let fd = Unix.openfile (last_segment dir) [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  let garbage = Bytes.of_string "\x00\x00\x00\x64abc" in
  ignore (Unix.write fd garbage 0 (Bytes.length garbage));
  Unix.close fd;
  let w2, r = wal_open ~dir ~me:2 () in
  Alcotest.(check int) "torn tail chopped" (Bytes.length garbage) r.Wal.truncated;
  Alcotest.(check (list (pair int int))) "valid prefix kept" [ (1, 7) ] r.Wal.floors;
  Wal.append_durable w2 (Wal.Floor { sender = 1; sn = 9 });
  Wal.close w2;
  let w3, r3 = wal_open ~dir ~me:2 () in
  Wal.close w3;
  Alcotest.(check int) "clean after the chop" 0 r3.Wal.truncated;
  Alcotest.(check (list (pair int int))) "appends after recovery stick" [ (1, 9) ]
    r3.Wal.floors

let test_wal_bad_crc () =
  (* Bit rot inside the last record: the checksum must reject it and
     replay must stop there, keeping everything before it. *)
  let dir = temp_dir () in
  let w, _ = wal_open ~dir ~me:5 () in
  Wal.append w (Wal.Install (View.make ~id:1 ~members:[ 0; 5 ]));
  Wal.append_durable w (Wal.Lease { next_sn = 10 });
  Wal.append_durable w (Wal.Floor { sender = 0; sn = 5 });
  Wal.close w;
  let path = last_segment dir in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  ignore (Unix.lseek fd (size - 1) Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set_uint8 b 0 (Bytes.get_uint8 b 0 lxor 0xFF);
  ignore (Unix.lseek fd (size - 1) Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let w2, r = wal_open ~dir ~me:5 () in
  Wal.close w2;
  Alcotest.(check bool) "corrupt record chopped" true (r.Wal.truncated > 0);
  Alcotest.(check (list (pair int int))) "corrupt floor rejected" [] r.Wal.floors;
  Alcotest.(check int) "records before it survive" 10 r.Wal.next_sn;
  match r.Wal.view with
  | Some v -> Alcotest.(check int) "view survives" 1 v.View.id
  | None -> Alcotest.fail "view lost to an unrelated corruption"

let test_wal_rotation () =
  (* A tiny segment limit: the log must rotate (snapshot into the next
     segment, delete the old ones) and still recover the full state. *)
  let dir = temp_dir () in
  let w, _ = wal_open ~dir ~me:3 ~segment_limit:256 () in
  Wal.append w (Wal.Install (View.make ~id:2 ~members:[ 0; 3 ]));
  for sn = 1 to 200 do
    Wal.append w (Wal.Floor { sender = 0; sn })
  done;
  Alcotest.(check bool)
    (Printf.sprintf "rotated (segment %d)" (Wal.current_segment w))
    true
    (Wal.current_segment w > 0);
  Wal.close w;
  Alcotest.(check int) "old segments deleted" 1 (segment_count dir);
  let w2, r = wal_open ~dir ~me:3 () in
  Wal.close w2;
  Alcotest.(check (list (pair int int))) "floors survive rotation" [ (0, 200) ] r.Wal.floors;
  (match r.Wal.view with
  | Some v -> Alcotest.(check int) "view survives rotation" 2 v.View.id
  | None -> Alcotest.fail "view lost in rotation");
  Alcotest.(check bool) "log stays small" true
    ((Unix.stat (last_segment dir)).Unix.st_size < 1024)

let test_wal_identity_mismatch () =
  (* Two nodes sharing a data dir is a deployment error, never a
     silent state mixup. *)
  let dir = temp_dir () in
  let w, _ = wal_open ~dir ~me:1 () in
  Wal.append_durable w (Wal.Lease { next_sn = 5 });
  Wal.close w;
  (match Wal.open_ ~dir ~me:2 () with
  | Error (Wal.Foreign_log { owner; me; _ }) ->
      Alcotest.(check int) "names the owner" 1 owner;
      Alcotest.(check int) "names the refused node" 2 me;
      Alcotest.(check bool)
        "message mentions both ids" true
        (let msg = Wal.open_error_message (Wal.Foreign_log { dir; owner; me }) in
         Astring.String.is_infix ~affix:"node 1" msg
         && Astring.String.is_infix ~affix:"node 2" msg)
  | Ok (w2, _) ->
      Wal.close w2;
      Alcotest.fail "opened another node's log without complaint");
  (* [open_exn] (what [Node.create] uses) surfaces the same condition
     as a typed exception, not a bare [Failure]. *)
  match Wal.open_exn ~dir ~me:2 () with
  | exception Wal.Open_error (Wal.Foreign_log _) -> ()
  | w2, _ ->
      Wal.close w2;
      Alcotest.fail "open_exn accepted another node's log"

let test_wal_group_commit_crash () =
  (* A crash between an append and the commit tick loses at most the
     in-memory tail: everything synced stays, the un-synced appends
     vanish cleanly, and a tail that partially reached the disk is
     chopped like any torn write. *)
  let dir = temp_dir () in
  let w, _ = wal_open ~dir ~me:4 () in
  Wal.append w (Wal.Install (View.make ~id:2 ~members:[ 0; 4 ]));
  Wal.append w (Wal.Floor { sender = 0; sn = 3 });
  Wal.sync w;
  Wal.append w (Wal.Floor { sender = 0; sn = 8 });
  Wal.append w (Wal.Lease { next_sn = 100 });
  Alcotest.(check bool) "appends ride the tail" true (Wal.pending_bytes w > 0);
  Wal.abandon w;
  let w2, r = wal_open ~dir ~me:4 () in
  (match r.Wal.view with
  | Some v -> Alcotest.(check int) "synced view survives" 2 v.View.id
  | None -> Alcotest.fail "synced view lost");
  Alcotest.(check (list (pair int int))) "synced floor survives" [ (0, 3) ] r.Wal.floors;
  Alcotest.(check int) "un-synced lease lost" 0 r.Wal.next_sn;
  Alcotest.(check int) "clean cut, nothing to chop" 0 r.Wal.truncated;
  (* The survivor is a working log. *)
  Wal.append_durable w2 (Wal.Lease { next_sn = 7 });
  Wal.abandon w2;
  (* Crash again, this time with a partial frame on disk (the kernel
     got half the tail before the power went). *)
  let fd = Unix.openfile (last_segment dir) [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  let torn = Bytes.of_string "\x00\x00\x00\x40ab" in
  ignore (Unix.write fd torn 0 (Bytes.length torn));
  Unix.close fd;
  let w3, r3 = wal_open ~dir ~me:4 () in
  Wal.close w3;
  Alcotest.(check int) "torn tail chopped" (Bytes.length torn) r3.Wal.truncated;
  Alcotest.(check int) "durable lease survives both crashes" 7 r3.Wal.next_sn;
  Alcotest.(check (list (pair int int))) "floors intact" [ (0, 3) ] r3.Wal.floors

(* --- Node: a live three-member group over loopback --- *)

let fast_heartbeats =
  {
    Svs_detector.Heartbeat.period = 0.04;
    initial_timeout = 0.3;
    timeout_increment = 0.2;
    max_timeout = 2.0;
  }

let node_config = { Node.default_config with heartbeat = fast_heartbeats }

(* A group of [n] nodes in one loop; each consumes at its own period
   (pull-based, so unconsumed messages stay purgeable), appending every
   delivery to its log. *)
let make_group ?consume_periods loop n =
  let listeners =
    List.init n (fun i ->
        let fd, addr = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
        (i, fd, addr))
  in
  let peers = List.map (fun (i, _, addr) -> (i, addr)) listeners in
  let deliveries = Array.make n [] in
  let nodes =
    List.map
      (fun (i, fd, _) ->
        Node.create loop ~me:i ~listen_fd:fd ~peers ~payload_codec:Wire_codec.int_codec
          ~config:node_config ())
      listeners
  in
  let nodes = Array.of_list nodes in
  Array.iteri
    (fun i node ->
      let period =
        match consume_periods with
        | Some periods -> List.nth periods i
        | None -> 0.005
      in
      let batch = if period <= 0.005 then 64 else 1 in
      ignore
        (Loop.every loop ~period (fun () ->
             let rec go k =
               if k > 0 then
                 match Node.deliver node with
                 | None -> ()
                 | Some d ->
                     deliveries.(i) <- d :: deliveries.(i);
                     go (k - 1)
             in
             go batch;
             true)
          : Loop.timer))
    nodes;
  (nodes, deliveries)

let data_payloads ds =
  List.filter_map
    (function Types.Data d -> Some d.Types.payload | Types.View_change _ -> None)
    (List.rev ds)

let test_node_group_multicast () =
  let loop = Loop.create () in
  let nodes, deliveries = make_group loop 3 in
  (* Give the mesh a moment to connect, then publish. *)
  ignore
    (Loop.after loop ~delay:0.3 (fun () ->
         for i = 1 to 10 do
           ignore (Node.multicast nodes.(0) i)
         done));
  let all_in () =
    Array.for_all (fun ds -> List.length (data_payloads ds) >= 10) deliveries
  in
  Loop.run ~until:all_in ~timeout:10.0 loop;
  Array.iteri
    (fun i ds ->
      Alcotest.(check (list int))
        (Printf.sprintf "node %d delivered all in FIFO order" i)
        (List.init 10 (fun k -> k + 1))
        (data_payloads ds))
    deliveries;
  Array.iter Node.shutdown nodes

let test_node_group_view_change_on_crash () =
  let loop = Loop.create () in
  let nodes, deliveries = make_group loop 3 in
  ignore
    (Loop.after loop ~delay:0.3 (fun () -> ignore (Node.multicast nodes.(0) 1)));
  (* Crash node 2 once traffic has flowed. *)
  ignore (Loop.after loop ~delay:0.6 (fun () -> Node.shutdown nodes.(2)));
  let reconfigured () =
    (View.mem 2 (Node.view nodes.(0)) = false)
    && (View.mem 2 (Node.view nodes.(1)) = false)
  in
  Loop.run ~until:reconfigured ~timeout:15.0 loop;
  (* Consume whatever is still queued so the markers reach the app. *)
  Array.iteri
    (fun i node ->
      List.iter (fun d -> deliveries.(i) <- d :: deliveries.(i)) (Node.deliver_all node))
    nodes;
  Alcotest.(check bool) "node 0 left view 0" true ((Node.view nodes.(0)).View.id >= 1);
  Alcotest.(check bool) "membership agrees" true
    (View.equal (Node.view nodes.(0)) (Node.view nodes.(1)));
  Alcotest.(check (list int)) "survivors" [ 0; 1 ] (Node.view nodes.(0)).View.members;
  (* The view-change marker reached the applications. *)
  let saw_view i =
    List.exists
      (function Types.View_change v -> v.View.id >= 1 | Types.Data _ -> false)
      deliveries.(i)
  in
  Alcotest.(check bool) "marker at node 0" true (saw_view 0);
  Alcotest.(check bool) "marker at node 1" true (saw_view 1);
  Array.iter Node.shutdown nodes

let test_node_purging_over_tcp () =
  (* Node 2 consumes slowly while 50 updates of one hot item arrive:
     its protocol queue purges stale values, so it reaches the final
     value having delivered far fewer than 50 messages. *)
  let loop = Loop.create () in
  let nodes, deliveries =
    make_group ~consume_periods:[ 0.002; 0.002; 0.08 ] loop 3
  in
  ignore
    (Loop.after loop ~delay:0.3 (fun () ->
         for i = 1 to 50 do
           ignore (Node.multicast nodes.(0) ~ann:(Annotation.Tag 7) i)
         done));
  let got_final () =
    Array.for_all
      (fun ds -> match data_payloads ds with [] -> false | l -> List.mem 50 l)
      deliveries
  in
  Loop.run ~until:got_final ~timeout:15.0 loop;
  Array.iteri
    (fun i ds ->
      let got = data_payloads ds in
      Alcotest.(check bool) (Printf.sprintf "node %d got the final value" i) true
        (List.mem 50 got);
      Alcotest.(check bool) "in order" true (List.sort compare got = got))
    deliveries;
  let slow_got = List.length (data_payloads deliveries.(2)) in
  Alcotest.(check bool)
    (Printf.sprintf "slow node skipped stale values (delivered %d, purged %d)" slow_got
       (Node.purged nodes.(2)))
    true
    (Node.purged nodes.(2) > 0 && slow_got < 50);
  Array.iter Node.shutdown nodes

let test_mesh_no_silent_reconnect () =
  (* A peer that crashes must NOT silently get a resumed stream (bytes
     in flight were lost; the reliable-FIFO contract is gone): once the
     break surfaces, the peer is written off. A *new incarnation*
     dialing in with a fresh hello is forgiven — it gets a brand-new
     stream, never a replay of the dropped frames. *)
  let loop = Loop.create () in
  let fd0, addr0 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  let fd1, addr1 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  let peers = [ (0, addr0); (1, addr1) ] in
  let got = ref [] in
  let mesh0 =
    Tcp_mesh.create loop ~me:0 ~listen_fd:fd0 ~peers ~on_frame:(fun ~src:_ _ -> ()) ()
  in
  let mesh1 =
    Tcp_mesh.create loop ~me:1 ~listen_fd:fd1 ~peers
      ~on_frame:(fun ~src frame -> got := (src, str frame) :: !got)
      ()
  in
  Tcp_mesh.send mesh0 ~dst:1 "before";
  Loop.run ~until:(fun () -> !got <> []) ~timeout:5.0 loop;
  Alcotest.(check int) "first frame arrived" 1 (List.length !got);
  (* Peer 1 crashes. The sender keeps talking; the first failed write
     surfaces the broken stream and writes the peer off. *)
  Tcp_mesh.close mesh1;
  ignore
    (Loop.every loop ~period:0.02 (fun () ->
         Tcp_mesh.send mesh0 ~dst:1 "during";
         true));
  Loop.run ~until:(fun () -> Tcp_mesh.written_off mesh0 ~dst:1) ~timeout:5.0 loop;
  Alcotest.(check bool) "written off after the break" true
    (Tcp_mesh.written_off mesh0 ~dst:1);
  Alcotest.(check int) "nothing silently resumed" 1 (List.length !got);
  Alcotest.(check (list int)) "not connected" [] (Tcp_mesh.connected mesh0);
  Alcotest.(check int) "nothing buffered for the dead incarnation" 0
    (Tcp_mesh.pending_bytes mesh0 ~dst:1);
  (* A new incarnation restarts on the same address and dials us: its
     hello forgives the write-off and opens a fresh stream. *)
  let got_b = ref [] in
  let fd1b, _ = Tcp_mesh.listener addr1 in
  let mesh1b =
    Tcp_mesh.create loop ~me:1 ~listen_fd:fd1b ~peers
      ~on_frame:(fun ~src frame -> got_b := (src, str frame) :: !got_b)
      ()
  in
  Loop.run ~until:(fun () -> !got_b <> []) ~timeout:5.0 loop;
  Alcotest.(check int) "forgiveness counted" 1 (Tcp_mesh.writeoff_resets mesh0);
  Alcotest.(check bool) "fresh stream carries only new traffic" true
    (List.for_all (fun (src, f) -> src = 0 && f = "during") !got_b);
  Alcotest.(check bool) "dropped frames were not replayed" false
    (List.exists (fun (_, f) -> f = "before") !got_b);
  Tcp_mesh.close mesh0;
  Tcp_mesh.close mesh1b

let test_mesh_forget_peer_redials () =
  (* Written off by the dial cap; the membership layer later readmits
     the peer: forget_peer restores the budget and a fresh stream comes
     up. *)
  let loop = Loop.create () in
  let fd0, addr0 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  let fd1_tmp, addr1 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  Unix.close fd1_tmp;
  let peers = [ (0, addr0); (1, addr1) ] in
  let dial =
    {
      Tcp_mesh.base_delay = 0.01;
      max_delay = 0.05;
      multiplier = 2.0;
      jitter = 0.2;
      max_attempts = Some 2;
    }
  in
  let mesh0 =
    Tcp_mesh.create loop ~me:0 ~listen_fd:fd0 ~peers ~on_frame:(fun ~src:_ _ -> ())
      ~dial ()
  in
  Tcp_mesh.send mesh0 ~dst:1 "doomed";
  Loop.run ~until:(fun () -> Tcp_mesh.written_off mesh0 ~dst:1) ~timeout:5.0 loop;
  Alcotest.(check bool) "written off" true (Tcp_mesh.written_off mesh0 ~dst:1);
  (* Peer 1 comes up at the promised address; nothing happens until the
     membership layer forgives it. *)
  let fd1, _ = Tcp_mesh.listener addr1 in
  Tcp_mesh.forget_peer mesh0 ~dst:1;
  Tcp_mesh.send mesh0 ~dst:1 "fresh";
  let got = ref [] in
  let mesh1 =
    Tcp_mesh.create loop ~me:1 ~listen_fd:fd1 ~peers
      ~on_frame:(fun ~src frame -> got := (src, str frame) :: !got)
      ()
  in
  Loop.run ~until:(fun () -> !got <> []) ~timeout:5.0 loop;
  Alcotest.(check (list (pair int string))) "fresh frame arrived" [ (0, "fresh") ] !got;
  Alcotest.(check int) "reset counted" 1 (Tcp_mesh.writeoff_resets mesh0);
  Alcotest.(check bool) "no longer written off" false (Tcp_mesh.written_off mesh0 ~dst:1);
  Tcp_mesh.close mesh0;
  Tcp_mesh.close mesh1

let test_node_restart_rejoins () =
  (* The full recovery loop, live over TCP: a durable node crashes, the
     survivors exclude it, it restarts from its WAL at the same address,
     rejoins via JOIN/SYNC with a sponsor snapshot, and delivers only
     post-crash traffic (Integrity across the restart). *)
  let loop = Loop.create () in
  let dir = temp_dir () in
  let n = 3 in
  let listeners =
    List.init n (fun i ->
        let fd, addr = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
        (i, fd, addr))
  in
  let peers = List.map (fun (i, _, addr) -> (i, addr)) listeners in
  let deliveries = Array.make n [] in
  let consume i node =
    ignore
      (Loop.every loop ~period:0.005 (fun () ->
           List.iter (fun d -> deliveries.(i) <- d :: deliveries.(i)) (Node.deliver_all node);
           true)
        : Loop.timer)
  in
  let nodes =
    Array.of_list
      (List.map
         (fun (i, fd, _) ->
           let data_dir = if i = 2 then Some dir else None in
           let node =
             Node.create loop ~me:i ~listen_fd:fd ~peers
               ~payload_codec:Wire_codec.int_codec ~config:node_config
               ~state_transfer:(fun () -> Some "app-snapshot")
               ?data_dir ()
           in
           consume i node;
           node)
         listeners)
  in
  ignore
    (Loop.after loop ~delay:0.3 (fun () ->
         for i = 1 to 10 do
           ignore (Node.multicast nodes.(0) i)
         done));
  let all_in () =
    Array.for_all (fun ds -> List.length (data_payloads ds) >= 10) deliveries
  in
  Loop.run ~until:all_in ~timeout:10.0 loop;
  Alcotest.(check (list int)) "first incarnation delivered 1..10"
    (List.init 10 (fun k -> k + 1))
    (data_payloads deliveries.(2));
  (* Crash node 2; the survivors reconfigure it away. *)
  Node.shutdown nodes.(2);
  let excluded () =
    (not (View.mem 2 (Node.view nodes.(0)))) && not (View.mem 2 (Node.view nodes.(1)))
  in
  Loop.run ~until:excluded ~timeout:15.0 loop;
  (* Restart from the same data dir at the same address: the node comes
     back as a joiner, recovers its delivery floors from the WAL, and
     nags the survivors until it is readmitted. *)
  let _, _, addr2 = List.nth listeners 2 in
  let fd2b, _ = Tcp_mesh.listener addr2 in
  let synced = ref None in
  let node2b =
    Node.create loop ~me:2 ~listen_fd:fd2b ~peers ~payload_codec:Wire_codec.int_codec
      ~config:node_config ~data_dir:dir
      ~on_synced:(fun v app -> synced := Some (v, app))
      ()
  in
  Alcotest.(check bool) "restarted incarnation is a joiner" true (Node.is_joining node2b);
  deliveries.(2) <- [];
  consume 2 node2b;
  let readmitted () =
    Node.is_member node2b
    && View.mem 2 (Node.view nodes.(0))
    && View.mem 2 (Node.view nodes.(1))
  in
  Loop.run ~until:readmitted ~timeout:20.0 loop;
  (match !synced with
  | Some (v, app) ->
      Alcotest.(check bool)
        (Printf.sprintf "re-entered in a later view (%d)" v.View.id)
        true (v.View.id >= 2);
      Alcotest.(check (option string)) "sponsor snapshot arrived" (Some "app-snapshot") app
  | None -> Alcotest.fail "on_synced never fired");
  (* New traffic reaches the rejoined member — and nothing from before
     the crash is delivered twice. *)
  let published = ref 0 in
  ignore
    (Loop.every loop ~period:0.02 (fun () ->
         (if !published < 5 then
            match Node.multicast nodes.(0) (11 + !published) with
            | Ok _ -> incr published
            | Error _ -> ());
         !published < 5));
  Loop.run
    ~until:(fun () -> List.length (data_payloads deliveries.(2)) >= 5)
    ~timeout:10.0 loop;
  Alcotest.(check (list int)) "second incarnation delivers only post-crash traffic"
    [ 11; 12; 13; 14; 15 ]
    (data_payloads deliveries.(2));
  Node.shutdown node2b;
  Node.shutdown nodes.(0);
  Node.shutdown nodes.(1)

(* Slow-member escalation: a member that stops reading while
   unsheddable (Unrelated) traffic floods in pins the publisher's link
   over the hard watermark. The staged policy first reports the
   laggard, then force-suspects it, and the healthy majority evicts it
   through the ordinary view-change path. The detector timeouts are
   set far beyond the test horizon so the only route to the view
   change is the escalation itself (the paused victim would otherwise
   suspect everyone first — it stops reading heartbeats too). *)
let test_node_slow_member_escalation () =
  let loop = Loop.create () in
  let listeners =
    List.init 3 (fun i ->
        let fd, addr = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
        (i, fd, addr))
  in
  let peers = List.map (fun (i, _, addr) -> (i, addr)) listeners in
  let config =
    {
      node_config with
      Node.heartbeat =
        {
          Svs_detector.Heartbeat.period = 0.05;
          initial_timeout = 60.0;
          timeout_increment = 1.0;
          max_timeout = 120.0;
        };
      backpressure =
        {
          Tcp_mesh.default_backpressure with
          soft = 16 * 1024;
          hard = 64 * 1024;
          resume = 8 * 1024;
        };
      slow_member = { Node.report_after = 0.25; evict_after = Some 1.0 };
      (* The eviction's PRED exchange echoes the whole jammed backlog
         (stability is pinned by the victim), so the healthy members
         swap multi-megabyte flush frames here. *)
      max_frame = 64 * 1024 * 1024;
    }
  in
  let nodes =
    List.map
      (fun (i, fd, _) ->
        Node.create loop ~me:i ~listen_fd:fd ~peers
          ~payload_codec:Wire_codec.string_codec ~config ())
      listeners
    |> Array.of_list
  in
  (* Healthy members consume; the victim (2) will stop reading. *)
  Array.iteri
    (fun i node ->
      if i < 2 then
        ignore
          (Loop.every loop ~period:0.005 (fun () ->
               ignore (Node.deliver_all node);
               true)
            : Loop.timer))
    nodes;
  (* Sized so the flood jams the victim's link far past [hard] even
     after the kernel's socket buffers absorb their share. *)
  let sent = ref 0 in
  let payload = String.make 32_768 'p' in
  ignore
    (Loop.after loop ~delay:0.3 (fun () ->
         Node.pause_reads nodes.(2);
         ignore
           (Loop.every loop ~period:0.002 (fun () ->
                (* Unchecked flood: Unrelated payloads are never
                   sheddable, so the victim's link can only grow. *)
                for _ = 1 to 4 do
                  ignore (Node.multicast nodes.(0) payload)
                done;
                sent := !sent + 4;
                !sent < 400)
             : Loop.timer)));
  let evicted () =
    (not (View.mem 2 (Node.view nodes.(0)))) && not (View.mem 2 (Node.view nodes.(1)))
  in
  Loop.run ~until:evicted ~timeout:30.0 loop;
  Alcotest.(check bool) "victim evicted" true (evicted ());
  Alcotest.(check (list int)) "survivors" [ 0; 1 ]
    (Node.view nodes.(0)).View.members;
  Alcotest.(check bool) "laggard was reported first" true (Node.slow_reports nodes.(0) >= 1);
  Alcotest.(check int) "nothing sheddable was shed" 0 (Node.shed_frames nodes.(0));
  Array.iter Node.shutdown nodes

(* --- Ordered multicast over the real mesh --- *)

module Total = Svs_order.Total
module Codec = Svs_codec.Codec

let test_total_order_over_tcp () =
  (* The §7 toolkit is wire-capable too: a totally ordered stream over
     real sockets, with obsolete entries skipped identically at every
     terminal. *)
  let loop = Loop.create () in
  let n = 3 in
  let listeners =
    List.init n (fun i ->
        let fd, addr = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
        (i, fd, addr))
  in
  let peers = List.map (fun (i, _, addr) -> (i, addr)) listeners in
  let members = List.map fst peers in
  let nodes = Array.make n None in
  let meshes =
    List.map
      (fun (i, fd, _) ->
        Tcp_mesh.create loop ~me:i ~listen_fd:fd ~peers
          ~on_frame:(fun ~src frame ->
            match nodes.(i) with
            | Some node ->
                Total.on_message node ~src
                  (Total.read_msg Codec.Reader.zigzag (Codec.Reader.of_slice frame))
            | None -> ())
          ())
      listeners
  in
  let meshes = Array.of_list meshes in
  List.iter
    (fun i ->
      nodes.(i) <-
        Some
          (Total.create ~me:i ~members
             ~send:(fun ~dst msg ->
               let w = Codec.Writer.create () in
               Total.write_msg Codec.Writer.zigzag w msg;
               Tcp_mesh.send meshes.(i) ~dst (Codec.Writer.contents w))
             ()))
    members;
  let feed = Option.get nodes.(0) in
  ignore
    (Loop.after loop ~delay:0.3 (fun () ->
         for i = 1 to 12 do
           ignore (Total.multicast feed ~ann:(Annotation.Tag (i mod 2)) i)
         done));
  Loop.run
    ~until:(fun () ->
      Array.for_all
        (function Some node -> Total.pending node >= 12 | None -> false)
        nodes)
    ~timeout:10.0 loop;
  let tapes =
    Array.map
      (function
        | Some node -> List.map (fun (seq, d) -> (seq, d.Total.payload)) (Total.deliver_all node)
        | None -> [])
      nodes
  in
  Alcotest.(check bool) "every terminal has a tape" true
    (Array.for_all (fun t -> t <> []) tapes);
  Alcotest.(check bool) "tapes agree" true
    (Array.for_all (fun t -> t = tapes.(0)) tapes);
  Array.iter Tcp_mesh.close meshes

(* --- Admin endpoint --- *)

module Admin = Svs_rt.Admin
module Metrics = Svs_telemetry.Metrics

(* A loop-driven HTTP client: the server's accept/handle path runs on
   the same loop, so the whole request round-trips single-threaded. *)
let http_get loop port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (loopback, port));
  let req = Printf.sprintf "GET %s HTTP/1.0\r\nHost: test\r\n\r\n" path in
  ignore (Unix.write_substring fd req 0 (String.length req));
  let buf = Buffer.create 1024 in
  let closed = ref false in
  Loop.on_readable loop fd (fun () ->
      let chunk = Bytes.create 4096 in
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 ->
          closed := true;
          Loop.remove_fd loop fd;
          Unix.close fd
      | n -> Buffer.add_subbytes buf chunk 0 n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ());
  Loop.run ~until:(fun () -> !closed) ~timeout:5.0 loop;
  Buffer.contents buf

let contains haystack needle = Astring.String.is_infix ~affix:needle haystack

let test_admin_routes () =
  let loop = Loop.create () in
  let metrics = Metrics.create () in
  Metrics.Counter.add (Metrics.counter metrics ~labels:[ ("node", "0") ] "requests_total") 2;
  let admin =
    Admin.create loop
      ~addr:(Unix.ADDR_INET (loopback, 0))
      [
        ("/metrics", fun () -> Admin.prometheus (Metrics.prometheus_string metrics));
        ("/status", fun () -> Admin.json {|{"ok":true}|});
        ("/health", fun () -> Admin.text "ok\n");
        ("/boom", fun () -> failwith "kaboom");
      ]
  in
  let port = Admin.port admin in
  Alcotest.(check bool) "ephemeral port bound" true (port > 0);
  let metrics_resp = http_get loop port "/metrics" in
  Alcotest.(check bool) "200" true (contains metrics_resp "HTTP/1.0 200 OK");
  Alcotest.(check bool) "prometheus content type" true
    (contains metrics_resp "text/plain; version=0.0.4");
  Alcotest.(check bool) "TYPE line served" true
    (contains metrics_resp "# TYPE requests_total counter");
  Alcotest.(check bool) "sample served" true
    (contains metrics_resp "requests_total{node=\"0\"} 2");
  let status_resp = http_get loop port "/status?pretty=1" in
  Alcotest.(check bool) "json content type (query stripped)" true
    (contains status_resp "application/json");
  Alcotest.(check bool) "json body" true (contains status_resp {|{"ok":true}|});
  Alcotest.(check bool) "health ok" true (contains (http_get loop port "/health") "ok");
  let missing = http_get loop port "/nope" in
  Alcotest.(check bool) "404 with route list" true
    (contains missing "404" && contains missing "/metrics");
  Alcotest.(check bool) "handler exception answers 503" true
    (contains (http_get loop port "/boom") "HTTP/1.0 503");
  (* A live registry is re-rendered per request. *)
  Metrics.Counter.incr (Metrics.counter metrics ~labels:[ ("node", "0") ] "requests_total");
  Alcotest.(check bool) "fresh render" true
    (contains (http_get loop port "/metrics") "requests_total{node=\"0\"} 3");
  Admin.close admin

let test_admin_node_status () =
  (* A real node's /status payload: well-formed enough to grep the
     fields an operator keys on. *)
  let loop = Loop.create () in
  let nodes, _deliveries = make_group loop 3 in
  ignore
    (Loop.after loop ~delay:0.3 (fun () ->
         for i = 1 to 5 do
           ignore (Node.multicast nodes.(0) i)
         done));
  Loop.run ~until:(fun () -> Array.for_all (fun n -> Node.pending n = 0) nodes
                             && Node.bytes_in nodes.(1) > 0)
    ~timeout:5.0 loop;
  let s = Node.status_json nodes.(0) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "status has %s" needle) true (contains s needle))
    [
      {|"node":0|};
      {|"status":"member"|};
      {|"view":{"id":0,"members":[0,1,2]}|};
      {|"floors":|};
      {|"wal":null|};
      {|"peers":[{"peer":1,"up":true|};
    ];
  Alcotest.(check string) "label" "member" (Node.status_label nodes.(0));
  Alcotest.(check (option int)) "no wal" None (Node.wal_segment nodes.(0));
  Array.iter Node.shutdown nodes

(* --- Hostile inputs: salvage, quarantine, divergence, rude HTTP --- *)

(* Flip one payload byte of outer frame [index] in a WAL segment
   (frame 0 is the identity stamp, frame 1 the first record, ...). *)
let wal_flip_frame path ~index =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  let off = ref 0 and i = ref 0 in
  while !i < index do
    let flen = Int32.to_int (Bytes.get_int32_be b !off) in
    off := !off + 8 + flen;
    incr i
  done;
  let target = !off + 8 in
  Bytes.set b target (Char.chr (Char.code (Bytes.get b target) lxor 0x55));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_wal_salvage_interior () =
  (* Bit rot in the middle of the log: the salvage scan must skip the
     damaged record, keep everything after it, quarantine the bytes in
     a [.corrupt] sidecar, and leave a clean log behind. *)
  let dir = temp_dir () in
  let w, _ = wal_open ~dir ~me:6 () in
  Wal.append w (Wal.Install (View.make ~id:4 ~members:[ 0; 6 ]));
  Wal.append w (Wal.Floor { sender = 0; sn = 5 });
  Wal.append w (Wal.Floor { sender = 6; sn = 9 });
  Wal.append_durable w (Wal.Lease { next_sn = 50 });
  Wal.close w;
  wal_flip_frame (last_segment dir) ~index:2;
  let w2, r = wal_open ~dir ~me:6 () in
  Wal.close w2;
  Alcotest.(check bool) "one region skipped" true (r.Wal.skipped >= 1);
  Alcotest.(check bool) "recovery tainted" true r.Wal.tainted;
  (match r.Wal.view with
  | Some v -> Alcotest.(check int) "view before the damage survives" 4 v.View.id
  | None -> Alcotest.fail "view lost to an unrelated corruption");
  Alcotest.(check bool) "damaged floor rejected" true (not (List.mem_assoc 0 r.Wal.floors));
  Alcotest.(check (list (pair int int)))
    "records after the damage survive" [ (6, 9) ] r.Wal.floors;
  Alcotest.(check int) "lease after the damage survives" 50 r.Wal.next_sn;
  let sidecars =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".corrupt")
  in
  Alcotest.(check bool) "corrupt bytes kept in a sidecar" true (sidecars <> []);
  (* The salvage rewrite leaves a clean log behind: a second recovery
     skips and chops nothing and agrees on the state. *)
  let w3, r3 = wal_open ~dir ~me:6 () in
  Wal.close w3;
  Alcotest.(check int) "second recovery skips nothing" 0 r3.Wal.skipped;
  Alcotest.(check int) "second recovery chops nothing" 0 r3.Wal.truncated;
  Alcotest.(check bool) "second recovery untainted" false r3.Wal.tainted;
  Alcotest.(check int) "state agrees after the rewrite" 50 r3.Wal.next_sn

let test_mesh_quarantine_and_forgiveness () =
  (* Misbehavior escalation: enough garbage quarantines the peer, the
     cooldown forgives it, and traffic flows again afterwards. *)
  let loop = Loop.create () in
  let fd0, addr0 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  let fd1, addr1 = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
  let peers = [ (0, addr0); (1, addr1) ] in
  let got0 = ref 0 in
  let hostile =
    { Tcp_mesh.reset_score = 2.0; quarantine_score = 3.0; forgive_after = 0.4; decay = 0.0 }
  in
  let mesh0 =
    Tcp_mesh.create loop ~me:0 ~listen_fd:fd0 ~peers
      ~on_frame:(fun ~src:_ _ -> incr got0)
      ~hostile ()
  in
  let mesh1 =
    Tcp_mesh.create loop ~me:1 ~listen_fd:fd1 ~peers ~on_frame:(fun ~src:_ _ -> ()) ()
  in
  Tcp_mesh.send mesh1 ~dst:0 "before";
  Loop.run ~until:(fun () -> !got0 >= 1) ~timeout:5.0 loop;
  Alcotest.(check int) "honest traffic first" 1 !got0;
  for _ = 1 to 3 do
    Tcp_mesh.note_misbehavior mesh0 ~src:1 ~reason:"test-garbage"
  done;
  Alcotest.(check bool) "peer quarantined" true (Tcp_mesh.quarantined mesh0 ~peer:1);
  Alcotest.(check int) "counted once" 1 (Tcp_mesh.quarantined_total mesh0);
  (* mesh1 keeps sending throughout (real peers have heartbeats): its
     writes on the torn link fail and write the peer off during the
     sentence, and mesh0's fresh hello at forgiveness time revives it
     — after which 1 -> 0 flows again. *)
  let resend =
    Loop.every loop ~period:0.02 (fun () ->
        Tcp_mesh.send mesh1 ~dst:0 "after";
        true)
  in
  Loop.run ~until:(fun () -> not (Tcp_mesh.quarantined mesh0 ~peer:1)) ~timeout:5.0 loop;
  Alcotest.(check bool) "forgiven after the cooldown" true
    (not (Tcp_mesh.quarantined mesh0 ~peer:1));
  Loop.run ~until:(fun () -> !got0 >= 2) ~timeout:10.0 loop;
  Loop.cancel resend;
  Alcotest.(check bool) "traffic flows again" true (!got0 >= 2);
  Alcotest.(check int) "still one quarantine event" 1 (Tcp_mesh.quarantined_total mesh0);
  Tcp_mesh.close mesh0;
  Tcp_mesh.close mesh1

let test_node_divergence_self_heals () =
  (* A node whose replicated state silently diverges convicts itself
     via digest gossip, self-demotes to joiner, and rejoins healed by
     the sponsor's state transfer (modelled by [on_synced] resetting
     the digest). *)
  let loop = Loop.create () in
  let listeners =
    List.init 3 (fun i ->
        let fd, addr = Tcp_mesh.listener (Unix.ADDR_INET (loopback, 0)) in
        (i, fd, addr))
  in
  let peers = List.map (fun (i, _, addr) -> (i, addr)) listeners in
  let digests = Array.make 3 1 in
  let config = { node_config with Node.divergence_period = Some 0.1 } in
  let nodes =
    List.map
      (fun (i, fd, _) ->
        Node.create loop ~me:i ~listen_fd:fd ~peers ~payload_codec:Wire_codec.int_codec
          ~config
          ~state_digest:(fun () -> digests.(i))
          ~on_synced:(fun _ _ -> digests.(i) <- 1)
          ())
      listeners
    |> Array.of_list
  in
  Array.iter
    (fun node ->
      ignore
        (Loop.every loop ~period:0.005 (fun () ->
             let rec drain () =
               match Node.deliver node with None -> () | Some _ -> drain ()
             in
             drain ();
             true)))
    nodes;
  let full_view () =
    Array.for_all (fun nd -> (Node.view nd).View.members = [ 0; 1; 2 ]) nodes
  in
  Loop.run ~until:full_view ~timeout:10.0 loop;
  Alcotest.(check bool) "group formed" true (full_view ());
  digests.(2) <- 42;
  Loop.run ~until:(fun () -> Node.divergences nodes.(2) >= 1) ~timeout:20.0 loop;
  Alcotest.(check bool) "node 2 convicted itself" true (Node.divergences nodes.(2) >= 1);
  Alcotest.(check int) "the honest majority never convicts" 0
    (Node.divergences nodes.(0) + Node.divergences nodes.(1));
  Loop.run
    ~until:(fun () -> digests.(2) = 1 && Node.is_member nodes.(2) && full_view ())
    ~timeout:30.0 loop;
  Alcotest.(check bool) "state healed by the sync" true (digests.(2) = 1);
  Alcotest.(check bool) "readmitted" true (Node.is_member nodes.(2));
  Alcotest.(check bool) "full view restored" true (full_view ());
  Array.iter Node.shutdown nodes

let test_admin_hostile_clients () =
  (* Malformed HTTP must never wedge the accept loop: an oversized
     request line is answered from what was buffered and cut, binary
     garbage gets a 405, and a half-open connection parks harmlessly
     while other requests keep being served. *)
  let loop = Loop.create () in
  let admin =
    Admin.create loop
      ~addr:(Unix.ADDR_INET (loopback, 0))
      [ ("/health", fun () -> Admin.text "ok\n") ]
  in
  let port = Admin.port admin in
  let raw_request payload =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (loopback, port));
    ignore (Unix.write_substring fd payload 0 (String.length payload));
    let buf = Buffer.create 256 in
    let closed = ref false in
    let finish fd =
      closed := true;
      Loop.remove_fd loop fd;
      try Unix.close fd with Unix.Unix_error (_, _, _) -> ()
    in
    Loop.on_readable loop fd (fun () ->
        let chunk = Bytes.create 4096 in
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> finish fd
        | n -> Buffer.add_subbytes buf chunk 0 n
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
        | exception Unix.Unix_error (_, _, _) -> finish fd);
    Loop.run ~until:(fun () -> !closed) ~timeout:5.0 loop;
    Buffer.contents buf
  in
  (* (a) A request line far past the header cap. The server answers
     from the 16 KiB it buffered and resets; the response can be lost
     to the reset, so the hard assertion is that the endpoint still
     works afterwards. *)
  let huge = "GET /" ^ String.make (24 * 1024) 'a' ^ " HTTP/1.0\r\n\r\n" in
  let resp = raw_request huge in
  Alcotest.(check bool) "oversized line: cut or answered" true
    (resp = "" || contains resp "HTTP/1.0");
  Alcotest.(check bool) "alive after header bomb" true
    (contains (http_get loop port "/health") "HTTP/1.0 200 OK");
  (* (b) Binary garbage that still contains the header-ending blank
     line: rejected with 405, connection closed cleanly. *)
  let garbage = "\x00\xff\x01\x02 binary rubbish \x7f\r\n\r\n" in
  Alcotest.(check bool) "binary garbage answered 405" true
    (contains (raw_request garbage) "HTTP/1.0 405");
  (* (c) Half-open connections: clients that send part of a request
     and stall must not block other requests. *)
  let half_open =
    List.init 3 (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (loopback, port));
        ignore (Unix.write_substring fd "GET /hea" 0 8);
        fd)
  in
  Loop.run ~timeout:0.1 loop;
  Alcotest.(check bool) "served past half-open clients" true
    (contains (http_get loop port "/health") "HTTP/1.0 200 OK");
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ()) half_open;
  Admin.close admin

let () =
  Alcotest.run "svs_rt"
    [
      ( "loop",
        [
          Alcotest.test_case "after ordering" `Quick test_loop_after_ordering;
          Alcotest.test_case "every + cancel" `Quick test_loop_every_and_cancel;
          Alcotest.test_case "every stops on false" `Quick test_loop_every_stops_on_false;
          Alcotest.test_case "readable fd" `Quick test_loop_readable_fd;
          Alcotest.test_case "until predicate" `Quick test_loop_until_predicate;
        ] );
      ( "tcp-mesh",
        [
          Alcotest.test_case "exchange" `Quick test_mesh_exchange;
          Alcotest.test_case "large frame" `Quick test_mesh_large_frame;
          Alcotest.test_case "queue until connected" `Quick test_mesh_queues_until_connected;
          Alcotest.test_case "no silent reconnect" `Quick test_mesh_no_silent_reconnect;
          Alcotest.test_case "unknown destination drop" `Quick test_mesh_unknown_dst_drop;
          Alcotest.test_case "oversize frame resets link" `Quick test_mesh_oversize_resets_link;
          Alcotest.test_case "dial backoff" `Quick test_mesh_dial_backoff;
          Alcotest.test_case "dial cap writes off" `Quick test_mesh_dial_cap_writes_off;
          Alcotest.test_case "forget peer redials" `Quick test_mesh_forget_peer_redials;
          Alcotest.test_case "quarantine and forgiveness" `Quick
            test_mesh_quarantine_and_forgiveness;
          QCheck_alcotest.to_alcotest torn_batch_property;
          Alcotest.test_case "shed obsolete queued frames" `Quick
            test_mesh_shed_obsolete_frames;
          Alcotest.test_case "no-shed keeps whole chain" `Quick test_mesh_no_shed_keeps_chain;
        ] );
      ("iobuf", [ Alcotest.test_case "burst shrink" `Quick test_iobuf_shrink ]);
      ( "wal",
        [
          Alcotest.test_case "round trip" `Quick test_wal_round_trip;
          Alcotest.test_case "torn tail truncated" `Quick test_wal_torn_tail;
          Alcotest.test_case "bad CRC stops replay" `Quick test_wal_bad_crc;
          Alcotest.test_case "rotation" `Quick test_wal_rotation;
          Alcotest.test_case "identity mismatch" `Quick test_wal_identity_mismatch;
          Alcotest.test_case "group-commit crash" `Quick test_wal_group_commit_crash;
          Alcotest.test_case "salvage interior corruption" `Quick test_wal_salvage_interior;
        ] );
      ( "admin",
        [
          Alcotest.test_case "routes" `Quick test_admin_routes;
          Alcotest.test_case "node status json" `Slow test_admin_node_status;
          Alcotest.test_case "hostile clients" `Quick test_admin_hostile_clients;
        ] );
      ( "node",
        [
          Alcotest.test_case "group multicast" `Slow test_node_group_multicast;
          Alcotest.test_case "view change on crash" `Slow test_node_group_view_change_on_crash;
          Alcotest.test_case "purging over TCP" `Slow test_node_purging_over_tcp;
          Alcotest.test_case "restart rejoins from WAL" `Slow test_node_restart_rejoins;
          Alcotest.test_case "total order over TCP" `Slow test_total_order_over_tcp;
          Alcotest.test_case "divergence self-heals" `Slow test_node_divergence_self_heals;
          Alcotest.test_case "slow member escalation" `Slow test_node_slow_member_escalation;
        ] );
    ]
