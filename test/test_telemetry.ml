(* Tests for svs_telemetry: registry semantics, histogram quantiles,
   trace sinks and JSONL round-trip, and the instrumented Group stack
   (trace purge count == protocol purge count). *)

module Metrics = Svs_telemetry.Metrics
module Trace = Svs_telemetry.Trace
module Group = Svs_core.Group
module Engine = Svs_sim.Engine
module Latency = Svs_net.Latency
module Annotation = Svs_obs.Annotation
module Rng = Svs_sim.Rng

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  let c = Metrics.Counter.detached () in
  Alcotest.(check int) "starts at 0" 0 (Metrics.Counter.value c);
  Metrics.Counter.incr c;
  Metrics.Counter.add c 4;
  Alcotest.(check int) "incr + add" 5 (Metrics.Counter.value c);
  Metrics.Counter.add c 0;
  Alcotest.(check int) "add 0 ok" 5 (Metrics.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Metrics.Counter.add: negative increment") (fun () ->
      Metrics.Counter.add c (-1))

let test_gauge_basics () =
  let g = Metrics.Gauge.detached () in
  Metrics.Gauge.set g 3.0;
  Metrics.Gauge.add g (-1.5);
  Alcotest.(check (float 1e-9)) "set + add" 1.5 (Metrics.Gauge.value g)

let test_registry_find_or_create () =
  let reg = Metrics.create () in
  let labels = [ ("node", "1"); ("site", "receive") ] in
  let c1 = Metrics.counter reg ~labels "purged" in
  (* Label order must not matter. *)
  let c2 = Metrics.counter reg ~labels:(List.rev labels) "purged" in
  Metrics.Counter.incr c1;
  Alcotest.(check int) "same instance" 1 (Metrics.Counter.value c2);
  let other = Metrics.counter reg ~labels:[ ("node", "2") ] "purged" in
  Alcotest.(check int) "different labels, fresh" 0 (Metrics.Counter.value other);
  Alcotest.(check int) "counter_value reads" 1 (Metrics.counter_value reg ~labels "purged");
  Alcotest.(check int) "absent reads 0" 0 (Metrics.counter_value reg "no_such");
  Metrics.Counter.add other 10;
  Alcotest.(check int) "sum across label sets" 11 (Metrics.sum_counters reg "purged");
  Alcotest.(check int) "registered once each" 2 (List.length (Metrics.instruments reg))

let test_registry_kind_mismatch () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "x");
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics.gauge: x already registered as a counter") (fun () ->
      ignore (Metrics.gauge reg "x"))

let test_histogram_quantiles () =
  let h = Metrics.Histogram.detached () in
  Alcotest.check_raises "empty quantile"
    (Invalid_argument "Metrics.Histogram.quantile: empty histogram") (fun () ->
      ignore (Metrics.Histogram.quantile h 0.5));
  for i = 1 to 1000 do
    Metrics.Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-6)) "sum" 500500.0 (Metrics.Histogram.sum h);
  Alcotest.(check (float 1e-6)) "mean" 500.5 (Metrics.Histogram.mean h);
  Alcotest.(check (float 1e-6)) "max" 1000.0 (Metrics.Histogram.max_value h);
  (* Log-scale buckets: the quantile estimate is an upper bound within
     one sub-bucket (at most 25% relative). *)
  List.iter
    (fun q ->
      let truth = q *. 1000.0 in
      let est = Metrics.Histogram.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "q%.2f upper bound (%.1f >= %.1f)" q est truth)
        true (est >= truth);
      Alcotest.(check bool)
        (Printf.sprintf "q%.2f within a sub-bucket (%.1f <= %.1f)" q est (truth *. 1.26))
        true
        (est <= truth *. 1.26))
    [ 0.25; 0.5; 0.9; 0.99 ];
  Alcotest.(check (float 1e-6)) "q1 clamps to max" 1000.0 (Metrics.Histogram.quantile h 1.0);
  (* Extremes land in the under/overflow buckets without blowing up. *)
  let e = Metrics.Histogram.detached () in
  Metrics.Histogram.observe e 0.0;
  Metrics.Histogram.observe e 1e300;
  Alcotest.(check int) "extremes counted" 2 (Metrics.Histogram.count e);
  Alcotest.(check (float 1e-6)) "extreme q1" 1e300 (Metrics.Histogram.quantile e 1.0)

let test_pp_line () =
  let reg = Metrics.create () in
  Metrics.Counter.add (Metrics.counter reg ~labels:[ ("node", "0") ] "c") 7;
  Metrics.Gauge.set (Metrics.gauge reg "g") 2.5;
  Metrics.Histogram.observe (Metrics.histogram reg "h") 1.0;
  let line = Format.asprintf "%a" Metrics.pp_line reg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "report mentions %s" needle) true
        (Astring.String.is_infix ~affix:needle line))
    [ "c{node=0}=7"; "g=2.5"; "h=" ]

(* ------------------------------------------------------------------ *)
(* Trace sinks                                                         *)
(* ------------------------------------------------------------------ *)

let test_nop_sink () =
  Alcotest.(check bool) "disabled" false (Trace.enabled Trace.nop);
  Trace.emit Trace.nop (Trace.Suspect { node = 0; suspect = 1 });
  Trace.set_clock Trace.nop (fun () -> 42.0);
  Alcotest.(check (float 1e-9)) "clock stays zero" 0.0 (Trace.now Trace.nop);
  Alcotest.(check int) "no records" 0 (List.length (Trace.records Trace.nop))

let test_memory_sink_ordering () =
  let now = ref 1.25 in
  let tr = Trace.memory ~clock:(fun () -> !now) () in
  Alcotest.(check bool) "enabled" true (Trace.enabled tr);
  Trace.emit tr (Trace.Multicast { node = 0; view_id = 1; sn = 1 });
  now := 2.5;
  Trace.emit tr (Trace.Block { node = 0; view_id = 1 });
  Trace.emit tr (Trace.Unblock { node = 0; view_id = 2 });
  (match Trace.records tr with
  | [ a; b; c ] ->
      Alcotest.(check (float 1e-9)) "first time" 1.25 a.Trace.time;
      Alcotest.(check (float 1e-9)) "second time" 2.5 b.Trace.time;
      Alcotest.(check (list int)) "seq in order" [ 0; 1; 2 ]
        [ a.Trace.seq; b.Trace.seq; c.Trace.seq ];
      (match c.Trace.event with
      | Trace.Unblock { view_id = 2; _ } -> ()
      | ev -> Alcotest.failf "wrong last event: %a" Trace.pp_event ev)
  | l -> Alcotest.failf "expected 3 records, got %d" (List.length l));
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.records tr))

let all_event_shapes =
  [
    Trace.Multicast { node = 3; view_id = 2; sn = 17 };
    Trace.Purge { node = 1; view_id = 2; at_step = Trace.At_multicast; sender = 0; sn = 4 };
    Trace.Purge { node = 1; view_id = 2; at_step = Trace.At_receive; sender = 3; sn = 9 };
    Trace.Purge { node = 2; view_id = 3; at_step = Trace.At_install; sender = 1; sn = 1 };
    Trace.ViewInstall { node = 0; view_id = 4; members = [ 0; 2; 5 ] };
    Trace.ViewInstall { node = 0; view_id = 5; members = [] };
    Trace.ConsensusDecide { node = 2; view_id = 4 };
    Trace.Suspect { node = 0; suspect = 4 };
    Trace.Block { node = 1; view_id = 3 };
    Trace.Unblock { node = 1; view_id = 4 };
    Trace.TcpReconnect { node = 2; peer = 0 };
    Trace.TcpDrop { node = 2; peer = 4; reason = "oversize" };
    Trace.TcpDrop { node = 0; peer = -1; reason = "unknown-dst" };
    Trace.Fault { kind = "partition"; node = 1; peer = 3 };
    Trace.Fault { kind = "crash"; node = 2; peer = -1 };
    Trace.Parked { node = 3; view_id = 6 };
    Trace.Merge { node = 3; view_id = 9; parked_ms = 420 };
    Trace.Tx { node = 0; dst = 2; sender = 0; sn = 12; view_id = 3 };
    Trace.Rx { node = 2; src = 0; sender = 0; sn = 12; view_id = 3 };
    Trace.Deliver { node = 2; view_id = 3; sender = 0; sn = 12 };
    Trace.StableMsg { node = 2; sender = 0; sn = 12 };
  ]

let test_json_round_trip () =
  List.iteri
    (fun i event ->
      let r = { Trace.time = 0.125 +. (3.7 *. float_of_int i); seq = i; event } in
      match Trace.record_of_json (Trace.record_to_json r) with
      | None -> Alcotest.failf "unparseable: %s" (Trace.record_to_json r)
      | Some r' ->
          Alcotest.(check bool)
            (Printf.sprintf "round-trip %d (%s)" i (Trace.record_to_json r))
            true (r = r'))
    all_event_shapes;
  Alcotest.(check bool) "garbage rejected" true (Trace.record_of_json "{nope}" = None);
  Alcotest.(check bool) "unknown event rejected" true
    (Trace.record_of_json {|{"t":0,"seq":1,"ev":"warp","node":1}|} = None)

let test_jsonl_sink_file () =
  let path = Filename.temp_file "svs_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let now = ref 0.5 in
      let tr = Trace.jsonl ~clock:(fun () -> !now) oc in
      List.iter
        (fun ev ->
          Trace.emit tr ev;
          now := !now +. 1.0)
        all_event_shapes;
      Trace.flush tr;
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let records = List.rev_map (fun l -> Option.get (Trace.record_of_json l)) !lines in
      Alcotest.(check int) "one line per event" (List.length all_event_shapes)
        (List.length records);
      List.iteri
        (fun i r ->
          Alcotest.(check int) "seq" i r.Trace.seq;
          Alcotest.(check (float 1e-9)) "clocked" (0.5 +. float_of_int i) r.Trace.time;
          Alcotest.(check bool) "event preserved" true
            (r.Trace.event = List.nth all_event_shapes i))
        records)

let test_ring_sink () =
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Trace.ring: capacity must be positive") (fun () ->
      ignore (Trace.ring ~capacity:0 ()));
  let now = ref 0.0 in
  let tr = Trace.ring ~clock:(fun () -> !now) ~capacity:3 () in
  Alcotest.(check bool) "enabled" true (Trace.enabled tr);
  for sn = 0 to 9 do
    now := float_of_int sn;
    Trace.emit tr (Trace.Multicast { node = 0; view_id = 0; sn })
  done;
  let sns =
    List.map
      (fun r -> match r.Trace.event with Trace.Multicast { sn; _ } -> sn | _ -> -1)
      (Trace.records tr)
  in
  Alcotest.(check (list int)) "keeps the newest, in order" [ 7; 8; 9 ] sns;
  (* Sequence numbers keep counting across evictions. *)
  Alcotest.(check (list int)) "seq preserved" [ 7; 8; 9 ]
    (List.map (fun r -> r.Trace.seq) (Trace.records tr));
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.records tr))

let test_tee_sink () =
  let a = Trace.memory () in
  let b = Trace.ring ~capacity:2 () in
  let tr = Trace.tee a b in
  Alcotest.(check bool) "enabled when a branch is" true (Trace.enabled tr);
  List.iter (Trace.emit tr) all_event_shapes;
  Alcotest.(check int) "first branch gets everything" (List.length all_event_shapes)
    (List.length (Trace.records a));
  Alcotest.(check int) "second branch keeps its capacity" 2 (List.length (Trace.records b));
  Alcotest.(check int) "records reads through the tee" (List.length all_event_shapes)
    (List.length (Trace.records tr));
  (* The tee is transparent to the clock too. *)
  Trace.set_clock tr (fun () -> 9.0);
  Trace.emit tr (Trace.Block { node = 0; view_id = 1 });
  (match List.rev (Trace.records a) with
  | last :: _ -> Alcotest.(check (float 1e-9)) "clock forwarded" 9.0 last.Trace.time
  | [] -> Alcotest.fail "no records");
  Alcotest.(check bool) "nop tee disabled" false (Trace.enabled (Trace.tee Trace.nop Trace.nop))

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)
(* ------------------------------------------------------------------ *)

(* Golden output: hand-checked against the text exposition format.
   Registration order is scrambled on purpose — the exposition must
   sort by (name, labels). The two histogram observations land in
   known log-scale buckets: 1.0 in (1, 1.25], 3.0 in (3, 3.5]. *)
let test_prometheus_golden () =
  let reg = Metrics.create () in
  Metrics.Counter.add (Metrics.counter reg ~labels:[ ("node", "0") ] "requests_total") 3;
  Metrics.Gauge.set (Metrics.gauge reg "queue_depth") 2.5;
  let h = Metrics.histogram reg ~labels:[ ("node", "a\"b\\c\nd") ] "lat" in
  Metrics.Histogram.observe h 1.0;
  Metrics.Histogram.observe h 3.0;
  let expected =
    String.concat "\n"
      [
        "# TYPE lat histogram";
        "lat_bucket{node=\"a\\\"b\\\\c\\nd\",le=\"1.25\"} 1";
        "lat_bucket{node=\"a\\\"b\\\\c\\nd\",le=\"3.5\"} 2";
        "lat_bucket{node=\"a\\\"b\\\\c\\nd\",le=\"+Inf\"} 2";
        "lat_sum{node=\"a\\\"b\\\\c\\nd\"} 4";
        "lat_count{node=\"a\\\"b\\\\c\\nd\"} 2";
        "# TYPE queue_depth gauge";
        "queue_depth 2.5";
        "# TYPE requests_total counter";
        "requests_total{node=\"0\"} 3";
        "";
      ]
  in
  Alcotest.(check string) "golden exposition" expected (Metrics.prometheus_string reg)

let test_prometheus_label_sort () =
  let reg = Metrics.create () in
  (* Same name, two label sets, registered in reverse order. *)
  Metrics.Counter.add (Metrics.counter reg ~labels:[ ("node", "1") ] "c_total") 1;
  Metrics.Counter.add (Metrics.counter reg ~labels:[ ("node", "0") ] "c_total") 2;
  let expected =
    String.concat "\n"
      [ "# TYPE c_total counter"; "c_total{node=\"0\"} 2"; "c_total{node=\"1\"} 1"; "" ]
  in
  Alcotest.(check string) "one TYPE line, labels sorted" expected
    (Metrics.prometheus_string reg);
  (* An empty histogram still exposes _sum/_count and the +Inf bucket. *)
  let reg2 = Metrics.create () in
  ignore (Metrics.histogram reg2 "empty");
  let expected2 =
    String.concat "\n"
      [
        "# TYPE empty histogram";
        "empty_bucket{le=\"+Inf\"} 0";
        "empty_sum 0";
        "empty_count 0";
        "";
      ]
  in
  Alcotest.(check string) "empty histogram" expected2 (Metrics.prometheus_string reg2)

(* ------------------------------------------------------------------ *)
(* Span analyzer                                                       *)
(* ------------------------------------------------------------------ *)

module Span = Svs_telemetry.Span

(* A hand-written two-node run with exact, nearest-rank-checkable
   numbers. Node 0 multicasts sn 0 and sn 1; both nodes deliver both;
   delivery latencies are 10/20/30/40 ms, so p50 = 20 ms and
   p99 = 40 ms by nearest rank. sn 0 goes stable 2 s after submit;
   sn 1 is purged at node 1 instead (and never stable anywhere). *)
let fixture_node0 =
  let ev time seq event = { Trace.time; seq; event } in
  [
    ev 1.0 0 (Trace.Multicast { node = 0; view_id = 0; sn = 0 });
    ev 1.0 1 (Trace.Tx { node = 0; dst = 1; sender = 0; sn = 0; view_id = 0 });
    ev 1.010 2 (Trace.Deliver { node = 0; view_id = 0; sender = 0; sn = 0 });
    ev 2.0 3 (Trace.Multicast { node = 0; view_id = 0; sn = 1 });
    ev 2.0 4 (Trace.Tx { node = 0; dst = 1; sender = 0; sn = 1; view_id = 0 });
    ev 2.030 5 (Trace.Deliver { node = 0; view_id = 0; sender = 0; sn = 1 });
    ev 3.0 6 (Trace.StableMsg { node = 0; sender = 0; sn = 0 });
    ev 4.0 7 (Trace.Block { node = 0; view_id = 0 });
    ev 4.1 8 (Trace.ViewInstall { node = 0; view_id = 1; members = [ 0; 1 ] });
  ]

let fixture_node1 =
  let ev time seq event = { Trace.time; seq; event } in
  [
    ev 1.015 0 (Trace.Rx { node = 1; src = 0; sender = 0; sn = 0; view_id = 0 });
    ev 1.020 1 (Trace.Deliver { node = 1; view_id = 0; sender = 0; sn = 0 });
    ev 2.015 2 (Trace.Rx { node = 1; src = 0; sender = 0; sn = 1; view_id = 0 });
    ev 2.040 3 (Trace.Deliver { node = 1; view_id = 0; sender = 0; sn = 1 });
    ev 2.5 4
      (Trace.Purge { node = 1; view_id = 0; at_step = Trace.At_receive; sender = 0; sn = 1 });
    ev 4.05 5 (Trace.Block { node = 1; view_id = 0 });
    ev 4.1 6 (Trace.ViewInstall { node = 1; view_id = 1; members = [ 0; 1 ] });
  ]

let test_span_timelines () =
  match Span.timelines [ fixture_node0; fixture_node1 ] with
  | [ t0; t1 ] ->
      Alcotest.(check (pair int int)) "first message id" (0, 0) (t0.Span.sender, t0.Span.sn);
      Alcotest.(check (option (float 1e-9))) "submit" (Some 1.0) t0.Span.submit;
      Alcotest.(check (list (pair int (float 1e-9)))) "tx" [ (1, 1.0) ] t0.Span.tx;
      Alcotest.(check (list (pair int (float 1e-9)))) "rx" [ (1, 1.015) ] t0.Span.rx;
      Alcotest.(check (list (pair int (float 1e-9))))
        "deliveries merged chronologically"
        [ (0, 1.010); (1, 1.020) ]
        t0.Span.deliver;
      Alcotest.(check (list (pair int (float 1e-9)))) "stable" [ (0, 3.0) ] t0.Span.stable;
      Alcotest.(check (list (pair int (float 1e-9)))) "no purge" [] t0.Span.purged;
      Alcotest.(check (list (pair int (float 1e-9)))) "sn 1 purged" [ (1, 2.5) ] t1.Span.purged
  | l -> Alcotest.failf "expected 2 timelines, got %d" (List.length l)

let test_span_report () =
  let r = Span.analyze [ fixture_node0; fixture_node1 ] in
  Alcotest.(check (list int)) "nodes" [ 0; 1 ] r.Span.nodes;
  Alcotest.(check int) "messages" 2 r.Span.messages;
  Alcotest.(check int) "deliveries" 4 r.Span.deliveries;
  Alcotest.(check int) "purges" 1 r.Span.purges;
  Alcotest.(check (float 1e-9)) "span: first submit to last delivery" 1.040 r.Span.span;
  Alcotest.(check (float 1e-6)) "throughput" (4.0 /. 1.040) r.Span.msgs_per_s;
  Alcotest.(check (float 1e-9)) "purge effectiveness" 0.2 r.Span.purge_effectiveness;
  (match r.Span.delivery_latency with
  | None -> Alcotest.fail "no delivery latency"
  | Some s ->
      Alcotest.(check int) "lat count" 4 s.Span.count;
      Alcotest.(check (float 1e-9)) "lat mean" 0.025 s.Span.mean;
      Alcotest.(check (float 1e-9)) "lat p50 (nearest rank)" 0.020 s.Span.p50;
      Alcotest.(check (float 1e-9)) "lat p99 (nearest rank)" 0.040 s.Span.p99;
      Alcotest.(check (float 1e-9)) "lat max" 0.040 s.Span.max);
  (match r.Span.remote_latency with
  | None -> Alcotest.fail "no remote latency"
  | Some s ->
      Alcotest.(check int) "remote count" 2 s.Span.count;
      Alcotest.(check (float 1e-9)) "remote p50" 0.020 s.Span.p50);
  (match r.Span.stability_lag with
  | None -> Alcotest.fail "no stability lag"
  | Some s -> Alcotest.(check (float 1e-9)) "stability lag" 2.0 s.Span.p50);
  (match r.Span.purge_latency with
  | None -> Alcotest.fail "no purge latency"
  | Some s -> Alcotest.(check (float 1e-9)) "purge latency" 0.5 s.Span.p50);
  Alcotest.(check int) "view changes" 1 r.Span.view_changes;
  (match r.Span.view_spans with
  | None -> Alcotest.fail "no view spans"
  | Some s ->
      Alcotest.(check int) "two blocked spans" 2 s.Span.count;
      Alcotest.(check (float 1e-9)) "longest block" 0.1 s.Span.max);
  (* sn 1 was delivered but never went stable anywhere, and stability
     tracking was demonstrably active (sn 0 did go stable). *)
  (match r.Span.anomalies with
  | [ Span.Never_stable { messages } ] ->
      Alcotest.(check int) "one never-stable message" 1 messages
  | l -> Alcotest.failf "expected exactly Never_stable, got %d anomalies" (List.length l));
  (* The same run under a tight block threshold also flags the blocks. *)
  let tight = Span.analyze ~block_threshold:0.04 [ fixture_node0; fixture_node1 ] in
  Alcotest.(check int) "tight threshold adds Long_block anomalies" 3
    (List.length tight.Span.anomalies)

let test_span_floor_regression () =
  let ev time seq event = { Trace.time; seq; event } in
  let records =
    [
      ev 1.0 0 (Trace.Multicast { node = 0; view_id = 0; sn = 5 });
      ev 1.1 1 (Trace.Deliver { node = 1; view_id = 0; sender = 0; sn = 5 });
      ev 1.2 2 (Trace.Deliver { node = 1; view_id = 0; sender = 0; sn = 5 });
    ]
  in
  let r = Span.analyze [ records ] in
  match r.Span.anomalies with
  | [ Span.Floor_regression { node = 1; sender = 0; sn = 5; prev = 5 } ] -> ()
  | l -> Alcotest.failf "expected one Floor_regression, got %d anomalies" (List.length l)

let test_span_json_and_load () =
  let path = Filename.temp_file "svs_span" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      List.iter
        (fun r ->
          output_string oc (Trace.record_to_json r);
          output_char oc '\n')
        fixture_node0;
      output_string oc "this line is garbage and must be skipped\n";
      close_out oc;
      let loaded = Span.load_file path in
      Alcotest.(check int) "garbage skipped" (List.length fixture_node0) (List.length loaded);
      let r = Span.analyze [ loaded; fixture_node1 ] in
      let json = Span.report_to_json r in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (Printf.sprintf "json has %s" needle) true
            (Astring.String.is_infix ~affix:needle json))
        [
          {|"bench":"rt_throughput"|};
          {|"nodes":2|};
          {|"deliveries":4|};
          {|"msgs_per_s":|};
          {|"p99":0.04|};
          {|"never_stable":1|};
        ])

(* ------------------------------------------------------------------ *)
(* Instrumented Group stack                                            *)
(* ------------------------------------------------------------------ *)

(* A 3-member cluster with a slow consumer and a crash mid-run: purging
   and a view change both happen, every trace event is stamped with
   virtual time, and the trace agrees with the protocol's own
   counters — in particular one Purge record per purged message. *)
let run_traced_cluster tracer metrics =
  let e = Engine.create ~seed:11 () in
  let config =
    { Group.default_config with buffer_capacity = Some 8; tracer; metrics }
  in
  let cluster =
    Group.create_cluster e ~members:[ 0; 1; 2 ] ~latency:(Latency.Constant 0.001) ~config ()
  in
  let producer = Group.member cluster 0 in
  let rng = Rng.create ~seed:7 in
  let sent = ref 0 in
  ignore
    (Engine.every e ~period:0.01 (fun () ->
         let item = Rng.int rng 3 in
         (match Group.multicast producer ~ann:(Annotation.Tag item) !sent with
         | Ok _ -> incr sent
         | Error _ -> ());
         !sent < 200));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> Group.crash cluster 2));
  Engine.run e;
  (cluster, !sent)

let count_events p records =
  List.length (List.filter (fun r -> p r.Trace.event) records)

let check_trace_matches_cluster cluster sent records =
  let total_purged =
    List.fold_left (fun acc m -> acc + Group.purged m) 0 (Group.members cluster)
  in
  Alcotest.(check bool) "something was purged" true (total_purged > 0);
  Alcotest.(check int) "one Purge record per purged message" total_purged
    (count_events (function Trace.Purge _ -> true | _ -> false) records);
  (* Per-site split agrees with the per-site counters. *)
  List.iter
    (fun site ->
      let by_counters =
        List.fold_left (fun acc m -> acc + Group.purged_at m site) 0 (Group.members cluster)
      in
      Alcotest.(check int)
        (Printf.sprintf "Purge records at %s"
           (match site with
           | Trace.At_multicast -> "multicast"
           | Trace.At_receive -> "receive"
           | Trace.At_install -> "install"))
        by_counters
        (count_events
           (function Trace.Purge { at_step; _ } -> at_step = site | _ -> false)
           records))
    [ Trace.At_multicast; Trace.At_receive; Trace.At_install ];
  Alcotest.(check int) "one Multicast record per accepted multicast" sent
    (count_events (function Trace.Multicast _ -> true | _ -> false) records);
  (* The crash forced a view change on the survivors. *)
  let installs = count_events (function Trace.ViewInstall _ -> true | _ -> false) records in
  Alcotest.(check bool) "view installs traced" true (installs >= 2);
  Alcotest.(check bool) "blocks traced" true
    (count_events (function Trace.Block _ -> true | _ -> false) records >= 2);
  Alcotest.(check bool) "unblocks traced" true
    (count_events (function Trace.Unblock _ -> true | _ -> false) records >= 2);
  Alcotest.(check bool) "decisions traced" true
    (count_events (function Trace.ConsensusDecide _ -> true | _ -> false) records >= 2);
  (* Events are stamped with the engine's virtual time, in order. *)
  List.iter
    (fun r -> Alcotest.(check bool) "virtual timestamp" true (r.Trace.time > 0.0))
    records;
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Trace.time <= b.Trace.time && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (sorted records)

let test_group_memory_trace () =
  let tracer = Trace.memory () in
  let metrics = Metrics.create () in
  let cluster, sent = run_traced_cluster tracer (Some metrics) in
  let records = Trace.records tracer in
  check_trace_matches_cluster cluster sent records;
  (* The registry agrees with the accessors too. *)
  let total_purged =
    List.fold_left (fun acc m -> acc + Group.purged m) 0 (Group.members cluster)
  in
  Alcotest.(check int) "registry purge total" total_purged
    (Metrics.sum_counters metrics "svs_purged_total");
  Alcotest.(check bool) "engine events counted" true
    (Metrics.counter_value metrics "sim_events_total" > 0);
  Alcotest.(check bool) "network metrics counted" true
    (Metrics.counter_value metrics "net_messages_delivered_total" > 0)

(* The acceptance scenario: a simulated run writing JSONL whose Purge
   line count equals the protocol's purged_count. *)
let test_group_jsonl_trace () =
  let path = Filename.temp_file "svs_group" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let tracer = Trace.jsonl oc in
      let cluster, sent = run_traced_cluster tracer None in
      Trace.flush tracer;
      close_out oc;
      let ic = open_in path in
      let records = ref [] in
      (try
         while true do
           match Trace.record_of_json (input_line ic) with
           | Some r -> records := r :: !records
           | None -> Alcotest.fail "unparseable JSONL line"
         done
       with End_of_file -> close_in ic);
      check_trace_matches_cluster cluster sent (List.rev !records))

let () =
  Alcotest.run "svs_telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
          Alcotest.test_case "find-or-create" `Quick test_registry_find_or_create;
          Alcotest.test_case "kind mismatch" `Quick test_registry_kind_mismatch;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "one-line report" `Quick test_pp_line;
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "prometheus sorting" `Quick test_prometheus_label_sort;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nop sink" `Quick test_nop_sink;
          Alcotest.test_case "memory ordering" `Quick test_memory_sink_ordering;
          Alcotest.test_case "json round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "jsonl file" `Quick test_jsonl_sink_file;
          Alcotest.test_case "ring sink" `Quick test_ring_sink;
          Alcotest.test_case "tee sink" `Quick test_tee_sink;
        ] );
      ( "span",
        [
          Alcotest.test_case "timelines" `Quick test_span_timelines;
          Alcotest.test_case "report stats" `Quick test_span_report;
          Alcotest.test_case "floor regression" `Quick test_span_floor_regression;
          Alcotest.test_case "jsonl load + report json" `Quick test_span_json_and_load;
        ] );
      ( "group integration",
        [
          Alcotest.test_case "memory trace + registry" `Quick test_group_memory_trace;
          Alcotest.test_case "jsonl acceptance run" `Quick test_group_jsonl_trace;
        ] );
    ]
