(* Tests for the obsolescence machinery: ids, bitvectors, annotations,
   encoders (item tagging, enumeration, k-enumeration, batches). *)

module Msg_id = Svs_obs.Msg_id
module Bitvec = Svs_obs.Bitvec
module Annotation = Svs_obs.Annotation
module Kenum_stream = Svs_obs.Kenum_stream
module Enum_builder = Svs_obs.Enum_builder
module Batch_encoder = Svs_obs.Batch_encoder

let mid sender sn = Msg_id.make ~sender ~sn

(* --- Msg_id --- *)

let test_msg_id_order () =
  Alcotest.(check bool) "precedes same sender" true (Msg_id.precedes (mid 1 2) (mid 1 5));
  Alcotest.(check bool) "no precedes across senders" false (Msg_id.precedes (mid 1 2) (mid 2 5));
  Alcotest.(check bool) "no precedes self" false (Msg_id.precedes (mid 1 2) (mid 1 2));
  Alcotest.(check bool) "compare lexicographic" true (Msg_id.compare (mid 1 9) (mid 2 0) < 0)

(* --- Bitvec --- *)

let test_bitvec_set_get () =
  let b = Bitvec.create ~k:100 in
  Alcotest.(check bool) "empty" true (Bitvec.is_empty b);
  Bitvec.set b 1;
  Bitvec.set b 62;
  Bitvec.set b 63;
  Bitvec.set b 100;
  Alcotest.(check bool) "bit 1" true (Bitvec.get b 1);
  Alcotest.(check bool) "word boundary 62" true (Bitvec.get b 62);
  Alcotest.(check bool) "word boundary 63" true (Bitvec.get b 63);
  Alcotest.(check bool) "bit 100" true (Bitvec.get b 100);
  Alcotest.(check bool) "unset" false (Bitvec.get b 50);
  Alcotest.(check (list int)) "distances" [ 1; 62; 63; 100 ] (Bitvec.distances b)

let test_bitvec_overflow_dropped () =
  let b = Bitvec.create ~k:10 in
  Bitvec.set b 11;
  Alcotest.(check bool) "beyond k silently dropped" true (Bitvec.is_empty b);
  Alcotest.(check bool) "get out of range" false (Bitvec.get b 11);
  Alcotest.check_raises "distance 0 invalid" (Invalid_argument "Bitvec.set: distance must be >= 1")
    (fun () -> Bitvec.set b 0)

let test_bitvec_or_shifted () =
  let src = Bitvec.create ~k:100 in
  Bitvec.set src 2;
  Bitvec.set src 61;
  let into = Bitvec.create ~k:100 in
  Bitvec.or_shifted ~into src ~shift:5;
  Alcotest.(check (list int)) "shifted" [ 7; 66 ] (Bitvec.distances into);
  (* shifting past k drops *)
  let into2 = Bitvec.create ~k:100 in
  Bitvec.or_shifted ~into:into2 src ~shift:50;
  Alcotest.(check (list int)) "partial overflow" [ 52 ] (Bitvec.distances into2)

let test_bitvec_union_equal_copy () =
  let a = Bitvec.create ~k:20 in
  Bitvec.set a 3;
  let b = Bitvec.create ~k:20 in
  Bitvec.set b 15;
  Bitvec.union ~into:a b;
  Alcotest.(check (list int)) "union" [ 3; 15 ] (Bitvec.distances a);
  let c = Bitvec.copy a in
  Alcotest.(check bool) "copy equal" true (Bitvec.equal a c);
  Bitvec.set c 1;
  Alcotest.(check bool) "copy independent" false (Bitvec.equal a c);
  Alcotest.(check int) "cardinal" 3 (Bitvec.cardinal c)

let bitvec_shift_matches_naive =
  QCheck.Test.make ~name:"or_shifted matches naive per-bit shift" ~count:300
    QCheck.(triple (list_of_size Gen.(int_range 0 20) (int_range 1 150)) (int_range 0 80) (int_range 1 150))
    (fun (bits, shift, k) ->
      let src = Bitvec.create ~k in
      List.iter (fun d -> if d <= k then Bitvec.set src d) bits;
      let into = Bitvec.create ~k in
      Bitvec.or_shifted ~into src ~shift;
      let expected = Bitvec.create ~k in
      List.iter (fun d -> if d <= k && d + shift <= k then Bitvec.set expected (d + shift)) bits;
      Bitvec.equal into expected)

(* --- Annotation semantics --- *)

let test_tag_relation () =
  let older = (mid 0 1, Annotation.Tag 7) in
  let newer = (mid 0 5, Annotation.Tag 7) in
  Alcotest.(check bool) "same tag obsoletes" true (Annotation.obsoletes ~older ~newer);
  Alcotest.(check bool) "reverse does not" false (Annotation.obsoletes ~older:newer ~newer:older);
  Alcotest.(check bool) "different tags unrelated" false
    (Annotation.obsoletes ~older ~newer:(mid 0 5, Annotation.Tag 8));
  Alcotest.(check bool) "different senders unrelated" false
    (Annotation.obsoletes ~older ~newer:(mid 1 5, Annotation.Tag 7))

let test_enum_relation () =
  let older = (mid 0 1, Annotation.Unrelated) in
  let newer = (mid 2 9, Annotation.Enum [ mid 0 1; mid 1 4 ]) in
  Alcotest.(check bool) "enumerated" true (Annotation.obsoletes ~older ~newer);
  Alcotest.(check bool) "not enumerated" false
    (Annotation.obsoletes ~older:(mid 0 2, Annotation.Unrelated) ~newer);
  (* Same-sender enumeration must respect sequence order. *)
  let bogus = (mid 2 10, Annotation.Unrelated) in
  Alcotest.(check bool) "cannot obsolete own future" false
    (Annotation.obsoletes ~older:bogus ~newer:(mid 2 9, Annotation.Enum [ mid 2 10 ]))

let test_kenum_relation () =
  let bm = Bitvec.create ~k:10 in
  Bitvec.set bm 3;
  let newer = (mid 1 20, Annotation.Kenum bm) in
  Alcotest.(check bool) "distance 3" true
    (Annotation.obsoletes ~older:(mid 1 17, Annotation.Unrelated) ~newer);
  Alcotest.(check bool) "distance 2 unset" false
    (Annotation.obsoletes ~older:(mid 1 18, Annotation.Unrelated) ~newer);
  Alcotest.(check bool) "other sender" false
    (Annotation.obsoletes ~older:(mid 2 17, Annotation.Unrelated) ~newer)

let test_covers_reflexive () =
  let m = (mid 3 3, Annotation.Tag 1) in
  Alcotest.(check bool) "covers self" true (Annotation.covers ~older:m ~newer:m);
  Alcotest.(check bool) "does not obsolete self" false (Annotation.obsoletes ~older:m ~newer:m)

let annotation_antisymmetric =
  QCheck.Test.make ~name:"encoded relation is antisymmetric" ~count:500
    QCheck.(quad (int_bound 3) (int_bound 30) (int_bound 3) (int_bound 30))
    (fun (s1, n1, s2, n2) ->
      let bm = Bitvec.create ~k:10 in
      Bitvec.set bm ((n1 mod 10) + 1);
      let a = (mid s1 n1, Annotation.Kenum bm) in
      let bm2 = Bitvec.create ~k:10 in
      Bitvec.set bm2 ((n2 mod 10) + 1);
      let b = (mid s2 n2, Annotation.Kenum bm2) in
      not (Annotation.obsoletes ~older:a ~newer:b && Annotation.obsoletes ~older:b ~newer:a))

(* --- Kenum_stream --- *)

let test_kenum_stream_transitive_composition () =
  let s = Kenum_stream.create ~k:10 () in
  (* m0, m1 obsoletes m0 (distance 1), m2 obsoletes m1 (distance 1). *)
  let _bm0 = Kenum_stream.push s ~direct:[] in
  let _bm1 = Kenum_stream.push s ~direct:[ 1 ] in
  let bm2 = Kenum_stream.push s ~direct:[ 1 ] in
  (* bm2 must cover both m1 (distance 1) and m0 (distance 2). *)
  Alcotest.(check (list int)) "transitive bits" [ 1; 2 ] (Bitvec.distances bm2);
  let newer = (mid 0 2, Annotation.Kenum bm2) in
  Alcotest.(check bool) "covers m0 transitively" true
    (Annotation.obsoletes ~older:(mid 0 0, Annotation.Unrelated) ~newer)

let test_kenum_stream_window_truncation () =
  let s = Kenum_stream.create ~k:3 () in
  for _ = 1 to 5 do
    ignore (Kenum_stream.push s ~direct:[])
  done;
  (* Distance 4 exceeds k=3: silently dropped. *)
  let bm = Kenum_stream.push s ~direct:[ 4 ] in
  Alcotest.(check bool) "dropped" true (Bitvec.is_empty bm)

let test_kenum_stream_push_preds () =
  let s = Kenum_stream.create ~k:10 () in
  ignore (Kenum_stream.push s ~direct:[]);
  ignore (Kenum_stream.push s ~direct:[]);
  let bm = Kenum_stream.push_preds s ~preds:[ 0 ] in
  Alcotest.(check (list int)) "pred 0 at distance 2" [ 2 ] (Bitvec.distances bm)

let test_kenum_stream_long_chain_stays_transitive () =
  (* A hot item updated every step: message n obsoletes n-1; bitmap of
     message n must cover all of the last k predecessors. *)
  let k = 16 in
  let s = Kenum_stream.create ~k () in
  ignore (Kenum_stream.push s ~direct:[]);
  let last = ref (Bitvec.create ~k) in
  for _ = 1 to 40 do
    last := Kenum_stream.push s ~direct:[ 1 ]
  done;
  Alcotest.(check (list int)) "all window distances covered" (List.init k (fun i -> i + 1))
    (Bitvec.distances !last)

(* --- Enum_builder --- *)

let test_enum_builder_transitive () =
  let b = Enum_builder.create ~window:10 () in
  let m0 = mid 0 0 and m1 = mid 0 1 and m2 = mid 0 2 in
  let e0 = Enum_builder.next b ~id:m0 ~direct:[] in
  Alcotest.(check int) "first has no preds" 0 (List.length e0);
  let _e1 = Enum_builder.next b ~id:m1 ~direct:[ m0 ] in
  let e2 = Enum_builder.next b ~id:m2 ~direct:[ m1 ] in
  Alcotest.(check bool) "m2 covers m0 transitively" true (List.exists (Msg_id.equal m0) e2);
  Alcotest.(check bool) "m2 covers m1" true (List.exists (Msg_id.equal m1) e2)

let test_enum_builder_cross_sender () =
  let b = Enum_builder.create ~window:10 () in
  let a = mid 1 0 and c = mid 2 0 in
  ignore (Enum_builder.next b ~id:a ~direct:[]);
  let e = Enum_builder.next b ~id:c ~direct:[ a ] in
  Alcotest.(check bool) "cross-sender enumeration" true (List.exists (Msg_id.equal a) e)

let test_enum_builder_window_eviction () =
  let b = Enum_builder.create ~window:2 () in
  let ids = List.init 5 (mid 0) in
  let rec chain prev = function
    | [] -> []
    | id :: rest ->
        let e = Enum_builder.next b ~id ~direct:(match prev with None -> [] | Some p -> [ p ]) in
        e :: chain (Some id) rest
  in
  let enums = chain None ids in
  let last = List.nth enums 4 in
  Alcotest.(check bool) "window bounds enumeration size" true (List.length last <= 2)

let test_enum_builder_rejects_self () =
  let b = Enum_builder.create ~window:4 () in
  Alcotest.check_raises "self-obsolescence rejected"
    (Invalid_argument "Enum_builder.next: a message cannot obsolete itself") (fun () ->
      ignore (Enum_builder.next b ~id:(mid 0 0) ~direct:[ mid 0 0 ]))

(* --- Batch_encoder (Figure 2 semantics) --- *)

let ann_of e = Batch_encoder.annotation e

let covers_msg ~(older : Batch_encoder.emitted) ~(newer : Batch_encoder.emitted) =
  Annotation.obsoletes
    ~older:(mid 9 older.Batch_encoder.sn, ann_of older)
    ~newer:(mid 9 newer.Batch_encoder.sn, ann_of newer)

let test_batch_figure2_scenario () =
  (* Figure 2: batch {a,b} then batch {b,c}. C(2) — not U(b,2) — makes
     U(b,1) obsolete. *)
  let enc = Batch_encoder.create ~k:16 () in
  let batch1 = Batch_encoder.encode enc ~items:[ 1; 2 ] in
  let batch2 = Batch_encoder.encode enc ~items:[ 2; 3 ] in
  let u_a1 = List.nth batch1 0 in
  let c1 = List.nth batch1 1 in
  let u_b2 = List.nth batch2 0 in
  let c2 = List.nth batch2 1 in
  Alcotest.(check bool) "first of batch1 is pure update" false u_a1.Batch_encoder.commit;
  Alcotest.(check bool) "last of batch1 is commit" true c1.Batch_encoder.commit;
  (* u_b2 (pure update of item 2 in batch 2) must NOT obsolete anything. *)
  Alcotest.(check bool) "pure update obsoletes nothing" true
    (Bitvec.is_empty u_b2.Batch_encoder.bitmap);
  (* c2 obsoletes u_b1 = the pure update of item 2... but in batch1 item 2
     rode the commit, so it is only coverable via the subset rule, which
     does not apply ({1,2} ⊄ {2,3}). Check the documented behaviour. *)
  Alcotest.(check bool) "c2 does not cover c1 (not a subset)" false
    (covers_msg ~older:c1 ~newer:c2)

let test_batch_pure_update_covered () =
  (* batch {a, b} then batch {a, c}: the pure update U(a,1) is covered
     by C(2) because item a reappears. *)
  let enc = Batch_encoder.create ~k:16 () in
  let batch1 = Batch_encoder.encode enc ~items:[ 1; 2 ] in
  let batch2 = Batch_encoder.encode enc ~items:[ 1; 3 ] in
  let u_a1 = List.nth batch1 0 in
  let c2 = List.nth batch2 1 in
  Alcotest.(check bool) "U(a,1) covered by C(2)" true (covers_msg ~older:u_a1 ~newer:c2)

let test_batch_subset_commit_covered () =
  (* batch {a} then batch {a, b}: commit C{a} is covered by C{a,b}. *)
  let enc = Batch_encoder.create ~k:16 () in
  let b1 = Batch_encoder.encode enc ~items:[ 1 ] in
  let b2 = Batch_encoder.encode enc ~items:[ 1; 2 ] in
  let c1 = List.nth b1 0 in
  let c2 = List.nth b2 1 in
  Alcotest.(check int) "single-item batch is one message" 1 (List.length b1);
  Alcotest.(check bool) "subset commit covered" true (covers_msg ~older:c1 ~newer:c2)

let test_batch_single_item_chain () =
  (* Single-item batches to the same item chain transitively. *)
  let enc = Batch_encoder.create ~k:16 () in
  let m1 = List.hd (Batch_encoder.encode enc ~items:[ 5 ]) in
  let _m2 = List.hd (Batch_encoder.encode enc ~items:[ 5 ]) in
  let m3 = List.hd (Batch_encoder.encode enc ~items:[ 5 ]) in
  Alcotest.(check bool) "chain start covered transitively" true
    (covers_msg ~older:m1 ~newer:m3)

let test_batch_separate_commit () =
  let enc = Batch_encoder.create ~k:16 ~separate_commit:true () in
  let b1 = Batch_encoder.encode enc ~items:[ 1; 2 ] in
  Alcotest.(check int) "n updates + dedicated commit" 3 (List.length b1);
  let commit = List.nth b1 2 in
  Alcotest.(check bool) "commit has no item" true (commit.Batch_encoder.item = None);
  (* With a separate commit every per-item update is coverable. *)
  let b2 = Batch_encoder.encode enc ~items:[ 2 ] in
  let u_b1 = List.nth b1 1 in
  let c2 = List.nth b2 1 in
  Alcotest.(check bool) "U(b,1) covered by next batch commit" true
    (covers_msg ~older:u_b1 ~newer:c2)

let test_batch_rejects_bad_input () =
  let enc = Batch_encoder.create ~k:8 () in
  Alcotest.check_raises "empty" (Invalid_argument "Batch_encoder.encode: empty batch")
    (fun () -> ignore (Batch_encoder.encode enc ~items:[]));
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Batch_encoder.encode: duplicate items in batch") (fun () ->
      ignore (Batch_encoder.encode enc ~items:[ 1; 1 ]))

(* Property: the encoded relation from random batch streams is
   transitive within the window (chains that fit in k compose). *)
let batch_encoding_transitive =
  QCheck.Test.make ~name:"batch k-enum encoding is transitively closed in-window" ~count:60
    QCheck.(pair small_int (list_of_size Gen.(int_range 1 30) (int_range 1 4)))
    (fun (seed, sizes) ->
      let rng = Svs_sim.Rng.create ~seed in
      let k = 64 in
      let enc = Batch_encoder.create ~k () in
      let all = ref [] in
      List.iter
        (fun size ->
          let items =
            List.sort_uniq compare (List.init size (fun _ -> Svs_sim.Rng.int rng 6))
          in
          let msgs = Batch_encoder.encode enc ~items in
          all := !all @ List.map (fun e -> (mid 0 e.Batch_encoder.sn, ann_of e)) msgs)
        sizes;
      let msgs = Array.of_list !all in
      let n = Array.length msgs in
      let obsoletes i j = Annotation.obsoletes ~older:msgs.(i) ~newer:msgs.(j) in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          for l = j + 1 to n - 1 do
            let dist_il = (fst msgs.(l)).Msg_id.sn - (fst msgs.(i)).Msg_id.sn in
            if obsoletes i j && obsoletes j l && dist_il <= k && not (obsoletes i l) then
              ok := false
          done
        done
      done;
      !ok)

(* --- Shed: prefix-safe shedding of queued frames --- *)

module Shed = Svs_obs.Shed

(* A transport-queue frame as the walk sees it: control frames have no
   key; [wshed] marks frames already shed by an earlier walk (retained
   in place, chaining the cover relation). *)
type walk_frame = { wkey : Shed.key option; wshed : bool }

let wmeta f = f.wkey

let wshed f = f.wshed

let dframe ?(shed = false) ~sender ~sn ann =
  { wkey = Some { Shed.id = mid sender sn; ann; view = 0 }; wshed = shed }

let ctrl = { wkey = None; wshed = false }

let fresh_key ~sender ~sn ann = { Shed.id = mid sender sn; ann; view = 0 }

(* The crash counterexample from the module doc: FIFO queue [m; x],
   fresh m' covers m but not x. Shedding m would let a receiver that
   gets x (then the sender dies) advance past m with no cover — the
   walk must stop at x and shed nothing. *)
let test_shed_stops_at_uncovered () =
  let m = dframe ~sender:0 ~sn:0 (Annotation.Tag 7) in
  let x = dframe ~sender:0 ~sn:1 (Annotation.Tag 9) in
  let fresh = fresh_key ~sender:0 ~sn:2 (Annotation.Tag 7) in
  (* newest-first: [x; m] *)
  Alcotest.(check int) "uncovered live frame blocks the walk" 0
    (List.length (Shed.walk ~meta:wmeta ~shed:wshed ~fresh [ x; m ]));
  (* Control frames carry no obligations: same shape, but x is a
     control frame — now m is sheddable. *)
  let victims = Shed.walk ~meta:wmeta ~shed:wshed ~fresh [ ctrl; m ] in
  Alcotest.(check bool) "control frame is transparent" true
    (match victims with [ v ] -> v == m | _ -> false)

let test_shed_contiguous_chain () =
  (* A whole Tag chain pending behind a paused link: every frame is
     covered by the next, so all of it sheds at once. *)
  let chain = List.init 5 (fun i -> dframe ~sender:0 ~sn:i (Annotation.Tag 3)) in
  let fresh = fresh_key ~sender:0 ~sn:5 (Annotation.Tag 3) in
  let victims = Shed.walk ~meta:wmeta ~shed:wshed ~fresh (List.rev chain) in
  Alcotest.(check int) "whole chain shed" 5 (List.length victims);
  (* A foreign-sender frame in the middle splits it: only the newer
     run sheds (Tag covers only same-sender messages). *)
  let alien = dframe ~sender:1 ~sn:100 (Annotation.Tag 3) in
  let q = List.rev chain @ [ alien ] @ List.rev chain in
  Alcotest.(check int) "walk stops at the alien frame" 5
    (List.length (Shed.walk ~meta:wmeta ~shed:wshed ~fresh q))

let test_shed_transitive_through_shed () =
  (* Enum annotations make the transitivity explicit: fresh covers
     only m2, m2 covers only m1. m2 was already shed by an earlier
     walk — its annotation still chains, so m1 is sheddable. *)
  let m1 = dframe ~sender:0 ~sn:0 (Annotation.Enum [ mid 9 9 ]) in
  let m2 = dframe ~shed:true ~sender:0 ~sn:1 (Annotation.Enum [ mid 0 0 ]) in
  let fresh = fresh_key ~sender:0 ~sn:2 (Annotation.Enum [ mid 0 1 ]) in
  let victims = Shed.walk ~meta:wmeta ~shed:wshed ~fresh [ m2; m1 ] in
  Alcotest.(check bool) "cover chains through the shed frame" true
    (match victims with [ v ] -> v == m1 | _ -> false);
  (* With m2 live and a fresh frame covering nothing, the walk stops
     at m2 immediately: nothing sheds, even though m2 covers m1 —
     shedding m1 alone would be pointless (m2 still carries it) and
     the suffix rule only sheds behind an established cover. *)
  let m2_live = dframe ~sender:0 ~sn:1 (Annotation.Enum [ mid 0 0 ]) in
  let aloof = fresh_key ~sender:0 ~sn:2 (Annotation.Enum [ mid 9 9 ]) in
  Alcotest.(check int) "no cover, no shedding" 0
    (List.length (Shed.walk ~meta:wmeta ~shed:wshed ~fresh:aloof [ m2_live; m1 ]))

let test_shed_view_fence () =
  (* Covers never cross a view boundary: the PRED exchange settles
     older views, so a fresh frame of view 1 must not shed view-0
     frames however related the annotations look. *)
  let m = dframe ~sender:0 ~sn:0 (Annotation.Tag 3) in
  let fresh = { Shed.id = mid 0 1; ann = Annotation.Tag 3; view = 1 } in
  Alcotest.(check int) "other view retained" 0
    (List.length (Shed.walk ~meta:wmeta ~shed:wshed ~fresh [ m ]))

(* Reference implementation of the suffix rule: the uncapped walk,
   written independently of the module. With queues far below
   [max_walk]/[max_cover] the caps never bind, so the real walk must
   agree exactly. *)
let reference_walk ~fresh frames =
  let covered cover (k : Shed.key) =
    List.exists
      (fun (c : Shed.key) ->
        c.Shed.view = k.Shed.view
        && Annotation.obsoletes ~older:(k.Shed.id, k.Shed.ann)
             ~newer:(c.Shed.id, c.Shed.ann))
      cover
  in
  let rec go cover victims = function
    | [] -> List.rev victims
    | f :: rest -> (
        match f.wkey with
        | None -> go cover victims rest
        | Some k ->
            if f.wshed then go (k :: cover) victims rest
            else if covered cover k then go (k :: cover) (f :: victims) rest
            else List.rev victims)
  in
  go [ fresh ] [] frames

(* Random transport queues: two senders, Tag/Unrelated annotations,
   interleaved control frames, some frames pre-shed by earlier walks.
   Checks the walk against the reference, and — independently of
   both — the safety property the suffix rule exists for: a victim is
   always obsoleted by the fresh frame or by a newer frame that is
   itself shed (present in the multicast log), never silently lost. *)
let shed_walk_sound =
  QCheck.Test.make ~name:"shed walk matches uncapped reference and never strands a frame"
    ~count:1000
    (QCheck.make
       ~print:(fun (kinds, s, tag) ->
         Printf.sprintf "%d frames, fresh sender %d tag %d" (List.length kinds) s tag)
       QCheck.Gen.(
         triple
           (list_size (int_range 0 12) (pair (int_range 0 4) bool))
           (int_range 0 1) (int_range 1 2)))
    (fun (kinds, fsender, ftag) ->
      (* FIFO order, oldest first; sn = position keeps ids unique and
         monotone per sender. *)
      let frames_fifo =
        List.mapi
          (fun i (kind, pre_shed) ->
            match kind with
            | 0 -> ctrl
            | 1 -> dframe ~shed:pre_shed ~sender:0 ~sn:i (Annotation.Tag 1)
            | 2 -> dframe ~shed:pre_shed ~sender:0 ~sn:i (Annotation.Tag 2)
            | 3 -> dframe ~shed:pre_shed ~sender:1 ~sn:i (Annotation.Tag 1)
            | _ -> dframe ~shed:pre_shed ~sender:(i mod 2) ~sn:i Annotation.Unrelated)
          kinds
      in
      let newest_first = List.rev frames_fifo in
      let fresh =
        fresh_key ~sender:fsender ~sn:(List.length kinds) (Annotation.Tag ftag)
      in
      let victims = Shed.walk ~meta:wmeta ~shed:wshed ~fresh newest_first in
      let expected = reference_walk ~fresh newest_first in
      let same_set a b =
        List.length a = List.length b && List.for_all (fun f -> List.memq f b) a
      in
      let live_data f = f.wkey <> None && not f.wshed in
      (* For a victim, the frames NEWER than it (between it and the
         queue tail) that a receiver's cover search can still rely
         on: the fresh frame, frames shed by earlier walks, and this
         walk's other victims — all present in the multicast log. *)
      let newer_keys v =
        let rec take acc = function
          | [] -> acc
          | f :: rest ->
              if f == v then acc
              else
                let acc =
                  match f.wkey with
                  | Some k when f.wshed || List.memq f victims -> k :: acc
                  | _ -> acc
                in
                take acc rest
        in
        take [ fresh ] newest_first
      in
      let never_stranded =
        List.for_all
          (fun v ->
            match v.wkey with
            | None -> false
            | Some k -> Shed.covered_by ~cover:(newer_keys v) k)
          victims
      in
      same_set victims expected
      && List.for_all live_data victims
      && never_stranded)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "svs_obs"
    [
      ("msg_id", [ Alcotest.test_case "ordering" `Quick test_msg_id_order ]);
      ( "bitvec",
        [
          Alcotest.test_case "set/get" `Quick test_bitvec_set_get;
          Alcotest.test_case "overflow dropped" `Quick test_bitvec_overflow_dropped;
          Alcotest.test_case "or_shifted" `Quick test_bitvec_or_shifted;
          Alcotest.test_case "union/equal/copy" `Quick test_bitvec_union_equal_copy;
          q bitvec_shift_matches_naive;
        ] );
      ( "annotation",
        [
          Alcotest.test_case "item tagging" `Quick test_tag_relation;
          Alcotest.test_case "enumeration" `Quick test_enum_relation;
          Alcotest.test_case "k-enumeration" `Quick test_kenum_relation;
          Alcotest.test_case "covers reflexive" `Quick test_covers_reflexive;
          q annotation_antisymmetric;
        ] );
      ( "kenum-stream",
        [
          Alcotest.test_case "transitive composition" `Quick test_kenum_stream_transitive_composition;
          Alcotest.test_case "window truncation" `Quick test_kenum_stream_window_truncation;
          Alcotest.test_case "push_preds" `Quick test_kenum_stream_push_preds;
          Alcotest.test_case "hot-item chain" `Quick test_kenum_stream_long_chain_stays_transitive;
        ] );
      ( "enum-builder",
        [
          Alcotest.test_case "transitive closure" `Quick test_enum_builder_transitive;
          Alcotest.test_case "cross-sender" `Quick test_enum_builder_cross_sender;
          Alcotest.test_case "window eviction" `Quick test_enum_builder_window_eviction;
          Alcotest.test_case "rejects self" `Quick test_enum_builder_rejects_self;
        ] );
      ( "batch-encoder",
        [
          Alcotest.test_case "figure 2 scenario" `Quick test_batch_figure2_scenario;
          Alcotest.test_case "pure update covered" `Quick test_batch_pure_update_covered;
          Alcotest.test_case "subset commit" `Quick test_batch_subset_commit_covered;
          Alcotest.test_case "single-item chain" `Quick test_batch_single_item_chain;
          Alcotest.test_case "separate commit" `Quick test_batch_separate_commit;
          Alcotest.test_case "input validation" `Quick test_batch_rejects_bad_input;
          q batch_encoding_transitive;
        ] );
      ( "shed",
        [
          Alcotest.test_case "stops at uncovered frame" `Quick test_shed_stops_at_uncovered;
          Alcotest.test_case "contiguous chain" `Quick test_shed_contiguous_chain;
          Alcotest.test_case "transitive through shed" `Quick
            test_shed_transitive_through_shed;
          Alcotest.test_case "view fence" `Quick test_shed_view_fence;
          q shed_walk_sound;
        ] );
    ]
