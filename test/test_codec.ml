(* Tests for the binary codec and the protocol wire encoding. *)

module Codec = Svs_codec.Codec
module W = Codec.Writer
module R = Codec.Reader
module Wire_codec = Svs_core.Wire_codec
module Types = Svs_core.Types
module View = Svs_core.View
module Msg_id = Svs_obs.Msg_id
module Annotation = Svs_obs.Annotation
module Bitvec = Svs_obs.Bitvec

(* --- primitives --- *)

let test_varint_round_trip () =
  List.iter
    (fun v ->
      Alcotest.(check int) (Printf.sprintf "varint %d" v) v
        (Codec.round_trip ~write:W.varint ~read:R.varint v))
    [ 0; 1; 127; 128; 255; 16384; 1 lsl 40; max_int ]

let test_zigzag_round_trip () =
  List.iter
    (fun v ->
      Alcotest.(check int) (Printf.sprintf "zigzag %d" v) v
        (Codec.round_trip ~write:W.zigzag ~read:R.zigzag v))
    [ 0; -1; 1; -64; 64; min_int + 1; max_int; min_int ]

let test_varint_compact () =
  Alcotest.(check int) "small value is one byte" 1 (Codec.encoded_size ~write:W.varint 42);
  Alcotest.(check int) "two bytes" 2 (Codec.encoded_size ~write:W.varint 300)

let test_float_round_trip () =
  List.iter
    (fun v ->
      Alcotest.(check (float 0.0)) (Printf.sprintf "float %g" v) v
        (Codec.round_trip ~write:W.float64 ~read:R.float64 v))
    [ 0.0; -1.5; 3.141592653589793; 1e300; -1e-300; Float.max_float ]

let test_bytes_and_list () =
  let v = [ "a"; ""; "hello world"; String.make 1000 'x' ] in
  Alcotest.(check (list string)) "list of bytes" v
    (Codec.round_trip
       ~write:(fun w -> W.list w W.bytes)
       ~read:(fun r -> R.list r R.bytes)
       v)

let test_option () =
  let rt v =
    Codec.round_trip
      ~write:(fun w -> W.option w W.varint)
      ~read:(fun r -> R.option r R.varint)
      v
  in
  Alcotest.(check (option int)) "some" (Some 9) (rt (Some 9));
  Alcotest.(check (option int)) "none" None (rt None)

let test_truncated () =
  Alcotest.check_raises "short input" Codec.Truncated (fun () ->
      ignore (R.float64 (R.of_string "abc")))

let test_malformed_bool () =
  Alcotest.check_raises "bad bool" (Codec.Malformed "bool byte 7") (fun () ->
      ignore (R.bool (R.of_string "\007")))

let test_reader_position () =
  let w = W.create () in
  W.varint w 1;
  W.varint w 2;
  let r = R.of_string (W.contents w) in
  Alcotest.(check int) "first" 1 (R.varint r);
  Alcotest.(check bool) "not eof" false (R.eof r);
  Alcotest.(check int) "second" 2 (R.varint r);
  Alcotest.(check bool) "eof" true (R.eof r)

let varint_property =
  QCheck.Test.make ~name:"varint round-trips any non-negative int" ~count:500
    QCheck.(map abs int)
    (fun v ->
      let v = abs v in
      Codec.round_trip ~write:W.varint ~read:R.varint v = v)

let zigzag_property =
  QCheck.Test.make ~name:"zigzag round-trips any int" ~count:500 QCheck.int (fun v ->
      Codec.round_trip ~write:W.zigzag ~read:R.zigzag v = v)

let test_payload_codecs () =
  let rt pc v = Codec.round_trip ~write:pc.Wire_codec.write ~read:pc.Wire_codec.read v in
  Alcotest.(check string) "string payload" "hello" (rt Wire_codec.string_codec "hello");
  Alcotest.(check int) "int payload" (-42) (rt Wire_codec.int_codec (-42));
  Alcotest.(check (pair int string)) "pair payload" (7, "x")
    (rt (Wire_codec.pair_codec Wire_codec.int_codec Wire_codec.string_codec) (7, "x"));
  Alcotest.(check unit) "unit payload" () (rt Wire_codec.unit_codec ())

(* --- slice reader (zero-copy hot path) --- *)

(* A tagged value stream exercising every primitive through the
   slice-backed reader. *)
type item = I of int | Z of int | F of float | B of bool | S of string

let write_item w = function
  | I v ->
      W.uint8 w 0;
      W.varint w v
  | Z v ->
      W.uint8 w 1;
      W.zigzag w v
  | F v ->
      W.uint8 w 2;
      W.float64 w v
  | B v ->
      W.uint8 w 3;
      W.bool w v
  | S v ->
      W.uint8 w 4;
      W.bytes w v

let read_item r =
  match R.uint8 r with
  | 0 -> I (R.varint r)
  | 1 -> Z (R.zigzag r)
  | 2 -> F (R.float64 r)
  | 3 -> B (R.bool r)
  | 4 -> S (R.bytes r)
  | n -> raise (Codec.Malformed (Printf.sprintf "item tag %d" n))

let item_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> I (abs v)) int;
        map (fun v -> Z v) int;
        map (fun v -> F v) (float_bound_inclusive 1e12);
        map (fun v -> B v) bool;
        map (fun s -> S s) (string_size (int_range 0 40));
      ])

(* A value stream plus junk margins: the encoding will live at offset
   [pre] of a shared buffer padded with continuation-byte junk (0xff),
   so any out-of-window read changes the result. *)
let items_arb =
  QCheck.make
    ~print:(fun (items, (pre, post)) ->
      Printf.sprintf "%d items, pre=%d post=%d" (List.length items) pre post)
    QCheck.Gen.(
      pair (list_size (int_range 0 12) item_gen) (pair (int_range 0 64) (int_range 0 64)))

let encode_items items =
  let w = W.create () in
  List.iter (write_item w) items;
  w

let slice_decode_property =
  QCheck.Test.make ~name:"slice reader decodes at arbitrary offsets amid junk" ~count:500
    items_arb
    (fun (items, (pre, post)) ->
      let w = encode_items items in
      let n = W.length w in
      let buf = Bytes.make (pre + n + post) '\xff' in
      W.blit_into w buf pre;
      let r = R.of_slice (Codec.Slice.make buf ~off:pre ~len:n) in
      let items' = List.map (fun _ -> read_item r) items in
      R.eof r && List.for_all2 (fun a b -> compare a b = 0) items items')

(* The full valid encoding is present in the buffer, but the slice
   window stops [k] bytes in — every cut point must raise Truncated,
   never decode by reading past the window. *)
let slice_truncation_property =
  QCheck.Test.make ~name:"truncation at every boundary raises Truncated" ~count:100
    items_arb
    (fun (items, (pre, _)) ->
      let w = encode_items items in
      let n = W.length w in
      let buf = Bytes.make (pre + n) '\xff' in
      W.blit_into w buf pre;
      let ok = ref true in
      for k = 0 to n - 1 do
        let r = R.of_slice (Codec.Slice.make buf ~off:pre ~len:k) in
        match List.map (fun _ -> read_item r) items with
        | _ -> ok := false
        | exception Codec.Truncated -> ()
      done;
      !ok)

let test_slice_respects_window () =
  (* Bytes exist past the window; the reader must not see them. *)
  let buf = Bytes.of_string "aaaaHELLOzzzz" in
  let s = Codec.Slice.make buf ~off:4 ~len:5 in
  let r = R.of_slice s in
  Alcotest.(check string) "raw within window" "HEL" (R.raw r 3);
  Alcotest.check_raises "sub-slice past window" Codec.Truncated (fun () ->
      ignore (R.slice r 3 : Codec.Slice.t));
  Alcotest.(check string) "rest of window" "LO" (Codec.Slice.to_string (R.slice r 2));
  Alcotest.(check bool) "eof" true (R.eof r)

let test_slice_bounds () =
  let s = Codec.Slice.of_string "hello world" in
  let sub = Codec.Slice.sub s ~off:6 ~len:5 in
  Alcotest.(check string) "sub" "world" (Codec.Slice.to_string sub);
  Alcotest.(check char) "get" 'w' (Codec.Slice.get sub 0);
  let oob f = match f () with () -> false | exception Invalid_argument _ -> true in
  Alcotest.(check bool) "sub out of bounds" true
    (oob (fun () -> ignore (Codec.Slice.sub s ~off:8 ~len:4 : Codec.Slice.t)));
  Alcotest.(check bool) "get out of bounds" true
    (oob (fun () -> ignore (Codec.Slice.get sub 5 : char)));
  Alcotest.(check bool) "make overrun" true
    (oob (fun () -> ignore (Codec.Slice.make (Bytes.create 4) ~off:2 ~len:3 : Codec.Slice.t)))

(* --- bitvec bytes --- *)

let bitvec_bytes_property =
  QCheck.Test.make ~name:"bitvec to_bytes/of_bytes round-trip" ~count:200
    QCheck.(pair (int_range 1 200) (list (int_range 1 200)))
    (fun (k, bits) ->
      let b = Bitvec.create ~k in
      List.iter (fun d -> if d <= k then Bitvec.set b d) bits;
      Bitvec.equal b (Bitvec.of_bytes ~k (Bitvec.to_bytes b)))

let test_bitvec_bytes_size () =
  let b = Bitvec.create ~k:30 in
  Alcotest.(check int) "ceil(30/8) = 4 bytes" 4 (String.length (Bitvec.to_bytes b))

(* --- wire messages --- *)

let mid sender sn = Msg_id.make ~sender ~sn

let sample_data payload =
  let bm = Bitvec.create ~k:30 in
  Bitvec.set bm 1;
  Bitvec.set bm 17;
  {
    Types.id = mid 2 77;
    view_id = 3;
    payload;
    ann = Annotation.Kenum bm;
  }

let wire_testable =
  Alcotest.testable
    (fun ppf w -> Types.pp_wire Format.pp_print_int ppf w)
    (fun a b -> a = b)

let rt_wire w =
  Wire_codec.wire_of_string Wire_codec.int_codec
    (Wire_codec.wire_to_string Wire_codec.int_codec w)

let test_wire_data_round_trip () =
  let w = Types.Wdata (sample_data 42) in
  Alcotest.(check wire_testable) "data round-trip" w (rt_wire w)

let test_wire_init_round_trip () =
  let w = Types.Winit { view_id = 9; leave = [ 1; 4 ]; join = [] } in
  Alcotest.(check wire_testable) "init round-trip" w (rt_wire w);
  let w = Types.Winit { view_id = 2; leave = []; join = [ 3; 6 ] } in
  Alcotest.(check wire_testable) "init with joins" w (rt_wire w)

let test_wire_join_sync_round_trip () =
  let w = Types.Wjoin { joiner = 5 } in
  Alcotest.(check wire_testable) "join round-trip" w (rt_wire w);
  let view = View.make ~id:4 ~members:[ 0; 2; 5 ] in
  let w =
    Types.Wsync { view; floors = [ (0, 12); (2, 7) ]; app = Some "snapshot" }
  in
  Alcotest.(check wire_testable) "sync round-trip" w (rt_wire w);
  let w = Types.Wsync { view; floors = []; app = None } in
  Alcotest.(check wire_testable) "sync without app state" w (rt_wire w)

let test_wire_pred_round_trip () =
  let w =
    Types.Wpred { view_id = 2; msgs = [ sample_data 1; sample_data 2; sample_data 3 ] }
  in
  Alcotest.(check wire_testable) "pred round-trip" w (rt_wire w)

let test_wire_stable_round_trip () =
  let w = Types.Wstable { floors = [ (0, 15); (1, 3); (2, 999) ] } in
  Alcotest.(check wire_testable) "stable round-trip" w (rt_wire w)

let test_annotation_round_trips () =
  let rt a =
    Codec.round_trip ~write:Wire_codec.write_annotation ~read:Wire_codec.read_annotation a
  in
  List.iter
    (fun a -> Alcotest.(check bool) "annotation round-trip" true (rt a = a))
    [
      Annotation.Unrelated;
      Annotation.Tag 7;
      Annotation.Tag (-3);
      Annotation.Enum [ mid 0 1; mid 3 9 ];
    ];
  (* Kenum: structural equality of bitmaps. *)
  let bm = Bitvec.create ~k:12 in
  Bitvec.set bm 5;
  match rt (Annotation.Kenum bm) with
  | Annotation.Kenum bm' -> Alcotest.(check bool) "kenum bitmap" true (Bitvec.equal bm bm')
  | _ -> Alcotest.fail "kenum tag lost"

let test_view_round_trip () =
  let v = View.make ~id:4 ~members:[ 0; 2; 5 ] in
  let v' = Codec.round_trip ~write:Wire_codec.write_view ~read:Wire_codec.read_view v in
  Alcotest.(check bool) "view round-trip" true (View.equal v v')

let test_proposal_round_trip () =
  let p =
    {
      Types.next_view = View.make ~id:7 ~members:[ 0; 1 ];
      pred = [ sample_data 5; sample_data 6 ];
    }
  in
  let p' =
    Codec.round_trip
      ~write:(Wire_codec.write_proposal Wire_codec.int_codec)
      ~read:(Wire_codec.read_proposal Wire_codec.int_codec)
      p
  in
  Alcotest.(check bool) "proposal round-trip" true (p = p')

let test_wire_sizes_sane () =
  (* A data message with a k=30 bitmap should be compact: a few bytes
     of ids + 4 bytes of bitmap + payload. *)
  let size = Wire_codec.wire_size Wire_codec.int_codec (Types.Wdata (sample_data 1)) in
  Alcotest.(check bool) (Printf.sprintf "data message %dB < 24B" size) true (size < 24);
  let pred_size =
    Wire_codec.wire_size Wire_codec.int_codec
      (Types.Wpred { view_id = 1; msgs = List.init 100 sample_data })
  in
  Alcotest.(check bool) "pred scales with contents" true (pred_size > 100 * 10)

let wire_round_trip_property =
  QCheck.Test.make ~name:"arbitrary data messages round-trip" ~count:300
    QCheck.(quad small_nat small_nat int (int_range 1 100))
    (fun (sender, sn, payload, k) ->
      let bm = Bitvec.create ~k in
      Bitvec.set bm (1 + (abs payload mod k));
      let w =
        Types.Wdata
          {
            Types.id = mid sender sn;
            view_id = abs payload mod 5;
            payload;
            ann = Annotation.Kenum bm;
          }
      in
      rt_wire w = w)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "svs_codec"
    [
      ( "primitives",
        [
          Alcotest.test_case "varint" `Quick test_varint_round_trip;
          Alcotest.test_case "zigzag" `Quick test_zigzag_round_trip;
          Alcotest.test_case "varint compact" `Quick test_varint_compact;
          Alcotest.test_case "float64" `Quick test_float_round_trip;
          Alcotest.test_case "bytes and lists" `Quick test_bytes_and_list;
          Alcotest.test_case "option" `Quick test_option;
          Alcotest.test_case "truncated" `Quick test_truncated;
          Alcotest.test_case "malformed" `Quick test_malformed_bool;
          Alcotest.test_case "reader position" `Quick test_reader_position;
          Alcotest.test_case "payload codecs" `Quick test_payload_codecs;
          q varint_property;
          q zigzag_property;
        ] );
      ( "slice",
        [
          Alcotest.test_case "window respected" `Quick test_slice_respects_window;
          Alcotest.test_case "bounds" `Quick test_slice_bounds;
          q slice_decode_property;
          q slice_truncation_property;
        ] );
      ( "bitvec-bytes",
        [
          Alcotest.test_case "packed size" `Quick test_bitvec_bytes_size;
          q bitvec_bytes_property;
        ] );
      ( "wire",
        [
          Alcotest.test_case "data" `Quick test_wire_data_round_trip;
          Alcotest.test_case "init" `Quick test_wire_init_round_trip;
          Alcotest.test_case "join/sync" `Quick test_wire_join_sync_round_trip;
          Alcotest.test_case "pred" `Quick test_wire_pred_round_trip;
          Alcotest.test_case "stable" `Quick test_wire_stable_round_trip;
          Alcotest.test_case "annotations" `Quick test_annotation_round_trips;
          Alcotest.test_case "view" `Quick test_view_round_trip;
          Alcotest.test_case "proposal" `Quick test_proposal_round_trip;
          Alcotest.test_case "sizes" `Quick test_wire_sizes_sane;
          q wire_round_trip_property;
        ] );
    ]
