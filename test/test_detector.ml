(* Tests for failure detectors (oracle and heartbeat). *)

module Engine = Svs_sim.Engine
module Network = Svs_net.Network
module Latency = Svs_net.Latency
module Oracle = Svs_detector.Oracle
module Heartbeat = Svs_detector.Heartbeat

(* --- Oracle --- *)

let test_oracle_basic () =
  let o = Oracle.create ~nodes:3 in
  Alcotest.(check bool) "initially unsuspected" false (Oracle.suspects o 1);
  Oracle.mark_crashed o 1;
  Alcotest.(check bool) "suspected after crash" true (Oracle.suspects o 1);
  Alcotest.(check (list int)) "suspected set" [ 1 ] (Oracle.suspected_set o)

let test_oracle_callback_once () =
  let o = Oracle.create ~nodes:3 in
  let calls = ref [] in
  Oracle.on_suspect o (fun p -> calls := p :: !calls);
  Oracle.mark_crashed o 2;
  Oracle.mark_crashed o 2;
  Alcotest.(check (list int)) "fired once" [ 2 ] !calls

let test_oracle_out_of_range () =
  let o = Oracle.create ~nodes:2 in
  Alcotest.(check bool) "out of range is not suspected" false (Oracle.suspects o 7)

(* --- Heartbeat --- *)

(* Build a 2-node rig where node 1 monitors node 0 through a network. *)
type rig = {
  engine : Engine.t;
  net : [ `Beat ] Network.t;
  monitor : Heartbeat.t;
}

let make_rig ?(config = Heartbeat.default_config) ?(latency = Latency.Constant 0.001) () =
  let engine = Engine.create ~seed:5 () in
  let net = Network.create engine ~nodes:2 ~latency () in
  let monitor =
    Heartbeat.create engine config ~me:1 ~peers:[ 0; 1 ]
      ~send_heartbeat:(fun ~dst -> Network.send net ~src:1 ~dst `Beat)
  in
  (* Node 0 beats periodically too. *)
  let sender =
    Heartbeat.create engine config ~me:0 ~peers:[ 0; 1 ]
      ~send_heartbeat:(fun ~dst -> Network.send net ~src:0 ~dst `Beat)
  in
  Network.set_handler net ~node:1 (fun ~src `Beat -> Heartbeat.on_heartbeat monitor ~src);
  Network.set_handler net ~node:0 (fun ~src `Beat -> Heartbeat.on_heartbeat sender ~src);
  { engine; net; monitor }

let test_heartbeat_no_false_suspicion_when_quiet () =
  let rig = make_rig () in
  Engine.run ~until:5.0 rig.engine;
  Alcotest.(check bool) "peer alive, never suspected" false (Heartbeat.suspects rig.monitor 0)

let test_heartbeat_detects_crash () =
  let rig = make_rig () in
  Engine.run ~until:2.0 rig.engine;
  Network.crash rig.net ~node:0;
  Engine.run ~until:5.0 rig.engine;
  Alcotest.(check bool) "crashed peer suspected" true (Heartbeat.suspects rig.monitor 0);
  Alcotest.(check (list int)) "suspected set" [ 0 ] (Heartbeat.suspected_set rig.monitor)

let test_heartbeat_suspect_callback () =
  let rig = make_rig () in
  let suspected_at = ref nan in
  Heartbeat.on_suspect rig.monitor (fun p ->
      if p = 0 then suspected_at := Engine.now rig.engine);
  Network.crash rig.net ~node:0;
  Engine.run ~until:5.0 rig.engine;
  Alcotest.(check bool) "callback fired after timeout" true
    (!suspected_at > 0.0 && !suspected_at < 1.0)

let test_heartbeat_rescind_and_adapt () =
  (* A long network outage followed by recovery must rescind the
     suspicion and bump the timeout. *)
  let rig = make_rig () in
  let rescinded = ref false in
  Heartbeat.on_rescind rig.monitor (fun p -> if p = 0 then rescinded := true);
  let before = Heartbeat.timeout_of rig.monitor 0 in
  Engine.run ~until:1.0 rig.engine;
  Network.disconnect rig.net 0 1;
  Engine.run ~until:2.5 rig.engine;
  Alcotest.(check bool) "suspected during outage" true (Heartbeat.suspects rig.monitor 0);
  Network.reconnect rig.net 0 1;
  Engine.run ~until:4.0 rig.engine;
  Alcotest.(check bool) "rescinded after recovery" true !rescinded;
  Alcotest.(check bool) "no longer suspected" false (Heartbeat.suspects rig.monitor 0);
  Alcotest.(check bool) "timeout adapted upward" true
    (Heartbeat.timeout_of rig.monitor 0 > before)

let test_heartbeat_eventual_accuracy_with_slow_links () =
  (* With latency above the initial timeout, the detector may suspect
     falsely at first but must converge: eventually no false suspicion
     (◇P behaviour via timeout adaptation). *)
  let config = { Heartbeat.default_config with initial_timeout = 0.12; period = 0.1 } in
  let rig = make_rig ~config ~latency:(Latency.Constant 0.2) () in
  Engine.run ~until:60.0 rig.engine;
  Alcotest.(check bool) "converged: peer not suspected" false (Heartbeat.suspects rig.monitor 0);
  Alcotest.(check bool) "timeout grew past the latency" true
    (Heartbeat.timeout_of rig.monitor 0 > 0.2)

let test_heartbeat_injected_silence () =
  (* Chaos receive-pause: the monitored peer keeps beating, but the
     monitor's receive side is frozen — beats queue at the network.
     Silence longer than the timeout must be suspected; resuming drains
     the queued beats, rescinds the suspicion, and adapts the timeout
     upward by exactly one increment (one false suspicion). *)
  let rig = make_rig () in
  let before = Heartbeat.timeout_of rig.monitor 0 in
  let suspected = ref false in
  let rescinded = ref false in
  Heartbeat.on_suspect rig.monitor (fun p -> if p = 0 then suspected := true);
  Heartbeat.on_rescind rig.monitor (fun p -> if p = 0 then rescinded := true);
  Engine.run ~until:1.0 rig.engine;
  Network.pause_receive rig.net ~node:1;
  (* Pause well past the initial timeout (0.35s by default). *)
  Engine.run ~until:2.5 rig.engine;
  Alcotest.(check bool) "suspected under injected silence" true
    (!suspected && Heartbeat.suspects rig.monitor 0);
  Network.resume_receive rig.net ~node:1;
  Alcotest.(check bool) "rescinded by drained beats" true !rescinded;
  Alcotest.(check bool) "no longer suspected" false (Heartbeat.suspects rig.monitor 0);
  Alcotest.(check (float 1e-9)) "timeout grew by one increment"
    (before +. Heartbeat.default_config.timeout_increment)
    (Heartbeat.timeout_of rig.monitor 0);
  (* And the group stays quiet afterwards: no further false suspicion. *)
  Engine.run ~until:5.0 rig.engine;
  Alcotest.(check bool) "stable after resume" false (Heartbeat.suspects rig.monitor 0)

let test_heartbeat_timeout_cap () =
  (* A long outage produces a stream of false suspicions as queued
     beats trickle in after the heal; the adaptive timeout must stop
     at [max_timeout] rather than grow without bound. *)
  let config =
    { Heartbeat.default_config with timeout_increment = 0.3; max_timeout = 0.8 }
  in
  let rig = make_rig ~config () in
  Engine.run ~until:1.0 rig.engine;
  for _ = 1 to 5 do
    (* Each spike is longer than any reachable timeout, so each causes
       a false suspicion and one adaptation step. *)
    let t0 = Engine.now rig.engine in
    Network.disconnect rig.net 0 1;
    Engine.run ~until:(t0 +. 2.0) rig.engine;
    Alcotest.(check bool) "suspected during spike" true (Heartbeat.suspects rig.monitor 0);
    Network.reconnect rig.net 0 1;
    Engine.run ~until:(t0 +. 3.0) rig.engine
  done;
  Alcotest.(check bool) "timeout capped" true
    (Heartbeat.timeout_of rig.monitor 0 <= config.Heartbeat.max_timeout +. 1e-9);
  Alcotest.(check (float 1e-9)) "timeout is exactly the cap"
    config.Heartbeat.max_timeout
    (Heartbeat.timeout_of rig.monitor 0)

let test_heartbeat_stop () =
  let rig = make_rig () in
  Engine.run ~until:1.0 rig.engine;
  Heartbeat.stop rig.monitor;
  Network.crash rig.net ~node:0;
  Engine.run ~until:5.0 rig.engine;
  Alcotest.(check bool) "stopped monitor never suspects" false
    (Heartbeat.suspects rig.monitor 0)

let () =
  Alcotest.run "svs_detector"
    [
      ( "oracle",
        [
          Alcotest.test_case "basic" `Quick test_oracle_basic;
          Alcotest.test_case "callback fires once" `Quick test_oracle_callback_once;
          Alcotest.test_case "out of range" `Quick test_oracle_out_of_range;
        ] );
      ( "heartbeat",
        [
          Alcotest.test_case "no false suspicion" `Quick test_heartbeat_no_false_suspicion_when_quiet;
          Alcotest.test_case "detects crash" `Quick test_heartbeat_detects_crash;
          Alcotest.test_case "suspect callback" `Quick test_heartbeat_suspect_callback;
          Alcotest.test_case "rescind and adapt" `Quick test_heartbeat_rescind_and_adapt;
          Alcotest.test_case "eventual accuracy" `Quick test_heartbeat_eventual_accuracy_with_slow_links;
          Alcotest.test_case "injected silence" `Quick test_heartbeat_injected_silence;
          Alcotest.test_case "timeout cap" `Quick test_heartbeat_timeout_cap;
          Alcotest.test_case "stop" `Quick test_heartbeat_stop;
        ] );
    ]
