(* Tests for the simulated network: FIFO reliability, latency, crash,
   backpressure, partitions. *)

module Engine = Svs_sim.Engine
module Network = Svs_net.Network
module Latency = Svs_net.Latency
module Rng = Svs_sim.Rng

let make ?(nodes = 3) ?(latency = Latency.Zero) () =
  let e = Engine.create ~seed:99 () in
  let net = Network.create e ~nodes ~latency () in
  (e, net)

let collect net ~node =
  let log = ref [] in
  Network.set_handler net ~node (fun ~src msg -> log := (src, msg) :: !log);
  fun () -> List.rev !log

let test_basic_delivery () =
  let e, net = make () in
  let got = collect net ~node:1 in
  Network.send net ~src:0 ~dst:1 "hello";
  Engine.run e;
  Alcotest.(check (list (pair int string))) "delivered" [ (0, "hello") ] (got ())

let test_fifo_per_link () =
  let e, net = make ~latency:(Latency.Uniform { lo = 0.001; hi = 0.1 }) () in
  let got = collect net ~node:1 in
  for i = 1 to 50 do
    Network.send net ~src:0 ~dst:1 i
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO despite random latency" (List.init 50 (fun i -> i + 1))
    (List.map snd (got ()))

let test_latency_constant () =
  let e, net = make ~latency:(Latency.Constant 0.5) () in
  let arrival = ref 0.0 in
  Network.set_handler net ~node:1 (fun ~src:_ _ -> arrival := Engine.now e);
  Network.send net ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check (float 1e-9)) "constant latency" 0.5 !arrival

let test_self_send () =
  let e, net = make () in
  let got = collect net ~node:0 in
  Network.send net ~src:0 ~dst:0 "self";
  Engine.run e;
  Alcotest.(check int) "self delivery" 1 (List.length (got ()))

let test_broadcast () =
  let e, net = make ~nodes:4 () in
  let logs = List.init 4 (fun node -> collect net ~node) in
  Network.broadcast net ~src:2 "all";
  Engine.run e;
  List.iteri
    (fun i got -> Alcotest.(check int) (Printf.sprintf "node %d got it" i) 1 (List.length (got ())))
    logs;
  let e2, net2 = make ~nodes:4 () in
  let logs2 = List.init 4 (fun node -> collect net2 ~node) in
  Network.broadcast net2 ~src:2 ~include_self:false "others";
  Engine.run e2;
  Alcotest.(check int) "self excluded" 0 (List.length ((List.nth logs2 2) ()));
  Alcotest.(check int) "others included" 1 (List.length ((List.nth logs2 0) ()))

let test_crash_drops_traffic () =
  let e, net = make () in
  let got1 = collect net ~node:1 in
  Network.crash net ~node:2;
  Network.send net ~src:0 ~dst:2 "to-crashed";
  Network.send net ~src:2 ~dst:1 "from-crashed";
  Network.send net ~src:0 ~dst:1 "ok";
  Engine.run e;
  Alcotest.(check (list (pair int string))) "only live traffic" [ (0, "ok") ] (got1 ());
  Alcotest.(check bool) "alive query" false (Network.alive net ~node:2)

let test_pause_and_resume () =
  let e, net = make () in
  let got = collect net ~node:1 in
  Network.pause_receive net ~node:1;
  Network.send net ~src:0 ~dst:1 1;
  Network.send net ~src:0 ~dst:1 2;
  Engine.run e;
  Alcotest.(check int) "nothing while paused" 0 (List.length (got ()));
  Alcotest.(check int) "held in inbox" 2 (Network.inbox_length net ~node:1);
  Network.resume_receive net ~node:1;
  Alcotest.(check (list int)) "drained in order" [ 1; 2 ] (List.map snd (got ()));
  Alcotest.(check int) "inbox empty" 0 (Network.inbox_length net ~node:1)

let test_pause_mid_drain () =
  let e, net = make () in
  let seen = ref [] in
  Network.set_handler net ~node:1 (fun ~src:_ msg ->
      seen := msg :: !seen;
      (* Re-pause after the first drained message. *)
      if List.length !seen = 1 then Network.pause_receive net ~node:1);
  Network.pause_receive net ~node:1;
  List.iter (fun i -> Network.send net ~src:0 ~dst:1 i) [ 1; 2; 3 ];
  Engine.run e;
  Network.resume_receive net ~node:1;
  Alcotest.(check (list int)) "drain stops on re-pause" [ 1 ] (List.rev !seen);
  Alcotest.(check int) "rest still held" 2 (Network.inbox_length net ~node:1)

let test_partition_holds_and_releases_in_order () =
  let e, net = make ~latency:(Latency.Constant 0.01) () in
  let got = collect net ~node:1 in
  Network.send net ~src:0 ~dst:1 1;
  Engine.run e;
  Network.disconnect net 0 1;
  Network.send net ~src:0 ~dst:1 2;
  Network.send net ~src:0 ~dst:1 3;
  Engine.run e;
  Alcotest.(check (list int)) "partitioned messages held" [ 1 ] (List.map snd (got ()));
  Network.reconnect net 0 1;
  Engine.run e;
  Alcotest.(check (list int)) "released in order" [ 1; 2; 3 ] (List.map snd (got ()))

let test_counters () =
  let e, net = make () in
  ignore (collect net ~node:1 : unit -> (int * unit) list);
  Network.send net ~src:0 ~dst:1 ();
  Network.send net ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "sent" 2 (Network.messages_sent net);
  Alcotest.(check int) "delivered" 2 (Network.messages_delivered net)

let test_latency_models () =
  let rng = Rng.create ~seed:1 in
  Alcotest.(check (float 1e-9)) "zero" 0.0 (Latency.sample Latency.Zero rng);
  Alcotest.(check (float 1e-9)) "constant" 0.25 (Latency.sample (Latency.Constant 0.25) rng);
  for _ = 1 to 200 do
    let u = Latency.sample (Latency.Uniform { lo = 0.1; hi = 0.2 }) rng in
    Alcotest.(check bool) "uniform in range" true (u >= 0.1 && u < 0.2);
    let s = Latency.sample (Latency.Shifted_exponential { base = 0.05; mean = 0.01 }) rng in
    Alcotest.(check bool) "shifted above base" true (s >= 0.05)
  done;
  Alcotest.(check (float 1e-9)) "uniform mean" 0.15
    (Latency.mean (Latency.Uniform { lo = 0.1; hi = 0.2 }));
  Alcotest.(check (float 1e-9)) "shifted mean" 0.06
    (Latency.mean (Latency.Shifted_exponential { base = 0.05; mean = 0.01 }))

let test_bandwidth_serialisation () =
  (* With 1000 B/s and 100-byte messages, back-to-back sends arrive
     100 ms apart: the link serialises store-and-forward. *)
  let e = Engine.create ~seed:3 () in
  let net = Network.create e ~nodes:2 ~bandwidth:1000.0 ~sizer:(fun _ -> 100) () in
  let arrivals = ref [] in
  Network.set_handler net ~node:1 (fun ~src:_ _ -> arrivals := Engine.now e :: !arrivals);
  Network.send net ~src:0 ~dst:1 ();
  Network.send net ~src:0 ~dst:1 ();
  Network.send net ~src:0 ~dst:1 ();
  Engine.run e;
  (match List.rev !arrivals with
  | [ a; b; c ] ->
      Alcotest.(check (float 1e-9)) "first after 100ms" 0.1 a;
      Alcotest.(check (float 1e-9)) "second serialised" 0.2 b;
      Alcotest.(check (float 1e-9)) "third serialised" 0.3 c
  | l -> Alcotest.failf "expected 3 arrivals, got %d" (List.length l));
  Alcotest.(check int) "bytes accounted" 300 (Network.bytes_sent net)

let test_set_latency_preserves_fifo () =
  let e, net = make ~latency:(Latency.Constant 0.5) () in
  let arrivals = ref [] in
  Network.set_handler net ~node:1 (fun ~src:_ msg -> arrivals := (msg, Engine.now e) :: !arrivals);
  Alcotest.(check bool) "latency readable" true (Network.latency net = Latency.Constant 0.5);
  Network.send net ~src:0 ~dst:1 "slow";
  (* Chaos latency spike ends: the model gets much faster, but the
     later message must not overtake the one already in flight. *)
  Network.set_latency net (Latency.Constant 0.01);
  Network.send net ~src:0 ~dst:1 "fast";
  Engine.run e;
  Alcotest.(check (list string)) "FIFO across latency change" [ "slow"; "fast" ]
    (List.rev_map fst !arrivals);
  (match List.assoc_opt "fast" !arrivals with
  | Some at -> Alcotest.(check (float 1e-9)) "clamped to link arrival floor" 0.5 at
  | None -> Alcotest.fail "fast message lost")

let hold_release_property =
  QCheck.Test.make
    ~name:"pause+partition holds release exactly once, FIFO per link" ~count:40
    QCheck.(pair small_int (small_list (pair (int_bound 2) (int_bound 2))))
    (fun (seed, sends) ->
      let e = Engine.create ~seed () in
      let net = Network.create e ~nodes:3 ~latency:(Latency.Exponential { mean = 0.02 }) () in
      let logs = Array.make 3 [] in
      for node = 0 to 2 do
        Network.set_handler net ~node (fun ~src msg -> logs.(node) <- (src, msg) :: logs.(node))
      done;
      (* Everything is sent into a held network (node 1 paused, the 0-2
         link cut), then released: each message must come out exactly
         once, in per-link order. *)
      Network.pause_receive net ~node:1;
      Network.disconnect net 0 2;
      List.iteri (fun i (src, dst) -> Network.send net ~src ~dst (src, i)) sends;
      Engine.run e;
      Network.resume_receive net ~node:1;
      Network.reconnect net 0 2;
      Engine.run e;
      let delivered = Array.fold_left (fun acc l -> acc + List.length l) 0 logs in
      let fifo = ref true in
      for dst = 0 to 2 do
        let per_src = Hashtbl.create 3 in
        List.iter
          (fun (src, (_, i)) ->
            let prev = Option.value ~default:(-1) (Hashtbl.find_opt per_src src) in
            if i <= prev then fifo := false;
            Hashtbl.replace per_src src i)
          (List.rev logs.(dst))
      done;
      delivered = List.length sends && !fifo)

let fifo_property =
  QCheck.Test.make ~name:"random traffic is FIFO per (src,dst) link" ~count:50
    QCheck.(pair small_int (list (pair (int_bound 2) (int_bound 2))))
    (fun (seed, sends) ->
      let e = Engine.create ~seed () in
      let net = Network.create e ~nodes:3 ~latency:(Latency.Exponential { mean = 0.05 }) () in
      let logs = Array.make 3 [] in
      for node = 0 to 2 do
        Network.set_handler net ~node (fun ~src msg -> logs.(node) <- (src, msg) :: logs.(node))
      done;
      List.iteri (fun i (src, dst) -> Network.send net ~src ~dst (src, i)) sends;
      Engine.run e;
      (* Per (src,dst): sequence of i values must be increasing. *)
      let ok = ref true in
      for dst = 0 to 2 do
        let per_src = Hashtbl.create 3 in
        List.iter
          (fun (src, (_, i)) ->
            let prev = Option.value ~default:(-1) (Hashtbl.find_opt per_src src) in
            if i <= prev then ok := false;
            Hashtbl.replace per_src src i)
          (List.rev logs.(dst))
      done;
      !ok)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "svs_net"
    [
      ( "network",
        [
          Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
          Alcotest.test_case "FIFO per link" `Quick test_fifo_per_link;
          Alcotest.test_case "constant latency" `Quick test_latency_constant;
          Alcotest.test_case "self send" `Quick test_self_send;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "crash" `Quick test_crash_drops_traffic;
          Alcotest.test_case "pause/resume" `Quick test_pause_and_resume;
          Alcotest.test_case "pause mid-drain" `Quick test_pause_mid_drain;
          Alcotest.test_case "partition" `Quick test_partition_holds_and_releases_in_order;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "latency models" `Quick test_latency_models;
          Alcotest.test_case "bandwidth serialisation" `Quick test_bandwidth_serialisation;
          Alcotest.test_case "set_latency preserves FIFO" `Quick test_set_latency_preserves_fifo;
          q hold_release_property;
          q fifo_property;
        ] );
    ]
