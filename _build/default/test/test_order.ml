(* Tests for the semantic ordered-multicast toolkit (causal + total). *)

module Engine = Svs_sim.Engine
module Network = Svs_net.Network
module Latency = Svs_net.Latency
module Causal = Svs_order.Causal
module Total = Svs_order.Total
module Annotation = Svs_obs.Annotation
module Msg_id = Svs_obs.Msg_id
module Rng = Svs_sim.Rng

(* --- Causal rig: n nodes over a simulated network --- *)

type 'p causal_rig = {
  engine : Engine.t;
  net : 'p Causal.msg Network.t;
  nodes : 'p Causal.t array;
}

let make_causal ?(n = 3) ?(semantic = true) ?(latency = Latency.Constant 0.01) ?(seed = 3) ()
    =
  let engine = Engine.create ~seed () in
  let net = Network.create engine ~nodes:n ~latency () in
  let members = List.init n Fun.id in
  let nodes =
    Array.init n (fun me ->
        Causal.create ~me ~members ~semantic
          ~send:(fun ~dst msg -> Network.send net ~src:me ~dst msg)
          ())
  in
  Array.iteri
    (fun i node ->
      Network.set_handler net ~node:i (fun ~src msg -> Causal.on_message node ~src msg))
    nodes;
  { engine; net; nodes }

let test_causal_fifo () =
  let rig = make_causal () in
  for i = 1 to 10 do
    ignore (Causal.multicast rig.nodes.(0) i)
  done;
  Engine.run rig.engine;
  Array.iteri
    (fun ix node ->
      let got = List.map (fun d -> d.Causal.payload) (Causal.deliver_all node) in
      Alcotest.(check (list int)) (Printf.sprintf "node %d FIFO" ix)
        (List.init 10 (fun i -> i + 1))
        got)
    rig.nodes

let test_causal_order_respected () =
  (* Node 1 replies to node 0's message; node 2 receives the reply
     first (we delay the original on the 0->2 link via partition) but
     must not deliver it before the original. *)
  let rig = make_causal ~latency:(Latency.Constant 0.01) () in
  Network.disconnect rig.net 0 2;
  ignore (Causal.multicast rig.nodes.(0) "original");
  Engine.run rig.engine;
  (* Node 1 delivers the original, then replies. *)
  (match Causal.deliver rig.nodes.(1) with
  | Some d -> Alcotest.(check string) "n1 got original" "original" d.Causal.payload
  | None -> Alcotest.fail "n1 missing original");
  ignore (Causal.multicast rig.nodes.(1) "reply");
  Engine.run rig.engine;
  (* Node 2 has only the reply: not deliverable yet. *)
  Alcotest.(check bool) "reply held back" true (Causal.deliver rig.nodes.(2) = None);
  Alcotest.(check int) "buffered" 1 (Causal.pending rig.nodes.(2));
  Network.reconnect rig.net 0 2;
  Engine.run rig.engine;
  let got = List.map (fun d -> d.Causal.payload) (Causal.deliver_all rig.nodes.(2)) in
  Alcotest.(check (list string)) "causal order" [ "original"; "reply" ] got

let test_causal_purging () =
  let rig = make_causal () in
  for i = 1 to 5 do
    ignore (Causal.multicast rig.nodes.(0) ~ann:(Annotation.Tag 7) i)
  done;
  Engine.run rig.engine;
  let got = List.map (fun d -> d.Causal.payload) (Causal.deliver_all rig.nodes.(1)) in
  Alcotest.(check (list int)) "only the freshest value" [ 5 ] got;
  Alcotest.(check int) "purged" 4 (Causal.purged rig.nodes.(1));
  (* Causal accounting advanced through the ghosts. *)
  Alcotest.(check int) "accounted all five" 5
    (List.assoc 0 (Causal.delivered_vector rig.nodes.(1)))

let test_causal_dependency_on_purged_message () =
  (* m2 causally depends on a purged m1: the ghost must unblock it. *)
  let rig = make_causal () in
  ignore (Causal.multicast rig.nodes.(0) ~ann:(Annotation.Tag 1) 100);
  ignore (Causal.multicast rig.nodes.(0) ~ann:(Annotation.Tag 1) 200);
  Engine.run rig.engine;
  (* Node 1 delivers (the cover only), then multicasts a dependent
     message. *)
  let got1 = List.map (fun d -> d.Causal.payload) (Causal.deliver_all rig.nodes.(1)) in
  Alcotest.(check (list int)) "n1 purged to cover" [ 200 ] got1;
  ignore (Causal.multicast rig.nodes.(1) 300);
  Engine.run rig.engine;
  let got2 = List.map (fun d -> d.Causal.payload) (Causal.deliver_all rig.nodes.(2)) in
  Alcotest.(check (list int)) "n2 delivers cover then dependent" [ 200; 300 ] got2

let test_causal_no_purge_when_disabled () =
  let rig = make_causal ~semantic:false () in
  for i = 1 to 5 do
    ignore (Causal.multicast rig.nodes.(0) ~ann:(Annotation.Tag 7) i)
  done;
  Engine.run rig.engine;
  let got = List.map (fun d -> d.Causal.payload) (Causal.deliver_all rig.nodes.(2)) in
  Alcotest.(check (list int)) "everything kept" [ 1; 2; 3; 4; 5 ] got

(* Property: without obsolescence, causal delivery respects
   happened-before across senders. *)
let causal_property =
  QCheck.Test.make ~name:"causal order respects happened-before" ~count:40
    QCheck.(pair small_int (list_of_size Gen.(int_range 1 25) (int_bound 2)))
    (fun (seed, senders) ->
      let n = 3 in
      let rig = make_causal ~n ~latency:(Latency.Exponential { mean = 0.02 }) ~seed () in
      (* Send events interleaved with partial consumption, so causal
         dependencies across senders arise; every delivery anywhere is
         logged for the offline check. *)
      let sends = ref [] in
      let sn = Array.make n 0 in
      let logs = Array.make n [] in
      let drain node_ix =
        List.iter
          (fun d -> logs.(node_ix) <- d :: logs.(node_ix))
          (Causal.deliver_all rig.nodes.(node_ix))
      in
      List.iteri
        (fun step sender ->
          ignore
            (Engine.schedule rig.engine ~delay:(0.05 *. float_of_int step) (fun () ->
                 (* The sender first consumes what it can (creating
                    causal dependencies), then multicasts. *)
                 drain sender;
                 let d = Causal.multicast rig.nodes.(sender) (sender, sn.(sender)) in
                 sn.(sender) <- sn.(sender) + 1;
                 sends := (d.Causal.id, Causal.delivered_vector rig.nodes.(sender)) :: !sends)))
        senders;
      Engine.run rig.engine;
      Array.iteri (fun ix _ -> drain ix) rig.nodes;
      (* Check at every node: deliveries respect each message's causal
         past (recorded as the sender's accounted vector at send). *)
      let ok = ref true in
      Array.iteri
        (fun node_ix _ ->
          let seen = Hashtbl.create 16 in
          List.iter
            (fun (d : (int * int) Causal.data) ->
              (match List.assoc_opt d.Causal.id !sends with
              | None -> ok := false
              | Some past ->
                  List.iter
                    (fun (member, count) ->
                      (* All of the sender's causal past from [member]
                         must be accounted here before this delivery.
                         Purged messages never appear in any log, so
                         only compare against what this node could see:
                         the check uses delivered-or-ghosted counts via
                         the message vc, which [delivered_vector]
                         reflects — ghosts count on both sides. *)
                      if member <> d.Causal.id.Msg_id.sender && count > 0 then begin
                        let have =
                          Option.value ~default:0 (Hashtbl.find_opt seen member)
                        in
                        if have < count then ok := false
                      end)
                    past);
              let s = d.Causal.id.Msg_id.sender in
              Hashtbl.replace seen s (1 + Option.value ~default:0 (Hashtbl.find_opt seen s)))
            (List.rev logs.(node_ix)))
        rig.nodes;
      !ok)

(* --- Total order rig --- *)

type 'p total_rig = {
  engine : Engine.t;
  nodes : 'p Total.t array;
}

let make_total ?(n = 3) ?(semantic = true) ?(latency = Latency.Uniform { lo = 0.001; hi = 0.03 })
    ?(seed = 3) () =
  let engine = Engine.create ~seed () in
  let net = Network.create engine ~nodes:n ~latency () in
  let members = List.init n Fun.id in
  let nodes =
    Array.init n (fun me ->
        Total.create ~me ~members ~semantic
          ~send:(fun ~dst msg -> Network.send net ~src:me ~dst msg)
          ())
  in
  Array.iteri
    (fun i node ->
      Network.set_handler net ~node:i (fun ~src msg -> Total.on_message node ~src msg))
    nodes;
  { engine; nodes }

let test_total_same_order_across_senders () =
  let rig = make_total () in
  (* Concurrent senders: with random latencies arrival orders differ,
     but delivery order must agree. *)
  for i = 1 to 8 do
    ignore (Total.multicast rig.nodes.(i mod 3) (100 + i))
  done;
  Engine.run rig.engine;
  let orders =
    Array.map
      (fun node -> List.map (fun (seq, d) -> (seq, d.Total.payload)) (Total.deliver_all node))
      rig.nodes
  in
  Alcotest.(check int) "all messages sequenced" 8 (List.length orders.(0));
  Alcotest.(check bool) "node 1 agrees with sequencer" true (orders.(1) = orders.(0));
  Alcotest.(check bool) "node 2 agrees with sequencer" true (orders.(2) = orders.(0))

let test_total_purging_consistent () =
  let rig = make_total () in
  for i = 1 to 6 do
    ignore (Total.multicast rig.nodes.(0) ~ann:(Annotation.Tag 9) i)
  done;
  Engine.run rig.engine;
  let survivors =
    Array.map
      (fun node -> List.map (fun (_, d) -> d.Total.payload) (Total.deliver_all node))
      rig.nodes
  in
  Alcotest.(check (list int)) "only the cover survives" [ 6 ] survivors.(0);
  Alcotest.(check bool) "identical at all nodes" true
    (survivors.(1) = survivors.(0) && survivors.(2) = survivors.(0));
  Alcotest.(check bool) "slots advanced past ghosts" true
    (Array.for_all (fun node -> Total.next_seq node = 6) rig.nodes)

let test_total_order_before_data () =
  (* The order notice can overtake the data on a slow link; delivery
     must wait for the payload. *)
  let engine = Engine.create ~seed:4 () in
  let net = Network.create engine ~nodes:2 ~latency:Latency.Zero () in
  let members = [ 0; 1 ] in
  let nodes =
    Array.init 2 (fun me ->
        Total.create ~me ~members ~send:(fun ~dst msg -> Network.send net ~src:me ~dst msg) ())
  in
  Array.iteri
    (fun i node -> Network.set_handler net ~node:i (fun ~src msg -> Total.on_message node ~src msg))
    nodes;
  (* Hold the 1 -> 0 data back; let node 1's data reach the sequencer
     via a fast path... instead simulate: node 1 sends; its data to 0
     is partitioned, so 0 (the sequencer) cannot order it yet. *)
  Network.disconnect net 0 1;
  ignore (Total.multicast nodes.(1) "late");
  Engine.run engine;
  Alcotest.(check bool) "nothing deliverable yet" true (Total.deliver nodes.(0) = None);
  Network.reconnect net 0 1;
  Engine.run engine;
  (match Total.deliver_all nodes.(0) with
  | [ (0, d) ] -> Alcotest.(check string) "delivered after data arrived" "late" d.Total.payload
  | other -> Alcotest.failf "unexpected deliveries: %d" (List.length other));
  Alcotest.(check bool) "node 1 delivers too" true
    (List.map (fun (_, d) -> d.Total.payload) (Total.deliver_all nodes.(1)) = [ "late" ])

let test_total_sequencer_identity () =
  let rig = make_total () in
  Array.iter
    (fun node -> Alcotest.(check int) "lowest id sequences" 0 (Total.sequencer node))
    rig.nodes

(* Property: at quiescence with full drains, all nodes deliver exactly
   the same (seq, id) sequence, and omitted sequenced messages are
   covered by later-delivered ones. *)
let total_property =
  QCheck.Test.make ~name:"total order agrees at every node" ~count:40
    QCheck.(pair small_int (list_of_size Gen.(int_range 1 30) (pair (int_bound 2) (int_bound 3))))
    (fun (seed, sends) ->
      let rig = make_total ~seed ~latency:(Latency.Exponential { mean = 0.01 }) () in
      List.iter
        (fun (sender, tag) ->
          ignore (Total.multicast rig.nodes.(sender) ~ann:(Annotation.Tag tag) (sender, tag)))
        sends;
      Engine.run rig.engine;
      let sequences =
        Array.map
          (fun node -> List.map (fun (seq, d) -> (seq, d.Total.id)) (Total.deliver_all node))
          rig.nodes
      in
      Array.for_all (fun s -> s = sequences.(0)) sequences)

(* --- Wire codecs --- *)

module Codec = Svs_codec.Codec

let test_causal_msg_round_trip () =
  (* Build a real message by multicasting, then round-trip its wire
     form through a second node. *)
  let rig = make_causal () in
  let sent = Causal.multicast rig.nodes.(0) ~ann:(Annotation.Tag 3) 42 in
  ignore sent;
  (* Intercept: encode/decode by hand using the codec. *)
  let captured = ref None in
  let probe =
    Causal.create ~me:9 ~members:[ 8; 9 ]
      ~send:(fun ~dst:_ msg ->
        let w = Codec.Writer.create () in
        Causal.write_msg Codec.Writer.zigzag w msg;
        captured := Some (Codec.Writer.contents w))
      ()
  in
  let original = Causal.multicast probe ~ann:(Annotation.Tag 5) 77 in
  (match !captured with
  | None -> Alcotest.fail "nothing captured"
  | Some bytes ->
      let decoded = Causal.read_msg Codec.Reader.zigzag (Codec.Reader.of_string bytes) in
      (* Feed the decoded message to a fresh peer: it must deliver the
         same payload under the same id. *)
      let receiver =
        Causal.create ~me:8 ~members:[ 8; 9 ] ~send:(fun ~dst:_ _ -> ()) ()
      in
      Causal.on_message receiver ~src:9 decoded;
      (match Causal.deliver receiver with
      | Some d ->
          Alcotest.(check int) "payload survives" 77 d.Causal.payload;
          Alcotest.(check bool) "id survives" true (Msg_id.equal d.Causal.id original.Causal.id)
      | None -> Alcotest.fail "decoded message not deliverable"))

let test_total_msg_round_trip () =
  let w = Codec.Writer.create () in
  let captured = ref [] in
  ignore w;
  let node =
    Total.create ~me:0 ~members:[ 0; 1 ]
      ~send:(fun ~dst:_ msg ->
        let w = Codec.Writer.create () in
        Total.write_msg Codec.Writer.zigzag w msg;
        captured := Codec.Writer.contents w :: !captured)
      ()
  in
  ignore (Total.multicast node ~ann:(Annotation.Tag 1) 5);
  (* The sequencer (node 0) emitted both the data and the order. *)
  Alcotest.(check int) "data + order frames" 2 (List.length !captured);
  let receiver = Total.create ~me:1 ~members:[ 0; 1 ] ~send:(fun ~dst:_ _ -> ()) () in
  List.iter
    (fun bytes ->
      Total.on_message receiver ~src:0
        (Total.read_msg Codec.Reader.zigzag (Codec.Reader.of_string bytes)))
    (List.rev !captured);
  match Total.deliver receiver with
  | Some (0, d) -> Alcotest.(check int) "payload survives" 5 d.Total.payload
  | Some _ | None -> Alcotest.fail "decoded sequence not delivered"

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "svs_order"
    [
      ( "causal",
        [
          Alcotest.test_case "FIFO" `Quick test_causal_fifo;
          Alcotest.test_case "causal order" `Quick test_causal_order_respected;
          Alcotest.test_case "purging" `Quick test_causal_purging;
          Alcotest.test_case "ghost dependencies" `Quick test_causal_dependency_on_purged_message;
          Alcotest.test_case "purge disabled" `Quick test_causal_no_purge_when_disabled;
          Alcotest.test_case "wire round-trip" `Quick test_causal_msg_round_trip;
          q causal_property;
        ] );
      ( "total",
        [
          Alcotest.test_case "same order" `Quick test_total_same_order_across_senders;
          Alcotest.test_case "consistent purging" `Quick test_total_purging_consistent;
          Alcotest.test_case "order before data" `Quick test_total_order_before_data;
          Alcotest.test_case "sequencer identity" `Quick test_total_sequencer_identity;
          Alcotest.test_case "wire round-trip" `Quick test_total_msg_round_trip;
          q total_property;
        ] );
    ]
